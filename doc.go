// Package polymer is a Go reproduction of "NUMA-Aware Graph-Structured
// Analytics" (Zhang, Chen, Chen — PPoPP 2015): the Polymer graph-analytics
// engine, the Ligra / X-Stream / Galois baselines it is evaluated against,
// and a simulated cache-coherent NUMA machine calibrated to the paper's
// measured latency and bandwidth tables.
//
// The repository layout:
//
//   - internal/numa      — the simulated NUMA machine (topologies, cost model)
//   - internal/mem       — placement-aware arrays (co-located / interleaved / centralized)
//   - internal/graph     — dual-CSR immutable graphs and I/O
//   - internal/gen       — deterministic dataset generators (Table 2 stand-ins)
//   - internal/partition — vertex- and edge-balanced partitioning
//   - internal/barrier   — P/H/N barriers and the Figure 10(a) cost model
//   - internal/state     — adaptive per-node vertex subsets
//   - internal/core      — the Polymer engine (the paper's contribution)
//   - internal/engines   — the three baseline systems
//   - internal/algorithms— PR, SpMV, BP, BFS, CC, SSSP for every engine
//   - internal/bench     — regenerates every table and figure of Section 6
//
// The benchmarks in bench_test.go regenerate each experiment; the
// cmd/experiments binary prints them at full (Default) scale. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package polymer
