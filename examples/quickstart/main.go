// Quickstart: build a graph, configure a simulated NUMA machine, run
// Polymer's PageRank through the scatter-gather API, and inspect the
// engine's simulated performance counters.
package main

import (
	"fmt"
	"sort"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
)

func main() {
	// 1. A graph: 10k-vertex power-law web, like the paper's motivating
	// workloads. Any edge list works — see graph.FromEdges.
	n, edges := gen.Powerlaw(10_000, 12, 2.0, 42)
	g := graph.FromEdges(n, edges, false)
	fmt.Println("graph:", g)

	// 2. A machine: four sockets x 8 cores of the paper's 80-core Intel
	// box. The machine is simulated — the engines run real parallel
	// code, but memory traffic is charged against the paper's measured
	// NUMA cost tables.
	m := numa.NewMachine(numa.IntelXeon80(), 4, 8)
	fmt.Println("machine:", m)

	// 3. The Polymer engine with the paper's default configuration:
	// NUMA-aware co-located layout, vertex replicas (agents),
	// edge-balanced partitioning, adaptive runtime state, N-Barrier.
	opt := core.DefaultOptions()
	opt.Mode = core.Push // the paper's push-based PageRank
	e := core.MustNew(g, m, opt)
	defer e.Close()

	// 4. Run 10 PageRank iterations and show the top five vertices.
	ranks := algorithms.PageRank(e, 10, 0.85)
	type vr struct {
		v graph.Vertex
		r float64
	}
	top := make([]vr, 0, n)
	for v, r := range ranks {
		top = append(top, vr{graph.Vertex(v), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("\ntop-5 vertices by rank:")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %-6d rank %.6f (out-degree %d)\n", t.v, t.r, g.OutDegree(t.v))
	}

	// 5. The simulated performance counters the paper reports.
	st := e.RunStats()
	fmt.Printf("\nsimulated runtime : %.4f s\n", e.SimSeconds())
	fmt.Printf("remote access rate: %.1f%%\n", st.RemoteRate*100)
	fmt.Printf("edges processed   : %d\n", e.Metrics().EdgesProcessed)
	fmt.Printf("peak memory       : %.2f MB (agents %.2f MB)\n",
		float64(m.Alloc().Peak())/1e6, float64(m.Alloc().Label("polymer/agents"))/1e6)
}
