// Components: community structure of a sparse power-law graph via
// connected components, contrasting the scatter-gather label propagation
// (Polymer) with Galois's union-find — two algorithmically different
// routes to the same answer (paper Section 6.1).
package main

import (
	"fmt"
	"sort"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/galois"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
)

func main() {
	// A sparse power-law graph: low average degree leaves many small
	// fragments alongside one giant component.
	n, edges := gen.Powerlaw(30_000, 1.2, 2.0, 99)
	g := graph.FromEdges(n, edges, false)
	fmt.Println("graph:", g)

	topo := numa.IntelXeon80()

	// Polymer label propagation runs on the symmetrized view.
	m1 := numa.NewMachine(topo, 8, 10)
	e := core.MustNew(g.Symmetrized(), m1, core.DefaultOptions())
	labels := algorithms.CC(e)
	lpTime := e.SimSeconds()
	e.Close()

	// Galois union-find works on the directed graph directly.
	m2 := numa.NewMachine(topo, 8, 10)
	ge := galois.MustNew(g, m2, galois.DefaultOptions())
	ufLabels := ge.CC()
	ufTime := ge.SimSeconds()
	ge.Close()

	for v := range labels {
		if labels[v] != ufLabels[v] {
			panic(fmt.Sprintf("engines disagree at vertex %d", v))
		}
	}

	sizes := map[graph.Vertex]int{}
	for _, l := range labels {
		sizes[l]++
	}
	bySize := make([]int, 0, len(sizes))
	for _, s := range sizes {
		bySize = append(bySize, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(bySize)))

	fmt.Printf("\ncomponents          : %d\n", len(sizes))
	fmt.Printf("largest component   : %d vertices (%.1f%%)\n", bySize[0], 100*float64(bySize[0])/float64(n))
	show := 5
	if len(bySize) < show {
		show = len(bySize)
	}
	fmt.Printf("top component sizes : %v\n", bySize[:show])
	fmt.Printf("\nlabel propagation   : %.4f s simulated (Polymer)\n", lpTime)
	fmt.Printf("union-find          : %.4f s simulated (Galois)\n", ufTime)
	fmt.Println("\nBoth engines produce identical min-id labels; their relative cost")
	fmt.Println("flips with graph diameter (paper Table 3, CC rows).")
}
