// Roadtrip: traversal algorithms on a high-diameter road network — the
// workload that separates the systems most dramatically in the paper's
// Table 3 (X-Stream needs 557s for BFS on roadUS; Polymer 1.16s; Galois's
// delta-stepping SSSP wins outright).
package main

import (
	"fmt"
	"math"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/galois"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
)

func main() {
	// A 150x150 road grid with random travel times in (0, 100].
	n, edges := gen.RoadGrid(150, 150, 7)
	g := graph.FromEdges(n, edges, true)
	fmt.Println("road network:", g)

	topo := numa.IntelXeon80()
	src := graph.Vertex(0) // top-left corner

	// Polymer: frontier-driven Bellman-Ford with adaptive state — the
	// per-iteration cost stays proportional to the frontier.
	m1 := numa.NewMachine(topo, 8, 10)
	e := core.MustNew(g, m1, core.DefaultOptions())
	dist := algorithms.SSSP(e, src)
	bfsLevels := algorithms.BFS(e, src)
	polymerTime := e.SimSeconds()
	met := e.Metrics()
	e.Close()

	// Galois: asynchronous delta-stepping, the paper's winner on road
	// networks.
	m2 := numa.NewMachine(topo, 8, 10)
	ge := galois.MustNew(g, m2, galois.DefaultOptions())
	gDist := ge.SSSP(src)
	galoisTime := ge.SimSeconds()
	ge.Close()

	// Both must agree on every shortest distance.
	var worst float64
	for v := range dist {
		if d := math.Abs(dist[v] - gDist[v]); d > worst {
			worst = d
		}
	}

	far := graph.Vertex(n - 1) // bottom-right corner
	fmt.Printf("\nshortest travel time corner-to-corner: %.1f (over %d hops minimum)\n",
		dist[far], bfsLevels[far])
	fmt.Printf("max disagreement Polymer vs Galois   : %g\n", worst)
	fmt.Printf("\nPolymer (SSSP+BFS): %.4f s simulated, %d sparse / %d dense phases\n",
		polymerTime, met.SparsePhases, met.DensePhases)
	fmt.Printf("Galois  (SSSP)    : %.4f s simulated (delta-stepping)\n", galoisTime)
	fmt.Println("\nHigh-diameter graphs need hundreds of frontier iterations; the")
	fmt.Println("adaptive sparse representation keeps each cheap (paper Table 6a).")
}
