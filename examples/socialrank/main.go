// Socialrank: the paper's headline workload — PageRank over a
// twitter-like follower graph — run on all four systems across an
// increasing number of sockets, showing why NUMA-awareness matters for
// social-network analytics.
package main

import (
	"fmt"

	"polymer/internal/bench"
	"polymer/internal/gen"
	"polymer/internal/numa"
)

func main() {
	topo := numa.IntelXeon80()
	g, err := bench.LoadDataset(gen.Twitter, gen.Small, bench.PR)
	if err != nil {
		panic(err)
	}
	fmt.Println("follower graph:", g)
	fmt.Println()
	fmt.Printf("%-10s", "sockets")
	for _, sys := range bench.Systems() {
		fmt.Printf("%14s", sys)
	}
	fmt.Println()

	base := map[bench.System]float64{}
	for _, sockets := range []int{1, 2, 4, 8} {
		fmt.Printf("%-10d", sockets)
		for _, sys := range bench.Systems() {
			m := numa.NewMachine(topo, sockets, topo.CoresPerSocket)
			r := bench.Run(sys, bench.PR, g, m)
			if sockets == 1 {
				base[sys] = r.SimSeconds
			}
			fmt.Printf("%8.2fms%4.1fx", r.SimSeconds*1e3, base[sys]/r.SimSeconds)
		}
		fmt.Println()
	}

	fmt.Println("\nEach cell shows simulated runtime and speedup over one socket.")
	fmt.Println("Polymer's co-located layout and sequential remote accesses keep")
	fmt.Println("scaling with sockets; the NUMA-oblivious systems saturate the")
	fmt.Println("interconnect (paper Figures 5 and 7).")
}
