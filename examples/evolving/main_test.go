package main

import (
	"strings"
	"testing"
)

// TestRun executes the full example — incremental maintenance, the
// /mutatez-driven server, and the recovery restart — so the example is
// behavior-checked, not just compiled.
func TestRun(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", err, out.String())
	}
	for _, want := range []string{
		"verified against full recomputation",
		"committed mutation batch: seq 1, generation 1",
		"restart recovered the mutated snapshot bit-identically",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
