// Evolving: mutable topology — the paper's stated future work — end to
// end. Part one maintains shortest paths incrementally through the
// grow-only dynamic overlay and hands the computation off to a committed
// snapshot with Rebase. Part two drives the same evolution through the
// serving layer: POST /mutatez appends edge batches to a crash-consistent
// write-ahead log, each commit publishes a new snapshot and bumps the
// dataset generation, and a process restart recovers the exact state —
// verified here by comparing query checksums across the restart.
//
// main_test.go runs run() under go test, so the example is build- and
// behavior-checked in CI.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/mutate"
	"polymer/internal/numa"
	"polymer/internal/serve"
	"polymer/internal/sg"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evolving:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	if err := runIncremental(w); err != nil {
		return err
	}
	return runServed(w)
}

// runIncremental is the library-level half: a road network receives
// batches of new shortcut edges; shortest paths are repaired
// incrementally, touching only the affected region, and finally the
// computation is rebased onto a committed snapshot that includes edges
// this instance never saw.
func runIncremental(w io.Writer) error {
	n, base := gen.RoadGrid(30, 30, 11)
	g := graph.FromEdges(n, base, true)
	fmt.Fprintln(w, "road network:", g)

	newEngine := func(g *graph.Graph) sg.Engine {
		return core.MustNew(g, numa.NewMachine(numa.IntelXeon80(), 4, 4), core.DefaultOptions())
	}
	d := algorithms.NewDynamicSSSP(newEngine(g), newEngine, 0)
	defer d.Close()

	corner := graph.Vertex(n - 1)
	before := d.Dist()[corner]
	fmt.Fprintf(w, "initial corner-to-corner travel time: %.1f\n", before)

	all := append([]graph.Edge(nil), base...)
	rng := gen.NewRNG(5)
	for batch := 1; batch <= 3; batch++ {
		var newRoads []graph.Edge
		for i := 0; i < 4; i++ {
			a := graph.Vertex(rng.Intn(n))
			b := graph.Vertex(rng.Intn(n))
			newRoads = append(newRoads,
				graph.Edge{Src: a, Dst: b, Wt: 5},
				graph.Edge{Src: b, Dst: a, Wt: 5})
		}
		d.InsertEdges(newRoads)
		all = append(all, newRoads...)
		fmt.Fprintf(w, "batch %d: +%d road segments -> corner travel time %.1f (overlay %d edges)\n",
			batch, len(newRoads), d.Dist()[corner], d.OverlaySize())
	}
	if d.Dist()[corner] > before {
		return fmt.Errorf("inserting roads worsened travel time: %.1f -> %.1f", before, d.Dist()[corner])
	}

	// A committed snapshot arrives: everything so far plus a highway this
	// instance has never seen. Rebase adopts it, keeping settled distances
	// as upper bounds and repairing only what the new edges improve.
	all = append(all, graph.Edge{Src: 0, Dst: corner, Wt: 7})
	snap := graph.FromEdges(n, all, true)
	d.Rebase(newEngine(snap))
	fmt.Fprintf(w, "rebased onto committed snapshot: corner travel time %.1f (overlay %d edges)\n",
		d.Dist()[corner], d.OverlaySize())

	want := algorithms.RefSSSP(snap, 0)
	for v := 0; v < n; v++ {
		if d.Dist()[v] != want[v] {
			return fmt.Errorf("incremental dist[%d] = %v diverged from recomputation %v", v, d.Dist()[v], want[v])
		}
	}
	fmt.Fprintln(w, "incremental result verified against full recomputation ✓")
	return nil
}

// runServed is the service-level half: the same evolution driven through
// POST /mutatez, with the write-ahead log carrying the mutations across a
// process restart.
func runServed(w io.Writer) error {
	dir, err := os.MkdirTemp("", "evolving-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	start := func() (*serve.Server, *httptest.Server, *mutate.Store, error) {
		st, err := mutate.Open(dir, mutate.Options{})
		if err != nil {
			return nil, nil, nil, err
		}
		srv := serve.NewServer(serve.Config{
			QueueDepth:       16,
			Workers:          2,
			DefaultBudget:    time.Minute,
			DrainTimeout:     2 * time.Second,
			RetryMax:         1,
			BreakerThreshold: 3,
			BreakerCooldown:  time.Second,
			Mutations:        st,
		})
		return srv, httptest.NewServer(srv.Handler()), st, nil
	}
	stop := func(srv *serve.Server, ts *httptest.Server, st *mutate.Store) error {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return st.Close()
	}

	srv, ts, st, err := start()
	if err != nil {
		return err
	}

	query := func(base string) (serve.Response, error) {
		body := `{"algo":"sssp","system":"polymer","graph":"roadUS","scale":"tiny","src":0}`
		return post(base+"/run", body)
	}
	r0, err := query(ts.URL)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nserved sssp on roadUS/tiny: checksum %.6f\n", r0.Checksum)

	// Open a new road through the serving layer: the commit is durable
	// (fsynced WAL record) before the response, and it invalidates every
	// cached result for the dataset by bumping its generation.
	mut, err := post(ts.URL+"/mutatez",
		`{"graph":"roadUS","scale":"tiny","ops":[`+
			`{"op":"insert","src":0,"dst":575,"wt":0.5},`+
			`{"op":"insert","src":575,"dst":0,"wt":0.5}]}`)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "committed mutation batch: seq %d, generation %d\n", mut.Seq, mut.Generation)

	r1, err := query(ts.URL)
	if err != nil {
		return err
	}
	if r1.Cached {
		return fmt.Errorf("post-commit query replayed a stale cached result")
	}
	if r1.Checksum == r0.Checksum {
		return fmt.Errorf("new road did not change the shortest-path checksum")
	}
	fmt.Fprintf(w, "post-commit checksum %.6f (recomputed on the new snapshot)\n", r1.Checksum)

	// Restart the process: recovery replays the log and reproduces the
	// exact snapshot, so the query answer is bit-identical.
	if err := stop(srv, ts, st); err != nil {
		return err
	}
	srv, ts, st, err = start()
	if err != nil {
		return err
	}
	defer func() { _ = stop(srv, ts, st) }()
	r2, err := query(ts.URL)
	if err != nil {
		return err
	}
	if r2.Checksum != r1.Checksum {
		return fmt.Errorf("recovered checksum %.6f != pre-restart %.6f", r2.Checksum, r1.Checksum)
	}
	fmt.Fprintln(w, "restart recovered the mutated snapshot bit-identically ✓")
	return nil
}

// post sends a JSON body and decodes the service response, failing on any
// non-2xx status.
func post(url, body string) (serve.Response, error) {
	var out serve.Response
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return out, err
	}
	if resp.StatusCode/100 != 2 {
		return out, fmt.Errorf("POST %s: %s: %s", url, resp.Status, raw)
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return out, fmt.Errorf("POST %s: decoding %q: %w", url, raw, err)
	}
	return out, nil
}
