// Evolving: mutable topology — the paper's stated future work — via the
// grow-only dynamic overlay. A road network receives batches of new
// shortcut edges (new roads opening); shortest paths are maintained
// incrementally, touching only the affected region instead of
// recomputing the whole graph.
package main

import (
	"fmt"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

func main() {
	n, base := gen.RoadGrid(100, 100, 11)
	g := graph.FromEdges(n, base, true)
	fmt.Println("road network:", g)

	newEngine := func(g *graph.Graph) sg.Engine {
		return core.MustNew(g, numa.NewMachine(numa.IntelXeon80(), 8, 10), core.DefaultOptions())
	}
	d := algorithms.NewDynamicSSSP(newEngine(g), newEngine, 0)
	defer d.Close()

	corner := graph.Vertex(n - 1)
	fmt.Printf("initial corner-to-corner travel time: %.1f\n", d.Dist()[corner])
	initialSim := d.Engine().SimSeconds()

	// Open three diagonal "highways", one batch at a time.
	rng := gen.NewRNG(5)
	for batch := 1; batch <= 3; batch++ {
		var newRoads []graph.Edge
		for i := 0; i < 4; i++ {
			a := graph.Vertex(rng.Intn(n))
			b := graph.Vertex(rng.Intn(n))
			newRoads = append(newRoads,
				graph.Edge{Src: a, Dst: b, Wt: 5},
				graph.Edge{Src: b, Dst: a, Wt: 5})
		}
		d.InsertEdges(newRoads)
		fmt.Printf("batch %d: +%d road segments -> corner travel time %.1f (overlay %d edges)\n",
			batch, len(newRoads), d.Dist()[corner], d.OverlaySize())
	}

	incrementalSim := d.Engine().SimSeconds() - initialSim
	fmt.Printf("\nsimulated time: initial solve %.4fs, all incremental updates %.6fs\n",
		initialSim, incrementalSim)

	// Fold the overlay into a fresh engine once it has grown.
	d.Compact()
	fmt.Printf("after compaction: %d edges in base topology, overlay empty\n",
		d.Engine().Graph().NumEdges())

	// Sanity: recompute from scratch and compare.
	want := algorithms.SSSP(d.Engine(), 0)
	if want[corner] != d.Dist()[corner] {
		panic("incremental result diverged from recomputation")
	}
	fmt.Println("incremental result verified against full recomputation ✓")
}
