// Command graphgen generates the synthetic datasets of the paper's
// Table 2 (or custom graphs) and writes them as edge-list or binary files
// for use with cmd/polymer -file.
//
// Usage:
//
//	graphgen -dataset twitter -scale small -o twitter.txt
//	graphgen -kind rmat -rmatscale 16 -edgefactor 16 -o rmat.bin -format bin
//	graphgen -kind road -rows 300 -cols 300 -o road.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"polymer/internal/gen"
	"polymer/internal/graph"
)

func main() {
	dataset := flag.String("dataset", "", "emit a named Table 2 dataset: twitter, rmat24, rmat27, powerlaw or roadUS")
	kind := flag.String("kind", "", "custom generator: twitter, powerlaw, rmat, road or uniform")
	scaleFlag := flag.String("scale", "small", "named dataset scale: tiny, small or default")
	n := flag.Int("n", 10000, "vertex count (twitter, powerlaw, uniform)")
	m := flag.Int("m", 100000, "edge count (uniform)")
	avgDeg := flag.Float64("avgdeg", 10, "average degree (powerlaw)")
	alpha := flag.Float64("alpha", 2.0, "power-law constant (powerlaw)")
	rmatScale := flag.Int("rmatscale", 14, "log2 vertex count (rmat)")
	edgeFactor := flag.Int("edgefactor", 16, "edges per vertex (rmat)")
	rows := flag.Int("rows", 100, "grid rows (road)")
	cols := flag.Int("cols", 100, "grid cols (road)")
	seed := flag.Uint64("seed", 1, "generator seed")
	weighted := flag.Bool("weighted", false, "attach uniform random weights in (0,100]")
	format := flag.String("format", "text", "output format: text, bin or dimacs")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var (
		nv    int
		edges []graph.Edge
	)
	if *dataset != "" {
		sc, ok := map[string]gen.Scale{"tiny": gen.Tiny, "small": gen.Small, "default": gen.Default}[*scaleFlag]
		if !ok {
			fail("unknown scale %q", *scaleFlag)
		}
		g, err := gen.Load(gen.Dataset(*dataset), sc, *weighted)
		if err != nil {
			fail("%v", err)
		}
		writeGraph(g, *format, *out)
		return
	}
	switch *kind {
	case "twitter":
		nv, edges = gen.TwitterLike(*n, *seed)
	case "powerlaw":
		nv, edges = gen.Powerlaw(*n, *avgDeg, *alpha, *seed)
	case "rmat":
		nv, edges = gen.RMAT(*rmatScale, *edgeFactor, *seed)
	case "road":
		nv, edges = gen.RoadGrid(*rows, *cols, *seed)
		*weighted = true
	case "uniform":
		nv, edges = gen.Uniform(*n, *m, *seed)
	case "":
		fail("one of -dataset or -kind is required")
	default:
		fail("unknown kind %q", *kind)
	}
	if *weighted && *kind != "road" {
		gen.AddRandomWeights(edges, *seed)
	}
	write(nv, edges, *weighted, *format, *out)
}

func writeGraph(g *graph.Graph, format, out string) {
	edges := make([]graph.Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.OutNeighbors(graph.Vertex(v))
		wts := g.OutWeights(graph.Vertex(v))
		for j, u := range nbrs {
			e := graph.Edge{Src: graph.Vertex(v), Dst: u}
			if wts != nil {
				e.Wt = wts[j]
			}
			edges = append(edges, e)
		}
	}
	write(g.NumVertices(), edges, g.Weighted(), format, out)
}

func write(n int, edges []graph.Edge, weighted bool, format, out string) {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch format {
	case "text":
		err = graph.WriteEdgeList(w, n, edges, weighted)
	case "bin":
		err = graph.WriteBinary(w, n, edges, weighted)
	case "dimacs":
		err = graph.WriteDIMACS(w, n, edges)
	default:
		fail("unknown format %q", format)
	}
	if err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote %d vertices, %d edges (weighted=%t)\n", n, len(edges), weighted)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
