// Command simdump prints the bit-exact simulated outputs of every
// system x algorithm cell of the evaluation matrix. Its output must be
// byte-identical before and after any host-side performance change: the
// simulated clock is the paper reproduction, so optimizations may only
// change host wall-clock time. Diff two runs (or two builds) to verify.
//
//	go run ./cmd/simdump            # Tiny scale (fast)
//	go run ./cmd/simdump -scale small
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"polymer/internal/bench"
	"polymer/internal/gen"
	"polymer/internal/numa"
)

func main() {
	scale := flag.String("scale", "tiny", "dataset scale: tiny or small")
	flag.Parse()

	sc := gen.Tiny
	switch *scale {
	case "tiny":
	case "small":
		sc = gen.Small
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	topo := numa.IntelXeon80()
	for _, alg := range bench.Algos() {
		g, err := bench.LoadDataset(gen.Twitter, sc, alg)
		if err != nil {
			log.Fatal(err)
		}
		for _, sys := range bench.Systems() {
			m := numa.NewMachine(topo, topo.Sockets, topo.CoresPerSocket)
			r := bench.Run(sys, alg, g, m)
			// %x prints the exact float64 bits; any drift shows up.
			fmt.Fprintf(os.Stdout,
				"%-8s %-4s sim=%x checksum=%x local=%d remote=%d miss=%x remoteMiss=%x peak=%d\n",
				sys, alg, r.SimSeconds, r.Checksum,
				r.Stats.LocalCount, r.Stats.RemoteCount,
				r.Stats.MissCount, r.Stats.RemoteMissRate, r.PeakBytes)
		}
	}
}
