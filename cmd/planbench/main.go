// Command planbench sweeps the cost-model planner against the exhaustive
// oracle: every (corpus graph, algorithm) cell runs every candidate for
// real, and the planner's pick is scored by its regret against the true
// argmin. This is the calibration harness and the nightly regression
// gate for the planner.
//
//	planbench                        # full corpus, human-readable table
//	planbench -gate 0.10             # exit 1 if mean regret exceeds 10%
//	planbench -o regret.json -rows   # JSON artifact with per-candidate rows
//	planbench -machine amd -learn -passes 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"polymer/internal/bench"
	"polymer/internal/numa"
	"polymer/internal/plan"
)

func main() {
	machineFlag := flag.String("machine", "intel", "topology: intel or amd")
	socketsFlag := flag.Int("sockets", 0, "requested sockets per cell (0 = all)")
	coresFlag := flag.Int("cores", 2, "cores per socket (0 = all)")
	algsFlag := flag.String("algs", "pr,bfs,sssp", "comma-separated algorithms to sweep")
	learnFlag := flag.Bool("learn", false, "feed each pick's observation back to the learner")
	passesFlag := flag.Int("passes", 1, "sweep passes (with -learn, later passes show the learned planner)")
	rowsFlag := flag.Bool("rows", false, "keep per-candidate measurement rows in the artifact")
	outFlag := flag.String("o", "", "write the sweep result as JSON to this file")
	gateFlag := flag.Float64("gate", 0, "exit non-zero when cost-weighted regret exceeds this fraction (0 = no gate)")
	flag.Parse()

	topo := numa.IntelXeon80()
	if *machineFlag == "amd" {
		topo = numa.AMDOpteron64()
	}
	sockets, cores := *socketsFlag, *coresFlag
	if sockets == 0 {
		sockets = topo.Sockets
	}
	if cores == 0 {
		cores = topo.CoresPerSocket
	}
	var algs []bench.Algo
	known := map[string]bench.Algo{
		"pr": bench.PR, "spmv": bench.SpMV, "bp": bench.BP,
		"bfs": bench.BFS, "cc": bench.CC, "sssp": bench.SSSP,
	}
	for _, f := range strings.Split(*algsFlag, ",") {
		a, ok := known[strings.ToLower(strings.TrimSpace(f))]
		if !ok {
			fail("unknown algorithm %q in -algs", f)
		}
		algs = append(algs, a)
	}

	p := plan.New(topo, cores)
	entries := plan.Corpus()
	var res plan.SweepResult
	for pass := 0; pass < *passesFlag; pass++ {
		res = plan.Sweep(p, entries, algs, sockets, *learnFlag, *rowsFlag)
		if *passesFlag > 1 {
			fmt.Printf("pass %d: cost regret %.1f%%  mean %.1f%%  max %.1f%%  (%d cells)\n",
				pass+1, res.CostRegret*100, res.MeanRegret*100, res.MaxRegret*100, len(res.Cells))
		}
	}

	fmt.Printf("planner v%d vs oracle — %s, %d sockets x %d cores, %d cells\n\n",
		plan.Version, res.Topology, res.Nodes, res.Cores, len(res.Cells))
	fmt.Printf("%-22s %-5s %-26s %-26s %8s\n", "graph", "alg", "pick", "oracle", "regret")
	for _, c := range res.Cells {
		match := ""
		if c.Pick == c.Oracle {
			match = "  =oracle"
		}
		fmt.Printf("%-22s %-5s %-26s %-26s %7.1f%%%s\n",
			c.Graph, c.Alg, c.Pick, c.Oracle, c.Regret*100, match)
	}
	// Cost regret is the acceptance metric: the extra simulated cost the
	// picks incur over the oracle, weighted by actual cost. The unweighted
	// per-cell mean is the diagnostic that surfaces corner-case misses.
	fmt.Printf("\ncost regret: %.1f%%   per-cell mean: %.1f%%   max: %.1f%%\n",
		res.CostRegret*100, res.MeanRegret*100, res.MaxRegret*100)

	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fail("%v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			fail("writing artifact: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("writing artifact: %v", err)
		}
		fmt.Printf("artifact   : %s\n", *outFlag)
	}
	if *gateFlag > 0 && res.CostRegret > *gateFlag {
		fail("cost regret %.1f%% exceeds the %.1f%% gate", res.CostRegret*100, *gateFlag*100)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "planbench: "+format+"\n", args...)
	os.Exit(1)
}
