// Command polymer runs one graph algorithm on one dataset with a chosen
// engine and prints the simulated runtime, access statistics and a result
// summary.
//
// Usage:
//
//	polymer -algo pr -graph twitter -system polymer -sockets 8 -cores 10
//	polymer -algo bfs -graph roadUS -system xstream -scale small
//	polymer -algo sssp -file my-graph.txt -src 42
//	polymer -algo pr -graph powerlaw -scale tiny -fault "panic@2:t3,offline@1:n1"
//	polymer -algo pr -graph powerlaw -scale tiny -fault-seed 7
//	polymer -algo pr -graph powerlaw -scale tiny -trace trace.json -breakdown
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"polymer/internal/bench"
	"polymer/internal/core"
	"polymer/internal/fault"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/obs"
)

func main() {
	algoFlag := flag.String("algo", "pr", "algorithm: pr, spmv, bp, bfs, cc or sssp")
	graphFlag := flag.String("graph", "twitter", "dataset: twitter, rmat24, rmat27, powerlaw or roadUS")
	fileFlag := flag.String("file", "", "load an edge-list file instead of a generated dataset")
	systemFlag := flag.String("system", "polymer", "engine: polymer, ligra, xstream or galois")
	scaleFlag := flag.String("scale", "default", "dataset scale: tiny, small or default")
	machineFlag := flag.String("machine", "intel", "topology: intel or amd")
	socketsFlag := flag.Int("sockets", 0, "sockets to use (0 = all)")
	coresFlag := flag.Int("cores", 0, "cores per socket (0 = all)")
	srcFlag := flag.Uint("src", 0, "source vertex for bfs/sssp")
	phasesFlag := flag.Bool("phases", false, "print the per-phase execution trace (polymer only)")
	traceFlag := flag.String("trace", "", "write a Chrome trace_event JSON file (open in Perfetto or chrome://tracing)")
	breakdownFlag := flag.Bool("breakdown", false, "print the per-superstep NUMA traffic breakdown")
	faultFlag := flag.String("fault", "", "inject a fault spec, e.g. panic@2:t3,stall@1:t0,offline@1:n1,link@3:n0-n1*0.25,alloc@-1")
	faultSeedFlag := flag.Uint64("fault-seed", 0, "generate a deterministic fault schedule from this seed (overridden by -fault)")
	faultRetriesFlag := flag.Int("fault-retries", 3, "whole-run restarts allowed for setup-time faults")
	flag.Parse()

	alg, ok := map[string]bench.Algo{
		"pr": bench.PR, "spmv": bench.SpMV, "bp": bench.BP,
		"bfs": bench.BFS, "cc": bench.CC, "sssp": bench.SSSP,
	}[strings.ToLower(*algoFlag)]
	if !ok {
		fail("unknown algorithm %q", *algoFlag)
	}
	sys, ok := map[string]bench.System{
		"polymer": bench.Polymer, "ligra": bench.Ligra,
		"xstream": bench.XStream, "x-stream": bench.XStream, "galois": bench.Galois,
	}[strings.ToLower(*systemFlag)]
	if !ok {
		fail("unknown system %q", *systemFlag)
	}
	sc, ok := map[string]gen.Scale{"tiny": gen.Tiny, "small": gen.Small, "default": gen.Default}[*scaleFlag]
	if !ok {
		fail("unknown scale %q", *scaleFlag)
	}
	topo := numa.IntelXeon80()
	if *machineFlag == "amd" {
		topo = numa.AMDOpteron64()
	}
	sockets, cores := *socketsFlag, *coresFlag
	if sockets == 0 {
		sockets = topo.Sockets
	}
	if cores == 0 {
		cores = topo.CoresPerSocket
	}

	var (
		g   *graph.Graph
		err error
	)
	if *fileFlag != "" {
		f, ferr := os.Open(*fileFlag)
		if ferr != nil {
			fail("%v", ferr)
		}
		var (
			n        int
			edges    []graph.Edge
			weighted bool
			perr     error
		)
		switch {
		case strings.HasSuffix(*fileFlag, ".gr"):
			n, edges, perr = graph.ReadDIMACS(f)
			weighted = true
		case strings.HasSuffix(*fileFlag, ".bin"):
			n, edges, weighted, perr = graph.ReadBinary(f)
		default:
			n, edges, weighted, perr = graph.ReadEdgeList(f)
		}
		f.Close()
		if perr != nil {
			fail("%v", perr)
		}
		if alg.Weighted() && !weighted {
			gen.AddRandomWeights(edges, 1)
			weighted = true
		}
		g = graph.FromEdges(n, edges, weighted)
	} else {
		g, err = bench.LoadDataset(gen.Dataset(*graphFlag), sc, alg)
		if err != nil {
			fail("%v", err)
		}
	}
	src := graph.Vertex(*srcFlag)
	if int(src) >= g.NumVertices() {
		fail("source %d outside [0,%d)", src, g.NumVertices())
	}

	m, err := numa.NewMachineChecked(topo, sockets, cores)
	if err != nil {
		fail("%v", err)
	}
	// The trace flags share one tracer: every sink sees the same event
	// stream, so -trace and -breakdown compose.
	var (
		chrome *obs.Chrome
		bd     *obs.Breakdown
		sinks  obs.Multi
	)
	if *traceFlag != "" {
		chrome = obs.NewChrome()
		sinks = append(sinks, chrome)
	}
	if *breakdownFlag {
		bd = obs.NewBreakdown()
		sinks = append(sinks, bd)
	}
	var tr *obs.Tracer
	if len(sinks) > 0 {
		tr = obs.New(sinks)
	}

	wall := time.Now()
	var (
		r      bench.RunResult
		phases []core.PhaseRecord
		rep    *bench.ResilienceReport
	)
	switch {
	case *faultFlag != "" || *faultSeedFlag != 0:
		var evs []*fault.Event
		if *faultFlag != "" {
			evs, err = fault.ParseSpec(*faultFlag)
			if err != nil {
				fail("%v", err)
			}
		} else {
			evs = fault.Schedule(*faultSeedFlag, 5, sockets*cores, sockets)
		}
		inj := fault.NewInjector(evs)
		mk := func() *numa.Machine { return numa.NewMachine(topo, sockets, cores) }
		opt := bench.ResilientOptions{MaxRestarts: *faultRetriesFlag, SessionRetries: -1, Src: src, Tracer: tr}
		var rr bench.ResilienceReport
		r, rr, err = bench.RunResilientCtx(context.Background(), sys, alg, g, mk, inj, opt)
		if err != nil {
			// The report still records every rollback and restart attempted
			// before the retry budget ran out — print it so a failed run is
			// diagnosable, then exit non-zero.
			fmt.Fprintf(os.Stderr, "%s", rr.Format())
			fail("%v", err)
		}
		rep = &rr
	case *phasesFlag && sys == bench.Polymer:
		r, phases = bench.RunPolymerTraced(alg, g, m, src)
	default:
		r = bench.RunWithTracer(sys, alg, g, m, src, tr)
	}
	elapsed := time.Since(wall)

	fmt.Printf("system     : %s\n", sys)
	fmt.Printf("algorithm  : %s\n", alg)
	fmt.Printf("graph      : %s\n", g)
	fmt.Printf("machine    : %s\n", m)
	fmt.Printf("sim time   : %.6f s\n", r.SimSeconds)
	fmt.Printf("wall time  : %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("remote rate: %.1f%%  (%.1fM remote accesses)\n", r.Stats.RemoteRate*100, float64(r.Stats.RemoteCount)/1e6)
	fmt.Printf("peak memory: %.1f MB\n", float64(r.PeakBytes)/1e6)
	if r.AgentBytes > 0 {
		fmt.Printf("agents     : %.1f MB\n", float64(r.AgentBytes)/1e6)
	}
	fmt.Printf("checksum   : %g\n", r.Checksum)
	if rep != nil {
		fmt.Printf("\n%s", rep.Format())
	}
	if bd != nil {
		fmt.Printf("\n%s", bd.Format())
	}
	if chrome != nil {
		f, ferr := os.Create(*traceFlag)
		if ferr != nil {
			fail("%v", ferr)
		}
		if err := chrome.Export(f); err != nil {
			f.Close()
			fail("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("writing trace: %v", err)
		}
		fmt.Printf("trace      : %d events -> %s (load in Perfetto or chrome://tracing)\n", chrome.Len(), *traceFlag)
	}
	if len(phases) > 0 {
		fmt.Printf("\n%-4s %-10s %-7s %-6s %12s %14s\n", "#", "phase", "repr", "dir", "active-in", "sim (usec)")
		for i, p := range phases {
			repr, dir := "sparse", "-"
			if p.Dense {
				repr = "dense"
			}
			if p.Kind == "edgemap" {
				if p.Push {
					dir = "push"
				} else {
					dir = "pull"
				}
			}
			fmt.Printf("%-4d %-10s %-7s %-6s %12d %14.2f\n", i, p.Kind, repr, dir, p.ActiveIn, p.SimSeconds*1e6)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "polymer: "+format+"\n", args...)
	os.Exit(1)
}
