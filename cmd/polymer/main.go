// Command polymer runs one graph algorithm on one dataset with a chosen
// engine and prints the simulated runtime, access statistics and a result
// summary.
//
// Usage:
//
//	polymer -algo pr -graph twitter -system polymer -sockets 8 -cores 10
//	polymer -algo bfs -graph roadUS -system xstream -scale small
//	polymer -algo pr -graph powerlaw -system auto -plan
//	polymer -algo sssp -graph roadUS -scale small -system auto
//	polymer -algo sssp -file my-graph.txt -src 42
//	polymer -algo pr -graph powerlaw -scale tiny -fault "panic@2:t3,offline@1:n1"
//	polymer -algo pr -graph powerlaw -scale tiny -fault-seed 7
//	polymer -algo pr -graph powerlaw -scale tiny -trace trace.json -breakdown
//	polymer -algo pr -graph powerlaw -scale huge -machines 4 -replicas 2
//	polymer -algo bfs -graph rmat24 -machines 6 -replicas 4 -fault-seed 11
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"polymer/internal/bench"
	"polymer/internal/cluster"
	"polymer/internal/core"
	"polymer/internal/fault"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/plan"
)

func main() {
	algoFlag := flag.String("algo", "pr", "algorithm: pr, spmv, bp, bfs, cc or sssp")
	graphFlag := flag.String("graph", "twitter", "dataset: twitter, rmat24, rmat27, powerlaw or roadUS")
	fileFlag := flag.String("file", "", "load an edge-list file instead of a generated dataset")
	systemFlag := flag.String("system", "polymer", "engine: polymer, ligra, xstream, galois or auto (cost-model planner chooses)")
	planFlag := flag.Bool("plan", false, "print the planner's scored decision table before running")
	scaleFlag := flag.String("scale", "default", "dataset scale: tiny, small, default or huge")
	machineFlag := flag.String("machine", "intel", "topology: intel or amd")
	socketsFlag := flag.Int("sockets", 0, "sockets to use (0 = all)")
	coresFlag := flag.Int("cores", 0, "cores per socket (0 = all)")
	srcFlag := flag.Uint("src", 0, "source vertex for bfs/sssp")
	phasesFlag := flag.Bool("phases", false, "print the per-phase execution trace (polymer only)")
	traceFlag := flag.String("trace", "", "write a Chrome trace_event JSON file (open in Perfetto or chrome://tracing)")
	breakdownFlag := flag.Bool("breakdown", false, "print the per-superstep NUMA traffic breakdown")
	faultFlag := flag.String("fault", "", "inject a fault spec, e.g. panic@2:t3,stall@1:t0,offline@1:n1,link@3:n0-n1*0.25,alloc@-1")
	faultSeedFlag := flag.Uint64("fault-seed", 0, "generate a deterministic fault schedule from this seed (overridden by -fault)")
	faultRetriesFlag := flag.Int("fault-retries", 3, "whole-run restarts allowed for setup-time faults")
	machinesFlag := flag.Int("machines", 0, "replicated cluster run across this many simulated machines (0 = single machine)")
	replicasFlag := flag.Int("replicas", 0, "replicas per shard for cluster runs (0 = min(2, machines))")
	dramBytesFlag := flag.Int64("dram-bytes", 0, "per-node DRAM budget in bytes (0 = untiered; demand beyond it spills to the simulated slow tier)")
	tierFlag := flag.String("tier", "hot", "tier placement policy when -dram-bytes is set: hot (degree-ranked residency) or interleave (uniform spill)")
	promoteEveryFlag := flag.Int("promote-every", 1, "phases between hot-policy promotion passes (0 = static placement)")
	flag.Parse()

	alg, ok := map[string]bench.Algo{
		"pr": bench.PR, "spmv": bench.SpMV, "bp": bench.BP,
		"bfs": bench.BFS, "cc": bench.CC, "sssp": bench.SSSP,
	}[strings.ToLower(*algoFlag)]
	if !ok {
		fail("unknown algorithm %q", *algoFlag)
	}
	autoSys := strings.EqualFold(*systemFlag, "auto")
	var sys bench.System
	if !autoSys {
		sys, ok = map[string]bench.System{
			"polymer": bench.Polymer, "ligra": bench.Ligra,
			"xstream": bench.XStream, "x-stream": bench.XStream, "galois": bench.Galois,
		}[strings.ToLower(*systemFlag)]
		if !ok {
			fail("unknown system %q (want polymer, ligra, xstream, galois or auto)", *systemFlag)
		}
	}
	sc, ok := map[string]gen.Scale{"tiny": gen.Tiny, "small": gen.Small, "default": gen.Default, "huge": gen.Huge}[*scaleFlag]
	if !ok {
		fail("unknown scale %q (want tiny, small, default or huge)", *scaleFlag)
	}
	topo := numa.IntelXeon80()
	if *machineFlag == "amd" {
		topo = numa.AMDOpteron64()
	}
	sockets, cores := *socketsFlag, *coresFlag
	if sockets == 0 {
		sockets = topo.Sockets
	}
	if cores == 0 {
		cores = topo.CoresPerSocket
	}

	// -dram-bytes arms the simulated slow tier on every machine this run
	// builds (including fault-path rebuilds); the policy decides what
	// stays DRAM-resident.
	var tierCfg numa.TierConfig
	if *dramBytesFlag > 0 {
		pol, perr := numa.ParseTierPolicy(*tierFlag)
		if perr != nil {
			fail("%v", perr)
		}
		if pol == numa.TierNone {
			fail("-dram-bytes needs a tier policy: pass -tier hot or -tier interleave")
		}
		tierCfg = numa.TierConfig{DRAMPerNode: *dramBytesFlag, Policy: pol, PromoteEvery: *promoteEveryFlag}
	}

	var (
		g   *graph.Graph
		err error
	)
	if *fileFlag != "" {
		f, ferr := os.Open(*fileFlag)
		if ferr != nil {
			fail("%v", ferr)
		}
		var (
			n        int
			edges    []graph.Edge
			weighted bool
			perr     error
		)
		switch {
		case strings.HasSuffix(*fileFlag, ".gr"):
			n, edges, perr = graph.ReadDIMACS(f)
			weighted = true
		case strings.HasSuffix(*fileFlag, ".bin"):
			n, edges, weighted, perr = graph.ReadBinary(f)
		default:
			n, edges, weighted, perr = graph.ReadEdgeList(f)
		}
		f.Close()
		if perr != nil {
			fail("%v", perr)
		}
		if alg.Weighted() && !weighted {
			gen.AddRandomWeights(edges, 1)
			weighted = true
		}
		g = graph.FromEdges(n, edges, weighted)
	} else {
		g, err = bench.LoadDataset(gen.Dataset(*graphFlag), sc, alg)
		if err != nil {
			fail("%v", err)
		}
	}
	src := graph.Vertex(*srcFlag)
	if int(src) >= g.NumVertices() {
		fail("source %d outside [0,%d)", src, g.NumVertices())
	}

	// The trace flags share one tracer: every sink sees the same event
	// stream, so -trace and -breakdown compose.
	var (
		chrome *obs.Chrome
		bd     *obs.Breakdown
		sinks  obs.Multi
	)
	if *traceFlag != "" {
		chrome = obs.NewChrome()
		sinks = append(sinks, chrome)
	}
	if *breakdownFlag {
		bd = obs.NewBreakdown()
		sinks = append(sinks, bd)
	}
	var tr *obs.Tracer
	if len(sinks) > 0 {
		tr = obs.New(sinks)
	}

	// Cluster runs replace the single simulated machine with N replicated
	// ones behind the network cost model; everything after this branch is
	// the single-machine path.
	if *machinesFlag > 0 {
		if *planFlag {
			fail("-plan does not apply to cluster runs (the substrate is polymer-only)")
		}
		if tierCfg.Tiered() {
			fail("-dram-bytes applies to single-machine runs only (cluster machines are untiered)")
		}
		calg, ok := map[bench.Algo]cluster.Algo{
			bench.PR: cluster.PR, bench.BFS: cluster.BFS, bench.SSSP: cluster.SSSP,
		}[alg]
		if !ok {
			fail("algorithm %s is not served on the cluster substrate (want pr, bfs or sssp)", alg)
		}
		if *faultFlag != "" {
			fail("single-machine fault specs don't apply to cluster runs; use -fault-seed for cluster chaos")
		}
		cfg := cluster.Config{
			Machines: *machinesFlag, Replicas: *replicasFlag,
			Topo: topo, Nodes: sockets, Cores: cores, Tracer: tr,
		}
		if *faultSeedFlag != 0 {
			cfg.Events = fault.ClusterChaos(*faultSeedFlag, 3, *machinesFlag)
		}
		cl, err := cluster.New(g, cfg)
		if err != nil {
			fail("%v", err)
		}
		wall := time.Now()
		res, err := cl.Run(context.Background(), calg, src)
		if err != nil {
			fail("%v", err)
		}
		elapsed := time.Since(wall)

		healthy := 0
		for _, mh := range res.Machines {
			if mh.State == "healthy" {
				healthy++
			}
		}
		replicas := *replicasFlag
		if replicas <= 0 {
			replicas = 2
		}
		if replicas > *machinesFlag {
			replicas = *machinesFlag
		}
		fmt.Printf("algorithm  : %s\n", alg)
		fmt.Printf("graph      : %s\n", g)
		fmt.Printf("cluster    : %d machines x (%d nodes x %d cores), %d replicas/shard\n",
			*machinesFlag, sockets, cores, replicas)
		fmt.Printf("sim time   : %.6f s\n", res.SimSeconds)
		fmt.Printf("wall time  : %v\n", elapsed.Round(time.Millisecond))
		fmt.Printf("supersteps : %d\n", res.Supersteps)
		fmt.Printf("failovers  : %d\n", res.Failovers)
		fmt.Printf("health     : %d/%d machines healthy\n", healthy, len(res.Machines))
		fmt.Printf("net traffic: %.2f MB\n", res.NetBytes/1e6)
		fmt.Printf("remote rate: %.1f%%  (%.1fM remote accesses)\n", res.Stats.RemoteRate*100, float64(res.Stats.RemoteCount)/1e6)
		fmt.Printf("checksum   : %g\n", res.Checksum)
		for _, mh := range res.Machines {
			fmt.Printf("  m%-3d %-8s shards %v\n", mh.ID, mh.State, mh.Shards)
		}
		if len(res.Protocol) > 0 {
			fmt.Printf("\nfailover protocol:\n")
			for _, line := range res.Protocol {
				fmt.Printf("  %s\n", line)
			}
		}
		fmt.Printf("\n%s", cluster.FormatLinks(res.Links))
		if *breakdownFlag && res.Traffic != nil {
			fmt.Printf("\n%s", cluster.FormatTraffic(res.Traffic))
		}
		if bd != nil {
			fmt.Printf("\n%s", bd.Format())
		}
		exportChrome(chrome, *traceFlag)
		return
	}

	// -system auto hands the (engine, placement, width) choice to the
	// cost-model planner; -plan prints the scored table either way (with
	// an explicit engine the table is restricted to that engine).
	var (
		layout    mem.Placement
		layoutSet bool
	)
	if autoSys || *planFlag {
		feats := plan.Profile(g)
		q := plan.Query{Features: feats, Alg: alg, Nodes: sockets, NodesFixed: *socketsFlag != 0, Tier: tierCfg}
		if !autoSys {
			q.EngineFixed = sys
		}
		d := plan.New(topo, cores).Resolve(q)
		if *planFlag {
			fmt.Printf("profile    : %s\n", feats)
			fmt.Printf("planner v%d decision table:\n", plan.Version)
			for _, s := range d.Table {
				mark := " "
				if s.Candidate == d.Pick {
					mark = "*"
				}
				note := ""
				if s.Vetoed {
					note = "  vetoed"
				}
				fmt.Printf("  %s %-30s cost %10.6f s   raw %10.6f s%s\n",
					mark, s.Candidate, s.Cost, s.Raw, note)
			}
			if d.Fallback {
				fmt.Printf("  (every candidate vetoed: fallback pick)\n")
			}
		}
		if autoSys {
			sys, sockets = d.Pick.Engine, d.Pick.Nodes
			if sys == bench.Polymer && d.Pick.Placement != mem.CoLocated {
				layout, layoutSet = d.Pick.Placement, true
			}
			fmt.Printf("planned    : %s (predicted %.6f s)\n", d.Pick, d.Predicted)
		}
	}

	m, err := numa.NewMachineChecked(topo, sockets, cores)
	if err != nil {
		fail("%v", err)
	}
	if tierCfg.Tiered() {
		if err := m.SetTierConfig(tierCfg); err != nil {
			fail("%v", err)
		}
	}

	wall := time.Now()
	var (
		r      bench.RunResult
		phases []core.PhaseRecord
		rep    *bench.ResilienceReport
	)
	switch {
	case *faultFlag != "" || *faultSeedFlag != 0:
		var evs []*fault.Event
		if *faultFlag != "" {
			evs, err = fault.ParseSpec(*faultFlag)
			if err != nil {
				fail("%v", err)
			}
		} else {
			evs = fault.Schedule(*faultSeedFlag, 5, sockets*cores, sockets)
		}
		inj := fault.NewInjector(evs)
		mk := func() *numa.Machine {
			fm := numa.NewMachine(topo, sockets, cores)
			if tierCfg.Tiered() {
				if err := fm.SetTierConfig(tierCfg); err != nil {
					panic(err)
				}
			}
			return fm
		}
		opt := bench.ResilientOptions{MaxRestarts: *faultRetriesFlag, SessionRetries: -1, Src: src, Tracer: tr}
		if layoutSet {
			opt.Layout, opt.LayoutSet = layout, true
		}
		var rr bench.ResilienceReport
		r, rr, err = bench.RunResilientCtx(context.Background(), sys, alg, g, mk, inj, opt)
		if err != nil {
			// The report still records every rollback and restart attempted
			// before the retry budget ran out — print it so a failed run is
			// diagnosable, then exit non-zero.
			fmt.Fprintf(os.Stderr, "%s", rr.Format())
			fail("%v", err)
		}
		rep = &rr
	case layoutSet:
		// The planner chose a non-native placement; the placed entry point
		// carries the layout through to the engine.
		r, err = bench.RunPlacedFrom(sys, alg, g, m, src, layout)
		if err != nil {
			fail("%v", err)
		}
	case *phasesFlag && sys == bench.Polymer:
		r, phases = bench.RunPolymerTraced(alg, g, m, src)
	default:
		r = bench.RunWithTracer(sys, alg, g, m, src, tr)
	}
	elapsed := time.Since(wall)

	fmt.Printf("system     : %s\n", sys)
	fmt.Printf("algorithm  : %s\n", alg)
	fmt.Printf("graph      : %s\n", g)
	fmt.Printf("machine    : %s\n", m)
	if tierCfg.Tiered() {
		fmt.Printf("tier       : %s policy, %.1f MB DRAM/node, slow-tier rate %.1f%%\n",
			tierCfg.Policy, float64(tierCfg.DRAMPerNode)/1e6, r.Stats.SlowRate*100)
	}
	fmt.Printf("sim time   : %.6f s\n", r.SimSeconds)
	fmt.Printf("wall time  : %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("remote rate: %.1f%%  (%.1fM remote accesses)\n", r.Stats.RemoteRate*100, float64(r.Stats.RemoteCount)/1e6)
	fmt.Printf("peak memory: %.1f MB\n", float64(r.PeakBytes)/1e6)
	if r.AgentBytes > 0 {
		fmt.Printf("agents     : %.1f MB\n", float64(r.AgentBytes)/1e6)
	}
	fmt.Printf("checksum   : %g\n", r.Checksum)
	if rep != nil {
		fmt.Printf("\n%s", rep.Format())
	}
	if bd != nil {
		fmt.Printf("\n%s", bd.Format())
	}
	exportChrome(chrome, *traceFlag)
	if len(phases) > 0 {
		fmt.Printf("\n%-4s %-10s %-7s %-6s %12s %14s\n", "#", "phase", "repr", "dir", "active-in", "sim (usec)")
		for i, p := range phases {
			repr, dir := "sparse", "-"
			if p.Dense {
				repr = "dense"
			}
			if p.Kind == "edgemap" {
				if p.Push {
					dir = "push"
				} else {
					dir = "pull"
				}
			}
			fmt.Printf("%-4d %-10s %-7s %-6s %12d %14.2f\n", i, p.Kind, repr, dir, p.ActiveIn, p.SimSeconds*1e6)
		}
	}
}

func exportChrome(chrome *obs.Chrome, path string) {
	if chrome == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	if err := chrome.Export(f); err != nil {
		f.Close()
		fail("writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("writing trace: %v", err)
	}
	fmt.Printf("trace      : %d events -> %s (load in Perfetto or chrome://tracing)\n", chrome.Len(), path)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "polymer: "+format+"\n", args...)
	os.Exit(1)
}
