// Command servebench measures what the serve-side execution-reuse layer
// buys under a duplicate-heavy workload. It runs the identical Zipf
// request schedule against two in-process polymerd servers — "before"
// with coalescing, batching and the result cache disabled, "after" with
// all three on — using closed-loop clients, and reports per-arm latency
// percentiles and goodput plus the after/before ratios.
//
// The ratios, not the absolute numbers, are the CI contract: they divide
// out the host machine, so -baseline can gate regressions on any runner.
//
// Usage:
//
//	servebench -requests 400 -clients 16 -out BENCH_serving.json
//	servebench -requests 400 -baseline BENCH_serving.json   # CI gate
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polymer/internal/bench"
	"polymer/internal/serve"
)

type armReport struct {
	bench.ServingStats
	Counters serve.CounterSnapshot `json:"counters"`
}

type report struct {
	Workload struct {
		Requests int     `json:"requests"`
		Clients  int     `json:"clients"`
		Zipf     float64 `json:"zipf_s"`
		Sources  int     `json:"sources"`
		Seed     uint64  `json:"seed"`
		Distinct int     `json:"distinct_queries"`
	} `json:"workload"`
	Before  armReport `json:"before"`
	After   armReport `json:"after"`
	Speedup struct {
		Goodput float64 `json:"goodput"`
		P50     float64 `json:"p50"`
		P99     float64 `json:"p99"`
	} `json:"speedup"`
}

func main() {
	requests := flag.Int("requests", 400, "total requests per arm")
	clients := flag.Int("clients", 16, "concurrent closed-loop clients")
	zipfS := flag.Float64("zipf", 1.1, "Zipf skew over the query population")
	sources := flag.Int("sources", 48, "distinct traversal sources in the population")
	seed := flag.Uint64("seed", 1, "schedule RNG seed")
	workers := flag.Int("workers", 4, "server worker pool size")
	queue := flag.Int("queue", 32, "server admission queue depth")
	out := flag.String("out", "", "write the JSON report here")
	baseline := flag.String("baseline", "", "compare against a checked-in report; nonzero exit on regression")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative goodput-ratio regression vs the baseline")
	flag.Parse()

	pop := bench.ServingPopulation(*sources)
	sched := bench.ZipfSchedule(pop, *requests, *zipfS, *seed)

	var rep report
	rep.Workload.Requests = *requests
	rep.Workload.Clients = *clients
	rep.Workload.Zipf = *zipfS
	rep.Workload.Sources = *sources
	rep.Workload.Seed = *seed
	distinct := map[string]bool{}
	for _, q := range sched {
		distinct[q.Name] = true
	}
	rep.Workload.Distinct = len(distinct)

	fmt.Fprintf(os.Stderr, "servebench: %d requests (%d distinct) x 2 arms, %d clients\n",
		*requests, len(distinct), *clients)
	rep.Before = runArm("before", serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		DisableCoalesce:  true,
		DisableBatch:     true,
		ResultCacheBytes: -1,
	}, sched, *clients)
	rep.After = runArm("after", serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
	}, sched, *clients)

	if rep.Before.GoodputRPS > 0 {
		rep.Speedup.Goodput = rep.After.GoodputRPS / rep.Before.GoodputRPS
	}
	if rep.After.P50Ms > 0 {
		rep.Speedup.P50 = rep.Before.P50Ms / rep.After.P50Ms
	}
	if rep.After.P99Ms > 0 {
		rep.Speedup.P99 = rep.Before.P99Ms / rep.After.P99Ms
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "servebench: write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		if err := gate(rep, *baseline, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "servebench: REGRESSION: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "servebench: within baseline tolerance")
	}
}

// runArm replays the schedule against a fresh server with closed-loop
// clients and returns the arm's stats. 429s are retried after a short
// pause and counted — shedding pain shows up in the request's latency.
func runArm(name string, cfg serve.Config, sched []bench.ServingQuery, clients int) armReport {
	srv := serve.NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Timeout = 2 * time.Minute

	var next atomic.Int64
	latencies := make([]float64, len(sched))
	var ok, errs, shedRetries atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sched) {
					return
				}
				t0 := time.Now()
				for {
					resp, err := client.Post(ts.URL+"/run", "application/json",
						strings.NewReader(sched[i].Body))
					if err != nil {
						errs.Add(1)
						break
					}
					code := resp.StatusCode
					resp.Body.Close()
					if code == http.StatusTooManyRequests {
						shedRetries.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if code == http.StatusOK {
						ok.Add(1)
					} else {
						errs.Add(1)
					}
					break
				}
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	snap := srv.Counters().Snapshot()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "servebench: %s arm shutdown: %v\n", name, err)
	}
	lat := append([]float64(nil), latencies...)
	sort.Float64s(lat)
	st := bench.SummarizeServing(lat, int(ok.Load()), int(errs.Load()), int(shedRetries.Load()), wall)
	fmt.Fprintf(os.Stderr, "servebench: %s: goodput %.1f req/s, p50 %.2fms, p99 %.2fms (coalesced=%d batched=%d hits=%d shed=%d)\n",
		name, st.GoodputRPS, st.P50Ms, st.P99Ms, snap.Coalesced, snap.Batched, snap.ResultHits, snap.Shed)
	return armReport{ServingStats: st, Counters: snap}
}

// gate compares the machine-independent goodput ratio against the
// checked-in baseline's.
func gate(rep report, path string, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	if base.Speedup.Goodput <= 0 {
		return fmt.Errorf("baseline has no goodput ratio")
	}
	floor := base.Speedup.Goodput * (1 - tol)
	if rep.Speedup.Goodput < floor {
		return fmt.Errorf("goodput ratio %.2fx < %.2fx (baseline %.2fx - %.0f%%)",
			rep.Speedup.Goodput, floor, base.Speedup.Goodput, tol*100)
	}
	return nil
}
