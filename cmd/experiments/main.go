// Command experiments regenerates the paper's tables and figures on the
// simulated NUMA machine and prints them in the layout of the paper's
// evaluation section.
//
// Usage:
//
//	experiments [-scale tiny|small|default] [-machine intel|amd] [-exp all|fig3b|fig4|fig5|table3|fig7|fig8|fig9|table4|table5|fig10a|fig10b|table6a|table6b|fn6|fig11]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"polymer/internal/bench"
	"polymer/internal/gen"
	"polymer/internal/numa"
)

func main() {
	scaleFlag := flag.String("scale", "default", "dataset scale: tiny, small or default")
	machineFlag := flag.String("machine", "intel", "topology for single-machine experiments: intel or amd")
	expFlag := flag.String("exp", "all", "experiment id (comma separated), or all")
	csvDir := flag.String("csv", "", "also write raw CSV files for plotting into this directory")
	flag.Parse()

	var sc gen.Scale
	switch *scaleFlag {
	case "tiny":
		sc = gen.Tiny
	case "small":
		sc = gen.Small
	case "default":
		sc = gen.Default
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	topo := numa.IntelXeon80()
	if *machineFlag == "amd" {
		topo = numa.AMDOpteron64()
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(id string) bool { return all || want[id] }
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	csvOut := func(name string, header []string, rows [][]string) {
		if *csvDir == "" {
			return
		}
		die(bench.WriteCSV(*csvDir, name, header, rows))
	}

	start := time.Now()
	fmt.Printf("# Polymer evaluation — scale=%s machine=%s\n\n", *scaleFlag, topo.Name)

	if run("fig3b") {
		for _, t := range []*numa.Topology{numa.IntelXeon80(), numa.AMDOpteron64()} {
			fmt.Println(bench.FormatLatencyTable(t, bench.LatencyTable(t)))
		}
	}
	if run("fig4") {
		for _, t := range []*numa.Topology{numa.IntelXeon80(), numa.AMDOpteron64()} {
			fmt.Println(bench.FormatBandwidthTable(t, bench.BandwidthTable(t)))
		}
	}
	if run("fig5") {
		baselines := []bench.System{bench.Ligra, bench.XStream, bench.Galois}
		series, err := bench.CoreScaling(numa.IntelXeon80(), sc, baselines)
		die(err)
		fmt.Println(bench.FormatScaling("Figure 5(a): PR/twitter speedup with cores (1 socket, Intel)", "cores", series))
		h, rows := bench.ScalingCSV(series)
		csvOut("fig5a", h, rows)
		series, err = bench.SocketScaling(numa.IntelXeon80(), sc, bench.PR, baselines)
		die(err)
		fmt.Println(bench.FormatScaling("Figure 5(b,c): PR/twitter with sockets (Intel)", "sockets", series))
		h, rows = bench.ScalingCSV(series)
		csvOut("fig5bc", h, rows)
		series, err = bench.SocketScaling(numa.AMDOpteron64(), sc, bench.PR, baselines)
		die(err)
		fmt.Println(bench.FormatScaling("Figure 5(d): PR/twitter with sockets (AMD)", "sockets", series))
		h, rows = bench.ScalingCSV(series)
		csvOut("fig5d", h, rows)
	}
	if run("table3") {
		cells, err := bench.Table3(topo, sc)
		die(err)
		fmt.Println(bench.FormatTable3(cells))
		h, rows := bench.Table3CSV(cells)
		csvOut("table3", h, rows)
	}
	if run("fig7") {
		series, err := bench.SocketScaling(numa.IntelXeon80(), sc, bench.PR, bench.Systems())
		die(err)
		fmt.Println(bench.FormatScaling("Figure 7: PR/twitter with sockets, all systems (Intel)", "sockets", series))
		h, rows := bench.ScalingCSV(series)
		csvOut("fig7", h, rows)
	}
	if run("fig8") {
		series, err := bench.SocketScaling(numa.AMDOpteron64(), sc, bench.PR, bench.Systems())
		die(err)
		fmt.Println(bench.FormatScaling("Figure 8: PR/twitter with sockets, all systems (AMD)", "sockets", series))
		h, rows := bench.ScalingCSV(series)
		csvOut("fig8", h, rows)
	}
	if run("fig9") {
		series, err := bench.SocketScaling(numa.IntelXeon80(), sc, bench.BFS, bench.Systems())
		die(err)
		fmt.Println(bench.FormatScaling("Figure 9: BFS/twitter with sockets, all systems (Intel)", "sockets", series))
		h, rows := bench.ScalingCSV(series)
		csvOut("fig9", h, rows)
	}
	if run("table4") {
		for _, alg := range []bench.Algo{bench.PR, bench.BFS} {
			rows, err := bench.Table4(topo, sc, alg)
			die(err)
			fmt.Println(bench.FormatTable4(alg, rows))
		}
	}
	if run("table5") {
		rows, err := bench.Table5(topo, sc)
		die(err)
		fmt.Println(bench.FormatTable5(rows))
		h, rcsv := bench.Table5CSV(rows)
		csvOut("table5", h, rcsv)
	}
	if run("fig10a") {
		points := bench.BarrierStudy(topo.Sockets, 4, 100)
		fmt.Println(bench.FormatBarrierStudy(points))
		h, rows := bench.BarrierCSV(points)
		csvOut("fig10a", h, rows)
	}
	if run("fig10b") {
		rows, err := bench.Figure10b(topo, sc)
		die(err)
		fmt.Println(bench.FormatAblation("Figure 10(b): w/o (P-Barrier) vs w/ (N-Barrier), roadUS", rows))
		h, rcsv := bench.AblationCSV(rows)
		csvOut("fig10b", h, rcsv)
	}
	if run("table6a") {
		rows, err := bench.Table6a(topo, sc)
		die(err)
		fmt.Println(bench.FormatAblation("Table 6(a): w/o vs w/ adaptive data structures, roadUS", rows))
		h, rcsv := bench.AblationCSV(rows)
		csvOut("table6a", h, rcsv)
	}
	if run("table6b") {
		rows, err := bench.Table6b(topo, sc)
		die(err)
		fmt.Println(bench.FormatAblation("Table 6(b): w/o vs w/ balanced partitioning, twitter", rows))
		h, rcsv := bench.AblationCSV(rows)
		csvOut("table6b", h, rcsv)
	}
	if run("fn6") {
		rows, err := bench.IterationOverhead(topo, sc)
		die(err)
		fmt.Println(bench.FormatIterationOverhead(rows))
	}
	if run("fig11") {
		r, err := bench.Figure11(topo, sc)
		die(err)
		fmt.Println(bench.FormatFigure11(r))
		h, rows := bench.Fig11CSV(r)
		csvOut("fig11", h, rows)
	}
	fmt.Printf("# done in %v\n", time.Since(start).Round(time.Millisecond))
}
