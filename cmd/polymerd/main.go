// Command polymerd serves graph-analytics requests over HTTP/JSON with
// production robustness: bounded admission with load shedding, per-request
// deadlines, retry with backoff over checkpoint/rollback recovery, a
// per-engine circuit breaker with degraded-mode fallback, graceful drain
// on SIGTERM/SIGINT, and an execution-reuse layer — identical in-flight
// requests coalesce into one run, traversal point queries batch into
// multi-source sweeps, and full-fidelity results replay from a versioned
// cache until the dataset is invalidated.
//
// Requests that omit "system" (or say "auto") hand the engine, placement
// and width choice to the cost-model planner, which learns online from
// the traffic it observes; responses carry the decision under "plan".
//
// Usage:
//
//	polymerd -addr :8080 -queue 64 -workers 4 -budget 30s
//
//	curl -s localhost:8080/run -d '{"algo":"pr","system":"polymer","graph":"powerlaw","scale":"tiny"}'
//	curl -s localhost:8080/run -d '{"algo":"pr","graph":"powerlaw","scale":"tiny"}'   # planner chooses
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metricsz
//	curl -s -X POST 'localhost:8080/invalidatez?graph=powerlaw'   # dataset refresh hook
//	curl -s localhost:8080/debugz/trace   # flight recorder dump
//
// With -wal-dir set, streaming mutations are enabled: POST /mutatez
// appends a batch of edge inserts/deletes to a crash-consistent
// write-ahead log, publishes a new graph snapshot, and bumps the
// dataset's generation so cached results invalidate automatically:
//
//	polymerd -addr :8080 -wal-dir /var/lib/polymerd/wal
//	curl -s localhost:8080/mutatez -d '{"graph":"roadUS","scale":"tiny","ops":[{"op":"insert","src":0,"dst":575,"wt":0.5}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polymer/internal/mutate"
	"polymer/internal/obs"
	"polymer/internal/serve"
)

func main() {
	addrFlag := flag.String("addr", ":8080", "listen address")
	queueFlag := flag.Int("queue", 64, "admission queue depth (full queue sheds with 429)")
	workersFlag := flag.Int("workers", 4, "concurrent request executions")
	budgetFlag := flag.Duration("budget", 30*time.Second, "default per-request wall-clock budget")
	drainFlag := flag.Duration("drain", 5*time.Second, "graceful drain deadline on SIGTERM")
	retriesFlag := flag.Int("retries", 2, "default whole-run retries per request")
	breakerFlag := flag.Int("breaker-threshold", 3, "consecutive failures that trip an engine's circuit")
	cooldownFlag := flag.Duration("breaker-cooldown", 2*time.Second, "open-circuit period before a half-open probe")
	cacheFlag := flag.Int64("graph-cache-bytes", 0, "graph cache budget in topology bytes (0 = 1 GiB default, negative = unbounded)")
	resultCacheFlag := flag.Int64("result-cache-bytes", 0, "result cache budget in bytes (0 = 64 MiB default, negative disables)")
	noCoalesceFlag := flag.Bool("no-coalesce", false, "disable execution coalescing of identical in-flight requests")
	noBatchFlag := flag.Bool("no-batch", false, "disable multi-source batching of traversal queries")
	batchMaxFlag := flag.Int("batch-max", 16, "max distinct sources fused into one multi-source sweep (cap 64)")
	batchLingerFlag := flag.Duration("batch-linger", 0, "extra time a dequeued batch group waits for stragglers (0 = seal at dequeue)")
	traceReqFlag := flag.Int("trace-requests", 256, "flight recorder: last N request spans kept for /debugz/trace (0 disables the recorder with -trace-steps 0)")
	traceStepFlag := flag.Int("trace-steps", 4096, "flight recorder: last N engine/fault events kept for /debugz/trace")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	walDirFlag := flag.String("wal-dir", "", "mutation write-ahead log directory (empty disables POST /mutatez)")
	ckptFlag := flag.Int("checkpoint-every", 0, "commits per key between WAL checkpoints (0 = default, negative disables)")
	hedgeFlag := flag.Duration("hedge-delay", 0, "wait before hedging a cluster read to a replica (0 = adaptive p90, negative disables)")
	noLearnFlag := flag.Bool("no-learn", false, "freeze the planner's online learner (engine=auto still plans, but stops adapting to observed traffic)")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	// The flight recorder is the server's always-on trace sink: fixed-size
	// rings, so steady-state overhead is bounded regardless of uptime.
	var (
		rec *obs.Recorder
		tr  *obs.Tracer
	)
	if *traceReqFlag > 0 || *traceStepFlag > 0 {
		rec = obs.NewRecorder(*traceReqFlag, *traceStepFlag)
		tr = obs.New(rec)
	}
	// The mutation store replays committed batches from the WAL in the
	// background after the listener opens; /readyz reports 503 until the
	// replay finishes, so load balancers hold traffic instead of racing
	// recovery. closeMut runs on every exit path — including a forced
	// drain with a hung request and a listener error — and is safe there:
	// a commit that loses the race fails with ErrClosed instead of
	// appending to a closed WAL.
	var mut *mutate.Store
	if *walDirFlag != "" {
		var err error
		mut, err = mutate.Open(*walDirFlag, mutate.Options{CheckpointEvery: *ckptFlag})
		if err != nil {
			fmt.Fprintf(os.Stderr, "polymerd: opening mutation log: %v\n", err)
			os.Exit(1)
		}
		logger.Info("mutation log open", slog.String("dir", *walDirFlag))
	}
	closeMut := func() {
		if mut == nil {
			return
		}
		if err := mut.Close(); err != nil {
			logger.Error("mutation log close", slog.String("error", err.Error()))
		}
	}
	srv := serve.NewServer(serve.Config{
		QueueDepth:       *queueFlag,
		Workers:          *workersFlag,
		DefaultBudget:    *budgetFlag,
		DrainTimeout:     *drainFlag,
		RetryMax:         *retriesFlag,
		BreakerThreshold: *breakerFlag,
		BreakerCooldown:  *cooldownFlag,
		GraphCacheBytes:  *cacheFlag,
		ResultCacheBytes: *resultCacheFlag,
		DisableCoalesce:  *noCoalesceFlag,
		DisableBatch:     *noBatchFlag,
		BatchMax:         *batchMaxFlag,
		BatchLinger:      *batchLingerFlag,
		HedgeDelay:       *hedgeFlag,
		DisableLearning:  *noLearnFlag,
		Tracer:           tr,
		Recorder:         rec,
		Logger:           logger,
		Mutations:        mut,
	})
	srv.RecoverInBackground()

	handler := srv.Handler()
	if *pprofFlag {
		// The service mux uses strict method patterns, so mount pprof on a
		// wrapper mux rather than relying on the DefaultServeMux side effects.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{Addr: *addrFlag, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("polymerd listening", slog.String("addr", *addrFlag))
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-sigCtx.Done():
		logger.Info("drain: signal received, refusing new work")
		// Stop admitting and let in-flight work finish (or be cancelled at
		// the drain deadline), then close the listener.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainFlag+5*time.Second)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			logger.Error("drain: forced", slog.String("error", err.Error()))
		}
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logger.Error("http shutdown", slog.String("error", err.Error()))
		}
		// Every acked mutation is already fsynced at its commit point, so
		// closing here — even after a forced drain left a request hung —
		// loses nothing; the straggler's commit gets ErrClosed.
		closeMut()
		logger.Info("polymerd drained")
	case err := <-errCh:
		closeMut()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "polymerd: %v\n", err)
			os.Exit(1)
		}
	}
}
