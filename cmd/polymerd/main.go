// Command polymerd serves graph-analytics requests over HTTP/JSON with
// production robustness: bounded admission with load shedding, per-request
// deadlines, retry with backoff over checkpoint/rollback recovery, a
// per-engine circuit breaker with degraded-mode fallback, and graceful
// drain on SIGTERM/SIGINT.
//
// Usage:
//
//	polymerd -addr :8080 -queue 64 -workers 4 -budget 30s
//
//	curl -s localhost:8080/run -d '{"algo":"pr","system":"polymer","graph":"powerlaw","scale":"tiny"}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metricsz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polymer/internal/serve"
)

func main() {
	addrFlag := flag.String("addr", ":8080", "listen address")
	queueFlag := flag.Int("queue", 64, "admission queue depth (full queue sheds with 429)")
	workersFlag := flag.Int("workers", 4, "concurrent request executions")
	budgetFlag := flag.Duration("budget", 30*time.Second, "default per-request wall-clock budget")
	drainFlag := flag.Duration("drain", 5*time.Second, "graceful drain deadline on SIGTERM")
	retriesFlag := flag.Int("retries", 2, "default whole-run retries per request")
	breakerFlag := flag.Int("breaker-threshold", 3, "consecutive failures that trip an engine's circuit")
	cooldownFlag := flag.Duration("breaker-cooldown", 2*time.Second, "open-circuit period before a half-open probe")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv := serve.NewServer(serve.Config{
		QueueDepth:       *queueFlag,
		Workers:          *workersFlag,
		DefaultBudget:    *budgetFlag,
		DrainTimeout:     *drainFlag,
		RetryMax:         *retriesFlag,
		BreakerThreshold: *breakerFlag,
		BreakerCooldown:  *cooldownFlag,
		Logger:           logger,
	})

	httpSrv := &http.Server{Addr: *addrFlag, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("polymerd listening", slog.String("addr", *addrFlag))
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-sigCtx.Done():
		logger.Info("drain: signal received, refusing new work")
		// Stop admitting and let in-flight work finish (or be cancelled at
		// the drain deadline), then close the listener.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainFlag+5*time.Second)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			logger.Error("drain: forced", slog.String("error", err.Error()))
		}
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logger.Error("http shutdown", slog.String("error", err.Error()))
		}
		logger.Info("polymerd drained")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "polymerd: %v\n", err)
			os.Exit(1)
		}
	}
}
