// Command conform sweeps the cross-engine conformance matrix over a
// seeded graph corpus and, on the first divergence, shrinks the failing
// graph to a minimal reproducer and writes it as a loadable edge list.
//
//	conform -seed 1 -graphs 8                  # full sweep, exit 1 on divergence
//	conform -inject cc-directed -out repro.el  # demo: minimise an injected bug
package main

import (
	"flag"
	"fmt"
	"os"

	"polymer/internal/conform"
	"polymer/internal/gen"
	"polymer/internal/graph"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 1, "base seed for the random graph corpus")
		graphs = flag.Int("graphs", 4, "number of seeded random graphs (on top of the adversarial shapes)")
		topo   = flag.String("topo", "both", "topology to sweep: intel80, amd64 or both")
		inject = flag.String("inject", "", "instead of sweeping engines, minimise a deliberately injected oracle bug (pr-selfloop, cc-directed, bfs-offbyone)")
		out    = flag.String("out", "conform-repro.el", "path for the minimised failing graph")
	)
	flag.Parse()

	if *inject != "" {
		os.Exit(runInject(conform.InjectedBug(*inject), *seed, *graphs, *out))
	}
	os.Exit(runSweep(*seed, *graphs, *topo, *out))
}

// corpusEntry is one graph of the sweep, kept as raw edges so it can be
// fed to the shrinker.
type corpusEntry struct {
	name     string
	n        int
	edges    []graph.Edge
	weighted bool
}

func corpus(seed uint64, graphs int) []corpusEntry {
	var cs []corpusEntry
	for _, shape := range gen.Adversarial() {
		cs = append(cs, corpusEntry{name: "adversarial/" + shape.Name, n: shape.N, edges: shape.Edges})
	}
	for i := 0; i < graphs; i++ {
		s := seed + uint64(i)*0x9e3779b9
		if i%2 == 0 {
			n, e := gen.Uniform(150+10*i, 800+40*i, s)
			cs = append(cs, corpusEntry{name: fmt.Sprintf("uniform-%d", i), n: n, edges: e})
		} else {
			n, e := gen.Powerlaw(192+16*i, 4, 2.0, s)
			gen.AddRandomWeights(e, s+1)
			cs = append(cs, corpusEntry{name: fmt.Sprintf("powerlaw-%d", i), n: n, edges: e, weighted: true})
		}
	}
	return cs
}

func topos(sel string) ([]conform.Topo, error) {
	switch sel {
	case "both":
		return conform.Topos(), nil
	case string(conform.Intel80):
		return []conform.Topo{conform.Intel80}, nil
	case string(conform.AMD64):
		return []conform.Topo{conform.AMD64}, nil
	}
	return nil, fmt.Errorf("unknown topology %q", sel)
}

func runSweep(seed uint64, graphs int, topoSel, out string) int {
	ts, err := topos(topoSel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return 2
	}
	cases := 0
	for _, ent := range corpus(seed, graphs) {
		g := graph.FromEdges(ent.n, ent.edges, ent.weighted)
		for _, tp := range ts {
			for _, eng := range conform.Engines() {
				for _, alg := range conform.Algos() {
					c := conform.Case{Engine: eng, Algo: alg, Topo: tp}
					cases++
					d := conform.Check(c, g)
					if d == nil {
						continue
					}
					fmt.Fprintf(os.Stderr, "conform: DIVERGENCE on %s: %v\n", ent.name, d)
					fails := func(n int, edges []graph.Edge) bool {
						return conform.Check(c, graph.FromEdges(n, edges, ent.weighted)) != nil
					}
					reportShrunk(ent, c.String(), fails, out)
					return 1
				}
			}
		}
	}
	fmt.Printf("conform: %d cases over %d graphs x %d topologies: all conform\n",
		cases, len(corpus(seed, graphs)), len(ts))
	return 0
}

func runInject(b conform.InjectedBug, seed uint64, graphs int, out string) int {
	found := false
	for _, bug := range conform.InjectedBugs() {
		if bug == b {
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "conform: unknown injected bug %q\n", b)
		return 2
	}
	fails := func(n int, edges []graph.Edge) bool {
		return conform.CheckInjected(b, graph.FromEdges(n, edges, false), 0) != nil
	}
	for _, ent := range corpus(seed, graphs) {
		if ent.weighted || !fails(ent.n, ent.edges) {
			continue
		}
		d := conform.CheckInjected(b, graph.FromEdges(ent.n, ent.edges, false), 0)
		fmt.Fprintf(os.Stderr, "conform: injected %s visible on %s: %v\n", b, ent.name, d)
		reportShrunk(ent, string(b), fails, out)
		return 1
	}
	fmt.Fprintf(os.Stderr, "conform: injected %s not visible on the corpus\n", b)
	return 2
}

// reportShrunk minimises the failing graph and writes it as a loadable
// edge list next to a replay hint.
func reportShrunk(ent corpusEntry, label string, fails conform.Failing, out string) {
	sn, sedges := conform.Shrink(ent.n, append([]graph.Edge(nil), ent.edges...), fails)
	fmt.Fprintf(os.Stderr, "conform: shrunk %s from n=%d |E|=%d to n=%d |E|=%d\n",
		ent.name, ent.n, len(ent.edges), sn, len(sedges))
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, sn, sedges, ent.weighted); err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "conform: minimal repro for %s written to %s\n", label, out)
}
