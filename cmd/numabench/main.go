// Command numabench runs the NUMA microbenchmarks of the paper's
// Section 2.2 on the simulated machines: the latency-by-distance table
// (Figure 3(b)), the bandwidth-by-distance table (Figure 4), and the
// barrier study (Figure 10(a)), including wall-clock measurements of the
// real Go barrier implementations on this host.
//
// With -machines it instead lifts the Figure-4 scaling experiment one
// level — whole replicated machines joined by the network cost model —
// at gen.Huge, 4x the single-box evaluation size:
//
//	numabench -machines 1,2,4,8 -graph powerlaw -scale huge
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"polymer/internal/bench"
	"polymer/internal/cluster"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/plan"
)

func main() {
	sockets := flag.Int("sockets", 8, "sockets for the barrier study")
	cores := flag.Int("cores", 4, "goroutines per socket for the measured barrier study")
	rounds := flag.Int("rounds", 200, "barrier rounds to average over")
	traceFlag := flag.String("trace", "", "write the microbenchmark sweep as Chrome trace_event JSON and print its traffic breakdown")
	profileFlag := flag.Bool("profile", false, "print the planner's feature vectors for the sweep corpus instead of the microbenchmarks")
	machinesFlag := flag.String("machines", "", "comma-separated machine counts for the cluster scaling sweep (e.g. 1,2,4,8); empty runs the single-box microbenchmarks")
	replicasFlag := flag.Int("replicas", 0, "replicas per shard for the cluster sweep (0 = min(2, machines))")
	graphFlag := flag.String("graph", "powerlaw", "dataset for the cluster sweep")
	scaleFlag := flag.String("scale", "huge", "dataset scale for the cluster sweep: tiny, small, default or huge")
	srcFlag := flag.Uint("src", 0, "source vertex for the cluster sweep's bfs/sssp lines")
	tierSweepFlag := flag.Bool("tiersweep", false, "run the tiered-memory DRAM-fraction sweep (hot vs interleave) instead of the microbenchmarks")
	tierFracsFlag := flag.String("tierfracs", "0.75,0.5,0.25", "comma-separated DRAM fractions of the untiered peak footprint for -tiersweep")
	tierOutFlag := flag.String("tierout", "", "write the -tiersweep result as JSON to this file")
	tierBaselineFlag := flag.String("tierbaseline", "", "compare the -tiersweep result against this JSON baseline (fails on >20% speedup regression)")
	promoteEveryFlag := flag.Int("promote-every", 1, "phases between promotion passes for -tiersweep's hot policy")
	flag.Parse()

	if *profileFlag {
		profileCorpus()
		return
	}
	if *tierSweepFlag {
		tierSweep(*graphFlag, *scaleFlag, *sockets, *cores, *tierFracsFlag, *promoteEveryFlag, *tierOutFlag, *tierBaselineFlag)
		return
	}
	if *machinesFlag != "" {
		clusterSweep(*machinesFlag, *replicasFlag, *graphFlag, *scaleFlag, graph.Vertex(*srcFlag))
		return
	}

	for _, topo := range []*numa.Topology{numa.IntelXeon80(), numa.AMDOpteron64()} {
		fmt.Println(bench.FormatLatencyTable(topo, bench.LatencyTable(topo)))
		fmt.Println(bench.FormatBandwidthTable(topo, bench.BandwidthTable(topo)))
		if *traceFlag != "" {
			// One sweep per topology through the shared event schema: the
			// same sinks that consume engine supersteps consume these cells.
			chrome := obs.NewChrome()
			bd := obs.NewBreakdown()
			bench.TraceMicro(topo, obs.New(obs.Multi{chrome, bd}))
			fmt.Printf("traffic breakdown — %s\n%s\n", topo.Name, bd.Format())
			out := *traceFlag
			if topo.Name != numa.IntelXeon80().Name {
				out = out + "." + topo.Name
			}
			f, err := os.Create(out)
			if err != nil {
				fail("%v", err)
			}
			if err := chrome.Export(f); err != nil {
				f.Close()
				fail("writing trace: %v", err)
			}
			if err := f.Close(); err != nil {
				fail("writing trace: %v", err)
			}
			fmt.Printf("trace: %d events -> %s\n\n", chrome.Len(), out)
		}
	}
	fmt.Println(bench.FormatBarrierStudy(bench.BarrierStudy(*sockets, *cores, *rounds)))
}

// profileCorpus prints the deterministic feature vector the planner's
// profiler extracts from every graph in the planbench sweep corpus —
// the workload-side counterpart of the latency/bandwidth tables.
func profileCorpus() {
	fmt.Printf("planner feature vectors — planbench corpus\n")
	fmt.Printf("%-22s %s\n", "graph", "features")
	for _, e := range plan.Corpus() {
		g := plan.BuildGraph(e, bench.PR)
		fmt.Printf("%-22s %s\n", e.Name, plan.Profile(g))
	}
}

// tierSweep runs the tiered-memory DRAM-fraction sweep on one graph and
// prints the hot-vs-interleave table, optionally writing the JSON
// artifact and checking it against a pinned baseline.
func tierSweep(dataset, scale string, sockets, cores int, fracList string, promoteEvery int, outPath, basePath string) {
	sc, ok := map[string]gen.Scale{"tiny": gen.Tiny, "small": gen.Small, "default": gen.Default, "huge": gen.Huge}[scale]
	if !ok {
		fail("unknown scale %q (want tiny, small, default or huge)", scale)
	}
	var fracs []float64
	for _, f := range strings.Split(fracList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fail("bad DRAM fraction %q in -tierfracs", f)
		}
		fracs = append(fracs, v)
	}
	g, err := gen.Load(gen.Dataset(dataset), sc, false)
	if err != nil {
		fail("%v", err)
	}
	ts, err := bench.RunTierSweep(dataset+"/"+scale, g, numa.IntelXeon80(), sockets, cores,
		[]bench.Algo{bench.PR, bench.BFS}, fracs, promoteEvery)
	if err != nil {
		fail("%v", err)
	}
	fmt.Print(bench.FormatTierSweep(ts))
	if outPath != "" {
		out, err := bench.MarshalTierSweep(ts)
		if err != nil {
			fail("%v", err)
		}
		if err := os.WriteFile(outPath, out, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("tier sweep JSON -> %s\n", outPath)
	}
	if err := ts.Gate(); err != nil {
		fail("%v", err)
	}
	fmt.Println("tier sweep gate: ok (hot beats naive interleave at <=50% DRAM for PR and BFS)")
	if basePath != "" {
		raw, err := os.ReadFile(basePath)
		if err != nil {
			fail("%v", err)
		}
		var base bench.TierSweep
		if err := json.Unmarshal(raw, &base); err != nil {
			fail("parsing baseline %s: %v", basePath, err)
		}
		if err := bench.CompareTierBaseline(ts, &base, 0.8); err != nil {
			fail("%v", err)
		}
		fmt.Printf("tier sweep baseline: ok (within 20%% of %s)\n", basePath)
	}
}

// clusterSweep runs every cluster kernel across the machine counts on
// one graph and prints the scaling table plus the per-link and per-hop
// traffic evidence from each kernel's largest run.
func clusterSweep(machineList string, replicas int, dataset, scale string, src graph.Vertex) {
	var machines []int
	for _, f := range strings.Split(machineList, ",") {
		mc, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || mc < 1 {
			fail("bad machine count %q in -machines", f)
		}
		machines = append(machines, mc)
	}
	sc, ok := map[string]gen.Scale{"tiny": gen.Tiny, "small": gen.Small, "default": gen.Default, "huge": gen.Huge}[scale]
	if !ok {
		fail("unknown scale %q (want tiny, small, default or huge)", scale)
	}
	// One weighted load serves all three kernels; pr and bfs ignore the
	// weights, sssp needs them.
	g, err := gen.Load(gen.Dataset(dataset), sc, true)
	if err != nil {
		fail("%v", err)
	}
	if int(src) >= g.NumVertices() {
		fail("source %d outside [0,%d)", src, g.NumVertices())
	}
	rows, err := cluster.Sweep(context.Background(), g, cluster.Config{Replicas: replicas}, cluster.Algos(), machines, src)
	if err != nil {
		fail("%v", err)
	}
	fmt.Println(cluster.FormatSweep(cluster.SweepGraphLabel(dataset, g), rows))
	for _, row := range rows {
		fmt.Printf("%s @ %d machines\n", row.Algo, row.Points[len(row.Points)-1].Machines)
		fmt.Println(cluster.FormatLinks(row.Largest.Links))
		fmt.Println(cluster.FormatTraffic(row.Largest.Traffic))
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "numabench: "+format+"\n", args...)
	os.Exit(1)
}
