// Command numabench runs the NUMA microbenchmarks of the paper's
// Section 2.2 on the simulated machines: the latency-by-distance table
// (Figure 3(b)), the bandwidth-by-distance table (Figure 4), and the
// barrier study (Figure 10(a)), including wall-clock measurements of the
// real Go barrier implementations on this host.
package main

import (
	"flag"
	"fmt"
	"os"

	"polymer/internal/bench"
	"polymer/internal/numa"
	"polymer/internal/obs"
)

func main() {
	sockets := flag.Int("sockets", 8, "sockets for the barrier study")
	cores := flag.Int("cores", 4, "goroutines per socket for the measured barrier study")
	rounds := flag.Int("rounds", 200, "barrier rounds to average over")
	traceFlag := flag.String("trace", "", "write the microbenchmark sweep as Chrome trace_event JSON and print its traffic breakdown")
	flag.Parse()

	for _, topo := range []*numa.Topology{numa.IntelXeon80(), numa.AMDOpteron64()} {
		fmt.Println(bench.FormatLatencyTable(topo, bench.LatencyTable(topo)))
		fmt.Println(bench.FormatBandwidthTable(topo, bench.BandwidthTable(topo)))
		if *traceFlag != "" {
			// One sweep per topology through the shared event schema: the
			// same sinks that consume engine supersteps consume these cells.
			chrome := obs.NewChrome()
			bd := obs.NewBreakdown()
			bench.TraceMicro(topo, obs.New(obs.Multi{chrome, bd}))
			fmt.Printf("traffic breakdown — %s\n%s\n", topo.Name, bd.Format())
			out := *traceFlag
			if topo.Name != numa.IntelXeon80().Name {
				out = out + "." + topo.Name
			}
			f, err := os.Create(out)
			if err != nil {
				fail("%v", err)
			}
			if err := chrome.Export(f); err != nil {
				f.Close()
				fail("writing trace: %v", err)
			}
			if err := f.Close(); err != nil {
				fail("writing trace: %v", err)
			}
			fmt.Printf("trace: %d events -> %s\n\n", chrome.Len(), out)
		}
	}
	fmt.Println(bench.FormatBarrierStudy(bench.BarrierStudy(*sockets, *cores, *rounds)))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "numabench: "+format+"\n", args...)
	os.Exit(1)
}
