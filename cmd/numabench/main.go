// Command numabench runs the NUMA microbenchmarks of the paper's
// Section 2.2 on the simulated machines: the latency-by-distance table
// (Figure 3(b)), the bandwidth-by-distance table (Figure 4), and the
// barrier study (Figure 10(a)), including wall-clock measurements of the
// real Go barrier implementations on this host.
package main

import (
	"flag"
	"fmt"

	"polymer/internal/bench"
	"polymer/internal/numa"
)

func main() {
	sockets := flag.Int("sockets", 8, "sockets for the barrier study")
	cores := flag.Int("cores", 4, "goroutines per socket for the measured barrier study")
	rounds := flag.Int("rounds", 200, "barrier rounds to average over")
	flag.Parse()

	for _, topo := range []*numa.Topology{numa.IntelXeon80(), numa.AMDOpteron64()} {
		fmt.Println(bench.FormatLatencyTable(topo, bench.LatencyTable(topo)))
		fmt.Println(bench.FormatBandwidthTable(topo, bench.BandwidthTable(topo)))
	}
	fmt.Println(bench.FormatBarrierStudy(bench.BarrierStudy(*sockets, *cores, *rounds)))
}
