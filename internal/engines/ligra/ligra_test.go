package ligra

import (
	"sync"
	"testing"

	"polymer/internal/atomicx"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
	"polymer/internal/state"
)

func testMachine(nodes, cores int) *numa.Machine {
	return numa.NewMachine(numa.IntelXeon80(), nodes, cores)
}

type addKernel struct{ next []float64 }

func (k *addKernel) Update(s, d graph.Vertex, w float32) bool {
	k.next[d]++
	return true
}
func (k *addKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	atomicx.AddFloat64(&k.next[d], 1)
	return true
}
func (k *addKernel) Cond(graph.Vertex) bool { return true }

func TestDensePushCountsInDegrees(t *testing.T) {
	n, edges := gen.RMAT(9, 8, 1)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(4, 2), DefaultOptions())
	defer e.Close()
	k := &addKernel{next: make([]float64, n)}
	out := e.EdgeMap(state.NewAll(e.Bounds()), k, sg.Hints{DensePush: true})
	for v := 0; v < n; v++ {
		if k.next[v] != float64(g.InDegree(graph.Vertex(v))) {
			t.Fatalf("next[%d] = %v, want %d", v, k.next[v], g.InDegree(graph.Vertex(v)))
		}
		if out.Contains(graph.Vertex(v)) != (g.InDegree(graph.Vertex(v)) > 0) {
			t.Fatalf("frontier wrong at %d", v)
		}
	}
}

func TestDensePullMatchesPush(t *testing.T) {
	n, edges := gen.Uniform(300, 2500, 2)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(2, 2), DefaultOptions())
	defer e.Close()
	kPush := &addKernel{next: make([]float64, n)}
	kPull := &addKernel{next: make([]float64, n)}
	e.EdgeMap(state.NewAll(e.Bounds()), kPush, sg.Hints{DensePush: true})
	e.EdgeMap(state.NewAll(e.Bounds()), kPull, sg.Hints{DensePush: false})
	for v := 0; v < n; v++ {
		if kPush.next[v] != kPull.next[v] {
			t.Fatalf("mismatch at %d: %v vs %v", v, kPush.next[v], kPull.next[v])
		}
	}
}

func TestSparseMatchesDense(t *testing.T) {
	n, edges := gen.Powerlaw(500, 6, 2.0, 3)
	g := graph.FromEdges(n, edges, false)
	frontier := []graph.Vertex{0, 7, 77, 300, 499}

	e1 := MustNew(g, testMachine(2, 2), DefaultOptions()) // adaptive: tiny frontier -> sparse
	defer e1.Close()
	k1 := &addKernel{next: make([]float64, n)}
	e1.EdgeMap(state.FromVertices(e1.Bounds(), frontier), k1, sg.Hints{DensePush: true})

	opt := DefaultOptions()
	opt.Adaptive = false
	e2 := MustNew(g, testMachine(2, 2), opt)
	defer e2.Close()
	k2 := &addKernel{next: make([]float64, n)}
	e2.EdgeMap(state.FromVertices(e2.Bounds(), frontier), k2, sg.Hints{DensePush: true})

	for v := 0; v < n; v++ {
		if k1.next[v] != k2.next[v] {
			t.Fatalf("sparse/dense mismatch at %d", v)
		}
	}
}

func TestVertexMap(t *testing.T) {
	n := 128
	g := graph.FromEdges(n, nil, false)
	e := MustNew(g, testMachine(2, 2), DefaultOptions())
	defer e.Close()
	var mu sync.Mutex
	counts := make([]int, n)
	out := e.VertexMap(state.NewAll(e.Bounds()), func(v graph.Vertex) bool {
		mu.Lock()
		counts[v]++
		mu.Unlock()
		return v%3 == 0
	})
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("vertex %d visited %d times", v, c)
		}
	}
	want := int64(0)
	for v := 0; v < n; v++ {
		if v%3 == 0 {
			want++
		}
	}
	if out.Count() != want {
		t.Fatalf("filtered count = %d, want %d", out.Count(), want)
	}
}

func TestLigraSlowerThanPolymerShape(t *testing.T) {
	// Not a strict engine-vs-engine comparison (that lives in the bench
	// package); here we just pin Ligra's NUMA-oblivious signature: its
	// remote access rate on many nodes must be high (paper Table 4: 83%).
	n, edges := gen.TwitterLike(20000, 4)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(8, 2), DefaultOptions())
	defer e.Close()
	k := &addKernel{next: make([]float64, n)}
	e.EdgeMap(state.NewAll(e.Bounds()), k, sg.Hints{DensePush: true})
	st := e.RunStats()
	if st.RemoteRate < 0.5 {
		t.Fatalf("ligra remote rate = %v, want high (NUMA-oblivious)", st.RemoteRate)
	}
	if e.SimSeconds() <= 0 {
		t.Fatal("sim time must advance")
	}
}

func TestMemoryAccounting(t *testing.T) {
	n, edges := gen.Chain(100)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(2, 1)
	e := MustNew(g, m, DefaultOptions())
	if m.Alloc().Label("ligra/topology") != g.TopologyBytes() {
		t.Fatal("topology bytes must be tracked")
	}
	d := e.NewData("x")
	if d.Len() != n {
		t.Fatal("NewData length")
	}
	e.Close()
	if m.Alloc().Current() != 0 {
		t.Fatalf("Close must release, %d left", m.Alloc().Current())
	}
}

func TestEmptyFrontier(t *testing.T) {
	n, edges := gen.Chain(10)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(1, 1), DefaultOptions())
	defer e.Close()
	out := e.EdgeMap(state.NewEmpty(e.Bounds()), &addKernel{next: make([]float64, n)}, sg.Hints{})
	if !out.IsEmpty() {
		t.Fatal("empty in, empty out")
	}
}

func TestAccessorsAndSparseVertexMap(t *testing.T) {
	n, edges := gen.Chain(120)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(2, 2)
	e := MustNew(g, m, DefaultOptions())
	defer e.Close()
	if e.Graph() != g || e.Machine() != m {
		t.Fatal("accessors must return construction arguments")
	}
	if e.NewData32("x").Len() != n {
		t.Fatal("NewData32 length")
	}
	e.AddSimSeconds(0.25)
	if e.SimSeconds() < 0.25 {
		t.Fatal("AddSimSeconds must advance the clock")
	}
	// Sparse VertexMap path.
	sp := state.FromVertices(e.Bounds(), []graph.Vertex{1, 3, 5, 99})
	out := e.VertexMap(sp, func(v graph.Vertex) bool { return v < 50 })
	if out.Count() != 3 {
		t.Fatalf("sparse VertexMap count = %d", out.Count())
	}
	k := &addKernel{next: make([]float64, n)}
	e.EdgeMap(state.NewAll(e.Bounds()), k, sg.Hints{Weighted: true, DensePush: true})
	if e.EdgesProcessed() == 0 {
		t.Fatal("EdgesProcessed must count")
	}
	var busy float64
	for _, s := range e.ThreadSeconds() {
		busy += s
	}
	if busy <= 0 {
		t.Fatal("ThreadSeconds must accumulate")
	}
}
