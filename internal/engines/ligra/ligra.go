// Package ligra implements the Ligra baseline: a vertex-centric
// scatter-gather engine with direction-optimizing push/pull switching
// (Shun & Blelloch, PPoPP'13), exactly as the paper characterises it in
// Sections 2.1 and 3.2.
//
// Ligra is NUMA-oblivious: its long-term arrays (topology and application
// data) end up interleaved across nodes by construction-stage first touch,
// and its short-term runtime state is allocated centrally by the main
// thread. In push mode an active vertex writes its neighbours' data
// randomly across the whole machine (RAND|W|G); in pull mode it reads
// randomly across the whole machine (RAND|R|G). Both patterns are the slow
// cases of the paper's Figure 4, and the interleaved traffic saturates the
// interconnect ports, which is what caps Ligra's socket scalability in
// Figure 5.
package ligra

import (
	"context"
	"math/bits"
	"sync/atomic"

	"polymer/internal/barrier"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/par"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// Options configures the baseline.
type Options struct {
	// Adaptive enables the direction-optimizing dense/sparse switch.
	Adaptive bool
	// Threshold is the switch denominator (default 20).
	Threshold float64
	// OverheadNsPerEdge is Ligra's software overhead per edge.
	OverheadNsPerEdge float64
}

// DefaultOptions returns the configuration used in the paper's evaluation.
func DefaultOptions() Options {
	return Options{Adaptive: true, Threshold: 20, OverheadNsPerEdge: 1.2}
}

// Engine is a Ligra instance. It implements sg.Engine.
type Engine struct {
	g   *graph.Graph
	m   *numa.Machine
	opt Options

	bounds []int // single leaf: Ligra's state is one flat structure

	pool   *par.Pool
	ledger *numa.Epoch
	clock  float64
	arrays []interface{ Free() }
	edges  atomic.Int64
	closed bool

	err  error           // first execution failure
	ctx  context.Context // optional cancellation; nil means background
	snap *simSnapshot    // SnapshotSim/RestoreSim slot
	tr   *obs.Tracer     // nil = tracing disabled

	scr      *scratch
	degreeOf func(v uint32) int64

	// Tiered-memory demand classes (nil when untiered; the wrappers'
	// nil fast path keeps charging bit-identical).
	tierPlan     *mem.TierPlan
	tierTopo     *mem.TierClass
	tierState    *mem.TierClass
	tierFrontier *mem.TierClass

	// Cached schedules: the dense sweeps always cover the fixed vertex
	// (or bitmap-word) range.
	vSweep  par.Strided
	vmWords par.Strided
}

var _ sg.Engine = (*Engine)(nil)

// scratch is the phase-scoped arena: the phase epoch and counters are
// reset — not reallocated — between EdgeMap/VertexMap phases, and the
// frontier builder reuses its per-thread queues. Only host allocation
// behaviour changes; charged traffic is untouched.
type scratch struct {
	ep      *numa.Epoch
	pc      *phaseCounts
	builder state.BuilderScratch
}

func (s *scratch) beginPhase() (*numa.Epoch, *phaseCounts) {
	s.ep.Reset()
	s.pc.reset()
	return s.ep, s.pc
}

// New builds a Ligra engine for g on m. It returns an error for invalid
// configuration or a simulated allocation failure.
func New(g *graph.Graph, m *numa.Machine, opt Options) (*Engine, error) {
	if opt.Threshold <= 0 {
		opt.Threshold = 20
	}
	if opt.OverheadNsPerEdge <= 0 {
		opt.OverheadNsPerEdge = 1.2
	}
	pool, err := par.NewPool(m.Threads())
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g: g, m: m, opt: opt,
		bounds: []int{0, g.NumVertices()},
		pool:   pool,
		ledger: m.NewEpoch(),
	}
	e.scr = &scratch{ep: m.NewEpoch(), pc: newPhaseCounts(m.Threads())}
	e.degreeOf = func(v uint32) int64 { return g.OutDegree(graph.Vertex(v)) }
	n := int64(g.NumVertices())
	e.vSweep = par.MakeStrided(n, par.ChunkSize(n, m.Threads()), m.Threads())
	e.vmWords = par.MakeStrided((n+63)/64, 64, m.Threads())
	if err := m.Alloc().Grow("ligra/topology", g.TopologyBytes()); err != nil {
		pool.Close()
		return nil, err
	}
	e.initTier()
	return e, nil
}

// initTier registers Ligra's demand classes: interleaved topology and
// application data, centralized runtime state (pinned under the hot
// policy). Untiered machines leave every handle nil.
func (e *Engine) initTier() {
	e.tierPlan = mem.NewTierPlan(e.m)
	if e.tierPlan == nil {
		return
	}
	nodes := e.m.Nodes
	e.tierFrontier = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "frontier", BytesPerNode: make([]int64, nodes), Pinned: true,
	})
	e.tierState = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "state", BytesPerNode: make([]int64, nodes), Priority: 0,
	})
	e.tierTopo = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "topology", BytesPerNode: make([]int64, nodes), Priority: 1,
	})
	// Ligra's short-term state is centrally allocated on node 0.
	e.tierFrontier.GrowDemand(0, 2*int64(e.g.NumVertices()))
	e.tierTopo.GrowDemandEven(e.g.TopologyBytes())
	e.tierState.SetHotMass(mem.DegreeHotMass(e.g.NumVertices(), func(i int) int64 {
		return e.g.OutDegree(graph.Vertex(i)) + 1
	}))
}

// TierPlan returns the engine's tier placement plan (nil when untiered).
func (e *Engine) TierPlan() *mem.TierPlan { return e.tierPlan }

// MustNew is New panicking on error, for statically valid configurations.
func MustNew(g *graph.Graph, m *numa.Machine, opt Options) *Engine {
	e, err := New(g, m, opt)
	if err != nil {
		panic(err)
	}
	return e
}

// Graph returns the input graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Machine returns the simulated machine.
func (e *Engine) Machine() *numa.Machine { return e.m }

// Bounds returns the (single-leaf) state bounds.
func (e *Engine) Bounds() []int { return e.bounds }

// SimSeconds returns the accumulated simulated runtime.
func (e *Engine) SimSeconds() float64 { return e.clock }

// AddSimSeconds charges extra simulated time.
func (e *Engine) AddSimSeconds(s float64) { e.clock += s }

// RunStats returns accumulated access statistics.
func (e *Engine) RunStats() numa.Stats { return e.ledger.Stats() }

// EdgesProcessed returns the total number of edge applications.
func (e *Engine) EdgesProcessed() int64 { return e.edges.Load() }

// ThreadSeconds returns per-thread simulated busy time.
func (e *Engine) ThreadSeconds() []float64 {
	out := make([]float64, e.m.Threads())
	for th := range out {
		out[th] = e.ledger.ThreadSeconds(th)
	}
	return out
}

// NewData allocates an interleaved float64 per-vertex array (first-touch
// by construction threads).
func (e *Engine) NewData(label string) *mem.Array[float64] {
	a := mem.New[float64](e.m, label, e.g.NumVertices(), mem.Interleaved, nil)
	a.BindTier(e.tierState).GrowTierDemand()
	e.arrays = append(e.arrays, a)
	return a
}

// NewData32 allocates an interleaved uint32 per-vertex array.
func (e *Engine) NewData32(label string) *mem.Array[uint32] {
	a := mem.New[uint32](e.m, label, e.g.NumVertices(), mem.Interleaved, nil)
	a.BindTier(e.tierState).GrowTierDemand()
	e.arrays = append(e.arrays, a)
	return a
}

// Close stops the workers and releases simulated allocations.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.pool.Close()
	for _, a := range e.arrays {
		a.Free()
	}
	e.m.Alloc().Release("ligra/topology", e.g.TopologyBytes())
}

// simSnapshot captures the engine's simulated-time state for rollback.
type simSnapshot struct {
	clock  float64
	ledger *numa.Epoch
	edges  int64
	tier   *mem.TierSnap
}

// Err returns the first execution failure, or nil. After a failure,
// EdgeMap/VertexMap are no-ops returning empty subsets until ClearErr.
func (e *Engine) Err() error { return e.err }

// ClearErr resets the failure so a rolled-back step can be replayed.
func (e *Engine) ClearErr() { e.err = nil }

func (e *Engine) fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// SetFaultHook installs (nil removes) the fault injector's per-dispatch
// hook on the worker pool.
func (e *Engine) SetFaultHook(h func(th int) error) { e.pool.SetHook(h) }

// SetContext installs a cancellation context consulted around each
// parallel phase; nil restores the default (never cancelled). A cancelled
// context fails the phase before any simulated charging.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// runPhase dispatches one parallel phase; on failure it records the error
// and returns false, and the caller must skip all simulated charging.
func (e *Engine) runPhase(fn func(th int)) bool {
	if e.err != nil {
		return false
	}
	var err error
	if e.ctx != nil {
		err = e.pool.RunCtx(e.ctx, fn)
	} else {
		err = e.pool.Run(fn)
	}
	if err != nil {
		e.fail(err)
		return false
	}
	return true
}

// SnapshotSim saves the simulated clock, cumulative ledger and edge
// counter; RestoreSim rolls back to the snapshot.
func (e *Engine) SnapshotSim() {
	if e.snap == nil {
		e.snap = &simSnapshot{ledger: e.m.NewEpoch()}
	}
	e.snap.clock = e.clock
	e.snap.ledger.CopyFrom(e.ledger)
	e.snap.edges = e.edges.Load()
	e.snap.tier = e.tierPlan.Snapshot()
}

// RestoreSim rolls the simulated-time state back to the last SnapshotSim.
func (e *Engine) RestoreSim() {
	if e.snap == nil {
		return
	}
	e.clock = e.snap.clock
	e.ledger.CopyFrom(e.snap.ledger)
	e.edges.Store(e.snap.edges)
	e.tierPlan.Restore(e.snap.tier)
}

func (e *Engine) chargePhase(ep *numa.Epoch, kind string, dense, push bool, active int64) {
	e.tierPlan.Step(ep)
	// Ligra's Cilk-style fork/join behaves like a tree (hierarchical)
	// barrier.
	dur := ep.Time() + barrier.SyncCost(barrier.H, e.m.Nodes)/e.m.Topo.SyncScale
	e.clock += dur
	e.ledger.Add(ep)
	if e.tr != nil {
		e.tr.Phase("ligra", kind, dense, push, active, e.clock-dur, dur)
	}
}

// SetTracer installs (nil removes) the obs tracer; phase events are
// stamped with the simulated clock, and the worker pool emits host-lane
// dispatch spans.
func (e *Engine) SetTracer(tr *obs.Tracer) {
	e.tr = tr
	e.pool.SetTracer(tr)
}

// Tracer, TraceCat and TrafficSnapshot make the engine an obs.SimSource.
func (e *Engine) Tracer() *obs.Tracer { return e.tr }

// TraceCat returns the engine's obs event category.
func (e *Engine) TraceCat() string { return "ligra" }

// TrafficSnapshot copies the cumulative classified run traffic into dst.
func (e *Engine) TrafficSnapshot(dst *numa.TrafficMatrix) { e.ledger.Traffic(dst) }

func (e *Engine) addEdges(n int64) {
	e.edges.Add(n)
}

// phaseCounts accumulates per-thread work in padded slots; totals are
// charged evenly across threads, modelling the Cilk work-stealing
// scheduler that keeps Ligra's edge work balanced under degree skew.
type phaseCounts struct {
	slots [][8]int64
}

func newPhaseCounts(threads int) *phaseCounts {
	return &phaseCounts{slots: make([][8]int64, threads)}
}

func (p *phaseCounts) reset() {
	for i := range p.slots {
		p.slots[i] = [8]int64{}
	}
}

func (p *phaseCounts) per(threads int) [4]int64 {
	var t [4]int64
	for i := range p.slots {
		for j := 0; j < 4; j++ {
			t[j] += p.slots[i][j]
		}
	}
	for j := 0; j < 4; j++ {
		t[j] /= int64(threads)
	}
	return t
}

func (p *phaseCounts) total(j int) int64 {
	var t int64
	for i := range p.slots {
		t += p.slots[i][j]
	}
	return t
}

// EdgeMap applies k to the edges of the active set, switching between
// sparse-push and a dense mode chosen by the algorithm's preference. It is
// the interface entry point; EdgeMapK is the generic implementation.
func (e *Engine) EdgeMap(a *state.Subset, k sg.EdgeKernel, h sg.Hints) *state.Subset {
	return EdgeMapK(e, a, k, h)
}

// EdgeMapK is EdgeMap generically typed on the kernel so that concrete
// kernels devirtualize in the per-edge loops; the interface method above
// is the fallback instantiation.
func EdgeMapK[K sg.EdgeKernel](e *Engine, a *state.Subset, k K, h sg.Hints) *state.Subset {
	h = h.Normalize()
	if a.IsEmpty() || e.err != nil {
		return state.NewEmpty(e.bounds)
	}
	dense := true
	if e.opt.Adaptive {
		deg := sg.ActiveDegree(e.g, a)
		dense = state.ShouldDense(a.Count(), deg, e.g.NumEdges(), e.opt.Threshold)
	}
	if !dense {
		return edgeMapSparse(e, a.ToSparse(), k, h)
	}
	if h.DensePush {
		return edgeMapDensePush(e, a.ToDense(), k, h)
	}
	return edgeMapDensePull(e, a.ToDense(), k, h)
}

// edgeMapDensePush scans all vertices; active ones push along out-edges
// with random global writes (the paper's RAND|W|G pattern).
func edgeMapDensePush[K sg.EdgeKernel](e *Engine, a *state.Subset, k K, h sg.Hints) *state.Subset {
	g := e.g
	n := g.NumVertices()
	collect := !h.NoOutput
	var b *state.Builder
	if collect {
		b = state.NewBuilder(e.bounds, e.m.Threads(), true).Reuse(&e.scr.builder).WithDegrees(e.degreeOf)
	}
	ep, pc := e.scr.beginPhase()
	dataWS := int64(n) * int64(h.DataBytes)
	full := a.Count() == int64(n)

	e.runPhase(func(th int) {
		var scanned, active, edges, updates int64
		e.vSweep.Do(th, func(lo, hi int64) {
			for v := lo; v < hi; v++ {
				s := graph.Vertex(v)
				scanned++
				if !full && !a.Contains(s) {
					continue
				}
				active++
				nbrs := g.OutNeighbors(s)
				wts := g.OutWeights(s)
				if h.Weighted && wts != nil {
					for j, t := range nbrs {
						edges++
						if !k.Cond(t) {
							continue
						}
						if k.UpdateAtomic(s, t, wts[j]) {
							if collect {
								b.SetIn(0, th, t) // single leaf
							}
							updates++
						}
					}
				} else {
					for _, t := range nbrs {
						edges++
						if !k.Cond(t) {
							continue
						}
						if k.UpdateAtomic(s, t, 0) {
							if collect {
								b.SetIn(0, th, t) // single leaf
							}
							updates++
						}
					}
				}
			}
		})
		pc.slots[th] = [8]int64{scanned, active, edges, updates}
	})
	if e.err != nil {
		return state.NewEmpty(e.bounds) // failed phase charges nothing
	}
	per := pc.per(e.m.Threads())
	for th := 0; th < e.m.Threads(); th++ {
		scanned, active, edges, updates := per[0], per[1], per[2], per[3]
		// Current state: centralized short-term allocation (node 0).
		e.tierFrontier.Access(ep, th, numa.Seq, numa.Load, 0, scanned, 1, 0)
		// Vertex metadata + source data: interleaved sequential.
		e.tierTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, scanned, 16, 0)
		e.tierState.AccessInterleaved(ep, th, numa.Seq, numa.Load, active, h.DataBytes, 0)
		// Out-edges: interleaved sequential stream.
		e.tierTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, edges, edgeBytes(h), 0)
		// Neighbour data: random global writes (RAND|W|G).
		e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Store, edges, h.DataBytes, dataWS)
		// Next state: centralized random writes.
		e.tierFrontier.Access(ep, th, numa.Rand, numa.Store, 0, updates, 1, int64(n))
		ep.Compute(th, (float64(edges)*(h.NsPerEdge+e.opt.OverheadNsPerEdge)+float64(scanned)*2)*1e-9)
	}
	e.addEdges(pc.total(2))
	e.chargePhase(ep, "edgemap", true, true, a.Count())
	if !collect {
		return state.NewEmpty(e.bounds)
	}
	return b.Build()
}

// edgeMapDensePull scans all destinations; each gathers from in-neighbours
// with random global reads (RAND|R|G), early-exiting once Cond fails.
func edgeMapDensePull[K sg.EdgeKernel](e *Engine, a *state.Subset, k K, h sg.Hints) *state.Subset {
	g := e.g
	n := g.NumVertices()
	collect := !h.NoOutput
	var b *state.Builder
	if collect {
		b = state.NewBuilder(e.bounds, e.m.Threads(), true).Reuse(&e.scr.builder).WithDegrees(e.degreeOf)
	}
	ep, pc := e.scr.beginPhase()
	dataWS := int64(n) * int64(h.DataBytes)
	full := a.Count() == int64(n)

	e.runPhase(func(th int) {
		var scanned, edges, updates int64
		e.vSweep.Do(th, func(lo, hi int64) {
			for v := lo; v < hi; v++ {
				t := graph.Vertex(v)
				scanned++
				if !k.Cond(t) {
					continue
				}
				nbrs := g.InNeighbors(t)
				wts := g.InWeights(t)
				updated := false
				for j, s := range nbrs {
					edges++
					if !full && !a.Contains(s) {
						continue
					}
					var w float32
					if h.Weighted && wts != nil {
						w = wts[j]
					}
					if k.Update(s, t, w) {
						updated = true
					}
					if !k.Cond(t) {
						break
					}
				}
				if updated {
					if collect {
						b.SetIn(0, th, t)
					}
					updates++
				}
			}
		})
		pc.slots[th] = [8]int64{scanned, 0, edges, updates}
	})
	if e.err != nil {
		return state.NewEmpty(e.bounds)
	}
	per := pc.per(e.m.Threads())
	for th := 0; th < e.m.Threads(); th++ {
		scanned, edges, updates := per[0], per[2], per[3]
		e.tierState.AccessInterleaved(ep, th, numa.Seq, numa.Load, scanned, 16+h.DataBytes, 0)
		e.tierTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, edges, edgeBytes(h), 0)
		// Source state reads: centralized random.
		e.tierFrontier.Access(ep, th, numa.Rand, numa.Load, 0, edges, 1, int64(n))
		// Source data reads: random global (RAND|R|G).
		e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Load, edges, h.DataBytes, dataWS)
		// Destination writes: interleaved sequential.
		e.tierState.AccessInterleaved(ep, th, numa.Seq, numa.Store, updates, h.DataBytes+1, 0)
		ep.Compute(th, (float64(edges)*(h.NsPerEdge+e.opt.OverheadNsPerEdge)+float64(scanned)*2)*1e-9)
	}
	e.addEdges(pc.total(2))
	e.chargePhase(ep, "edgemap", true, false, a.Count())
	if !collect {
		return state.NewEmpty(e.bounds)
	}
	return b.Build()
}

// edgeMapSparse iterates the frontier list; each active vertex pushes
// along its out-edges.
func edgeMapSparse[K sg.EdgeKernel](e *Engine, a *state.Subset, k K, h sg.Hints) *state.Subset {
	g := e.g
	n := g.NumVertices()
	collect := !h.NoOutput
	var b *state.Builder
	if collect {
		b = state.NewBuilder(e.bounds, e.m.Threads(), false).Reuse(&e.scr.builder).WithDegrees(e.degreeOf)
	}
	ep, pc := e.scr.beginPhase()
	frontier := a.List(0)
	ck := par.MakeStrided(int64(len(frontier)), par.ChunkSize(int64(len(frontier)), e.m.Threads()), e.m.Threads())
	dataWS := int64(n) * int64(h.DataBytes)

	e.runPhase(func(th int) {
		var active, edges, updates int64
		ck.Do(th, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				s := frontier[i]
				active++
				nbrs := g.OutNeighbors(s)
				wts := g.OutWeights(s)
				for j, t := range nbrs {
					edges++
					if !k.Cond(t) {
						continue
					}
					var w float32
					if h.Weighted && wts != nil {
						w = wts[j]
					}
					if k.UpdateAtomic(s, t, w) {
						if collect {
							b.Add(th, t)
						}
						updates++
					}
				}
			}
		})
		pc.slots[th] = [8]int64{active, 0, edges, updates}
	})
	if e.err != nil {
		return state.NewEmpty(e.bounds)
	}
	per := pc.per(e.m.Threads())
	for th := 0; th < e.m.Threads(); th++ {
		active, edges, updates := per[0], per[2], per[3]
		// Frontier list: centralized sequential read; vertex metadata and
		// source data: random interleaved (frontier order is arbitrary).
		e.tierFrontier.Access(ep, th, numa.Seq, numa.Load, 0, active, 4, 0)
		e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Load, active, 16+h.DataBytes, dataWS)
		e.tierTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, edges, edgeBytes(h), 0)
		e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Store, edges, h.DataBytes, dataWS)
		// Queue appends: centralized sequential writes.
		e.tierFrontier.Access(ep, th, numa.Seq, numa.Store, 0, updates, 4, 0)
		ep.Compute(th, (float64(edges)*(h.NsPerEdge+e.opt.OverheadNsPerEdge)+float64(active)*2)*1e-9)
	}
	e.addEdges(pc.total(2))
	e.chargePhase(ep, "edgemap", false, true, a.Count())
	if !collect {
		return state.NewEmpty(e.bounds)
	}
	return b.Build()
}

// VertexMap applies f to the active set.
func (e *Engine) VertexMap(a *state.Subset, f sg.VertexFunc) *state.Subset {
	if a.IsEmpty() || e.err != nil {
		return state.NewEmpty(e.bounds)
	}
	b := state.NewBuilder(e.bounds, e.m.Threads(), a.Dense()).Reuse(&e.scr.builder).WithDegrees(e.degreeOf)
	ep, _ := e.scr.beginPhase()

	if a.Dense() {
		words := a.Words(0)
		e.runPhase(func(th int) {
			var visited, scanned int64
			e.vmWords.Do(th, func(lo, hi int64) {
				scanned += hi - lo
				for wi := lo; wi < hi; wi++ {
					w := words[wi]
					for w != 0 {
						bit := bits.TrailingZeros64(w)
						v := graph.Vertex(int(wi)*64 + bit)
						visited++
						if f(v) {
							b.SetIn(0, th, v)
						}
						w &= w - 1
					}
				}

			})
			e.tierFrontier.Access(ep, th, numa.Seq, numa.Load, 0, scanned, 8, 0)
			e.tierState.AccessInterleaved(ep, th, numa.Seq, numa.Load, visited, 16, 0)
			ep.Compute(th, float64(visited)*2e-9)
		})
	} else {
		list := a.List(0)
		ck := par.MakeStrided(int64(len(list)), 64, e.m.Threads())
		e.runPhase(func(th int) {
			var visited int64
			ck.Do(th, func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					visited++
					if f(list[i]) {
						b.Add(th, list[i])
					}
				}

			})
			e.tierFrontier.Access(ep, th, numa.Seq, numa.Load, 0, visited, 4, 0)
			e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Load, visited, 16, int64(e.g.NumVertices())*16)
			ep.Compute(th, float64(visited)*2e-9)
		})
	}
	if e.err != nil {
		return state.NewEmpty(e.bounds)
	}
	e.chargePhase(ep, "vertexmap", a.Dense(), false, a.Count())
	return b.Build()
}

func edgeBytes(h sg.Hints) int {
	if h.Weighted {
		return 8
	}
	return 4
}
