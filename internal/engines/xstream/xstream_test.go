package xstream

import (
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

func testMachine(nodes, cores int) *numa.Machine {
	return numa.NewMachine(numa.IntelXeon80(), nodes, cores)
}

// sumKernel accumulates 1.0 per incoming edge into next; destinations
// always activate.
type sumKernel struct{ next []float64 }

func (k *sumKernel) Scatter(s graph.Vertex, w float32) (float64, bool) { return 1, true }
func (k *sumKernel) Gather(d graph.Vertex, val float64) bool {
	k.next[d] += val
	return true
}

func TestIterateCountsInDegrees(t *testing.T) {
	n, edges := gen.RMAT(9, 8, 4)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(4, 2), DefaultOptions(), sg.Hints{})
	defer e.Close()
	e.SetAllActive()
	k := &sumKernel{next: make([]float64, n)}
	count := e.Iterate(k, nil)
	for v := 0; v < n; v++ {
		if k.next[v] != float64(g.InDegree(graph.Vertex(v))) {
			t.Fatalf("next[%d] = %v, want %d", v, k.next[v], g.InDegree(graph.Vertex(v)))
		}
	}
	// Everything with an in-edge is active next round.
	var want int64
	for v := 0; v < n; v++ {
		if g.InDegree(graph.Vertex(v)) > 0 {
			want++
		}
	}
	if count != want {
		t.Fatalf("active = %d, want %d", count, want)
	}
}

func TestScatterScansAllEdgesEvenWhenSparse(t *testing.T) {
	// X-Stream's defining weakness: one active vertex still scans |E|.
	n, edges := gen.RoadGrid(30, 30, 1)
	g := graph.FromEdges(n, edges, true)
	e := MustNew(g, testMachine(2, 2), DefaultOptions(), sg.Hints{Weighted: true})
	defer e.Close()
	e.SetActive([]graph.Vertex{0})
	k := &sumKernel{next: make([]float64, n)}
	e.Iterate(k, nil)
	if e.EdgesProcessed() != g.NumEdges() {
		t.Fatalf("scanned %d edges, must scan all %d", e.EdgesProcessed(), g.NumEdges())
	}
}

func TestInactiveSourcesEmitNothing(t *testing.T) {
	n, edges := gen.Star(50)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(2, 1), DefaultOptions(), sg.Hints{})
	defer e.Close()
	e.SetActive([]graph.Vertex{5}) // a leaf: no out-edges
	k := &sumKernel{next: make([]float64, n)}
	if count := e.Iterate(k, nil); count != 0 {
		t.Fatalf("leaf frontier must produce 0 actives, got %d", count)
	}
	for v, x := range k.next {
		if x != 0 {
			t.Fatalf("vertex %d received update without active source", v)
		}
	}
}

func TestApplyPhaseControlsNextFrontier(t *testing.T) {
	n, edges := gen.Cycle(64)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(2, 1), DefaultOptions(), sg.Hints{})
	defer e.Close()
	e.SetAllActive()
	k := &sumKernel{next: make([]float64, n)}
	count := e.Iterate(k, func(v graph.Vertex) bool { return v < 10 })
	if count != 10 {
		t.Fatalf("apply filtered count = %d, want 10", count)
	}
	if e.ActiveCount() != 10 {
		t.Fatal("ActiveCount must match")
	}
}

func TestTilesRespectLLC(t *testing.T) {
	n, edges := gen.Uniform(100000, 100000, 2)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(2, 1)
	e := MustNew(g, m, DefaultOptions(), sg.Hints{})
	defer e.Close()
	if e.Tiles() < 2 {
		t.Fatalf("100k vertices must need multiple tiles with a %dB LLC", m.Topo.LLCBytes)
	}
}

func TestWeightedScatter(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1, Wt: 2}, {Src: 0, Dst: 2, Wt: 3}}
	g := graph.FromEdges(3, edges, true)
	e := MustNew(g, testMachine(1, 1), DefaultOptions(), sg.Hints{Weighted: true})
	defer e.Close()
	e.SetAllActive()
	got := make([]float64, 3)
	e.Iterate(kernelFunc{
		scatter: func(s graph.Vertex, w float32) (float64, bool) { return float64(w), true },
		gather:  func(d graph.Vertex, v float64) bool { got[d] += v; return false },
	}, nil)
	if got[1] != 2 || got[2] != 3 {
		t.Fatalf("weights not delivered: %v", got)
	}
}

type kernelFunc struct {
	scatter func(graph.Vertex, float32) (float64, bool)
	gather  func(graph.Vertex, float64) bool
}

func (k kernelFunc) Scatter(s graph.Vertex, w float32) (float64, bool) { return k.scatter(s, w) }
func (k kernelFunc) Gather(d graph.Vertex, v float64) bool             { return k.gather(d, v) }

func TestSimTimeAndMemory(t *testing.T) {
	n, edges := gen.RMAT(8, 8, 3)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(4, 2)
	e := MustNew(g, m, DefaultOptions(), sg.Hints{})
	e.SetAllActive()
	e.Iterate(&sumKernel{next: make([]float64, n)}, nil)
	if e.SimSeconds() <= 0 {
		t.Fatal("sim time must advance")
	}
	if m.Alloc().Peak() <= m.Alloc().Current() {
		t.Fatal("shuffle buffers must raise the peak above steady state")
	}
	e.Close()
	if m.Alloc().Current() != 0 {
		t.Fatalf("Close must release, %d left", m.Alloc().Current())
	}
}

func TestSetActiveCount(t *testing.T) {
	n, edges := gen.Chain(100)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(1, 1), DefaultOptions(), sg.Hints{})
	defer e.Close()
	e.SetActive([]graph.Vertex{1, 1, 50, 99})
	if e.ActiveCount() != 3 {
		t.Fatalf("ActiveCount = %d, want 3 (dedup)", e.ActiveCount())
	}
}
