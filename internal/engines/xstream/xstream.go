// Package xstream implements the X-Stream baseline: an edge-centric
// scatter-shuffle-gather engine with streaming partitions (Roy et al.,
// SOSP'13), as characterised in the paper's Sections 2.1 and 3.2.
//
// X-Stream never indexes edges by vertex: every iteration streams ALL
// edges sequentially, emits updates for the edges whose source is active,
// shuffles the updates to their target partitions, and applies them. The
// "tiling strategy" sizes each streaming partition so its vertex data fits
// the LLC, converting random vertex accesses into cache hits. The price is
// the extra shuffle traffic and — fatally for traversal algorithms on
// high-diameter graphs — the full edge scan per iteration even when only a
// handful of vertices is active (paper Table 3: 557 s for BFS on roadUS).
package xstream

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"

	"polymer/internal/barrier"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/par"
	"polymer/internal/sg"
)

// Kernel is X-Stream's edge-centric program interface.
type Kernel interface {
	// Scatter produces the update value to send along an out-edge of s
	// (already known to be active); ok=false suppresses the update.
	Scatter(s graph.Vertex, w float32) (val float64, ok bool)
	// Gather applies an update to d and reports whether d becomes active
	// in the next iteration. Each destination is gathered by exactly one
	// thread.
	Gather(d graph.Vertex, val float64) bool
}

// Applier is an optional per-vertex post-phase (e.g. PageRank's
// normalisation); it returns whether v is active next iteration.
type Applier func(v graph.Vertex) bool

// Options configures the baseline.
type Options struct {
	// OverheadNsPerEdge is X-Stream's per-edge software overhead.
	OverheadNsPerEdge float64
	// TileVertices overrides the streaming-partition size (0 = size tiles
	// so 2*DataBytes*TileVertices fits the LLC).
	TileVertices int
}

// DefaultOptions returns the evaluation configuration.
func DefaultOptions() Options { return Options{OverheadNsPerEdge: 1.5} }

type update struct {
	d   graph.Vertex
	val float64
}

type tile struct {
	loVertex, hiVertex int // source range [lo, hi)
	src, dst           []graph.Vertex
	wts                []float32
}

// Engine is an X-Stream instance.
type Engine struct {
	g   *graph.Graph
	m   *numa.Machine
	opt Options

	tiles    []tile
	tileOf   []int // vertex -> tile index
	active   []uint64
	nActive  int64
	pool     *par.Pool
	ledger   *numa.Epoch
	clock    float64
	edges    atomic.Int64
	topoB    int64
	arrays   []interface{ Free() }
	closed   bool
	dataB    int
	weighted bool

	err  error           // first execution failure
	ctx  context.Context // optional cancellation; nil means background
	snap *simSnapshot    // SnapshotSim/RestoreSim slot

	tr    *obs.Tracer // nil = tracing disabled
	round int         // committed Iterate count, for superstep numbering

	// Tiered-memory demand classes (nil when untiered; the wrappers'
	// nil fast path keeps charging bit-identical).
	tierPlan     *mem.TierPlan
	tierTopo     *mem.TierClass
	tierState    *mem.TierClass
	tierFrontier *mem.TierClass

	// Iteration-scoped scratch: the phase epoch is reset (after each fold
	// into the ledger) rather than reallocated, the shuffle buffers keep
	// their capacity between iterations, and the next-active bitmap
	// double-buffers with the current one. Host-only reuse; the charged
	// traffic and the simulated shuffle-buffer footprint are unchanged.
	scrEp         *numa.Epoch
	out           [][][]update // [thread][tile] update buffers
	spare         []uint64     // retired active bitmap, recycled as next
	scatterCounts [][2]int64
	gatherCounts  [][2]int64
	applyCounts   []int64
}

// New builds an X-Stream engine for g on m. Hints supply the data width
// used for tile sizing. It returns an error for invalid configuration or
// a simulated allocation failure.
func New(g *graph.Graph, m *numa.Machine, opt Options, h sg.Hints) (*Engine, error) {
	h = h.Normalize()
	if opt.OverheadNsPerEdge <= 0 {
		opt.OverheadNsPerEdge = 1.5
	}
	pool, err := par.NewPool(m.Threads())
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g: g, m: m, opt: opt,
		pool:     pool,
		ledger:   m.NewEpoch(),
		dataB:    h.DataBytes,
		weighted: h.Weighted,
	}
	e.buildTiles(opt.TileVertices)
	e.active = make([]uint64, (g.NumVertices()+63)/64)
	e.scrEp = m.NewEpoch()
	e.out = make([][][]update, m.Threads())
	for th := range e.out {
		e.out[th] = make([][]update, len(e.tiles))
	}
	e.scatterCounts = make([][2]int64, m.Threads())
	e.gatherCounts = make([][2]int64, m.Threads())
	e.applyCounts = make([]int64, m.Threads())
	if err := m.Alloc().Grow("xstream/topology", e.topoB); err != nil {
		pool.Close()
		return nil, err
	}
	e.initTier()
	return e, nil
}

// initTier registers X-Stream's demand classes: the interleaved edge
// tiles, interleaved application data, and the active bitmaps plus
// shuffle buffers (pinned under the hot policy). Untiered machines leave
// every handle nil.
func (e *Engine) initTier() {
	e.tierPlan = mem.NewTierPlan(e.m)
	if e.tierPlan == nil {
		return
	}
	nodes := e.m.Nodes
	e.tierFrontier = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "frontier", BytesPerNode: make([]int64, nodes), Pinned: true,
	})
	e.tierState = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "state", BytesPerNode: make([]int64, nodes), Priority: 0,
	})
	e.tierTopo = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "topology", BytesPerNode: make([]int64, nodes), Priority: 1,
	})
	e.tierFrontier.GrowDemandEven(2 * int64(len(e.active)) * 8)
	e.tierTopo.GrowDemandEven(e.topoB)
	e.tierState.SetHotMass(mem.DegreeHotMass(e.g.NumVertices(), func(i int) int64 {
		return e.g.OutDegree(graph.Vertex(i)) + 1
	}))
}

// TierPlan returns the engine's tier placement plan (nil when untiered).
func (e *Engine) TierPlan() *mem.TierPlan { return e.tierPlan }

// MustNew is New panicking on error, for statically valid configurations.
func MustNew(g *graph.Graph, m *numa.Machine, opt Options, h sg.Hints) *Engine {
	e, err := New(g, m, opt, h)
	if err != nil {
		panic(err)
	}
	return e
}

// simSnapshot captures the engine's simulated-time state plus the active
// bitmap for rollback.
type simSnapshot struct {
	clock   float64
	ledger  *numa.Epoch
	edges   int64
	active  []uint64
	nActive int64
	round   int
	tier    *mem.TierSnap
}

// Err returns the first execution failure, or nil. After a failure,
// Iterate is a no-op charging nothing until ClearErr.
func (e *Engine) Err() error { return e.err }

// ClearErr resets the failure so a rolled-back iteration can be replayed.
func (e *Engine) ClearErr() { e.err = nil }

func (e *Engine) fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// SetFaultHook installs (nil removes) the fault injector's per-dispatch
// hook on the worker pool.
func (e *Engine) SetFaultHook(h func(th int) error) { e.pool.SetHook(h) }

// SetContext installs a cancellation context consulted around each
// parallel phase; nil restores the default (never cancelled). A cancelled
// context fails the phase before any simulated charging.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// runPhase dispatches one parallel phase; on failure it records the error
// and returns false, and the caller must skip all simulated charging.
func (e *Engine) runPhase(fn func(th int)) bool {
	if e.err != nil {
		return false
	}
	var err error
	if e.ctx != nil {
		err = e.pool.RunCtx(e.ctx, fn)
	} else {
		err = e.pool.Run(fn)
	}
	if err != nil {
		e.fail(err)
		return false
	}
	return true
}

// SnapshotSim saves the simulated clock, cumulative ledger, edge counter
// and the current active set; RestoreSim rolls back to the snapshot.
func (e *Engine) SnapshotSim() {
	if e.snap == nil {
		e.snap = &simSnapshot{ledger: e.m.NewEpoch(), active: make([]uint64, len(e.active))}
	}
	e.snap.clock = e.clock
	e.snap.ledger.CopyFrom(e.ledger)
	e.snap.edges = e.edges.Load()
	copy(e.snap.active, e.active)
	e.snap.nActive = e.nActive
	e.snap.round = e.round
	e.snap.tier = e.tierPlan.Snapshot()
}

// RestoreSim rolls the simulated-time state and active set back to the
// last SnapshotSim.
func (e *Engine) RestoreSim() {
	if e.snap == nil {
		return
	}
	e.clock = e.snap.clock
	e.ledger.CopyFrom(e.snap.ledger)
	e.edges.Store(e.snap.edges)
	copy(e.active, e.snap.active)
	e.nActive = e.snap.nActive
	e.round = e.snap.round
	e.tierPlan.Restore(e.snap.tier)
}

// SetTracer installs (nil removes) the obs tracer. Iterate then emits
// scatter/shuffle/gather/apply phase spans and one superstep event per
// committed iteration; the worker pool emits host-lane dispatch spans.
func (e *Engine) SetTracer(tr *obs.Tracer) {
	e.tr = tr
	e.pool.SetTracer(tr)
}

// Tracer, TraceCat and TrafficSnapshot make the engine an obs.SimSource.
// X-Stream owns its superstep loop, so it emits superstep events itself —
// drivers must not additionally wrap Iterate in obs.BeginStep.
func (e *Engine) Tracer() *obs.Tracer { return e.tr }

// TraceCat returns the engine's obs event category.
func (e *Engine) TraceCat() string { return "xstream" }

// TrafficSnapshot copies the cumulative classified run traffic into dst.
func (e *Engine) TrafficSnapshot(dst *numa.TrafficMatrix) { e.ledger.Traffic(dst) }

// notePhase emits one phase span ending at the current clock.
func (e *Engine) notePhase(kind string, active int64, dur float64) {
	if e.tr != nil {
		e.tr.Phase("xstream", kind, false, true, active, e.clock-dur, dur)
	}
}

func (e *Engine) buildTiles(tileVerts int) {
	n := e.g.NumVertices()
	if tileVerts <= 0 {
		tileVerts = int(e.m.Topo.LLCBytes) / (2 * e.dataB)
	}
	// Round up to a 64-bit word boundary so each tile's state words have a
	// single writer in the gather phase.
	tileVerts = (tileVerts + 63) &^ 63
	if tileVerts < 64 {
		tileVerts = 64
	}
	e.tileOf = make([]int, n)
	for lo := 0; lo < n; lo += tileVerts {
		hi := lo + tileVerts
		if hi > n {
			hi = n
		}
		t := tile{loVertex: lo, hiVertex: hi}
		for v := lo; v < hi; v++ {
			nbrs := e.g.OutNeighbors(graph.Vertex(v))
			wts := e.g.OutWeights(graph.Vertex(v))
			for j, u := range nbrs {
				t.src = append(t.src, graph.Vertex(v))
				t.dst = append(t.dst, u)
				if wts != nil {
					t.wts = append(t.wts, wts[j])
				}
			}
			e.tileOf[v] = len(e.tiles)
		}
		e.tiles = append(e.tiles, t)
	}
	if n == 0 {
		e.tiles = append(e.tiles, tile{})
	}
	for i := range e.tiles {
		t := &e.tiles[i]
		e.topoB += int64(len(t.src))*8 + int64(len(t.wts))*4
	}
	e.topoB += int64(n) * 4
}

// Graph returns the input graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Machine returns the simulated machine.
func (e *Engine) Machine() *numa.Machine { return e.m }

// Tiles returns the number of streaming partitions.
func (e *Engine) Tiles() int { return len(e.tiles) }

// SimSeconds returns the accumulated simulated runtime.
func (e *Engine) SimSeconds() float64 { return e.clock }

// RunStats returns accumulated access statistics.
func (e *Engine) RunStats() numa.Stats { return e.ledger.Stats() }

// EdgesProcessed returns total edges streamed.
func (e *Engine) EdgesProcessed() int64 { return e.edges.Load() }

// NewData allocates an interleaved per-vertex float64 array.
func (e *Engine) NewData(label string) *mem.Array[float64] {
	a := mem.New[float64](e.m, label, e.g.NumVertices(), mem.Interleaved, nil)
	a.BindTier(e.tierState).GrowTierDemand()
	e.arrays = append(e.arrays, a)
	return a
}

// NewData32 allocates an interleaved per-vertex uint32 array.
func (e *Engine) NewData32(label string) *mem.Array[uint32] {
	a := mem.New[uint32](e.m, label, e.g.NumVertices(), mem.Interleaved, nil)
	a.BindTier(e.tierState).GrowTierDemand()
	e.arrays = append(e.arrays, a)
	return a
}

// Close stops the workers and releases simulated allocations.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.pool.Close()
	for _, a := range e.arrays {
		a.Free()
	}
	e.m.Alloc().Release("xstream/topology", e.topoB)
}

// SetAllActive marks every vertex active.
func (e *Engine) SetAllActive() {
	n := e.g.NumVertices()
	for i := range e.active {
		e.active[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && len(e.active) > 0 {
		e.active[len(e.active)-1] = (1 << r) - 1
	}
	e.nActive = int64(n)
}

// SetActive marks exactly the given vertices active.
func (e *Engine) SetActive(vs []graph.Vertex) {
	for i := range e.active {
		e.active[i] = 0
	}
	for _, v := range vs {
		e.active[v/64] |= 1 << (v % 64)
	}
	e.nActive = 0
	for _, w := range e.active {
		e.nActive += int64(bits.OnesCount64(w))
	}
}

// ActiveCount returns the current number of active vertices.
func (e *Engine) ActiveCount() int64 { return e.nActive }

func (e *Engine) isActive(v graph.Vertex) bool {
	return e.active[v/64]&(1<<(v%64)) != 0
}

// Iterate runs one scatter -> shuffle -> gather pass (plus the optional
// apply phase) and replaces the active set; it returns the new active
// count.
func (e *Engine) Iterate(k Kernel, apply Applier) int64 {
	if e.err != nil {
		return e.nActive
	}
	nTiles := len(e.tiles)
	threads := e.m.Threads()
	simStart := e.clock
	activeIn := e.nActive
	var startTM *numa.TrafficMatrix
	if e.tr != nil {
		startTM = &numa.TrafficMatrix{}
		e.ledger.Traffic(startTM)
	}
	ep := e.scrEp
	ep.Reset()

	// out[th][tile] are thread th's updates destined for each tile; the
	// buffers keep their capacity between iterations.
	out := e.out
	for th := range out {
		for ti := range out[th] {
			out[th][ti] = out[th][ti][:0]
		}
	}

	// Scatter: stream every tile's edges; emit updates for active sources.
	// The charge is balanced across all workers: X-Stream sizes its
	// streaming partitions to the thread count at full scale, so per-tile
	// skew does not serialise it.
	ck := par.MakeStrided(int64(nTiles), 1, threads)
	scatterCounts := e.scatterCounts
	e.runPhase(func(th int) {
		var scanned, activeEdges int64
		ck.Do(th, func(lo, hi int64) {
			for ti := lo; ti < hi; ti++ {
				t := &e.tiles[ti]
				for i := range t.src {
					scanned++
					s := t.src[i]
					if !e.isActive(s) {
						continue
					}
					activeEdges++
					var w float32
					if t.wts != nil {
						w = t.wts[i]
					}
					if val, ok := k.Scatter(s, w); ok {
						d := t.dst[i]
						out[th][e.tileOf[d]] = append(out[th][e.tileOf[d]], update{d, val})
					}
				}
			}
		})
		scatterCounts[th] = [2]int64{scanned, activeEdges}
	})
	if e.err != nil {
		// Abort before any charging, shuffle-buffer accounting, or
		// active-set replacement: a failed iteration leaves no residue and
		// replays bit-identically after recovery.
		return e.nActive
	}
	var scannedT, activeT int64
	for _, c := range scatterCounts {
		scannedT += c[0]
		activeT += c[1]
	}
	tileWS := int64(e.tiles[0].hiVertex-e.tiles[0].loVertex) * int64(e.dataB)
	for th := 0; th < threads; th++ {
		scanned, activeEdges := scannedT/int64(threads), activeT/int64(threads)
		// Edge stream: sequential interleaved; source state + data reads:
		// random within the tile (cache-resident thanks to tiling).
		e.tierTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, scanned, e.edgeBytes(), 0)
		e.tierFrontier.Access(ep, th, numa.Rand, numa.Load, e.m.NodeOfThread(th), scanned, 1, tileWS)
		e.tierState.Access(ep, th, numa.Rand, numa.Load, e.m.NodeOfThread(th), activeEdges, e.dataB, tileWS)
		// Uout appends: sequential writes to thread-local buffers.
		e.tierFrontier.Access(ep, th, numa.Seq, numa.Store, e.m.NodeOfThread(th), activeEdges, 12, 0)
		ep.Compute(th, float64(scanned)*(e.opt.OverheadNsPerEdge)*1e-9)
	}
	e.addEdges(scannedT)
	e.tierPlan.Step(ep)
	scatterDur := ep.Time() + barrier.SyncCost(barrier.H, e.m.Nodes)/e.m.Topo.SyncScale
	e.clock += scatterDur
	e.ledger.Add(ep)
	e.notePhase("scatter", activeIn, scatterDur)
	ep.Reset() // shuffle phase reuses the same epoch

	// Shuffle accounting: every update is read from Uout and written to
	// its target tile's Uin across the machine (SEQ|W|G), plus transient
	// buffer memory (Table 5's "additional buffers in the shuffle phase").
	var totalUpdates int64
	for th := range out {
		for ti := range out[th] {
			totalUpdates += int64(len(out[th][ti]))
		}
	}
	// X-Stream streams updates partition by partition, so only about one
	// tile's worth of Uout/Uin is in flight at a time (the paper's
	// Table 5 shows the shuffle buffers add ~8% over Ligra's footprint).
	bufBytes := totalUpdates * 16 * 2 / int64(nTiles)
	if err := e.m.Alloc().Grow("xstream/buffers", bufBytes); err != nil {
		e.fail(err)
		return e.nActive
	}
	ep2 := ep
	perThread := totalUpdates / int64(threads)
	for th := 0; th < threads; th++ {
		// Uout is read from the emitting thread's local buffer; the
		// re-arranged Uin lands on interleaved pages across the machine.
		e.tierFrontier.Access(ep2, th, numa.Seq, numa.Load, e.m.NodeOfThread(th), perThread, 12, 0)
		e.tierFrontier.AccessInterleaved(ep2, th, numa.Seq, numa.Store, perThread, 12, 0)
	}
	e.tierPlan.Step(ep2)
	shuffleDur := ep2.Time() + barrier.SyncCost(barrier.H, e.m.Nodes)/e.m.Topo.SyncScale
	e.clock += shuffleDur
	e.ledger.Add(ep2)
	e.notePhase("shuffle", totalUpdates, shuffleDur)
	ep2.Reset() // gather phase reuses the same epoch

	// Gather: each tile applies its incoming updates; one thread per tile
	// so destination writes need no atomics.
	next := e.takeSpare()
	var nextCount int64
	var mu sync.Mutex
	ck2 := par.MakeStrided(int64(nTiles), 1, threads)
	ep3 := ep2
	gatherCounts := e.gatherCounts
	e.runPhase(func(th int) {
		var applied, activated int64
		var local int64
		ck2.Do(th, func(lo, hi int64) {
			for ti := lo; ti < hi; ti++ {
				for src := 0; src < threads; src++ {
					for _, u := range out[src][ti] {
						applied++
						if k.Gather(u.d, u.val) {
							w := &next[u.d/64]
							if *w&(1<<(u.d%64)) == 0 {
								*w |= 1 << (u.d % 64)
								local++
							}
							activated++
						}
					}
				}
			}
		})
		gatherCounts[th] = [2]int64{applied, activated}
		mu.Lock()
		nextCount += local
		mu.Unlock()
	})
	if e.err != nil {
		e.m.Alloc().Release("xstream/buffers", bufBytes)
		return e.nActive
	}
	var appliedT, activatedT int64
	for _, c := range gatherCounts {
		appliedT += c[0]
		activatedT += c[1]
	}
	for th := 0; th < threads; th++ {
		applied, activated := appliedT/int64(threads), activatedT/int64(threads)
		e.tierFrontier.AccessInterleaved(ep3, th, numa.Seq, numa.Load, applied, 12, 0)
		e.tierState.Access(ep3, th, numa.Rand, numa.Store, e.m.NodeOfThread(th), applied, e.dataB, tileWS)
		e.tierFrontier.Access(ep3, th, numa.Rand, numa.Store, e.m.NodeOfThread(th), activated, 1, tileWS)
		ep3.Compute(th, float64(applied)*2e-9)
	}
	e.tierPlan.Step(ep3)
	gatherDur := ep3.Time() + barrier.SyncCost(barrier.H, e.m.Nodes)/e.m.Topo.SyncScale
	e.clock += gatherDur
	e.ledger.Add(ep3)
	e.notePhase("gather", appliedT, gatherDur)
	e.m.Alloc().Release("xstream/buffers", bufBytes)

	if apply != nil {
		nextCount = e.applyPhase(apply, next)
	}
	if e.err != nil {
		return e.nActive // apply phase failed: keep the current active set
	}
	e.spare = e.active // recycle the retired bitmap next iteration
	e.active = next
	e.nActive = nextCount
	if e.tr != nil {
		delta := &numa.TrafficMatrix{}
		e.ledger.Traffic(delta)
		delta.Sub(startTM)
		e.tr.Superstep("xstream", e.round, simStart, e.clock-simStart, delta)
	}
	e.round++
	return e.nActive
}

// takeSpare returns a zeroed bitmap for the next active set, recycling the
// one retired by the previous iteration when available.
func (e *Engine) takeSpare() []uint64 {
	if e.spare == nil {
		return make([]uint64, len(e.active))
	}
	next := e.spare
	e.spare = nil
	for i := range next {
		next[i] = 0
	}
	return next
}

// applyPhase runs the per-vertex post-function over all vertices,
// overwriting the next-state bitmap with its verdicts.
func (e *Engine) applyPhase(apply Applier, next []uint64) int64 {
	n := e.g.NumVertices()
	for i := range next {
		next[i] = 0
	}
	counts := e.applyCounts
	for i := range counts {
		counts[i] = 0
	}
	ck := par.MakeStrided(int64(n), 256, e.m.Threads())
	ep := e.scrEp
	ep.Reset()
	e.runPhase(func(th int) {
		var visited int64
		ck.Do(th, func(lo, hi int64) {
			for v := lo; v < hi; v++ {
				visited++
				if apply(graph.Vertex(v)) {
					w := &next[v/64]
					// Chunks are 256-aligned on 64-bit word boundaries, so
					// each word has a single writer.
					*w |= 1 << (v % 64)
					counts[th]++
				}
			}

		})
		e.tierState.AccessInterleaved(ep, th, numa.Seq, numa.Load, visited, e.dataB*2, 0)
		ep.Compute(th, float64(visited)*2e-9)
	})
	if e.err != nil {
		return 0
	}
	e.tierPlan.Step(ep)
	applyDur := ep.Time() + barrier.SyncCost(barrier.H, e.m.Nodes)/e.m.Topo.SyncScale
	e.clock += applyDur
	e.ledger.Add(ep)
	e.notePhase("apply", int64(n), applyDur)
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

func (e *Engine) edgeBytes() int {
	if e.weighted {
		return 12
	}
	return 8
}

func (e *Engine) addEdges(n int64) {
	e.edges.Add(n)
}
