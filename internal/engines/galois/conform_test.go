package galois_test

import (
	"testing"

	"polymer/internal/conform"
	"polymer/internal/gen"
	"polymer/internal/graph"
)

// TestConformance pins the Galois engine against the sequential oracles
// for every algorithm; the cross-engine matrix lives in
// internal/conform, this is the engine-local regression hook.
func TestConformance(t *testing.T) {
	n, e := gen.Powerlaw(160, 4, 2.0, 21)
	gen.AddRandomWeights(e, 22)
	g := graph.FromEdges(n, e, true)
	for _, alg := range conform.Algos() {
		c := conform.Case{Engine: conform.Galois, Algo: alg, Topo: conform.AMD64, Src: 2}
		t.Run(c.String(), func(t *testing.T) {
			if d := conform.Check(c, g); d != nil {
				t.Fatal(d)
			}
		})
	}
}
