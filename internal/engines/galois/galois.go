// Package galois implements the Galois baseline (Nguyen, Lenharth &
// Pingali, SOSP'13) as the paper characterises it: a task-based engine
// with a sophisticated scheduler and per-algorithm implementations that
// differ from the scatter-gather systems — synchronous pull-based
// PageRank, asynchronous worklist BFS, a topology-driven
// union-find connected components, and data-driven delta-stepping SSSP.
//
// Galois is heavily optimised (the lowest per-edge overhead, a
// work-stealing scheduler that keeps edge work balanced under degree
// skew, and an allocator that reuses memory between iterations — the
// paper's Table 5 shows it with the smallest footprint), but it is
// NUMA-oblivious: its arrays are interleaved and its worklists global, so
// its socket scalability is the worst of the evaluated systems
// (Figure 5(b), 2.90x on 8 sockets) even while its single-socket
// performance is the best.
package galois

import (
	"context"
	"math"
	"sync/atomic"

	"polymer/internal/atomicx"
	"polymer/internal/barrier"
	"polymer/internal/fault"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/par"
)

// Options configures the baseline.
type Options struct {
	// OverheadNsPerEdge is Galois's per-edge software overhead (lowest of
	// the four systems).
	OverheadNsPerEdge float64
	// NsPerTask is the scheduler's per-task (per-vertex) overhead.
	NsPerTask float64
	// Delta is the delta-stepping bucket width for SSSP (default 8).
	Delta float64
}

// DefaultOptions returns the evaluation configuration.
func DefaultOptions() Options {
	return Options{OverheadNsPerEdge: 0.8, NsPerTask: 20, Delta: 8}
}

// Engine is a Galois instance bound to one graph and machine.
type Engine struct {
	g   *graph.Graph
	m   *numa.Machine
	opt Options

	pool   *par.Pool
	ledger *numa.Epoch
	clock  float64
	edges  atomic.Int64
	topoB  int64
	dataB  int64
	closed bool

	err  error           // first execution failure
	ctx  context.Context // optional cancellation; nil means background
	snap *simSnapshot    // SnapshotSim/RestoreSim slot

	tr    *obs.Tracer // nil = tracing disabled
	round int         // committed round count, for superstep numbering

	// Tiered-memory demand classes (nil when untiered; the wrappers'
	// nil fast path keeps charging bit-identical).
	tierPlan     *mem.TierPlan
	tierTopo     *mem.TierClass
	tierState    *mem.TierClass
	tierFrontier *mem.TierClass

	// Round-scoped scratch, reset between parallel rounds so steady-state
	// iterations reuse the epoch, counters and worklist buffers instead of
	// reallocating them. Host-only: charged traffic is unchanged.
	scrEp     *numa.Epoch
	scrCnt    *counters
	nextLists [][]graph.Vertex
	farLists  [][]graph.Vertex
}

// New builds a Galois engine for g on m.
func New(g *graph.Graph, m *numa.Machine, opt Options) (*Engine, error) {
	if opt.OverheadNsPerEdge <= 0 {
		opt.OverheadNsPerEdge = 0.8
	}
	if opt.NsPerTask <= 0 {
		opt.NsPerTask = 20
	}
	if opt.Delta <= 0 {
		opt.Delta = 8
	}
	pool, err := par.NewPool(m.Threads())
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g: g, m: m, opt: opt,
		pool:   pool,
		ledger: m.NewEpoch(),
	}
	e.scrEp = m.NewEpoch()
	e.scrCnt = newCounters(m.Threads())
	e.nextLists = make([][]graph.Vertex, m.Threads())
	e.farLists = make([][]graph.Vertex, m.Threads())
	// Galois keeps a single edge direction resident for most algorithms
	// and reuses memory aggressively.
	e.topoB = g.TopologyBytes() / 2
	if err := m.Alloc().Grow("galois/topology", e.topoB); err != nil {
		pool.Close()
		return nil, err
	}
	e.initTier()
	return e, nil
}

// initTier registers Galois's demand classes: the interleaved edge
// arrays, the per-run application data (grown by trackData), and the
// worklist/task metadata (pinned under the hot policy). Untiered
// machines leave every handle nil.
func (e *Engine) initTier() {
	e.tierPlan = mem.NewTierPlan(e.m)
	if e.tierPlan == nil {
		return
	}
	nodes := e.m.Nodes
	e.tierFrontier = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "frontier", BytesPerNode: make([]int64, nodes), Pinned: true,
	})
	e.tierState = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "state", BytesPerNode: make([]int64, nodes), Priority: 0,
	})
	e.tierTopo = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "topology", BytesPerNode: make([]int64, nodes), Priority: 1,
	})
	e.tierFrontier.GrowDemandEven(int64(e.g.NumVertices()) * 16)
	e.tierTopo.GrowDemandEven(e.topoB)
	e.tierState.SetHotMass(mem.DegreeHotMass(e.g.NumVertices(), func(i int) int64 {
		return e.g.OutDegree(graph.Vertex(i)) + 1
	}))
}

// TierPlan returns the engine's tier placement plan (nil when untiered).
func (e *Engine) TierPlan() *mem.TierPlan { return e.tierPlan }

// MustNew is New panicking on error, for call sites with known-good
// configuration.
func MustNew(g *graph.Graph, m *numa.Machine, opt Options) *Engine {
	e, err := New(g, m, opt)
	if err != nil {
		panic(err)
	}
	return e
}

// Err returns the first execution failure (worker panic, offline node,
// allocation failure), or nil.
func (e *Engine) Err() error { return e.err }

// ClearErr resets the failure so a rolled-back round can be replayed.
func (e *Engine) ClearErr() { e.err = nil }

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// SetFaultHook installs a per-dispatch fault hook on the worker pool.
func (e *Engine) SetFaultHook(h func(th int) error) { e.pool.SetHook(h) }

// SetContext installs a cancellation context consulted around each
// parallel round; nil restores the default (never cancelled). A cancelled
// context fails the round before any simulated charging.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// runPhase dispatches fn across the pool, folding worker failures into
// e.err. After a failure, subsequent rounds are no-ops until ClearErr.
func (e *Engine) runPhase(fn func(th int)) {
	if e.err != nil {
		return
	}
	var err error
	if e.ctx != nil {
		err = e.pool.RunCtx(e.ctx, fn)
	} else {
		err = e.pool.Run(fn)
	}
	if err != nil {
		e.fail(err)
	}
}

// simSnapshot holds the simulated-time state captured by SnapshotSim.
type simSnapshot struct {
	clock  float64
	ledger *numa.Epoch
	edges  int64
	round  int
	tier   *mem.TierSnap
}

// SnapshotSim saves the simulated clock, ledger and edge counter so a
// rolled-back round can restore them before replay.
func (e *Engine) SnapshotSim() {
	if e.snap == nil {
		e.snap = &simSnapshot{ledger: e.m.NewEpoch()}
	}
	e.snap.clock = e.clock
	e.snap.ledger.CopyFrom(e.ledger)
	e.snap.edges = e.edges.Load()
	e.snap.round = e.round
	e.snap.tier = e.tierPlan.Snapshot()
}

// RestoreSim restores the state captured by the last SnapshotSim.
func (e *Engine) RestoreSim() {
	if e.snap == nil {
		return
	}
	e.clock = e.snap.clock
	e.ledger.CopyFrom(e.snap.ledger)
	e.edges.Store(e.snap.edges)
	e.round = e.snap.round
	e.tierPlan.Restore(e.snap.tier)
}

// SetTracer installs (nil removes) the obs tracer. Every charged round
// then emits one superstep event with its traffic attribution; the worker
// pool emits host-lane dispatch spans.
func (e *Engine) SetTracer(tr *obs.Tracer) {
	e.tr = tr
	e.pool.SetTracer(tr)
}

// Tracer, TraceCat and TrafficSnapshot make the engine an obs.SimSource.
// Galois owns its round loops (the unit of superstep here is one charged
// round), so it emits superstep events itself — drivers must not wrap its
// algorithm entry points in obs.BeginStep.
func (e *Engine) Tracer() *obs.Tracer { return e.tr }

// TraceCat returns the engine's obs event category.
func (e *Engine) TraceCat() string { return "galois" }

// TrafficSnapshot copies the cumulative classified run traffic into dst.
func (e *Engine) TrafficSnapshot(dst *numa.TrafficMatrix) { e.ledger.Traffic(dst) }

// Graph returns the input graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Machine returns the simulated machine.
func (e *Engine) Machine() *numa.Machine { return e.m }

// SimSeconds returns the accumulated simulated runtime.
func (e *Engine) SimSeconds() float64 { return e.clock }

// RunStats returns accumulated access statistics.
func (e *Engine) RunStats() numa.Stats { return e.ledger.Stats() }

// EdgesProcessed returns total edge applications.
func (e *Engine) EdgesProcessed() int64 { return e.edges.Load() }

// Close stops the workers and releases simulated allocations.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.pool.Close()
	e.m.Alloc().Release("galois/topology", e.topoB)
	if e.dataB > 0 {
		e.m.Alloc().Release("galois/data", e.dataB)
	}
}

// trackData registers per-run application data (released at Close). An
// injected allocation failure panics; fault.Catch recovers it into the
// session error so the run can restart.
func (e *Engine) trackData(bytes int64) {
	if err := e.m.Alloc().Grow("galois/data", bytes); err != nil {
		panic(err)
	}
	e.dataB += bytes
	e.tierState.GrowDemandEven(bytes)
}

// counters accumulates per-thread work; each worker only touches its own
// padded slot.
type counters struct {
	slots []counterSlot
}

type counterSlot struct {
	edges, tasks int64
	_            [6]int64 // avoid false sharing
}

func newCounters(threads int) *counters { return &counters{slots: make([]counterSlot, threads)} }

func (c *counters) reset() {
	for i := range c.slots {
		c.slots[i].edges = 0
		c.slots[i].tasks = 0
	}
}

func (c *counters) add(th int, edges, tasks int64) {
	c.slots[th].edges += edges
	c.slots[th].tasks += tasks
}

func (c *counters) totals() (edges, tasks int64) {
	for i := range c.slots {
		edges += c.slots[i].edges
		tasks += c.slots[i].tasks
	}
	return
}

// chargeRound folds one parallel round into the clock with the
// scheduler's synchronization cost. The totals are spread evenly over all
// workers: Galois's work-stealing scheduler keeps edge work balanced
// across threads regardless of degree skew.
func (e *Engine) chargeRound(ep *numa.Epoch, cnt *counters, dataBytes int, syncKind barrier.Kind) {
	edges, tasks := cnt.totals()
	n := int64(e.g.NumVertices())
	threads := e.m.Threads()
	perEdges, perTasks := edges/int64(threads), tasks/int64(threads)
	for th := 0; th < threads; th++ {
		e.tierTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, perEdges, 4, 0)
		e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Load, perEdges, dataBytes, n*int64(dataBytes))
		e.tierFrontier.AccessInterleaved(ep, th, numa.Seq, numa.Load, perTasks, 16, 0)
		e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Store, perTasks, dataBytes, n*int64(dataBytes))
		ep.Compute(th, (float64(perEdges)*e.opt.OverheadNsPerEdge+float64(perTasks)*e.opt.NsPerTask)*1e-9)
	}
	e.tierPlan.Step(ep)
	dur := ep.Time() + barrier.SyncCost(syncKind, e.m.Nodes)/e.m.Topo.SyncScale
	e.clock += dur
	e.ledger.Add(ep)
	e.edges.Add(edges)
	if e.tr != nil {
		// The round epoch is exactly this superstep's charge, so its
		// classified traffic is the delta — no cumulative snapshot needed.
		tm := &numa.TrafficMatrix{}
		ep.Traffic(tm)
		e.tr.Superstep("galois", e.round, e.clock-dur, dur, tm)
	}
	e.round++
}

// beginRound resets and hands out the round-scoped epoch and counters.
// Rounds are sequential (each ends at chargeRound's join), so one set of
// buffers serves the whole run.
func (e *Engine) beginRound() (*numa.Epoch, *counters) {
	e.scrEp.Reset()
	e.scrCnt.reset()
	return e.scrEp, e.scrCnt
}

// roundLists hands out the reusable per-thread worklist buffers, emptied.
func (e *Engine) roundLists() (next, far [][]graph.Vertex) {
	for th := range e.nextLists {
		e.nextLists[th] = e.nextLists[th][:0]
		e.farLists[th] = e.farLists[th][:0]
	}
	return e.nextLists, e.farLists
}

// PageRank runs the synchronous pull-based PageRank Galois selects
// ("to reduce synchronization overhead") for iters iterations and returns
// the ranks.
func (e *Engine) PageRank(iters int, damping float64) []float64 {
	r, err := e.PageRankE(iters, damping, nil)
	if err != nil {
		panic(err)
	}
	return r
}

// PageRankE is the fault-session-capable PageRank: each iteration runs as
// one fault.Step, so an injected fault rolls back the round's simulated
// charges and per-vertex state and replays it to a bit-identical result.
// A nil session runs fault-free with plain panic recovery.
func (e *Engine) PageRankE(iters int, damping float64, sess *fault.Session) ([]float64, error) {
	g := e.g
	n := g.NumVertices()
	curr := make([]float64, n)
	next := make([]float64, n)
	e.trackData(int64(n) * 16)
	for i := range curr {
		curr[i] = 1 / float64(n)
	}
	invOut := make([]float64, n)
	for v := 0; v < n; v++ {
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			invOut[v] = 1 / float64(d)
		}
	}
	ck := par.MakeStrided(int64(n), 64, e.m.Threads())
	if sess != nil {
		sess.TrackF64(curr, next)
	}
	for it := 0; it < iters; it++ {
		err := fault.Step(sess, it, func() error {
			ep, cnt := e.beginRound()
			e.runPhase(func(th int) {
				var edges, tasks int64
				ck.Do(th, func(lo, hi int64) {
					for v := lo; v < hi; v++ {
						tasks++
						var sum float64
						for _, u := range g.InNeighbors(graph.Vertex(v)) {
							edges++
							sum += curr[u] * invOut[u]
						}
						next[v] = (1-damping)/float64(n) + damping*sum
					}
				})
				cnt.add(th, edges, tasks)
			})
			if e.err != nil {
				return e.err
			}
			e.chargeRound(ep, cnt, 8, barrier.H)
			return fault.CheckFinite("galois/pagerank", next)
		})
		if err != nil {
			return nil, err
		}
		// Swap only after the step committed, so a replay reruns over the
		// same input buffer.
		curr, next = next, curr
	}
	return curr, nil
}

// SpMV multiplies the weighted adjacency matrix with a dense vector,
// iters times (y = A x, then x <- y), returning the final vector.
func (e *Engine) SpMV(iters int, x0 []float64) []float64 {
	g := e.g
	n := g.NumVertices()
	x := make([]float64, n)
	y := make([]float64, n)
	e.trackData(int64(n) * 16)
	copy(x, x0)
	ck := par.MakeStrided(int64(n), 64, e.m.Threads())
	for it := 0; it < iters; it++ {
		ep, cnt := e.beginRound()
		e.runPhase(func(th int) {
			var edges, tasks int64
			ck.Do(th, func(lo, hi int64) {
				for v := lo; v < hi; v++ {
					tasks++
					nbrs := g.InNeighbors(graph.Vertex(v))
					wts := g.InWeights(graph.Vertex(v))
					var sum float64
					for j, u := range nbrs {
						edges++
						w := 1.0
						if wts != nil && wts[j] != 0 {
							w = float64(wts[j])
						}
						sum += w * x[u]
					}
					y[v] = sum
				}
			})
			cnt.add(th, edges, tasks)
		})
		if e.err != nil {
			return x
		}
		e.chargeRound(ep, cnt, 8, barrier.H)
		x, y = y, x
	}
	return x
}

// BP runs iters rounds of Bayesian belief propagation (message passing
// along weighted in-edges with normalisation), returning per-vertex
// beliefs.
func (e *Engine) BP(iters int) []float64 {
	g := e.g
	n := g.NumVertices()
	curr := make([]float64, n)
	next := make([]float64, n)
	e.trackData(int64(n) * 32)
	for i := range curr {
		curr[i] = 0.5
	}
	ck := par.MakeStrided(int64(n), 64, e.m.Threads())
	for it := 0; it < iters; it++ {
		ep, cnt := e.beginRound()
		e.runPhase(func(th int) {
			var edges, tasks int64
			ck.Do(th, func(lo, hi int64) {
				for v := lo; v < hi; v++ {
					tasks++
					nbrs := g.InNeighbors(graph.Vertex(v))
					wts := g.InWeights(graph.Vertex(v))
					belief := 1.0
					for j, u := range nbrs {
						edges++
						w := 0.5
						if wts != nil && wts[j] != 0 {
							w = float64(wts[j]) / 100
						}
						belief *= 1 - w*curr[u] // product of damped messages
					}
					next[v] = 1 - belief
				}
			})
			cnt.add(th, edges, tasks)
		})
		if e.err != nil {
			return curr
		}
		// Beliefs are wider than ranks (message tables).
		e.chargeRound(ep, cnt, 16, barrier.H)
		curr, next = next, curr
	}
	return curr
}

// BFS runs Galois's asynchronous worklist BFS from src and returns the
// level of each vertex (-1 if unreachable). The worklist processes rounds
// without a global barrier (charged at the cheap N-Barrier rate).
func (e *Engine) BFS(src graph.Vertex) []int64 {
	g := e.g
	n := g.NumVertices()
	const unreached = math.MaxInt64
	dist := make([]int64, n)
	if n == 0 {
		return dist
	}
	e.trackData(int64(n) * 8)
	for i := range dist {
		dist[i] = unreached
	}
	dist[src] = 0
	frontier := []graph.Vertex{src}
	for len(frontier) > 0 {
		nextLists, _ := e.roundLists()
		ck := par.MakeStrided(int64(len(frontier)), 16, e.m.Threads())
		ep, cnt := e.beginRound()
		e.runPhase(func(th int) {
			var edges, tasks int64
			ck.Do(th, func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					v := frontier[i]
					tasks++
					d := dist[v]
					for _, u := range g.OutNeighbors(v) {
						edges++
						if atomicx.MinInt64(&dist[u], d+1) {
							nextLists[th] = append(nextLists[th], u)
						}
					}
				}
			})
			cnt.add(th, edges, tasks)
		})
		if e.err != nil {
			break
		}
		e.chargeRound(ep, cnt, 8, barrier.N) // asynchronous scheduling: no kernel barrier
		frontier = frontier[:0]
		for _, l := range nextLists {
			frontier = append(frontier, l...)
		}
	}
	for i := range dist {
		if dist[i] == unreached {
			dist[i] = -1
		}
	}
	return dist
}

// CC computes connected components with Galois's topology-driven
// concurrent union-find (edges as tasks, lock-free pointer jumping) and
// returns, for every vertex, the smallest vertex id in its component.
func (e *Engine) CC() []graph.Vertex {
	g := e.g
	n := g.NumVertices()
	parent := make([]uint32, n)
	e.trackData(int64(n) * 4)
	for i := range parent {
		parent[i] = uint32(i)
	}

	find := func(x uint32) uint32 {
		for {
			p := atomic.LoadUint32(&parent[x])
			if p == x {
				return x
			}
			gp := atomic.LoadUint32(&parent[p])
			atomicx.CASUint32(&parent[x], p, gp) // path halving
			x = gp
		}
	}
	union := func(a, b uint32) {
		for {
			ra, rb := find(a), find(b)
			if ra == rb {
				return
			}
			if ra > rb {
				ra, rb = rb, ra
			}
			// Attach the larger root under the smaller id (keeps the
			// representative minimal, which canonicalises the output).
			if atomicx.CASUint32(&parent[rb], rb, ra) {
				return
			}
		}
	}

	// One pass over all edges, in parallel.
	ck := par.MakeStrided(int64(n), 64, e.m.Threads())
	ep, cnt := e.beginRound()
	e.runPhase(func(th int) {
		var edges, tasks int64
		ck.Do(th, func(lo, hi int64) {
			for v := lo; v < hi; v++ {
				tasks++
				for _, u := range g.OutNeighbors(graph.Vertex(v)) {
					edges++
					union(uint32(v), u)
				}
			}
		})
		cnt.add(th, edges, tasks)
	})
	out := make([]graph.Vertex, n)
	if e.err != nil {
		return out
	}
	e.chargeRound(ep, cnt, 4, barrier.N)

	// Final flattening pass.
	ck2 := par.MakeStrided(int64(n), 64, e.m.Threads())
	ep2, cnt2 := e.beginRound()
	e.runPhase(func(th int) {
		var tasks int64
		ck2.Do(th, func(lo, hi int64) {
			for v := lo; v < hi; v++ {
				tasks++
				out[v] = find(uint32(v))
			}
		})
		cnt2.add(th, 0, tasks)
	})
	if e.err != nil {
		return out
	}
	e.chargeRound(ep2, cnt2, 4, barrier.N)
	return out
}

// SSSP computes single-source shortest paths with the data-driven,
// asynchronously scheduled delta-stepping algorithm Galois uses, and
// returns the distances (+Inf if unreachable).
func (e *Engine) SSSP(src graph.Vertex) []float64 {
	g := e.g
	n := g.NumVertices()
	delta := e.opt.Delta
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	e.trackData(int64(n) * 8)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0

	buckets := [][]graph.Vertex{{src}}
	bucketOf := func(d float64) int { return int(d / delta) }
	push := func(bkts [][]graph.Vertex, v graph.Vertex, d float64) [][]graph.Vertex {
		b := bucketOf(d)
		for len(bkts) <= b {
			bkts = append(bkts, nil)
		}
		bkts[b] = append(bkts[b], v)
		return bkts
	}

	for bi := 0; bi < len(buckets); bi++ {
		// Settle the bucket: repeated light-edge relaxation.
		frontier := buckets[bi]
		for len(frontier) > 0 {
			nextLists, farLists := e.roundLists()
			ck := par.MakeStrided(int64(len(frontier)), 16, e.m.Threads())
			ep, cnt := e.beginRound()
			e.runPhase(func(th int) {
				var edges, tasks int64
				ck.Do(th, func(lo, hi int64) {
					for i := lo; i < hi; i++ {
						v := frontier[i]
						dv := atomicx.LoadFloat64(&dist[v])
						if bucketOf(dv) != bi {
							continue // stale entry
						}
						tasks++
						nbrs := g.OutNeighbors(v)
						wts := g.OutWeights(v)
						for j, u := range nbrs {
							edges++
							w := 1.0
							if wts != nil && wts[j] != 0 {
								w = float64(wts[j])
							}
							nd := dv + w
							if atomicx.MinFloat64(&dist[u], nd) {
								if bucketOf(nd) == bi {
									nextLists[th] = append(nextLists[th], u)
								} else {
									farLists[th] = append(farLists[th], u)
								}
							}
						}
					}
				})
				cnt.add(th, edges, tasks)
			})
			if e.err != nil {
				return dist
			}
			e.chargeRound(ep, cnt, 8, barrier.N)
			frontier = frontier[:0]
			for _, l := range nextLists {
				frontier = append(frontier, l...)
			}
			for th, l := range farLists {
				for _, u := range l {
					buckets = push(buckets, u, atomicx.LoadFloat64(&dist[u]))
				}
				farLists[th] = farLists[th][:0]
			}
		}
	}
	return dist
}
