package galois

import (
	"math"

	"polymer/internal/barrier"
	"polymer/internal/graph"
	"polymer/internal/par"
)

// PageRankDelta is the convergence-driven PageRank on Galois: ranks are
// pulled as in PageRank, but each round accumulates only the deltas of
// still-active in-neighbours, and a vertex leaves the active set once
// its rank change falls below eps. Each iteration runs as one charged
// round (accumulate + apply between the same barrier pair). It returns
// the ranks and the number of iterations.
func (e *Engine) PageRankDelta(eps float64, maxIter int) ([]float64, int) {
	g := e.g
	n := g.NumVertices()
	if n == 0 {
		return nil, 0
	}
	rank := make([]float64, n)
	delta := make([]float64, n)
	acc := make([]float64, n)
	active := make([]bool, n)
	e.trackData(int64(n) * 25)
	invOut := make([]float64, n)
	for v := 0; v < n; v++ {
		rank[v] = 1 / float64(n)
		delta[v] = 1 / float64(n)
		active[v] = true
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			invOut[v] = 1 / float64(d)
		}
	}
	const d = 0.85
	base := (1 - d) / float64(n)

	ck := par.MakeStrided(int64(n), 64, e.m.Threads())
	actCounts := make([]int64, e.m.Threads())
	remaining := int64(n)
	iter := 0
	for ; iter < maxIter && remaining > 0; iter++ {
		first := iter == 0
		ep, cnt := e.beginRound()
		// Accumulate: pull active in-neighbours' scaled deltas. The pool
		// join between the two phases orders the delta reads before the
		// apply phase's writes.
		e.runPhase(func(th int) {
			var edges, tasks int64
			ck.Do(th, func(lo, hi int64) {
				for v := lo; v < hi; v++ {
					tasks++
					var sum float64
					for _, u := range g.InNeighbors(graph.Vertex(v)) {
						if active[u] {
							edges++
							sum += delta[u] * invOut[u]
						}
					}
					acc[v] = sum
				}
			})
			cnt.add(th, edges, tasks)
		})
		if e.err != nil {
			break
		}
		// Apply: fold the accumulator into the rank, refresh the delta,
		// and rebuild the active set. Single writer per vertex.
		e.runPhase(func(th int) {
			var tasks, act int64
			ck.Do(th, func(lo, hi int64) {
				for v := lo; v < hi; v++ {
					tasks++
					var nd float64
					if first {
						nd = base + d*acc[v] - delta[v]
					} else {
						nd = d * acc[v]
					}
					rank[v] += nd
					delta[v] = nd
					a := math.Abs(nd) > eps
					active[v] = a
					if a {
						act++
					}
				}
			})
			cnt.add(th, 0, tasks)
			actCounts[th] = act
		})
		if e.err != nil {
			break
		}
		e.chargeRound(ep, cnt, 8, barrier.H)
		remaining = 0
		for _, a := range actCounts {
			remaining += a
		}
	}
	out := make([]float64, n)
	copy(out, rank)
	return out, iter
}
