package galois

import (
	"container/heap"
	"math"
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
)

func testMachine(nodes, cores int) *numa.Machine {
	return numa.NewMachine(numa.IntelXeon80(), nodes, cores)
}

func TestBFSOnGrid(t *testing.T) {
	n, edges := gen.RoadGrid(15, 15, 1)
	g := graph.FromEdges(n, edges, true)
	e := MustNew(g, testMachine(2, 2), DefaultOptions())
	defer e.Close()
	dist := e.BFS(0)
	want := refBFS(g, 0)
	for v := range dist {
		if dist[v] != want[v] {
			t.Fatalf("BFS dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}}, false)
	e := MustNew(g, testMachine(1, 1), DefaultOptions())
	defer e.Close()
	dist := e.BFS(0)
	if dist[0] != 0 || dist[1] != 1 || dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestCCGridOneComponent(t *testing.T) {
	n, edges := gen.RoadGrid(10, 10, 2)
	g := graph.FromEdges(n, edges, true)
	e := MustNew(g, testMachine(2, 2), DefaultOptions())
	defer e.Close()
	labels := e.CC()
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("connected grid: label[%d] = %d, want 0", v, l)
		}
	}
}

func TestCCMultipleComponents(t *testing.T) {
	// Two directed chains and one isolated vertex.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}}
	g := graph.FromEdges(6, edges, false)
	e := MustNew(g, testMachine(2, 2), DefaultOptions())
	defer e.Close()
	labels := e.CC()
	want := []graph.Vertex{0, 0, 0, 3, 3, 5}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	n, edges := gen.RoadGrid(12, 12, 3)
	g := graph.FromEdges(n, edges, true)
	e := MustNew(g, testMachine(2, 2), DefaultOptions())
	defer e.Close()
	dist := e.SSSP(0)
	want := refDijkstra(g, 0)
	for v := range dist {
		if math.Abs(dist[v]-want[v]) > 1e-6 {
			t.Fatalf("SSSP dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestSSSPUnweightedDefaultsToHops(t *testing.T) {
	n, edges := gen.Chain(10)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(1, 1), DefaultOptions())
	defer e.Close()
	dist := e.SSSP(0)
	for v := 0; v < n; v++ {
		if dist[v] != float64(v) {
			t.Fatalf("chain dist[%d] = %v", v, dist[v])
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	n, edges := gen.RMAT(8, 8, 5)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(2, 2), DefaultOptions())
	defer e.Close()
	ranks := e.PageRank(5, 0.85)
	var sum, dangling float64
	for v := 0; v < n; v++ {
		sum += ranks[v]
		if g.OutDegree(graph.Vertex(v)) == 0 {
			dangling += ranks[v]
		}
	}
	// Without dangling-mass redistribution the sum is <= 1 and positive.
	if sum <= 0 || sum > 1.0001 {
		t.Fatalf("rank sum = %v", sum)
	}
	for v, r := range ranks {
		if r < (1-0.85)/float64(n)-1e-12 {
			t.Fatalf("rank[%d] = %v below random-surfer floor", v, r)
		}
	}
}

func TestSpMV(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1, Wt: 2}, {Src: 1, Dst: 2, Wt: 3}, {Src: 0, Dst: 2, Wt: 5}}
	g := graph.FromEdges(3, edges, true)
	e := MustNew(g, testMachine(1, 1), DefaultOptions())
	defer e.Close()
	x0 := []float64{1, 10, 100}
	y := e.SpMV(1, x0)
	// y[0]=0; y[1]=2*x[0]=2; y[2]=3*x[1]+5*x[0]=35.
	if y[0] != 0 || y[1] != 2 || y[2] != 35 {
		t.Fatalf("SpMV = %v", y)
	}
}

func TestBPBounded(t *testing.T) {
	n, edges := gen.RoadGrid(8, 8, 4)
	g := graph.FromEdges(n, edges, true)
	e := MustNew(g, testMachine(2, 1), DefaultOptions())
	defer e.Close()
	beliefs := e.BP(5)
	for v, b := range beliefs {
		if b < 0 || b > 1 {
			t.Fatalf("belief[%d] = %v out of [0,1]", v, b)
		}
	}
}

func TestSimAccountingAndClose(t *testing.T) {
	n, edges := gen.RMAT(8, 8, 6)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(4, 2)
	e := MustNew(g, m, DefaultOptions())
	e.PageRank(2, 0.85)
	if e.SimSeconds() <= 0 {
		t.Fatal("sim time must advance")
	}
	if e.EdgesProcessed() != 2*g.NumEdges() {
		t.Fatalf("edges processed = %d, want %d", e.EdgesProcessed(), 2*g.NumEdges())
	}
	st := e.RunStats()
	if st.RemoteRate < 0.5 {
		t.Fatalf("galois is NUMA-oblivious; remote rate = %v", st.RemoteRate)
	}
	e.Close()
	if m.Alloc().Current() != 0 {
		t.Fatalf("Close must release, %d left", m.Alloc().Current())
	}
}

// refBFS is a sequential BFS.
func refBFS(g *graph.Graph, src graph.Vertex) []int64 {
	dist := make([]int64, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	q := []graph.Vertex{src}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range g.OutNeighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				q = append(q, u)
			}
		}
	}
	return dist
}

// refDijkstra is a sequential Dijkstra.
type pqItem struct {
	v graph.Vertex
	d float64
}
type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

func refDijkstra(g *graph.Graph, src graph.Vertex) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &pq{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		nbrs := g.OutNeighbors(it.v)
		wts := g.OutWeights(it.v)
		for j, u := range nbrs {
			w := 1.0
			if wts != nil {
				w = float64(wts[j])
			}
			if nd := it.d + w; nd < dist[u] {
				dist[u] = nd
				heap.Push(h, pqItem{u, nd})
			}
		}
	}
	return dist
}
