package obs

import (
	"sync"
	"testing"

	"polymer/internal/numa"
)

// collect is a trivial sink for assertions.
type collect struct {
	mu  sync.Mutex
	evs []Event
}

func (c *collect) Emit(ev Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func (c *collect) all() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.evs...)
}

// stubSource is a minimal SimSource whose tracer can be toggled.
type stubSource struct {
	tr  *Tracer
	sim float64
}

func (s *stubSource) Tracer() *Tracer     { return s.tr }
func (s *stubSource) TraceCat() string    { return "stub" }
func (s *stubSource) SimSeconds() float64 { return s.sim }
func (s *stubSource) TrafficSnapshot(dst *numa.TrafficMatrix) {
	dst.Resize(2, 2)
	dst.Cells[0] = s.sim * 100
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// None of these may panic.
	tr.Emit(Event{Name: "x"})
	tr.Phase("polymer", "edgemap", true, true, 10, 0, 1)
	tr.Superstep("polymer", 0, 0, 1, nil)
	tr.Instant("fault", "rollback", 1, 0.5, "err")
	tr.HostInstant("serve", "shed", PidServe, 1, -1, "")
	tr.Span("serve", "request", PidServe, 0, 1, -1, 7, "")
	if New(nil) != nil {
		t.Fatal("New(nil) must return the disabled tracer")
	}
}

// TestDisabledPathAllocsNothing is the hard overhead contract: with
// tracing off, every instrumentation site is allocation-free.
func TestDisabledPathAllocsNothing(t *testing.T) {
	var tr *Tracer
	var src any = &stubSource{} // nil tracer
	if allocs := testing.AllocsPerRun(200, func() {
		tr.Phase("polymer", "edgemap", true, true, 10, 0, 1)
		tr.Superstep("polymer", 0, 0, 1, nil)
		tr.Instant("fault", "rollback", 1, 0.5, "")
		tr.Span("serve", "request", PidServe, 0, 1, -1, 7, "")
		tr.HostInstant("serve", "retry", PidServe, 1, 0, "")
		sp := BeginStep(src, 3)
		sp.End()
	}); allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f objects per op, want 0", allocs)
	}
}

func TestBeginStepEmitsDelta(t *testing.T) {
	sink := &collect{}
	src := &stubSource{tr: New(sink), sim: 2}
	sp := BeginStep(src, 4)
	src.sim = 5 // the step "runs": clock and traffic advance
	sp.End()

	evs := sink.all()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Name != "superstep" || ev.Cat != "stub" || ev.Step != 4 || ev.Pid != PidSim {
		t.Fatalf("bad event: %+v", ev)
	}
	if ev.Ts != 2e6 || ev.Dur != 3e6 {
		t.Errorf("ts/dur = %g/%g, want 2e6/3e6", ev.Ts, ev.Dur)
	}
	if ev.Traffic == nil || ev.Traffic.Cells[0] != 300 {
		t.Errorf("traffic delta = %+v, want cell0 = 300", ev.Traffic)
	}

	// A source without the capability yields a no-op span.
	sp2 := BeginStep(struct{}{}, 0)
	sp2.End()
	if len(sink.all()) != 1 {
		t.Error("no-op span emitted an event")
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &collect{}, &collect{}
	tr := New(Multi{a, b})
	tr.Instant("fault", "checkpoint", 0, 0, "")
	if len(a.all()) != 1 || len(b.all()) != 1 {
		t.Fatalf("multi did not fan out: %d/%d", len(a.all()), len(b.all()))
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Step: i})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i, ev := range snap {
		if want := i + 2; ev.Step != want { // oldest retained first: 2,3,4
			t.Errorf("snap[%d].Step = %d, want %d", i, ev.Step, want)
		}
	}

	// Partial fill returns only what was written.
	r2 := NewRing(8)
	r2.Emit(Event{Step: 9})
	if snap := r2.Snapshot(); len(snap) != 1 || snap[0].Step != 9 {
		t.Errorf("partial snapshot = %+v", snap)
	}

	// Zero-size ring records nothing but stays safe.
	r3 := NewRing(0)
	r3.Emit(Event{})
	if len(r3.Snapshot()) != 0 || r3.Total() != 1 {
		t.Error("zero-size ring misbehaved")
	}
}

func TestRecorderRouting(t *testing.T) {
	rec := NewRecorder(4, 4)
	rec.Emit(Event{Cat: "serve", Name: "request"})
	rec.Emit(Event{Cat: "polymer", Name: "superstep"})
	rec.Emit(Event{Cat: "fault", Name: "rollback"})
	if got := len(rec.Requests.Snapshot()); got != 1 {
		t.Errorf("requests ring holds %d, want 1", got)
	}
	if got := len(rec.Steps.Snapshot()); got != 2 {
		t.Errorf("steps ring holds %d, want 2", got)
	}
}

// TestConcurrentEmission hammers one tracer from many goroutines; run
// under -race this is the thread-safety check for the tracer and sinks.
func TestConcurrentEmission(t *testing.T) {
	chrome := NewChrome()
	bd := NewBreakdown()
	ring := NewRing(64)
	tr := New(Multi{chrome, bd, ring})

	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				switch i % 3 {
				case 0:
					tr.Phase("polymer", "edgemap", true, false, int64(i), float64(i), 1)
				case 1:
					tm := &numa.TrafficMatrix{}
					tm.Resize(2, 2)
					tr.Superstep("polymer", i, float64(i), 1, tm)
				default:
					tr.Span("serve", "request", PidServe, float64(i), 1, -1, int64(w), "ok")
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := chrome.Len(), workers*per; got != want {
		t.Fatalf("chrome sink saw %d events, want %d", got, want)
	}
	if got := len(bd.Rows()); got != workers*(per/3) {
		t.Fatalf("breakdown rows = %d, want %d", got, workers*(per/3))
	}
}
