package obs

import "polymer/internal/numa"

// SimSource is the capability an engine exposes for superstep tracing.
// Engines whose superstep loops live in the algorithms layer (polymer,
// ligra) implement it; BeginStep discovers it by type assertion, so
// neither sg.Engine nor fault.Engine grows a mandatory method.
type SimSource interface {
	// Tracer returns the engine's tracer (nil when disabled).
	Tracer() *Tracer
	// TraceCat is the engine's event category ("polymer", "ligra", ...).
	TraceCat() string
	// SimSeconds is the engine's simulated clock.
	SimSeconds() float64
	// TrafficSnapshot copies the cumulative run traffic into dst.
	TrafficSnapshot(dst *numa.TrafficMatrix)
}

// StepSpan measures one superstep between BeginStep and End. The zero
// value (returned when tracing is off or the source lacks the capability)
// makes End a no-op, so drivers call the pair unconditionally.
type StepSpan struct {
	src      SimSource
	step     int
	simStart float64
	start    numa.TrafficMatrix
}

// BeginStep opens a superstep span on src if it is a SimSource with an
// enabled tracer. It returns by value and allocates nothing when tracing
// is disabled.
func BeginStep(src any, step int) StepSpan {
	s, ok := src.(SimSource)
	if !ok || s.Tracer() == nil {
		return StepSpan{}
	}
	sp := StepSpan{src: s, step: step, simStart: s.SimSeconds()}
	s.TrafficSnapshot(&sp.start)
	return sp
}

// End emits the superstep event with the simulated duration and traffic
// delta since BeginStep. Call it only after the step committed: a rolled
// back and replayed step should End once, with the clean replay's charge.
func (sp *StepSpan) End() {
	if sp.src == nil {
		return
	}
	end := sp.src.SimSeconds()
	delta := &numa.TrafficMatrix{}
	sp.src.TrafficSnapshot(delta)
	delta.Sub(&sp.start)
	sp.src.Tracer().Superstep(sp.src.TraceCat(), sp.step, sp.simStart, end-sp.simStart, delta)
}
