package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Chrome is a sink that collects events and exports them in the Chrome
// trace_event JSON format, loadable in chrome://tracing and Perfetto.
type Chrome struct {
	mu     sync.Mutex
	events []Event
}

// NewChrome returns an empty Chrome-trace sink.
func NewChrome() *Chrome { return &Chrome{} }

// Emit implements Sink.
func (c *Chrome) Emit(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Len returns the number of collected events.
func (c *Chrome) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Export writes the collected events as trace_event JSON. The output is
// deterministic for a deterministic event sequence: metadata first (pids
// in ascending order), then events in emission order, map keys sorted by
// encoding/json.
func (c *Chrome) Export(w io.Writer) error {
	c.mu.Lock()
	events := append([]Event(nil), c.events...)
	c.mu.Unlock()
	return ExportChrome(w, events)
}

// chromeEvent is the wire form of one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

var pidNames = map[int]string{
	PidSim:   "sim (simulated clock)",
	PidHost:  "host (wall clock)",
	PidServe: "serve (wall clock)",
}

// ExportChrome writes events as trace_event JSON, prefixed with
// process_name metadata for every pid lane present.
func ExportChrome(w io.Writer, events []Event) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	pids := map[int]bool{}
	for _, ev := range events {
		pids[ev.Pid] = true
	}
	order := make([]int, 0, len(pids))
	for pid := range pids {
		order = append(order, pid)
	}
	sort.Ints(order)
	for _, pid := range order {
		name := pidNames[pid]
		if name == "" {
			name = fmt.Sprintf("pid %d", pid)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: ev.Ph,
			Ts: ev.Ts, Dur: ev.Dur, Pid: ev.Pid, Tid: ev.Tid,
			Args: chromeArgs(ev),
		}
		if ev.Ph == PhInstant {
			ce.S = "t" // thread-scoped instant
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// chromeArgs flattens an event's payload into the trace_event args map.
// Traffic matrices become per-hop SEQ/RAND megabyte aggregates plus a
// per-node total, mirroring the breakdown table columns.
func chromeArgs(ev Event) map[string]any {
	args := map[string]any{}
	if ev.Step >= 0 {
		args["step"] = ev.Step
	}
	if ev.Active != 0 {
		args["active"] = ev.Active
	}
	if ev.Ph == PhSpan && ev.Pid == PidSim && ev.Name != "superstep" && ev.Cat != "fault" {
		repr := "sparse"
		if ev.Dense {
			repr = "dense"
		}
		args["repr"] = repr
		if ev.Push {
			args["dir"] = "push"
		} else {
			args["dir"] = "pull"
		}
	}
	if ev.Detail != "" {
		args["detail"] = ev.Detail
	}
	if tm := ev.Traffic; tm != nil {
		for l := 0; l < tm.Levels; l++ {
			args[fmt.Sprintf("seq_h%d_mb", l)] = round3(tm.LevelBytes(l, 0) / 1e6)
			args[fmt.Sprintf("rand_h%d_mb", l)] = round3(tm.LevelBytes(l, 1) / 1e6)
		}
		for n := 0; n < tm.Nodes; n++ {
			args[fmt.Sprintf("node%d_mb", n)] = round3(tm.NodeBytes(n) / 1e6)
		}
		args["remote_frac"] = round3(tm.RemoteFraction())
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// round3 keeps exported megabyte figures readable (three decimals) and
// their JSON encoding stable.
func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
