package obs

import "sync"

// Ring is a fixed-size event ring buffer: the flight recorder's storage.
// Writes never block and never grow memory; old events are overwritten.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int64
}

// NewRing returns a ring holding the last size events. A non-positive
// size yields a ring that records nothing (Emit is still safe).
func NewRing(size int) *Ring {
	if size < 0 {
		size = 0
	}
	return &Ring{buf: make([]Event, size)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	r.mu.Lock()
	if len(r.buf) > 0 {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % len(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Total returns how many events were ever emitted (including overwritten
// ones).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if r.total < int64(n) {
		n = int(r.total)
		return append([]Event(nil), r.buf[:n]...)
	}
	out := make([]Event, 0, n)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Recorder is polymerd's flight recorder: two rings, one for request
// spans (serve lane) and one for everything the engines and the fault
// layer emit (supersteps, phases, rollbacks). It implements Sink and is
// what /debugz/trace serves.
type Recorder struct {
	Requests *Ring
	Steps    *Ring
}

// NewRecorder sizes the two rings (last N request spans, last M
// engine/fault events).
func NewRecorder(requests, steps int) *Recorder {
	return &Recorder{Requests: NewRing(requests), Steps: NewRing(steps)}
}

// Emit implements Sink, routing by category.
func (r *Recorder) Emit(ev Event) {
	if ev.Cat == "serve" {
		r.Requests.Emit(ev)
		return
	}
	r.Steps.Emit(ev)
}
