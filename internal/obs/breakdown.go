package obs

import (
	"fmt"
	"strings"
	"sync"

	"polymer/internal/numa"
)

// Breakdown is a sink that accumulates superstep events into the paper's
// access-pattern breakdown: per superstep, how many megabytes moved in
// each SEQ/RAND × hop-level class, and per node, who paid for them.
type Breakdown struct {
	mu   sync.Mutex
	rows []BreakdownRow
}

// BreakdownRow is one superstep's attribution.
type BreakdownRow struct {
	Cat     string
	Step    int
	SimSecs float64 // superstep duration, simulated seconds
	Traffic *numa.TrafficMatrix
}

// NewBreakdown returns an empty breakdown sink.
func NewBreakdown() *Breakdown { return &Breakdown{} }

// Emit implements Sink, keeping only superstep events that carry traffic.
func (b *Breakdown) Emit(ev Event) {
	if ev.Name != "superstep" || ev.Traffic == nil {
		return
	}
	b.mu.Lock()
	b.rows = append(b.rows, BreakdownRow{
		Cat: ev.Cat, Step: ev.Step, SimSecs: ev.Dur / 1e6, Traffic: ev.Traffic,
	})
	b.mu.Unlock()
}

// Rows returns the collected supersteps in emission order.
func (b *Breakdown) Rows() []BreakdownRow {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]BreakdownRow(nil), b.rows...)
}

// Format renders two tables: per-superstep traffic by access class
// (aggregated over nodes), and whole-run traffic per node × hop level —
// the "which node paid for remote random accesses" view the paper's
// placement arguments rest on.
func (b *Breakdown) Format() string {
	rows := b.Rows()
	var sb strings.Builder
	if len(rows) == 0 {
		sb.WriteString("no supersteps traced\n")
		return sb.String()
	}
	levels := rows[0].Traffic.Levels
	nodes := rows[0].Traffic.Nodes

	sb.WriteString("per-superstep traffic by access class (MB; hN = N hops from the accessing node)\n")
	fmt.Fprintf(&sb, "%-4s %-8s %12s", "#", "engine", "sim (usec)")
	for l := 0; l < levels; l++ {
		fmt.Fprintf(&sb, " %9s %9s", fmt.Sprintf("seq@h%d", l), fmt.Sprintf("rand@h%d", l))
	}
	fmt.Fprintf(&sb, " %8s\n", "remote%")
	total := &numa.TrafficMatrix{}
	total.Resize(nodes, levels)
	for _, r := range rows {
		if r.Traffic.Levels != levels || r.Traffic.Nodes != nodes {
			continue // mixed machines in one sink; skip rather than misalign
		}
		fmt.Fprintf(&sb, "%-4d %-8s %12.2f", r.Step, r.Cat, r.SimSecs*1e6)
		for l := 0; l < levels; l++ {
			fmt.Fprintf(&sb, " %9.2f %9.2f",
				r.Traffic.LevelBytes(l, numa.Seq)/1e6, r.Traffic.LevelBytes(l, numa.Rand)/1e6)
		}
		fmt.Fprintf(&sb, " %7.1f%%\n", r.Traffic.RemoteFraction()*100)
		total.Add(r.Traffic)
	}

	sb.WriteString("\nwhole-run traffic per node (MB)\n")
	fmt.Fprintf(&sb, "%-6s", "node")
	for l := 0; l < levels; l++ {
		fmt.Fprintf(&sb, " %9s %9s", fmt.Sprintf("seq@h%d", l), fmt.Sprintf("rand@h%d", l))
	}
	fmt.Fprintf(&sb, " %9s\n", "total")
	for n := 0; n < nodes; n++ {
		fmt.Fprintf(&sb, "n%-5d", n)
		for l := 0; l < levels; l++ {
			fmt.Fprintf(&sb, " %9.2f %9.2f", total.At(n, l, numa.Seq)/1e6, total.At(n, l, numa.Rand)/1e6)
		}
		fmt.Fprintf(&sb, " %9.2f\n", total.NodeBytes(n)/1e6)
	}
	return sb.String()
}
