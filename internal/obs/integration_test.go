// Integration tests at the obs boundary: tracing must never change
// simulated results, and every engine must actually emit supersteps.
// These live in package obs_test so they can drive the full bench stack.

package obs_test

import (
	"context"
	"math"
	"testing"

	"polymer/internal/bench"
	"polymer/internal/fault"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/obs"
)

func loadTiny(t *testing.T, alg bench.Algo) *graph.Graph {
	t.Helper()
	g, err := bench.LoadDataset("powerlaw", gen.Tiny, alg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newMachine() *numa.Machine {
	return numa.NewMachine(numa.IntelXeon80(), 4, 2)
}

// TestTracingIsBitIdentical runs every engine with tracing off and on and
// requires bit-identical simulated output — the core invariant that lets
// production runs leave tracing enabled.
func TestTracingIsBitIdentical(t *testing.T) {
	cases := []struct {
		sys bench.System
		alg bench.Algo
	}{
		{bench.Polymer, bench.PR},
		{bench.Polymer, bench.BFS},
		{bench.Polymer, bench.SSSP},
		{bench.Ligra, bench.PR},
		{bench.Ligra, bench.CC},
		{bench.XStream, bench.PR},
		{bench.XStream, bench.BFS},
		{bench.Galois, bench.PR},
		{bench.Galois, bench.BFS},
	}
	for _, tc := range cases {
		t.Run(string(tc.sys)+"/"+string(tc.alg), func(t *testing.T) {
			g := loadTiny(t, tc.alg)
			plain := bench.RunFrom(tc.sys, tc.alg, g, newMachine(), 0)
			plain2 := bench.RunFrom(tc.sys, tc.alg, g, newMachine(), 0)
			// Some engines charge accounting in scheduling order, so two
			// untraced runs can already differ under -race's timing
			// perturbation. Bit-comparison across runs only means
			// something when the baseline reproduces itself.
			reproducible := math.Float64bits(plain.SimSeconds) == math.Float64bits(plain2.SimSeconds) &&
				plain.Stats == plain2.Stats

			chrome := obs.NewChrome()
			bd := obs.NewBreakdown()
			tr := obs.New(obs.Multi{chrome, bd})
			traced := bench.RunWithTracer(tc.sys, tc.alg, g, newMachine(), 0, tr)

			if !reproducible {
				t.Logf("engine is scheduling-nondeterministic in this build; skipping bitwise comparison")
			} else {
				if math.Float64bits(plain.SimSeconds) != math.Float64bits(traced.SimSeconds) {
					t.Errorf("SimSeconds diverged: %v (plain) vs %v (traced)", plain.SimSeconds, traced.SimSeconds)
				}
				if math.Float64bits(plain.Checksum) != math.Float64bits(traced.Checksum) {
					t.Errorf("Checksum diverged: %v (plain) vs %v (traced)", plain.Checksum, traced.Checksum)
				}
				if plain.Stats != traced.Stats {
					t.Errorf("Stats diverged: %+v vs %+v", plain.Stats, traced.Stats)
				}
			}
			if chrome.Len() == 0 {
				t.Error("traced run emitted no events")
			}
			rows := bd.Rows()
			if len(rows) == 0 {
				t.Fatal("traced run emitted no supersteps")
			}
			for i, r := range rows {
				if r.Traffic == nil || r.Traffic.Total() < 0 {
					t.Fatalf("superstep %d has bad traffic: %+v", i, r)
				}
				if r.Step != i {
					t.Errorf("superstep %d numbered %d", i, r.Step)
				}
				if r.SimSecs < 0 {
					t.Errorf("superstep %d has negative duration %g", i, r.SimSecs)
				}
			}
		})
	}
}

// TestTracedRecoveryIsBitIdentical layers tracing over the fault session:
// a traced run that rolls back and replays an injected fault must still
// commit the fault-free result, and the trace must show the recovery.
func TestTracedRecoveryIsBitIdentical(t *testing.T) {
	g := loadTiny(t, bench.PR)
	plain := bench.RunFrom(bench.Polymer, bench.PR, g, newMachine(), 0)

	evs, err := fault.ParseSpec("panic@2:t3")
	if err != nil {
		t.Fatal(err)
	}
	chrome := obs.NewChrome()
	events := &eventLog{}
	opt := bench.ResilientOptions{MaxRestarts: 1, SessionRetries: -1, Tracer: obs.New(obs.Multi{chrome, events})}
	r, rep, err := bench.RunResilientCtx(context.Background(), bench.Polymer, bench.PR, g,
		newMachine, fault.NewInjector(evs), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rollbacks == 0 {
		t.Fatal("fault was not injected")
	}
	if math.Float64bits(plain.SimSeconds) != math.Float64bits(r.SimSeconds) {
		t.Errorf("recovered SimSeconds %v != fault-free %v", r.SimSeconds, plain.SimSeconds)
	}
	if math.Float64bits(plain.Checksum) != math.Float64bits(r.Checksum) {
		t.Errorf("recovered Checksum %v != fault-free %v", r.Checksum, plain.Checksum)
	}
	if events.count("rollback") == 0 {
		t.Error("trace shows no rollback instant")
	}
	if events.count("replay") == 0 {
		t.Error("trace shows no replay instant")
	}
	if events.count("checkpoint") == 0 {
		t.Error("trace shows no checkpoint instants")
	}
	if events.count("superstep") != 5 {
		t.Errorf("trace has %d supersteps, want 5 (one per committed iteration)", events.count("superstep"))
	}
}

// eventLog counts events by name.
type eventLog struct {
	names []string
}

func (l *eventLog) Emit(ev obs.Event) { l.names = append(l.names, ev.Name) }

func (l *eventLog) count(name string) int {
	n := 0
	for _, x := range l.names {
		if x == name {
			n++
		}
	}
	return n
}
