package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"polymer/internal/numa"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a fixed synthetic event sequence covering every event
// shape the exporter handles: phases, supersteps with traffic, instants,
// host spans, multiple pid lanes.
func goldenEvents() []Event {
	tm := &numa.TrafficMatrix{}
	tm.Resize(2, 2)
	tm.Cells[0] = 1.5e6  // node 0, h0, seq
	tm.Cells[3] = 0.25e6 // node 0, h1, rand
	tm.Cells[4] = 2e6    // node 1, h0, seq
	return []Event{
		{Name: "edgemap", Cat: "polymer", Ph: PhSpan, Pid: PidSim, Ts: 0, Dur: 10, Step: -1, Active: 500, Dense: true, Push: true},
		{Name: "vertexmap", Cat: "polymer", Ph: PhSpan, Pid: PidSim, Ts: 10, Dur: 2, Step: -1, Active: 500},
		{Name: "superstep", Cat: "polymer", Ph: PhSpan, Pid: PidSim, Tid: 1, Ts: 0, Dur: 12, Step: 0, Traffic: tm},
		{Name: "checkpoint", Cat: "fault", Ph: PhInstant, Pid: PidSim, Ts: 12, Step: 1},
		{Name: "rollback", Cat: "fault", Ph: PhInstant, Pid: PidSim, Ts: 30, Step: 1, Detail: "injected panic"},
		{Name: "pool.run", Cat: "par", Ph: PhSpan, Pid: PidHost, Ts: 100, Dur: 50, Step: -1, Active: 8},
		{Name: "request", Cat: "serve", Ph: PhSpan, Pid: PidServe, Ts: 90, Dur: 70, Step: -1, Active: 1, Detail: "pr/powerlaw on Polymer status=200"},
	}
}

// TestChromeGolden pins the exporter's byte output: the trace format is a
// contract with external viewers, so any change must be deliberate.
func TestChromeGolden(t *testing.T) {
	c := NewChrome()
	for _, ev := range goldenEvents() {
		c.Emit(ev)
	}
	var buf bytes.Buffer
	if err := c.Export(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with go test -run Golden -update ./internal/obs): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export differs from golden file\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}

	// Export must be repeatable: same sink, same bytes.
	var again bytes.Buffer
	if err := c.Export(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two exports of the same sink differ")
	}
}

// TestChromeStructure validates the trace_event envelope: well-formed
// JSON, the displayTimeUnit field, metadata before data, and the required
// fields on every record — what chrome://tracing actually parses.
func TestChromeStructure(t *testing.T) {
	c := NewChrome()
	for _, ev := range goldenEvents() {
		c.Emit(ev)
	}
	var buf bytes.Buffer
	if err := c.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayUnit)
	}
	if len(doc.TraceEvents) != len(goldenEvents())+3 { // + one process_name per pid lane
		t.Fatalf("traceEvents = %d records, want %d", len(doc.TraceEvents), len(goldenEvents())+3)
	}
	meta := 0
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("record %d has no ph: %v", i, ev)
		}
		if ph == "M" {
			meta++
			if meta != i+1 {
				t.Errorf("metadata record %d appears after data records", i)
			}
			continue
		}
		if _, ok := ev["name"].(string); !ok {
			t.Errorf("record %d has no name", i)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Errorf("record %d has no pid", i)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("record %d has no ts", i)
		}
		if ph != PhSpan && ph != PhInstant {
			t.Errorf("record %d has unexpected ph %q", i, ph)
		}
	}
	if meta != 3 {
		t.Errorf("metadata records = %d, want 3", meta)
	}

	// The superstep record carries flattened traffic args.
	var super map[string]any
	for _, ev := range doc.TraceEvents {
		if n, _ := ev["name"].(string); n == "superstep" {
			super = ev
		}
	}
	if super == nil {
		t.Fatal("no superstep record exported")
	}
	args, _ := super["args"].(map[string]any)
	if args == nil {
		t.Fatal("superstep has no args")
	}
	for _, key := range []string{"seq_h0_mb", "rand_h1_mb", "node0_mb", "node1_mb", "remote_frac", "step"} {
		if _, ok := args[key]; !ok {
			t.Errorf("superstep args missing %q (have %v)", key, args)
		}
	}
	if got := args["seq_h0_mb"].(float64); got != 3.5 {
		t.Errorf("seq_h0_mb = %v, want 3.5", got)
	}
}
