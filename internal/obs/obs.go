// Package obs is the observability layer: a low-overhead event API
// threaded through the engines, the worker pool, the fault layer and the
// serving layer, with pluggable sinks (Chrome trace export, per-superstep
// breakdown tables, an in-memory flight recorder).
//
// The design rules, in priority order:
//
//  1. Disabled tracing is free. A nil *Tracer is the disabled tracer:
//     every method is nil-safe and allocation-free, so instrumentation
//     sites need no guards and the hot path pays one predictable branch.
//  2. Tracing never perturbs simulated output. Engine events are stamped
//     with the simulated clock and read ledgers the engines already
//     maintain; a traced run is bit-identical to an untraced one.
//  3. One event schema everywhere. polymer, polymerd and numabench emit
//     the same Event, so every sink works with every binary.
//
// Timestamps live in two distinct lanes, distinguished by Pid: simulated
// time (PidSim, deterministic, golden-testable) and host wall time
// (PidHost for the pool, PidServe for request spans).
package obs

import (
	"sync"
	"time"

	"polymer/internal/numa"
)

// Pid lanes separate the two clock domains (and serving) in trace
// viewers: events within one pid share a comparable time axis.
const (
	// PidSim is the simulated-machine lane; Ts/Dur are simulated
	// microseconds and deterministic across runs.
	PidSim = 0
	// PidHost is the host-execution lane (par.Pool dispatches); Ts/Dur are
	// wall microseconds since process start.
	PidHost = 1
	// PidServe is the serving lane (polymerd request spans); wall clock.
	PidServe = 2
	// PidPlan is the planner lane (profile builds, plan decisions and
	// learner observations); wall clock, like PidServe.
	PidPlan = 3
)

// Event phase types, mirroring the Chrome trace_event "ph" field.
const (
	// PhSpan is a complete event: Ts..Ts+Dur.
	PhSpan = "X"
	// PhInstant is a point event at Ts.
	PhInstant = "i"
)

// Event is one trace record. Fields are fixed and typed — no maps — so
// emitting an event allocates nothing beyond what the sink retains.
type Event struct {
	// Name is the event kind: "edgemap", "vertexmap", "superstep",
	// "checkpoint", "rollback", "replay", "request", "pool.run",
	// "evict", ...
	Name string `json:"name"`
	// Cat is the emitting subsystem: an engine name ("polymer", "ligra",
	// "xstream", "galois"), "fault", "serve", "par" or "numabench".
	Cat string `json:"cat"`
	// Ph is PhSpan or PhInstant.
	Ph string `json:"ph"`
	// Pid selects the clock lane (PidSim, PidHost, PidServe).
	Pid int `json:"pid"`
	// Tid is a free sub-lane within the pid (0 unless stated otherwise).
	Tid int `json:"tid"`
	// Ts is the event start in microseconds (simulated or wall, per Pid);
	// Dur the span length for PhSpan events.
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`

	// Step is the superstep index for engine events, the attempt number
	// for retry events, -1 when not applicable.
	Step int `json:"step"`
	// Active is the phase's input frontier size (engine events) or a
	// request id (serve spans); 0 when not applicable.
	Active int64 `json:"active,omitempty"`
	// Dense and Push describe an edgemap phase's representation and
	// direction.
	Dense bool `json:"dense,omitempty"`
	Push  bool `json:"push,omitempty"`
	// Detail is free-form context: fault error text, request status,
	// breaker state.
	Detail string `json:"detail,omitempty"`
	// Traffic is the per-node × per-hop × SEQ/RAND byte attribution of a
	// superstep event; nil for other events. Sinks must treat it as
	// immutable.
	Traffic *numa.TrafficMatrix `json:"traffic,omitempty"`
}

// Sink receives emitted events. Sinks are called under the tracer's lock:
// one event at a time, in emission order. Implementations must not call
// back into the tracer.
type Sink interface {
	Emit(Event)
}

// Multi fans one event out to several sinks in order.
type Multi []Sink

// Emit implements Sink.
func (m Multi) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Tracer routes events to a sink. The nil *Tracer is the disabled tracer:
// all methods are nil-safe no-ops, and instrumented code holds tracers as
// plain fields with no enabled flag. A non-nil Tracer serialises sink
// calls, so engines, the pool and the server can share one.
type Tracer struct {
	mu   sync.Mutex
	sink Sink
}

// New returns a tracer feeding sink, or nil (the disabled tracer) when
// sink is nil.
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// Enabled reports whether events reach a sink.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit sends one event to the sink.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink.Emit(ev)
	t.mu.Unlock()
}

// Phase records one engine phase (edgemap, vertexmap, scatter, ...) on the
// simulated clock: cat is the engine, simStart/simDur in seconds.
func (t *Tracer) Phase(cat, kind string, dense, push bool, active int64, simStart, simDur float64) {
	if t == nil {
		return
	}
	t.Emit(Event{
		Name: kind, Cat: cat, Ph: PhSpan, Pid: PidSim,
		Ts: simStart * 1e6, Dur: simDur * 1e6,
		Step: -1, Active: active, Dense: dense, Push: push,
	})
}

// Superstep records one committed superstep with its traffic attribution.
// The tracer takes ownership of tm; callers must pass a fresh matrix.
func (t *Tracer) Superstep(cat string, step int, simStart, simDur float64, tm *numa.TrafficMatrix) {
	if t == nil {
		return
	}
	t.Emit(Event{
		Name: "superstep", Cat: cat, Ph: PhSpan, Pid: PidSim, Tid: 1,
		Ts: simStart * 1e6, Dur: simDur * 1e6,
		Step: step, Traffic: tm,
	})
}

// Instant records a point event on the simulated clock (fault checkpoints,
// rollbacks, replays, cache evictions).
func (t *Tracer) Instant(cat, name string, step int, simTs float64, detail string) {
	if t == nil {
		return
	}
	t.Emit(Event{
		Name: name, Cat: cat, Ph: PhInstant, Pid: PidSim,
		Ts: simTs * 1e6, Step: step, Detail: detail,
	})
}

// HostInstant records a point event on a host-clock lane (load shedding,
// retries, cache evictions); ts is wall microseconds (see NowMicros).
func (t *Tracer) HostInstant(cat, name string, pid int, ts float64, step int, detail string) {
	if t == nil {
		return
	}
	t.Emit(Event{
		Name: name, Cat: cat, Ph: PhInstant, Pid: pid,
		Ts: ts, Step: step, Detail: detail,
	})
}

// Span records a host-clock span (pool dispatches, request lifecycles) in
// the given pid lane; ts and dur are wall microseconds (see NowMicros).
func (t *Tracer) Span(cat, name string, pid int, ts, dur float64, step int, active int64, detail string) {
	if t == nil {
		return
	}
	t.Emit(Event{
		Name: name, Cat: cat, Ph: PhSpan, Pid: pid,
		Ts: ts, Dur: dur, Step: step, Active: active, Detail: detail,
	})
}

// processStart anchors the host-clock lanes so wall timestamps are small
// and comparable within one process.
var processStart = time.Now()

// NowMicros returns wall microseconds since process start, the time base
// of the PidHost and PidServe lanes.
func NowMicros() float64 {
	return float64(time.Since(processStart)) / float64(time.Microsecond)
}
