package plan

import (
	"sync"
	"testing"

	"polymer/internal/numa"
)

// A sole tenant must receive the exact deterministic pick-order prefix,
// and its machine must be bit-identical to the unscheduled one.
func TestSchedulerSoleTenantDefault(t *testing.T) {
	topo := numa.IntelXeon80()
	s := NewScheduler(topo)
	for _, want := range []int{1, 2, 4, 8} {
		l := s.Acquire(want)
		if !l.Default() {
			t.Fatalf("sole tenant lease for %d sockets not default", want)
		}
		if l.Tenants() != 1 {
			t.Fatalf("sole tenant tenancy = %d", l.Tenants())
		}
		order := topo.PickOrder(want)
		got := l.Sockets()
		if len(got) != len(order) {
			t.Fatalf("lease size %d, want %d", len(got), len(order))
		}
		for i := range order {
			if got[i] != order[i] {
				t.Fatalf("lease sockets %v, want prefix %v", got, order)
			}
		}
		ml, err := l.Machine(4)
		if err != nil {
			t.Fatal(err)
		}
		md, err := numa.NewMachineChecked(topo, want, 4)
		if err != nil {
			t.Fatal(err)
		}
		if ml.Nodes != md.Nodes || ml.Threads() != md.Threads() {
			t.Fatalf("lease machine shape differs from default")
		}
		for th := 0; th < ml.Threads(); th++ {
			if ml.NodeOfThread(th) != md.NodeOfThread(th) {
				t.Fatalf("thread %d maps differently", th)
			}
		}
		l.Release()
	}
}

// While sockets remain, concurrent tenants must be disjoint; the lease
// that shares must say so via Tenants().
func TestSchedulerDisjointThenShared(t *testing.T) {
	topo := numa.IntelXeon80() // 8 sockets
	s := NewScheduler(topo)
	a := s.Acquire(4)
	b := s.Acquire(4)
	seen := map[int]bool{}
	for _, ph := range a.Sockets() {
		seen[ph] = true
	}
	for _, ph := range b.Sockets() {
		if seen[ph] {
			t.Fatalf("tenant b shares socket %d while capacity remained", ph)
		}
	}
	if a.Tenants() != 1 || b.Tenants() != 1 {
		t.Fatalf("disjoint tenants report sharing: %d, %d", a.Tenants(), b.Tenants())
	}
	if b.Default() {
		t.Fatal("second tenant on non-prefix sockets claims default")
	}
	// Third tenant must co-locate and report it.
	c := s.Acquire(4)
	if c.Tenants() < 2 {
		t.Fatalf("overcommitted tenant reports tenancy %d", c.Tenants())
	}
	if c.Default() {
		t.Fatal("co-located lease claims default")
	}
	a.Release()
	b.Release()
	c.Release()
	// After release the scheduler is idle again.
	d := s.Acquire(8)
	if !d.Default() || d.Tenants() != 1 {
		t.Fatalf("post-release lease not default: def=%v tenants=%d", d.Default(), d.Tenants())
	}
	d.Release()
	d.Release() // idempotent
}

// Leases must stay balanced under concurrent acquire/release churn.
func TestSchedulerConcurrentChurn(t *testing.T) {
	topo := numa.AMDOpteron64()
	s := NewScheduler(topo)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(want int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l := s.Acquire(want)
				if len(l.Sockets()) != want {
					t.Errorf("lease size %d, want %d", len(l.Sockets()), want)
				}
				l.Release()
			}
		}(1 + i%topo.Sockets)
	}
	wg.Wait()
	for ph, ten := range s.tenancy {
		if ten != 0 {
			t.Fatalf("socket %d still has tenancy %d after all releases", ph, ten)
		}
	}
}
