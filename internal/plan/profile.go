// The profiler: one deterministic feature vector per loaded graph,
// computed host-side from the immutable CSR. Profiling reads the graph
// and nothing else — it never mutates it, never builds a simulated
// machine and never charges a sim ledger (the property tests assert
// exactly that), so a profiled run is bit-identical to an unprofiled one.

package plan

import (
	"fmt"

	"polymer/internal/graph"
)

// Features is the deterministic profile of one graph. Every field is a
// pure function of the CSR, so repeated profiles — across goroutines,
// checkpoints and rollbacks — are identical, and the struct is
// comparable, which lets the planner key its decision cache on the exact
// feature vector without allocating.
type Features struct {
	// Vertices and Edges are the graph dimensions.
	Vertices int64
	Edges    int64
	// Density is edges per vertex (0 for an empty graph).
	Density float64
	// Weighted reports whether the CSR carries edge weights.
	Weighted bool
	// MaxOutDegree, DegP50, DegP90 and DegP99 summarise the out-degree
	// distribution via the streaming log2-bucket sketch.
	MaxOutDegree int64
	DegP50       float64
	DegP90       float64
	DegP99       float64
	// Skew is MaxOutDegree over the mean degree (1 for regular graphs,
	// large for power-law hubs; 0 for an edgeless graph).
	Skew float64
	// Directedness estimates the fraction of edges without a reciprocal
	// edge, from a seeded deterministic edge sample: 0 for symmetric
	// graphs, approaching 1 for DAG-like ones.
	Directedness float64
	// DiameterEst is a seeded-sample eccentricity estimate in BFS levels
	// (the dominant superstep count for traversals). For a disconnected
	// graph it measures the sampled sources' components.
	DiameterEst int
}

// String renders the profile for -plan output.
func (f Features) String() string {
	return fmt.Sprintf("n=%d m=%d density=%.2f skew=%.1f p50=%.0f p90=%.0f p99=%.0f dir=%.2f diam~%d",
		f.Vertices, f.Edges, f.Density, f.Skew, f.DegP50, f.DegP90, f.DegP99, f.Directedness, f.DiameterEst)
}

// profileSeeds is how many BFS sources the diameter estimate samples and
// profileEdgeSamples how many edges the directedness estimate checks.
// Both are fixed so the profile cost is O(seeds*(n+m)) and deterministic.
const (
	profileSeeds       = 4
	profileEdgeSamples = 256
	// hubScanCap bounds the reciprocal-edge scan: a destination with more
	// out-neighbors than this counts as non-reciprocal without scanning
	// (deterministic, and hubs on skewed graphs are overwhelmingly
	// one-directional in our corpora).
	hubScanCap = 4096
)

// splitmix64 is the repo's standard deterministic seeding finalizer.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Profile extracts the feature vector of g. It is read-only and
// deterministic: same graph, same features, on every call and under any
// scheduling.
func Profile(g *graph.Graph) Features {
	n := int64(g.NumVertices())
	m := g.NumEdges()
	f := Features{Vertices: n, Edges: m, Weighted: g.Weighted()}
	if n == 0 {
		return f
	}
	f.Density = float64(m) / float64(n)

	var sk Sketch
	for v := graph.Vertex(0); int64(v) < n; v++ {
		sk.Add(g.OutDegree(v))
	}
	f.MaxOutDegree = sk.Max()
	f.DegP50 = sk.Quantile(0.50)
	f.DegP90 = sk.Quantile(0.90)
	f.DegP99 = sk.Quantile(0.99)
	if mean := sk.Mean(); mean > 0 {
		f.Skew = float64(f.MaxOutDegree) / mean
	}
	f.Directedness = directedness(g)
	f.DiameterEst = diameterEstimate(g)
	return f
}

// directedness samples edge positions deterministically and checks each
// for a reciprocal edge. The source of edge position e is found by
// binary search over the (sorted) out-index.
func directedness(g *graph.Graph) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	samples := int64(profileEdgeSamples)
	if samples > m {
		samples = m
	}
	oneWay := 0
	for i := int64(0); i < samples; i++ {
		pos := int64(splitmix64(uint64(i)) % uint64(m))
		src := edgeSource(g, pos)
		dst := g.OutNbrs[pos]
		if !hasEdge(g, dst, src) {
			oneWay++
		}
	}
	return float64(oneWay) / float64(samples)
}

// edgeSource finds the vertex owning out-edge position pos via binary
// search over the CSR row index.
func edgeSource(g *graph.Graph, pos int64) graph.Vertex {
	lo, hi := 0, g.NumVertices() // invariant: OutIndex[lo] <= pos < OutIndex[hi]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if g.OutIndex[mid] <= pos {
			lo = mid
		} else {
			hi = mid
		}
	}
	return graph.Vertex(lo)
}

// hasEdge scans from's out-neighbors for to, capped at hubScanCap.
func hasEdge(g *graph.Graph, from, to graph.Vertex) bool {
	nbrs := g.OutNeighbors(from)
	if len(nbrs) > hubScanCap {
		return false
	}
	for _, u := range nbrs {
		if u == to {
			return true
		}
	}
	return false
}

// diameterEstimate runs host-side BFS from profileSeeds seeded sources
// and returns the largest finite eccentricity seen, in levels. It is the
// planner's superstep-count proxy for traversals: exact diameter is
// overkill (and expensive); the max over a few sources distinguishes
// "road network, thousands of supersteps" from "power-law, a handful".
func diameterEstimate(g *graph.Graph) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	level := make([]int32, n)
	queue := make([]graph.Vertex, 0, 1024)
	best := 0
	for s := 0; s < profileSeeds; s++ {
		src := graph.Vertex(splitmix64(uint64(s)+0xd1a3) % uint64(n))
		for i := range level {
			level[i] = -1
		}
		level[src] = 0
		queue = append(queue[:0], src)
		ecc := 0
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			lv := level[v]
			for _, u := range g.OutNeighbors(v) {
				if level[u] < 0 {
					level[u] = lv + 1
					if int(lv)+1 > ecc {
						ecc = int(lv) + 1
					}
					queue = append(queue, u)
				}
			}
		}
		if ecc > best {
			best = ecc
		}
	}
	if best == 0 {
		best = 1 // edgeless or all-self-loop graphs still run one superstep
	}
	return best
}
