// The online learner: per-(feature-bucket, candidate) multiplicative
// correction factors fed by observed runs. The cost model is analytic
// and deliberately simple; whatever per-workload bias it carries shows
// up as a stable ratio observed/predicted, which an EWMA tracks and the
// chooser multiplies back into future predictions. Corrections are
// keyed by a coarse feature bucket — exact feature vectors would never
// repeat across datasets — and by the full candidate, because the bias
// of, say, the XStream recipe differs from the Polymer one.

package plan

import (
	"math"
	"sync"
	"sync/atomic"

	"math/bits"

	"polymer/internal/bench"
)

// Bucket is the coarse workload class used to index corrections: the
// algorithm plus log-scale graph size, a skew class and a diameter
// class. Comparable, so it can key maps and the decision cache.
type Bucket struct {
	Alg       bench.Algo
	LogV      int8 // bits.Len(vertices): log2 size class
	LogM      int8
	SkewHigh  bool // max degree > 8x mean: power-law-ish
	DiamClass int8 // 0: <8 levels, 1: <64, 2: >=64 (road-like)
	// Tiered separates runs on DRAM-constrained machines: their observed
	// clocks carry slow-tier stalls, so letting them share corrections
	// with untiered runs would skew both models.
	Tiered bool
}

// BucketOf classifies a feature vector.
func BucketOf(f Features, alg bench.Algo) Bucket {
	b := Bucket{
		Alg:      alg,
		LogV:     int8(bits.Len64(uint64(f.Vertices))),
		LogM:     int8(bits.Len64(uint64(f.Edges))),
		SkewHigh: f.Skew > 8,
	}
	switch {
	case f.DiameterEst >= 64:
		b.DiamClass = 2
	case f.DiameterEst >= 8:
		b.DiamClass = 1
	}
	return b
}

// Correction clamps and smoothing constants: a single wild observation
// (co-located noise, a degraded run that slipped through) cannot move a
// factor outside [minFactor, maxFactor], and the EWMA forgets old
// traffic with weight learnAlpha per observation. genEpsilon is the
// relative factor change below which the decision cache is not
// invalidated — once the learner converges, cached decisions stay hot.
const (
	minFactor  = 0.25
	maxFactor  = 4.0
	learnAlpha = 0.3
	genEpsilon = 0.02
)

type learnKey struct {
	b Bucket
	c Candidate
}

type corr struct {
	factor float64
	n      int64
}

// Learner accumulates correction factors and regret statistics. All
// methods are safe for concurrent use.
type Learner struct {
	mu   sync.RWMutex
	corr map[learnKey]*corr
	gen  atomic.Uint64

	obs       atomic.Int64
	absRelErr float64 // EWMA of |observed-predicted|/predicted, under mu
	errInit   bool
}

// NewLearner returns an empty learner (all factors 1).
func NewLearner() *Learner {
	return &Learner{corr: make(map[learnKey]*corr)}
}

// Gen is the learner generation: it advances whenever a correction
// factor moves materially, signalling decision caches to recompute.
func (l *Learner) Gen() uint64 { return l.gen.Load() }

// Factor returns the current multiplicative correction for (b, c);
// 1 when nothing has been observed yet.
func (l *Learner) Factor(b Bucket, c Candidate) float64 {
	l.mu.RLock()
	e := l.corr[learnKey{b, c}]
	l.mu.RUnlock()
	if e == nil {
		return 1
	}
	return e.factor
}

// Observe feeds one completed run: the cost the model predicted for the
// chosen candidate and the simulated seconds actually charged. Non-
// positive inputs are ignored (a degenerate or failed run teaches
// nothing).
func (l *Learner) Observe(b Bucket, c Candidate, predicted, observed float64) {
	if predicted <= 0 || observed <= 0 || math.IsInf(observed, 0) || math.IsNaN(observed) {
		return
	}
	ratio := observed / predicted
	if ratio < minFactor {
		ratio = minFactor
	}
	if ratio > maxFactor {
		ratio = maxFactor
	}
	relErr := math.Abs(observed-predicted) / predicted
	l.obs.Add(1)

	l.mu.Lock()
	if l.errInit {
		l.absRelErr += learnAlpha * (relErr - l.absRelErr)
	} else {
		l.absRelErr = relErr
		l.errInit = true
	}
	k := learnKey{b, c}
	e := l.corr[k]
	var old float64
	if e == nil {
		e = &corr{factor: ratio}
		l.corr[k] = e
		old = 1
	} else {
		old = e.factor
		e.factor += learnAlpha * (ratio - e.factor)
	}
	e.n++
	changed := math.Abs(e.factor-old)/old > genEpsilon
	l.mu.Unlock()

	if changed {
		l.gen.Add(1)
	}
}

// LearnerStats is a point-in-time snapshot for /metricsz and -plan.
type LearnerStats struct {
	Observations int64   `json:"observations"`
	Buckets      int     `json:"buckets"`
	MeanAbsErr   float64 `json:"mean_abs_rel_err"` // EWMA of |obs-pred|/pred
	Gen          uint64  `json:"gen"`
}

// Stats snapshots the learner.
func (l *Learner) Stats() LearnerStats {
	l.mu.RLock()
	n := len(l.corr)
	err := l.absRelErr
	l.mu.RUnlock()
	return LearnerStats{
		Observations: l.obs.Load(),
		Buckets:      n,
		MeanAbsErr:   err,
		Gen:          l.gen.Load(),
	}
}
