package plan

import (
	"testing"

	"polymer/internal/bench"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
)

// reducedCorpus is a fast subset of the full planbench corpus: a
// power-law graph (hub-heavy), a road grid (deep), a uniform graph and
// two adversarial corner cases.
func reducedCorpus() []CorpusEntry {
	var out []CorpusEntry
	n, e := gen.Powerlaw(3000, 8, 2.1, 11)
	out = append(out, CorpusEntry{Name: "powerlaw", N: n, E: e})
	n, e = gen.RoadGrid(48, 48, 5)
	out = append(out, CorpusEntry{Name: "road", N: n, E: e})
	n, e = gen.Uniform(2000, 16000, 9)
	out = append(out, CorpusEntry{Name: "uniform", N: n, E: e})
	for _, a := range gen.Adversarial() {
		if a.Name == "star-out" || a.Name == "chain" {
			out = append(out, CorpusEntry{Name: "adv/" + a.Name, N: a.N, E: a.Edges})
		}
	}
	return out
}

// The acceptance gate at test scale: planner picks must be within 10%
// mean simulated cost of the exhaustive oracle across the corpus.
func TestSweepRegretGate(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is minutes of simulated runs")
	}
	p := New(numa.IntelXeon80(), 4)
	res := Sweep(p, reducedCorpus(), []bench.Algo{bench.PR, bench.BFS, bench.SSSP}, 8, false, false)
	if len(res.Cells) == 0 {
		t.Fatal("sweep measured nothing")
	}
	for _, c := range res.Cells {
		t.Logf("%-14s %-4s pick=%-28s oracle=%-28s regret=%5.1f%%",
			c.Graph, c.Alg, c.Pick, c.Oracle, 100*c.Regret)
	}
	if res.MeanRegret > 0.10 {
		t.Fatalf("mean regret %.1f%% exceeds the 10%% gate", 100*res.MeanRegret)
	}
}

// The acceptance gate on the full planbench corpus: across everything —
// paper datasets and adversarial corner cases — the picks must cost at
// most 10% more simulated time than the exhaustive oracle's. The metric
// is cost-weighted, so a nanosecond corner graph cannot dominate it.
func TestFullCorpusCostRegretGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus sweep")
	}
	if raceEnabled {
		// A model-quality gate, not a concurrency test: under the race
		// detector's scheduler the engines' charge attribution wobbles
		// enough to flip per-cell argmins, and the 360-run sweep is
		// slow. The nightly plan-sweep CI job runs it race-free.
		t.Skip("full-corpus sweep under -race")
	}
	p := New(numa.IntelXeon80(), 2)
	res := Sweep(p, Corpus(), []bench.Algo{bench.PR, bench.BFS, bench.SSSP}, 8, false, false)
	if len(res.Cells) < 30 {
		t.Fatalf("full sweep measured only %d cells", len(res.Cells))
	}
	t.Logf("cost regret %.2f%%  mean %.1f%%  max %.1f%%  over %d cells",
		100*res.CostRegret, 100*res.MeanRegret, 100*res.MaxRegret, len(res.Cells))
	if res.CostRegret > 0.10 {
		t.Fatalf("cost regret %.1f%% exceeds the 10%% gate", 100*res.CostRegret)
	}
}

// Learning during a sweep must reduce (or at least not explode) the
// model's bias: after one training pass the learner holds observations
// and the mean factor error is finite.
func TestSweepLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is minutes of simulated runs")
	}
	p := New(numa.IntelXeon80(), 4)
	n, e := gen.Powerlaw(2000, 8, 2.1, 3)
	entries := []CorpusEntry{{Name: "pl", N: n, E: e}}
	_ = Sweep(p, entries, []bench.Algo{bench.PR}, 8, true, false)
	st := p.Learner().Stats()
	if st.Observations == 0 {
		t.Fatal("learning sweep recorded no observations")
	}
}

// BuildGraph must not mutate the shared corpus edge slice when adding
// weights.
func TestBuildGraphDoesNotMutateCorpus(t *testing.T) {
	n, e := gen.Uniform(100, 500, 1)
	entry := CorpusEntry{Name: "u", N: n, E: e}
	before := append([]graph.Edge(nil), e...)
	_ = BuildGraph(entry, bench.SSSP) // weighted: must copy
	for i := range before {
		if e[i] != before[i] {
			t.Fatalf("corpus edge %d mutated by weighted build", i)
		}
	}
	g := BuildGraph(entry, bench.SSSP)
	if !g.Weighted() {
		t.Fatal("weighted build produced unweighted graph")
	}
}

func TestCorpusNonEmpty(t *testing.T) {
	c := Corpus()
	if len(c) < 10 {
		t.Fatalf("corpus has only %d entries", len(c))
	}
	names := map[string]bool{}
	for _, e := range c {
		if names[e.Name] {
			t.Fatalf("duplicate corpus entry %s", e.Name)
		}
		names[e.Name] = true
	}
}
