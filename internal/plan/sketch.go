// Package plan is the cost-model-driven planner: it profiles loaded
// graphs into deterministic feature vectors, predicts the simulated cost
// of every viable (engine, placement, partition count) candidate from the
// numa access-class tables, picks the argmin, learns correction factors
// online from observed traffic, and places concurrent requests on
// disjoint simulated node sets.
//
// The package deliberately sits below the serving layer: it knows
// engines, placements and topologies, but nothing about HTTP, queues or
// circuit breakers beyond an opaque "these engines are vetoed" mask.
package plan

// sketchBuckets is one bucket per log2 magnitude of a 63-bit value plus
// one for zero.
const sketchBuckets = 64

// Sketch is a deterministic streaming quantile sketch over non-negative
// integer samples (vertex degrees): fixed log2 buckets, so Add is O(1),
// memory is constant, and — unlike sampling sketches — the result is a
// pure function of the multiset of samples. Quantiles are exact to within
// a factor of 2 (sub-bucket position is interpolated linearly), which is
// all the cost model needs: degree skew matters in orders of magnitude.
type Sketch struct {
	count   int64
	sum     float64
	max     int64
	buckets [sketchBuckets]int64
}

// Add records one sample into its log2 bucket (bucket 0 holds zeros;
// bucket i>0 holds values in [2^(i-1), 2^i)). Negative samples are
// clamped to zero.
func (s *Sketch) Add(v int64) {
	if v < 0 {
		v = 0
	}
	s.count++
	s.sum += float64(v)
	if v > s.max {
		s.max = v
	}
	b := 0
	for x := v; x > 0; x >>= 1 {
		b++
	}
	s.buckets[b]++
}

// Count returns the number of samples.
func (s *Sketch) Count() int64 { return s.count }

// Mean returns the sample mean (0 for an empty sketch).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Max returns the largest sample.
func (s *Sketch) Max() int64 { return s.max }

// Quantile returns an estimate of the q-quantile (q in [0,1]): the
// position within the covering bucket is interpolated linearly between
// the bucket's bounds. Empty sketches return 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.count-1)
	var seen float64
	for b := 0; b < sketchBuckets; b++ {
		n := float64(s.buckets[b])
		if n == 0 {
			continue
		}
		if seen+n > rank {
			if b == 0 {
				return 0
			}
			lo := float64(int64(1) << uint(b-1))
			hi := lo * 2
			frac := (rank - seen) / n
			v := lo + frac*(hi-lo)
			if m := float64(s.max); v > m {
				v = m
			}
			return v
		}
		seen += n
	}
	return float64(s.max)
}
