// The multi-tenant scheduler: concurrent requests are assigned
// simulated node sets so that, while capacity lasts, tenants occupy
// disjoint sockets. A sole tenant always receives the exact prefix of
// the topology's deterministic pick order, so its machine — built with
// numa.NewMachineOnSockets — is bit-identical to the one an unscheduled
// run would build, and results stay cacheable. When demand exceeds the
// socket count the scheduler does not lie about isolation: it co-locates
// tenants on the least-loaded sockets and reports the tenancy degree so
// the serving layer can charge the run honestly (wall-clock style
// multiplication in the response provenance) instead of pretending the
// machine was private.

package plan

import (
	"sync"

	"polymer/internal/numa"
)

// Scheduler tracks socket occupancy for one topology.
type Scheduler struct {
	topo  *numa.Topology
	order []int // deterministic greedy pick order over all sockets

	mu      sync.Mutex
	tenancy []int // current tenants per socket, indexed by physical id
}

// NewScheduler creates a scheduler over all sockets of topo.
func NewScheduler(topo *numa.Topology) *Scheduler {
	return &Scheduler{
		topo:    topo,
		order:   topo.PickOrder(topo.Sockets),
		tenancy: make([]int, topo.Sockets),
	}
}

// Lease is one tenant's socket assignment. Release it when the run
// finishes.
type Lease struct {
	s       *Scheduler
	sockets []int
	// def records that the lease is the exact default prefix and was
	// granted with zero co-tenants — the run is then bit-identical to an
	// unscheduled one.
	def bool
	// tenants is the max occupancy (including this lease) over the
	// lease's sockets at grant time.
	tenants  int
	released bool
}

// Acquire grants want sockets (clamped to [1, Sockets]). Preference
// order: lowest current tenancy first, then earliest in the
// deterministic pick order — so an idle scheduler always grants the
// PickOrder prefix, and loaded schedulers spread tenants before
// stacking them.
func (s *Scheduler) Acquire(want int) *Lease {
	if want < 1 {
		want = 1
	}
	if want > s.topo.Sockets {
		want = s.topo.Sockets
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Stable selection: repeatedly take the socket with minimal
	// (tenancy, pick-order position) among those not yet taken.
	taken := make([]bool, s.topo.Sockets)
	picked := make([]int, 0, want)
	maxTen := 0
	for len(picked) < want {
		best, bestTen := -1, int(^uint(0)>>1)
		for _, ph := range s.order {
			if taken[ph] {
				continue
			}
			if t := s.tenancy[ph]; t < bestTen {
				best, bestTen = ph, t
			}
		}
		taken[best] = true
		picked = append(picked, best)
		if bestTen+1 > maxTen {
			maxTen = bestTen + 1
		}
	}
	def := maxTen == 1
	if def {
		for i, ph := range picked {
			if s.order[i] != ph {
				def = false
				break
			}
		}
	}
	for _, ph := range picked {
		s.tenancy[ph]++
	}
	return &Lease{s: s, sockets: picked, def: def, tenants: maxTen}
}

// Sockets returns the granted physical socket ids (in grant order).
func (l *Lease) Sockets() []int { return l.sockets }

// Default reports whether this lease is the sole-tenant default prefix:
// runs under a default lease are bit-identical to unscheduled runs and
// safe to result-cache.
func (l *Lease) Default() bool { return l.def }

// Tenants is the max co-tenancy (>= 1, including this lease) across the
// granted sockets at grant time; the serving layer multiplies simulated
// time by it when charging a co-located run.
func (l *Lease) Tenants() int { return l.tenants }

// Release returns the sockets to the pool. Idempotent.
func (l *Lease) Release() {
	if l == nil || l.released {
		return
	}
	l.released = true
	l.s.mu.Lock()
	for _, ph := range l.sockets {
		if l.s.tenancy[ph] > 0 {
			l.s.tenancy[ph]--
		}
	}
	l.s.mu.Unlock()
}

// Machine builds the simulated machine for this lease with coresPerNode
// cores per socket. For a default lease the result is bit-identical to
// numa.NewMachineChecked(topo, len(sockets), coresPerNode).
func (l *Lease) Machine(coresPerNode int) (*numa.Machine, error) {
	return numa.NewMachineOnSockets(l.s.topo, l.sockets, coresPerNode)
}
