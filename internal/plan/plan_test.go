package plan

import (
	"testing"

	"polymer/internal/bench"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
)

func testPlanner() *Planner {
	return New(numa.IntelXeon80(), 4)
}

func testFeatures() Features {
	n, edges := gen.RMAT(10, 8, 1)
	return Profile(graph.FromEdges(n, edges, false))
}

// A vetoed engine must never be picked, whatever the cost model thinks
// of it — this is the open-circuit-breaker regression test.
func TestResolveNeverPicksVetoedEngine(t *testing.T) {
	p := testPlanner()
	f := testFeatures()
	for _, sys := range bench.Systems() {
		d := p.Resolve(Query{Features: f, Alg: bench.PR, Nodes: 8, Veto: VetoBit(sys)})
		if d.Pick.Engine == sys {
			t.Fatalf("planner picked vetoed engine %s", sys)
		}
		if d.Fallback {
			t.Fatalf("single veto of %s must not trigger fallback", sys)
		}
	}
}

// With every engine vetoed the planner falls back (it cannot conjure a
// healthy engine) and says so, so the serving layer's breaker produces
// the honest degraded/refused answer.
func TestResolveAllVetoedFallsBack(t *testing.T) {
	p := testPlanner()
	all := VetoPolymer | VetoLigra | VetoXStream | VetoGalois
	d := p.Resolve(Query{Features: testFeatures(), Alg: bench.PR, Nodes: 8, Veto: all})
	if !d.Fallback {
		t.Fatal("all-vetoed query must report Fallback")
	}
	if d.Pick.Engine == "" {
		t.Fatal("fallback must still pick an engine")
	}
}

// Pinning the engine or placement restricts the search space.
func TestResolveHonorsPins(t *testing.T) {
	p := testPlanner()
	f := testFeatures()
	d := p.Resolve(Query{Features: f, Alg: bench.PR, Nodes: 8, EngineFixed: bench.Ligra})
	if d.Pick.Engine != bench.Ligra {
		t.Fatalf("pinned engine ignored: picked %s", d.Pick.Engine)
	}
	d = p.Resolve(Query{Features: f, Alg: bench.PR, Nodes: 8,
		EngineFixed: bench.Polymer, PlacementFixed: mem.Centralized, PlacementSet: true})
	if d.Pick.Placement != mem.Centralized {
		t.Fatalf("pinned placement ignored: picked %s", d.Pick.Placement)
	}
	for _, s := range d.Table {
		if s.Candidate.Engine != bench.Polymer || s.Candidate.Placement != mem.Centralized {
			t.Fatalf("pinned table contains foreign candidate %s", s.Candidate)
		}
	}
}

// Engines that cannot run an algorithm must never appear as candidates.
func TestCandidatesRespectSupport(t *testing.T) {
	for _, alg := range []bench.Algo{bench.BFS, bench.SSSP, bench.SpMV, bench.BP} {
		for _, c := range Candidates(alg, 8) {
			if c.Engine == bench.XStream || c.Engine == bench.Galois {
				t.Fatalf("%s offered on %s", alg, c.Engine)
			}
		}
	}
	seen := map[bench.System]bool{}
	for _, c := range Candidates(bench.PR, 8) {
		seen[c.Engine] = true
		if c.Engine != bench.Polymer && c.Placement != mem.Interleaved {
			t.Fatalf("baseline %s offered placement %s", c.Engine, c.Placement)
		}
	}
	for _, sys := range bench.Systems() {
		if !seen[sys] {
			t.Fatalf("PR candidates missing %s", sys)
		}
	}
}

// Resolving the same query twice must return the identical cached
// decision; a learner-generation bump must invalidate it.
func TestResolveCaching(t *testing.T) {
	p := testPlanner()
	f := testFeatures()
	q := Query{Features: f, Alg: bench.PR, Nodes: 8}
	d1 := p.Resolve(q)
	d2 := p.Resolve(q)
	if d1 != d2 {
		t.Fatal("repeat resolve did not hit the cache")
	}
	if s := p.Snapshot(); s.CacheHits < 1 {
		t.Fatalf("cache hits = %d", s.CacheHits)
	}
	// Feed divergent observations until a factor moves enough to bump gen.
	for i := 0; i < 10 && p.learner.Gen() == d1.LearnGen; i++ {
		p.Observe(d1, d1.Raw*3)
	}
	if p.learner.Gen() == d1.LearnGen {
		t.Fatal("observations never advanced the learner generation")
	}
	d3 := p.Resolve(q)
	if d3 == d1 {
		t.Fatal("stale decision served after learner update")
	}
	if d3.LearnGen == d1.LearnGen {
		t.Fatal("new decision carries stale generation")
	}
}

// Corrections must bend future costs: after observing that the pick
// runs 3x slower than predicted, its corrected cost must rise.
func TestLearnerCorrectsCosts(t *testing.T) {
	p := testPlanner()
	f := testFeatures()
	q := Query{Features: f, Alg: bench.PR, Nodes: 8}
	d1 := p.Resolve(q)
	for i := 0; i < 20; i++ {
		p.Observe(d1, d1.Raw*3)
	}
	fac := p.learner.Factor(d1.Bucket, d1.Pick)
	if fac < 1.5 {
		t.Fatalf("factor after 20x 3x-slow observations = %f", fac)
	}
	if fac > maxFactor {
		t.Fatalf("factor exceeded clamp: %f", fac)
	}
	d2 := p.Resolve(q)
	if d2.Predicted <= d1.Predicted && d2.Pick == d1.Pick {
		t.Fatalf("corrected cost did not rise: %f vs %f", d2.Predicted, d1.Predicted)
	}
	st := p.learner.Stats()
	if st.Observations != 20 || st.Buckets != 1 {
		t.Fatalf("learner stats: %+v", st)
	}
}

// Degenerate observations must not poison the learner.
func TestLearnerIgnoresGarbage(t *testing.T) {
	l := NewLearner()
	b := Bucket{Alg: bench.PR}
	c := Candidate{Engine: bench.Polymer, Placement: mem.CoLocated, Nodes: 8}
	l.Observe(b, c, 0, 1)
	l.Observe(b, c, 1, 0)
	l.Observe(b, c, -1, 5)
	if l.Stats().Observations != 0 {
		t.Fatal("garbage observations were counted")
	}
	if l.Factor(b, c) != 1 {
		t.Fatal("garbage observations moved a factor")
	}
}

// The hot path contract: resolving an already-cached query allocates
// nothing.
func TestResolveZeroAllocOnHit(t *testing.T) {
	p := testPlanner()
	f := testFeatures()
	q := Query{Features: f, Alg: bench.PR, Nodes: 8}
	p.Resolve(q) // warm
	avg := testing.AllocsPerRun(100, func() {
		if p.Resolve(q) == nil {
			t.Fatal("nil decision")
		}
	})
	if avg != 0 {
		t.Fatalf("Resolve on cache hit allocates %.1f times", avg)
	}
}

// Decision tables must be complete and internally consistent.
func TestDecisionTable(t *testing.T) {
	p := testPlanner()
	d := p.Resolve(Query{Features: testFeatures(), Alg: bench.PR, Nodes: 8})
	if len(d.Table) != len(Candidates(bench.PR, 8)) {
		t.Fatalf("table has %d rows, want %d", len(d.Table), len(Candidates(bench.PR, 8)))
	}
	var foundPick bool
	for _, s := range d.Table {
		if s.Cost <= 0 || s.Raw <= 0 {
			t.Fatalf("non-positive cost for %s", s.Candidate)
		}
		if s.Candidate == d.Pick {
			foundPick = true
			if s.Cost != d.Predicted {
				t.Fatalf("pick cost mismatch: %f vs %f", s.Cost, d.Predicted)
			}
		}
		if !s.Vetoed && s.Cost < d.Predicted {
			t.Fatalf("%s is cheaper (%g) than the pick (%g)", s.Candidate, s.Cost, d.Predicted)
		}
	}
	if !foundPick {
		t.Fatal("pick not present in its own table")
	}
}
