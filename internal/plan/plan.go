// The chooser: score every viable candidate with the cost model, apply
// the learner's corrections, prune vetoed engines, and pick the argmin.
// Decisions are memoized in a cache keyed by the exact feature vector
// plus the query's constraints and the learner generation, so resolving
// a repeated workload is a single map lookup with zero allocations.

package plan

import (
	"sync"
	"sync/atomic"

	"polymer/internal/bench"
	"polymer/internal/mem"
	"polymer/internal/numa"
)

// Version identifies the planner's model+chooser revision; it is stamped
// into response provenance so cached results from an older planner are
// distinguishable.
const Version = 1

// deviationMargin is the factor by which a candidate narrower than the
// requested width must beat the requested-width alternatives: deviating
// from the caller's shape risks regret against a fixed-shape oracle, so
// the planner only does it when the model is confident.
const deviationMargin = 1.25

// Veto bits, one per engine, for pruning candidates whose circuit
// breaker is open or degraded.
const (
	VetoPolymer uint8 = 1 << iota
	VetoLigra
	VetoXStream
	VetoGalois
)

// VetoBit maps an engine to its veto-mask bit.
func VetoBit(sys bench.System) uint8 {
	switch sys {
	case bench.Polymer:
		return VetoPolymer
	case bench.Ligra:
		return VetoLigra
	case bench.XStream:
		return VetoXStream
	case bench.Galois:
		return VetoGalois
	}
	return 0
}

// Query is one planning request.
type Query struct {
	Features Features
	Alg      bench.Algo
	// Nodes is the requested machine width (the planner may narrow it,
	// never widen it). NodesFixed pins the width: the caller asked for
	// exactly Nodes sockets and narrower candidates are off the table.
	Nodes      int
	NodesFixed bool
	// EngineFixed pins the engine ("" = auto).
	EngineFixed bench.System
	// PlacementFixed pins the placement when PlacementSet is true.
	PlacementFixed mem.Placement
	PlacementSet   bool
	// Veto is the open/degraded-breaker engine mask; vetoed engines are
	// pruned from the candidate set.
	Veto uint8
	// Tier describes the target machine's tiered-memory arming; the zero
	// value (untiered) predicts against unbounded DRAM. A tiered query
	// re-ranks candidates under the slow tier's bandwidth penalties —
	// placements that concentrate traffic on DRAM-resident hot vertices
	// win budget they lose on an untiered box.
	Tier numa.TierConfig
}

// Scored is one row of the decision table.
type Scored struct {
	Candidate Candidate `json:"candidate"`
	// Cost is the corrected predicted simulated seconds (raw model
	// prediction x learner factor x deviation margin).
	Cost float64 `json:"cost"`
	// Raw is the uncorrected model prediction.
	Raw float64 `json:"raw"`
	// Vetoed marks candidates pruned by the breaker mask (still listed so
	// -plan shows the full table).
	Vetoed bool `json:"vetoed,omitempty"`
}

// Decision is the planner's answer: the pick, its predicted cost, and
// the full scored table for observability.
type Decision struct {
	Pick      Candidate
	Predicted float64 // corrected predicted cost of the pick, seconds
	Raw       float64 // uncorrected model prediction of the pick
	Bucket    Bucket
	Table     []Scored
	// Fallback is set when every candidate was vetoed: the pick ignores
	// the veto mask (the serving layer's breaker then produces an honest
	// degraded or refused response rather than the planner guessing).
	Fallback bool
	LearnGen uint64
}

// cacheKey is comparable: the exact feature vector plus everything else
// that can change the decision.
type cacheKey struct {
	f         Features
	alg       bench.Algo
	nodes     int
	nodesFix  bool
	engine    bench.System
	place     mem.Placement
	placeSet  bool
	veto      uint8
	tier      numa.TierConfig
	gen       uint64
}

// Planner owns the cost model, learner, scheduler and decision cache
// for one topology. Safe for concurrent use.
type Planner struct {
	topo  *numa.Topology
	cores int

	learner *Learner
	sched   *Scheduler

	mu    sync.RWMutex
	cache map[cacheKey]*Decision

	decisions atomic.Int64
	hits      atomic.Int64
	fallbacks atomic.Int64
}

// New creates a planner for one machine shape (topology and cores per
// socket — the two dimensions the serving layer fixes at startup).
func New(topo *numa.Topology, coresPerNode int) *Planner {
	return &Planner{
		topo:    topo,
		cores:   coresPerNode,
		learner: NewLearner(),
		sched:   NewScheduler(topo),
		cache:   make(map[cacheKey]*Decision),
	}
}

// Learner exposes the online learner (for observation feeding and
// stats).
func (p *Planner) Learner() *Learner { return p.learner }

// Scheduler exposes the multi-tenant socket scheduler.
func (p *Planner) Scheduler() *Scheduler { return p.sched }

// Topology returns the planner's topology.
func (p *Planner) Topology() *numa.Topology { return p.topo }

// Resolve answers a query, from cache when possible. The returned
// Decision is shared and must not be mutated.
func (p *Planner) Resolve(q Query) *Decision {
	if q.Nodes < 1 {
		q.Nodes = 1
	}
	if q.Nodes > p.topo.Sockets {
		q.Nodes = p.topo.Sockets
	}
	k := cacheKey{
		f: q.Features, alg: q.Alg, nodes: q.Nodes, nodesFix: q.NodesFixed,
		engine: q.EngineFixed, place: q.PlacementFixed, placeSet: q.PlacementSet,
		veto: q.Veto, tier: q.Tier, gen: p.learner.Gen(),
	}
	p.mu.RLock()
	d := p.cache[k]
	p.mu.RUnlock()
	if d != nil {
		p.hits.Add(1)
		return d
	}
	d = p.decide(q, k.gen)
	p.decisions.Add(1)
	if d.Fallback {
		p.fallbacks.Add(1)
	}
	p.mu.Lock()
	if prev := p.cache[k]; prev != nil {
		d = prev
	} else {
		p.cache[k] = d
	}
	p.mu.Unlock()
	return d
}

func (p *Planner) decide(q Query, gen uint64) *Decision {
	b := BucketOf(q.Features, q.Alg)
	b.Tiered = q.Tier.Tiered()
	cands := Candidates(q.Alg, q.Nodes)
	table := make([]Scored, 0, len(cands))
	best, bestRaw := -1, 0.0
	bestCost := inf
	allVetoed := true
	for _, c := range cands {
		if q.EngineFixed != "" && c.Engine != q.EngineFixed {
			continue
		}
		if q.PlacementSet && c.Placement != q.PlacementFixed {
			continue
		}
		if q.NodesFixed && c.Nodes != q.Nodes {
			continue
		}
		raw := PredictTiered(q.Features, q.Alg, p.topo, c, p.cores, q.Tier)
		cost := raw * p.learner.Factor(b, c)
		if c.Nodes != q.Nodes {
			cost *= deviationMargin
		}
		vetoed := q.Veto&VetoBit(c.Engine) != 0
		table = append(table, Scored{Candidate: c, Cost: cost, Raw: raw, Vetoed: vetoed})
		if vetoed {
			continue
		}
		allVetoed = false
		if cost < bestCost {
			best, bestCost, bestRaw = len(table)-1, cost, raw
		}
	}
	d := &Decision{Bucket: b, Table: table, LearnGen: gen}
	if best < 0 {
		// Every viable candidate vetoed (or none viable at all): fall back
		// to the cheapest candidate ignoring the veto and let the serving
		// layer's breaker answer honestly.
		d.Fallback = allVetoed && len(table) > 0
		for i, s := range table {
			if best < 0 || s.Cost < bestCost {
				best, bestCost, bestRaw = i, s.Cost, s.Raw
			}
		}
		if best < 0 {
			// No candidates whatsoever (unsupported algorithm): degrade to
			// Polymer native — the engine that runs everything.
			d.Pick = Candidate{Engine: bench.Polymer, Placement: mem.CoLocated, Nodes: q.Nodes}
			d.Predicted = inf
			d.Raw = inf
			return d
		}
	}
	d.Pick = table[best].Candidate
	d.Predicted = bestCost
	d.Raw = bestRaw
	return d
}

// Observe feeds one completed run back into the learner: the decision
// that chose it and the simulated seconds actually charged.
func (p *Planner) Observe(d *Decision, observed float64) {
	if d == nil {
		return
	}
	p.learner.Observe(d.Bucket, d.Pick, d.Raw, observed)
}

// Stats is the planner's /metricsz block.
type Stats struct {
	Decisions int64        `json:"decisions"`
	CacheHits int64        `json:"cache_hits"`
	Fallbacks int64        `json:"fallbacks"`
	Learner   LearnerStats `json:"learner"`
}

// Snapshot returns current planner counters.
func (p *Planner) Snapshot() Stats {
	return Stats{
		Decisions: p.decisions.Load(),
		CacheHits: p.hits.Load(),
		Fallbacks: p.fallbacks.Load(),
		Learner:   p.learner.Stats(),
	}
}
