// The planner-vs-oracle sweep: run every candidate for real, compare the
// planner's pick against the exhaustive argmin, and report regret. This
// is both the calibration harness for the cost model's constants and the
// nightly regression gate (mean regret <= 10%).

package plan

import (
	"fmt"
	"sort"

	"polymer/internal/bench"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
)

// SweepRow is one measured candidate.
type SweepRow struct {
	Candidate Candidate `json:"candidate"`
	Predicted float64   `json:"predicted"` // corrected model prediction, seconds
	Sim       float64   `json:"sim"`       // measured simulated seconds
	Err       string    `json:"err,omitempty"`
}

// SweepCell is one (graph, algorithm) cell: the planner's pick, the
// oracle's, and the regret between them.
type SweepCell struct {
	Graph    string     `json:"graph"`
	Alg      bench.Algo `json:"alg"`
	Features Features   `json:"features"`
	Pick     Candidate  `json:"pick"`
	PickSim  float64    `json:"pick_sim"`
	Oracle   Candidate  `json:"oracle"`
	BestSim  float64    `json:"best_sim"`
	// Regret is (PickSim - BestSim) / BestSim, >= 0; 0 means the planner
	// matched the oracle exactly.
	Regret float64    `json:"regret"`
	Rows   []SweepRow `json:"rows,omitempty"`
}

// SweepResult aggregates a corpus sweep. MeanRegret averages the
// per-cell relative regrets (a diagnostic that weights a nanosecond
// corner-case graph as heavily as the largest dataset); CostRegret is
// the acceptance metric — the extra simulated cost the planner's picks
// incur over the oracle across the whole corpus, cost-weighted:
// (sum(PickSim) - sum(BestSim)) / sum(BestSim).
type SweepResult struct {
	Topology   string      `json:"topology"`
	Nodes      int         `json:"nodes"`
	Cores      int         `json:"cores"`
	Cells      []SweepCell `json:"cells"`
	MeanRegret float64     `json:"mean_regret"`
	MaxRegret  float64     `json:"max_regret"`
	CostRegret float64     `json:"cost_regret"`
}

// SweepGraph measures one (graph, algorithm) cell: resolve the planner's
// pick, then run every candidate on its own fresh machine and find the
// true argmin. When learn is true the pick's observation is fed back to
// the learner (so a sweep doubles as a training pass).
func SweepGraph(p *Planner, name string, g *graph.Graph, alg bench.Algo, nodes int, learn, keepRows bool) (SweepCell, error) {
	f := Profile(g)
	d := p.Resolve(Query{Features: f, Alg: alg, Nodes: nodes})
	cell := SweepCell{Graph: name, Alg: alg, Features: f, Pick: d.Pick}
	bestSim := -1.0
	pickSim := -1.0
	for _, s := range d.Table {
		c := s.Candidate
		m, err := numa.NewMachineChecked(p.topo, c.Nodes, p.cores)
		if err != nil {
			return cell, err
		}
		r, err := bench.RunPlacedFrom(c.Engine, alg, g, m, 0, c.Placement)
		row := SweepRow{Candidate: c, Predicted: s.Cost}
		if err != nil {
			row.Err = err.Error()
			cell.Rows = append(cell.Rows, row)
			continue
		}
		row.Sim = r.SimSeconds
		cell.Rows = append(cell.Rows, row)
		if bestSim < 0 || r.SimSeconds < bestSim {
			bestSim, cell.Oracle = r.SimSeconds, c
		}
		if c == d.Pick {
			pickSim = r.SimSeconds
		}
	}
	if bestSim < 0 || pickSim < 0 {
		return cell, fmt.Errorf("plan: sweep of %s/%s measured no candidates", name, alg)
	}
	cell.PickSim, cell.BestSim = pickSim, bestSim
	if bestSim > 0 {
		cell.Regret = (pickSim - bestSim) / bestSim
	}
	if cell.Regret < 0 {
		cell.Regret = 0
	}
	if learn {
		p.Observe(d, pickSim)
	}
	if !keepRows {
		cell.Rows = nil
	}
	return cell, nil
}

// CorpusEntry is one sweep input.
type CorpusEntry struct {
	Name string
	N    int
	E    []graph.Edge
}

// Corpus returns the sweep inputs: the adversarial corner-case corpus
// plus the five paper datasets at Tiny scale (as edge lists, so weighted
// variants can be derived per algorithm without mutating shared state).
func Corpus() []CorpusEntry {
	var out []CorpusEntry
	for _, a := range gen.Adversarial() {
		out = append(out, CorpusEntry{Name: "adv/" + a.Name, N: a.N, E: a.Edges})
	}
	for _, ds := range gen.Datasets() {
		g, err := gen.Load(ds, gen.Tiny, false)
		if err != nil {
			continue
		}
		out = append(out, CorpusEntry{Name: "data/" + string(ds), N: g.NumVertices(), E: edgeList(g)})
	}
	return out
}

// edgeList flattens a CSR back into an edge list (the corpus carries
// edge lists so per-algorithm weighted variants can be built).
func edgeList(g *graph.Graph) []graph.Edge {
	out := make([]graph.Edge, 0, g.NumEdges())
	for v := graph.Vertex(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(v) {
			out = append(out, graph.Edge{Src: v, Dst: u})
		}
	}
	return out
}

// BuildGraph materializes a corpus entry for one algorithm, adding
// deterministic weights when the algorithm needs them. The entry's edge
// slice is never mutated.
func BuildGraph(e CorpusEntry, alg bench.Algo) *graph.Graph {
	edges := e.E
	if alg.Weighted() {
		edges = append([]graph.Edge(nil), e.E...)
		gen.AddRandomWeights(edges, 1)
	}
	return graph.FromEdges(e.N, edges, alg.Weighted())
}

// Sweep runs the full corpus x algorithm matrix and aggregates regret.
// Cells whose graphs are too degenerate to measure (no candidate
// completed) are skipped rather than failing the sweep.
func Sweep(p *Planner, entries []CorpusEntry, algs []bench.Algo, nodes int, learn, keepRows bool) SweepResult {
	res := SweepResult{Topology: p.topo.Name, Nodes: nodes, Cores: p.cores}
	var sum, pickSum, bestSum float64
	for _, e := range entries {
		for _, alg := range algs {
			g := BuildGraph(e, alg)
			cell, err := SweepGraph(p, e.Name, g, alg, nodes, learn, keepRows)
			if err != nil {
				continue
			}
			res.Cells = append(res.Cells, cell)
			sum += cell.Regret
			pickSum += cell.PickSim
			bestSum += cell.BestSim
			if cell.Regret > res.MaxRegret {
				res.MaxRegret = cell.Regret
			}
		}
	}
	if len(res.Cells) > 0 {
		res.MeanRegret = sum / float64(len(res.Cells))
	}
	if bestSum > 0 {
		res.CostRegret = (pickSum - bestSum) / bestSum
	}
	sort.Slice(res.Cells, func(i, j int) bool {
		if res.Cells[i].Regret != res.Cells[j].Regret {
			return res.Cells[i].Regret > res.Cells[j].Regret
		}
		if res.Cells[i].Graph != res.Cells[j].Graph {
			return res.Cells[i].Graph < res.Cells[j].Graph
		}
		return res.Cells[i].Alg < res.Cells[j].Alg
	})
	return res
}
