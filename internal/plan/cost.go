// The analytic cost model: predict the simulated seconds of one
// (engine, placement, partition count) candidate from the graph's
// feature vector and the topology's access-class tables.
//
// The model does not invent a cost formula — it charges a private
// numa.Epoch with each engine's per-superstep traffic recipe (the same
// access classes the real engines charge: sequential edge scans, random
// vertex-state accesses split by placement, agent-mediated remote
// flushes) and folds it through Epoch.Time(), so bandwidth tables, LLC
// modelling and node/port/bisection congestion all come from the one
// cost model the engines themselves use. Per-superstep barrier costs are
// added from the barrier calibration. Prediction therefore tracks the
// simulator to first order; the online learner (learn.go) absorbs the
// residual per-workload bias.

package plan

import (
	"fmt"

	"polymer/internal/barrier"
	"polymer/internal/bench"
	"polymer/internal/mem"
	"polymer/internal/numa"
)

// Candidate is one point of the planner's search space.
type Candidate struct {
	Engine    bench.System
	Placement mem.Placement
	Nodes     int
}

func (c Candidate) String() string {
	return fmt.Sprintf("%s/%s/%dn", c.Engine, c.Placement, c.Nodes)
}

// Supported mirrors the resilient runner's engine x algorithm coverage:
// PR runs on all four systems, the scatter-gather systems additionally
// serve SpMV, BP, BFS and SSSP.
func Supported(sys bench.System, alg bench.Algo) bool {
	if alg == bench.PR {
		return true
	}
	return sys == bench.Polymer || sys == bench.Ligra
}

// placements lists the placements an engine can actually execute: only
// Polymer has a placement knob; the baselines are interleaved-native.
func placements(sys bench.System) []mem.Placement {
	if sys == bench.Polymer {
		return mem.Placements()
	}
	return []mem.Placement{mem.Interleaved}
}

// Candidates enumerates the viable (engine, placement, nodes) points for
// one algorithm on a machine of maxNodes sockets: every supported engine
// x executable placement at the full requested width, plus narrower
// partition counts (half and one socket) that a small or high-sync
// workload may genuinely prefer.
func Candidates(alg bench.Algo, maxNodes int) []Candidate {
	widths := []int{maxNodes}
	if h := maxNodes / 2; h >= 1 && h != maxNodes {
		widths = append(widths, h)
	}
	if maxNodes > 2 {
		widths = append(widths, 1)
	}
	var out []Candidate
	for _, sys := range bench.Systems() {
		if !Supported(sys, alg) {
			continue
		}
		for _, pl := range placements(sys) {
			for _, w := range widths {
				out = append(out, Candidate{Engine: sys, Placement: pl, Nodes: w})
			}
		}
	}
	return out
}

// shape is the per-algorithm traffic shape: how many supersteps a run
// takes and how much edge/vertex work each processes.
type shape struct {
	supersteps int
	// edgeWork and vertexWork are totals over the whole run (not per
	// superstep); dataBytes is the per-vertex state width and nsPerEdge
	// the algorithm's arithmetic cost. traversal marks frontier-driven
	// kernels (BFS/SSSP), whose superstep count is diameter-bound and
	// whose per-superstep floors the width terms must model.
	edgeWork   float64
	vertexWork float64
	dataBytes  int
	nsPerEdge  float64
	traversal  bool
}

// iters matches bench's fixed iteration count for PR/SpMV/BP.
const iters = 5

// algoShape derives the traffic shape from the profile. Iterated
// algorithms touch every edge every superstep; traversals touch each
// edge about once over a diameter-bound number of levels (SSSP relaxes a
// constant factor more under re-settling).
func algoShape(alg bench.Algo, f Features) shape {
	n, m := float64(f.Vertices), float64(f.Edges)
	switch alg {
	case bench.PR:
		return shape{supersteps: iters, edgeWork: m * iters, vertexWork: n * iters, dataBytes: 8, nsPerEdge: 1.5}
	case bench.SpMV:
		return shape{supersteps: iters, edgeWork: m * iters, vertexWork: n * iters, dataBytes: 8, nsPerEdge: 1.5}
	case bench.BP:
		return shape{supersteps: iters, edgeWork: m * iters, vertexWork: n * iters, dataBytes: 16, nsPerEdge: 6}
	case bench.BFS:
		// +1: the empty-frontier termination round every traversal pays.
		s := f.DiameterEst + 1
		if s < 2 {
			s = 2
		}
		return shape{supersteps: s, edgeWork: 1.5 * m, vertexWork: n, dataBytes: 4, nsPerEdge: 1, traversal: true}
	case bench.SSSP:
		s := f.DiameterEst + 1
		if s < 2 {
			s = 2
		}
		return shape{supersteps: s, edgeWork: 2 * m, vertexWork: 1.5 * n, dataBytes: 8, nsPerEdge: 1.5, traversal: true}
	default:
		// CC and friends are not served; shape like PR so Predict stays
		// total.
		return shape{supersteps: iters, edgeWork: m * iters, vertexWork: n * iters, dataBytes: 4, nsPerEdge: 1}
	}
}

// edgeBytes is the CSR bytes read per edge scanned.
func edgeBytes(f Features) int {
	if f.Weighted {
		return 8
	}
	return 4
}

// Predict models the simulated cost, in seconds, of running alg on a
// graph with features f using candidate c on topo with cores threads per
// socket. It builds a private machine and epoch — nothing it charges is
// observable outside this function.
func Predict(f Features, alg bench.Algo, topo *numa.Topology, c Candidate, cores int) float64 {
	return PredictTiered(f, alg, topo, c, cores, numa.TierConfig{})
}

// PredictTiered is Predict on a DRAM-constrained machine: the private
// machine is armed with tc and the model's charges flow through the same
// mem.TierPlan split the engines use, so the prediction carries the
// slow tier's bandwidth and congestion penalties with the same
// hot-vertex (or uniform-interleave) hit fractions. A zero config is
// exactly Predict — the tier plan is nil and every charge wrapper
// forwards to the epoch bit-identically.
func PredictTiered(f Features, alg bench.Algo, topo *numa.Topology, c Candidate, cores int, tc numa.TierConfig) float64 {
	if f.Vertices == 0 {
		// Degenerate graphs cost one barrier round regardless of engine.
		return barrier.SyncCost(barrier.N, c.Nodes) / topo.SyncScale
	}
	m, err := numa.NewMachineChecked(topo, c.Nodes, cores)
	if err != nil {
		return inf
	}
	if tc.Tiered() {
		if err := m.SetTierConfig(tc); err != nil {
			return inf
		}
	}
	sh := algoShape(alg, f)
	ep := m.NewEpoch()
	threads := m.Threads()
	perEdge := int64(sh.edgeWork/float64(threads)) + 1
	perVert := int64(sh.vertexWork/float64(threads)) + 1
	d := sh.dataBytes
	eb := edgeBytes(f)
	stateWS := f.Vertices * int64(d)
	partVerts := f.Vertices/int64(c.Nodes) + 1
	localWS := partVerts * int64(d)
	var stepsSync float64

	// Degree skew bounds the edge parallelism a CSR traversal can reach:
	// a hub's out-row is one sequential grain when its level is reached,
	// so at most edges/maxDegree grains make independent progress and the
	// critical path carries edgeWork/grains edges no matter how wide the
	// machine is. Without this the model awards extreme-skew shapes (star
	// graphs) a width speedup the CSR engines cannot deliver, inverting
	// the width ordering. Iterated kernels keep the uniform split: they
	// touch every row every superstep, so rows interleave across threads.
	// X-Stream is exempt by construction — edge-centric streaming splits
	// the edge list itself, oblivious to degree skew.
	perEdgeCSR := perEdge
	if sh.traversal && f.MaxOutDegree > 0 {
		grains := f.Edges / f.MaxOutDegree
		if grains < 1 {
			grains = 1
		}
		if grains < int64(threads) {
			perEdgeCSR = int64(sh.edgeWork/float64(grains)) + 1
		}
	}

	// The engines' three demand classes, mirrored on the private machine
	// (nil handles on an untiered machine: every charge passes through).
	tFrontier, tState, tTopo := tierClasses(m, f, d, eb)

	switch c.Engine {
	case bench.Polymer:
		// Mirror of core's flushPull/flushPush charge recipe. Rows are the
		// per-owner partition rows the agents sweep: up to one per (vertex,
		// owner) pair, but never more than the vertex+edge total.
		rows := sh.vertexWork * float64(c.Nodes)
		if cap := sh.vertexWork + sh.edgeWork; rows > cap {
			rows = cap
		}
		rowsT := int64(rows/float64(threads)) + 1
		// Traversal supersteps whose frontier crosses the |E|/20 dense
		// threshold every level scan the whole vertex set per superstep
		// (frontier membership + degree bookkeeping), split across
		// threads — the term that makes narrow machines genuinely slower
		// on small high-diameter graphs (a path goes dense every level; a
		// long cycle stays sparse). Iterated kernels keep their original
		// calibration: their per-vertex sweep is already in vertexWork.
		var scanT int64
		if sh.traversal && sh.edgeWork/float64(sh.supersteps) > float64(f.Edges)/20 {
			scanT = int64(float64(f.Vertices)*float64(sh.supersteps)/float64(threads)) + 1
		}
		colocated := c.Placement == mem.CoLocated
		for th := 0; th < threads; th++ {
			node := m.NodeOfThread(th)
			// Topology: row metadata + columns, streamed from the local node.
			tTopo.Access(ep, th, numa.Seq, numa.Load, node, rowsT, 12, 0)
			tTopo.Access(ep, th, numa.Seq, numa.Load, node, perEdgeCSR, eb, 0)
			if scanT > 0 {
				tFrontier.Access(ep, th, numa.Seq, numa.Load, node, scanT, 8, 0)
				ep.Compute(th, float64(scanT)*2e-9)
			}
			if colocated {
				// Local random reads of sources (state + data), confined to
				// the partition.
				tFrontier.Access(ep, th, numa.Rand, numa.Load, node, perEdgeCSR, 1, partVerts)
				tState.Access(ep, th, numa.Rand, numa.Load, node, perEdgeCSR, d, localWS)
			} else {
				// NUMA-oblivious data (the engine charges interleaved and
				// centralized layouts identically): whole-array working set.
				tFrontier.AccessInterleaved(ep, th, numa.Rand, numa.Load, perEdgeCSR, 1, 0)
				tState.AccessInterleaved(ep, th, numa.Rand, numa.Load, perEdgeCSR, d, stateWS)
			}
			// Cross-node coherence stalls on a fraction of the edge updates.
			if c.Nodes > 1 {
				tState.LatencyBound(ep, th, numa.Store, node, perEdgeCSR/16)
			}
			// Far-side target data: Cond reads and update writes, sequential
			// by owner (the agents give the sweep its order).
			perOwnerRows := rowsT/int64(c.Nodes) + 1
			perOwnerUpd := perVert/int64(c.Nodes) + 1
			for o := 0; o < c.Nodes; o++ {
				if colocated {
					tState.Access(ep, th, numa.Seq, numa.Load, o, perOwnerRows, d, 0)
					tState.Access(ep, th, numa.Seq, numa.Store, o, perOwnerUpd, d, 0)
				} else {
					tState.AccessInterleaved(ep, th, numa.Seq, numa.Load, perOwnerRows, d, 0)
					tState.AccessInterleaved(ep, th, numa.Seq, numa.Store, perOwnerUpd, d, 0)
				}
			}
			ep.Compute(th, (float64(perEdgeCSR)*(sh.nsPerEdge+1.0)+float64(rowsT)*2)*1e-9)
		}
		stepsSync = float64(sh.supersteps) * barrier.SyncCost(barrier.N, c.Nodes) / topo.SyncScale
	case bench.Ligra:
		// Mirror of ligra's edgemap charge recipe: dense supersteps scan
		// every vertex, frontier bookkeeping lives centralized on node 0,
		// everything else is interleaved.
		scanT := int64(float64(f.Vertices)*float64(sh.supersteps)/float64(threads)) + 1
		for th := 0; th < threads; th++ {
			tFrontier.Access(ep, th, numa.Seq, numa.Load, 0, scanT, 1, 0)
			tTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, scanT, 16, 0)
			tState.AccessInterleaved(ep, th, numa.Seq, numa.Load, perVert, d, 0)
			tTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, perEdgeCSR, eb, 0)
			tState.AccessInterleaved(ep, th, numa.Rand, numa.Store, perEdgeCSR, d, stateWS)
			tFrontier.Access(ep, th, numa.Rand, numa.Store, 0, perEdgeCSR/2, 1, f.Vertices)
			ep.Compute(th, (float64(perEdgeCSR)*(sh.nsPerEdge+1.2)+float64(scanT)*2)*1e-9)
		}
		// Edgemap and vertexmap each cross an H barrier.
		stepsSync = float64(sh.supersteps) * 2 * barrier.SyncCost(barrier.H, c.Nodes) / topo.SyncScale
	case bench.XStream:
		// Edge-centric streaming: every superstep scans the full edge list
		// regardless of the frontier, then shuffles and gathers update
		// records through streaming buffers.
		scanPerTh := int64(float64(f.Edges)*float64(sh.supersteps)/float64(threads)) + 1
		for th := 0; th < threads; th++ {
			node := m.NodeOfThread(th)
			tTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, scanPerTh, eb+4, 0)
			tState.Access(ep, th, numa.Rand, numa.Load, node, perEdge, d, localWS)
			tState.Access(ep, th, numa.Seq, numa.Store, node, perEdge, 12, 0)
			tState.Access(ep, th, numa.Seq, numa.Load, node, perEdge, 12, 0)
			tState.AccessInterleaved(ep, th, numa.Seq, numa.Store, perEdge, 12, 0)
			tState.AccessInterleaved(ep, th, numa.Seq, numa.Load, perEdge, 12, 0)
			tState.Access(ep, th, numa.Rand, numa.Store, node, perVert, d, localWS)
			ep.Compute(th, float64(scanPerTh)*1.5e-9)
		}
		// Scatter, shuffle and gather each cross an H barrier.
		stepsSync = float64(sh.supersteps) * 3 * barrier.SyncCost(barrier.H, c.Nodes) / topo.SyncScale
	case bench.Galois:
		for th := 0; th < threads; th++ {
			tTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, perEdge, 4, 0)
			tState.AccessInterleaved(ep, th, numa.Rand, numa.Load, perEdge, d, stateWS)
			tTopo.AccessInterleaved(ep, th, numa.Seq, numa.Load, perVert, 16, 0)
			tState.AccessInterleaved(ep, th, numa.Rand, numa.Store, perVert, d, stateWS)
			ep.Compute(th, (float64(perEdge)*0.8+float64(perVert)*20)*1e-9)
		}
		stepsSync = float64(sh.supersteps) * barrier.SyncCost(barrier.H, c.Nodes) / topo.SyncScale
	default:
		return inf
	}
	return ep.Time() + stepsSync
}

// tierClasses mirrors the engines' three-class demand registration
// (pinned frontier, hot-rankable vertex state, CSR topology) on the
// model's private machine, with footprints estimated from the profile:
// bitmaps/queues at ~4 bytes per vertex, state at the algorithm's data
// width, topology at row metadata plus columns. On an untiered machine
// the plan is nil and every returned handle forwards to the epoch
// unchanged, so untiered predictions are bit-identical to the
// historical model.
func tierClasses(m *numa.Machine, f Features, d, eb int) (frontier, state, topo *mem.TierClass) {
	tp := mem.NewTierPlan(m)
	if tp == nil {
		return nil, nil, nil
	}
	nodes := m.Nodes
	frontier = tp.AddClass(mem.ClassSpec{Label: "frontier", BytesPerNode: make([]int64, nodes), Pinned: true})
	state = tp.AddClass(mem.ClassSpec{Label: "state", BytesPerNode: make([]int64, nodes), Priority: 0})
	topo = tp.AddClass(mem.ClassSpec{Label: "topology", BytesPerNode: make([]int64, nodes), Priority: 1})
	frontier.GrowDemandEven(4 * f.Vertices)
	state.GrowDemandEven(f.Vertices * int64(d))
	topo.GrowDemandEven(f.Vertices*12 + f.Edges*int64(eb))
	state.SetHotMass(synthHotMass(f))
	return frontier, state, topo
}

// synthHotMass reconstructs an approximate degree-rank mass curve from
// the profile's degree percentiles. The engines build the exact curve
// from the CSR; the model only has the sketch, so it feeds a synthetic
// rank sample (hub, then the P99/P90/P50 plateaus) through the same
// mem.DegreeHotMass machinery — close enough for the hot policy's hit
// fractions, and the online learner absorbs the residual.
func synthHotMass(f Features) func(float64) float64 {
	n := int(f.Vertices)
	if n > 1024 {
		n = 1024
	}
	if n < 1 {
		return nil
	}
	fn := float64(n)
	return mem.DegreeHotMass(n, func(i int) int64 {
		if i == 0 {
			return f.MaxOutDegree + 1
		}
		r := float64(i) / fn
		var deg float64
		switch {
		case r < 0.01:
			deg = f.DegP99
		case r < 0.10:
			deg = f.DegP90
		case r < 0.50:
			deg = f.DegP50
		default:
			deg = f.DegP50 / 2
		}
		return int64(deg) + 1
	})
}

// inf is the cost of an unviable candidate; it never wins an argmin
// against any finite prediction.
const inf = 1e300
