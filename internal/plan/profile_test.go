package plan

import (
	"sync"
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
)

func adversarialGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	out := make(map[string]*graph.Graph)
	for _, a := range gen.Adversarial() {
		out[a.Name] = graph.FromEdges(a.N, a.Edges, false)
	}
	n, edges := gen.RMAT(10, 8, 42)
	out["rmat10"] = graph.FromEdges(n, edges, false)
	n, edges = gen.RoadGrid(32, 32, 7)
	out["road32"] = graph.FromEdges(n, edges, false)
	return out
}

// Profiles must be a pure function of the graph: identical across
// repeated calls and across concurrent calls on the same graph.
func TestProfileDeterministic(t *testing.T) {
	for name, g := range adversarialGraphs(t) {
		want := Profile(g)
		for i := 0; i < 3; i++ {
			if got := Profile(g); got != want {
				t.Fatalf("%s: profile %d differs: %+v vs %+v", name, i, got, want)
			}
		}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if got := Profile(g); got != want {
					t.Errorf("%s: concurrent profile differs", name)
				}
			}()
		}
		wg.Wait()
	}
}

// A graph rebuilt from the same edge list must profile identically —
// the profile survives checkpoint/rollback cycles, which reconstruct
// the CSR from persisted edges.
func TestProfileSurvivesRebuild(t *testing.T) {
	n, edges := gen.Powerlaw(2000, 8, 2.1, 99)
	a := graph.FromEdges(n, edges, false)
	b := graph.FromEdges(n, append([]graph.Edge(nil), edges...), false)
	if pa, pb := Profile(a), Profile(b); pa != pb {
		t.Fatalf("rebuilt graph profiles differ: %+v vs %+v", pa, pb)
	}
}

// Profiling must never mutate the graph: every CSR slice is byte-equal
// before and after.
func TestProfileDoesNotMutate(t *testing.T) {
	n, edges := gen.RMAT(9, 8, 3)
	gen.AddRandomWeights(edges, 3)
	g := graph.FromEdges(n, edges, true)

	snapI := append([]int64(nil), g.OutIndex...)
	snapN := append([]graph.Vertex(nil), g.OutNbrs...)
	snapII := append([]int64(nil), g.InIndex...)
	snapIN := append([]graph.Vertex(nil), g.InNbrs...)
	snapW := append([]float32(nil), g.OutWts...)

	_ = Profile(g)

	for i := range snapI {
		if g.OutIndex[i] != snapI[i] {
			t.Fatalf("OutIndex[%d] mutated", i)
		}
	}
	for i := range snapN {
		if g.OutNbrs[i] != snapN[i] {
			t.Fatalf("OutNbrs[%d] mutated", i)
		}
	}
	for i := range snapII {
		if g.InIndex[i] != snapII[i] {
			t.Fatalf("InIndex[%d] mutated", i)
		}
	}
	for i := range snapIN {
		if g.InNbrs[i] != snapIN[i] {
			t.Fatalf("InNbrs[%d] mutated", i)
		}
	}
	for i := range snapW {
		if g.OutWts[i] != snapW[i] {
			t.Fatalf("OutWts[%d] mutated", i)
		}
	}
}

func TestProfileShapes(t *testing.T) {
	// A star graph has one huge hub: skew must be enormous, diameter tiny.
	n, edges := gen.Star(5000)
	star := Profile(graph.FromEdges(n, edges, false))
	if star.MaxOutDegree != 4999 {
		t.Fatalf("star hub degree = %d", star.MaxOutDegree)
	}
	if star.Skew < 100 {
		t.Fatalf("star skew = %f, want large", star.Skew)
	}
	if star.DiameterEst > 2 {
		t.Fatalf("star diameter = %d, want <= 2", star.DiameterEst)
	}

	// A chain is the opposite: no skew, huge diameter.
	n, edges = gen.Chain(4000)
	chain := Profile(graph.FromEdges(n, edges, false))
	if chain.DiameterEst < 100 {
		t.Fatalf("chain diameter estimate = %d, want deep", chain.DiameterEst)
	}
	if chain.Skew > 3 {
		t.Fatalf("chain skew = %f, want ~1", chain.Skew)
	}
	// Chains are maximally one-directional.
	if chain.Directedness < 0.9 {
		t.Fatalf("chain directedness = %f", chain.Directedness)
	}

	// A cycle made symmetric has reciprocal edges everywhere.
	n, edges = gen.Cycle(1000)
	sym := graph.FromEdges(n, edges, false).Symmetrized()
	if d := Profile(sym).Directedness; d > 0.1 {
		t.Fatalf("symmetric cycle directedness = %f, want ~0", d)
	}

	// Empty graph: all zeros, no panics.
	empty := Profile(graph.FromEdges(0, nil, false))
	if empty.Vertices != 0 || empty.Edges != 0 || empty.DiameterEst != 0 {
		t.Fatalf("empty profile: %+v", empty)
	}
}

func TestSketchQuantiles(t *testing.T) {
	var s Sketch
	for i := int64(1); i <= 1000; i++ {
		s.Add(i)
	}
	if s.Count() != 1000 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Max() != 1000 {
		t.Fatalf("max = %d", s.Max())
	}
	if m := s.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %f", m)
	}
	// Log2 buckets are 2x-accurate: the median of 1..1000 must land
	// within [250, 1000].
	if q := s.Quantile(0.5); q < 250 || q > 1000 {
		t.Fatalf("p50 = %f", q)
	}
	if q := s.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %f, want exactly max", q)
	}
	if q := s.Quantile(0); q > 2 {
		t.Fatalf("p0 = %f", q)
	}
	var zeros Sketch
	for i := 0; i < 10; i++ {
		zeros.Add(0)
	}
	if q := zeros.Quantile(0.9); q != 0 {
		t.Fatalf("all-zero p90 = %f", q)
	}
	var empty Sketch
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty sketch must be all-zero")
	}
}
