//go:build race

package plan

// raceEnabled reports whether this test binary was built with the race
// detector; see TestFullCorpusCostRegretGate.
const raceEnabled = true
