package plan

import (
	"math"
	"testing"

	"polymer/internal/bench"
	"polymer/internal/gen"
	"polymer/internal/mem"
	"polymer/internal/numa"
)

// modelFootprint is the model's own total demand estimate (the sum of
// the three class footprints tierClasses registers), so the tests can
// express DRAM budgets as fractions of exactly what the model places.
func modelFootprint(f Features, d, eb int64) int64 {
	return 4*f.Vertices + f.Vertices*d + 12*f.Vertices + f.Edges*eb
}

func tierCfg(f Features, frac float64, pol numa.TierPolicy, nodes int) numa.TierConfig {
	total := modelFootprint(f, 8, 4)
	b := int64(frac * float64(total) / float64(nodes))
	if b < 1 {
		b = 1
	}
	return numa.TierConfig{DRAMPerNode: b, Policy: pol}
}

// TestPredictTieredFullResidency: a budget covering the whole footprint
// yields a prediction bit-identical to the untiered model — every class
// is fully resident, every slow split exactly zero.
func TestPredictTieredFullResidency(t *testing.T) {
	g, err := gen.Load(gen.PowerLaw, gen.Tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	f := Profile(g)
	topo := numa.IntelXeon80()
	full := numa.TierConfig{DRAMPerNode: 2 * modelFootprint(f, 8, 4), Policy: numa.TierHot}
	for _, alg := range []bench.Algo{bench.PR, bench.BFS} {
		for _, c := range Candidates(alg, 4) {
			base := Predict(f, alg, topo, c, 2)
			got := PredictTiered(f, alg, topo, c, 2, full)
			if math.Float64bits(got) != math.Float64bits(base) {
				t.Errorf("%s/%s: full-residency tiered prediction %v != untiered %v", c, alg, got, base)
			}
		}
	}
}

// TestPredictTieredMonotone: shrinking DRAM can only make the predicted
// clock worse, and every constrained prediction is at least the
// untiered one (the slow tier can only cost more).
func TestPredictTieredMonotone(t *testing.T) {
	g, err := gen.Load(gen.PowerLaw, gen.Tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	f := Profile(g)
	topo := numa.IntelXeon80()
	fracs := []float64{1.5, 0.5, 0.25, 0.1}
	for _, pol := range []numa.TierPolicy{numa.TierHot, numa.TierInterleave} {
		for _, c := range Candidates(bench.PR, 4) {
			base := Predict(f, bench.PR, topo, c, 2)
			prev := -1.0
			for _, frac := range fracs {
				got := PredictTiered(f, bench.PR, topo, c, 2, tierCfg(f, frac, pol, c.Nodes))
				if got < base {
					t.Errorf("%s %s frac=%v: tiered %v < untiered %v", pol, c, frac, got, base)
				}
				if prev >= 0 && got < prev {
					t.Errorf("%s %s frac=%v: prediction %v improved when DRAM shrank (was %v)", pol, c, frac, got, prev)
				}
				prev = got
			}
		}
	}
}

// TestPredictTieredHotBeatsInterleave: on a skewed graph with half the
// footprint in DRAM, the hot-vertex policy's predictions must beat the
// uniform-interleave baseline — degree-ranked residency concentrates
// the access mass on the resident bytes, which is the whole reason the
// policy exists and exactly what the bench tier sweep measures.
func TestPredictTieredHotBeatsInterleave(t *testing.T) {
	g, err := gen.Load(gen.PowerLaw, gen.Tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	f := Profile(g)
	topo := numa.IntelXeon80()
	for _, alg := range []bench.Algo{bench.PR, bench.BFS} {
		c := Candidate{Engine: bench.Polymer, Placement: mem.CoLocated, Nodes: 4}
		hot := PredictTiered(f, alg, topo, c, 2, tierCfg(f, 0.5, numa.TierHot, c.Nodes))
		il := PredictTiered(f, alg, topo, c, 2, tierCfg(f, 0.5, numa.TierInterleave, c.Nodes))
		if hot >= il {
			t.Errorf("%s: hot policy predicted %v, interleave %v — hot-vertex placement must win on a skewed graph", alg, hot, il)
		}
	}
}

// TestResolveTieredCacheDistinct: a tiered query must not collide with
// the untiered cache entry for the same features, and the tiered
// decision's raw costs must reflect the constrained machine.
func TestResolveTieredCacheDistinct(t *testing.T) {
	g, err := gen.Load(gen.PowerLaw, gen.Tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	f := Profile(g)
	p := New(numa.IntelXeon80(), 2)
	plain := p.Resolve(Query{Features: f, Alg: bench.PR, Nodes: 4})
	tiered := p.Resolve(Query{Features: f, Alg: bench.PR, Nodes: 4,
		Tier: tierCfg(f, 0.25, numa.TierHot, 4)})
	if plain == tiered {
		t.Fatal("tiered query returned the untiered cached decision")
	}
	if tiered.Raw < plain.Raw {
		t.Errorf("tiered pick raw cost %v below untiered %v", tiered.Raw, plain.Raw)
	}
	again := p.Resolve(Query{Features: f, Alg: bench.PR, Nodes: 4,
		Tier: tierCfg(f, 0.25, numa.TierHot, 4)})
	if again != tiered {
		t.Error("identical tiered query missed the decision cache")
	}
}
