package plan

import (
	"testing"

	"polymer/internal/bench"
	"polymer/internal/gen"
	"polymer/internal/mem"
	"polymer/internal/numa"
)

// TestWidthOrderingAdversarial is the regression gate for the planner's
// width ordering on degenerate shapes. The seed model split a
// traversal's edge work uniformly across threads, so it predicted
// wide-wins on a star (where the hub's CSR row serializes everything
// and barriers dominate, so narrow truly wins) and missed the
// per-superstep dense scans on a path (where every level crosses the
// dense threshold and narrow truly loses). For each decisive shape the
// RAW prediction's width argmin must match the measured one — raw, not
// the planner's margined pick, because the deviation margin could mask
// a re-inverted model at the widths the margin happens to favour.
//
// Shapes where the measured width deltas are nanosecond-scale near-ties
// (star-in: the source never reaches the hub's in-edges, so there is no
// work to order) are deliberately excluded: asserting an argmin over
// noise-level deltas would pin model behaviour the simulator does not
// distinguish.
func TestWidthOrderingAdversarial(t *testing.T) {
	topo := numa.IntelXeon80()
	const cores = 2
	widths := []int{4, 2, 1}

	shapes := map[string]gen.Named{}
	for _, a := range gen.Adversarial() {
		shapes[a.Name] = a
	}

	native := func(sys bench.System) mem.Placement {
		if sys == bench.Polymer {
			return mem.CoLocated
		}
		return mem.Interleaved
	}

	cases := []struct {
		shape string
		alg   bench.Algo
	}{
		// Star: one hub row serializes the traversal; width buys nothing
		// and barrier growth makes it a loss.
		{"star-out", bench.BFS},
		{"star-out", bench.SSSP},
		// Path: every level is dense (frontier edges > |E|/20), so each
		// superstep scans the whole vertex set — width genuinely helps.
		{"path", bench.BFS},
		// Cycle above the dense threshold stays sparse: diameter-many
		// barrier rounds dominate and narrow wins.
		{"cycle-65", bench.BFS},
	}

	for _, tc := range cases {
		a, ok := shapes[tc.shape]
		if !ok {
			t.Fatalf("adversarial corpus lost shape %q", tc.shape)
		}
		e := CorpusEntry{Name: a.Name, N: a.N, E: a.Edges}
		g := BuildGraph(e, tc.alg)
		f := Profile(g)
		for _, sys := range []bench.System{bench.Polymer, bench.Ligra} {
			t.Run(tc.shape+"/"+string(tc.alg)+"/"+string(sys), func(t *testing.T) {
				pl := native(sys)
				var predBest, simBest int
				var predMin, simMin float64
				for i, w := range widths {
					c := Candidate{Engine: sys, Placement: pl, Nodes: w}
					pred := Predict(f, tc.alg, topo, c, cores)
					m := numa.NewMachine(topo, w, cores)
					r, err := bench.RunPlacedFrom(sys, tc.alg, g, m, 0, pl)
					if err != nil {
						t.Fatalf("w=%d: %v", w, err)
					}
					t.Logf("w=%d pred=%.4gs sim=%.4gs", w, pred, r.SimSeconds)
					if i == 0 || pred < predMin {
						predMin, predBest = pred, w
					}
					if i == 0 || r.SimSeconds < simMin {
						simMin, simBest = r.SimSeconds, w
					}
				}
				if predBest != simBest {
					t.Errorf("width ordering inverted: model prefers %d nodes, simulator %d", predBest, simBest)
				}
			})
		}
	}
}
