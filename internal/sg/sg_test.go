package sg

import (
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/state"
)

func TestHintsNormalize(t *testing.T) {
	h := Hints{}.Normalize()
	if h.DataBytes != 8 || h.NsPerEdge != 1 {
		t.Fatalf("defaults wrong: %+v", h)
	}
	h = Hints{DataBytes: 16, NsPerEdge: 3.5, Weighted: true}.Normalize()
	if h.DataBytes != 16 || h.NsPerEdge != 3.5 || !h.Weighted {
		t.Fatalf("explicit values must survive: %+v", h)
	}
}

func TestActiveDegree(t *testing.T) {
	n, edges := gen.Star(10) // vertex 0 has out-degree 9
	g := graph.FromEdges(n, edges, false)
	bounds := []int{0, 5, 10}

	all := state.NewAll(bounds)
	if got := ActiveDegree(g, all); got != 9 {
		t.Fatalf("ActiveDegree(all) = %d, want 9", got)
	}
	leaves := state.FromVertices(bounds, []graph.Vertex{3, 7})
	if got := ActiveDegree(g, leaves); got != 0 {
		t.Fatalf("ActiveDegree(leaves) = %d, want 0", got)
	}
	hub := state.NewSingle(bounds, 0)
	if got := ActiveDegree(g, hub); got != 9 {
		t.Fatalf("ActiveDegree(hub) = %d, want 9", got)
	}
}
