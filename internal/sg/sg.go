// Package sg defines the scatter-gather programming interface shared by
// the vertex-centric engines (Polymer and the Ligra baseline): the
// EdgeMap/VertexMap model of the paper's Section 4.1, inherited from
// Ligra. Algorithms are written once against these interfaces and run
// unchanged on either engine.
package sg

import (
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/state"
)

// EdgeKernel is the application-defined edge function F passed to EdgeMap.
// Update is called in pull mode when the engine guarantees a single writer
// per destination; UpdateAtomic is called when destinations may be updated
// concurrently (push mode, and Polymer's factored pull). Both return true
// if the destination should join the next frontier. Cond is the
// destination filter: once it returns false the destination needs no
// further updates (e.g. an already-visited BFS vertex).
type EdgeKernel interface {
	Update(s, d graph.Vertex, w float32) bool
	UpdateAtomic(s, d graph.Vertex, w float32) bool
	Cond(d graph.Vertex) bool
}

// VertexFunc is the application-defined vertex function passed to
// VertexMap; it returns true if v should remain in the returned subset.
type VertexFunc func(v graph.Vertex) bool

// Hints carries per-algorithm cost and mode information the engines use
// for charging and mode selection.
type Hints struct {
	// DataBytes is the size of the application-defined per-vertex datum
	// touched on each endpoint access (8 for PR's float64 ranks). Zero
	// means 8.
	DataBytes int
	// NsPerEdge is the algorithm's arithmetic cost per edge in
	// nanoseconds, charged as compute time on top of the engine's own
	// software overhead. Zero means 1.
	NsPerEdge float64
	// DensePush selects push as the dense-mode direction (the paper uses
	// push-based PR); when false, dense iterations pull.
	DensePush bool
	// Weighted tells the engine to stream edge weights (SpMV, SSSP, BP).
	Weighted bool
	// NoOutput tells the engine the caller discards the returned frontier
	// (PR, SpMV, BP iterate a fixed full frontier), so it may skip
	// building one and return the empty subset. Charged traffic is
	// unchanged — only host-side frontier bookkeeping is elided.
	NoOutput bool
}

// Normalize fills in defaults.
func (h Hints) Normalize() Hints {
	if h.DataBytes == 0 {
		h.DataBytes = 8
	}
	if h.NsPerEdge == 0 {
		h.NsPerEdge = 1
	}
	return h
}

// Engine is the scatter-gather engine contract. Implementations execute
// real parallel computation over worker goroutines while charging their
// classified memory traffic to the simulated NUMA machine.
type Engine interface {
	// Graph returns the input graph.
	Graph() *graph.Graph
	// Machine returns the simulated machine.
	Machine() *numa.Machine
	// Bounds returns the vertex partition offsets used for state leaves.
	Bounds() []int
	// EdgeMap applies k to every edge whose source is in a, returning the
	// set of destinations for which an update returned true.
	EdgeMap(a *state.Subset, k EdgeKernel, h Hints) *state.Subset
	// VertexMap applies f to every vertex in a, returning those for which
	// f returned true.
	VertexMap(a *state.Subset, f VertexFunc) *state.Subset
	// NewData allocates a per-vertex float64 array with the engine's
	// native placement policy.
	NewData(label string) *mem.Array[float64]
	// NewData32 allocates a per-vertex uint32 array (labels, parents).
	NewData32(label string) *mem.Array[uint32]
	// SimSeconds returns the accumulated simulated runtime.
	SimSeconds() float64
	// RunStats returns the accumulated access statistics (Table 4).
	RunStats() numa.Stats
	// ThreadSeconds returns per-thread simulated busy time (Figure 11b).
	ThreadSeconds() []float64
	// Err returns the first execution failure (worker panic, offline
	// node, allocation failure), or nil. After a failure, EdgeMap and
	// VertexMap are no-ops returning empty subsets and charging nothing
	// until ClearErr.
	Err() error
	// ClearErr resets the failure so a rolled-back step can be replayed.
	ClearErr()
	// Close releases the engine's workers and simulated allocations.
	Close()
}

// ActiveDegree sums the out-degrees of the subset's vertices; engines use
// it for the adaptive dense/sparse decision.
//
// Frontiers produced by state.Builder carry the sum already (accumulated
// per thread while the frontier was built), so the common case is a cached
// field read. A full frontier needs no scan either — its degree sum is the
// edge count. Anything else pays one scan, memoized on the subset so
// repeated EdgeMaps over the same frontier (PageRank's persistent "all"
// set) stay O(1).
func ActiveDegree(g *graph.Graph, a *state.Subset) int64 {
	if d, ok := a.Degree(); ok {
		return d
	}
	var sum int64
	if a.Count() == int64(g.NumVertices()) {
		sum = g.NumEdges()
	} else {
		a.ForEach(func(v graph.Vertex) { sum += g.OutDegree(v) })
	}
	a.SetDegree(sum)
	return sum
}
