package sg

import (
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/state"
)

// TestActiveDegreeMemoizes: the first call scans (or shortcuts) and
// records the sum on the subset; the second call must serve the cached
// value, including for the empty subset, whose legitimate sum of 0 must
// not be confused with "unknown".
func TestActiveDegreeMemoizes(t *testing.T) {
	n, edges := gen.Star(12)
	g := graph.FromEdges(n, edges, false)
	bounds := []int{0, 6, 12}

	for _, tc := range []struct {
		name string
		s    *state.Subset
		want int64
	}{
		{"all", state.NewAll(bounds), g.NumEdges()},
		{"empty", state.NewEmpty(bounds), 0},
		{"hub", state.NewSingle(bounds, 0), 11},
		{"leaves", state.FromVertices(bounds, []graph.Vertex{2, 9}), 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := tc.s.Degree(); ok && tc.name != "empty" && tc.name != "leaves" {
				// NewAll/NewSingle construct with an unknown degree; the
				// sparse builders may legitimately have accumulated one.
				t.Fatalf("degree unexpectedly cached before first use")
			}
			if got := ActiveDegree(g, tc.s); got != tc.want {
				t.Fatalf("ActiveDegree = %d, want %d", got, tc.want)
			}
			cached, ok := tc.s.Degree()
			if !ok || cached != tc.want {
				t.Fatalf("after ActiveDegree: cached=(%d,%v), want (%d,true)", cached, ok, tc.want)
			}
			if got := ActiveDegree(g, tc.s); got != tc.want {
				t.Fatalf("second ActiveDegree = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestActiveDegreeTrustsCache: ActiveDegree is a cache, not a validator —
// a deliberately poisoned SetDegree value must be returned as-is. (The
// conformance suite's degree-cache invariant is what checks cached
// values against rescans; this pins the contract that makes that check
// meaningful.)
func TestActiveDegreeTrustsCache(t *testing.T) {
	n, edges := gen.Chain(8)
	g := graph.FromEdges(n, edges, false)
	bounds := []int{0, 8}
	s := state.NewSingle(bounds, 0)
	s.SetDegree(1 << 40)
	if got := ActiveDegree(g, s); got != 1<<40 {
		t.Fatalf("ActiveDegree must serve the cached value, got %d", got)
	}
}

// TestActiveDegreeFullFrontierShortcut: the all-active subset must
// resolve to NumEdges without scanning — observable on a graph where a
// scan and the shortcut agree, with the shortcut also memoized.
func TestActiveDegreeFullFrontierShortcut(t *testing.T) {
	n, edges := gen.Cycle(64)
	g := graph.FromEdges(n, edges, false)
	bounds := []int{0, 64}
	all := state.NewAll(bounds)
	if got := ActiveDegree(g, all); got != g.NumEdges() {
		t.Fatalf("full frontier degree = %d, want %d", got, g.NumEdges())
	}
	if cached, ok := all.Degree(); !ok || cached != g.NumEdges() {
		t.Fatalf("shortcut not memoized: (%d,%v)", cached, ok)
	}
}
