// The deterministic inter-machine network: every machine pair is one
// full-duplex link that a fault can cut or degrade. Logical transfers
// are routed over surviving links (shortest hop path, lowest machine id
// breaking ties) and charged per traversed segment — a relayed byte
// costs every hop it crosses, the cluster analogue of the NUMA ledger's
// hop-level pricing.

package cluster

// network tracks link state and per-round / cumulative byte ledgers.
// It is only mutated single-threaded (between phases and rounds), so it
// needs no locking.
type network struct {
	n    int
	cost NetCost
	// up and factor are symmetric link state: up[i][j] false means the
	// link is cut; factor scales bandwidth (1 = healthy).
	up     [][]bool
	factor [][]float64
	// round and cum are directed per-segment byte ledgers; round resets
	// at commit (or discard on rollback).
	round [][]float64
	cum   [][]float64
	// maxHops is the longest route used this round, for the latency term.
	maxHops int

	// scratch for BFS routing.
	prev  []int
	queue []int
}

func newNetwork(n int, cost NetCost) *network {
	nw := &network{n: n, cost: cost, prev: make([]int, n), queue: make([]int, 0, n)}
	mk := func() [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
		}
		return m
	}
	nw.round, nw.cum = mk(), mk()
	nw.factor = mk()
	nw.up = make([][]bool, n)
	for i := range nw.up {
		nw.up[i] = make([]bool, n)
		for j := range nw.up[i] {
			nw.up[i][j] = i != j
			nw.factor[i][j] = 1
		}
	}
	return nw
}

// cut severs the a-b link (both directions, permanently).
func (nw *network) cut(a, b int) {
	nw.up[a][b], nw.up[b][a] = false, false
}

// degrade multiplies the a-b link bandwidth by f (both directions).
func (nw *network) degrade(a, b int, f float64) {
	if f <= 0 {
		f = 0.01
	}
	nw.factor[a][b] *= f
	nw.factor[b][a] *= f
}

// route finds the shortest up-link path between two live machines,
// writing it into nw.prev. It returns the hop count, or -1 if
// unreachable. Neighbors are visited in id order, so the chosen path is
// deterministic.
func (nw *network) route(from, to int, alive []bool) int {
	if from == to {
		return 0
	}
	for i := range nw.prev {
		nw.prev[i] = -1
	}
	nw.prev[from] = from
	nw.queue = nw.queue[:0]
	nw.queue = append(nw.queue, from)
	for qi := 0; qi < len(nw.queue); qi++ {
		u := nw.queue[qi]
		for v := 0; v < nw.n; v++ {
			if nw.prev[v] >= 0 || !nw.up[u][v] || !alive[v] {
				continue
			}
			nw.prev[v] = u
			if v == to {
				hops := 0
				for w := to; w != from; w = nw.prev[w] {
					hops++
				}
				return hops
			}
			nw.queue = append(nw.queue, v)
		}
	}
	return -1
}

// reachable reports whether two live machines can talk this round.
func (nw *network) reachable(from, to int, alive []bool) bool {
	return alive[from] && alive[to] && nw.route(from, to, alive) >= 0
}

// transfer charges bytes along the from->to route, per traversed
// segment. It reports false (charging nothing) if no route exists.
func (nw *network) transfer(from, to int, bytes float64, alive []bool) bool {
	if from == to || bytes <= 0 {
		return true
	}
	hops := nw.route(from, to, alive)
	if hops < 0 {
		return false
	}
	for w := to; w != from; w = nw.prev[w] {
		nw.round[nw.prev[w]][w] += bytes
	}
	if hops > nw.maxHops {
		nw.maxHops = hops
	}
	return true
}

// component returns the primary component among live machines: the
// largest connected one, with ties broken toward the component holding
// the lowest machine id (quorum by size, deterministic). Dead machines
// are never members.
func (nw *network) component(alive []bool) []bool {
	best := make([]bool, nw.n)
	bestSize := 0
	seen := make([]bool, nw.n)
	for root := 0; root < nw.n; root++ {
		if !alive[root] || seen[root] {
			continue
		}
		comp := make([]bool, nw.n)
		comp[root], seen[root] = true, true
		size := 1
		nw.queue = nw.queue[:0]
		nw.queue = append(nw.queue, root)
		for qi := 0; qi < len(nw.queue); qi++ {
			u := nw.queue[qi]
			for v := 0; v < nw.n; v++ {
				if !comp[v] && alive[v] && nw.up[u][v] {
					comp[v], seen[v] = true, true
					size++
					nw.queue = append(nw.queue, v)
				}
			}
		}
		// Scanning roots in id order makes ">" prefer the lowest-id
		// component on equal size.
		if size > bestSize {
			best, bestSize = comp, size
		}
	}
	return best
}

// roundSeconds prices the round's network phase: links drain in
// parallel, so the phase lasts as long as the most loaded segment, plus
// per-hop latency for the deepest route used.
func (nw *network) roundSeconds() float64 {
	var slowest float64
	for i := range nw.round {
		for j, b := range nw.round[i] {
			if b <= 0 {
				continue
			}
			if s := b / (nw.cost.MBps * 1e6 * nw.factor[i][j]); s > slowest {
				slowest = s
			}
		}
	}
	if slowest > 0 {
		slowest += nw.cost.LatencySec * float64(nw.maxHops)
	}
	return slowest
}

// roundBytesFrom sums the bytes machine `from` put on the wire this
// round (first segment of every route it originated or relayed).
func (nw *network) roundBytesFrom(from int) float64 {
	var s float64
	for _, b := range nw.round[from] {
		s += b
	}
	return s
}

// commitRound folds the round ledger into the cumulative one.
func (nw *network) commitRound() {
	for i := range nw.round {
		for j, b := range nw.round[i] {
			nw.cum[i][j] += b
			nw.round[i][j] = 0
		}
	}
	nw.maxHops = 0
}

// discardRound drops the round ledger (rollback path).
func (nw *network) discardRound() {
	for i := range nw.round {
		for j := range nw.round[i] {
			nw.round[i][j] = 0
		}
	}
	nw.maxHops = 0
}

// cumLinks returns a copy of the cumulative per-segment matrix.
func (nw *network) cumLinks() [][]float64 {
	out := make([][]float64, nw.n)
	for i := range out {
		out[i] = append([]float64(nil), nw.cum[i]...)
	}
	return out
}
