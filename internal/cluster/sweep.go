// The cluster scaling sweep — the Figure-4 experiment lifted one level:
// instead of cores × sockets on one machine, whole simulated machines
// joined by the network cost model, run at graph sizes a single box in
// this suite never serves (gen.Huge, 4x the Default evaluation size).

package cluster

import (
	"context"
	"fmt"
	"strings"

	"polymer/internal/graph"
	"polymer/internal/numa"
)

// SweepPoint is one (algo, machine count) cell of the sweep.
type SweepPoint struct {
	Machines   int
	SimSeconds float64
	Speedup    float64 // vs the sweep's smallest machine count
	Supersteps int
	NetBytes   float64
	Failovers  int
}

// SweepRow is one algorithm's scaling line plus the traffic evidence
// from its largest run (Out dropped — the sweep keeps checksums only).
type SweepRow struct {
	Algo     Algo
	Checksum float64
	Points   []SweepPoint
	// Largest is the Result of the biggest machine count, with Out
	// stripped: its Links and extended Traffic matrix are the per-link
	// evidence the sweep reports.
	Largest *Result
}

// Sweep runs each algorithm across the machine counts on one graph.
// Every cell must agree on the checksum — a mismatch is a correctness
// bug, reported as an error rather than a slow data point.
func Sweep(ctx context.Context, g *graph.Graph, base Config, algos []Algo, machines []int, src graph.Vertex) ([]SweepRow, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("cluster: empty machine-count sweep")
	}
	rows := make([]SweepRow, 0, len(algos))
	for _, a := range algos {
		row := SweepRow{Algo: a}
		var baseSim float64
		for i, mc := range machines {
			cfg := base
			cfg.Machines = mc
			cl, err := New(g, cfg)
			if err != nil {
				return nil, fmt.Errorf("cluster: sweep %s@%d: %w", a, mc, err)
			}
			res, err := cl.Run(ctx, a, src)
			if err != nil {
				return nil, fmt.Errorf("cluster: sweep %s@%d: %w", a, mc, err)
			}
			if i == 0 {
				baseSim = res.SimSeconds
				row.Checksum = res.Checksum
			} else if res.Checksum != row.Checksum {
				return nil, fmt.Errorf("cluster: sweep %s@%d: checksum %g diverges from %g at %d machines",
					a, mc, res.Checksum, row.Checksum, machines[0])
			}
			pt := SweepPoint{
				Machines:   mc,
				SimSeconds: res.SimSeconds,
				Supersteps: res.Supersteps,
				NetBytes:   res.NetBytes,
				Failovers:  res.Failovers,
			}
			if res.SimSeconds > 0 {
				pt.Speedup = baseSim / res.SimSeconds
			}
			row.Points = append(row.Points, pt)
			if i == len(machines)-1 {
				res.Out = nil
				row.Largest = res
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSweep renders the sweep as an aligned table.
func FormatSweep(title string, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s %9s %12s %9s %7s %10s %10s\n",
		"algo", "machines", "sim(s)", "speedup", "steps", "net(MB)", "failovers")
	for _, row := range rows {
		for _, pt := range row.Points {
			fmt.Fprintf(&b, "%-6s %9d %12.4f %9.2fx %7d %10.2f %10d\n",
				row.Algo, pt.Machines, pt.SimSeconds, pt.Speedup,
				pt.Supersteps, pt.NetBytes/1e6, pt.Failovers)
		}
	}
	return b.String()
}

// FormatLinks renders a cumulative per-link byte matrix (MB, rows =
// sender) — the wire half of the traffic evidence.
func FormatLinks(links [][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-link traffic (MB sent, row -> column)\n%8s", "")
	for j := range links {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("m%d", j))
	}
	b.WriteByte('\n')
	for i, row := range links {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("m%d", i))
		for _, bytes := range row {
			fmt.Fprintf(&b, " %8.2f", bytes/1e6)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTraffic renders the extended machine × hop-level matrix; the
// final level is the wire.
func FormatTraffic(tm *numa.TrafficMatrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "traffic by machine × hop level (MB; last level = network)\n%8s", "")
	for l := 0; l < tm.Levels; l++ {
		name := fmt.Sprintf("hop%d", l)
		if l == tm.Levels-1 {
			name = "wire"
		}
		fmt.Fprintf(&b, " %10s", name)
	}
	b.WriteByte('\n')
	for n := 0; n < tm.Nodes; n++ {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("m%d", n))
		for l := 0; l < tm.Levels; l++ {
			fmt.Fprintf(&b, " %10.2f", (tm.At(n, l, numa.Seq)+tm.At(n, l, numa.Rand))/1e6)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SweepGraphLabel names the sweep input for titles.
func SweepGraphLabel(name string, g *graph.Graph) string {
	return fmt.Sprintf("cluster sweep: %s (n=%d, m=%d)", name, g.NumVertices(), g.NumEdges())
}
