// The sharded kernels. Each is written so the committed values are a
// pure function of the previous round's committed state, independent of
// machine count, replica placement, goroutine scheduling and fault
// history:
//
//   - PageRank pulls: next[v] = (1-d)/n + d * Σ curr[u]*invOut[u] over
//     InNeighbors(v) in CSR order — the exact float expression the
//     sequential oracle evaluates, so the answer is bit-identical for
//     any cluster shape.
//   - BFS/SSSP push min-combine: every candidate dist[u]+w(u,v) is a sum
//     along a path, and min over floats is order-independent, so the
//     fixed point matches the oracle bit for bit.
//
// Charging follows the ledger discipline: sequential streams (edge
// lists, frontier scans, shard rewrites) and random element accesses
// (gather reads, min-combine updates) go to each machine's round epoch;
// cross-machine element flows are counted per (src, dst) machine and
// priced onto network links after the barrier.

package cluster

import (
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/partition"
)

// edgeWeight mirrors the engines' convention: an absent or explicit-zero
// weight traverses at unit cost.
func edgeWeight(w float32) float64 {
	if w == 0 {
		return 1
	}
	return float64(w)
}

// prPhase runs one pull-mode PageRank round for machine mi's shards.
// Remote rank reads are counted per owning machine and priced as network
// pulls after the barrier.
func (c *Cluster) prPhase(mi int, owned []int) {
	m := c.ms[mi]
	threads := m.mach.Threads()
	local := c.scratchLocal[mi]
	remote := c.scratchRemote[mi]
	n := c.g.NumVertices()
	ws := int64(n) * 8
	// base must be computed with runtime float64 subtraction, exactly as
	// the oracle does: folding 1-0.85 in untyped constant arithmetic
	// rounds differently (1 ULP) and breaks bit-identity.
	damping := float64(prDamping)
	base := (1 - damping) / float64(n)
	for _, si := range owned {
		rng := c.shards[si].rng
		if rng.Len() == 0 {
			continue
		}
		for th, ch := range partition.VertexBalanced(rng.Len(), threads) {
			if ch.Len() == 0 {
				continue
			}
			lo, hi := rng.Lo+ch.Lo, rng.Lo+ch.Hi
			node := m.mach.NodeOfThread(th)
			for v := lo; v < hi; v++ {
				var sum float64
				for _, u := range c.g.InNeighbors(graph.Vertex(v)) {
					sum += c.curr[u] * c.invOut[u]
					if om := int(c.owner[c.vertexShard[u]]); om == mi {
						local[c.vertexNode[u]]++
					} else {
						remote[om]++
					}
				}
				c.next[v] = base + damping*sum
			}
			// In-edge stream and the shard's next-rank rewrite are
			// sequential; locally owned rank gathers are random reads
			// against the full rank vector.
			m.round.Access(th, numa.Seq, numa.Load, node, c.g.InIndex[hi]-c.g.InIndex[lo], 4, 0)
			m.round.Access(th, numa.Seq, numa.Store, node, int64(hi-lo), 8, 0)
			for nd, cnt := range local {
				if cnt > 0 {
					m.round.Access(th, numa.Rand, numa.Load, nd, cnt, 8, ws)
					local[nd] = 0
				}
			}
		}
	}
}

// scatterPhase runs the push half of a BFS/SSSP round for machine mi:
// walk the owned frontier, relax local targets in place, and buffer
// updates for remote owners.
func (c *Cluster) scatterPhase(alg Algo, mi int, owned []int) {
	m := c.ms[mi]
	threads := m.mach.Threads()
	local := c.scratchLocal[mi]
	msgs := c.msgs[mi]
	n := c.g.NumVertices()
	ws := int64(n) * 8
	for _, si := range owned {
		rng := c.shards[si].rng
		if rng.Len() == 0 {
			continue
		}
		for th, ch := range partition.VertexBalanced(rng.Len(), threads) {
			if ch.Len() == 0 {
				continue
			}
			lo, hi := rng.Lo+ch.Lo, rng.Lo+ch.Hi
			node := m.mach.NodeOfThread(th)
			var edges int64
			for v := lo; v < hi; v++ {
				if c.active[v] == 0 {
					continue
				}
				dv := c.curr[v]
				vv := graph.Vertex(v)
				nbrs := c.g.OutNeighbors(vv)
				var wts []float32
				if alg == SSSP {
					wts = c.g.OutWeights(vv)
				}
				edges += int64(len(nbrs))
				for j, u := range nbrs {
					cand := dv + 1
					if wts != nil {
						cand = dv + edgeWeight(wts[j])
					}
					if om := int(c.owner[c.vertexShard[u]]); om == mi {
						if cand < c.next[u] {
							c.next[u] = cand
							c.nextActive[u] = 1
						}
						local[c.vertexNode[u]]++
					} else {
						msgs[om].m = append(msgs[om].m, msg{v: u, val: cand})
					}
				}
			}
			// Frontier scan reads flags + distances sequentially; the
			// edge (and weight) stream is sequential; local relaxations
			// are random element updates against the distance vector.
			m.round.Access(th, numa.Seq, numa.Load, node, int64(hi-lo), 12, 0)
			if edges > 0 {
				wb := 4
				if alg == SSSP {
					wb = 8
				}
				m.round.Access(th, numa.Seq, numa.Load, node, edges, wb, 0)
			}
			for nd, cnt := range local {
				if cnt > 0 {
					m.round.Access(th, numa.Rand, numa.Store, nd, cnt, 8, ws)
					local[nd] = 0
				}
			}
		}
	}
}

// applyPhase drains the push updates addressed to machine mi's shards
// after the scatter barrier. One core per target node performs the
// min-combines — random element updates on the owning node.
func (c *Cluster) applyPhase(mi int) {
	m := c.ms[mi]
	local := c.scratchLocal[mi]
	n := c.g.NumVertices()
	ws := int64(n) * 8
	for from := range c.msgs {
		for _, mg := range c.msgs[from][mi].m {
			if mg.val < c.next[mg.v] {
				c.next[mg.v] = mg.val
				c.nextActive[mg.v] = 1
			}
			local[c.vertexNode[mg.v]]++
		}
	}
	for nd, cnt := range local {
		if cnt > 0 {
			m.round.Access(nd*m.mach.CoresPerNode, numa.Rand, numa.Store, nd, cnt, 12, ws)
			local[nd] = 0
		}
	}
}
