package cluster

import (
	"context"
	"math"
	"testing"

	"polymer/internal/fault"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/obs"
)

func testGraph(t testing.TB, name gen.Dataset, weighted bool) *graph.Graph {
	t.Helper()
	g, err := gen.Load(name, gen.Tiny, weighted)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return g
}

func run(t testing.TB, g *graph.Graph, cfg Config, alg Algo, src graph.Vertex) *Result {
	t.Helper()
	cl, err := New(g, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := cl.Run(context.Background(), alg, src)
	if err != nil {
		t.Fatalf("Run(%s): %v", alg, err)
	}
	return res
}

// bitIdentical fails unless two outputs match bit for bit.
func bitIdentical(t *testing.T, what string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", what, len(want), len(got))
	}
	for v := range want {
		if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
			t.Fatalf("%s: vertex %d: want %v (%#x), got %v (%#x)",
				what, v, want[v], math.Float64bits(want[v]), got[v], math.Float64bits(got[v]))
		}
	}
}

// TestMachineCountInvariance: the committed answer must not depend on
// how many machines the graph is sharded across, for any kernel.
func TestMachineCountInvariance(t *testing.T) {
	for _, alg := range Algos() {
		g := testGraph(t, gen.RMat24, alg.Weighted())
		base := run(t, g, Config{Machines: 1}, alg, 3)
		for _, mc := range []int{2, 3, 4, 7} {
			res := run(t, g, Config{Machines: mc, Replicas: 2}, alg, 3)
			bitIdentical(t, string(alg), base.Out, res.Out)
			if res.SimSeconds <= 0 {
				t.Fatalf("%s@%d: no simulated time charged", alg, mc)
			}
			if mc > 1 && res.NetBytes == 0 {
				t.Fatalf("%s@%d: no network traffic charged", alg, mc)
			}
		}
	}
}

// TestPreferReplicaPlacement: a hedged run starting every shard on its
// replica must answer bit-identically (only the charged placement moves).
func TestPreferReplicaPlacement(t *testing.T) {
	g := testGraph(t, gen.PowerLaw, false)
	a := run(t, g, Config{Machines: 4, Replicas: 2}, PR, 0)
	b := run(t, g, Config{Machines: 4, Replicas: 2, PreferReplica: true}, PR, 0)
	bitIdentical(t, "pr", a.Out, b.Out)
	for i, m := range b.Machines {
		for _, si := range m.Shards {
			if si == i {
				t.Fatalf("machine %d still owns its home shard under PreferReplica", i)
			}
		}
	}
}

// TestFailoverRecovers: crash a machine and require a failover, the
// fault-free answer, and a crashed entry in the health report.
func TestFailoverRecovers(t *testing.T) {
	g := testGraph(t, gen.Twitter, false)
	want := run(t, g, Config{Machines: 4}, PR, 0)
	ev := []*fault.ClusterEvent{{Kind: fault.MachineCrash, Step: 1, Machine: 2}}
	res := run(t, g, Config{Machines: 4, Replicas: 2, Events: ev}, PR, 0)
	bitIdentical(t, "pr", want.Out, res.Out)
	if res.Failovers == 0 {
		t.Fatal("crash caused no failover")
	}
	if res.Machines[2].State != "crashed" {
		t.Fatalf("machine 2 state = %s, want crashed", res.Machines[2].State)
	}
	if len(res.Machines[2].Shards) != 0 {
		t.Fatalf("crashed machine still owns shards %v", res.Machines[2].Shards)
	}
	if len(res.Protocol) == 0 {
		t.Fatal("no protocol log for a crash round")
	}
}

// TestCrashDuringFailoverNeedsThreeReplicas: with R=3 the second hop
// succeeds; with R=2 losing both copies must be a hard, explicit error.
func TestCrashDuringFailoverNeedsThreeReplicas(t *testing.T) {
	g := testGraph(t, gen.Twitter, false)
	want := run(t, g, Config{Machines: 4}, PR, 0)
	ev := func() []*fault.ClusterEvent {
		return []*fault.ClusterEvent{{Kind: fault.CrashDuringFailover, Step: 1, Machine: 0}}
	}
	res := run(t, g, Config{Machines: 4, Replicas: 3, Events: ev()}, PR, 0)
	bitIdentical(t, "pr", want.Out, res.Out)
	if res.Failovers < 1 {
		t.Fatal("no failover recorded")
	}
	crashed := 0
	for _, m := range res.Machines {
		if m.State == "crashed" {
			crashed++
		}
	}
	if crashed != 2 {
		t.Fatalf("crashed machines = %d, want 2 (original + failover target)", crashed)
	}

	cl, err := New(g, Config{Machines: 2, Replicas: 2, Events: ev()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := cl.Run(context.Background(), PR, 0); err == nil {
		t.Fatal("R=2 crash-during-failover lost every replica but Run returned nil error")
	}
}

// TestLinkPartitionIsolatesMinority: cutting every link of one machine
// must isolate it and fail its shard over, not hang or diverge.
func TestLinkPartitionIsolatesMinority(t *testing.T) {
	g := testGraph(t, gen.Twitter, false)
	want := run(t, g, Config{Machines: 3}, BFS, 1)
	var evs []*fault.ClusterEvent
	for _, b := range []int{1, 2} {
		evs = append(evs, &fault.ClusterEvent{Kind: fault.LinkPartition, Step: 1, Machine: 0, MachineB: b})
	}
	res := run(t, g, Config{Machines: 3, Replicas: 2, Events: evs}, BFS, 1)
	bitIdentical(t, "bfs", want.Out, res.Out)
	if res.Machines[0].State != "isolated" {
		t.Fatalf("machine 0 state = %s, want isolated", res.Machines[0].State)
	}
	if len(res.Machines[0].Shards) != 0 {
		t.Fatal("isolated machine still owns shards")
	}
}

// TestSlowLinkChangesClockNotValues: degrading a link slows the run and
// leaves every committed value untouched.
func TestSlowLinkChangesClockNotValues(t *testing.T) {
	g := testGraph(t, gen.RMat24, false)
	clean := run(t, g, Config{Machines: 4}, PR, 0)
	ev := []*fault.ClusterEvent{{Kind: fault.SlowLink, Step: 0, Machine: 0, MachineB: 1, Factor: 0.05}}
	slow := run(t, g, Config{Machines: 4, Events: ev}, PR, 0)
	bitIdentical(t, "pr", clean.Out, slow.Out)
	if slow.SimSeconds <= clean.SimSeconds {
		t.Fatalf("slow link did not slow the run: %g vs %g", slow.SimSeconds, clean.SimSeconds)
	}
	if slow.Failovers != 0 {
		t.Fatal("slow link must not trigger failover")
	}
}

// TestPartitionRouting: cutting a link between two healthy machines
// reroutes traffic through a relay instead of failing anything over.
func TestPartitionRoutingRelays(t *testing.T) {
	g := testGraph(t, gen.RMat24, false)
	ev := []*fault.ClusterEvent{{Kind: fault.LinkPartition, Step: 0, Machine: 0, MachineB: 1}}
	res := run(t, g, Config{Machines: 3, Events: ev}, PR, 0)
	clean := run(t, g, Config{Machines: 3}, PR, 0)
	bitIdentical(t, "pr", clean.Out, res.Out)
	if res.Failovers != 0 {
		t.Fatalf("partition between healthy majority machines caused %d failovers", res.Failovers)
	}
	if res.Links[0][1] != 0 || res.Links[1][0] != 0 {
		t.Fatal("bytes charged on a cut link")
	}
	// The relay (machine 2) must carry strictly more than in the clean
	// run: every m0<->m1 byte now crosses it.
	relayClean := clean.Links[2][0] + clean.Links[2][1]
	relayCut := res.Links[2][0] + res.Links[2][1]
	if relayCut <= relayClean {
		t.Fatalf("relay traffic did not grow: %g vs %g", relayCut, relayClean)
	}
}

// TestTrafficLedger: the extended matrix must carry intra-machine levels
// and the wire level, and agree with the link ledger on wire bytes.
func TestTrafficLedger(t *testing.T) {
	g := testGraph(t, gen.RMat24, false)
	cfg := Config{Machines: 4, Topo: numa.IntelXeon80(), Nodes: 2, Cores: 2}
	res := run(t, g, cfg, PR, 0)
	tm := res.Traffic
	if tm.Nodes != 4 || tm.Levels != numa.IntelXeon80().MaxLevel()+2 {
		t.Fatalf("extended matrix shape %dx%d", tm.Nodes, tm.Levels)
	}
	wire := tm.Levels - 1
	var wireBytes float64
	for m := 0; m < tm.Nodes; m++ {
		wireBytes += tm.At(m, wire, numa.Seq) + tm.At(m, wire, numa.Rand)
	}
	if math.Abs(wireBytes-res.NetBytes) > 1e-6*res.NetBytes {
		t.Fatalf("wire level %g != link ledger %g", wireBytes, res.NetBytes)
	}
	if tm.LevelBytes(0, numa.Seq)+tm.LevelBytes(0, numa.Rand) == 0 {
		t.Fatal("no intra-machine traffic attributed")
	}
	if res.Stats.LocalCount == 0 {
		t.Fatal("merged stats counted no accesses")
	}
}

// TestTracerSupersteps: a tracer must see one superstep event per
// committed round, carrying the extended matrix.
func TestTracerSupersteps(t *testing.T) {
	g := testGraph(t, gen.Twitter, false)
	var sink collectSink
	cfg := Config{Machines: 3, Tracer: obs.New(&sink)}
	res := run(t, g, cfg, PR, 0)
	steps := 0
	for _, ev := range sink.events {
		if ev.Name == "superstep" && ev.Traffic != nil {
			steps++
		}
	}
	if steps != res.Supersteps {
		t.Fatalf("traced %d supersteps, committed %d", steps, res.Supersteps)
	}
}

type collectSink struct{ events []obs.Event }

func (c *collectSink) Emit(ev obs.Event) { c.events = append(c.events, ev) }
func (c *collectSink) Close() error     { return nil }

// TestSweep: the sweep must scale the machine axis with consistent
// checksums and visible network traffic at every multi-machine point.
func TestSweep(t *testing.T) {
	g := testGraph(t, gen.PowerLaw, true)
	rows, err := Sweep(context.Background(), g, Config{Replicas: 2}, Algos(), []int{1, 2, 4}, 0)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row.Points) != 3 {
			t.Fatalf("%s: points = %d", row.Algo, len(row.Points))
		}
		for _, pt := range row.Points[1:] {
			if pt.NetBytes == 0 {
				t.Fatalf("%s@%d: no net bytes", row.Algo, pt.Machines)
			}
		}
		if row.Largest == nil || row.Largest.Traffic == nil {
			t.Fatalf("%s: missing largest-run evidence", row.Algo)
		}
	}
	out := FormatSweep("test sweep", rows)
	if len(out) == 0 {
		t.Fatal("empty sweep table")
	}
	if s := FormatLinks(rows[0].Largest.Links); len(s) == 0 {
		t.Fatal("empty links table")
	}
	if s := FormatTraffic(rows[0].Largest.Traffic); len(s) == 0 {
		t.Fatal("empty traffic table")
	}
}

// TestEdgeShapes: degenerate graphs and configs must not panic.
func TestEdgeShapes(t *testing.T) {
	empty := graph.FromEdges(0, nil, false)
	res := run(t, empty, Config{Machines: 4}, PR, 0)
	if len(res.Out) != 0 || res.Supersteps != 0 {
		t.Fatalf("empty graph: out=%d steps=%d", len(res.Out), res.Supersteps)
	}

	single := graph.FromEdges(1, nil, false)
	res = run(t, single, Config{Machines: 4, Replicas: 4}, BFS, 0)
	if len(res.Out) != 1 || res.Out[0] != 0 {
		t.Fatalf("single vertex BFS: %v", res.Out)
	}

	// More machines than vertices: trailing shards are empty.
	tiny := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	res = run(t, tiny, Config{Machines: 8, Replicas: 3}, BFS, 0)
	wantOut := []float64{0, 1, 2}
	bitIdentical(t, "bfs", wantOut, res.Out)

	// Unreachable vertices keep the sentinel conventions.
	iso := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}}, false)
	res = run(t, iso, Config{Machines: 2}, BFS, 0)
	if res.Out[2] != -1 {
		t.Fatalf("unreachable BFS level = %v, want -1", res.Out[2])
	}
	res = run(t, iso, Config{Machines: 2}, SSSP, 0)
	if !math.IsInf(res.Out[2], 1) {
		t.Fatalf("unreachable SSSP dist = %v, want +Inf", res.Out[2])
	}

	// Bad configs error instead of panicking.
	if _, err := New(tiny, Config{Machines: 2, Nodes: 99}); err == nil {
		t.Fatal("oversized Nodes accepted")
	}
	cl, err := New(tiny, Config{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(context.Background(), Algo("cc"), 0); err == nil {
		t.Fatal("unsupported algorithm accepted")
	}
	cl, _ = New(tiny, Config{Machines: 2})
	if _, err := cl.Run(context.Background(), BFS, 99); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

// TestContextCancel: a cancelled context stops the run between rounds.
func TestContextCancel(t *testing.T) {
	g := testGraph(t, gen.RMat24, false)
	cl, err := New(g, Config{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Run(ctx, PR, 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDeterministicReruns: same config, same graph, same faults — the
// clock, ledger and output must all be identical across runs.
func TestDeterministicReruns(t *testing.T) {
	g := testGraph(t, gen.PowerLaw, true)
	// Six machines, four replicas: the chaos schedule kills at most
	// three machines (crash + crash-during-failover pair), so some
	// replica of every shard always survives.
	evs := fault.ClusterChaos(7, 4, 6)
	evs2 := fault.ClusterChaos(7, 4, 6)
	cfg := Config{Machines: 6, Replicas: 4}
	cfg.Events = evs
	a := run(t, g, cfg, SSSP, 2)
	cfg.Events = evs2
	b := run(t, g, cfg, SSSP, 2)
	bitIdentical(t, "sssp", a.Out, b.Out)
	if a.SimSeconds != b.SimSeconds || a.NetBytes != b.NetBytes || a.Failovers != b.Failovers {
		t.Fatalf("rerun drift: sim %g/%g net %g/%g failovers %d/%d",
			a.SimSeconds, b.SimSeconds, a.NetBytes, b.NetBytes, a.Failovers, b.Failovers)
	}
}
