// The cluster chaos matrix: {machine crash, link partition, slow
// replica, crash-during-failover} × seeds × {bfs, pr, sssp} × both
// topologies, every cell asserting the committed output is bit-identical
// to the single-machine conform oracle. The external test package keeps
// the conform import acyclic (conform itself imports cluster).

package cluster_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"polymer/internal/cluster"
	"polymer/internal/conform"
	"polymer/internal/fault"
	"polymer/internal/gen"
	"polymer/internal/numa"
)

// soakSeeds is the per-kind seed budget; CLUSTER_SOAK_SEEDS raises it
// for the nightly soak, mirroring MUTATE_SOAK_SEEDS.
func soakSeeds(t *testing.T) int {
	s := os.Getenv("CLUSTER_SOAK_SEEDS")
	if s == "" {
		return 4
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		t.Fatalf("CLUSTER_SOAK_SEEDS=%q: want a positive integer", s)
	}
	return n
}

// chaosCell is one matrix coordinate — also the minimized repro: the
// cell's parameters regenerate the failing run exactly.
type chaosCell struct {
	kind     fault.ClusterKind
	seed     uint64
	algo     conform.Algo
	topoName string
	topo     *numa.Topology
	dataset  gen.Dataset
}

func (c chaosCell) String() string {
	return fmt.Sprintf("kind=%s seed=%d algo=%s topo=%s dataset=%s machines=4 replicas=3 steps=2 scale=tiny",
		c.kind, c.seed, c.algo, c.topoName, c.dataset)
}

// failCell fails the test and, when CLUSTER_REPRO_FILE is set (the CI
// soak does), appends the minimized repro line for artifact upload.
func failCell(t *testing.T, cell chaosCell, evs []*fault.ClusterEvent, format string, args ...any) {
	t.Helper()
	line := fmt.Sprintf("%s events=%v: %s", cell, evs, fmt.Sprintf(format, args...))
	if path := os.Getenv("CLUSTER_REPRO_FILE"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			fmt.Fprintln(f, line)
			f.Close()
		}
	}
	t.Fatal(line)
}

func TestChaosMatrix(t *testing.T) {
	seeds := soakSeeds(t)
	topos := []struct {
		name string
		topo *numa.Topology
	}{
		{"intel80", numa.IntelXeon80()},
		{"amd64", numa.AMDOpteron64()},
	}
	algos := []conform.Algo{conform.BFS, conform.PR, conform.SSSP}
	datasets := []gen.Dataset{gen.Twitter, gen.RMat24, gen.PowerLaw}
	for _, kind := range fault.ClusterKinds() {
		for seed := 0; seed < seeds; seed++ {
			for _, algo := range algos {
				for _, tp := range topos {
					cell := chaosCell{
						kind: kind, seed: uint64(seed), algo: algo,
						topoName: tp.name, topo: tp.topo,
						dataset: datasets[seed%len(datasets)],
					}
					t.Run(fmt.Sprintf("%s/seed%d/%s/%s", kind, seed, algo, tp.name), func(t *testing.T) {
						runChaosCell(t, cell)
					})
				}
			}
		}
	}
}

func runChaosCell(t *testing.T, cell chaosCell) {
	weighted := cell.algo == conform.SSSP
	g, err := gen.Load(cell.dataset, gen.Tiny, weighted)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// Faults land in the first two supersteps so every kernel (PR runs
	// five rounds, the traversals at least a few) executes them; four
	// machines at R=3 guarantee a surviving replica even for the double
	// kill of crash-during-failover.
	const machines, steps = 4, 2
	evs := fault.ClusterSchedule(cell.seed, cell.kind, steps, machines)
	cfg := cluster.Config{
		Machines: machines, Replicas: 3,
		Topo: cell.topo, Nodes: 2, Cores: 2,
		Events: evs,
	}
	res, div, err := conform.CheckCluster(g, cfg, cell.algo, 1)
	if err != nil {
		failCell(t, cell, evs, "cluster error: %v", err)
	}
	if div != nil {
		failCell(t, cell, evs, "divergence from oracle at vertex %d: want %v, got %v",
			div.Vertex, div.Want, div.Got)
	}
	for _, ev := range evs {
		if res.Supersteps > ev.Step && !ev.Fired() {
			failCell(t, cell, evs, "event %s never fired in %d supersteps", ev, res.Supersteps)
		}
	}
	switch cell.kind {
	case fault.MachineCrash, fault.CrashDuringFailover:
		if res.Failovers == 0 {
			failCell(t, cell, evs, "crash committed without a failover")
		}
	case fault.LinkPartition:
		// A single cut in a 4-machine full mesh must reroute, never
		// evict: everyone stays in the primary component.
		if res.Failovers != 0 {
			failCell(t, cell, evs, "partition caused %d failovers in a full mesh", res.Failovers)
		}
	case fault.SlowLink:
		if res.Failovers != 0 {
			failCell(t, cell, evs, "slow link caused failover")
		}
	}
}
