// Package cluster composes N simulated NUMA machines into a replicated,
// sharded analytics cluster behind a deterministic network cost model —
// the paper's hierarchical virtual topology extended one level: intra-
// socket and inter-socket hops come from each machine's numa.Epoch
// ledger, and inter-machine transfers are charged per link as "hop level
// 3+" under the same discipline.
//
// Graphs are sharded into contiguous vertex ranges with
// internal/partition; every shard is replicated onto R distinct failure
// domains (machines). Supersteps run BSP-style with per-machine health
// tracking: a machine can crash mid-round, a link can partition or
// degrade (seeded via internal/fault's cluster schedule), and the cluster
// recovers by rolling the round back (state.Checkpoint), failing orphaned
// shards over to a healthy replica, and replaying — so committed output
// is bit-identical to the fault-free run, which is exactly what the chaos
// matrix asserts against the internal/conform oracles.
package cluster

import (
	"context"
	"fmt"
	"math"
	"sync"

	"polymer/internal/fault"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/partition"
	"polymer/internal/state"
)

// Algo names a cluster-served algorithm. The cluster runs its own
// deterministic sharded kernels (not the single-machine engines), chosen
// so the committed output is bit-identical to the sequential oracles
// regardless of machine count, replica placement or injected faults.
type Algo string

// The three cluster algorithms.
const (
	PR   Algo = "pr"
	BFS  Algo = "bfs"
	SSSP Algo = "sssp"
)

// Algos lists the cluster-served algorithms.
func Algos() []Algo { return []Algo{PR, BFS, SSSP} }

// Weighted reports whether the algorithm consumes edge weights.
func (a Algo) Weighted() bool { return a == SSSP }

// The fixed kernel constants, matching bench/conform conventions.
const (
	prIters   = 5
	prDamping = 0.85
)

// NetCost is the deterministic inter-machine link model: every directed
// machine pair is one full-duplex link with the same base bandwidth and
// latency (faults degrade or cut individual links).
type NetCost struct {
	// LatencySec is the per-round per-hop link latency in simulated
	// seconds.
	LatencySec float64
	// MBps is the per-link bandwidth in MB/s. Deliberately below every
	// intra-machine hop bandwidth: the wire is the slowest level of the
	// hierarchy.
	MBps float64
}

// DefaultNetCost models a commodity datacenter link: 20us latency,
// 1250 MB/s (~10 GbE) per direction.
func DefaultNetCost() NetCost { return NetCost{LatencySec: 20e-6, MBps: 1250} }

// Config shapes a cluster.
type Config struct {
	// Machines is the member count N (>= 1). Shards map 1:1 to machines:
	// shard i's home is machine i.
	Machines int
	// Replicas is the replication factor R in [1, Machines]: each shard
	// lives on its home machine plus the next R-1 machines (mod N), so
	// consecutive machines are the failure domains. 0 means min(2, N).
	Replicas int
	// Topo, Nodes, Cores shape every member machine (homogeneous
	// cluster). Nodes/Cores of 0 default to 2x2, mirroring conform.Case.
	Topo  *numa.Topology
	Nodes int
	Cores int
	// Net is the link cost model; the zero value takes DefaultNetCost.
	Net NetCost
	// Events is the seeded cluster fault schedule (see
	// fault.ClusterSchedule / fault.ClusterChaos).
	Events []*fault.ClusterEvent
	// PreferReplica starts every shard on its first replica instead of
	// its home machine — the serve layer's hedged reads use it so the
	// hedge leg exercises a different placement (the answer is
	// bit-identical either way; only the charged placement differs).
	PreferReplica bool
	// Tracer, when non-nil, receives one superstep event per committed
	// round with the cluster's extended traffic matrix (machine × hop
	// level, the wire as the last level).
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > c.Machines {
		c.Replicas = c.Machines
	}
	if c.Topo == nil {
		c.Topo = numa.IntelXeon80()
	}
	if c.Nodes <= 0 {
		c.Nodes = 2
	}
	if c.Cores <= 0 {
		c.Cores = 2
	}
	if c.Net.MBps <= 0 {
		c.Net.MBps = DefaultNetCost().MBps
	}
	if c.Net.LatencySec < 0 {
		c.Net.LatencySec = 0
	} else if c.Net.LatencySec == 0 {
		c.Net.LatencySec = DefaultNetCost().LatencySec
	}
	return c
}

// Health is one member machine's state.
type Health int

// The member health states.
const (
	Healthy Health = iota
	Crashed
	Isolated
)

// String names the state for /metricsz and reports.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Crashed:
		return "crashed"
	case Isolated:
		return "isolated"
	}
	return fmt.Sprintf("Health(%d)", int(h))
}

// member is one simulated machine in the cluster.
type member struct {
	id     int
	mach   *numa.Machine
	round  *numa.Epoch // this round's attempt ledger (discarded on rollback)
	cum    *numa.Epoch // committed ledger
	health Health
}

func (m *member) ok() bool { return m.health == Healthy }

// shard is one contiguous vertex range and its replica placement.
type shard struct {
	rng partition.Range
	// replicas holds machine ids, home first; owner indexes into it.
	replicas []int
	owner    int
}

// MachineHealth is the per-member view exposed in results and /metricsz.
type MachineHealth struct {
	ID     int    `json:"id"`
	State  string `json:"state"`
	Shards []int  `json:"shards"` // shards currently owned
}

// Result is one committed cluster run.
type Result struct {
	// Out is the normalized per-vertex answer (conform conventions: BFS
	// levels widened with -1 for unreachable, SSSP +Inf, PR mass).
	Out        []float64
	Checksum   float64
	SimSeconds float64
	Supersteps int
	// Failovers counts shard ownership changes forced by faults.
	Failovers int
	// Stats merges every member's committed epoch ledger.
	Stats numa.Stats
	// Machines reports final member health and shard placement.
	Machines []MachineHealth
	// Links is the cumulative per-directed-link traffic in bytes:
	// Links[i][j] left machine i toward machine j (relayed segments are
	// charged per hop).
	Links [][]float64
	// NetBytes sums Links.
	NetBytes float64
	// Traffic is the cluster's extended attribution: machine × hop level
	// × pattern, where levels 0..MaxLevel are each machine's aggregated
	// intra-machine classes and the final level is bytes it put on the
	// wire.
	Traffic *numa.TrafficMatrix
	// Protocol is the failover/recovery log, one line per action.
	Protocol []string
}

// Cluster is a replicated sharded run in progress. It is single-use:
// New + Run, then read the Result.
type Cluster struct {
	cfg    Config
	g      *graph.Graph
	ms     []*member
	shards []*shard
	net    *network
	ck     *state.Checkpoint

	// vertexShard and vertexNode are immutable placement maps: the shard
	// holding each vertex, and the NUMA node it lands on within whichever
	// machine owns that shard (replicas lay shards out identically, so
	// the map survives failover).
	vertexShard []int32
	vertexNode  []int8
	// owner[s] is the machine currently owning shard s (derived from
	// shards, kept flat for the per-edge hot path).
	owner []int

	// Kernel state. curr/next and active/nextActive swap at commit;
	// the checkpoint tracks all four plus the simulated clock.
	curr, next         []float64
	active, nextActive []uint32
	invOut             []float64 // PR only

	sim       float64
	simSaved  float64 // checkpointed clock for rollback
	rounds    int
	failovers int
	changed   int // vertices improved in the last committed round
	protocol  []string

	// cdfPending arms the second kill of a crash-during-failover event:
	// the next failover target dies the moment it is chosen.
	cdfPending bool

	// Per-machine scratch for the round loops (reused across threads).
	scratchLocal  [][]int64 // [machine][node] pending random-access counts
	scratchRemote [][]int64 // [machine][machine] pending remote element counts
	msgs          [][]msgBuf
	traffic       numa.TrafficMatrix // cumulative extended matrix
	tmScratch     numa.TrafficMatrix
}

// msg is one push update travelling between machines.
type msg struct {
	v   uint32
	val float64
}

type msgBuf struct{ m []msg }

// msgBytes is the charged wire size of one push update (vertex id +
// value); repBytes the per-vertex replication payload.
const (
	msgBytes = 12
	repBytes = 12
)

// New shards g across the configured machines and prepares a run.
func New(g *graph.Graph, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes > cfg.Topo.Sockets || cfg.Cores > cfg.Topo.CoresPerSocket {
		return nil, fmt.Errorf("cluster: %dx%d exceeds topology %s (%dx%d)",
			cfg.Nodes, cfg.Cores, cfg.Topo.Name, cfg.Topo.Sockets, cfg.Topo.CoresPerSocket)
	}
	c := &Cluster{cfg: cfg, g: g, ck: state.NewCheckpoint()}
	n := g.NumVertices()

	// Shard the vertex space: edge-balanced in the direction each kernel
	// walks (in-edges for pull PR, out-edges for push traversals); with
	// one machine the split is trivial either way, so balance on
	// in-degree, matching the dominant PR workload.
	ranges := partition.EdgeBalanced(g, cfg.Machines, partition.In)
	if err := partition.Validate(ranges, n); err != nil {
		return nil, fmt.Errorf("cluster: sharding: %w", err)
	}
	c.shards = make([]*shard, cfg.Machines)
	c.owner = make([]int, cfg.Machines)
	for i, rng := range ranges {
		reps := make([]int, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			reps[r] = (i + r) % cfg.Machines
		}
		sh := &shard{rng: rng, replicas: reps}
		if cfg.PreferReplica && cfg.Replicas > 1 {
			sh.owner = 1
		}
		c.shards[i] = sh
		c.owner[i] = reps[sh.owner]
	}

	// Placement maps.
	c.vertexShard = make([]int32, n)
	c.vertexNode = make([]int8, n)
	for si, rng := range ranges {
		ln := rng.Len()
		for v := rng.Lo; v < rng.Hi; v++ {
			c.vertexShard[v] = int32(si)
			c.vertexNode[v] = int8((v - rng.Lo) * cfg.Nodes / ln)
		}
	}

	// Members and scratch.
	c.ms = make([]*member, cfg.Machines)
	c.scratchLocal = make([][]int64, cfg.Machines)
	c.scratchRemote = make([][]int64, cfg.Machines)
	c.msgs = make([][]msgBuf, cfg.Machines)
	for i := range c.ms {
		mach, err := numa.NewMachineChecked(cfg.Topo, cfg.Nodes, cfg.Cores)
		if err != nil {
			return nil, err
		}
		c.ms[i] = &member{id: i, mach: mach, round: mach.NewEpoch(), cum: mach.NewEpoch()}
		c.scratchLocal[i] = make([]int64, cfg.Nodes)
		c.scratchRemote[i] = make([]int64, cfg.Machines)
		c.msgs[i] = make([]msgBuf, cfg.Machines)
	}
	c.net = newNetwork(cfg.Machines, cfg.Net)
	c.traffic.Resize(cfg.Machines, cfg.Topo.MaxLevel()+2)
	return c, nil
}

// logf appends one protocol line.
func (c *Cluster) logf(format string, args ...any) {
	c.protocol = append(c.protocol, fmt.Sprintf(format, args...))
}

// ownedShards returns the shard indices machine mi currently owns, in
// shard order (deterministic).
func (c *Cluster) ownedShards(mi int) []int {
	var out []int
	for si, m := range c.owner {
		if m == mi {
			out = append(out, si)
		}
	}
	return out
}

// Run executes the algorithm to completion and commits the result.
func (c *Cluster) Run(ctx context.Context, alg Algo, src graph.Vertex) (*Result, error) {
	n := c.g.NumVertices()
	if n == 0 {
		return c.finish(alg), nil
	}
	switch alg {
	case PR, BFS, SSSP:
	default:
		return nil, fmt.Errorf("cluster: unsupported algorithm %q (want pr, bfs or sssp)", alg)
	}
	if (alg == BFS || alg == SSSP) && int(src) >= n {
		return nil, fmt.Errorf("cluster: source %d outside [0,%d)", src, n)
	}
	c.initState(alg, src)

	// Rounds are bounded by the diameter for traversals and prIters for
	// PR; the cap is a defensive backstop, not a tuning knob.
	maxRounds := n + 2*c.cfg.Machines + 16
	events := c.cfg.Events
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Environmental events apply before the round: a slow link
		// changes only the clock, so nothing needs detection or rollback.
		for _, ev := range eventsAt(events, round, true) {
			if ev.Fire() {
				c.net.degrade(ev.Machine, ev.MachineB, ev.Factor)
				c.logf("round %d: %s armed: link m%d-m%d bandwidth x%g", round, ev, ev.Machine, ev.MachineB, ev.Factor)
			}
		}
		if err := c.ensureOwners(round); err != nil {
			return nil, err
		}
		c.saveRound()
		for {
			c.prepareRound(alg)
			c.runRound(alg)
			faults := eventsAt(events, round, false)
			if len(faults) == 0 {
				break
			}
			// Detect after the step, exactly like fault.Session: roll the
			// committed state and clock back, apply the failures, fail
			// orphaned shards over, and replay the round clean.
			c.restoreRound()
			c.logf("round %d: rolled back (%d fault(s) detected)", round, len(faults))
			c.applyFaults(round, faults)
			if err := c.ensureOwners(round); err != nil {
				return nil, err
			}
		}
		c.commitRound(alg, round)
		if c.doneAfter(alg, round) {
			break
		}
	}
	return c.finish(alg), nil
}

// initState allocates and tracks the kernel state.
func (c *Cluster) initState(alg Algo, src graph.Vertex) {
	n := c.g.NumVertices()
	c.curr = make([]float64, n)
	c.next = make([]float64, n)
	c.ck.TrackF64(c.curr, c.next)
	switch alg {
	case PR:
		c.invOut = make([]float64, n)
		for v := 0; v < n; v++ {
			c.curr[v] = 1 / float64(n)
			if d := c.g.OutDegree(graph.Vertex(v)); d > 0 {
				c.invOut[v] = 1 / float64(d)
			}
		}
	case BFS, SSSP:
		for v := range c.curr {
			c.curr[v] = math.Inf(1)
		}
		c.curr[src] = 0
		c.active = make([]uint32, n)
		c.nextActive = make([]uint32, n)
		c.active[src] = 1
		c.ck.TrackU32(c.active, c.nextActive)
		c.changed = 1
	}
}

// eventsAt filters the schedule for unfired events at one step;
// environmental selects the no-rollback kinds (slow links).
func eventsAt(evs []*fault.ClusterEvent, step int, environmental bool) []*fault.ClusterEvent {
	var out []*fault.ClusterEvent
	for _, ev := range evs {
		if ev.Step != step || ev.Fired() {
			continue
		}
		if (ev.Kind == fault.SlowLink) == environmental {
			out = append(out, ev)
		}
	}
	return out
}

// saveRound checkpoints state and clock before a round attempt.
func (c *Cluster) saveRound() {
	c.ck.Save()
	c.simSaved = c.sim
}

// restoreRound rolls state, clock and the attempt's charges back.
func (c *Cluster) restoreRound() {
	c.ck.Restore()
	c.sim = c.simSaved
	c.net.discardRound()
	// Round epochs are reset by prepareRound on the replay.
}

// applyFaults fires the detected events: machines die, links cut. After
// the kills, connectivity is re-evaluated: healthy machines cut off from
// the primary component (the largest one, lowest-id on ties) are
// isolated and treated as failed for ownership.
func (c *Cluster) applyFaults(round int, faults []*fault.ClusterEvent) {
	for _, ev := range faults {
		if !ev.Fire() {
			continue
		}
		switch ev.Kind {
		case fault.MachineCrash:
			c.kill(round, ev.Machine, "crash")
		case fault.CrashDuringFailover:
			c.kill(round, ev.Machine, "crash (failover target will die too)")
			c.cdfPending = true
		case fault.LinkPartition:
			c.net.cut(ev.Machine, ev.MachineB)
			c.logf("round %d: link m%d-m%d partitioned", round, ev.Machine, ev.MachineB)
		}
	}
	c.reisolate(round)
}

// kill fail-stops one machine (idempotent).
func (c *Cluster) kill(round, mi int, why string) {
	m := c.ms[mi]
	if m.health == Crashed {
		return
	}
	m.health = Crashed
	c.logf("round %d: machine m%d %s", round, mi, why)
}

// reisolate recomputes the primary component among healthy machines and
// downgrades unreachable ones to Isolated. Links never heal, so the
// downgrade is permanent.
func (c *Cluster) reisolate(round int) {
	alive := make([]bool, len(c.ms))
	for i, m := range c.ms {
		alive[i] = m.health == Healthy
	}
	primary := c.net.component(alive)
	for i, m := range c.ms {
		if m.health == Healthy && !primary[i] {
			m.health = Isolated
			c.logf("round %d: machine m%d isolated from the primary component", round, i)
		}
	}
}

// ensureOwners fails every orphaned shard (owner not Healthy) over to
// its first healthy replica. A pending crash-during-failover kills the
// first chosen target, forcing the search to restart. Replicas hold the
// shard's last committed state (replication ships every committed
// round), so no bulk state transfer is charged — only the coordination
// latency, folded into the next round's barrier.
func (c *Cluster) ensureOwners(round int) error {
	for {
		killed := false
		for si, sh := range c.shards {
			if c.ms[c.owner[si]].ok() {
				continue
			}
			found := -1
			for ri, mi := range sh.replicas {
				if c.ms[mi].ok() {
					found = ri
					break
				}
			}
			if found < 0 {
				return fmt.Errorf("cluster: shard %d lost: no healthy replica (had %v)", si, sh.replicas)
			}
			target := sh.replicas[found]
			if c.cdfPending {
				// The chosen target dies before it can take ownership.
				// Restart the whole scan: shards already passed — and the
				// target's own — may be orphaned by this kill.
				c.cdfPending = false
				c.kill(round, target, "crashed during failover")
				c.reisolate(round)
				killed = true
				break
			}
			sh.owner = found
			c.owner[si] = target
			c.failovers++
			c.logf("round %d: shard %d failed over to replica m%d", round, si, target)
		}
		if !killed {
			return nil
		}
	}
}

// prepareRound resets the attempt's ledgers and staging state.
func (c *Cluster) prepareRound(alg Algo) {
	for _, m := range c.ms {
		m.round.Reset()
	}
	for i := range c.msgs {
		for j := range c.msgs[i] {
			c.msgs[i][j].m = c.msgs[i][j].m[:0]
		}
	}
	if alg != PR {
		copy(c.next, c.curr)
		clear(c.nextActive)
	}
}

// runRound executes one BSP superstep: a parallel compute/scatter phase
// (one goroutine per healthy machine, disjoint writes), a barrier, and
// for push kernels a parallel apply phase on the owning machines.
// Values are a pure function of the committed state, so scheduling never
// affects the answer; charges are per-machine and folded
// deterministically.
func (c *Cluster) runRound(alg Algo) {
	var wg sync.WaitGroup
	for _, m := range c.ms {
		if !m.ok() {
			continue
		}
		owned := c.ownedShards(m.id)
		if len(owned) == 0 {
			continue
		}
		wg.Add(1)
		go func(mi int, owned []int) {
			defer wg.Done()
			if alg == PR {
				c.prPhase(mi, owned)
			} else {
				c.scatterPhase(alg, mi, owned)
			}
		}(m.id, owned)
	}
	wg.Wait()
	if alg != PR {
		for _, m := range c.ms {
			if !m.ok() {
				continue
			}
			owned := c.ownedShards(m.id)
			if len(owned) == 0 {
				continue
			}
			wg.Add(1)
			go func(mi int) {
				defer wg.Done()
				c.applyPhase(mi)
			}(m.id)
		}
		wg.Wait()
	}
	c.routeRound()
}

// routeRound folds the phase's logical transfers (remote reads, push
// messages) onto network links, single-threaded after the barrier.
func (c *Cluster) routeRound() {
	alive := c.aliveMask()
	for from := range c.scratchRemote {
		for to, cnt := range c.scratchRemote[from] {
			if cnt == 0 {
				continue
			}
			c.scratchRemote[from][to] = 0
			// Pull-style remote reads: the bytes flow owner -> reader.
			c.net.transfer(to, from, float64(cnt)*8, alive)
		}
	}
	for from := range c.msgs {
		for to := range c.msgs[from] {
			if n := len(c.msgs[from][to].m); n > 0 && from != to {
				c.net.transfer(from, to, float64(n)*msgBytes, alive)
			}
		}
	}
}

func (c *Cluster) aliveMask() []bool {
	alive := make([]bool, len(c.ms))
	for i, m := range c.ms {
		alive[i] = m.ok()
	}
	return alive
}

// commitRound publishes the round: replication traffic to standby
// replicas, the round's simulated time (slowest machine + the network
// phase + the cluster barrier), ledger folds, and the state swap.
func (c *Cluster) commitRound(alg Algo, round int) {
	// Replicate committed per-shard deltas to every standby replica so a
	// failover can resume from the last committed round without a bulk
	// transfer. PR rewrites whole shards; traversals ship improved
	// vertices only.
	alive := c.aliveMask()
	changed := 0
	for si, sh := range c.shards {
		var dirty int
		if alg == PR {
			dirty = sh.rng.Len()
		} else {
			for v := sh.rng.Lo; v < sh.rng.Hi; v++ {
				if c.nextActive[v] != 0 {
					dirty++
				}
			}
		}
		changed += dirtyIf(alg != PR, dirty)
		if dirty == 0 {
			continue
		}
		from := c.owner[si]
		for _, mi := range sh.replicas {
			if mi != from && c.ms[mi].ok() {
				c.net.transfer(from, mi, float64(dirty)*repBytes, alive)
			}
		}
	}
	if alg != PR {
		c.changed = changed
	}

	compute := 0.0
	for _, m := range c.ms {
		if !m.ok() {
			continue
		}
		if t := m.round.Time(); t > compute {
			compute = t
		}
		m.cum.Add(m.round)
	}
	netSecs := c.net.roundSeconds()
	if len(c.ms) > 1 {
		// The BSP barrier crosses the wire twice (reduce + broadcast).
		netSecs += 2 * c.cfg.Net.LatencySec
	}
	simStart := c.sim
	c.sim += compute + netSecs
	c.rounds++

	// Fold the round's traffic into the extended machine × hop matrix
	// before the link ledger commits (the wire is the last level).
	wire := c.traffic.Levels - 1
	for _, m := range c.ms {
		if !m.ok() {
			continue
		}
		m.round.Traffic(&c.tmScratch)
		for node := 0; node < c.tmScratch.Nodes; node++ {
			for lvl := 0; lvl < c.tmScratch.Levels; lvl++ {
				c.traffic.Accumulate(m.id, lvl, numa.Seq, c.tmScratch.At(node, lvl, numa.Seq))
				c.traffic.Accumulate(m.id, lvl, numa.Rand, c.tmScratch.At(node, lvl, numa.Rand))
			}
		}
	}
	for from := range c.ms {
		if b := c.net.roundBytesFrom(from); b > 0 {
			c.traffic.Accumulate(from, wire, numa.Seq, b)
		}
	}
	if tr := c.cfg.Tracer; tr != nil {
		tr.Superstep("cluster", round, simStart, c.sim-simStart, c.traffic.Clone())
	}
	c.net.commitRound()

	c.curr, c.next = c.next, c.curr
	if alg != PR {
		c.active, c.nextActive = c.nextActive, c.active
	}
}

func dirtyIf(cond bool, v int) int {
	if cond {
		return v
	}
	return 0
}

// doneAfter reports whether the committed round was the last.
func (c *Cluster) doneAfter(alg Algo, round int) bool {
	if alg == PR {
		return round == prIters-1
	}
	return c.changed == 0
}

// finish assembles the Result.
func (c *Cluster) finish(alg Algo) *Result {
	n := c.g.NumVertices()
	out := make([]float64, n)
	copy(out, c.curr)
	if alg == BFS {
		// Internal sentinel is +Inf; the oracle convention is -1.
		for v := range out {
			if math.IsInf(out[v], 1) {
				out[v] = -1
			}
		}
	}
	res := &Result{
		Out:        out,
		Checksum:   checksum(alg, out),
		SimSeconds: c.sim,
		Supersteps: c.rounds,
		Failovers:  c.failovers,
		Links:      c.net.cumLinks(),
		Traffic:    c.traffic.Clone(),
		Protocol:   append([]string(nil), c.protocol...),
	}
	for _, row := range res.Links {
		for _, b := range row {
			res.NetBytes += b
		}
	}
	first := true
	for _, m := range c.ms {
		if first {
			res.Stats = m.cum.Stats()
			first = false
		} else {
			res.Stats.Merge(m.cum.Stats())
		}
		res.Machines = append(res.Machines, MachineHealth{
			ID: m.id, State: m.health.String(), Shards: c.ownedShards(m.id),
		})
	}
	return res
}

// checksum follows the bench conventions: plain sum for PR (and BFS,
// whose -1 sentinels are part of the answer), finite sum for SSSP.
func checksum(alg Algo, out []float64) float64 {
	var s float64
	for _, x := range out {
		if alg == SSSP && math.IsInf(x, 0) {
			continue
		}
		s += x
	}
	return s
}
