package algorithms

import (
	"polymer/internal/atomicx"
	"polymer/internal/graph"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// DynamicSSSP maintains single-source shortest paths under edge
// insertions — the paper's stated future work ("how to extend Polymer to
// support mutable topology"). The engine's topology stays immutable;
// inserted edges live in a grow-only overlay adjacency kept beside it.
// Each InsertEdges batch seeds a frontier with the directly improved
// destinations and then relaxes to a fixpoint, alternating EdgeMap over
// the base topology with relaxation over the overlay, so the incremental
// work is proportional to the affected region rather than the graph.
// Compact folds the overlay into a freshly built engine when it has grown
// large.
type DynamicSSSP struct {
	eng     sg.Engine
	rebuild func(*graph.Graph) sg.Engine
	src     graph.Vertex
	kernel  *ssspKernel

	overlay      [][]overlayEdge
	overlayCount int64
	baseEdges    []graph.Edge // retained for Compact
}

type overlayEdge struct {
	dst graph.Vertex
	wt  float32
}

// NewDynamicSSSP computes the initial distances from src on e's graph.
// rebuild constructs a replacement engine for Compact; it may be nil if
// Compact is never used. The caller must Close() the returned structure
// (which closes the current engine).
func NewDynamicSSSP(e sg.Engine, rebuild func(*graph.Graph) sg.Engine, src graph.Vertex) *DynamicSSSP {
	g := e.Graph()
	d := &DynamicSSSP{
		eng:     e,
		rebuild: rebuild,
		src:     src,
		overlay: make([][]overlayEdge, g.NumVertices()),
	}
	d.baseEdges = collectEdges(g)
	distA := e.NewData("dynsssp/dist")
	d.kernel = &ssspKernel{dist: distA.Data}
	for i := range d.kernel.dist {
		d.kernel.dist[i] = infinity
	}
	// An empty graph (or a source outside the vertex set) has nothing to
	// seed: every distance stays infinite, and a later Rebase onto a
	// snapshot that does contain src picks the computation up from there.
	if int(src) < len(d.kernel.dist) {
		d.kernel.dist[src] = 0
		d.relaxToFixpoint(state.NewSingle(e.Bounds(), src))
	}
	return d
}

// Dist returns the current distance array (do not modify).
func (d *DynamicSSSP) Dist() []float64 { return d.kernel.dist }

// Engine returns the engine currently backing the base topology.
func (d *DynamicSSSP) Engine() sg.Engine { return d.eng }

// OverlaySize returns the number of inserted edges not yet compacted.
func (d *DynamicSSSP) OverlaySize() int64 { return d.overlayCount }

// Close releases the backing engine.
func (d *DynamicSSSP) Close() { d.eng.Close() }

// InsertEdges adds directed weighted edges and restores the
// shortest-path fixpoint incrementally. Unweighted insertions (Wt == 0)
// count as unit weight, as everywhere else. The vertex set is fixed at
// construction: edges with an endpoint outside it are skipped (growing
// the vertex set needs a Rebase onto a larger snapshot). Duplicate
// inserts are kept as parallel overlay edges; relaxation is idempotent
// over them.
func (d *DynamicSSSP) InsertEdges(edges []graph.Edge) {
	n := graph.Vertex(len(d.overlay))
	b := state.NewBuilder(d.eng.Bounds(), 1, false)
	seeded := false
	for _, e := range edges {
		if e.Src >= n || e.Dst >= n {
			continue
		}
		d.overlay[e.Src] = append(d.overlay[e.Src], overlayEdge{dst: e.Dst, wt: e.Wt})
		d.overlayCount++
		nd := d.kernel.dist[e.Src] + edgeWeight(e.Wt)
		if nd < d.kernel.dist[e.Dst] {
			d.kernel.dist[e.Dst] = nd
			b.Add(0, e.Dst)
			seeded = true
		}
	}
	if !seeded {
		return
	}
	d.relaxToFixpoint(b.Build())
}

// relaxToFixpoint alternates base-topology EdgeMap with overlay
// relaxation until no distance improves.
func (d *DynamicSSSP) relaxToFixpoint(frontier *state.Subset) {
	for !frontier.IsEmpty() {
		base := d.eng.EdgeMap(frontier, d.kernel, ssspHints)
		changed := state.NewBuilder(d.eng.Bounds(), 1, false)
		base.ForEach(func(v graph.Vertex) { changed.Add(0, v) })
		frontier.ForEach(func(v graph.Vertex) {
			dv := d.kernel.dist[v]
			for _, oe := range d.overlay[v] {
				if atomicx.MinFloat64(&d.kernel.dist[oe.dst], dv+edgeWeight(oe.wt)) {
					changed.Add(0, oe.dst)
				}
			}
		})
		frontier = changed.Build()
	}
}

// Rebase hands the computation off to a new snapshot: e's graph must be
// an edge-superset of the current topology plus overlay (the mutation
// store's insert-only commits produce exactly that; after deletions,
// build a fresh DynamicSSSP instead — shrinking the edge set can
// invalidate settled distances). The old engine is closed, the overlay
// resets (the snapshot already contains those edges), and the settled
// distances carry over as upper bounds: every shortest path the new
// edges open starts at a finite-distance vertex, so seeding the full
// settled set and relaxing to fixpoint repairs them. The snapshot may
// also grow the vertex set, in which case the new vertices start
// unreachable (and src seeds itself if it just came into range).
func (d *DynamicSSSP) Rebase(e sg.Engine) {
	old := d.kernel.dist
	d.eng.Close()
	d.eng = e
	g := e.Graph()
	n := g.NumVertices()
	d.baseEdges = collectEdges(g)
	d.overlay = make([][]overlayEdge, n)
	d.overlayCount = 0
	distA := e.NewData("dynsssp/dist")
	d.kernel = &ssspKernel{dist: distA.Data}
	for i := range d.kernel.dist {
		d.kernel.dist[i] = infinity
	}
	copy(d.kernel.dist, old)
	if int(d.src) < n {
		d.kernel.dist[d.src] = 0
	}
	b := state.NewBuilder(e.Bounds(), 1, false)
	seeded := false
	for v, dv := range d.kernel.dist {
		if dv < infinity {
			b.Add(0, graph.Vertex(v))
			seeded = true
		}
	}
	if seeded {
		d.relaxToFixpoint(b.Build())
	}
}

// Compact merges the overlay into a fresh engine built over the combined
// topology (the stop-the-world rebuild a production deployment would
// amortise). Distances are preserved; the old engine is closed.
func (d *DynamicSSSP) Compact() {
	if d.rebuild == nil {
		panic("algorithms: DynamicSSSP.Compact requires a rebuild constructor")
	}
	for s, oes := range d.overlay {
		for _, oe := range oes {
			d.baseEdges = append(d.baseEdges, graph.Edge{Src: graph.Vertex(s), Dst: oe.dst, Wt: oe.wt})
		}
		d.overlay[s] = nil
	}
	d.overlayCount = 0
	n := d.eng.Graph().NumVertices()
	old := d.kernel.dist
	d.eng.Close()
	d.eng = d.rebuild(graph.FromEdges(n, d.baseEdges, true))
	distA := d.eng.NewData("dynsssp/dist")
	copy(distA.Data, old)
	d.kernel = &ssspKernel{dist: distA.Data}
}

// collectEdges flattens a graph back into an edge list (weights
// preserved; unweighted graphs yield zero weights, treated as unit).
func collectEdges(g *graph.Graph) []graph.Edge {
	edges := make([]graph.Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.OutNeighbors(graph.Vertex(v))
		wts := g.OutWeights(graph.Vertex(v))
		for j, u := range nbrs {
			e := graph.Edge{Src: graph.Vertex(v), Dst: u}
			if wts != nil {
				e.Wt = wts[j]
			}
			edges = append(edges, e)
		}
	}
	return edges
}
