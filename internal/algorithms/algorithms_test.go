package algorithms

import (
	"math"
	"testing"

	"polymer/internal/core"
	"polymer/internal/engines/galois"
	"polymer/internal/engines/ligra"
	"polymer/internal/engines/xstream"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

func testMachine() *numa.Machine {
	return numa.NewMachine(numa.IntelXeon80(), 2, 2)
}

// engines under test: constructors for the two scatter-gather engines.
func sgEngines(g *graph.Graph) map[string]sg.Engine {
	return map[string]sg.Engine{
		"polymer": core.MustNew(g, testMachine(), core.DefaultOptions()),
		"ligra":   ligra.MustNew(g, testMachine(), ligra.DefaultOptions()),
	}
}

func testGraphs(t *testing.T, weighted bool) map[string]*graph.Graph {
	t.Helper()
	out := make(map[string]*graph.Graph)
	for _, d := range []gen.Dataset{gen.Twitter, gen.RMat24, gen.RoadUS} {
		g, err := gen.Load(d, gen.Tiny, weighted)
		if err != nil {
			t.Fatal(err)
		}
		out[string(d)] = g
	}
	// Fixtures with special shapes.
	n, edges := gen.Star(33)
	out["star"] = graph.FromEdges(n, edges, weighted)
	n, edges = gen.Chain(17)
	out["chain"] = graph.FromEdges(n, edges, weighted)
	return out
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return d == 0
	}
	return d/m <= tol
}

func TestPageRankAllEnginesMatchReference(t *testing.T) {
	for name, g := range testGraphs(t, false) {
		want := RefPageRank(g, 5, 0.85)
		for ename, e := range sgEngines(g) {
			got := PageRank(e, 5, 0.85)
			for v := range want {
				if !relClose(got[v], want[v], 1e-9) {
					t.Fatalf("%s/%s: rank[%d] = %v, want %v", ename, name, v, got[v], want[v])
				}
			}
			e.Close()
		}
		xe := xstream.MustNew(g, testMachine(), xstream.DefaultOptions(), sg.Hints{})
		got := XSPageRank(xe, 5, 0.85)
		xe.Close()
		ge := galois.MustNew(g, testMachine(), galois.DefaultOptions())
		got2 := ge.PageRank(5, 0.85)
		ge.Close()
		for v := range want {
			if !relClose(got[v], want[v], 1e-9) {
				t.Fatalf("xstream/%s: rank[%d] = %v, want %v", name, v, got[v], want[v])
			}
			if !relClose(got2[v], want[v], 1e-9) {
				t.Fatalf("galois/%s: rank[%d] = %v, want %v", name, v, got2[v], want[v])
			}
		}
	}
}

func TestSpMVAllEnginesMatchReference(t *testing.T) {
	for name, g := range testGraphs(t, true) {
		n := g.NumVertices()
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = float64(i%7) + 1
		}
		want := RefSpMV(g, 3, x0)
		for ename, e := range sgEngines(g) {
			got := SpMV(e, 3, x0)
			for v := range want {
				if !relClose(got[v], want[v], 1e-9) {
					t.Fatalf("%s/%s: y[%d] = %v, want %v", ename, name, v, got[v], want[v])
				}
			}
			e.Close()
		}
		xe := xstream.MustNew(g, testMachine(), xstream.DefaultOptions(), sg.Hints{Weighted: true})
		got := XSSpMV(xe, 3, x0)
		xe.Close()
		ge := galois.MustNew(g, testMachine(), galois.DefaultOptions())
		got2 := ge.SpMV(3, x0)
		ge.Close()
		for v := range want {
			if !relClose(got[v], want[v], 1e-9) {
				t.Fatalf("xstream/%s: y[%d] = %v, want %v", name, v, got[v], want[v])
			}
			if !relClose(got2[v], want[v], 1e-9) {
				t.Fatalf("galois/%s: y[%d] = %v, want %v", name, v, got2[v], want[v])
			}
		}
	}
}

func TestBPAllEnginesMatchReference(t *testing.T) {
	for name, g := range testGraphs(t, true) {
		want := RefBP(g, 3)
		for ename, e := range sgEngines(g) {
			got := BP(e, 3)
			for v := range want {
				if !relClose(got[v], want[v], 1e-9) {
					t.Fatalf("%s/%s: belief[%d] = %v, want %v", ename, name, v, got[v], want[v])
				}
			}
			e.Close()
		}
		xe := xstream.MustNew(g, testMachine(), xstream.DefaultOptions(), sg.Hints{Weighted: true, DataBytes: 16})
		got := XSBP(xe, 3)
		xe.Close()
		ge := galois.MustNew(g, testMachine(), galois.DefaultOptions())
		got2 := ge.BP(3)
		ge.Close()
		for v := range want {
			if !relClose(got[v], want[v], 1e-9) {
				t.Fatalf("xstream/%s: belief[%d]", name, v)
			}
			if !relClose(got2[v], want[v], 1e-9) {
				t.Fatalf("galois/%s: belief[%d]", name, v)
			}
		}
	}
}

func TestBFSAllEnginesMatchReference(t *testing.T) {
	for name, g := range testGraphs(t, false) {
		want := RefBFS(g, 0)
		for ename, e := range sgEngines(g) {
			got := BFS(e, 0)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: level[%d] = %d, want %d", ename, name, v, got[v], want[v])
				}
			}
			e.Close()
		}
		xe := xstream.MustNew(g, testMachine(), xstream.DefaultOptions(), sg.Hints{})
		got := XSBFS(xe, 0)
		xe.Close()
		ge := galois.MustNew(g, testMachine(), galois.DefaultOptions())
		got2 := ge.BFS(0)
		ge.Close()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("xstream/%s: level[%d] = %d, want %d", name, v, got[v], want[v])
			}
			if got2[v] != want[v] {
				t.Fatalf("galois/%s: level[%d] = %d, want %d", name, v, got2[v], want[v])
			}
		}
	}
}

func TestCCAllEnginesMatchReference(t *testing.T) {
	for name, g := range testGraphs(t, false) {
		want := RefCC(g)
		sym := g.Symmetrized()
		for ename, e := range sgEngines(sym) {
			got := CC(e)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: label[%d] = %d, want %d", ename, name, v, got[v], want[v])
				}
			}
			e.Close()
		}
		xe := xstream.MustNew(sym, testMachine(), xstream.DefaultOptions(), sg.Hints{})
		got := XSCC(xe)
		xe.Close()
		ge := galois.MustNew(sym, testMachine(), galois.DefaultOptions())
		got2 := ge.CC()
		ge.Close()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("xstream/%s: label[%d] = %d, want %d", name, v, got[v], want[v])
			}
			if got2[v] != want[v] {
				t.Fatalf("galois/%s: label[%d] = %d, want %d", name, v, got2[v], want[v])
			}
		}
	}
}

func TestSSSPAllEnginesMatchReference(t *testing.T) {
	for name, g := range testGraphs(t, true) {
		want := RefSSSP(g, 0)
		for ename, e := range sgEngines(g) {
			got := SSSP(e, 0)
			for v := range want {
				if !relClose(got[v], want[v], 1e-9) && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
					t.Fatalf("%s/%s: dist[%d] = %v, want %v", ename, name, v, got[v], want[v])
				}
			}
			e.Close()
		}
		xe := xstream.MustNew(g, testMachine(), xstream.DefaultOptions(), sg.Hints{Weighted: true})
		got := XSSSSP(xe, 0)
		xe.Close()
		ge := galois.MustNew(g, testMachine(), galois.DefaultOptions())
		got2 := ge.SSSP(0)
		ge.Close()
		for v := range want {
			if !relClose(got[v], want[v], 1e-9) && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("xstream/%s: dist[%d] = %v, want %v", name, v, got[v], want[v])
			}
			if !relClose(got2[v], want[v], 1e-9) && !(math.IsInf(got2[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("galois/%s: dist[%d] = %v, want %v", name, v, got2[v], want[v])
			}
		}
	}
}

func TestBFSFromNonZeroSource(t *testing.T) {
	g, _ := gen.Load(gen.RoadUS, gen.Tiny, false)
	src := graph.Vertex(g.NumVertices() / 2)
	want := RefBFS(g, src)
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	got := BFS(e, src)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestPolymerModesAgree(t *testing.T) {
	// Fixed Push, fixed Pull and Auto must all produce identical PR.
	g, _ := gen.Load(gen.Twitter, gen.Tiny, false)
	want := RefPageRank(g, 4, 0.85)
	for _, mode := range []core.Mode{core.Auto, core.Push, core.Pull} {
		opt := core.DefaultOptions()
		opt.Mode = mode
		e := core.MustNew(g, testMachine(), opt)
		got := PageRank(e, 4, 0.85)
		e.Close()
		for v := range want {
			if !relClose(got[v], want[v], 1e-9) {
				t.Fatalf("mode %d: rank[%d] = %v, want %v", mode, v, got[v], want[v])
			}
		}
	}
}

func TestPolymerAblationsStillCorrect(t *testing.T) {
	// Every ablation switch must leave results unchanged (they only alter
	// layout/charging/scheduling).
	g, _ := gen.Load(gen.RMat24, gen.Tiny, false)
	want := RefBFS(g, 0)
	for _, tweak := range []func(*core.Options){
		func(o *core.Options) { o.EdgeBalanced = false },
		func(o *core.Options) { o.Adaptive = false },
		func(o *core.Options) { o.DisableAgents = true },
		func(o *core.Options) { o.DisableRolling = true },
	} {
		opt := core.DefaultOptions()
		tweak(&opt)
		e := core.MustNew(g, testMachine(), opt)
		got := BFS(e, 0)
		e.Close()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("ablation changed BFS result at %d", v)
			}
		}
	}
}
