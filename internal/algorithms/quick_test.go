package algorithms

import (
	"math"
	"math/rand"
	"testing"

	"polymer/internal/core"
	"polymer/internal/engines/galois"
	"polymer/internal/engines/ligra"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
)

// TestRandomGraphsAllEnginesAgree fuzzes the full engine stack: random
// graphs, random machine shapes and random polymer configurations must
// all agree with the sequential references on the traversal algorithms
// (whose outputs are exact, not float-accumulation-order dependent).
func TestRandomGraphsAllEnginesAgree(t *testing.T) {
	topo := numa.IntelXeon80()
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(400)
		m := rng.Intn(4 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{
				Src: graph.Vertex(rng.Intn(n)),
				Dst: graph.Vertex(rng.Intn(n)),
				Wt:  float32(rng.Intn(100)) + 1,
			}
		}
		g := graph.FromEdges(n, edges, true)
		src := graph.Vertex(rng.Intn(n))

		nodes := 1 + rng.Intn(4)
		cores := 1 + rng.Intn(3)
		m1 := numa.NewMachine(topo, nodes, cores)
		opt := core.DefaultOptions()
		opt.Mode = core.Mode(rng.Intn(3))
		opt.EdgeBalanced = rng.Intn(2) == 0
		opt.Adaptive = rng.Intn(2) == 0

		wantBFS := RefBFS(g, src)
		wantSSSP := RefSSSP(g, src)
		wantCC := RefCC(g)

		e := core.MustNew(g, m1, opt)
		gotBFS := BFS(e, src)
		e.Close()
		// A fresh engine per algorithm keeps data arrays independent.
		e = core.MustNew(g, numa.NewMachine(topo, nodes, cores), opt)
		gotSSSP := SSSP(e, src)
		e.Close()
		eSym := core.MustNew(g.Symmetrized(), numa.NewMachine(topo, nodes, cores), opt)
		gotCC := CC(eSym)
		eSym.Close()

		le := ligra.MustNew(g, numa.NewMachine(topo, nodes, cores), ligra.DefaultOptions())
		ligraBFS := BFS(le, src)
		le.Close()

		ge := galois.MustNew(g, numa.NewMachine(topo, nodes, cores), galois.DefaultOptions())
		galoisSSSP := ge.SSSP(src)
		ge.Close()

		for v := 0; v < n; v++ {
			if gotBFS[v] != wantBFS[v] {
				t.Fatalf("seed %d: polymer BFS[%d] = %d, want %d (mode=%d n=%d m=%d)",
					seed, v, gotBFS[v], wantBFS[v], opt.Mode, n, m)
			}
			if ligraBFS[v] != wantBFS[v] {
				t.Fatalf("seed %d: ligra BFS[%d] = %d, want %d", seed, v, ligraBFS[v], wantBFS[v])
			}
			if gotCC[v] != wantCC[v] {
				t.Fatalf("seed %d: polymer CC[%d] = %d, want %d", seed, v, gotCC[v], wantCC[v])
			}
			if !floatEq(gotSSSP[v], wantSSSP[v]) {
				t.Fatalf("seed %d: polymer SSSP[%d] = %v, want %v", seed, v, gotSSSP[v], wantSSSP[v])
			}
			if !floatEq(galoisSSSP[v], wantSSSP[v]) {
				t.Fatalf("seed %d: galois SSSP[%d] = %v, want %v", seed, v, galoisSSSP[v], wantSSSP[v])
			}
		}
	}
}

func floatEq(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestSelfLoopsAndDuplicateEdges exercises degenerate inputs the R-MAT
// generator produces.
func TestSelfLoopsAndDuplicateEdges(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 0, Wt: 5}, // self loop
		{Src: 0, Dst: 1, Wt: 2},
		{Src: 0, Dst: 1, Wt: 3}, // duplicate with different weight
		{Src: 1, Dst: 2, Wt: 1},
	}
	g := graph.FromEdges(3, edges, true)
	want := RefSSSP(g, 0)
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	got := SSSP(e, 0)
	for v := range want {
		if !floatEq(got[v], want[v]) {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	if got[1] != 2 {
		t.Fatalf("duplicate edges must use the lighter weight: %v", got[1])
	}
}

// TestDisconnectedSource checks every engine's handling of an isolated
// source vertex.
func TestDisconnectedSource(t *testing.T) {
	_, edges := gen.Chain(5)
	g := graph.FromEdges(7, edges, false) // vertices 5,6 isolated
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	levels := BFS(e, 6)
	for v := 0; v < 7; v++ {
		want := int64(-1)
		if v == 6 {
			want = 0
		}
		if levels[v] != want {
			t.Fatalf("level[%d] = %d, want %d", v, levels[v], want)
		}
	}
}
