package algorithms

import (
	"math/rand"
	"testing"

	"polymer/internal/core"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

func newPolymer(g *graph.Graph) sg.Engine {
	return core.MustNew(g, numa.NewMachine(numa.IntelXeon80(), 2, 2), core.DefaultOptions())
}

func TestDynamicSSSPMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, base := gen.RoadGrid(12, 12, 4)
	g := graph.FromEdges(n, base, true)

	d := NewDynamicSSSP(newPolymer(g), newPolymer, 0)
	defer d.Close()

	all := append([]graph.Edge(nil), base...)
	for batch := 0; batch < 5; batch++ {
		ins := make([]graph.Edge, 1+rng.Intn(8))
		for i := range ins {
			ins[i] = graph.Edge{
				Src: graph.Vertex(rng.Intn(n)),
				Dst: graph.Vertex(rng.Intn(n)),
				Wt:  float32(rng.Intn(50)) + 1,
			}
		}
		d.InsertEdges(ins)
		all = append(all, ins...)

		want := RefSSSP(graph.FromEdges(n, all, true), 0)
		got := d.Dist()
		for v := 0; v < n; v++ {
			if !floatEq(got[v], want[v]) {
				t.Fatalf("batch %d: dist[%d] = %v, want %v", batch, v, got[v], want[v])
			}
		}
	}
	if d.OverlaySize() == 0 {
		t.Fatal("overlay must have grown")
	}
}

func TestDynamicSSSPShortcutEdge(t *testing.T) {
	// A long chain; inserting a shortcut from the source to the far end
	// must update exactly the tail distances.
	n, base := gen.Chain(30)
	for i := range base {
		base[i].Wt = 10
	}
	g := graph.FromEdges(n, base, true)
	d := NewDynamicSSSP(newPolymer(g), newPolymer, 0)
	defer d.Close()
	if d.Dist()[29] != 290 {
		t.Fatalf("initial dist = %v", d.Dist()[29])
	}
	d.InsertEdges([]graph.Edge{{Src: 0, Dst: 25, Wt: 3}})
	if d.Dist()[25] != 3 {
		t.Fatalf("shortcut target dist = %v", d.Dist()[25])
	}
	if d.Dist()[29] != 43 { // 3 + 4*10
		t.Fatalf("propagated dist = %v", d.Dist()[29])
	}
	if d.Dist()[10] != 100 { // untouched prefix
		t.Fatalf("prefix dist changed: %v", d.Dist()[10])
	}
}

func TestDynamicSSSPNoImprovementIsCheap(t *testing.T) {
	n, base := gen.Chain(20)
	g := graph.FromEdges(n, base, false)
	d := NewDynamicSSSP(newPolymer(g), newPolymer, 0)
	defer d.Close()
	before := d.Engine().SimSeconds()
	// A worse parallel edge cannot change any distance.
	d.InsertEdges([]graph.Edge{{Src: 0, Dst: 5, Wt: 99}})
	if d.Engine().SimSeconds() != before {
		t.Fatal("non-improving insertion must not trigger any EdgeMap")
	}
	if d.Dist()[5] != 5 {
		t.Fatalf("dist corrupted: %v", d.Dist()[5])
	}
}

func TestDynamicSSSPCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, base := gen.RoadGrid(8, 8, 2)
	g := graph.FromEdges(n, base, true)
	d := NewDynamicSSSP(newPolymer(g), newPolymer, 0)
	defer d.Close()

	all := append([]graph.Edge(nil), base...)
	ins := make([]graph.Edge, 10)
	for i := range ins {
		ins[i] = graph.Edge{Src: graph.Vertex(rng.Intn(n)), Dst: graph.Vertex(rng.Intn(n)), Wt: 2}
	}
	d.InsertEdges(ins)
	all = append(all, ins...)
	d.Compact()
	if d.OverlaySize() != 0 {
		t.Fatal("Compact must clear the overlay")
	}
	if d.Engine().Graph().NumEdges() != int64(len(all)) {
		t.Fatalf("compacted graph has %d edges, want %d", d.Engine().Graph().NumEdges(), len(all))
	}
	// Distances survive compaction and further insertions still work.
	want := RefSSSP(graph.FromEdges(n, all, true), 0)
	for v := 0; v < n; v++ {
		if !floatEq(d.Dist()[v], want[v]) {
			t.Fatalf("post-compact dist[%d] = %v, want %v", v, d.Dist()[v], want[v])
		}
	}
	d.InsertEdges([]graph.Edge{{Src: 0, Dst: graph.Vertex(n - 1), Wt: 1}})
	if d.Dist()[n-1] != 1 {
		t.Fatalf("post-compact insertion broken: %v", d.Dist()[n-1])
	}
}

func TestDynamicSSSPEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil, true)
	d := NewDynamicSSSP(newPolymer(g), newPolymer, 0)
	defer d.Close()
	if len(d.Dist()) != 0 {
		t.Fatalf("empty graph dist has %d entries", len(d.Dist()))
	}
	// Every endpoint is outside the (empty) vertex set: the batch must be
	// skipped, not panic.
	d.InsertEdges([]graph.Edge{{Src: 0, Dst: 1, Wt: 2}, {Src: 3, Dst: 0}})
	if d.OverlaySize() != 0 {
		t.Fatalf("out-of-range inserts grew the overlay: %d", d.OverlaySize())
	}
	// A snapshot hand-off that introduces the vertex set picks the
	// computation up: src seeds itself on the new topology.
	n, chain := gen.Chain(6)
	d.Rebase(newPolymer(graph.FromEdges(n, chain, false)))
	for v := 0; v < n; v++ {
		if d.Dist()[v] != float64(v) {
			t.Fatalf("post-rebase dist[%d] = %v", v, d.Dist()[v])
		}
	}
}

func TestDynamicSSSPSourceOutOfRange(t *testing.T) {
	n, base := gen.Chain(4)
	g := graph.FromEdges(n, base, false)
	d := NewDynamicSSSP(newPolymer(g), newPolymer, graph.Vertex(n+3))
	defer d.Close()
	for v := 0; v < n; v++ {
		if !floatEq(d.Dist()[v], infinity) {
			t.Fatalf("unreachable source must leave dist[%d] infinite, got %v", v, d.Dist()[v])
		}
	}
}

func TestDynamicSSSPDuplicateInserts(t *testing.T) {
	n, base := gen.RoadGrid(6, 6, 3)
	g := graph.FromEdges(n, base, true)
	d := NewDynamicSSSP(newPolymer(g), newPolymer, 0)
	defer d.Close()

	// Duplicate an existing base edge, then insert the same new edge three
	// times — twice at one weight, once cheaper. Parallel copies must not
	// corrupt the fixpoint: it matches a clean recompute over all copies.
	dup := base[2]
	ins := []graph.Edge{
		dup,
		{Src: 0, Dst: graph.Vertex(n - 1), Wt: 9},
		{Src: 0, Dst: graph.Vertex(n - 1), Wt: 9},
		{Src: 0, Dst: graph.Vertex(n - 1), Wt: 4},
	}
	d.InsertEdges(ins)
	all := append(append([]graph.Edge(nil), base...), ins...)
	want := RefSSSP(graph.FromEdges(n, all, true), 0)
	for v := 0; v < n; v++ {
		if !floatEq(d.Dist()[v], want[v]) {
			t.Fatalf("dist[%d] = %v, want %v", v, d.Dist()[v], want[v])
		}
	}
	// Re-inserting the cheap edge yet again (exact duplicate of the current
	// best) must neither change distances nor trigger relaxation work.
	before := d.Engine().SimSeconds()
	d.InsertEdges([]graph.Edge{{Src: 0, Dst: graph.Vertex(n - 1), Wt: 4}})
	if d.Engine().SimSeconds() != before {
		t.Fatal("exact-duplicate insert must not trigger any EdgeMap")
	}
	if !floatEq(d.Dist()[n-1], want[n-1]) {
		t.Fatalf("duplicate insert corrupted dist: %v", d.Dist()[n-1])
	}
}

func TestDynamicSSSPOutOfBoundsInsertSkipped(t *testing.T) {
	n, base := gen.Chain(5)
	g := graph.FromEdges(n, base, false)
	d := NewDynamicSSSP(newPolymer(g), newPolymer, 0)
	defer d.Close()
	d.InsertEdges([]graph.Edge{
		{Src: 0, Dst: graph.Vertex(n), Wt: 1},     // dst out of range
		{Src: graph.Vertex(n + 7), Dst: 1, Wt: 1}, // src out of range
		{Src: 0, Dst: 3, Wt: 1},                   // in range: a shortcut
	})
	if d.OverlaySize() != 1 {
		t.Fatalf("overlay must hold only the in-range edge, has %d", d.OverlaySize())
	}
	if d.Dist()[3] != 1 {
		t.Fatalf("in-range shortcut not applied: %v", d.Dist()[3])
	}
}

func TestDynamicSSSPRebase(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, base := gen.RoadGrid(8, 8, 2)
	g := graph.FromEdges(n, base, true)
	d := NewDynamicSSSP(newPolymer(g), newPolymer, 0)
	defer d.Close()

	all := append([]graph.Edge(nil), base...)
	ins := make([]graph.Edge, 6)
	for i := range ins {
		ins[i] = graph.Edge{Src: graph.Vertex(rng.Intn(n)), Dst: graph.Vertex(rng.Intn(n)), Wt: 3}
	}
	d.InsertEdges(ins)
	all = append(all, ins...)

	// The committed snapshot: everything so far plus edges this instance
	// has never seen (the part a hand-off must repair).
	extra := []graph.Edge{
		{Src: 0, Dst: graph.Vertex(n - 1), Wt: 2},
		{Src: graph.Vertex(n / 2), Dst: graph.Vertex(n - 2), Wt: 1},
	}
	all = append(all, extra...)
	g2 := graph.FromEdges(n, all, true)
	d.Rebase(newPolymer(g2))

	if d.OverlaySize() != 0 {
		t.Fatalf("rebase must reset the overlay, has %d", d.OverlaySize())
	}
	if d.Engine().Graph().NumEdges() != int64(len(all)) {
		t.Fatalf("rebased engine has %d edges, want %d", d.Engine().Graph().NumEdges(), len(all))
	}
	want := RefSSSP(g2, 0)
	for v := 0; v < n; v++ {
		if !floatEq(d.Dist()[v], want[v]) {
			t.Fatalf("post-rebase dist[%d] = %v, want %v", v, d.Dist()[v], want[v])
		}
	}
	// Incremental insertion keeps working on the new snapshot.
	d.InsertEdges([]graph.Edge{{Src: 0, Dst: graph.Vertex(n - 3), Wt: 1}})
	if d.Dist()[n-3] != 1 {
		t.Fatalf("post-rebase insertion broken: %v", d.Dist()[n-3])
	}
}

func TestDynamicSSSPUnweightedBFSSemantics(t *testing.T) {
	n, base := gen.Chain(10)
	g := graph.FromEdges(n, base, false)
	d := NewDynamicSSSP(newPolymer(g), newPolymer, 0)
	defer d.Close()
	for v := 0; v < n; v++ {
		if d.Dist()[v] != float64(v) {
			t.Fatalf("unit-weight dist[%d] = %v", v, d.Dist()[v])
		}
	}
	d.InsertEdges([]graph.Edge{{Src: 2, Dst: 9}}) // unit weight
	if d.Dist()[9] != 3 {
		t.Fatalf("unit insertion dist = %v", d.Dist()[9])
	}
}
