package algorithms

import (
	"polymer/internal/atomicx"
	"polymer/internal/core"
	"polymer/internal/graph"
	"polymer/internal/sg"
)

// asyncDistKernel relaxes distances monotonically (chaotic relaxation).
type asyncDistKernel struct {
	dist     []float64
	weighted bool
}

func (k *asyncDistKernel) Relax(s, d graph.Vertex, w float32) bool {
	step := 1.0
	if k.weighted {
		step = edgeWeight(w)
	}
	nd := atomicx.LoadFloat64(&k.dist[s]) + step
	return atomicx.MinFloat64(&k.dist[d], nd)
}

// AsyncSSSP computes single-source shortest paths on a Polymer engine
// with the asynchronous chaotic-relaxation executor (no global barriers).
func AsyncSSSP(e *core.Engine, src graph.Vertex) []float64 {
	n := e.Graph().NumVertices()
	if n == 0 {
		return nil
	}
	distA := e.NewData("asyncsssp/dist")
	k := &asyncDistKernel{dist: distA.Data, weighted: true}
	for i := range k.dist {
		k.dist[i] = infinity
	}
	k.dist[src] = 0
	e.AsyncTraverse([]graph.Vertex{src}, k, sg.Hints{DataBytes: 8, NsPerEdge: 1.5, Weighted: true})
	out := make([]float64, n)
	copy(out, k.dist)
	return out
}

// AsyncBFS computes BFS levels asynchronously (unit-weight relaxation).
func AsyncBFS(e *core.Engine, src graph.Vertex) []int64 {
	n := e.Graph().NumVertices()
	distA := e.NewData("asyncbfs/dist")
	k := &asyncDistKernel{dist: distA.Data}
	for i := range k.dist {
		k.dist[i] = infinity
	}
	k.dist[src] = 0
	e.AsyncTraverse([]graph.Vertex{src}, k, sg.Hints{DataBytes: 8, NsPerEdge: 1})
	out := make([]int64, n)
	for v := range out {
		if k.dist[v] == infinity {
			out[v] = -1
		} else {
			out[v] = int64(k.dist[v])
		}
	}
	return out
}
