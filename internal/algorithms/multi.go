// Multi-source traversal drivers: MultiBFS and MultiSSSP run k point
// queries in one union-frontier sweep, in the style of MS-BFS (Then et
// al., VLDB'15) — a uint64 bitmask per vertex carries which of the k
// concurrent searches have reached it, so one pass over the topology
// amortizes the edge traffic of k independent traversals. The serving
// layer's request batcher demultiplexes the per-source outputs; the
// conformance harness asserts each one is bit-identical to an
// independent single-source run.

package algorithms

import (
	"errors"
	"fmt"
	"math/bits"

	"polymer/internal/atomicx"
	"polymer/internal/fault"
	"polymer/internal/graph"
	"polymer/internal/obs"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// MaxMultiSources bounds one multi-source sweep: one bit per source in a
// uint64 mask.
const MaxMultiSources = 64

// fullMask returns the mask with the low k bits set.
func fullMask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(k) - 1
}

// checkSources validates a multi-source batch. Duplicate sources are
// allowed (their searches simply share every claim).
func checkSources(srcs []graph.Vertex, n int) error {
	if len(srcs) == 0 {
		return errors.New("algorithms: multi-source run needs at least one source")
	}
	if len(srcs) > MaxMultiSources {
		return fmt.Errorf("algorithms: %d sources exceed the %d-source batch bound", len(srcs), MaxMultiSources)
	}
	for _, s := range srcs {
		if int(s) >= n {
			return fmt.Errorf("algorithms: source %d outside [0,%d)", s, n)
		}
	}
	return nil
}

// mbfsKernel is the MS-BFS edge function. active[s] holds the searches
// whose frontier contains s this level; visited[d] the searches that have
// claimed d; next[d] the searches claiming d this level. Each (search,
// vertex) bit is claimed exactly once — in push mode by winning the
// atomic OR on visited[d] — so the level write behind a claimed bit has
// exactly one writer and the per-source levels are bit-identical to k
// single-source BFS runs by construction.
type mbfsKernel struct {
	level   int64
	full    uint64
	levels  [][]int64
	visited []uint64
	active  []uint64
	next    []uint64
}

func (k mbfsKernel) setLevels(d graph.Vertex, claimed uint64) {
	for b := claimed; b != 0; b &= b - 1 {
		k.levels[bits.TrailingZeros64(b)][d] = k.level
	}
}

func (k mbfsKernel) Update(s, d graph.Vertex, w float32) bool {
	fresh := k.active[s] &^ k.visited[d]
	if fresh == 0 {
		return false
	}
	k.visited[d] |= fresh
	k.next[d] |= fresh
	k.setLevels(d, fresh)
	return true
}

func (k mbfsKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	bits := k.active[s]
	if bits == 0 {
		return false
	}
	fresh := atomicx.OrUint64(&k.visited[d], bits)
	if fresh == 0 {
		return false
	}
	atomicx.OrUint64(&k.next[d], fresh)
	k.setLevels(d, fresh)
	return true
}

func (k mbfsKernel) Cond(d graph.Vertex) bool {
	return atomicx.LoadUint64(&k.visited[d]) != k.full
}

// mssspKernel relaxes every active search's distance across each edge
// (multi-source synchronous Bellman-Ford). The committed fixed point of
// each search is the unique least solution of dist[d] = min(dist[s]+w),
// so per-source outputs are bit-identical to single-source SSSP no
// matter how the k searches interleave.
type mssspKernel struct {
	dist   [][]float64
	active []uint64
	next   []uint64
}

func (k mssspKernel) Update(s, d graph.Vertex, w float32) bool {
	set := k.active[s]
	if set == 0 {
		return false
	}
	var improved uint64
	for b := set; b != 0; b &= b - 1 {
		i := bits.TrailingZeros64(b)
		di := k.dist[i]
		nd := atomicx.LoadFloat64(&di[s]) + edgeWeight(w)
		if nd < atomicx.LoadFloat64(&di[d]) {
			atomicx.StoreFloat64(&di[d], nd)
			improved |= uint64(1) << uint(i)
		}
	}
	if improved == 0 {
		return false
	}
	k.next[d] |= improved
	return true
}

func (k mssspKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	set := k.active[s]
	if set == 0 {
		return false
	}
	var improved uint64
	for b := set; b != 0; b &= b - 1 {
		i := bits.TrailingZeros64(b)
		di := k.dist[i]
		nd := atomicx.LoadFloat64(&di[s]) + edgeWeight(w)
		if atomicx.MinFloat64(&di[d], nd) {
			improved |= uint64(1) << uint(i)
		}
	}
	if improved == 0 {
		return false
	}
	atomicx.OrUint64(&k.next[d], improved)
	return true
}

func (k mssspKernel) Cond(graph.Vertex) bool { return true }

// Hints for the multi-source kernels: the mask word is the per-endpoint
// datum for MS-BFS; MS-SSSP additionally touches one distance word per
// relaxation attempt. The batching win is not in these per-edge charges —
// it is that one topology stream serves all k searches.
var (
	mbfsHints  = sg.Hints{DataBytes: 8, NsPerEdge: 1, DensePush: false}
	mssspHints = sg.Hints{DataBytes: 16, NsPerEdge: 1.5, Weighted: true}
)

// MultiBFS runs k breadth-first searches in one union-frontier sweep and
// returns one level array per source (-1 where unreachable), each
// bit-identical to BFS(e, srcs[i]).
func MultiBFS(e sg.Engine, srcs []graph.Vertex) ([][]int64, error) {
	g := e.Graph()
	n := g.NumVertices()
	if err := checkSources(srcs, n); err != nil {
		return nil, err
	}
	out := make([][]int64, len(srcs))
	for i := range out {
		out[i] = make([]int64, n)
		for v := range out[i] {
			out[i][v] = -1
		}
		out[i][srcs[i]] = 0
	}
	visited := make([]uint64, n)
	active := make([]uint64, n)
	next := make([]uint64, n)
	for i, s := range srcs {
		bit := uint64(1) << uint(i)
		visited[s] |= bit
		active[s] |= bit
	}
	frontier := state.FromVertices(e.Bounds(), srcs)
	full := fullMask(len(srcs))
	wd := fault.Watchdog{MaxSteps: n + 1}
	for level := int64(1); !frontier.IsEmpty(); level++ {
		k := mbfsKernel{level: level, full: full, levels: out, visited: visited, active: active, next: next}
		sp := obs.BeginStep(e, int(level-1))
		nf := edgeMap(e, frontier, k, mbfsHints)
		if err := e.Err(); err != nil {
			return nil, err
		}
		sp.End()
		// Retire the old frontier's active masks, then arm the new one.
		// A vertex in both frontiers is cleared first and re-armed with
		// exactly the searches that claimed it this level.
		e.VertexMap(frontier, func(v graph.Vertex) bool { active[v] = 0; return true })
		frontier = nf
		e.VertexMap(frontier, func(v graph.Vertex) bool { active[v] = next[v]; next[v] = 0; return true })
		if err := e.Err(); err != nil {
			return nil, err
		}
		if err := wd.Tick(frontier.Count()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MultiSSSP runs k single-source shortest-path queries in one
// union-frontier Bellman-Ford sweep and returns one distance array per
// source (+Inf where unreachable), each bit-identical to SSSP(e,
// srcs[i]).
func MultiSSSP(e sg.Engine, srcs []graph.Vertex) ([][]float64, error) {
	g := e.Graph()
	n := g.NumVertices()
	if err := checkSources(srcs, n); err != nil {
		return nil, err
	}
	dist := make([][]float64, len(srcs))
	for i := range dist {
		a := e.NewData(fmt.Sprintf("msssp/dist%d", i))
		dist[i] = a.Data
		for v := range dist[i] {
			dist[i][v] = infinity
		}
		dist[i][srcs[i]] = 0
	}
	active := make([]uint64, n)
	next := make([]uint64, n)
	for i, s := range srcs {
		active[s] |= uint64(1) << uint(i)
	}
	frontier := state.FromVertices(e.Bounds(), srcs)
	k := mssspKernel{dist: dist, active: active, next: next}
	wd := fault.Watchdog{MaxSteps: n + 1}
	for step := 0; !frontier.IsEmpty(); step++ {
		sp := obs.BeginStep(e, step)
		nf := edgeMap(e, frontier, k, mssspHints)
		if err := e.Err(); err != nil {
			return nil, err
		}
		sp.End()
		e.VertexMap(frontier, func(v graph.Vertex) bool { active[v] = 0; return true })
		frontier = nf
		e.VertexMap(frontier, func(v graph.Vertex) bool { active[v] = next[v]; next[v] = 0; return true })
		if err := e.Err(); err != nil {
			return nil, err
		}
		if err := wd.Tick(frontier.Count()); err != nil {
			return nil, err
		}
	}
	out := make([][]float64, len(srcs))
	for i := range out {
		out[i] = make([]float64, n)
		copy(out[i], dist[i])
	}
	return out, nil
}
