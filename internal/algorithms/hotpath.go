package algorithms

import (
	"polymer/internal/engines/xstream"
	"polymer/internal/graph"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// This file exports the PageRank iteration pieces so the hot-path
// benchmark suite (bench_hotpath_test.go) can drive exactly the loop body
// algorithms.PageRank runs, one iteration at a time.

// PRHints returns the Hints PageRank passes to EdgeMap.
func PRHints() sg.Hints { return prHints }

// PRKernel is the exported PageRank kernel plus its per-iteration state.
type PRKernel struct {
	prKernel
	base    float64
	damping float64
}

// NewPRKernel allocates PageRank state on e and returns the kernel.
func NewPRKernel(e sg.Engine, damping float64) *PRKernel {
	g := e.Graph()
	n := g.NumVertices()
	curr, next := e.NewData("pr/curr"), e.NewData("pr/next")
	invOut := make([]float64, n)
	for v := 0; v < n; v++ {
		curr.Data[v] = 1 / float64(n)
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			invOut[v] = 1 / float64(d)
		}
	}
	return &PRKernel{
		prKernel: prKernel{curr: curr.Data, next: next.Data, invOut: invOut},
		base:     (1 - damping) / float64(n),
		damping:  damping,
	}
}

// Apply runs the normalisation VertexMap body on v.
func (k *PRKernel) Apply(v graph.Vertex) {
	k.next[v] = k.base + k.damping*k.next[v]
	k.curr[v] = 0
}

// Swap exchanges the rank arrays for the next iteration.
func (k *PRKernel) Swap() { k.curr, k.next = k.next, k.curr }

// Iteration runs one full PageRank iteration — the push EdgeMap over the
// full frontier, the normalisation VertexMap, and the array swap — through
// the devirtualized dispatch, exactly as algorithms.PageRank does.
func (k *PRKernel) Iteration(e sg.Engine, all *state.Subset) {
	edgeMap(e, all, k.prKernel, prHints)
	e.VertexMap(all, func(v graph.Vertex) bool {
		k.Apply(v)
		return true
	})
	k.Swap()
}

// XSPRKernel is the exported X-Stream PageRank kernel.
type XSPRKernel struct {
	xsPR
}

// NewXSPRKernel allocates PageRank state on the X-Stream engine e.
func NewXSPRKernel(e *xstream.Engine, damping float64) *XSPRKernel {
	g := e.Graph()
	n := g.NumVertices()
	currA, nextA := e.NewData("pr/curr"), e.NewData("pr/next")
	k := &XSPRKernel{xsPR: xsPR{
		curr: currA.Data, next: nextA.Data,
		base: (1 - damping) / float64(n), damping: damping,
	}}
	k.invOut = make([]float64, n)
	for v := 0; v < n; v++ {
		k.curr[v] = 1 / float64(n)
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			k.invOut[v] = 1 / float64(d)
		}
	}
	return k
}

// Apply runs the normalisation phase body on v.
func (k *XSPRKernel) Apply(v graph.Vertex) bool {
	k.next[v] = k.base + k.damping*k.next[v]
	k.curr[v] = 0
	return true
}

// Swap exchanges the rank arrays for the next iteration.
func (k *XSPRKernel) Swap() { k.curr, k.next = k.next, k.curr }
