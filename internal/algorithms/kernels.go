// Package algorithms implements the paper's six evaluation algorithms —
// PageRank, SpMV, Bayesian belief propagation, BFS, connected components
// and single-source shortest paths (Section 6.1) — once against the
// scatter-gather interface (run by Polymer and the Ligra baseline), once
// against X-Stream's edge-centric interface, plus sequential reference
// implementations used by the test suite to validate every engine.
package algorithms

import (
	"math"
	"sync/atomic"

	"polymer/internal/atomicx"
	"polymer/internal/graph"
	"polymer/internal/sg"
)

// unvisited marks an unclaimed BFS parent slot.
const unvisited = ^uint32(0)

// prKernel is the paper's Algorithm 4.1 edge function: it atomically
// accumulates the scaled rank of the source into the target.
type prKernel struct {
	curr, next []float64
	invOut     []float64
}

func (k prKernel) Update(s, d graph.Vertex, w float32) bool {
	k.next[d] += k.curr[s] * k.invOut[s]
	return true
}

func (k prKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	atomicx.AddFloat64(&k.next[d], k.curr[s]*k.invOut[s])
	return true
}

func (k prKernel) Cond(graph.Vertex) bool { return true }

// spmvKernel accumulates w * x[s] into y[d]. Unweighted graphs use the
// adjacency matrix itself (unit weights), the same convention as
// edgeWeight — all engines and the reference must agree on it.
type spmvKernel struct{ x, y []float64 }

func (k spmvKernel) Update(s, d graph.Vertex, w float32) bool {
	k.y[d] += edgeWeight(w) * k.x[s]
	return true
}

func (k spmvKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	atomicx.AddFloat64(&k.y[d], edgeWeight(w)*k.x[s])
	return true
}

func (k spmvKernel) Cond(graph.Vertex) bool { return true }

// bpKernel multiplies damped messages into the target's belief
// accumulator: acc[d] *= 1 - (w/100) * curr[s].
type bpKernel struct{ curr, acc []float64 }

func bpMessage(curr float64, w float32) float64 {
	weight := 0.5
	if w != 0 {
		weight = float64(w) / 100
	}
	return 1 - weight*curr
}

func (k bpKernel) Update(s, d graph.Vertex, w float32) bool {
	k.acc[d] *= bpMessage(k.curr[s], w)
	return true
}

func (k bpKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	atomicx.MulFloat64(&k.acc[d], bpMessage(k.curr[s], w))
	return true
}

func (k bpKernel) Cond(graph.Vertex) bool { return true }

// bfsKernel claims unvisited vertices (direction-optimizing BFS).
type bfsKernel struct{ parent []uint32 }

func (k bfsKernel) Update(s, d graph.Vertex, w float32) bool {
	if atomic.LoadUint32(&k.parent[d]) == unvisited {
		atomic.StoreUint32(&k.parent[d], s)
		return true
	}
	return false
}

func (k bfsKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	return atomicx.CASUint32(&k.parent[d], unvisited, s)
}

func (k bfsKernel) Cond(d graph.Vertex) bool { return atomic.LoadUint32(&k.parent[d]) == unvisited }

// ccKernel propagates minimum labels (label-propagation connected
// components on the symmetrized graph).
type ccKernel struct{ labels []uint32 }

func (k ccKernel) Update(s, d graph.Vertex, w float32) bool {
	ls := atomic.LoadUint32(&k.labels[s])
	if ls < atomic.LoadUint32(&k.labels[d]) {
		atomic.StoreUint32(&k.labels[d], ls)
		return true
	}
	return false
}

func (k ccKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	return atomicx.MinUint32(&k.labels[d], atomic.LoadUint32(&k.labels[s]))
}

func (k ccKernel) Cond(graph.Vertex) bool { return true }

// ssspKernel relaxes edges with atomic distance minimisation
// (Bellman-Ford with data-driven scheduling).
type ssspKernel struct{ dist []float64 }

func (k ssspKernel) Update(s, d graph.Vertex, w float32) bool {
	nd := atomicx.LoadFloat64(&k.dist[s]) + edgeWeight(w)
	if nd < atomicx.LoadFloat64(&k.dist[d]) {
		atomicx.StoreFloat64(&k.dist[d], nd)
		return true
	}
	return false
}

func (k ssspKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	nd := atomicx.LoadFloat64(&k.dist[s]) + edgeWeight(w)
	return atomicx.MinFloat64(&k.dist[d], nd)
}

func (k ssspKernel) Cond(graph.Vertex) bool { return true }

// edgeWeight treats unweighted edges as unit weight.
func edgeWeight(w float32) float64 {
	if w == 0 {
		return 1
	}
	return float64(w)
}

// Hints for each algorithm, as the paper configures the systems: PR, SpMV
// and BP run push-based dense phases; the traversal algorithms prefer
// pull in dense phases (direction-optimizing).
var (
	prHints   = sg.Hints{DataBytes: 8, NsPerEdge: 1.5, DensePush: true, NoOutput: true}
	spmvHints = sg.Hints{DataBytes: 8, NsPerEdge: 1.5, DensePush: true, Weighted: true, NoOutput: true}
	bpHints   = sg.Hints{DataBytes: 16, NsPerEdge: 6, DensePush: true, Weighted: true, NoOutput: true}
	bfsHints  = sg.Hints{DataBytes: 4, NsPerEdge: 1, DensePush: false}
	ccHints   = sg.Hints{DataBytes: 4, NsPerEdge: 1}                   // dense rounds pull (Ligra's convention)
	ssspHints = sg.Hints{DataBytes: 8, NsPerEdge: 1.5, Weighted: true} // dense rounds pull
)

var infinity = math.Inf(1)
