package algorithms

import (
	"math"

	"polymer/internal/atomicx"
	"polymer/internal/engines/xstream"
	"polymer/internal/graph"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// prDeltaKernel propagates rank deltas: acc[d] accumulates the scaled
// deltas of active in-neighbours.
type prDeltaKernel struct {
	delta, acc []float64
	invOut     []float64
}

func (k *prDeltaKernel) Update(s, d graph.Vertex, w float32) bool {
	k.acc[d] += k.delta[s] * k.invOut[s]
	return true
}

func (k *prDeltaKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	atomicx.AddFloat64(&k.acc[d], k.delta[s]*k.invOut[s])
	return true
}

func (k *prDeltaKernel) Cond(graph.Vertex) bool { return true }

// PageRankDelta is the convergence-driven PageRank the paper's
// Algorithm 4.1 sketches: the frontier carries only vertices whose rank
// is still changing, and a vertex drops out once its rank change falls
// below eps. Because power iteration is linear, the change itself obeys
// delta_{k+1} = d * A^T delta_k, so propagating deltas (as Ligra's
// PageRankDelta does) converges to the exact fixed point while the
// frontier — and with it the adaptive runtime state — shrinks
// geometrically. It returns the ranks and the number of iterations.
func PageRankDelta(e sg.Engine, eps float64, maxIter int) ([]float64, int) {
	return pageRankDeltaFrom(e, eps, maxIter, nil)
}

// PageRankDeltaWarm resumes the delta iteration from ranks computed on a
// previous snapshot. Power iteration contracts toward the new topology's
// fixed point from any start vector, and the first round's delta_1 =
// r_1 - r_0 algebra holds for arbitrary r_0, so warm-starting from the
// old ranks is exact — it just converges in far fewer rounds when the
// snapshots are close. Vertices beyond len(prev) (a grown vertex set)
// start at the uniform 1/n.
func PageRankDeltaWarm(e sg.Engine, eps float64, maxIter int, prev []float64) ([]float64, int) {
	return pageRankDeltaFrom(e, eps, maxIter, prev)
}

func pageRankDeltaFrom(e sg.Engine, eps float64, maxIter int, prev []float64) ([]float64, int) {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil, 0
	}
	rankA := e.NewData("prd/rank")
	deltaA := e.NewData("prd/delta")
	accA := e.NewData("prd/acc")
	rank, delta, acc := rankA.Data, deltaA.Data, accA.Data
	invOut := make([]float64, n)
	for v := 0; v < n; v++ {
		r0 := 1 / float64(n)
		if v < len(prev) {
			r0 = prev[v]
		}
		rank[v] = r0
		delta[v] = r0 // first round propagates r_0 itself
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			invOut[v] = 1 / float64(d)
		}
	}
	k := &prDeltaKernel{delta: delta, acc: acc, invOut: invOut}
	const d = 0.85
	base := (1 - d) / float64(n)

	active := state.NewAll(e.Bounds())
	all := state.NewAll(e.Bounds())
	iter := 0
	for ; iter < maxIter && !active.IsEmpty(); iter++ {
		e.EdgeMap(active, k, prHints)
		first := iter == 0
		active = e.VertexMap(all, func(v graph.Vertex) bool {
			var nd float64
			if first {
				// delta_1 = r_1 - r_0 with r_1 = base + d*A^T r_0.
				nd = base + d*k.acc[v] - k.delta[v]
			} else {
				nd = d * k.acc[v]
			}
			rank[v] += nd
			k.delta[v] = nd
			k.acc[v] = 0
			return math.Abs(nd) > eps
		})
	}
	out := make([]float64, n)
	copy(out, rank)
	return out, iter
}

// xsPRDelta is the edge-centric delta kernel: scatter an active source's
// scaled delta, gather into the destination's accumulator. The apply
// phase (per iteration, below) folds the accumulator into the rank and
// decides frontier membership, so Gather's verdict is irrelevant — the
// apply phase overwrites the next active set.
type xsPRDelta struct{ delta, acc, invOut []float64 }

func (k *xsPRDelta) Scatter(s graph.Vertex, w float32) (float64, bool) {
	return k.delta[s] * k.invOut[s], true
}

func (k *xsPRDelta) Gather(d graph.Vertex, val float64) bool {
	k.acc[d] += val
	return true
}

// XSPageRankDelta is PageRankDelta on X-Stream's edge-centric interface:
// the active set carries only vertices whose rank is still changing, and
// every iteration still streams all edges (scattering only from active
// sources), which is exactly the engine's cost model. It returns the
// ranks and the number of iterations.
func XSPageRankDelta(e *xstream.Engine, eps float64, maxIter int) ([]float64, int) {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil, 0
	}
	rankA := e.NewData("prd/rank")
	deltaA := e.NewData("prd/delta")
	accA := e.NewData("prd/acc")
	rank, delta, acc := rankA.Data, deltaA.Data, accA.Data
	invOut := make([]float64, n)
	for v := 0; v < n; v++ {
		rank[v] = 1 / float64(n)
		delta[v] = 1 / float64(n)
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			invOut[v] = 1 / float64(d)
		}
	}
	k := &xsPRDelta{delta: delta, acc: acc, invOut: invOut}
	const d = 0.85
	base := (1 - d) / float64(n)

	e.SetAllActive()
	iter := 0
	for ; iter < maxIter && e.ActiveCount() > 0; iter++ {
		first := iter == 0
		e.Iterate(k, func(v graph.Vertex) bool {
			var nd float64
			if first {
				nd = base + d*k.acc[v] - k.delta[v]
			} else {
				nd = d * k.acc[v]
			}
			rank[v] += nd
			k.delta[v] = nd
			k.acc[v] = 0
			return math.Abs(nd) > eps
		})
	}
	out := make([]float64, n)
	copy(out, rank)
	return out, iter
}
