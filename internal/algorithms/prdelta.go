package algorithms

import (
	"math"

	"polymer/internal/atomicx"
	"polymer/internal/graph"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// prDeltaKernel propagates rank deltas: acc[d] accumulates the scaled
// deltas of active in-neighbours.
type prDeltaKernel struct {
	delta, acc []float64
	invOut     []float64
}

func (k *prDeltaKernel) Update(s, d graph.Vertex, w float32) bool {
	k.acc[d] += k.delta[s] * k.invOut[s]
	return true
}

func (k *prDeltaKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	atomicx.AddFloat64(&k.acc[d], k.delta[s]*k.invOut[s])
	return true
}

func (k *prDeltaKernel) Cond(graph.Vertex) bool { return true }

// PageRankDelta is the convergence-driven PageRank the paper's
// Algorithm 4.1 sketches: the frontier carries only vertices whose rank
// is still changing, and a vertex drops out once its rank change falls
// below eps. Because power iteration is linear, the change itself obeys
// delta_{k+1} = d * A^T delta_k, so propagating deltas (as Ligra's
// PageRankDelta does) converges to the exact fixed point while the
// frontier — and with it the adaptive runtime state — shrinks
// geometrically. It returns the ranks and the number of iterations.
func PageRankDelta(e sg.Engine, eps float64, maxIter int) ([]float64, int) {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil, 0
	}
	rankA := e.NewData("prd/rank")
	deltaA := e.NewData("prd/delta")
	accA := e.NewData("prd/acc")
	rank, delta, acc := rankA.Data, deltaA.Data, accA.Data
	invOut := make([]float64, n)
	for v := 0; v < n; v++ {
		rank[v] = 1 / float64(n)
		delta[v] = 1 / float64(n) // first round propagates r_0 itself
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			invOut[v] = 1 / float64(d)
		}
	}
	k := &prDeltaKernel{delta: delta, acc: acc, invOut: invOut}
	const d = 0.85
	base := (1 - d) / float64(n)

	active := state.NewAll(e.Bounds())
	all := state.NewAll(e.Bounds())
	iter := 0
	for ; iter < maxIter && !active.IsEmpty(); iter++ {
		e.EdgeMap(active, k, prHints)
		first := iter == 0
		active = e.VertexMap(all, func(v graph.Vertex) bool {
			var nd float64
			if first {
				// delta_1 = r_1 - r_0 with r_1 = base + d*A^T r_0.
				nd = base + d*k.acc[v] - k.delta[v]
			} else {
				nd = d * k.acc[v]
			}
			rank[v] += nd
			k.delta[v] = nd
			k.acc[v] = 0
			return math.Abs(nd) > eps
		})
	}
	out := make([]float64, n)
	copy(out, rank)
	return out, iter
}
