package algorithms

import (
	"math/rand"
	"testing"

	"polymer/internal/core"
	"polymer/internal/gen"
	"polymer/internal/graph"
)

func TestAsyncSSSPMatchesDijkstra(t *testing.T) {
	n, edges := gen.RoadGrid(15, 15, 9)
	g := graph.FromEdges(n, edges, true)
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	got := AsyncSSSP(e, 0)
	want := RefSSSP(g, 0)
	for v := 0; v < n; v++ {
		if !floatEq(got[v], want[v]) {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	if e.SimSeconds() <= 0 {
		t.Fatal("async run must advance the clock")
	}
	if e.Metrics().BarrierSeconds != 0 {
		t.Fatal("asynchronous execution must not charge barrier time")
	}
}

func TestAsyncBFSMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(300)
		m := rng.Intn(5 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{Src: graph.Vertex(rng.Intn(n)), Dst: graph.Vertex(rng.Intn(n))}
		}
		g := graph.FromEdges(n, edges, false)
		src := graph.Vertex(rng.Intn(n))
		e := core.MustNew(g, testMachine(), core.DefaultOptions())
		got := AsyncBFS(e, src)
		e.Close()
		want := RefBFS(g, src)
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("seed %d: level[%d] = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestAsyncIsolatedSeedTerminates(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{Src: 1, Dst: 2}}, false)
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	got := AsyncBFS(e, 0) // vertex 0 has no out-edges
	if got[0] != 0 {
		t.Fatalf("seed level = %d", got[0])
	}
	for v := 1; v < 5; v++ {
		if got[v] != -1 {
			t.Fatalf("level[%d] = %d, want -1", v, got[v])
		}
	}
}

func TestAsyncVersusSyncSimTime(t *testing.T) {
	// On a high-diameter graph the synchronous engine pays hundreds of
	// barrier crossings that the asynchronous executor avoids entirely.
	n, edges := gen.RoadGrid(60, 60, 3)
	g := graph.FromEdges(n, edges, true)

	eSync := core.MustNew(g, testMachine(), core.DefaultOptions())
	SSSP(eSync, 0)
	syncBarrier := eSync.Metrics().BarrierSeconds
	eSync.Close()

	eAsync := core.MustNew(g, testMachine(), core.DefaultOptions())
	AsyncSSSP(eAsync, 0)
	asyncBarrier := eAsync.Metrics().BarrierSeconds
	eAsync.Close()

	if syncBarrier <= 0 {
		t.Fatal("synchronous run must charge barriers")
	}
	if asyncBarrier != 0 {
		t.Fatal("asynchronous run must charge none")
	}
}
