package algorithms

import (
	"polymer/internal/graph"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// PageRank runs iters synchronous push-based PageRank iterations on a
// scatter-gather engine (the paper's Algorithm 4.1, measured over the
// first five iterations as in Section 6.2) and returns the ranks.
func PageRank(e sg.Engine, iters int, damping float64) []float64 {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	currA := e.NewData("pr/curr")
	nextA := e.NewData("pr/next")
	curr, next := currA.Data, nextA.Data
	invOut := make([]float64, n)
	for v := 0; v < n; v++ {
		curr[v] = 1 / float64(n)
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			invOut[v] = 1 / float64(d)
		}
	}
	k := prKernel{curr: curr, next: next, invOut: invOut}
	all := state.NewAll(e.Bounds())
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		edgeMap(e, all, k, prHints)
		e.VertexMap(all, func(v graph.Vertex) bool {
			k.next[v] = base + damping*k.next[v]
			k.curr[v] = 0 // pre-zero the array that becomes next
			return true
		})
		k.curr, k.next = k.next, k.curr
	}
	out := make([]float64, n)
	copy(out, k.curr)
	return out
}

// SpMV multiplies the weighted adjacency matrix with a dense vector iters
// times (y[v] = sum over in-edges (u,v) of w * x[u]; then x <- y).
func SpMV(e sg.Engine, iters int, x0 []float64) []float64 {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	xA := e.NewData("spmv/x")
	yA := e.NewData("spmv/y")
	k := spmvKernel{x: xA.Data, y: yA.Data}
	copy(k.x, x0)
	all := state.NewAll(e.Bounds())
	for it := 0; it < iters; it++ {
		edgeMap(e, all, k, spmvHints)
		e.VertexMap(all, func(v graph.Vertex) bool {
			k.x[v] = 0 // pre-zero the array that becomes y
			return true
		})
		k.x, k.y = k.y, k.x
	}
	out := make([]float64, n)
	copy(out, k.x)
	return out
}

// BP runs iters rounds of Bayesian belief propagation along weighted
// edges and returns per-vertex beliefs in [0, 1].
func BP(e sg.Engine, iters int) []float64 {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	currA := e.NewData("bp/curr")
	accA := e.NewData("bp/acc")
	k := bpKernel{curr: currA.Data, acc: accA.Data}
	for v := 0; v < n; v++ {
		k.curr[v] = 0.5
		k.acc[v] = 1
	}
	all := state.NewAll(e.Bounds())
	for it := 0; it < iters; it++ {
		edgeMap(e, all, k, bpHints)
		e.VertexMap(all, func(v graph.Vertex) bool {
			k.acc[v] = 1 - k.acc[v] // belief from the message product
			k.curr[v] = 1           // becomes the next accumulator
			return true
		})
		k.curr, k.acc = k.acc, k.curr
	}
	out := make([]float64, n)
	copy(out, k.curr)
	return out
}

// BFS runs a direction-optimizing breadth-first search from src and
// returns the level of every vertex (-1 if unreachable).
func BFS(e sg.Engine, src graph.Vertex) []int64 {
	g := e.Graph()
	n := g.NumVertices()
	levels := make([]int64, n)
	for i := range levels {
		levels[i] = -1
	}
	if n == 0 {
		return levels
	}
	parentA := e.NewData32("bfs/parent")
	k := bfsKernel{parent: parentA.Data}
	for i := range k.parent {
		k.parent[i] = unvisited
	}
	k.parent[src] = src
	levels[src] = 0
	frontier := state.NewSingle(e.Bounds(), src)
	for level := int64(1); !frontier.IsEmpty(); level++ {
		frontier = edgeMap(e, frontier, k, bfsHints)
		frontier.ForEach(func(v graph.Vertex) { levels[v] = level })
	}
	return levels
}

// CC computes connected components by label propagation over the
// symmetrized graph (the engine must have been built on
// g.Symmetrized()); it returns, for every vertex, the smallest vertex id
// in its component.
func CC(e sg.Engine) []graph.Vertex {
	n := e.Graph().NumVertices()
	labelsA := e.NewData32("cc/labels")
	k := ccKernel{labels: labelsA.Data}
	for v := range k.labels {
		k.labels[v] = uint32(v)
	}
	frontier := state.NewAll(e.Bounds())
	for !frontier.IsEmpty() {
		frontier = edgeMap(e, frontier, k, ccHints)
	}
	out := make([]graph.Vertex, n)
	copy(out, k.labels)
	return out
}

// SSSP computes single-source shortest paths from src with synchronous
// data-driven Bellman-Ford and returns the distances (+Inf when
// unreachable). Unweighted edges count as 1.
func SSSP(e sg.Engine, src graph.Vertex) []float64 {
	n := e.Graph().NumVertices()
	if n == 0 {
		return nil
	}
	distA := e.NewData("sssp/dist")
	k := ssspKernel{dist: distA.Data}
	for i := range k.dist {
		k.dist[i] = infinity
	}
	k.dist[src] = 0
	frontier := state.NewSingle(e.Bounds(), src)
	for !frontier.IsEmpty() {
		frontier = edgeMap(e, frontier, k, ssspHints)
	}
	out := make([]float64, n)
	copy(out, k.dist)
	return out
}
