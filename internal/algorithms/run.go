package algorithms

import (
	"polymer/internal/graph"
	"polymer/internal/obs"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// PageRank runs iters synchronous push-based PageRank iterations on a
// scatter-gather engine (the paper's Algorithm 4.1, measured over the
// first five iterations as in Section 6.2) and returns the ranks.
func PageRank(e sg.Engine, iters int, damping float64) []float64 {
	out, err := pageRankRun(e, iters, damping, nil, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// SpMV multiplies the weighted adjacency matrix with a dense vector iters
// times (y[v] = sum over in-edges (u,v) of w * x[u]; then x <- y).
func SpMV(e sg.Engine, iters int, x0 []float64) []float64 {
	out, err := SpMVE(e, iters, x0, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// BP runs iters rounds of Bayesian belief propagation along weighted
// edges and returns per-vertex beliefs in [0, 1].
func BP(e sg.Engine, iters int) []float64 {
	out, err := BPE(e, iters, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// BFS runs a direction-optimizing breadth-first search from src and
// returns the level of every vertex (-1 if unreachable).
func BFS(e sg.Engine, src graph.Vertex) []int64 {
	levels, err := BFSE(e, src, nil)
	if err != nil {
		panic(err)
	}
	return levels
}

// CC computes connected components by label propagation over the
// symmetrized graph (the engine must have been built on
// g.Symmetrized()); it returns, for every vertex, the smallest vertex id
// in its component.
func CC(e sg.Engine) []graph.Vertex {
	n := e.Graph().NumVertices()
	labelsA := e.NewData32("cc/labels")
	k := ccKernel{labels: labelsA.Data}
	for v := range k.labels {
		k.labels[v] = uint32(v)
	}
	frontier := state.NewAll(e.Bounds())
	for step := 0; !frontier.IsEmpty(); step++ {
		sp := obs.BeginStep(e, step)
		frontier = edgeMap(e, frontier, k, ccHints)
		sp.End()
	}
	out := make([]graph.Vertex, n)
	copy(out, k.labels)
	return out
}

// SSSP computes single-source shortest paths from src with synchronous
// data-driven Bellman-Ford and returns the distances (+Inf when
// unreachable). Unweighted edges count as 1.
func SSSP(e sg.Engine, src graph.Vertex) []float64 {
	n := e.Graph().NumVertices()
	if n == 0 {
		return nil
	}
	distA := e.NewData("sssp/dist")
	k := ssspKernel{dist: distA.Data}
	for i := range k.dist {
		k.dist[i] = infinity
	}
	k.dist[src] = 0
	frontier := state.NewSingle(e.Bounds(), src)
	for step := 0; !frontier.IsEmpty(); step++ {
		sp := obs.BeginStep(e, step)
		frontier = edgeMap(e, frontier, k, ssspHints)
		sp.End()
	}
	out := make([]float64, n)
	copy(out, k.dist)
	return out
}
