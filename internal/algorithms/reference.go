package algorithms

import (
	"container/heap"

	"polymer/internal/graph"
)

// The Ref* functions are sequential reference implementations used by the
// test suite to validate every engine, and by examples to sanity-check
// results.

// RefPageRank is the sequential pull-based PageRank over all vertices.
func RefPageRank(g *graph.Graph, iters int, damping float64) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	curr := make([]float64, n)
	next := make([]float64, n)
	invOut := make([]float64, n)
	for v := 0; v < n; v++ {
		curr[v] = 1 / float64(n)
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			invOut[v] = 1 / float64(d)
		}
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			var sum float64
			for _, u := range g.InNeighbors(graph.Vertex(v)) {
				sum += curr[u] * invOut[u]
			}
			next[v] = base + damping*sum
		}
		curr, next = next, curr
	}
	return curr
}

// RefSpMV is the sequential iterated sparse matrix-vector product.
func RefSpMV(g *graph.Graph, iters int, x0 []float64) []float64 {
	n := g.NumVertices()
	x := make([]float64, n)
	y := make([]float64, n)
	copy(x, x0)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			nbrs := g.InNeighbors(graph.Vertex(v))
			wts := g.InWeights(graph.Vertex(v))
			var sum float64
			for j, u := range nbrs {
				w := 1.0
				if wts != nil && wts[j] != 0 {
					w = float64(wts[j])
				}
				sum += w * x[u]
			}
			y[v] = sum
		}
		x, y = y, x
	}
	return x
}

// RefBP is the sequential belief propagation matching the engines'
// message product.
func RefBP(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	curr := make([]float64, n)
	next := make([]float64, n)
	for i := range curr {
		curr[i] = 0.5
	}
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			nbrs := g.InNeighbors(graph.Vertex(v))
			wts := g.InWeights(graph.Vertex(v))
			acc := 1.0
			for j, u := range nbrs {
				var w float32
				if wts != nil {
					w = wts[j]
				}
				acc *= bpMessage(curr[u], w)
			}
			next[v] = 1 - acc
		}
		curr, next = next, curr
	}
	return curr
}

// RefBFS is the sequential breadth-first search (levels, -1 when
// unreachable).
func RefBFS(g *graph.Graph, src graph.Vertex) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.OutNeighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// RefCC computes weakly-connected components (treating edges as
// undirected) and labels every vertex with the smallest vertex id in its
// component.
func RefCC(g *graph.Graph) []graph.Vertex {
	n := g.NumVertices()
	labels := make([]graph.Vertex, n)
	for i := range labels {
		labels[i] = graph.Vertex(n) // sentinel: unvisited
	}
	for v := 0; v < n; v++ {
		if labels[v] != graph.Vertex(n) {
			continue
		}
		// BFS over both directions from v; v is the smallest unvisited id,
		// so it is the component minimum.
		labels[v] = graph.Vertex(v)
		queue := []graph.Vertex{graph.Vertex(v)}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, u := range g.OutNeighbors(x) {
				if labels[u] == graph.Vertex(n) {
					labels[u] = graph.Vertex(v)
					queue = append(queue, u)
				}
			}
			for _, u := range g.InNeighbors(x) {
				if labels[u] == graph.Vertex(n) {
					labels[u] = graph.Vertex(v)
					queue = append(queue, u)
				}
			}
		}
	}
	return labels
}

// RefSSSP is sequential Dijkstra (unweighted edges count as 1); +Inf when
// unreachable.
func RefSSSP(g *graph.Graph, src graph.Vertex) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = infinity
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	h := &refPQ{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(refPQItem)
		if it.d > dist[it.v] {
			continue
		}
		nbrs := g.OutNeighbors(it.v)
		wts := g.OutWeights(it.v)
		for j, u := range nbrs {
			var w float32
			if wts != nil {
				w = wts[j]
			}
			if nd := it.d + edgeWeight(w); nd < dist[u] {
				dist[u] = nd
				heap.Push(h, refPQItem{u, nd})
			}
		}
	}
	return dist
}

type refPQItem struct {
	v graph.Vertex
	d float64
}

type refPQ []refPQItem

func (p refPQ) Len() int           { return len(p) }
func (p refPQ) Less(i, j int) bool { return p[i].d < p[j].d }
func (p refPQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *refPQ) Push(x any)        { *p = append(*p, x.(refPQItem)) }
func (p *refPQ) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}
