package algorithms

import (
	"math"
	"testing"

	"polymer/internal/core"
	"polymer/internal/engines/ligra"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

func TestPageRankDeltaConvergesToFixedPoint(t *testing.T) {
	g, _ := gen.Load(gen.Twitter, gen.Tiny, false)
	for name, e := range map[string]sg.Engine{
		"polymer": core.MustNew(g, testMachine(), core.DefaultOptions()),
		"ligra":   ligra.MustNew(g, testMachine(), ligra.DefaultOptions()),
	} {
		ranks, iters := PageRankDelta(e, 1e-10, 200)
		e.Close()
		if iters >= 200 {
			t.Fatalf("%s: did not converge in 200 iterations", name)
		}
		// At the fixed point the ranks satisfy the PageRank equation:
		// compare against a long fixed-iteration reference run.
		want := RefPageRank(g, iters+20, 0.85)
		for v := range want {
			if math.Abs(ranks[v]-want[v]) > 1e-7 {
				t.Fatalf("%s: rank[%d] = %v, reference %v", name, v, ranks[v], want[v])
			}
		}
	}
}

func TestPageRankDeltaFrontierShrinks(t *testing.T) {
	g, _ := gen.Load(gen.Twitter, gen.Tiny, false)
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	_, iters := PageRankDelta(e, 1e-4, 200)
	if iters >= 200 || iters < 2 {
		t.Fatalf("unexpected iteration count %d", iters)
	}
	// A loose eps must converge faster than a tight one.
	e2 := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e2.Close()
	_, itersTight := PageRankDelta(e2, 1e-12, 500)
	if itersTight <= iters {
		t.Fatalf("tight eps (%d iters) must need more than loose eps (%d)", itersTight, iters)
	}
}

func TestPageRankDeltaMaxIterCap(t *testing.T) {
	// On a long chain, deltas keep flowing for ~n rounds, so a small cap
	// binds.
	n, edges := gen.Chain(50)
	g := graph.FromEdges(n, edges, false)
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	_, iters := PageRankDelta(e, 0, 7)
	if iters != 7 {
		t.Fatalf("maxIter cap violated: %d", iters)
	}
}

func TestPageRankDeltaUniformCycleConvergesImmediately(t *testing.T) {
	// The uniform distribution is already the fixed point of a cycle, so
	// the first round produces zero deltas.
	n, edges := gen.Cycle(32)
	g := graph.FromEdges(n, edges, false)
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	ranks, iters := PageRankDelta(e, 1e-15, 100)
	if iters != 1 {
		t.Fatalf("cycle should converge in one round, took %d", iters)
	}
	for v := 0; v < n; v++ {
		if math.Abs(ranks[v]-1.0/float64(n)) > 1e-12 {
			t.Fatalf("cycle rank[%d] = %v", v, ranks[v])
		}
	}
}

func TestPageRankDeltaEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil, false)
	m := numa.NewMachine(numa.IntelXeon80(), 1, 1)
	e := core.MustNew(g, m, core.DefaultOptions())
	defer e.Close()
	ranks, iters := PageRankDelta(e, 1e-6, 10)
	if ranks != nil || iters != 0 {
		t.Fatal("empty graph must return immediately")
	}
}
