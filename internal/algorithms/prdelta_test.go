package algorithms

import (
	"math"
	"testing"

	"polymer/internal/core"
	"polymer/internal/engines/ligra"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

func TestPageRankDeltaConvergesToFixedPoint(t *testing.T) {
	g, _ := gen.Load(gen.Twitter, gen.Tiny, false)
	for name, e := range map[string]sg.Engine{
		"polymer": core.MustNew(g, testMachine(), core.DefaultOptions()),
		"ligra":   ligra.MustNew(g, testMachine(), ligra.DefaultOptions()),
	} {
		ranks, iters := PageRankDelta(e, 1e-10, 200)
		e.Close()
		if iters >= 200 {
			t.Fatalf("%s: did not converge in 200 iterations", name)
		}
		// At the fixed point the ranks satisfy the PageRank equation:
		// compare against a long fixed-iteration reference run.
		want := RefPageRank(g, iters+20, 0.85)
		for v := range want {
			if math.Abs(ranks[v]-want[v]) > 1e-7 {
				t.Fatalf("%s: rank[%d] = %v, reference %v", name, v, ranks[v], want[v])
			}
		}
	}
}

func TestPageRankDeltaFrontierShrinks(t *testing.T) {
	g, _ := gen.Load(gen.Twitter, gen.Tiny, false)
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	_, iters := PageRankDelta(e, 1e-4, 200)
	if iters >= 200 || iters < 2 {
		t.Fatalf("unexpected iteration count %d", iters)
	}
	// A loose eps must converge faster than a tight one.
	e2 := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e2.Close()
	_, itersTight := PageRankDelta(e2, 1e-12, 500)
	if itersTight <= iters {
		t.Fatalf("tight eps (%d iters) must need more than loose eps (%d)", itersTight, iters)
	}
}

func TestPageRankDeltaMaxIterCap(t *testing.T) {
	// On a long chain, deltas keep flowing for ~n rounds, so a small cap
	// binds.
	n, edges := gen.Chain(50)
	g := graph.FromEdges(n, edges, false)
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	_, iters := PageRankDelta(e, 0, 7)
	if iters != 7 {
		t.Fatalf("maxIter cap violated: %d", iters)
	}
}

func TestPageRankDeltaUniformCycleConvergesImmediately(t *testing.T) {
	// The uniform distribution is already the fixed point of a cycle, so
	// the first round produces zero deltas.
	n, edges := gen.Cycle(32)
	g := graph.FromEdges(n, edges, false)
	e := core.MustNew(g, testMachine(), core.DefaultOptions())
	defer e.Close()
	ranks, iters := PageRankDelta(e, 1e-15, 100)
	if iters != 1 {
		t.Fatalf("cycle should converge in one round, took %d", iters)
	}
	for v := 0; v < n; v++ {
		if math.Abs(ranks[v]-1.0/float64(n)) > 1e-12 {
			t.Fatalf("cycle rank[%d] = %v", v, ranks[v])
		}
	}
}

func TestPageRankDeltaWarmStartAfterSnapshotHandOff(t *testing.T) {
	g1, _ := gen.Load(gen.Twitter, gen.Tiny, false)
	e1 := core.MustNew(g1, testMachine(), core.DefaultOptions())
	prev, _ := PageRankDelta(e1, 1e-10, 300)
	e1.Close()

	// The next snapshot: the same graph plus a handful of committed edges.
	n := g1.NumVertices()
	edges := collectEdges(g1)
	edges = append(edges,
		graph.Edge{Src: 0, Dst: graph.Vertex(n - 1)},
		graph.Edge{Src: graph.Vertex(n / 2), Dst: 1},
		graph.Edge{Src: graph.Vertex(n - 1), Dst: graph.Vertex(n / 3)},
	)
	g2 := graph.FromEdges(n, edges, false)

	cold := core.MustNew(g2, testMachine(), core.DefaultOptions())
	wantRanks, coldIters := PageRankDelta(cold, 1e-10, 300)
	cold.Close()

	warm := core.MustNew(g2, testMachine(), core.DefaultOptions())
	gotRanks, warmIters := PageRankDeltaWarm(warm, 1e-10, 300, prev)
	warm.Close()

	// Same fixed point, reached from the old snapshot's ranks in no more
	// rounds than the cold uniform start needs.
	for v := range wantRanks {
		if math.Abs(gotRanks[v]-wantRanks[v]) > 1e-7 {
			t.Fatalf("warm rank[%d] = %v, cold %v", v, gotRanks[v], wantRanks[v])
		}
	}
	if warmIters > coldIters {
		t.Fatalf("warm start took %d iters, cold only %d", warmIters, coldIters)
	}
}

func TestPageRankDeltaWarmNilPrevMatchesCold(t *testing.T) {
	// A nil prev is the cold path: same code, uniform start vector.
	g, _ := gen.Load(gen.Twitter, gen.Tiny, false)
	e1 := core.MustNew(g, testMachine(), core.DefaultOptions())
	coldRanks, coldIters := PageRankDelta(e1, 1e-8, 200)
	e1.Close()
	e2 := core.MustNew(g, testMachine(), core.DefaultOptions())
	warmRanks, warmIters := PageRankDeltaWarm(e2, 1e-8, 200, nil)
	e2.Close()
	if warmIters != coldIters {
		t.Fatalf("nil-prev warm took %d iters, cold %d", warmIters, coldIters)
	}
	for v := range coldRanks {
		if math.Abs(warmRanks[v]-coldRanks[v]) > 1e-9 {
			t.Fatalf("nil-prev warm diverged at %d: %v vs %v", v, warmRanks[v], coldRanks[v])
		}
	}
}

func TestPageRankDeltaEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil, false)
	m := numa.NewMachine(numa.IntelXeon80(), 1, 1)
	e := core.MustNew(g, m, core.DefaultOptions())
	defer e.Close()
	ranks, iters := PageRankDelta(e, 1e-6, 10)
	if ranks != nil || iters != 0 {
		t.Fatal("empty graph must return immediately")
	}
}
