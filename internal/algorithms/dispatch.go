package algorithms

import (
	"polymer/internal/core"
	"polymer/internal/engines/ligra"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// edgeMap routes an EdgeMap to the engine's generic entry point when the
// concrete engine type is known. Instantiating core.EdgeMapK / ligra.EdgeMapK
// at the concrete (value) kernel type lets the compiler devirtualize and
// inline the per-edge Cond/Update/UpdateAtomic calls, which the interface
// method cannot: through sg.Engine.EdgeMap every edge pays two dynamic
// dispatches. Engines without a generic entry point fall back to the
// interface path unchanged.
func edgeMap[K sg.EdgeKernel](e sg.Engine, a *state.Subset, k K, h sg.Hints) *state.Subset {
	switch t := e.(type) {
	case *core.Engine:
		return core.EdgeMapK(t, a, k, h)
	case *ligra.Engine:
		return ligra.EdgeMapK(t, a, k, h)
	default:
		return e.EdgeMap(a, k, h)
	}
}
