package algorithms

import (
	"polymer/internal/engines/xstream"
	"polymer/internal/graph"
)

// xsPR is the X-Stream PageRank kernel.
type xsPR struct {
	curr, next []float64
	invOut     []float64
	base       float64
	damping    float64
}

func (k *xsPR) Scatter(s graph.Vertex, w float32) (float64, bool) {
	return k.curr[s] * k.invOut[s], true
}

func (k *xsPR) Gather(d graph.Vertex, val float64) bool {
	k.next[d] += val
	return true
}

// XSPageRank runs iters push-based PageRank iterations on X-Stream.
func XSPageRank(e *xstream.Engine, iters int, damping float64) []float64 {
	out, err := XSPageRankE(e, iters, damping, nil)
	if err != nil {
		panic(err)
	}
	return out
}

type xsSpMV struct{ x, y []float64 }

func (k *xsSpMV) Scatter(s graph.Vertex, w float32) (float64, bool) {
	return edgeWeight(w) * k.x[s], true
}

func (k *xsSpMV) Gather(d graph.Vertex, val float64) bool {
	k.y[d] += val
	return true
}

// XSSpMV runs iters sparse matrix-vector multiplications on X-Stream.
func XSSpMV(e *xstream.Engine, iters int, x0 []float64) []float64 {
	n := e.Graph().NumVertices()
	if n == 0 {
		return nil
	}
	xA, yA := e.NewData("spmv/x"), e.NewData("spmv/y")
	k := &xsSpMV{x: xA.Data, y: yA.Data}
	copy(k.x, x0)
	for it := 0; it < iters; it++ {
		e.SetAllActive()
		e.Iterate(k, func(v graph.Vertex) bool {
			k.x[v] = 0
			return true
		})
		k.x, k.y = k.y, k.x
	}
	out := make([]float64, n)
	copy(out, k.x)
	return out
}

type xsBP struct{ curr, acc []float64 }

func (k *xsBP) Scatter(s graph.Vertex, w float32) (float64, bool) {
	return bpMessage(k.curr[s], w), true
}

func (k *xsBP) Gather(d graph.Vertex, val float64) bool {
	k.acc[d] *= val
	return true
}

// XSBP runs iters belief-propagation rounds on X-Stream.
func XSBP(e *xstream.Engine, iters int) []float64 {
	n := e.Graph().NumVertices()
	if n == 0 {
		return nil
	}
	currA, accA := e.NewData("bp/curr"), e.NewData("bp/acc")
	k := &xsBP{curr: currA.Data, acc: accA.Data}
	for v := 0; v < n; v++ {
		k.curr[v] = 0.5
		k.acc[v] = 1
	}
	for it := 0; it < iters; it++ {
		e.SetAllActive()
		e.Iterate(k, func(v graph.Vertex) bool {
			k.acc[v] = 1 - k.acc[v]
			k.curr[v] = 1
			return true
		})
		k.curr, k.acc = k.acc, k.curr
	}
	out := make([]float64, n)
	copy(out, k.curr)
	return out
}

// xsLevel relaxes integer levels (BFS) or weighted distances (SSSP).
type xsLevel struct {
	dist     []float64
	weighted bool
}

func (k *xsLevel) Scatter(s graph.Vertex, w float32) (float64, bool) {
	step := 1.0
	if k.weighted {
		step = edgeWeight(w)
	}
	return k.dist[s] + step, true
}

func (k *xsLevel) Gather(d graph.Vertex, val float64) bool {
	if val < k.dist[d] {
		k.dist[d] = val
		return true
	}
	return false
}

// XSBFS runs BFS on X-Stream (levels via unit-distance relaxation, the
// Bellman-Ford-style formulation edge-centric engines use) and returns
// levels (-1 when unreachable).
func XSBFS(e *xstream.Engine, src graph.Vertex) []int64 {
	n := e.Graph().NumVertices()
	if n == 0 {
		return nil
	}
	distA := e.NewData("bfs/dist")
	k := &xsLevel{dist: distA.Data}
	for i := range k.dist {
		k.dist[i] = infinity
	}
	k.dist[src] = 0
	e.SetActive([]graph.Vertex{src})
	for e.ActiveCount() > 0 {
		e.Iterate(k, nil)
	}
	out := make([]int64, n)
	for v := range out {
		if k.dist[v] == infinity {
			out[v] = -1
		} else {
			out[v] = int64(k.dist[v])
		}
	}
	return out
}

// XSSSSP runs single-source shortest paths on X-Stream.
func XSSSSP(e *xstream.Engine, src graph.Vertex) []float64 {
	n := e.Graph().NumVertices()
	if n == 0 {
		return nil
	}
	distA := e.NewData("sssp/dist")
	k := &xsLevel{dist: distA.Data, weighted: true}
	for i := range k.dist {
		k.dist[i] = infinity
	}
	k.dist[src] = 0
	e.SetActive([]graph.Vertex{src})
	for e.ActiveCount() > 0 {
		e.Iterate(k, nil)
	}
	out := make([]float64, n)
	copy(out, k.dist)
	return out
}

type xsCC struct{ labels []float64 }

func (k *xsCC) Scatter(s graph.Vertex, w float32) (float64, bool) { return k.labels[s], true }

func (k *xsCC) Gather(d graph.Vertex, val float64) bool {
	if val < k.labels[d] {
		k.labels[d] = val
		return true
	}
	return false
}

// XSCC computes connected components by label propagation on X-Stream
// (the engine must be built on the symmetrized graph).
func XSCC(e *xstream.Engine) []graph.Vertex {
	n := e.Graph().NumVertices()
	labelsA := e.NewData("cc/labels")
	k := &xsCC{labels: labelsA.Data}
	for v := range k.labels {
		k.labels[v] = float64(v)
	}
	e.SetAllActive()
	for e.ActiveCount() > 0 {
		e.Iterate(k, nil)
	}
	out := make([]graph.Vertex, n)
	for v := range out {
		out[v] = graph.Vertex(k.labels[v])
	}
	return out
}
