// Session-capable drivers: each superstep runs as one fault.Step, so an
// injected fault (worker panic, offline node, degraded link, allocation
// failure) rolls back the step's vertex state, frontier and simulated
// charges, repairs the fault, and replays — the committed run is
// bit-identical to a fault-free one. The plain drivers in run.go delegate
// here with a nil session, which degrades to bare panic containment.

package algorithms

import (
	"polymer/internal/engines/xstream"
	"polymer/internal/fault"
	"polymer/internal/graph"
	"polymer/internal/obs"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// PageRankE is the fault-session-capable PageRank.
func PageRankE(e sg.Engine, iters int, damping float64, sess *fault.Session) ([]float64, error) {
	return pageRankRun(e, iters, damping, nil, sess)
}

// PageRankFrom runs PageRank seeded with an existing rank vector; the
// degradation harness uses it to continue a run on a rebuilt engine after
// a permanent node failure.
func PageRankFrom(e sg.Engine, iters int, damping float64, init []float64) []float64 {
	out, err := pageRankRun(e, iters, damping, init, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// pageRankRun is the shared PageRank driver behind PageRank, PageRankE
// and PageRankFrom.
func pageRankRun(e sg.Engine, iters int, damping float64, init []float64, sess *fault.Session) ([]float64, error) {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	currA := e.NewData("pr/curr")
	nextA := e.NewData("pr/next")
	curr, next := currA.Data, nextA.Data
	invOut := make([]float64, n)
	for v := 0; v < n; v++ {
		if init != nil {
			curr[v] = init[v]
		} else {
			curr[v] = 1 / float64(n)
		}
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			invOut[v] = 1 / float64(d)
		}
	}
	k := prKernel{curr: curr, next: next, invOut: invOut}
	all := state.NewAll(e.Bounds())
	base := (1 - damping) / float64(n)
	if sess != nil {
		sess.TrackF64(curr, next)
	}
	for it := 0; it < iters; it++ {
		// Span the step only once it commits: a rolled-back attempt is
		// re-measured by the replay, so the emitted charge stays clean.
		sp := obs.BeginStep(e, it)
		err := fault.Step(sess, it, func() error {
			edgeMap(e, all, k, prHints)
			if err := e.Err(); err != nil {
				return err
			}
			e.VertexMap(all, func(v graph.Vertex) bool {
				k.next[v] = base + damping*k.next[v]
				k.curr[v] = 0 // pre-zero the array that becomes next
				return true
			})
			if err := e.Err(); err != nil {
				return err
			}
			return fault.CheckFinite("pagerank", k.next)
		})
		if err != nil {
			return nil, err
		}
		sp.End()
		// Swap only after the step committed, so a replay reruns over the
		// same input buffer.
		k.curr, k.next = k.next, k.curr
	}
	out := make([]float64, n)
	copy(out, k.curr)
	return out, nil
}

// SpMVE is the fault-session-capable SpMV.
func SpMVE(e sg.Engine, iters int, x0 []float64, sess *fault.Session) ([]float64, error) {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	xA := e.NewData("spmv/x")
	yA := e.NewData("spmv/y")
	k := spmvKernel{x: xA.Data, y: yA.Data}
	copy(k.x, x0)
	all := state.NewAll(e.Bounds())
	if sess != nil {
		sess.TrackF64(k.x, k.y)
	}
	for it := 0; it < iters; it++ {
		sp := obs.BeginStep(e, it)
		err := fault.Step(sess, it, func() error {
			edgeMap(e, all, k, spmvHints)
			if err := e.Err(); err != nil {
				return err
			}
			e.VertexMap(all, func(v graph.Vertex) bool {
				k.x[v] = 0 // pre-zero the array that becomes y
				return true
			})
			if err := e.Err(); err != nil {
				return err
			}
			return fault.CheckFinite("spmv", k.y)
		})
		if err != nil {
			return nil, err
		}
		sp.End()
		k.x, k.y = k.y, k.x
	}
	out := make([]float64, n)
	copy(out, k.x)
	return out, nil
}

// BPE is the fault-session-capable belief propagation.
func BPE(e sg.Engine, iters int, sess *fault.Session) ([]float64, error) {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	currA := e.NewData("bp/curr")
	accA := e.NewData("bp/acc")
	k := bpKernel{curr: currA.Data, acc: accA.Data}
	for v := 0; v < n; v++ {
		k.curr[v] = 0.5
		k.acc[v] = 1
	}
	all := state.NewAll(e.Bounds())
	if sess != nil {
		sess.TrackF64(k.curr, k.acc)
	}
	for it := 0; it < iters; it++ {
		sp := obs.BeginStep(e, it)
		err := fault.Step(sess, it, func() error {
			edgeMap(e, all, k, bpHints)
			if err := e.Err(); err != nil {
				return err
			}
			e.VertexMap(all, func(v graph.Vertex) bool {
				k.acc[v] = 1 - k.acc[v] // belief from the message product
				k.curr[v] = 1           // becomes the next accumulator
				return true
			})
			if err := e.Err(); err != nil {
				return err
			}
			return fault.CheckFinite("bp", k.acc)
		})
		if err != nil {
			return nil, err
		}
		sp.End()
		k.curr, k.acc = k.acc, k.curr
	}
	out := make([]float64, n)
	copy(out, k.curr)
	return out, nil
}

// BFSE is the fault-session-capable BFS. A step budget watchdog bounds
// the traversal (each level must claim at least one new parent, so more
// than n levels means a runaway loop).
func BFSE(e sg.Engine, src graph.Vertex, sess *fault.Session) ([]int64, error) {
	g := e.Graph()
	n := g.NumVertices()
	levels := make([]int64, n)
	for i := range levels {
		levels[i] = -1
	}
	if n == 0 {
		return levels, nil
	}
	parentA := e.NewData32("bfs/parent")
	k := bfsKernel{parent: parentA.Data}
	for i := range k.parent {
		k.parent[i] = unvisited
	}
	k.parent[src] = src
	levels[src] = 0
	frontier := state.NewSingle(e.Bounds(), src)
	if sess != nil {
		sess.TrackU32(k.parent)
		sess.Frontier(
			func() *state.Subset { return frontier },
			func(f *state.Subset) { frontier = f },
		)
	}
	wd := fault.Watchdog{MaxSteps: n + 1}
	for level := int64(1); !frontier.IsEmpty(); level++ {
		var nf *state.Subset
		sp := obs.BeginStep(e, int(level-1))
		err := fault.Step(sess, int(level-1), func() error {
			nf = edgeMap(e, frontier, k, bfsHints)
			return e.Err()
		})
		if err != nil {
			return nil, err
		}
		sp.End()
		// Adopt the new frontier only after the step committed.
		frontier = nf
		frontier.ForEach(func(v graph.Vertex) { levels[v] = level })
		if err := wd.Tick(frontier.Count()); err != nil {
			return nil, err
		}
	}
	return levels, nil
}

// SSSPE is the fault-session-capable single-source shortest paths:
// synchronous data-driven Bellman-Ford, one fault.Step per relaxation
// round, with the distance array checkpointed and the frontier adopted
// only after each step commits. The committed distances are the unique
// least fixed point of the relaxation system, so they are bit-identical
// to a fault-free run.
func SSSPE(e sg.Engine, src graph.Vertex, sess *fault.Session) ([]float64, error) {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	distA := e.NewData("sssp/dist")
	k := ssspKernel{dist: distA.Data}
	for i := range k.dist {
		k.dist[i] = infinity
	}
	k.dist[src] = 0
	frontier := state.NewSingle(e.Bounds(), src)
	if sess != nil {
		sess.TrackF64(k.dist)
		sess.Frontier(
			func() *state.Subset { return frontier },
			func(f *state.Subset) { frontier = f },
		)
	}
	wd := fault.Watchdog{MaxSteps: n + 1}
	for step := 0; !frontier.IsEmpty(); step++ {
		var nf *state.Subset
		sp := obs.BeginStep(e, step)
		err := fault.Step(sess, step, func() error {
			nf = edgeMap(e, frontier, k, ssspHints)
			return e.Err()
		})
		if err != nil {
			return nil, err
		}
		sp.End()
		frontier = nf
		if err := wd.Tick(frontier.Count()); err != nil {
			return nil, err
		}
	}
	out := make([]float64, n)
	copy(out, k.dist)
	return out, nil
}

// XSPageRankE is the fault-session-capable X-Stream PageRank. The active
// edge-set lives inside the engine, so its snapshot rides on the engine's
// SnapshotSim rather than the session's frontier accessors.
func XSPageRankE(e *xstream.Engine, iters int, damping float64, sess *fault.Session) ([]float64, error) {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	currA, nextA := e.NewData("pr/curr"), e.NewData("pr/next")
	k := &xsPR{curr: currA.Data, next: nextA.Data, base: (1 - damping) / float64(n), damping: damping}
	k.invOut = make([]float64, n)
	for v := 0; v < n; v++ {
		k.curr[v] = 1 / float64(n)
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			k.invOut[v] = 1 / float64(d)
		}
	}
	if sess != nil {
		sess.TrackF64(k.curr, k.next)
	}
	for it := 0; it < iters; it++ {
		err := fault.Step(sess, it, func() error {
			e.SetAllActive()
			e.Iterate(k, func(v graph.Vertex) bool {
				k.next[v] = k.base + k.damping*k.next[v]
				k.curr[v] = 0
				return true
			})
			if err := e.Err(); err != nil {
				return err
			}
			return fault.CheckFinite("xstream/pagerank", k.next)
		})
		if err != nil {
			return nil, err
		}
		k.curr, k.next = k.next, k.curr
	}
	out := make([]float64, n)
	copy(out, k.curr)
	return out, nil
}
