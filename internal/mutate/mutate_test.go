package mutate

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polymer/internal/graph"
)

// naiveApply is the independent oracle: replay ops literally, one at a
// time, against a flat edge list. netState.apply must match it exactly.
func naiveApply(base []graph.Edge, ops []Op) []graph.Edge {
	edges := append([]graph.Edge(nil), base...)
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			edges = append(edges, graph.Edge{Src: op.Src, Dst: op.Dst, Wt: op.Wt})
		case OpDelete:
			kept := edges[:0]
			for _, e := range edges {
				if e.Src != op.Src || e.Dst != op.Dst {
					kept = append(kept, e)
				}
			}
			edges = kept
		}
	}
	return edges
}

func edgesEqual(t *testing.T, got, want []graph.Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// graphEqual asserts two graphs are bit-identical: every CSR array in
// both directions, weights, and the derived degrees.
func graphEqual(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape %d/%d, want %d/%d", got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	cmpI64 := func(name string, a, b []int64) {
		if len(a) != len(b) {
			t.Fatalf("%s length %d, want %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, a[i], b[i])
			}
		}
	}
	cmpV := func(name string, a, b []graph.Vertex) {
		if len(a) != len(b) {
			t.Fatalf("%s length %d, want %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, a[i], b[i])
			}
		}
	}
	cmpF := func(name string, a, b []float32) {
		if len(a) != len(b) {
			t.Fatalf("%s length %d, want %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] = %v, want %v", name, i, a[i], b[i])
			}
		}
	}
	cmpI64("OutIndex", got.OutIndex, want.OutIndex)
	cmpI64("InIndex", got.InIndex, want.InIndex)
	cmpV("OutNbrs", got.OutNbrs, want.OutNbrs)
	cmpV("InNbrs", got.InNbrs, want.InNbrs)
	cmpF("OutWts", got.OutWts, want.OutWts)
	cmpF("InWts", got.InWts, want.InWts)
	for v := 0; v < got.NumVertices(); v++ {
		if got.OutDegree(graph.Vertex(v)) != want.OutDegree(graph.Vertex(v)) ||
			got.InDegree(graph.Vertex(v)) != want.InDegree(graph.Vertex(v)) {
			t.Fatalf("degree cache diverges at vertex %d", v)
		}
	}
}

func testBase() (int, []graph.Edge) {
	return 10, []graph.Edge{
		{Src: 0, Dst: 1, Wt: 1}, {Src: 1, Dst: 2, Wt: 2}, {Src: 2, Dst: 3, Wt: 3},
		{Src: 0, Dst: 1, Wt: 4}, // duplicate pair with a different weight
		{Src: 3, Dst: 4, Wt: 5}, {Src: 4, Dst: 0, Wt: 6},
	}
}

func TestApplySemantics(t *testing.T) {
	n, base := testBase()
	_ = n
	cases := []struct {
		name string
		ops  []Op
	}{
		{"insert-only", []Op{{Kind: OpInsert, Src: 5, Dst: 6, Wt: 7}}},
		{"duplicate-inserts", []Op{{Kind: OpInsert, Src: 5, Dst: 6, Wt: 7}, {Kind: OpInsert, Src: 5, Dst: 6, Wt: 7}}},
		{"delete-all-copies", []Op{{Kind: OpDelete, Src: 0, Dst: 1}}},
		{"delete-then-reinsert", []Op{{Kind: OpDelete, Src: 0, Dst: 1}, {Kind: OpInsert, Src: 0, Dst: 1, Wt: 9}}},
		{"insert-then-delete-kills-both", []Op{{Kind: OpInsert, Src: 1, Dst: 2, Wt: 9}, {Kind: OpDelete, Src: 1, Dst: 2}}},
		{"delete-missing-pair", []Op{{Kind: OpDelete, Src: 7, Dst: 8}}},
		{"reinsert-does-not-revive-base", []Op{
			{Kind: OpDelete, Src: 0, Dst: 1},
			{Kind: OpInsert, Src: 0, Dst: 1, Wt: 9},
			{Kind: OpDelete, Src: 0, Dst: 1},
			{Kind: OpInsert, Src: 0, Dst: 1, Wt: 11},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			edgesEqual(t, ApplyOps(base, tc.ops), naiveApply(base, tc.ops))
		})
	}
}

func TestApplyMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, base := testBase()
	for trial := 0; trial < 200; trial++ {
		ops := randomOps(rng, n, 1+rng.Intn(12))
		edgesEqual(t, ApplyOps(base, ops), naiveApply(base, ops))
	}
}

func randomOps(rng *rand.Rand, n, count int) []Op {
	ops := make([]Op, count)
	for i := range ops {
		op := Op{
			Src: graph.Vertex(rng.Intn(n)),
			Dst: graph.Vertex(rng.Intn(n)),
			Wt:  float32(rng.Intn(50)) + 1,
		}
		if rng.Intn(3) == 0 {
			op.Kind = OpDelete
		} else {
			op.Kind = OpInsert
		}
		ops[i] = op
	}
	return ops
}

func TestStoreCommitRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n, base := testBase()
	rng := rand.New(rand.NewSource(7))
	st, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	var all []Op
	for i := 0; i < 6; i++ {
		ops := randomOps(rng, n, 1+rng.Intn(5))
		seq, err := st.Commit("roadUS", 0, n, ops)
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		all = append(all, ops...)
	}
	got, err := st.EdgesAt("roadUS", 0, 6, base)
	if err != nil {
		t.Fatal(err)
	}
	edgesEqual(t, got, naiveApply(base, all))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh open replays the log and lands on the identical state.
	st2, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	seq, err := st2.Seq("roadUS", 0)
	if err != nil || seq != 6 {
		t.Fatalf("recovered seq = %d (%v), want 6", seq, err)
	}
	got2, err := st2.EdgesAt("roadUS", 0, 6, base)
	if err != nil {
		t.Fatal(err)
	}
	edgesEqual(t, got2, naiveApply(base, all))
	if s := st2.Stats(); s.Recovered != 6 {
		t.Fatalf("recovered %d batches, want 6", s.Recovered)
	}
	// Intermediate prefixes materialize too. GraphAt applies mutations to
	// Flatten(base graph), so the oracle must use the same canonical list.
	gBase := graph.FromEdges(n, base, true)
	mid, err := st2.EdgesAt("roadUS", 0, 3, Flatten(gBase))
	if err != nil {
		t.Fatal(err)
	}
	gMid, err := st2.GraphAt("roadUS", 0, 3, gBase)
	if err != nil {
		t.Fatal(err)
	}
	graphEqual(t, gMid, graph.FromEdges(n, mid, true))
}

func TestCheckpointBoundsRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	n, base := testBase()
	rng := rand.New(rand.NewSource(9))
	st, err := Open(dir, Options{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	var all []Op
	for i := 0; i < 10; i++ {
		ops := randomOps(rng, n, 2)
		if _, err := st.Commit("rmat24", 1, n, ops); err != nil {
			t.Fatal(err)
		}
		all = append(all, ops...)
	}
	if s := st.Stats(); s.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2 (at batches 4 and 8)", s.Checkpoints)
	}
	st.Close()

	st2, err := Open(dir, Options{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	seq, err := st2.Seq("rmat24", 1)
	if err != nil || seq != 10 {
		t.Fatalf("recovered seq = %d (%v), want 10", seq, err)
	}
	// Only the two post-checkpoint records should have been replayed.
	if s := st2.Stats(); s.Recovered != 2 {
		t.Fatalf("replayed %d batches, want 2 (checkpoint at 8)", s.Recovered)
	}
	got, err := st2.EdgesAt("rmat24", 1, 10, base)
	if err != nil {
		t.Fatal(err)
	}
	edgesEqual(t, got, naiveApply(base, all))
	// Prefixes older than the recovered checkpoint are unreachable by
	// construction and refused rather than mis-served.
	if _, err := st2.EdgesAt("rmat24", 1, 5, base); err == nil ||
		!strings.Contains(err.Error(), "predates") {
		t.Fatalf("pre-checkpoint prefix not refused: %v", err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	n, _ := testBase()
	st, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{{Kind: OpInsert, Src: 1, Dst: 2, Wt: 3}}
	if _, err := st.Commit("twitter", 0, n, ops); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit("twitter", 0, n, ops); err != nil {
		t.Fatal(err)
	}
	st.Close()

	path := filepath.Join(dir, Key("twitter", 0)+".wal")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tails := map[string][]byte{
		"half-record":    append(append([]byte{}, pristine...), pristine[len(walMagic):len(walMagic)+13]...),
		"garbage":        append(append([]byte{}, pristine...), 0xde, 0xad, 0xbe, 0xef, 9, 9, 9, 9, 9, 9, 9, 9),
		"short-header":   append(append([]byte{}, pristine...), 1, 2, 3),
		"huge-length":    append(append([]byte{}, pristine...), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0),
		"crc-mismatch":   flipLastPayloadBit(pristine),
		"zero-length":    append(append([]byte{}, pristine...), 0, 0, 0, 0, 0, 0, 0, 0),
	}
	for name, contents := range tails {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, contents, 0o644); err != nil {
				t.Fatal(err)
			}
			st2, err := Open(dir, Options{CheckpointEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			seq, err := st2.Seq("twitter", 0)
			if err != nil {
				t.Fatal(err)
			}
			want := uint64(2)
			if name == "crc-mismatch" {
				want = 1 // the flipped bit killed record 2 itself
			}
			if seq != want {
				t.Fatalf("recovered seq = %d, want %d", seq, want)
			}
			if st2.Stats().Truncated != 1 {
				t.Fatal("torn tail not counted")
			}
			// The truncation is durable: a third open sees a clean log.
			st2.Close()
			st3, err := Open(dir, Options{CheckpointEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer st3.Close()
			if seq3, _ := st3.Seq("twitter", 0); seq3 != want {
				t.Fatalf("re-open seq = %d, want %d", seq3, want)
			}
			if st3.Stats().Truncated != 0 {
				t.Fatal("clean log still counted as torn")
			}
		})
	}
}

// flipLastPayloadBit corrupts one bit inside the final record's payload,
// so its CRC fails and recovery must stop before it.
func flipLastPayloadBit(pristine []byte) []byte {
	out := append([]byte{}, pristine...)
	out[len(out)-1] ^= 1
	return out
}

func TestCommitValidation(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Commit("d", 0, 10, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := st.Commit("d", 0, 10, []Op{{Kind: 9, Src: 1, Dst: 2}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := st.Commit("d", 0, 10, []Op{{Kind: OpInsert, Src: 10, Dst: 2}}); err == nil {
		t.Fatal("out-of-range src accepted")
	}
	if _, err := st.Commit("d", 0, 10, []Op{{Kind: OpDelete, Src: 0, Dst: 99}}); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	if seq, err := st.Commit("d", 0, 10, []Op{{Kind: OpInsert, Src: 0, Dst: 9, Wt: 1}}); err != nil || seq != 1 {
		t.Fatalf("valid batch refused: %d %v", seq, err)
	}
}

func TestBadMagicRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, Key("d", 0)+".wal"), []byte("NOTAWAL!xxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Seq("d", 0); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad magic not refused: %v", err)
	}
}

func TestRecordEncodingRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpInsert, Src: 0, Dst: 4294967295, Wt: -1.5},
		{Kind: OpDelete, Src: 7, Dst: 7},
	}
	payload := encodeBatch(99, ops)
	b, err := DecodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != 99 || len(b.Ops) != 2 || b.Ops[0] != ops[0] || b.Ops[1] != ops[1] {
		t.Fatalf("round trip diverged: %+v", b)
	}
	// Oversized op counts are refused without allocating.
	huge := make([]byte, batchHdBytes)
	binary.LittleEndian.PutUint32(huge[8:], MaxBatchOps+1)
	if _, err := DecodeRecord(huge); err == nil {
		t.Fatal("oversized op count accepted")
	}
}
