// Package mutate is the crash-consistent streaming-mutation path: a
// checksummed, length-prefixed write-ahead log of batched edge
// insert/delete records, an applier that folds committed batches into
// copy-on-write graph snapshots, and a recovery path that replays the log
// from the last durable checkpoint.
//
// Durability contract: a batch is committed exactly when its record is
// fsynced. A process kill at any instant — mid-record, between write and
// fsync, between commit and in-memory publish — recovers to a graph
// bit-identical to a clean apply of some batch prefix that contains every
// acknowledged (fsynced) batch. Torn tails are detected by the per-record
// CRC32 and truncated on open; checkpoints are written atomically
// (tmp + fsync + rename) and the log is only rotated after the checkpoint
// is durable, so the two files can never both be unusable.
//
// Apply semantics: ops are ordered. An insert appends one directed edge
// (duplicates allowed, as in graph.FromEdges). A delete removes every
// edge (src,dst) present at that instant — base-topology copies and
// earlier inserts alike; a later insert re-adds the pair. This folds into
// a net effect (deleted base pairs + surviving inserts) that applies to a
// base edge list in O(|base| + |inserts|), which is what makes committed
// prefixes cheap to materialize as immutable graph.Graph snapshots.
package mutate

import (
	"encoding/binary"
	"fmt"
	"math"

	"polymer/internal/graph"
)

// OpKind distinguishes edge insertion from deletion.
type OpKind uint8

const (
	// OpInsert adds one directed edge (Wt is kept; unweighted views drop it).
	OpInsert OpKind = 1
	// OpDelete removes every current edge (Src, Dst); Wt is ignored.
	OpDelete OpKind = 2
)

// String names the kind the way the HTTP surface spells it.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one edge mutation.
type Op struct {
	Kind     OpKind
	Src, Dst graph.Vertex
	Wt       float32
}

// Batch is one committed WAL record: a sequence number and its ops.
type Batch struct {
	Seq uint64
	Ops []Op
}

// MaxBatchOps bounds one record; larger batches must be split by the
// caller. The bound keeps a corrupt length field from provoking a huge
// allocation during recovery.
const MaxBatchOps = 1 << 16

const (
	opBytes      = 1 + 4 + 4 + 4 // kind, src, dst, wt
	batchHdBytes = 8 + 4         // seq, nops
)

// encodeBatch renders a record payload (everything the CRC covers).
func encodeBatch(seq uint64, ops []Op) []byte {
	buf := make([]byte, batchHdBytes+len(ops)*opBytes)
	binary.LittleEndian.PutUint64(buf, seq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(ops)))
	off := batchHdBytes
	for _, op := range ops {
		buf[off] = byte(op.Kind)
		binary.LittleEndian.PutUint32(buf[off+1:], op.Src)
		binary.LittleEndian.PutUint32(buf[off+5:], op.Dst)
		binary.LittleEndian.PutUint32(buf[off+9:], math.Float32bits(op.Wt))
		off += opBytes
	}
	return buf
}

// DecodeRecord parses one record payload back into a batch. It never
// panics on hostile input (the fuzz target's contract): every structural
// violation — short header, op-count/length mismatch, unknown kind,
// zero ops — is an error.
func DecodeRecord(payload []byte) (Batch, error) {
	if len(payload) < batchHdBytes {
		return Batch{}, fmt.Errorf("mutate: record payload %d bytes, want >= %d", len(payload), batchHdBytes)
	}
	b := Batch{Seq: binary.LittleEndian.Uint64(payload)}
	nops := binary.LittleEndian.Uint32(payload[8:])
	if nops == 0 {
		return Batch{}, fmt.Errorf("mutate: record with zero ops")
	}
	if nops > MaxBatchOps {
		return Batch{}, fmt.Errorf("mutate: record claims %d ops, max %d", nops, MaxBatchOps)
	}
	if want := batchHdBytes + int(nops)*opBytes; len(payload) != want {
		return Batch{}, fmt.Errorf("mutate: record payload %d bytes, want %d for %d ops", len(payload), want, nops)
	}
	b.Ops = make([]Op, nops)
	off := batchHdBytes
	for i := range b.Ops {
		k := OpKind(payload[off])
		if k != OpInsert && k != OpDelete {
			return Batch{}, fmt.Errorf("mutate: record op %d has unknown kind %d", i, k)
		}
		b.Ops[i] = Op{
			Kind: k,
			Src:  binary.LittleEndian.Uint32(payload[off+1:]),
			Dst:  binary.LittleEndian.Uint32(payload[off+5:]),
			Wt:   math.Float32frombits(binary.LittleEndian.Uint32(payload[off+9:])),
		}
		off += opBytes
	}
	return b, nil
}

// pairKey packs a directed (src, dst) pair for the deleted-pairs set.
func pairKey(src, dst graph.Vertex) uint64 { return uint64(src)<<32 | uint64(dst) }

// netState is the fold of an op prefix: which base-topology pairs are
// currently deleted, and which inserted edges survive, in insertion
// order. Folding is order-sensitive (delete kills earlier inserts, a
// later insert re-adds the pair) but the folded state applies to any base
// edge list in one pass.
type netState struct {
	deleted map[uint64]struct{}
	live    []Op // OpInsert ops that no later delete removed
}

func newNetState() *netState {
	return &netState{deleted: make(map[uint64]struct{})}
}

// clone deep-copies the state (snapshot materialization works on a copy
// so commits can keep folding concurrently).
func (ns *netState) clone() *netState {
	c := &netState{
		deleted: make(map[uint64]struct{}, len(ns.deleted)),
		live:    append([]Op(nil), ns.live...),
	}
	for k := range ns.deleted {
		c.deleted[k] = struct{}{}
	}
	return c
}

// fold applies one op to the net state.
func (ns *netState) fold(op Op) {
	switch op.Kind {
	case OpInsert:
		ns.live = append(ns.live, op)
	case OpDelete:
		// Base copies of the pair are gone from now on, and so is every
		// earlier surviving insert of it.
		ns.deleted[pairKey(op.Src, op.Dst)] = struct{}{}
		kept := ns.live[:0]
		for _, ins := range ns.live {
			if ins.Src != op.Src || ins.Dst != op.Dst {
				kept = append(kept, ins)
			}
		}
		ns.live = kept
	}
}

// foldBatches folds whole batches in order.
func (ns *netState) foldBatches(batches []Batch) {
	for _, b := range batches {
		for _, op := range b.Ops {
			ns.fold(op)
		}
	}
}

// apply materializes the folded state over a base edge list: base edges
// whose pair is not deleted, in base order, followed by surviving inserts
// in insertion order. The deterministic order is what makes a recovered
// snapshot bit-identical to a clean apply — graph.FromEdges is stable
// within a CSR bucket.
func (ns *netState) apply(base []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, len(base)+len(ns.live))
	for _, e := range base {
		if _, gone := ns.deleted[pairKey(e.Src, e.Dst)]; !gone {
			out = append(out, e)
		}
	}
	for _, ins := range ns.live {
		out = append(out, graph.Edge{Src: ins.Src, Dst: ins.Dst, Wt: ins.Wt})
	}
	return out
}

// ApplyOps is the clean-apply oracle: fold ops over a base edge list and
// return the mutated list. The chaos harness compares recovered
// snapshots against it.
func ApplyOps(base []graph.Edge, ops []Op) []graph.Edge {
	ns := newNetState()
	for _, op := range ops {
		ns.fold(op)
	}
	return ns.apply(base)
}

// Flatten turns a graph back into its edge list (out-direction order,
// weights preserved), the base form mutations apply to.
func Flatten(g *graph.Graph) []graph.Edge {
	edges := make([]graph.Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.OutNeighbors(graph.Vertex(v))
		wts := g.OutWeights(graph.Vertex(v))
		for j, u := range nbrs {
			e := graph.Edge{Src: graph.Vertex(v), Dst: u}
			if wts != nil {
				e.Wt = wts[j]
			}
			edges = append(edges, e)
		}
	}
	return edges
}
