package mutate

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func FuzzDecodeRecord(f *testing.F) {
	valid := encodeBatch(7, []Op{
		{Kind: OpInsert, Src: 0, Dst: 1, Wt: 1.5},
		{Kind: OpDelete, Src: 1, Dst: 0},
	})
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])       // truncated mid-op
	f.Add(valid[:batchHdBytes])       // header only
	f.Add(make([]byte, batchHdBytes)) // zero ops
	flipped := append([]byte{}, valid...)
	flipped[8] ^= 0x40 // bit-flip in the op count
	f.Add(flipped)
	huge := make([]byte, batchHdBytes)
	binary.LittleEndian.PutUint32(huge[8:], 1<<31) // absurd op count
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeRecord(data)
		if err != nil {
			return // rejected hostile input — fine, as long as it didn't panic
		}
		// Anything accepted must re-encode to the identical bytes.
		if re := encodeBatch(b.Seq, b.Ops); !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not a round trip:\n in %x\nout %x", data, re)
		}
	})
}

func FuzzLogRecovery(f *testing.F) {
	payload := encodeBatch(1, []Op{{Kind: OpInsert, Src: 1, Dst: 2, Wt: 3}})
	rec := make([]byte, recHdBytes+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	copy(rec[recHdBytes:], payload)

	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(append([]byte(walMagic), rec...))
	f.Add(append([]byte(walMagic), rec[:len(rec)-3]...)) // torn tail
	f.Add(append([]byte("NOTMAGIC"), rec...))
	corrupt := append([]byte(walMagic), rec...)
	corrupt[len(corrupt)-1] ^= 1 // CRC mismatch on the only record
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, batches, err := OpenLog(path)
		if err != nil {
			return // refused the file outright — never a panic
		}
		n := len(batches)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Open repaired the file in place; a second open must see a clean
		// log with the same batches and nothing left to truncate.
		l2, batches2, err := OpenLog(path)
		if err != nil {
			t.Fatalf("reopen after clean open: %v", err)
		}
		defer l2.Close()
		if l2.truncated {
			t.Fatal("second open still found a torn tail")
		}
		if len(batches2) != n {
			t.Fatalf("reopen saw %d batches, first open saw %d", len(batches2), n)
		}
	})
}
