// Eager-recovery tests: RecoverAll discovers every key with on-disk
// state, replays it exactly like lazy first-touch recovery would, calls
// the hook per key (the serving layer's readiness sync point), and skips
// foreign files.

package mutate

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRecoverAllReplaysEveryKey(t *testing.T) {
	dir := t.TempDir()
	n, _ := testBase()
	st, err := Open(dir, Options{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{{Kind: OpInsert, Src: 1, Dst: 2, Wt: 1}}
	// Two keys: one WAL-only, one with a checkpoint plus a WAL tail.
	if _, err := st.Commit("twitter", 0, n, ops); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Commit("rmat24", 1, n, ops); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A foreign file in the directory must be ignored, not recovered.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	var hooked []string
	st2, err := Open(dir, Options{CheckpointEvery: 4, RecoverHook: func(key string) {
		hooked = append(hooked, key)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.RecoverAll(); err != nil {
		t.Fatalf("RecoverAll: %v", err)
	}
	// Keys recover in sorted order; the checkpointed key replays only its
	// WAL tail (batch 5), the other its full log.
	if len(hooked) != 2 || hooked[0] != "rmat24@1" || hooked[1] != "twitter@0" {
		t.Fatalf("hooked keys = %v, want [rmat24@1 twitter@0]", hooked)
	}
	s := st2.Stats()
	if s.Keys != 2 {
		t.Fatalf("keys = %d, want 2", s.Keys)
	}
	if s.Recovered != 2 { // twitter batch 1 + rmat24 batch 5
		t.Fatalf("recovered = %d, want 2", s.Recovered)
	}
	if seq, err := st2.Seq("rmat24", 1); err != nil || seq != 5 {
		t.Fatalf("rmat24 seq = %d (%v), want 5", seq, err)
	}
	if seq, err := st2.Seq("twitter", 0); err != nil || seq != 1 {
		t.Fatalf("twitter seq = %d (%v), want 1", seq, err)
	}
	// RecoverAll is idempotent: everything already live, nothing replays
	// twice and the hook doesn't re-fire a second recovery.
	hooked = nil
	if err := st2.RecoverAll(); err != nil {
		t.Fatal(err)
	}
	if st2.Stats().Recovered != 2 {
		t.Fatalf("second RecoverAll replayed batches: %+v", st2.Stats())
	}
}

func TestRecoverAllOnEmptyAndClosedStore(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RecoverAll(); err != nil {
		t.Fatalf("RecoverAll on empty dir: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.RecoverAll(); !errors.Is(err, ErrClosed) {
		t.Fatalf("RecoverAll after Close = %v, want ErrClosed", err)
	}
}

func TestParseKey(t *testing.T) {
	cases := []struct {
		key     string
		dataset string
		scale   int
		ok      bool
	}{
		{"twitter@0", "twitter", 0, true},
		{"roadUS@3", "roadUS", 3, true},
		{"weird@name@2", "weird@name", 2, true},
		{"@1", "", 0, false},
		{"noscale", "", 0, false},
		{"bad@x", "", 0, false},
	}
	for _, tc := range cases {
		ds, sc, ok := parseKey(tc.key)
		if ok != tc.ok || ds != tc.dataset || (ok && sc != tc.scale) {
			t.Errorf("parseKey(%q) = (%q,%d,%t), want (%q,%d,%t)",
				tc.key, ds, sc, ok, tc.dataset, tc.scale, tc.ok)
		}
	}
}
