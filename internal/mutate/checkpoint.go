// Durable snapshot checkpoints: the folded net effect of every batch up
// to a sequence number, written atomically (temp file + fsync + rename +
// directory fsync). Recovery loads the checkpoint and replays only the
// log records after its sequence number; the log is rotated to empty
// only after the checkpoint is durable, so at every instant at least one
// of the two files reconstructs the committed prefix.

package mutate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"polymer/internal/graph"
)

const ckptMagic = "PLYCKP1\n"

// encodeCheckpoint renders the checkpoint payload: seq, the sorted
// deleted-pair set, and the surviving inserts in insertion order.
func encodeCheckpoint(seq uint64, ns *netState) []byte {
	pairs := make([]uint64, 0, len(ns.deleted))
	for p := range ns.deleted {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	buf := make([]byte, 8+8+len(pairs)*8+8+len(ns.live)*opBytes)
	binary.LittleEndian.PutUint64(buf, seq)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(pairs)))
	off := 16
	for _, p := range pairs {
		binary.LittleEndian.PutUint64(buf[off:], p)
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:], uint64(len(ns.live)))
	off += 8
	for _, op := range ns.live {
		buf[off] = byte(op.Kind)
		binary.LittleEndian.PutUint32(buf[off+1:], op.Src)
		binary.LittleEndian.PutUint32(buf[off+5:], op.Dst)
		binary.LittleEndian.PutUint32(buf[off+9:], math.Float32bits(op.Wt))
		off += opBytes
	}
	return buf
}

// decodeCheckpoint parses a checkpoint payload. Like DecodeRecord it
// never panics on hostile bytes.
func decodeCheckpoint(payload []byte) (uint64, *netState, error) {
	if len(payload) < 24 {
		return 0, nil, fmt.Errorf("mutate: checkpoint payload %d bytes, want >= 24", len(payload))
	}
	seq := binary.LittleEndian.Uint64(payload)
	ndel := binary.LittleEndian.Uint64(payload[8:])
	if ndel > uint64(len(payload))/8 {
		return 0, nil, fmt.Errorf("mutate: checkpoint claims %d deleted pairs", ndel)
	}
	off := uint64(16)
	if uint64(len(payload)) < off+ndel*8+8 {
		return 0, nil, fmt.Errorf("mutate: checkpoint truncated in deleted-pair set")
	}
	ns := newNetState()
	for i := uint64(0); i < ndel; i++ {
		ns.deleted[binary.LittleEndian.Uint64(payload[off:])] = struct{}{}
		off += 8
	}
	nlive := binary.LittleEndian.Uint64(payload[off:])
	off += 8
	if want := off + nlive*opBytes; nlive > uint64(len(payload))/opBytes || uint64(len(payload)) != want {
		return 0, nil, fmt.Errorf("mutate: checkpoint payload %d bytes, want %d for %d live inserts",
			len(payload), off+nlive*opBytes, nlive)
	}
	for i := uint64(0); i < nlive; i++ {
		k := OpKind(payload[off])
		if k != OpInsert {
			return 0, nil, fmt.Errorf("mutate: checkpoint live op %d has kind %d, want insert", i, k)
		}
		ns.live = append(ns.live, Op{
			Kind: k,
			Src:  graph.Vertex(binary.LittleEndian.Uint32(payload[off+1:])),
			Dst:  graph.Vertex(binary.LittleEndian.Uint32(payload[off+5:])),
			Wt:   math.Float32frombits(binary.LittleEndian.Uint32(payload[off+9:])),
		})
		off += opBytes
	}
	return seq, ns, nil
}

// writeCheckpoint durably replaces the checkpoint at path.
func writeCheckpoint(path string, seq uint64, ns *netState) error {
	payload := encodeCheckpoint(seq, ns)
	buf := make([]byte, len(ckptMagic)+8+len(payload))
	copy(buf, ckptMagic)
	binary.LittleEndian.PutUint32(buf[len(ckptMagic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[len(ckptMagic)+4:], crc32.ChecksumIEEE(payload))
	copy(buf[len(ckptMagic)+8:], payload)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpPath) }
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	return syncDir(dir)
}

// loadCheckpoint reads the checkpoint at path. A missing file is
// (0, empty, nil): recovery starts from the base graph. A present but
// invalid file is an error — rename-atomicity means a torn checkpoint is
// never visible under the final name, so damage here is real corruption,
// not a crash artifact.
func loadCheckpoint(path string) (uint64, *netState, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, newNetState(), nil
	}
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, nil, err
	}
	hd, err := readFull(f, 0, len(ckptMagic)+8)
	if err != nil || string(hd[:len(ckptMagic)]) != ckptMagic {
		return 0, nil, fmt.Errorf("mutate: %s is not a checkpoint (bad magic)", path)
	}
	plen := binary.LittleEndian.Uint32(hd[len(ckptMagic):])
	crc := binary.LittleEndian.Uint32(hd[len(ckptMagic)+4:])
	if int64(plen) != info.Size()-int64(len(ckptMagic))-8 {
		return 0, nil, fmt.Errorf("mutate: checkpoint %s length %d does not match file size", path, plen)
	}
	payload, err := readFull(f, int64(len(ckptMagic))+8, int(plen))
	if err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, fmt.Errorf("mutate: checkpoint %s failed its CRC", path)
	}
	seq, ns, err := decodeCheckpoint(payload)
	if err != nil {
		return 0, nil, err
	}
	return seq, ns, nil
}
