package mutate

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"polymer/internal/fault"
	"polymer/internal/graph"
)

// soakSeeds is the per-crash-point trial budget; MUTATE_SOAK_SEEDS
// raises it for the soak target.
func soakSeeds(t *testing.T) int {
	s := os.Getenv("MUTATE_SOAK_SEEDS")
	if s == "" {
		return 3
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		t.Fatalf("MUTATE_SOAK_SEEDS=%q: want a positive integer", s)
	}
	return n
}

func chaosBase(n int) []graph.Edge {
	rng := rand.New(rand.NewSource(1))
	edges := make([]graph.Edge, 0, 3*n)
	for i := 0; i < 3*n; i++ {
		edges = append(edges, graph.Edge{
			Src: graph.Vertex(rng.Intn(n)),
			Dst: graph.Vertex(rng.Intn(n)),
			Wt:  float32(rng.Intn(20)) + 1,
		})
	}
	return edges
}

// TestCrashRecoveryMatrix is the crash-recovery chaos harness: for every
// injection point and seed, run a mutation workload until the planned
// kill fires, simulate losing the unsynced page-cache tail, recover, and
// verify the recovered state is bit-identical to a clean apply of a
// batch prefix that contains every acknowledged batch.
func TestCrashRecoveryMatrix(t *testing.T) {
	seeds := soakSeeds(t)
	const n = 64
	base := chaosBase(n)
	for _, point := range fault.CrashPoints() {
		for seed := 0; seed < seeds; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", point, seed), func(t *testing.T) {
				runCrashTrial(t, point, int64(seed), n, base)
			})
		}
	}
}

func runCrashTrial(t *testing.T, point fault.CrashPoint, seed int64, n int, base []graph.Edge) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(seed*1009 + int64(point)))
	const batches = 12
	crashAt := uint64(1 + rng.Intn(batches))
	if point == fault.CrashBeforeRotate {
		// Rotation only happens at checkpoint boundaries (every 3 batches
		// here), so pin the kill to one or it would never fire.
		crashAt = uint64(3 * (1 + rng.Intn(batches/3)))
	}
	crasher := &fault.PlannedCrash{Point: point, Seq: crashAt}
	st, err := Open(dir, Options{CheckpointEvery: 3, Crasher: crasher})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { st.Close() }()

	// committed[i] holds the ops of the batch with sequence number i+1;
	// acked is the highest sequence Commit acknowledged (fsync completed).
	var committed [][]Op
	acked := uint64(0)
	for uint64(len(committed)) < batches {
		ops := randomOps(rng, n, 1+rng.Intn(6))
		seq, err := st.Commit("chaos", 0, n, ops)
		if err == nil {
			committed = append(committed, ops)
			if seq != uint64(len(committed)) {
				t.Fatalf("commit returned seq %d, want %d", seq, len(committed))
			}
			acked = seq
			continue
		}
		if !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("commit: %v", err)
		}
		attempted := uint64(len(committed)) + 1

		// Simulated process kill. The OS may also lose any unsynced tail
		// of the WAL: cut the file at a seeded offset in [durable, size].
		key := Key("chaos", 0)
		st.mu.Lock()
		ks := st.keys[key]
		durable, size := ks.log.durable, ks.log.size
		st.mu.Unlock()
		st.Close()
		if size > durable {
			cut := durable + int64(rng.Intn(int(size-durable)+1))
			if err := os.Truncate(filepath.Join(dir, key+".wal"), cut); err != nil {
				t.Fatal(err)
			}
		}

		st, err = Open(dir, Options{CheckpointEvery: 3})
		if err != nil {
			t.Fatalf("recovery after %s: %v", point, err)
		}
		rec, err := st.Seq("chaos", 0)
		if err != nil {
			t.Fatalf("recovery after %s: %v", point, err)
		}
		// The crash-consistency contract: every acked batch survives, and
		// nothing beyond the attempted batch can exist.
		if rec < acked {
			t.Fatalf("recovery lost acked batch: recovered seq %d < acked %d", rec, acked)
		}
		if rec > attempted {
			t.Fatalf("recovery invented batches: recovered seq %d > attempted %d", rec, attempted)
		}
		if point == fault.CrashBeforePublish || point == fault.CrashBeforeRotate {
			// These kills land after the fsync: the attempted batch is
			// durable and recovery must include it.
			if rec != attempted {
				t.Fatalf("%s lost a durable batch: recovered seq %d, want %d", point, rec, attempted)
			}
		}
		if rec == attempted {
			committed = append(committed, ops)
		}
		acked = rec
		verifySnapshot(t, st, committed, base, n)
	}
	if !crasher.Fired() {
		t.Fatalf("planned crash %s at batch %d never fired", point, crashAt)
	}
	verifySnapshot(t, st, committed, base, n)

	// Recovery is idempotent: a further clean restart reproduces the
	// identical state.
	st.Close()
	st2, err := Open(dir, Options{CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	verifySnapshot(t, st2, committed, base, n)
	st2.Close()
}

// verifySnapshot asserts the store's current snapshot is bit-identical —
// adjacency arrays, weights, and degree caches — to an independent naive
// replay of the committed batches over the base edge list.
func verifySnapshot(t *testing.T, st *Store, committed [][]Op, base []graph.Edge, n int) {
	t.Helper()
	seq, err := st.Seq("chaos", 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(committed)) {
		t.Fatalf("store at seq %d, committed %d batches", seq, len(committed))
	}
	var flat []Op
	for _, ops := range committed {
		flat = append(flat, ops...)
	}
	// GraphAt applies mutations to Flatten(base graph) — CSR order — so
	// the clean-apply oracle must start from the same canonical edge list
	// for the bit-identical comparison to be meaningful.
	gBase := graph.FromEdges(n, base, true)
	canon := Flatten(gBase)
	want := naiveApply(canon, flat)
	got, err := st.EdgesAt("chaos", 0, seq, canon)
	if err != nil {
		t.Fatal(err)
	}
	edgesEqual(t, got, want)
	gotG, err := st.GraphAt("chaos", 0, seq, gBase)
	if err != nil {
		t.Fatal(err)
	}
	graphEqual(t, gotG, graph.FromEdges(n, want, true))
}
