// The mutation store: one WAL + checkpoint pair per (dataset, scale)
// key, recovered lazily on first touch. Commit appends a batch, fsyncs
// (the commit point), then publishes the new sequence number; the serving
// layer materializes any committed prefix as an immutable copy-on-write
// graph snapshot via GraphAt, which the serve graph cache pins per
// in-flight request.

package mutate

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"polymer/internal/fault"
	"polymer/internal/graph"
)

// ErrClosed is returned by every operation after Close: a shutdown path
// that lost the drain race must still be able to close the store exactly
// once and have late requests fail cleanly instead of appending to a
// closed WAL.
var ErrClosed = errors.New("mutate: store closed")

// Options tunes a store; the zero value takes the defaults.
type Options struct {
	// CheckpointEvery folds the log into a durable checkpoint (and resets
	// the log) every N committed batches. 0 means the default of 8;
	// negative disables checkpointing.
	CheckpointEvery int
	// Crasher, when non-nil, injects simulated process kills at the
	// commit crash points (chaos tests).
	Crasher fault.Crasher
	// RecoverHook, when non-nil, is called with each key just before
	// RecoverAll replays it — a synchronization point for tests that need
	// to observe a server mid-recovery.
	RecoverHook func(key string)
}

// Store owns every per-key mutation log under one directory.
type Store struct {
	dir    string
	opt    Options
	mu     sync.Mutex
	closed bool
	keys   map[string]*keyState
	stats  StoreStats
}

// keyState is one (dataset, scale) stream, recovered from disk on first
// access and folded forward in memory on every commit.
type keyState struct {
	log *Log
	seq uint64 // last committed (published) batch
	// net is the fold of batches 1..seq, always current.
	net *netState
	// openSeq/openNet snapshot the recovered state at process open;
	// hist holds every batch committed or replayed after openSeq, so any
	// prefix a reader sampled can still be materialized.
	openSeq  uint64
	openNet  *netState
	hist     []Batch
	ckptSeq  uint64 // last durable checkpoint
	durSeq   uint64 // last fsynced batch (== seq except across a crash)
	dead     bool
}

// StoreStats is the JSON form of store counters for /metricsz.
type StoreStats struct {
	Keys        int    `json:"keys"`
	Committed   int64  `json:"committed"`
	Ops         int64  `json:"ops"`
	Checkpoints int64  `json:"checkpoints"`
	Recovered   int64  `json:"recovered_batches"`
	Truncated   int64  `json:"truncated_tails"`
}

// Open prepares a store rooted at dir (created if absent). Per-key
// recovery happens on first touch of each key.
func Open(dir string, opt Options) (*Store, error) {
	if opt.CheckpointEvery == 0 {
		opt.CheckpointEvery = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, opt: opt, keys: make(map[string]*keyState)}, nil
}

// Key renders the on-disk identity of one (dataset, scale) stream.
func Key(dataset string, scale int) string { return fmt.Sprintf("%s@%d", dataset, scale) }

func (s *Store) walPath(key string) string { return filepath.Join(s.dir, key+".wal") }
func (s *Store) ckptPath(key string) string { return filepath.Join(s.dir, key+".ckpt") }

// state returns the recovered keyState, running recovery on first touch:
// load the checkpoint (if any), replay log records past its sequence
// number, and verify the sequence numbers are contiguous.
func (s *Store) state(dataset string, scale int) (*keyState, error) {
	key := Key(dataset, scale)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if st, ok := s.keys[key]; ok {
		return st, nil
	}
	ckptSeq, ns, err := loadCheckpoint(s.ckptPath(key))
	if err != nil {
		return nil, err
	}
	l, batches, err := OpenLog(s.walPath(key))
	if err != nil {
		return nil, err
	}
	// openNet stays the pure checkpoint fold so every prefix in
	// [ckptSeq, seq] remains materializable; st.net folds forward.
	st := &keyState{log: l, seq: ckptSeq, ckptSeq: ckptSeq, openSeq: ckptSeq, openNet: ns, net: ns.clone()}
	for _, b := range batches {
		if b.Seq <= st.seq {
			continue // the checkpoint already folded this record in
		}
		if b.Seq != st.seq+1 {
			l.Close()
			return nil, fmt.Errorf("mutate: %s: log skips from batch %d to %d", key, st.seq, b.Seq)
		}
		for _, op := range b.Ops {
			st.net.fold(op)
		}
		st.hist = append(st.hist, b)
		st.seq = b.Seq
		s.stats.Recovered++
	}
	if l.truncated {
		s.stats.Truncated++
	}
	st.durSeq = st.seq
	s.keys[key] = st
	s.stats.Keys = len(s.keys)
	return st, nil
}

// Seq returns the current committed sequence number for a key (0 when
// nothing was ever committed). It is the dataset's snapshot version: the
// serving layer folds it into graph-cache keys so each commit publishes
// a distinct immutable snapshot.
func (s *Store) Seq(dataset string, scale int) (uint64, error) {
	st, err := s.state(dataset, scale)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return st.seq, nil
}

// Commit validates, appends, fsyncs and publishes one batch against a
// graph with n vertices. The returned sequence number identifies the
// snapshot that includes the batch. A fault.ErrCrashed return means an
// injected kill: the store is dead and the batch may or may not be
// durable — exactly the ambiguity recovery must resolve.
func (s *Store) Commit(dataset string, scale int, n int, ops []Op) (uint64, error) {
	if len(ops) == 0 {
		return 0, fmt.Errorf("mutate: empty batch")
	}
	if len(ops) > MaxBatchOps {
		return 0, fmt.Errorf("mutate: batch of %d ops exceeds the %d maximum", len(ops), MaxBatchOps)
	}
	for i, op := range ops {
		if op.Kind != OpInsert && op.Kind != OpDelete {
			return 0, fmt.Errorf("mutate: op %d has unknown kind %d", i, op.Kind)
		}
		if int(op.Src) >= n || int(op.Dst) >= n {
			return 0, fmt.Errorf("mutate: op %d edge (%d,%d) outside [0,%d)", i, op.Src, op.Dst, n)
		}
	}
	st, err := s.state(dataset, scale)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Close won the race between our state() lookup and this lock.
		return 0, ErrClosed
	}
	if st.dead {
		return 0, fault.ErrCrashed
	}
	seq := st.seq + 1
	if err := st.log.appendBatch(seq, ops, s.opt.Crasher); err != nil {
		if err == fault.ErrCrashed {
			st.dead = true
		}
		return 0, err
	}
	st.durSeq = seq
	if s.opt.Crasher != nil && s.opt.Crasher.Crash(fault.CrashBeforePublish, seq) {
		// The record is durable but the process dies before the new
		// snapshot becomes visible: recovery must still include it.
		st.dead = true
		st.log.dead = true
		return 0, fault.ErrCrashed
	}
	// Publish: after this, Seq and EdgesAt observe the batch.
	batch := Batch{Seq: seq, Ops: append([]Op(nil), ops...)}
	for _, op := range batch.Ops {
		st.net.fold(op)
	}
	st.hist = append(st.hist, batch)
	st.seq = seq
	s.stats.Committed++
	s.stats.Ops += int64(len(ops))
	if err := s.maybeCheckpointLocked(st, Key(dataset, scale)); err != nil {
		if err == fault.ErrCrashed {
			return 0, err
		}
		// A failed checkpoint does not un-commit the batch; the log still
		// holds it. Surface nothing — the next commit retries.
	}
	return seq, nil
}

// maybeCheckpointLocked folds the log into a durable checkpoint when it
// has grown CheckpointEvery batches past the last one, then resets the
// log. Ordering is the crash-safety argument: the checkpoint reaches
// disk (rename + dir fsync) before any log record is dropped.
func (s *Store) maybeCheckpointLocked(st *keyState, key string) error {
	if s.opt.CheckpointEvery < 0 || st.seq-st.ckptSeq < uint64(s.opt.CheckpointEvery) {
		return nil
	}
	if err := writeCheckpoint(s.ckptPath(key), st.seq, st.net); err != nil {
		return err
	}
	if s.opt.Crasher != nil && s.opt.Crasher.Crash(fault.CrashBeforeRotate, st.seq) {
		// Checkpoint durable, log not yet rotated: recovery must skip the
		// log records the checkpoint covers.
		st.dead = true
		st.log.dead = true
		return fault.ErrCrashed
	}
	if err := st.log.reset(); err != nil {
		return err
	}
	st.ckptSeq = st.seq
	s.stats.Checkpoints++
	return nil
}

// EdgesAt materializes the committed prefix through seq over a base edge
// list. seq must be a value Seq returned in this process (prefixes older
// than the recovered checkpoint are gone — nobody can have sampled them).
func (s *Store) EdgesAt(dataset string, scale int, seq uint64, base []graph.Edge) ([]graph.Edge, error) {
	st, err := s.state(dataset, scale)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if seq > st.seq {
		s.mu.Unlock()
		return nil, fmt.Errorf("mutate: %s@%d has no batch %d (committed: %d)", dataset, scale, seq, st.seq)
	}
	if seq < st.openSeq {
		s.mu.Unlock()
		return nil, fmt.Errorf("mutate: %s@%d prefix %d predates the recovered checkpoint %d", dataset, scale, seq, st.openSeq)
	}
	var ns *netState
	if seq == st.seq {
		ns = st.net.clone()
	} else {
		ns = st.openNet.clone()
		for _, b := range st.hist {
			if b.Seq > seq {
				break
			}
			for _, op := range b.Ops {
				ns.fold(op)
			}
		}
	}
	s.mu.Unlock()
	return ns.apply(base), nil
}

// GraphAt materializes the committed prefix through seq as a fresh
// immutable graph over base's vertex set (weights kept iff base is
// weighted). seq == 0 returns base itself: no mutations, no copy.
func (s *Store) GraphAt(dataset string, scale int, seq uint64, base *graph.Graph) (*graph.Graph, error) {
	if seq == 0 {
		return base, nil
	}
	edges, err := s.EdgesAt(dataset, scale, seq, Flatten(base))
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(base.NumVertices(), edges, base.Weighted()), nil
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// RecoverAll eagerly replays every key with state on disk (a WAL, a
// checkpoint, or both), so a restarted server can refuse readiness until
// recovery is complete instead of paying replay latency on first-touch
// requests. Safe to run concurrently with serving: each key recovers
// under the store lock exactly as lazy first-touch recovery would.
func (s *Store) RecoverAll() error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	seen := make(map[string]bool)
	var keys []string
	for _, e := range entries {
		name := e.Name()
		var key string
		switch {
		case strings.HasSuffix(name, ".wal"):
			key = strings.TrimSuffix(name, ".wal")
		case strings.HasSuffix(name, ".ckpt"):
			key = strings.TrimSuffix(name, ".ckpt")
		default:
			continue
		}
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	var first error
	for _, key := range keys {
		dataset, scale, ok := parseKey(key)
		if !ok {
			continue // not one of ours; leave the file alone
		}
		if s.opt.RecoverHook != nil {
			s.opt.RecoverHook(key)
		}
		if _, err := s.state(dataset, scale); err != nil && first == nil {
			first = fmt.Errorf("mutate: recover %s: %w", key, err)
		}
	}
	return first
}

// parseKey inverts Key: "twitter@1" -> ("twitter", 1).
func parseKey(key string) (dataset string, scale int, ok bool) {
	i := strings.LastIndex(key, "@")
	if i <= 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(key[i+1:])
	if err != nil {
		return "", 0, false
	}
	return key[:i], n, true
}

// Close releases every open log and marks the store closed: all later
// operations — including commits that were racing the close — return
// ErrClosed instead of appending to a closed WAL. Close is idempotent,
// so a shutdown path that lost the graceful-drain race can still call it
// unconditionally. Durability needs no flush here: every committed batch
// was fsynced at its commit point, so the WAL replays cleanly on reopen.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, st := range s.keys {
		if err := st.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.keys = map[string]*keyState{}
	return first
}
