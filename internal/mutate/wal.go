// The write-ahead log: an append-only file of length-prefixed,
// CRC32-checksummed batch records. Appends fsync before reporting
// success — that fsync IS the commit point. Open scans the file, stops
// at the first torn or corrupt record, and truncates the tail there, so
// a kill mid-write can never leave a half-record visible to recovery.

package mutate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"polymer/internal/fault"
)

// walMagic begins every log file; a file that does not start with it is
// not a torn tail but a different (or rotted) file, and Open refuses it.
const walMagic = "PLYWAL1\n"

// recHdBytes prefixes every record: 4-byte payload length, 4-byte CRC32
// (IEEE) of the payload.
const recHdBytes = 8

// maxRecordBytes bounds a record's payload on read, so a corrupt length
// field cannot provoke an absurd allocation during recovery.
const maxRecordBytes = batchHdBytes + MaxBatchOps*opBytes

// Log is one open WAL file. It is not safe for concurrent use; the Store
// serializes commits.
type Log struct {
	path string
	f    *os.File
	// size is the append offset; durable is the offset known to have
	// reached disk (the last fsync). size > durable only transiently
	// inside Append — or permanently after a simulated crash, which is
	// exactly the window the chaos harness truncates into.
	size    int64
	durable int64
	dead    bool
	// truncated records that Open found and cut a torn tail.
	truncated bool
}

// OpenLog opens (creating if absent) the log at path, replays every
// intact record, truncates a torn tail, and returns the committed
// batches in order.
func OpenLog(path string) (*Log, []Batch, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{path: path, f: f}
	if info.Size() == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := l.sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.size, l.durable = int64(len(walMagic)), int64(len(walMagic))
		return l, nil, nil
	}
	batches, good, err := scanLog(f, info.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if good < info.Size() {
		// Torn tail: a record that never finished its write. Everything
		// after the last intact record is unreliable — drop it.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("mutate: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.truncated = true
	}
	l.size, l.durable = good, good
	return l, batches, nil
}

// scanLog walks records from the header to the first tear, returning the
// intact batches and the offset of the last intact record's end.
func scanLog(f *os.File, size int64) ([]Batch, int64, error) {
	hdr := make([]byte, len(walMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != walMagic {
		return nil, 0, fmt.Errorf("mutate: %s is not a mutation log (bad magic)", f.Name())
	}
	var batches []Batch
	off := int64(len(walMagic))
	rh := make([]byte, recHdBytes)
	for {
		if size-off < recHdBytes {
			return batches, off, nil // torn (or absent) record header
		}
		if _, err := f.ReadAt(rh, off); err != nil {
			return nil, 0, err
		}
		plen := binary.LittleEndian.Uint32(rh)
		crc := binary.LittleEndian.Uint32(rh[4:])
		if plen == 0 || plen > maxRecordBytes || size-off-recHdBytes < int64(plen) {
			return batches, off, nil // implausible length or torn payload
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+recHdBytes); err != nil {
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return batches, off, nil // torn or bit-flipped payload
		}
		b, err := DecodeRecord(payload)
		if err != nil {
			return batches, off, nil // CRC-clean but structurally invalid
		}
		batches = append(batches, b)
		off += recHdBytes + int64(plen)
	}
}

// appendBatch writes and fsyncs one record, honoring injected crash
// points. On a simulated kill the log is dead and the error is
// fault.ErrCrashed; bytes already issued stay in the file (the harness
// decides how much of the unsynced tail "survives" the kill).
func (l *Log) appendBatch(seq uint64, ops []Op, crasher fault.Crasher) error {
	if l.dead {
		return fault.ErrCrashed
	}
	payload := encodeBatch(seq, ops)
	rec := make([]byte, recHdBytes+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	copy(rec[recHdBytes:], payload)

	if crasher != nil && crasher.Crash(fault.CrashMidRecord, seq) {
		// Die with the record half-written and unsynced.
		if _, err := l.f.WriteAt(rec[:len(rec)/2], l.size); err != nil {
			return err
		}
		l.size += int64(len(rec) / 2)
		l.dead = true
		return fault.ErrCrashed
	}
	if _, err := l.f.WriteAt(rec, l.size); err != nil {
		return err
	}
	l.size += int64(len(rec))
	if crasher != nil && crasher.Crash(fault.CrashBeforeFsync, seq) {
		l.dead = true
		return fault.ErrCrashed
	}
	if err := l.sync(); err != nil {
		return err
	}
	l.durable = l.size
	return nil
}

func (l *Log) sync() error { return l.f.Sync() }

// reset atomically replaces the log with an empty one (called after a
// checkpoint made its records redundant): a fresh header is written to a
// temp file, fsynced, renamed over the log, and the directory is
// fsynced, so a kill at any instant leaves either the old or the new
// log — both consistent with the durable checkpoint.
func (l *Log) reset() error {
	if l.dead {
		return fault.ErrCrashed
	}
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(l.path)+".tmp*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpPath) }
	if _, err := tmp.Write([]byte(walMagic)); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		cleanup()
		return err
	}
	if err := syncDir(dir); err != nil {
		tmp.Close()
		return err
	}
	old := l.f
	l.f = tmp
	l.size, l.durable = int64(len(walMagic)), int64(len(walMagic))
	return old.Close()
}

// Close releases the file handle (without fsync: closing is not a
// commit point).
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// readFull is a tiny helper for checkpoint loading.
func readFull(r io.ReaderAt, off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	_, err := r.ReadAt(buf, off)
	return buf, err
}
