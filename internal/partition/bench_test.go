package partition

import (
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
)

func benchGraph() *graph.Graph {
	n, edges := gen.Powerlaw(1<<15, 12, 2.0, 3)
	return graph.FromEdges(n, edges, false)
}

func BenchmarkVertexBalanced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		VertexBalanced(1<<20, 8)
	}
}

func BenchmarkEdgeBalanced(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBalanced(g, 8, In)
	}
}

func BenchmarkNodeOf(b *testing.B) {
	g := benchGraph()
	r := EdgeBalanced(g, 8, In)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeOf(r, graph.Vertex(i%g.NumVertices()))
	}
}
