// Package partition splits a graph's vertex space into contiguous
// per-node ranges.
//
// Polymer co-locates data and computation, so the partitioning decides the
// per-node workload. The paper's Section 5 contrasts the natural
// vertex-balanced split (equal vertex counts) with an edge-oriented
// balanced split inspired by vertex-cuts: choose vertex ranges
// V1..VN minimising the deviation of per-range degree sums, because the
// scatter/gather cost is linear in edges, not vertices. For skewed
// (power-law) graphs the difference is dramatic (paper Figure 11).
package partition

import (
	"fmt"
	"math"

	"polymer/internal/graph"
)

// Range is a half-open contiguous vertex interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of vertices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Contains reports whether v falls in the range.
func (r Range) Contains(v graph.Vertex) bool { return int(v) >= r.Lo && int(v) < r.Hi }

// String formats the range.
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Bounds converts ranges into the bounds form used by mem.New:
// parts+1 offsets covering [0, n).
func Bounds(ranges []Range) []int {
	b := make([]int, len(ranges)+1)
	for i, r := range ranges {
		b[i] = r.Lo
		b[i+1] = r.Hi
	}
	return b
}

// VertexBalanced splits [0, n) into parts ranges of (near-)equal vertex
// count — the default partitioning the paper ablates against.
func VertexBalanced(n, parts int) []Range {
	if parts <= 0 {
		panic("partition: parts must be positive")
	}
	out := make([]Range, parts)
	for p := 0; p < parts; p++ {
		out[p] = Range{Lo: n * p / parts, Hi: n * (p + 1) / parts}
	}
	return out
}

// Direction selects which degree an edge-balanced split equalises. The
// paper notes it is hard to balance both at once, and that Polymer only
// needs the direction its execution mode uses (Section 5).
type Direction uint8

const (
	// Out balances out-degree sums (pull-mode layouts).
	Out Direction = iota
	// In balances in-degree sums (push-mode layouts, where edges are
	// grouped by target).
	In
)

// EdgeBalanced splits [0, n) into parts contiguous ranges whose degree
// sums in the given direction are as even as possible. It walks the prefix
// sums of degrees, cutting as close to each i*m/parts boundary as
// possible.
func EdgeBalanced(g *graph.Graph, parts int, dir Direction) []Range {
	if parts <= 0 {
		panic("partition: parts must be positive")
	}
	n := g.NumVertices()
	deg := func(v graph.Vertex) int64 {
		if dir == Out {
			return g.OutDegree(v)
		}
		return g.InDegree(v)
	}
	var total int64
	for v := 0; v < n; v++ {
		total += deg(graph.Vertex(v))
	}
	out := make([]Range, parts)
	v := 0
	var acc int64
	for p := 0; p < parts; p++ {
		lo := v
		target := total * int64(p+1) / int64(parts)
		for v < n && acc < target {
			acc += deg(graph.Vertex(v))
			v++
		}
		// If excluding the boundary vertex lands closer to the target,
		// back off one step (heavy vertices otherwise skew the cut).
		if v > lo {
			last := deg(graph.Vertex(v - 1))
			if acc-target > target-(acc-last) {
				acc -= last
				v--
			}
		}
		out[p] = Range{Lo: lo, Hi: v}
	}
	out[parts-1].Hi = n
	return out
}

// Stats summarises partition balance for the paper's Figure 11(a).
type Stats struct {
	// EdgesPer holds the degree sum of each partition.
	EdgesPer []int64
	// NormDiff holds (edges_p - mean) / mean for each partition.
	NormDiff []float64
	// MaxAbsNormDiff is the worst absolute normalised deviation.
	MaxAbsNormDiff float64
}

// Measure computes balance statistics for ranges under direction dir.
func Measure(g *graph.Graph, ranges []Range, dir Direction) Stats {
	s := Stats{
		EdgesPer: make([]int64, len(ranges)),
		NormDiff: make([]float64, len(ranges)),
	}
	var total int64
	for p, r := range ranges {
		for v := r.Lo; v < r.Hi; v++ {
			if dir == Out {
				s.EdgesPer[p] += g.OutDegree(graph.Vertex(v))
			} else {
				s.EdgesPer[p] += g.InDegree(graph.Vertex(v))
			}
		}
		total += s.EdgesPer[p]
	}
	mean := float64(total) / float64(len(ranges))
	for p := range ranges {
		if mean > 0 {
			s.NormDiff[p] = (float64(s.EdgesPer[p]) - mean) / mean
		}
		if d := math.Abs(s.NormDiff[p]); d > s.MaxAbsNormDiff {
			s.MaxAbsNormDiff = d
		}
	}
	return s
}

// Validate checks that ranges exactly cover [0, n) without overlap.
func Validate(ranges []Range, n int) error {
	if len(ranges) == 0 {
		return fmt.Errorf("partition: no ranges")
	}
	if ranges[0].Lo != 0 {
		return fmt.Errorf("partition: first range starts at %d", ranges[0].Lo)
	}
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Lo != ranges[i-1].Hi {
			return fmt.Errorf("partition: gap/overlap at range %d", i)
		}
	}
	if ranges[len(ranges)-1].Hi != n {
		return fmt.Errorf("partition: last range ends at %d, want %d", ranges[len(ranges)-1].Hi, n)
	}
	return nil
}

// NodeOf returns the index of the range containing v (binary search).
func NodeOf(ranges []Range, v graph.Vertex) int {
	lo, hi := 0, len(ranges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ranges[mid].Hi <= int(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
