package partition

import (
	"testing"
	"testing/quick"

	"polymer/internal/gen"
	"polymer/internal/graph"
)

func TestVertexBalancedCovers(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw) % 1000
		parts := 1 + int(pRaw)%8
		r := VertexBalanced(n, parts)
		if Validate(r, n) != nil {
			return false
		}
		// Sizes differ by at most one.
		min, max := n, 0
		for _, rg := range r {
			if rg.Len() < min {
				min = rg.Len()
			}
			if rg.Len() > max {
				max = rg.Len()
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeBalancedCoversProperty(t *testing.T) {
	n, edges := gen.Powerlaw(2000, 8, 2.0, 7)
	g := graph.FromEdges(n, edges, false)
	for parts := 1; parts <= 8; parts++ {
		for _, dir := range []Direction{Out, In} {
			r := EdgeBalanced(g, parts, dir)
			if err := Validate(r, n); err != nil {
				t.Fatalf("parts=%d dir=%d: %v", parts, dir, err)
			}
		}
	}
}

func TestEdgeBalancedBeatsVertexBalancedOnSkew(t *testing.T) {
	// This is the paper's Figure 11(a): on a power-law graph, vertex
	// partitioning leaves edges badly imbalanced while edge partitioning
	// keeps the normalised deviation small.
	n, edges := gen.Powerlaw(20000, 10, 2.0, 42)
	g := graph.FromEdges(n, edges, false)
	const parts = 8
	vb := Measure(g, VertexBalanced(n, parts), Out)
	eb := Measure(g, EdgeBalanced(g, parts, Out), Out)
	if !(eb.MaxAbsNormDiff < vb.MaxAbsNormDiff) {
		t.Fatalf("edge-balanced (%.3f) must beat vertex-balanced (%.3f)",
			eb.MaxAbsNormDiff, vb.MaxAbsNormDiff)
	}
	if eb.MaxAbsNormDiff > 0.25 {
		t.Fatalf("edge-balanced deviation %.3f too large", eb.MaxAbsNormDiff)
	}
}

func TestEdgeBalancedDegreeSums(t *testing.T) {
	n, edges := gen.RMAT(11, 8, 3)
	g := graph.FromEdges(n, edges, false)
	r := EdgeBalanced(g, 4, In)
	s := Measure(g, r, In)
	var total int64
	for _, e := range s.EdgesPer {
		total += e
	}
	if total != g.NumEdges() {
		t.Fatalf("partition edge sums %d != |E| %d", total, g.NumEdges())
	}
}

func TestNodeOf(t *testing.T) {
	ranges := []Range{{0, 10}, {10, 10}, {10, 35}, {35, 100}}
	cases := map[graph.Vertex]int{0: 0, 9: 0, 10: 2, 34: 2, 35: 3, 99: 3}
	for v, want := range cases {
		if got := NodeOf(ranges, v); got != want {
			t.Fatalf("NodeOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestNodeOfAgreesWithContains(t *testing.T) {
	n, edges := gen.Uniform(500, 2000, 1)
	g := graph.FromEdges(n, edges, false)
	r := EdgeBalanced(g, 7, Out)
	f := func(vRaw uint16) bool {
		v := graph.Vertex(int(vRaw) % n)
		return r[NodeOf(r, v)].Contains(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBounds(t *testing.T) {
	r := []Range{{0, 5}, {5, 12}, {12, 20}}
	b := Bounds(r)
	want := []int{0, 5, 12, 20}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Bounds = %v, want %v", b, want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	if Validate(nil, 0) == nil {
		t.Fatal("empty ranges must fail")
	}
	if Validate([]Range{{1, 5}}, 5) == nil {
		t.Fatal("non-zero start must fail")
	}
	if Validate([]Range{{0, 3}, {4, 5}}, 5) == nil {
		t.Fatal("gap must fail")
	}
	if Validate([]Range{{0, 3}, {3, 4}}, 5) == nil {
		t.Fatal("short cover must fail")
	}
}

func TestPartsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VertexBalanced with 0 parts must panic")
		}
	}()
	VertexBalanced(10, 0)
}

func TestRangeString(t *testing.T) {
	if (Range{2, 7}).String() != "[2,7)" {
		t.Fatal("Range.String mismatch")
	}
}

func TestSinglePartition(t *testing.T) {
	n, edges := gen.Chain(100)
	g := graph.FromEdges(n, edges, false)
	r := EdgeBalanced(g, 1, Out)
	if len(r) != 1 || r[0].Lo != 0 || r[0].Hi != n {
		t.Fatalf("single partition = %v", r)
	}
	s := Measure(g, r, Out)
	if s.MaxAbsNormDiff != 0 {
		t.Fatal("single partition has zero deviation")
	}
}

func TestMorePartsThanVertices(t *testing.T) {
	n, edges := gen.Chain(3)
	g := graph.FromEdges(n, edges, false)
	r := EdgeBalanced(g, 8, Out)
	if err := Validate(r, n); err != nil {
		t.Fatal(err)
	}
}
