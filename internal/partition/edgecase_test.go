// Edge-case tests for the partitioners: empty shards, single-vertex and
// empty graphs, more shards than vertices, and byte-for-byte determinism
// across runs — the properties the cluster substrate's sharding leans on.

package partition

import (
	"math"
	"reflect"
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
)

// tinyGraph is a 3-vertex line with a heavy middle vertex.
func tinyGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 1, Dst: 0}, {Src: 2, Dst: 1},
	}, false)
}

func TestEmptyShardsWhenPartsExceedVertices(t *testing.T) {
	g := tinyGraph(t)
	for _, parts := range []int{4, 8, 17} {
		for name, ranges := range map[string][]Range{
			"vertex": VertexBalanced(g.NumVertices(), parts),
			"edge":   EdgeBalanced(g, parts, In),
		} {
			if len(ranges) != parts {
				t.Fatalf("%s/%d: %d ranges", name, parts, len(ranges))
			}
			if err := Validate(ranges, g.NumVertices()); err != nil {
				t.Fatalf("%s/%d: %v", name, parts, err)
			}
			empty := 0
			for _, r := range ranges {
				if r.Len() == 0 {
					empty++
				}
			}
			if empty < parts-g.NumVertices() {
				t.Fatalf("%s/%d: only %d empty ranges for 3 vertices", name, parts, empty)
			}
			// Every vertex still routes to the range that contains it,
			// empty shards notwithstanding.
			for v := 0; v < g.NumVertices(); v++ {
				p := NodeOf(ranges, graph.Vertex(v))
				if !ranges[p].Contains(graph.Vertex(v)) {
					t.Fatalf("%s/%d: NodeOf(%d) = %d (%s), doesn't contain it", name, parts, v, p, ranges[p])
				}
			}
		}
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := graph.FromEdges(1, nil, false)
	ranges := EdgeBalanced(g, 4, Out)
	if err := Validate(ranges, 1); err != nil {
		t.Fatal(err)
	}
	// With no edges every shard is empty except the forced tail; the lone
	// vertex must still route to whichever shard contains it.
	if p := NodeOf(ranges, 0); !ranges[p].Contains(0) {
		t.Fatalf("NodeOf(0) = %d (%s) in %v", p, ranges[p], ranges)
	}
	// Measure over edgeless shards must stay finite — no 0/0 NaNs leak
	// into the balance stats.
	st := Measure(g, ranges, Out)
	if st.MaxAbsNormDiff != 0 {
		t.Fatalf("MaxAbsNormDiff = %v, want 0 on an edgeless graph", st.MaxAbsNormDiff)
	}
	for _, d := range st.NormDiff {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("NormDiff = %v on an edgeless graph", st.NormDiff)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil, false)
	for name, ranges := range map[string][]Range{
		"vertex": VertexBalanced(0, 3),
		"edge":   EdgeBalanced(g, 3, In),
	} {
		if err := Validate(ranges, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range ranges {
			if r.Len() != 0 {
				t.Fatalf("%s: nonempty range %s over an empty vertex space", name, r)
			}
		}
		b := Bounds(ranges)
		if len(b) != 4 || b[0] != 0 || b[3] != 0 {
			t.Fatalf("%s: bounds = %v", name, b)
		}
	}
}

func TestPartitionDeterminism(t *testing.T) {
	// Same dataset, two independent loads: the cluster replicates shard
	// layouts by recomputing them, so the split must be a pure function
	// of the graph.
	g1, err := gen.Load(gen.PowerLaw, gen.Tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.Load(gen.PowerLaw, gen.Tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 5, 8} {
		for _, dir := range []Direction{Out, In} {
			a := EdgeBalanced(g1, parts, dir)
			b := EdgeBalanced(g2, parts, dir)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("parts=%d dir=%d: %v != %v", parts, dir, a, b)
			}
			if err := Validate(a, g1.NumVertices()); err != nil {
				t.Fatalf("parts=%d dir=%d: %v", parts, dir, err)
			}
		}
		if a, b := VertexBalanced(g1.NumVertices(), parts), VertexBalanced(g2.NumVertices(), parts); !reflect.DeepEqual(a, b) {
			t.Fatalf("VertexBalanced parts=%d nondeterministic", parts)
		}
	}
}
