package mem

import (
	"fmt"
	"sort"

	"polymer/internal/numa"
)

// Tier-aware placement. A TierPlan decides, per demand class and node,
// what fraction of the class's bytes live in DRAM versus the machine's
// slow tier, and the TierClass handles it hands out split every charge
// between numa.Epoch's DRAM and slow-tier access classes accordingly.
//
// The model is statistical rather than per-page: a class holds a
// DRAM-resident byte fraction and an access-mass fraction ("hit
// fraction") derived from it. Under the hot-vertex policy the two
// differ — a degree-rank mass curve says how much of the access stream
// the resident bytes cover — while under the naive interleave baseline
// every class spills uniformly, so hit == resident.
//
// Everything here is deterministic: class fill order, promotion
// ranking, and migration deltas are pure functions of the registered
// specs and the folded access counters, so the same seed and schedule
// replay to identical migration decisions and ledgers (the conformance
// suite checks exactly that).
//
// A nil *TierPlan / *TierClass is the untiered fast path: every charge
// wrapper forwards to the epoch's DRAM method with identical arguments,
// so an untiered run's arithmetic is bit-identical to the historical
// substrate. The same holds on a tiered machine whose DRAM covers the
// whole footprint: every resident fraction is exactly 1 and the slow
// split is exactly zero.

// ClassSpec describes one demand class registered with a TierPlan —
// typically one engine data structure (topology, vertex state,
// frontier) whose bytes compete for DRAM.
type ClassSpec struct {
	// Label names the class in migration logs and provenance.
	Label string
	// BytesPerNode is the class's demand on each node. Classes whose
	// structures are interleaved or centralized should spread/concentrate
	// their total accordingly.
	BytesPerNode []int64
	// Priority orders the initial DRAM fill: lower fills first. Pinned
	// classes fill before any priority.
	Priority int
	// Pinned marks runtime state the hot policy never spills (frontiers,
	// per-phase scratch). The interleave baseline ignores it.
	Pinned bool
	// HotMass maps a DRAM-resident byte fraction to the fraction of the
	// class's access mass it covers, under the assumption the hottest
	// bytes are resident (degree-rank order for vertex state). Nil means
	// uniform access: hit == resident.
	HotMass func(frac float64) float64
}

// Migration records one promotion/demotion decision: DeltaBytes > 0
// moved the class toward DRAM on that node, < 0 toward the slow tier.
type Migration struct {
	Pass       int
	Class      string
	Node       int
	DeltaBytes int64
}

// TierClass is a registered class's charging handle. A nil handle (from
// a nil plan, i.e. an untiered machine) forwards every charge to the
// DRAM access class unchanged.
type TierClass struct {
	plan *TierPlan
	idx  int
	spec ClassSpec

	// dramFrac[n] is the resident byte fraction on node n; hit[n] the
	// access-mass fraction it covers; hitIl their demand-weighted mean,
	// used for interleaved charges.
	dramFrac []float64
	hit      []float64
	hitIl    float64

	// acc[th] accumulates bytes charged by thread th since the last
	// promotion pass (thread-sharded, folded single-threaded in Step).
	acc []int64
}

// TierPlan owns the tier placement state for one machine.
type TierPlan struct {
	m       *numa.Machine
	cfg     numa.TierConfig
	classes []*TierClass

	steps int // committed phases since the last promotion pass
	pass  int // promotion passes run
	log   []Migration
}

// NewTierPlan returns a plan for the machine, or nil when the machine is
// untiered — callers thread the nil through and get the fast path.
func NewTierPlan(m *numa.Machine) *TierPlan {
	if m == nil || !m.Tiered() {
		return nil
	}
	return &TierPlan{m: m, cfg: m.TierConfig()}
}

// AddClass registers a demand class and recomputes the fill. It returns
// nil when the plan is nil.
func (tp *TierPlan) AddClass(spec ClassSpec) *TierClass {
	if tp == nil {
		return nil
	}
	if len(spec.BytesPerNode) != tp.m.Nodes {
		panic(fmt.Sprintf("mem: class %q has %d node demands, machine has %d nodes", spec.Label, len(spec.BytesPerNode), tp.m.Nodes))
	}
	c := &TierClass{
		plan:     tp,
		idx:      len(tp.classes),
		spec:     spec,
		dramFrac: make([]float64, tp.m.Nodes),
		hit:      make([]float64, tp.m.Nodes),
		acc:      make([]int64, tp.m.Threads()),
	}
	tp.classes = append(tp.classes, c)
	tp.fill(tp.order())
	return c
}

// order returns the class fill order for the current policy: pinned
// classes first, then ascending priority, registration order breaking
// ties. The interleave baseline has no order (uniform spill).
func (tp *TierPlan) order() []*TierClass {
	out := make([]*TierClass, len(tp.classes))
	copy(out, tp.classes)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.spec.Pinned != b.spec.Pinned {
			return a.spec.Pinned
		}
		return a.spec.Priority < b.spec.Priority
	})
	return out
}

// fill assigns each class's resident fraction per node. Under the hot
// policy classes fill DRAM greedily in the given order; under the
// interleave baseline every class gets the node's uniform ratio.
func (tp *TierPlan) fill(order []*TierClass) {
	nodes := tp.m.Nodes
	if tp.cfg.Policy == numa.TierInterleave {
		for n := 0; n < nodes; n++ {
			var demand int64
			for _, c := range tp.classes {
				demand += c.spec.BytesPerNode[n]
			}
			ratio := 1.0
			if demand > tp.cfg.DRAMPerNode {
				ratio = float64(tp.cfg.DRAMPerNode) / float64(demand)
			}
			for _, c := range tp.classes {
				c.dramFrac[n] = ratio
			}
		}
	} else {
		for n := 0; n < nodes; n++ {
			budget := tp.cfg.DRAMPerNode
			for _, c := range order {
				b := c.spec.BytesPerNode[n]
				if b <= 0 {
					c.dramFrac[n] = 1
					continue
				}
				take := b
				if take > budget {
					take = budget
				}
				if take == b {
					c.dramFrac[n] = 1
				} else {
					c.dramFrac[n] = float64(take) / float64(b)
				}
				budget -= take
			}
		}
	}
	for _, c := range tp.classes {
		c.refreshHit()
	}
}

// refreshHit derives the access-mass fractions from the resident ones.
func (c *TierClass) refreshHit() {
	var massNum, massDen float64
	for n, f := range c.dramFrac {
		h := f
		if c.plan.cfg.Policy == numa.TierHot && c.spec.HotMass != nil {
			h = c.spec.HotMass(f)
			if f >= 1 {
				h = 1 // the curve must not round 100% residency down
			}
		}
		c.hit[n] = h
		w := float64(c.spec.BytesPerNode[n])
		massNum += h * w
		massDen += w
	}
	if massDen > 0 {
		c.hitIl = massNum / massDen
	} else {
		c.hitIl = 1
	}
}

// GrowDemand adds bytes to the class's demand on one node and refills the
// plan in the static order (a later promotion pass re-ranks by observed
// traffic). Engines call it as structures are allocated, so class
// demand mirrors the allocation tracker. Nil-safe.
func (c *TierClass) GrowDemand(node int, bytes int64) {
	if c == nil || bytes == 0 {
		return
	}
	c.spec.BytesPerNode[node] += bytes
	c.plan.fill(c.plan.order())
}

// GrowDemandEven spreads bytes evenly across all nodes' demand. Nil-safe.
func (c *TierClass) GrowDemandEven(bytes int64) {
	if c == nil || bytes == 0 {
		return
	}
	nodes := int64(len(c.spec.BytesPerNode))
	for n := range c.spec.BytesPerNode {
		c.spec.BytesPerNode[n] += bytes / nodes
	}
	c.plan.fill(c.plan.order())
}

// SetHotMass installs (or replaces) the class's hot-mass curve once the
// degree distribution is known. Nil-safe.
func (c *TierClass) SetHotMass(f func(float64) float64) {
	if c == nil {
		return
	}
	c.spec.HotMass = f
	c.refreshHit()
}

// DRAMFrac returns the class's resident byte fraction on a node (1 for a
// nil handle: untiered machines are all-DRAM).
func (c *TierClass) DRAMFrac(node int) float64 {
	if c == nil {
		return 1
	}
	return c.dramFrac[node]
}

// HitFrac returns the fraction of the class's access mass on a node that
// the resident bytes cover.
func (c *TierClass) HitFrac(node int) float64 {
	if c == nil {
		return 1
	}
	return c.hit[node]
}

func (c *TierClass) record(th int, bytes int64) {
	if c.plan.cfg.PromoteEvery > 0 {
		c.acc[th] += bytes
	}
}

// Access charges count elements against node, splitting between DRAM and
// the slow tier by the class's hit fraction. A nil handle forwards to
// ep.Access unchanged.
func (c *TierClass) Access(ep *numa.Epoch, th int, p numa.Pattern, op numa.Op, node int, count int64, elemBytes int, ws int64) {
	if c == nil {
		ep.Access(th, p, op, node, count, elemBytes, ws)
		return
	}
	if count <= 0 {
		return
	}
	c.record(th, count*int64(elemBytes))
	dram := int64(float64(count) * c.hit[node])
	if dram > count {
		dram = count
	}
	ep.Access(th, p, op, node, dram, elemBytes, ws)
	ep.AccessSlow(th, p, op, node, count-dram, elemBytes, ws)
}

// AccessInterleaved charges count elements against interleaved pages,
// splitting by the class's demand-weighted mean hit fraction.
func (c *TierClass) AccessInterleaved(ep *numa.Epoch, th int, p numa.Pattern, op numa.Op, count int64, elemBytes int, ws int64) {
	if c == nil {
		ep.AccessInterleaved(th, p, op, count, elemBytes, ws)
		return
	}
	if count <= 0 {
		return
	}
	c.record(th, count*int64(elemBytes))
	dram := int64(float64(count) * c.hitIl)
	if dram > count {
		dram = count
	}
	ep.AccessInterleaved(th, p, op, dram, elemBytes, ws)
	ep.AccessSlowInterleaved(th, p, op, count-dram, elemBytes, ws)
}

// LatencyBound charges count serialised operations against node,
// splitting by the class's hit fraction.
func (c *TierClass) LatencyBound(ep *numa.Epoch, th int, op numa.Op, node int, count int64) {
	if c == nil {
		ep.LatencyBound(th, op, node, count)
		return
	}
	if count <= 0 {
		return
	}
	c.record(th, count*8)
	dram := int64(float64(count) * c.hit[node])
	if dram > count {
		dram = count
	}
	ep.LatencyBound(th, op, node, dram)
	ep.LatencyBoundSlow(th, op, node, count-dram)
}

// Step commits one parallel phase: it advances the promotion clock and,
// every PromoteEvery committed phases under the hot policy, folds the
// thread-sharded access counters, re-ranks the classes by observed
// access density, refills DRAM in the new order, and charges the
// migration traffic into ep (slow-tier reads + DRAM writes for
// promotions and the reverse for demotions, capped at PromoteFrac of
// the machine's DRAM per pass). Call it with the phase's epoch before
// folding the epoch into the clock, so migration cost lands in the
// phase and rolls back with it. Nil-safe.
func (tp *TierPlan) Step(ep *numa.Epoch) {
	if tp == nil || tp.cfg.PromoteEvery <= 0 || tp.cfg.Policy != numa.TierHot {
		return
	}
	tp.steps++
	if tp.steps < tp.cfg.PromoteEvery {
		return
	}
	tp.steps = 0
	tp.pass++

	// Fold the sharded counters (single-threaded: phases are committed
	// between parallel sections).
	density := make([]float64, len(tp.classes))
	for i, c := range tp.classes {
		var folded int64
		for th := range c.acc {
			folded += c.acc[th]
			c.acc[th] = 0
		}
		var bytes int64
		for _, b := range c.spec.BytesPerNode {
			bytes += b
		}
		if bytes > 0 {
			density[i] = float64(folded) / float64(bytes)
		}
	}

	// Re-rank: pinned classes keep their place, the rest order by
	// observed density (descending), priority then registration order
	// breaking ties — all deterministic.
	order := make([]*TierClass, len(tp.classes))
	copy(order, tp.classes)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.spec.Pinned != b.spec.Pinned {
			return a.spec.Pinned
		}
		if density[a.idx] != density[b.idx] {
			return density[a.idx] > density[b.idx]
		}
		return a.spec.Priority < b.spec.Priority
	})

	old := make([][]float64, len(tp.classes))
	for i, c := range tp.classes {
		old[i] = append([]float64(nil), c.dramFrac...)
	}
	tp.fill(order)

	// Cap the migration volume per pass, scaling every delta uniformly
	// so the decision stays a pure function of the counters.
	var promoted float64
	for i, c := range tp.classes {
		for n := range c.dramFrac {
			if d := (c.dramFrac[n] - old[i][n]) * float64(c.spec.BytesPerNode[n]); d > 0 {
				promoted += d
			}
		}
	}
	maxMove := tp.cfg.PromoteFrac * float64(tp.cfg.DRAMPerNode) * float64(tp.m.Nodes)
	scale := 1.0
	if promoted > maxMove && promoted > 0 {
		scale = maxMove / promoted
	}

	nodes := tp.m.Nodes
	promoteBytes := make([]int64, nodes)
	demoteBytes := make([]int64, nodes)
	for i, c := range tp.classes {
		for n := range c.dramFrac {
			target := old[i][n] + (c.dramFrac[n]-old[i][n])*scale
			c.dramFrac[n] = target
			delta := int64((target - old[i][n]) * float64(c.spec.BytesPerNode[n]))
			if delta == 0 {
				continue
			}
			if delta > 0 {
				promoteBytes[n] += delta
			} else {
				demoteBytes[n] += -delta
			}
			tp.log = append(tp.log, Migration{Pass: tp.pass, Class: c.spec.Label, Node: n, DeltaBytes: delta})
		}
		c.refreshHit()
	}
	for n := 0; n < nodes; n++ {
		th := n * tp.m.CoresPerNode // one migration worker per node
		if b := promoteBytes[n]; b > 0 {
			ep.AccessSlow(th, numa.Seq, numa.Load, n, b, 1, 0)
			ep.Access(th, numa.Seq, numa.Store, n, b, 1, 0)
		}
		if b := demoteBytes[n]; b > 0 {
			ep.Access(th, numa.Seq, numa.Load, n, b, 1, 0)
			ep.AccessSlow(th, numa.Seq, numa.Store, n, b, 1, 0)
		}
	}
}

// Migrations returns the migration log (nil-safe).
func (tp *TierPlan) Migrations() []Migration {
	if tp == nil {
		return nil
	}
	return tp.log
}

// Classes returns the registered class labels with their mean resident
// fractions, for provenance reporting (nil-safe).
func (tp *TierPlan) Classes() []string {
	if tp == nil {
		return nil
	}
	out := make([]string, len(tp.classes))
	for i, c := range tp.classes {
		var f, w float64
		for n, b := range c.spec.BytesPerNode {
			f += c.dramFrac[n] * float64(b)
			w += float64(b)
		}
		if w > 0 {
			f /= w
		} else {
			f = 1
		}
		out[i] = fmt.Sprintf("%s:%.3f", c.spec.Label, f)
	}
	return out
}

// TierSnap captures a plan's mutable state for checkpoint/rollback.
type TierSnap struct {
	steps, pass int
	logLen      int
	frac        [][]float64
	acc         [][]int64
	demand      [][]int64
}

// Snapshot captures the plan's state (nil-safe: returns nil).
func (tp *TierPlan) Snapshot() *TierSnap {
	if tp == nil {
		return nil
	}
	s := &TierSnap{steps: tp.steps, pass: tp.pass, logLen: len(tp.log)}
	s.frac = make([][]float64, len(tp.classes))
	s.acc = make([][]int64, len(tp.classes))
	s.demand = make([][]int64, len(tp.classes))
	for i, c := range tp.classes {
		s.frac[i] = append([]float64(nil), c.dramFrac...)
		s.acc[i] = append([]int64(nil), c.acc...)
		s.demand[i] = append([]int64(nil), c.spec.BytesPerNode...)
	}
	return s
}

// Restore rewinds the plan to a snapshot taken on the same plan. Class
// demand is NOT rolled back — it mirrors the allocation tracker, and a
// rolled-back step's lazy allocations (grouped layouts, agent buffers)
// survive into the replay. When demand grew since the snapshot, the
// restored fractions are stale, so the plan refills in the static order
// — exactly what the intervening Grow calls do in a committed run — and
// the replay charges bit-identically to a fault-free run. With demand
// unchanged the snapshot's fractions are copied verbatim, preserving
// hot-policy promotion state. Nil-safe when both are nil.
func (tp *TierPlan) Restore(s *TierSnap) {
	if tp == nil || s == nil {
		return
	}
	tp.steps, tp.pass = s.steps, s.pass
	tp.log = tp.log[:s.logLen]
	refill := false
	for i, c := range tp.classes {
		if i >= len(s.frac) {
			refill = true
			continue
		}
		copy(c.dramFrac, s.frac[i])
		copy(c.acc, s.acc[i])
		for n, b := range c.spec.BytesPerNode {
			if b != s.demand[i][n] {
				refill = true
			}
		}
	}
	if refill {
		tp.fill(tp.order())
		return
	}
	for _, c := range tp.classes {
		c.refreshHit()
	}
}

// DegreeHotMass builds a hot-mass curve from a degree distribution: the
// fraction of total edge mass covered when the hottest frac of vertices
// (by degree rank) are DRAM-resident. The curve is sampled into a small
// CDF so plans don't retain the degree array.
func DegreeHotMass(n int, deg func(i int) int64) func(float64) float64 {
	if n <= 0 {
		return nil
	}
	ds := make([]int64, n)
	var total int64
	for i := 0; i < n; i++ {
		ds[i] = deg(i)
		total += ds[i]
	}
	if total <= 0 {
		return nil
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] > ds[j] })
	const buckets = 128
	cdf := make([]float64, buckets+1)
	var run int64
	next := 1
	for i := 0; i < n; i++ {
		run += ds[i]
		for next <= buckets && i+1 >= (n*next+buckets-1)/buckets {
			cdf[next] = float64(run) / float64(total)
			next++
		}
	}
	for ; next <= buckets; next++ {
		cdf[next] = 1
	}
	cdf[buckets] = 1
	return func(frac float64) float64 {
		if frac <= 0 {
			return 0
		}
		if frac >= 1 {
			return 1
		}
		x := frac * buckets
		k := int(x)
		if k >= buckets {
			return 1
		}
		return cdf[k] + (cdf[k+1]-cdf[k])*(x-float64(k))
	}
}
