package mem

import (
	"math"
	"testing"

	"polymer/internal/numa"
)

// Satellite: the charge helpers are called with engine-computed
// descriptors; a bad descriptor (speculative range past the end, empty
// array, zero-byte element type) must never panic or corrupt the
// ledger — it charges the overlapping part, or nothing.

func chargeAll[T any](t *testing.T, m *numa.Machine, a *Array[T], lo, count int64, p int) {
	t.Helper()
	ep := m.NewEpoch()
	a.ChargeSeq(ep, 0, numa.Load, lo, count)
	a.ChargeRandLocal(ep, 1, numa.Store, p, count)
	a.ChargeRandGlobal(ep, 2, numa.Load, count)
	_ = a.NodeOf(int(lo))
	_ = a.NodeOf(int(lo + count))
	if tm := ep.Time(); math.IsNaN(tm) || tm < 0 || math.IsInf(tm, 0) {
		t.Fatalf("corrupt clock %v after lo=%d count=%d p=%d", tm, lo, count, p)
	}
	var tr numa.TrafficMatrix
	ep.Traffic(&tr)
	if tot := tr.Total(); math.IsNaN(tot) || tot < 0 {
		t.Fatalf("corrupt traffic %v", tot)
	}
}

func FuzzArrayChargeBounds(f *testing.F) {
	f.Add(int64(0), int64(100), 100, uint8(0), int64(0), 0)
	f.Add(int64(-5), int64(10), 8, uint8(1), int64(1<<10), 1)
	f.Add(int64(90), int64(100), 100, uint8(2), int64(64), -3)
	f.Add(int64(1<<40), int64(1<<40), 0, uint8(0), int64(1), 99)
	f.Add(int64(-1<<40), int64(-1), 1, uint8(1), int64(0), 4)
	f.Add(int64(3), int64(0), 17, uint8(2), int64(256), 2)
	f.Fuzz(func(t *testing.T, lo, count int64, n int, placeRaw uint8, dramPerNode int64, p int) {
		if n < 0 || n > 1<<16 {
			return
		}
		m := numa.NewMachine(numa.IntelXeon80(), 4, 2)
		if dramPerNode > 0 {
			if err := m.SetTierConfig(numa.TierConfig{DRAMPerNode: dramPerNode, Policy: numa.TierHot, PromoteEvery: 1}); err != nil {
				t.Fatal(err)
			}
		}
		place := Placement(placeRaw % 3)
		var bounds []int
		if place == CoLocated {
			// Uneven split, including possibly-empty partitions.
			bounds = []int{0, n / 5, n / 5, n / 2, n}
		}
		tp := NewTierPlan(m)
		cls := tp.AddClass(ClassSpec{Label: "fuzz", BytesPerNode: evenBytes(4, int64(n)*8/4 + 1)})

		a := New[int64](m, "w", n, place, bounds).BindTier(cls)
		chargeAll(t, m, a, lo, count, p)

		// Zero-byte element type: all descriptors are weightless but must
		// still be safe.
		z := New[struct{}](m, "z", n, place, bounds).BindTier(cls)
		chargeAll(t, m, z, lo, count, p)

		// Empty array: every range clamps to nothing.
		var eb []int
		if place == CoLocated {
			eb = []int{0, 0, 0, 0, 0}
		}
		e := New[int64](m, "e", 0, place, eb).BindTier(cls)
		chargeAll(t, m, e, lo, count, p)
	})
}

// Tier-boundary-straddling ranges: a sequential scan across the
// DRAM/slow boundary charges each side exactly once, and the split is
// exact in bytes.
func TestChargeSeqTierBoundarySplit(t *testing.T) {
	m := numa.NewMachine(numa.IntelXeon80(), 4, 2)
	// DRAM covers exactly half of each node's partition of the array.
	const n = 4000
	const elem = 8
	perNode := int64(n / 4 * elem)
	if err := m.SetTierConfig(numa.TierConfig{DRAMPerNode: perNode / 2, Policy: numa.TierHot}); err != nil {
		t.Fatal(err)
	}
	tp := NewTierPlan(m)
	cls := tp.AddClass(ClassSpec{Label: "state", BytesPerNode: evenBytes(4, perNode)})
	bounds := []int{0, 1000, 2000, 3000, 4000}
	a := New[int64](m, "s", n, CoLocated, bounds).BindTier(cls)

	ep := m.NewEpoch()
	// Scan node 0's partition entirely: 500 elements DRAM, 500 slow.
	a.ChargeSeq(ep, 0, numa.Load, 0, 1000)
	var tm numa.TrafficMatrix
	ep.Traffic(&tm)
	levels := m.Topo.MaxLevel() + 1
	if got := tm.At(0, 0, numa.Seq); got != 500*elem {
		t.Fatalf("DRAM side = %v bytes, want %v", got, 500*elem)
	}
	if got := tm.At(0, levels+0, numa.Seq); got != 500*elem {
		t.Fatalf("slow side = %v bytes, want %v", got, 500*elem)
	}

	// A range straddling the boundary inside one partition splits at it.
	ep2 := m.NewEpoch()
	a.ChargeSeq(ep2, 0, numa.Load, 400, 200) // boundary at 500
	ep2.Traffic(&tm)
	if got := tm.At(0, 0, numa.Seq); got != 100*elem {
		t.Fatalf("straddle DRAM side = %v bytes, want %v", got, 100*elem)
	}
	if got := tm.At(0, levels+0, numa.Seq); got != 100*elem {
		t.Fatalf("straddle slow side = %v bytes, want %v", got, 100*elem)
	}

	// Entirely-resident and entirely-spilled ranges stay one-sided.
	ep3 := m.NewEpoch()
	a.ChargeSeq(ep3, 0, numa.Load, 0, 500)
	a.ChargeSeq(ep3, 0, numa.Load, 500, 500)
	ep3.Traffic(&tm)
	if got := tm.At(0, 0, numa.Seq); got != 500*elem {
		t.Fatalf("resident range DRAM = %v", got)
	}
	if got := tm.At(0, levels+0, numa.Seq); got != 500*elem {
		t.Fatalf("spilled range slow = %v", got)
	}
}
