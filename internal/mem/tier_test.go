package mem

import (
	"math"
	"reflect"
	"testing"

	"polymer/internal/numa"
)

func tieredMachine(t testing.TB, dramPerNode int64, pol numa.TierPolicy, every int) *numa.Machine {
	m := numa.NewMachine(numa.IntelXeon80(), 4, 2)
	if err := m.SetTierConfig(numa.TierConfig{DRAMPerNode: dramPerNode, Policy: pol, PromoteEvery: every}); err != nil {
		t.Fatal(err)
	}
	return m
}

func evenBytes(nodes int, per int64) []int64 {
	out := make([]int64, nodes)
	for i := range out {
		out[i] = per
	}
	return out
}

// Nil plan and nil class are the untiered fast path: every wrapper must
// charge bit-identically to the direct epoch call.
func TestNilTierClassPassThrough(t *testing.T) {
	m := numa.NewMachine(numa.IntelXeon80(), 4, 2)
	tp := NewTierPlan(m)
	if tp != nil {
		t.Fatal("untiered machine should yield a nil plan")
	}
	c := tp.AddClass(ClassSpec{Label: "x", BytesPerNode: evenBytes(4, 1)})
	if c != nil {
		t.Fatal("nil plan should yield a nil class")
	}

	direct, wrapped := m.NewEpoch(), m.NewEpoch()
	direct.Access(0, numa.Rand, numa.Store, 2, 1000, 8, 1<<24)
	direct.AccessInterleaved(1, numa.Seq, numa.Load, 500, 4, 0)
	direct.LatencyBound(2, numa.Store, 3, 77)
	c.Access(wrapped, 0, numa.Rand, numa.Store, 2, 1000, 8, 1<<24)
	c.AccessInterleaved(wrapped, 1, numa.Seq, numa.Load, 500, 4, 0)
	c.LatencyBound(wrapped, 2, numa.Store, 3, 77)
	var a, b numa.TrafficMatrix
	direct.Traffic(&a)
	wrapped.Traffic(&b)
	if !reflect.DeepEqual(a, b) || direct.Time() != wrapped.Time() {
		t.Fatal("nil tier class diverged from direct epoch charges")
	}
}

// Full-DRAM tiered charges must also be bit-identical to untiered ones:
// the resident fraction is exactly 1 and the slow split exactly zero.
func TestFullDRAMBitIdentical(t *testing.T) {
	flat := numa.NewMachine(numa.IntelXeon80(), 4, 2)
	tiered := tieredMachine(t, 1<<40, numa.TierHot, 4)
	tp := NewTierPlan(tiered)
	c := tp.AddClass(ClassSpec{Label: "state", BytesPerNode: evenBytes(4, 1 << 20),
		HotMass: DegreeHotMass(100, func(i int) int64 { return int64(100 - i) })})

	e1, e2 := flat.NewEpoch(), tiered.NewEpoch()
	for th := 0; th < 8; th++ {
		e1.Access(th, numa.Rand, numa.Load, th%4, 10000, 8, 1<<22)
		e1.AccessInterleaved(th, numa.Seq, numa.Store, 2500, 4, 0)
		e1.LatencyBound(th, numa.Load, (th+1)%4, 31)
		c.Access(e2, th, numa.Rand, numa.Load, th%4, 10000, 8, 1<<22)
		c.AccessInterleaved(e2, th, numa.Seq, numa.Store, 2500, 4, 0)
		c.LatencyBound(e2, th, numa.Load, (th+1)%4, 31)
	}
	if g, w := e2.Time(), e1.Time(); g != w {
		t.Fatalf("full-DRAM tiered clock %v != untiered %v", g, w)
	}
	s1, s2 := e1.Stats(), e2.Stats()
	if s2.SlowCount != 0 {
		t.Fatalf("full-DRAM run charged %d slow accesses", s2.SlowCount)
	}
	s2.SlowRate = 0 // only field allowed to differ structurally
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
}

func TestHotFillOrderAndInterleaveBaseline(t *testing.T) {
	// DRAM holds half the total demand. Hot policy: pinned frontier
	// fully resident, then priority 0, the rest spills. Interleave:
	// everything at the uniform ratio.
	const per = 1 << 20
	hot := NewTierPlan(tieredMachine(t, 2*per, numa.TierHot, 0))
	fr := hot.AddClass(ClassSpec{Label: "frontier", BytesPerNode: evenBytes(4, per), Pinned: true, Priority: 9})
	st := hot.AddClass(ClassSpec{Label: "state", BytesPerNode: evenBytes(4, per), Priority: 0})
	topo := hot.AddClass(ClassSpec{Label: "topo", BytesPerNode: evenBytes(4, 2*per), Priority: 1})
	if fr.DRAMFrac(0) != 1 || st.DRAMFrac(0) != 1 {
		t.Fatalf("pinned/hot classes not resident: %v %v", fr.DRAMFrac(0), st.DRAMFrac(0))
	}
	if topo.DRAMFrac(0) != 0 {
		t.Fatalf("cold class resident: %v", topo.DRAMFrac(0))
	}

	il := NewTierPlan(tieredMachine(t, 2*per, numa.TierInterleave, 0))
	fr2 := il.AddClass(ClassSpec{Label: "frontier", BytesPerNode: evenBytes(4, per), Pinned: true})
	st2 := il.AddClass(ClassSpec{Label: "state", BytesPerNode: evenBytes(4, per)})
	to2 := il.AddClass(ClassSpec{Label: "topo", BytesPerNode: evenBytes(4, 2*per)})
	for _, c := range []*TierClass{fr2, st2, to2} {
		if got := c.DRAMFrac(0); got != 0.5 {
			t.Fatalf("interleave frac = %v, want 0.5", got)
		}
		if got := c.HitFrac(1); got != 0.5 {
			t.Fatalf("interleave hit = %v, want 0.5", got)
		}
	}
}

// Under equal residency, a skew-aware hot-mass curve must cover more
// access mass than the uniform baseline — the whole point of the policy.
func TestHotMassBeatsUniform(t *testing.T) {
	curve := DegreeHotMass(1000, func(i int) int64 {
		return int64(1000000 / (i + 1)) // zipf-ish
	})
	if curve == nil {
		t.Fatal("no curve")
	}
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75} {
		if got := curve(f); got <= f {
			t.Fatalf("hot mass at %.2f residency = %v, not above uniform", f, got)
		}
	}
	if curve(0) != 0 || curve(1) != 1 {
		t.Fatalf("curve endpoints: %v %v", curve(0), curve(1))
	}
	for f := 0.0; f < 1; f += 0.01 {
		if curve(f) > curve(f+0.01)+1e-12 {
			t.Fatalf("curve not monotone at %v", f)
		}
	}
	// Degenerate inputs yield no curve (uniform fallback).
	if DegreeHotMass(0, nil) != nil {
		t.Fatal("empty curve should be nil")
	}
	if DegreeHotMass(5, func(int) int64 { return 0 }) != nil {
		t.Fatal("zero-mass curve should be nil")
	}
}

// Promotion determinism: identical charge schedules produce identical
// migration logs, residency, and ledgers on two independent plans.
func TestPromotionDeterminism(t *testing.T) {
	build := func() (*numa.Machine, *TierPlan, []*TierClass) {
		m := tieredMachine(t, 1<<20, numa.TierHot, 2)
		tp := NewTierPlan(m)
		cs := []*TierClass{
			tp.AddClass(ClassSpec{Label: "a", BytesPerNode: evenBytes(4, 1 << 20), Priority: 0}),
			tp.AddClass(ClassSpec{Label: "b", BytesPerNode: evenBytes(4, 1 << 20), Priority: 1}),
			tp.AddClass(ClassSpec{Label: "c", BytesPerNode: evenBytes(4, 1 << 19), Priority: 2}),
		}
		return m, tp, cs
	}
	run := func(m *numa.Machine, tp *TierPlan, cs []*TierClass) (*numa.Epoch, []Migration) {
		total := m.NewEpoch()
		for step := 0; step < 10; step++ {
			ep := m.NewEpoch()
			// Class "c" is hammered hardest per byte; "a" barely touched.
			for th := 0; th < m.Threads(); th++ {
				cs[2].Access(ep, th, numa.Rand, numa.Load, th%m.Nodes, 50000, 8, 1<<20)
				cs[1].Access(ep, th, numa.Rand, numa.Load, th%m.Nodes, 10000, 8, 1<<20)
				cs[0].Access(ep, th, numa.Seq, numa.Load, th%m.Nodes, 100, 8, 0)
			}
			tp.Step(ep)
			total.Add(ep)
		}
		return total, tp.Migrations()
	}
	m1, tp1, cs1 := build()
	m2, tp2, cs2 := build()
	e1, log1 := run(m1, tp1, cs1)
	e2, log2 := run(m2, tp2, cs2)
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("migration logs diverged:\n%v\n%v", log1, log2)
	}
	if len(log1) == 0 {
		t.Fatal("no migrations happened; schedule should force promotion")
	}
	var t1, t2 numa.TrafficMatrix
	e1.Traffic(&t1)
	e2.Traffic(&t2)
	if !reflect.DeepEqual(t1, t2) || e1.Time() != e2.Time() {
		t.Fatal("ledgers diverged under identical schedules")
	}
	// The hot class must have been promoted at the cold one's expense.
	if cs1[2].DRAMFrac(0) <= 0 {
		t.Fatalf("hot class not promoted: frac %v", cs1[2].DRAMFrac(0))
	}
}

// Snapshot/Restore must rewind residency, counters, pass clock, and the
// migration log so a rolled-back superstep replays identically.
func TestTierSnapshotRestoreReplay(t *testing.T) {
	m := tieredMachine(t, 1<<20, numa.TierHot, 1)
	tp := NewTierPlan(m)
	a := tp.AddClass(ClassSpec{Label: "a", BytesPerNode: evenBytes(4, 1 << 20), Priority: 0})
	b := tp.AddClass(ClassSpec{Label: "b", BytesPerNode: evenBytes(4, 1 << 20), Priority: 1})

	work := func(ep *numa.Epoch) {
		for th := 0; th < m.Threads(); th++ {
			b.Access(ep, th, numa.Rand, numa.Load, th%m.Nodes, 40000, 8, 1<<20)
			a.Access(ep, th, numa.Seq, numa.Load, th%m.Nodes, 10, 8, 0)
		}
	}
	warm := m.NewEpoch()
	work(warm)
	tp.Step(warm)

	snap := tp.Snapshot()
	ep1 := m.NewEpoch()
	work(ep1)
	tp.Step(ep1)
	log1 := append([]Migration(nil), tp.Migrations()...)
	frac1 := []float64{a.DRAMFrac(0), b.DRAMFrac(0)}

	tp.Restore(snap)
	ep2 := m.NewEpoch()
	work(ep2)
	tp.Step(ep2)
	if !reflect.DeepEqual(log1, tp.Migrations()) {
		t.Fatal("replayed migration log differs")
	}
	if frac1[0] != a.DRAMFrac(0) || frac1[1] != b.DRAMFrac(0) {
		t.Fatal("replayed residency differs")
	}
	var m1, m2 numa.TrafficMatrix
	ep1.Traffic(&m1)
	ep2.Traffic(&m2)
	if !reflect.DeepEqual(m1, m2) || ep1.Time() != ep2.Time() {
		t.Fatal("replayed epoch diverged")
	}
	if tp.Snapshot() == nil || !math.IsNaN(math.NaN()) {
		_ = tp // keep the nil-safety path covered below
	}
	var nilPlan *TierPlan
	if nilPlan.Snapshot() != nil {
		t.Fatal("nil plan snapshot should be nil")
	}
	nilPlan.Restore(nil) // must not panic
	nilPlan.Step(nil)    // must not panic
}

// TestTierRestoreAfterGrow: demand grown between Snapshot and Restore
// (a rolled-back step's lazy allocation, which survives the rollback)
// must leave the restored plan consistent with the grown demand — the
// same fill a committed run's Grow produces — not the snapshot's stale
// fractions. This is the regression test for the step-0 rollback bug:
// restoring pre-growth all-resident fractions over the grown demand
// silently turned the rest of the run all-DRAM.
func TestTierRestoreAfterGrow(t *testing.T) {
	for _, pol := range []numa.TierPolicy{numa.TierInterleave, numa.TierHot} {
		m := tieredMachine(t, 1<<10, pol, 0)
		tp := NewTierPlan(m)
		c := tp.AddClass(ClassSpec{Label: "c", BytesPerNode: evenBytes(4, 1<<9)})
		if c.DRAMFrac(0) != 1 {
			t.Fatalf("%v: pre-growth demand should be fully resident", pol)
		}
		snap := tp.Snapshot()
		c.GrowDemand(0, 1<<12) // lazy allocation inside the step being rolled back
		want := c.DRAMFrac(0)
		if want >= 1 {
			t.Fatalf("%v: grown demand should spill (frac %v)", pol, want)
		}
		tp.Restore(snap)
		if got := c.DRAMFrac(0); got != want {
			t.Errorf("%v: restored frac %v, want the committed-run fill %v", pol, got, want)
		}
		if h := c.HitFrac(0); h >= 1 {
			t.Errorf("%v: restored hit fraction %v still claims full residency", pol, h)
		}
	}
}
