// Package mem provides partitioned, placement-aware arrays for the
// simulated NUMA machine.
//
// An Array is a contiguous Go slice plus a placement descriptor recording
// which simulated memory node owns each index range. Engines use the
// descriptor both to schedule computation (co-locating threads with their
// partition) and to classify accesses when charging the numa.Epoch ledger.
// The three placements mirror the paper's Table 1:
//
//   - CoLocated: each partition's pages live on its owning node (Polymer's
//     allocation strategy — worker threads on node i allocate partition i);
//   - Interleaved: pages are striped across all nodes (what first-touch by
//     construction-stage threads degenerates to in NUMA-oblivious systems);
//   - Centralized: all pages live on node 0 (main-thread allocation of
//     short-term runtime state in existing systems).
package mem

import (
	"fmt"
	"strings"
	"unsafe"

	"polymer/internal/numa"
)

// Placement describes how an array's physical pages are distributed.
type Placement uint8

const (
	// CoLocated places each partition on its owning node.
	CoLocated Placement = iota
	// Interleaved stripes pages round-robin across all nodes.
	Interleaved
	// Centralized places everything on node 0.
	Centralized
)

// String names the placement as in the paper's Table 1.
func (p Placement) String() string {
	switch p {
	case CoLocated:
		return "co-located"
	case Interleaved:
		return "interleaved"
	default:
		return "centralized"
	}
}

// Placements lists the three policies in Table 1 order.
func Placements() []Placement {
	return []Placement{CoLocated, Interleaved, Centralized}
}

// ParsePlacement maps a wire/CLI spelling to a Placement. Accepted forms
// are the String() names plus common aliases ("colocated", "local",
// "central"); matching is case-insensitive.
func ParsePlacement(s string) (Placement, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "co-located", "colocated", "co_located", "local":
		return CoLocated, nil
	case "interleaved", "interleave":
		return Interleaved, nil
	case "centralized", "centralised", "central":
		return Centralized, nil
	}
	return CoLocated, fmt.Errorf("mem: unknown placement %q (want co-located, interleaved or centralized)", s)
}

// Array is a placement-aware array of T.
type Array[T any] struct {
	// Data is the backing storage; index it directly in hot loops.
	Data []T

	m         *numa.Machine
	place     Placement
	bounds    []int // len Nodes+1 when CoLocated; nil otherwise
	label     string
	elemBytes int64
	freed     bool
	tier      *TierClass // nil on untiered machines: all-DRAM fast path
}

// New allocates an n-element array with the given placement. For CoLocated
// placement, bounds must hold Nodes+1 monotonically non-decreasing offsets
// with bounds[0] == 0 and bounds[Nodes] == n (partition p owns
// [bounds[p], bounds[p+1])). For other placements bounds must be nil.
// The allocation is registered with the machine's tracker under label.
func New[T any](m *numa.Machine, label string, n int, place Placement, bounds []int) *Array[T] {
	if place == CoLocated {
		if len(bounds) != m.Nodes+1 {
			panic(fmt.Sprintf("mem: co-located array needs %d bounds, got %d", m.Nodes+1, len(bounds)))
		}
		if bounds[0] != 0 || bounds[m.Nodes] != n {
			panic("mem: bounds must cover [0, n)")
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				panic("mem: bounds must be non-decreasing")
			}
		}
	} else if bounds != nil {
		panic("mem: bounds are only valid for co-located placement")
	}
	var zero T
	a := &Array[T]{
		Data:      make([]T, n),
		m:         m,
		place:     place,
		bounds:    bounds,
		label:     label,
		elemBytes: int64(unsafe.Sizeof(zero)),
	}
	if err := m.Alloc().Grow(label, a.Bytes()); err != nil {
		// Simulated allocation failure (fault injection): surface it as a
		// panic so it propagates through construction code; the resilience
		// harness (fault.Catch) recovers it into an error.
		panic(err)
	}
	return a
}

// Len returns the element count.
func (a *Array[T]) Len() int { return len(a.Data) }

// Bytes returns the simulated footprint in bytes.
func (a *Array[T]) Bytes() int64 { return a.elemBytes * int64(len(a.Data)) }

// ElemBytes returns the element size in bytes.
func (a *Array[T]) ElemBytes() int { return int(a.elemBytes) }

// Placement returns the array's placement policy.
func (a *Array[T]) Placement() Placement { return a.place }

// Label returns the allocation label.
func (a *Array[T]) Label() string { return a.label }

// BindTier attaches a tier class to the array: subsequent charges split
// between DRAM and the slow tier by the class's residency. A nil class
// (untiered machine) leaves the all-DRAM fast path in place. It returns
// the array for chaining.
func (a *Array[T]) BindTier(c *TierClass) *Array[T] {
	a.tier = c
	return a
}

// Tier returns the bound tier class (nil when untiered).
func (a *Array[T]) Tier() *TierClass { return a.tier }

// GrowTierDemand adds the array's per-node footprint to its bound tier
// class's demand: partition bytes for co-located arrays, an even spread
// for interleaved ones, node 0 for centralized. No-op when untiered.
func (a *Array[T]) GrowTierDemand() *Array[T] {
	switch {
	case a.tier == nil:
	case a.place == CoLocated:
		for p := 0; p < a.m.Nodes; p++ {
			a.tier.GrowDemand(p, a.elemBytes*int64(a.bounds[p+1]-a.bounds[p]))
		}
	case a.place == Centralized:
		a.tier.GrowDemand(0, a.Bytes())
	default:
		a.tier.GrowDemandEven(a.Bytes())
	}
	return a
}

// NodeOf returns the simulated node owning index i. Out-of-range indices
// clamp to the nearest partition, so speculative probes near array edges
// stay charge-safe.
func (a *Array[T]) NodeOf(i int) int {
	if i < 0 {
		i = 0
	} else if i >= len(a.Data) {
		i = len(a.Data) - 1
		if i < 0 {
			return 0
		}
	}
	switch a.place {
	case Centralized:
		return 0
	case Interleaved:
		// Page-granular striping; 4 KiB pages.
		page := int64(i) * a.elemBytes >> 12
		return int(page % int64(a.m.Nodes))
	default:
		// Binary search over partition bounds.
		lo, hi := 0, a.m.Nodes
		for lo < hi {
			mid := (lo + hi) / 2
			if a.bounds[mid+1] <= i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
}

// Part returns the slice of Data owned by node p (only valid for
// CoLocated arrays).
func (a *Array[T]) Part(p int) []T {
	if a.place != CoLocated {
		panic("mem: Part requires co-located placement")
	}
	return a.Data[a.bounds[p]:a.bounds[p+1]]
}

// PartRange returns the index range owned by node p.
func (a *Array[T]) PartRange(p int) (lo, hi int) {
	if a.place != CoLocated {
		panic("mem: PartRange requires co-located placement")
	}
	return a.bounds[p], a.bounds[p+1]
}

// ChargeSeq records a sequential scan of count elements in partition-order
// starting conceptually at index lo by thread th. For co-located arrays the
// traffic is charged against the owning node(s); for interleaved and
// centralized arrays against the corresponding policy. The range is
// clamped to [0, Len()), so out-of-range descriptors charge only the
// overlapping part. On a tiered array the co-located path splits each
// partition's segment at its DRAM-resident boundary — the prefix charges
// DRAM, the tail the slow tier — so a range straddling the tier boundary
// charges each side exactly once.
func (a *Array[T]) ChargeSeq(e *numa.Epoch, th int, op numa.Op, lo, count int64) {
	if n := int64(len(a.Data)); true {
		if lo < 0 {
			count += lo
			lo = 0
		}
		if lo > n {
			lo = n
		}
		if count > n-lo {
			count = n - lo
		}
	}
	if count <= 0 {
		return
	}
	switch a.place {
	case Interleaved:
		a.tier.AccessInterleaved(e, th, numa.Seq, op, count, int(a.elemBytes), 0)
	case Centralized:
		a.tier.Access(e, th, numa.Seq, op, 0, count, int(a.elemBytes), 0)
	default:
		// Split [lo, lo+count) across partition bounds.
		if a.tier != nil {
			a.tier.record(th, count*a.elemBytes)
		}
		rem := count
		i := int(lo)
		for rem > 0 {
			p := a.NodeOf(i)
			end := a.bounds[p+1]
			take := int64(end - i)
			if take > rem {
				take = rem
			}
			// DRAM-resident prefix of the partition, slow-tier tail.
			b0, b1 := a.bounds[p], end
			boundary := b0 + int(a.tier.DRAMFrac(p)*float64(b1-b0))
			dram := int64(boundary - i)
			if dram < 0 {
				dram = 0
			} else if dram > take {
				dram = take
			}
			e.Access(th, numa.Seq, op, p, dram, int(a.elemBytes), 0)
			e.AccessSlow(th, numa.Seq, op, p, take-dram, int(a.elemBytes), 0)
			i += int(take)
			rem -= take
		}
	}
}

// ChargeRandLocal records count random accesses by thread th confined to
// node p's partition (e.g. Polymer's local random writes). ws defaults to
// the partition's byte size. An out-of-range p clamps to the nearest
// node.
func (a *Array[T]) ChargeRandLocal(e *numa.Epoch, th int, op numa.Op, p int, count int64) {
	if count <= 0 {
		return
	}
	if p < 0 {
		p = 0
	} else if p >= a.m.Nodes {
		p = a.m.Nodes - 1
	}
	ws := a.Bytes()
	if a.place == CoLocated {
		ws = a.elemBytes * int64(a.bounds[p+1]-a.bounds[p])
	}
	a.tier.Access(e, th, numa.Rand, op, p, count, int(a.elemBytes), ws)
}

// ChargeRandGlobal records count random accesses by thread th spread over
// the whole array (e.g. Ligra's push-mode scattered writes).
func (a *Array[T]) ChargeRandGlobal(e *numa.Epoch, th int, op numa.Op, count int64) {
	if count <= 0 {
		return
	}
	switch a.place {
	case Centralized:
		a.tier.Access(e, th, numa.Rand, op, 0, count, int(a.elemBytes), a.Bytes())
	default:
		// Both interleaved pages and co-located partitions look uniformly
		// spread to a globally-random access stream.
		a.tier.AccessInterleaved(e, th, numa.Rand, op, count, int(a.elemBytes), a.Bytes())
	}
}

// Free releases the simulated allocation. Double-free is a no-op.
func (a *Array[T]) Free() {
	if a.freed {
		return
	}
	a.freed = true
	a.m.Alloc().Release(a.label, a.Bytes())
}
