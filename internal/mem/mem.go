// Package mem provides partitioned, placement-aware arrays for the
// simulated NUMA machine.
//
// An Array is a contiguous Go slice plus a placement descriptor recording
// which simulated memory node owns each index range. Engines use the
// descriptor both to schedule computation (co-locating threads with their
// partition) and to classify accesses when charging the numa.Epoch ledger.
// The three placements mirror the paper's Table 1:
//
//   - CoLocated: each partition's pages live on its owning node (Polymer's
//     allocation strategy — worker threads on node i allocate partition i);
//   - Interleaved: pages are striped across all nodes (what first-touch by
//     construction-stage threads degenerates to in NUMA-oblivious systems);
//   - Centralized: all pages live on node 0 (main-thread allocation of
//     short-term runtime state in existing systems).
package mem

import (
	"fmt"
	"strings"
	"unsafe"

	"polymer/internal/numa"
)

// Placement describes how an array's physical pages are distributed.
type Placement uint8

const (
	// CoLocated places each partition on its owning node.
	CoLocated Placement = iota
	// Interleaved stripes pages round-robin across all nodes.
	Interleaved
	// Centralized places everything on node 0.
	Centralized
)

// String names the placement as in the paper's Table 1.
func (p Placement) String() string {
	switch p {
	case CoLocated:
		return "co-located"
	case Interleaved:
		return "interleaved"
	default:
		return "centralized"
	}
}

// Placements lists the three policies in Table 1 order.
func Placements() []Placement {
	return []Placement{CoLocated, Interleaved, Centralized}
}

// ParsePlacement maps a wire/CLI spelling to a Placement. Accepted forms
// are the String() names plus common aliases ("colocated", "local",
// "central"); matching is case-insensitive.
func ParsePlacement(s string) (Placement, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "co-located", "colocated", "co_located", "local":
		return CoLocated, nil
	case "interleaved", "interleave":
		return Interleaved, nil
	case "centralized", "centralised", "central":
		return Centralized, nil
	}
	return CoLocated, fmt.Errorf("mem: unknown placement %q (want co-located, interleaved or centralized)", s)
}

// Array is a placement-aware array of T.
type Array[T any] struct {
	// Data is the backing storage; index it directly in hot loops.
	Data []T

	m         *numa.Machine
	place     Placement
	bounds    []int // len Nodes+1 when CoLocated; nil otherwise
	label     string
	elemBytes int64
	freed     bool
}

// New allocates an n-element array with the given placement. For CoLocated
// placement, bounds must hold Nodes+1 monotonically non-decreasing offsets
// with bounds[0] == 0 and bounds[Nodes] == n (partition p owns
// [bounds[p], bounds[p+1])). For other placements bounds must be nil.
// The allocation is registered with the machine's tracker under label.
func New[T any](m *numa.Machine, label string, n int, place Placement, bounds []int) *Array[T] {
	if place == CoLocated {
		if len(bounds) != m.Nodes+1 {
			panic(fmt.Sprintf("mem: co-located array needs %d bounds, got %d", m.Nodes+1, len(bounds)))
		}
		if bounds[0] != 0 || bounds[m.Nodes] != n {
			panic("mem: bounds must cover [0, n)")
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				panic("mem: bounds must be non-decreasing")
			}
		}
	} else if bounds != nil {
		panic("mem: bounds are only valid for co-located placement")
	}
	var zero T
	a := &Array[T]{
		Data:      make([]T, n),
		m:         m,
		place:     place,
		bounds:    bounds,
		label:     label,
		elemBytes: int64(unsafe.Sizeof(zero)),
	}
	if err := m.Alloc().Grow(label, a.Bytes()); err != nil {
		// Simulated allocation failure (fault injection): surface it as a
		// panic so it propagates through construction code; the resilience
		// harness (fault.Catch) recovers it into an error.
		panic(err)
	}
	return a
}

// Len returns the element count.
func (a *Array[T]) Len() int { return len(a.Data) }

// Bytes returns the simulated footprint in bytes.
func (a *Array[T]) Bytes() int64 { return a.elemBytes * int64(len(a.Data)) }

// ElemBytes returns the element size in bytes.
func (a *Array[T]) ElemBytes() int { return int(a.elemBytes) }

// Placement returns the array's placement policy.
func (a *Array[T]) Placement() Placement { return a.place }

// Label returns the allocation label.
func (a *Array[T]) Label() string { return a.label }

// NodeOf returns the simulated node owning index i.
func (a *Array[T]) NodeOf(i int) int {
	switch a.place {
	case Centralized:
		return 0
	case Interleaved:
		// Page-granular striping; 4 KiB pages.
		page := int64(i) * a.elemBytes >> 12
		return int(page % int64(a.m.Nodes))
	default:
		// Binary search over partition bounds.
		lo, hi := 0, a.m.Nodes
		for lo < hi {
			mid := (lo + hi) / 2
			if a.bounds[mid+1] <= i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
}

// Part returns the slice of Data owned by node p (only valid for
// CoLocated arrays).
func (a *Array[T]) Part(p int) []T {
	if a.place != CoLocated {
		panic("mem: Part requires co-located placement")
	}
	return a.Data[a.bounds[p]:a.bounds[p+1]]
}

// PartRange returns the index range owned by node p.
func (a *Array[T]) PartRange(p int) (lo, hi int) {
	if a.place != CoLocated {
		panic("mem: PartRange requires co-located placement")
	}
	return a.bounds[p], a.bounds[p+1]
}

// ChargeSeq records a sequential scan of count elements in partition-order
// starting conceptually at index lo by thread th. For co-located arrays the
// traffic is charged against the owning node(s); for interleaved and
// centralized arrays against the corresponding policy.
func (a *Array[T]) ChargeSeq(e *numa.Epoch, th int, op numa.Op, lo, count int64) {
	if count <= 0 {
		return
	}
	switch a.place {
	case Interleaved:
		e.AccessInterleaved(th, numa.Seq, op, count, int(a.elemBytes), 0)
	case Centralized:
		e.Access(th, numa.Seq, op, 0, count, int(a.elemBytes), 0)
	default:
		// Split [lo, lo+count) across partition bounds.
		rem := count
		i := int(lo)
		for rem > 0 {
			p := a.NodeOf(i)
			end := a.bounds[p+1]
			take := int64(end - i)
			if take > rem {
				take = rem
			}
			e.Access(th, numa.Seq, op, p, take, int(a.elemBytes), 0)
			i += int(take)
			rem -= take
		}
	}
}

// ChargeRandLocal records count random accesses by thread th confined to
// node p's partition (e.g. Polymer's local random writes). ws defaults to
// the partition's byte size.
func (a *Array[T]) ChargeRandLocal(e *numa.Epoch, th int, op numa.Op, p int, count int64) {
	if count <= 0 {
		return
	}
	ws := a.Bytes()
	if a.place == CoLocated {
		ws = a.elemBytes * int64(a.bounds[p+1]-a.bounds[p])
	}
	e.Access(th, numa.Rand, op, p, count, int(a.elemBytes), ws)
}

// ChargeRandGlobal records count random accesses by thread th spread over
// the whole array (e.g. Ligra's push-mode scattered writes).
func (a *Array[T]) ChargeRandGlobal(e *numa.Epoch, th int, op numa.Op, count int64) {
	if count <= 0 {
		return
	}
	switch a.place {
	case Centralized:
		e.Access(th, numa.Rand, op, 0, count, int(a.elemBytes), a.Bytes())
	default:
		// Both interleaved pages and co-located partitions look uniformly
		// spread to a globally-random access stream.
		e.AccessInterleaved(th, numa.Rand, op, count, int(a.elemBytes), a.Bytes())
	}
}

// Free releases the simulated allocation. Double-free is a no-op.
func (a *Array[T]) Free() {
	if a.freed {
		return
	}
	a.freed = true
	a.m.Alloc().Release(a.label, a.Bytes())
}
