package mem

import (
	"testing"
	"testing/quick"

	"polymer/internal/numa"
)

func testMachine() *numa.Machine {
	return numa.NewMachine(numa.IntelXeon80(), 4, 2)
}

func TestNewRegistersAllocation(t *testing.T) {
	m := testMachine()
	a := New[float64](m, "data", 1000, Interleaved, nil)
	if got := m.Alloc().Label("data"); got != 8000 {
		t.Fatalf("tracked %d bytes, want 8000", got)
	}
	a.Free()
	if got := m.Alloc().Label("data"); got != 0 {
		t.Fatalf("after free: %d bytes", got)
	}
	a.Free() // double free is a no-op
	if got := m.Alloc().Current(); got != 0 {
		t.Fatalf("double free corrupted tracker: %d", got)
	}
}

func TestCoLocatedNodeOf(t *testing.T) {
	m := testMachine()
	bounds := []int{0, 10, 30, 60, 100}
	a := New[int64](m, "x", 100, CoLocated, bounds)
	cases := map[int]int{0: 0, 9: 0, 10: 1, 29: 1, 30: 2, 59: 2, 60: 3, 99: 3}
	for i, want := range cases {
		if got := a.NodeOf(i); got != want {
			t.Fatalf("NodeOf(%d) = %d, want %d", i, got, want)
		}
	}
	lo, hi := a.PartRange(2)
	if lo != 30 || hi != 60 {
		t.Fatalf("PartRange(2) = [%d,%d)", lo, hi)
	}
	if len(a.Part(1)) != 20 {
		t.Fatalf("Part(1) len = %d", len(a.Part(1)))
	}
}

func TestCoLocatedNodeOfProperty(t *testing.T) {
	m := testMachine()
	bounds := []int{0, 25, 50, 75, 100}
	a := New[float64](m, "p", 100, CoLocated, bounds)
	f := func(i uint8) bool {
		idx := int(i) % 100
		p := a.NodeOf(idx)
		return idx >= bounds[p] && idx < bounds[p+1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedNodeOfStripes(t *testing.T) {
	m := testMachine()
	a := New[float64](m, "il", 1<<16, Interleaved, nil)
	// 4 KiB pages of float64 = 512 elements per page.
	if a.NodeOf(0) != 0 || a.NodeOf(512) != 1 || a.NodeOf(1024) != 2 || a.NodeOf(2048) != 0 {
		t.Fatal("interleaved striping wrong")
	}
}

func TestCentralizedNodeOf(t *testing.T) {
	m := testMachine()
	a := New[uint32](m, "c", 100, Centralized, nil)
	for i := 0; i < 100; i += 17 {
		if a.NodeOf(i) != 0 {
			t.Fatal("centralized arrays live on node 0")
		}
	}
}

func TestNewPanicsOnBadBounds(t *testing.T) {
	m := testMachine()
	for _, bounds := range [][]int{
		nil,                  // missing bounds for co-located
		{0, 10, 20, 30},      // too few
		{1, 10, 20, 30, 100}, // doesn't start at 0
		{0, 10, 20, 30, 99},  // doesn't end at n
		{0, 30, 20, 40, 100}, // decreasing
	} {
		func() {
			defer func() { _ = recover() }()
			New[int](m, "bad", 100, CoLocated, bounds)
			t.Fatalf("bounds %v should panic", bounds)
		}()
	}
	func() {
		defer func() { _ = recover() }()
		New[int](m, "bad", 100, Interleaved, []int{0, 100})
		t.Fatal("bounds with interleaved placement should panic")
	}()
}

func TestChargeSeqSplitsAcrossPartitions(t *testing.T) {
	m := testMachine()
	bounds := []int{0, 100, 200, 300, 400}
	a := New[float64](m, "d", 400, CoLocated, bounds)
	e := m.NewEpoch()
	a.ChargeSeq(e, 0, numa.Load, 50, 200) // spans partitions 0,1,2
	s := e.Stats()
	if s.LocalCount+s.RemoteCount != 200 {
		t.Fatalf("charged %d accesses, want 200", s.LocalCount+s.RemoteCount)
	}
	// Thread 0 is on node 0: 50 local (50..100), 150 remote (100..250).
	if s.LocalCount != 50 || s.RemoteCount != 150 {
		t.Fatalf("local/remote = %d/%d, want 50/150", s.LocalCount, s.RemoteCount)
	}
}

func TestChargeRandLocalUsesPartitionWorkingSet(t *testing.T) {
	m := testMachine()
	// Whole array far exceeds LLC, single partition fits.
	n := 1 << 20
	bounds := []int{0, n / 4, n / 2, 3 * n / 4, n}
	co := New[float64](m, "co", n, CoLocated, bounds)
	il := New[float64](m, "il", n, Interleaved, nil)
	eCo, eIl := m.NewEpoch(), m.NewEpoch()
	co.ChargeRandLocal(eCo, 0, numa.Store, 0, 10000)
	il.ChargeRandGlobal(eIl, 0, numa.Store, 10000)
	if !(eCo.Time() < eIl.Time()) {
		t.Fatalf("partition-local random (%v) must beat global random (%v)", eCo.Time(), eIl.Time())
	}
}

func TestChargeZeroCountsNoop(t *testing.T) {
	m := testMachine()
	a := New[float64](m, "z", 100, Centralized, nil)
	e := m.NewEpoch()
	a.ChargeSeq(e, 0, numa.Load, 0, 0)
	a.ChargeRandGlobal(e, 0, numa.Load, 0)
	a.ChargeRandLocal(e, 0, numa.Load, 0, 0)
	if e.Time() != 0 {
		t.Fatal("zero-count charges must not advance time")
	}
}

func TestPlacementString(t *testing.T) {
	if CoLocated.String() != "co-located" || Interleaved.String() != "interleaved" || Centralized.String() != "centralized" {
		t.Fatal("Placement.String mismatch")
	}
}

func TestPartPanicsOnNonCoLocated(t *testing.T) {
	m := testMachine()
	a := New[int](m, "i", 10, Interleaved, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Part on interleaved array must panic")
		}
	}()
	a.Part(0)
}
