package gen

import (
	"strconv"

	"polymer/internal/graph"
)

// Named is an adversarial graph shape used by the conformance harness:
// a corner-case topology that stresses engine edge handling (empty
// inputs, self-loops, duplicate edges, extreme skew, disconnection, and
// sizes straddling the 64-bit bitmap-word and power-of-two partition
// boundaries).
type Named struct {
	Name  string
	N     int
	Edges []graph.Edge
}

// Adversarial returns the conformance corpus of corner-case graphs. The
// set is deterministic: no seeds, no randomness, so a failure names a
// reproducible shape.
func Adversarial() []Named {
	var out []Named
	add := func(name string, n int, edges []graph.Edge) {
		out = append(out, Named{Name: name, N: n, Edges: edges})
	}

	add("empty", 0, nil)
	add("single-vertex", 1, nil)
	add("single-self-loop", 1, []graph.Edge{{Src: 0, Dst: 0}})

	// Every vertex loops onto itself: each rank/label update sources and
	// targets the same slot, the tightest aliasing an edge kernel sees.
	nl := 9
	loops := make([]graph.Edge, nl)
	for v := 0; v < nl; v++ {
		loops[v] = graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex(v)}
	}
	add("all-self-loops", nl, loops)

	// The same edge repeated: multigraph semantics must match between
	// CSR-driven engines and the edge-streaming one.
	add("duplicate-edges", 3, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 2},
	})

	// Degree skew in both directions: one source fanning out, and one
	// sink absorbing every edge (the transpose).
	ns := 33
	star := make([]graph.Edge, 0, ns-1)
	rstar := make([]graph.Edge, 0, ns-1)
	for v := 1; v < ns; v++ {
		star = append(star, graph.Edge{Src: 0, Dst: graph.Vertex(v)})
		rstar = append(rstar, graph.Edge{Src: graph.Vertex(v), Dst: 0})
	}
	add("star-out", ns, star)
	add("star-in", ns, rstar)

	// High diameter: frontier of size one for n-1 supersteps.
	np, path := Chain(17)
	add("path", np, path)

	// Two components plus isolated vertices: unreachable-vertex handling
	// (-1 levels, +Inf distances, per-component CC labels).
	var disc []graph.Edge
	for v := 0; v+1 < 5; v++ {
		disc = append(disc, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex(v + 1)})
	}
	for v := 8; v+1 < 12; v++ {
		disc = append(disc, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex(v + 1)})
	}
	add("disconnected", 15, disc) // vertices 5..7 and 12..14 isolated

	// Sizes straddling the 64-bit bitmap word boundary and a power of
	// two: off-by-one bugs in dense-subset tails live exactly here.
	for _, n := range []int{63, 64, 65, 127, 128, 129} {
		cn, cyc := Cycle(n)
		add("cycle-"+strconv.Itoa(n), cn, cyc)
	}
	return out
}
