// Package gen provides deterministic synthetic graph generators matching
// the properties of the paper's evaluation datasets (Table 2): a Zipf
// power-law "twitter-like" follower graph, Graph500 R-MAT graphs, a
// PowerGraph-style power-law graph with constant alpha = 2.0, and a
// high-diameter road network. All generators are seeded and reproducible.
package gen

// RNG is a small, fast, deterministic generator (splitmix64). The standard
// library's math/rand would also work, but a self-contained generator
// guarantees byte-identical graphs across Go releases, which the benchmark
// harness relies on.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
