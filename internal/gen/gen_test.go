package gen

import (
	"sort"
	"testing"
	"testing/quick"

	"polymer/internal/graph"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds should differ")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d distinct values out of 10", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestRMATProperties(t *testing.T) {
	n, edges := RMAT(10, 16, 1)
	if n != 1024 {
		t.Fatalf("n = %d, want 1024", n)
	}
	if len(edges) != 16*1024 {
		t.Fatalf("m = %d, want %d", len(edges), 16*1024)
	}
	g := graph.FromEdges(n, edges, false)
	// R-MAT graphs are heavily skewed: the max degree should far exceed
	// the average degree of 16.
	if g.MaxOutDegree() < 64 {
		t.Fatalf("R-MAT max degree %d suspiciously low", g.MaxOutDegree())
	}
	// Determinism.
	_, edges2 := RMAT(10, 16, 1)
	for i := range edges {
		if edges[i] != edges2[i] {
			t.Fatal("RMAT must be deterministic for a fixed seed")
		}
	}
}

func TestPowerlawDegreeDistribution(t *testing.T) {
	n, edges := Powerlaw(20000, 10, 2.0, 3)
	g := graph.FromEdges(n, edges, false)
	avg := float64(len(edges)) / float64(n)
	if avg < 7 || avg > 13 {
		t.Fatalf("average degree %.2f, want ~10", avg)
	}
	// Skew check: top 1% of vertices should hold a disproportionate share
	// of edges (>10% for alpha=2).
	degs := make([]int64, n)
	for v := 0; v < n; v++ {
		degs[v] = g.OutDegree(graph.Vertex(v))
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i] > degs[j] })
	var top int64
	for _, d := range degs[:n/100] {
		top += d
	}
	if share := float64(top) / float64(len(edges)); share < 0.10 {
		t.Fatalf("top-1%% share %.3f, want >= 0.10 (distribution not skewed)", share)
	}
}

func TestPowerlawNoSelfLoops(t *testing.T) {
	_, edges := Powerlaw(500, 8, 2.0, 9)
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatal("powerlaw generator must not emit self-loops")
		}
	}
}

func TestRoadGridDiameterAndSymmetry(t *testing.T) {
	n, edges := RoadGrid(20, 20, 5)
	if n != 400 {
		t.Fatalf("n = %d", n)
	}
	g := graph.FromEdges(n, edges, true)
	// Undirected: in-degree equals out-degree everywhere.
	for v := 0; v < n; v++ {
		if g.InDegree(graph.Vertex(v)) != g.OutDegree(graph.Vertex(v)) {
			t.Fatalf("vertex %d degree asymmetric", v)
		}
	}
	// BFS from corner 0: eccentricity must be ~rows+cols (high diameter).
	dist := bfsDist(g, 0)
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	if max < 20 {
		t.Fatalf("grid eccentricity %d too small for a road-network stand-in", max)
	}
	// Connected.
	for v, d := range dist {
		if d < 0 {
			t.Fatalf("vertex %d unreachable", v)
		}
	}
	// Positive weights in (0,100].
	for _, e := range edges {
		if e.Wt <= 0 || e.Wt > 100 {
			t.Fatalf("weight %v out of (0,100]", e.Wt)
		}
	}
}

func bfsDist(g *graph.Graph, src graph.Vertex) []int {
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.OutNeighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

func TestUniform(t *testing.T) {
	n, edges := Uniform(100, 1000, 11)
	if n != 100 || len(edges) != 1000 {
		t.Fatal("uniform size wrong")
	}
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			t.Fatal("edge endpoint out of range")
		}
	}
}

func TestAddRandomWeights(t *testing.T) {
	_, edges := Chain(50)
	AddRandomWeights(edges, 1)
	for _, e := range edges {
		if e.Wt <= 0 || e.Wt > 100 {
			t.Fatalf("weight %v out of (0,100]", e.Wt)
		}
	}
}

func TestFixtures(t *testing.T) {
	n, edges := Chain(5)
	if n != 5 || len(edges) != 4 {
		t.Fatal("chain wrong")
	}
	n, edges = Star(6)
	if n != 6 || len(edges) != 5 {
		t.Fatal("star wrong")
	}
	for _, e := range edges {
		if e.Src != 0 {
			t.Fatal("star edges must originate at 0")
		}
	}
	n, edges = Cycle(4)
	if n != 4 || len(edges) != 4 {
		t.Fatal("cycle wrong")
	}
	g := graph.FromEdges(n, edges, false)
	for v := 0; v < 4; v++ {
		if g.OutDegree(graph.Vertex(v)) != 1 || g.InDegree(graph.Vertex(v)) != 1 {
			t.Fatal("cycle degrees must all be 1")
		}
	}
}

func TestZipfSampleBounds(t *testing.T) {
	rng := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := zipfSample(rng, 2.0, 100)
		if v < 1 || v > 100 {
			t.Fatalf("zipf sample %v out of [1,100]", v)
		}
	}
}

func TestLoadAllDatasets(t *testing.T) {
	for _, d := range Datasets() {
		g, err := Load(d, Tiny, false)
		if err != nil {
			t.Fatalf("Load(%s): %v", d, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", d)
		}
		if d == RoadUS && !g.Weighted() {
			t.Fatal("roadUS must always be weighted")
		}
	}
	if _, err := Load("nope", Tiny, false); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestLoadWeightedRequest(t *testing.T) {
	g, err := Load(Twitter, Tiny, true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("weighted load must produce weights")
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, _ := Load(RMat24, Tiny, false)
	b, _ := Load(RMat24, Tiny, false)
	if a.NumEdges() != b.NumEdges() || a.NumVertices() != b.NumVertices() {
		t.Fatal("Load must be deterministic")
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.OutNeighbors(graph.Vertex(v)), b.OutNeighbors(graph.Vertex(v))
		if len(na) != len(nb) {
			t.Fatal("Load must be deterministic")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("Load must be deterministic")
			}
		}
	}
}

func TestDatasetScalesMonotone(t *testing.T) {
	for _, d := range []Dataset{Twitter, RoadUS} {
		tiny, _ := Load(d, Tiny, false)
		small, _ := Load(d, Small, false)
		if !(tiny.NumEdges() < small.NumEdges()) {
			t.Fatalf("%s: scales must grow (tiny %d vs small %d)", d, tiny.NumEdges(), small.NumEdges())
		}
	}
}
