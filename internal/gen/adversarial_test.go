package gen

import (
	"testing"

	"polymer/internal/graph"
)

func TestAdversarialShapes(t *testing.T) {
	shapes := Adversarial()
	if len(shapes) < 10 {
		t.Fatalf("corpus too small: %d shapes", len(shapes))
	}
	seen := map[string]bool{}
	for _, s := range shapes {
		if seen[s.Name] {
			t.Fatalf("duplicate shape name %q", s.Name)
		}
		seen[s.Name] = true
		for _, e := range s.Edges {
			if int(e.Src) >= s.N || int(e.Dst) >= s.N {
				t.Fatalf("%s: edge (%d,%d) outside [0,%d)", s.Name, e.Src, e.Dst, s.N)
			}
		}
		// Every shape must build a CSR without panicking, in both the
		// plain and symmetrized forms the engines consume.
		g := graph.FromEdges(s.N, s.Edges, false)
		if g.NumVertices() != s.N || g.NumEdges() != int64(len(s.Edges)) {
			t.Fatalf("%s: CSR mismatch %d/%d vertices, %d/%d edges",
				s.Name, g.NumVertices(), s.N, g.NumEdges(), len(s.Edges))
		}
		g.Symmetrized()
	}
	for _, want := range []string{"empty", "single-self-loop", "duplicate-edges", "disconnected", "cycle-64", "cycle-129"} {
		if !seen[want] {
			t.Fatalf("missing shape %q", want)
		}
	}
}

func TestAdversarialDeterministic(t *testing.T) {
	a, b := Adversarial(), Adversarial()
	if len(a) != len(b) {
		t.Fatal("non-deterministic corpus size")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].N != b[i].N || len(a[i].Edges) != len(b[i].Edges) {
			t.Fatalf("shape %d differs between calls", i)
		}
		for j := range a[i].Edges {
			if a[i].Edges[j] != b[i].Edges[j] {
				t.Fatalf("%s: edge %d differs between calls", a[i].Name, j)
			}
		}
	}
}
