package gen

import (
	"fmt"

	"polymer/internal/graph"
)

// Scale selects the size of the named datasets. The ratios between
// datasets follow the paper's Table 2.
type Scale int

const (
	// Tiny is for unit tests (thousands of edges).
	Tiny Scale = iota
	// Small is for quick experiments (hundreds of thousands of edges).
	Small
	// Default is the laptop-scale evaluation size (millions of edges).
	Default
)

// Dataset names one of the paper's five inputs.
type Dataset string

// The five evaluation inputs from the paper's Table 2.
const (
	Twitter  Dataset = "twitter"
	RMat24   Dataset = "rmat24"
	RMat27   Dataset = "rmat27"
	PowerLaw Dataset = "powerlaw"
	RoadUS   Dataset = "roadUS"
)

// Datasets lists all five inputs in the paper's Table 2/3 order.
func Datasets() []Dataset {
	return []Dataset{Twitter, RMat24, RMat27, PowerLaw, RoadUS}
}

// Load generates the named dataset at the given scale, optionally
// weighting it (SpMV/SSSP inputs). roadUS is always weighted, as in the
// paper. The same (name, scale) pair always yields the same graph.
func Load(name Dataset, sc Scale, weighted bool) (*graph.Graph, error) {
	var (
		n     int
		edges []graph.Edge
	)
	switch name {
	case Twitter:
		sizes := map[Scale]int{Tiny: 600, Small: 20_000, Default: 120_000}
		n, edges = TwitterLike(sizes[sc], 0x7717)
	case RMat24:
		scales := map[Scale]int{Tiny: 9, Small: 13, Default: 16}
		n, edges = RMAT(scales[sc], 16, 0x24)
	case RMat27:
		scales := map[Scale]int{Tiny: 10, Small: 14, Default: 18}
		n, edges = RMAT(scales[sc], 16, 0x27)
	case PowerLaw:
		sizes := map[Scale]int{Tiny: 500, Small: 16_000, Default: 100_000}
		n, edges = Powerlaw(sizes[sc], 10.5, 2.0, 0x20)
	case RoadUS:
		sides := map[Scale]int{Tiny: 24, Small: 120, Default: 300}
		side := sides[sc]
		n, edges = RoadGrid(side, side, 0x0AD)
		weighted = true
	default:
		return nil, fmt.Errorf("gen: unknown dataset %q", name)
	}
	if weighted && name != RoadUS {
		AddRandomWeights(edges, uint64(len(edges)))
	}
	return graph.FromEdges(n, edges, weighted), nil
}
