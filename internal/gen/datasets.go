package gen

import (
	"fmt"

	"polymer/internal/graph"
)

// Scale selects the size of the named datasets. The ratios between
// datasets follow the paper's Table 2.
type Scale int

const (
	// Tiny is for unit tests (thousands of edges).
	Tiny Scale = iota
	// Small is for quick experiments (hundreds of thousands of edges).
	Small
	// Default is the laptop-scale evaluation size (millions of edges).
	Default
	// Huge is 4x Default (tens of millions of edges) — the cluster
	// sweep size, sharded across >=4 simulated machines rather than run
	// on one.
	Huge
)

// Dataset names one of the paper's five inputs.
type Dataset string

// The five evaluation inputs from the paper's Table 2.
const (
	Twitter  Dataset = "twitter"
	RMat24   Dataset = "rmat24"
	RMat27   Dataset = "rmat27"
	PowerLaw Dataset = "powerlaw"
	RoadUS   Dataset = "roadUS"
)

// Datasets lists all five inputs in the paper's Table 2/3 order.
func Datasets() []Dataset {
	return []Dataset{Twitter, RMat24, RMat27, PowerLaw, RoadUS}
}

// Per-dataset size tables, shared by Load and NumVertices so the two can
// never disagree on a dataset's vertex count.
var (
	twitterSizes = map[Scale]int{Tiny: 600, Small: 20_000, Default: 120_000, Huge: 480_000}
	rmat24Scales = map[Scale]int{Tiny: 9, Small: 13, Default: 16, Huge: 18}
	rmat27Scales = map[Scale]int{Tiny: 10, Small: 14, Default: 18, Huge: 20}
	powerSizes   = map[Scale]int{Tiny: 500, Small: 16_000, Default: 100_000, Huge: 400_000}
	roadSides    = map[Scale]int{Tiny: 24, Small: 120, Default: 300, Huge: 600}
)

// NumVertices reports the vertex count of (name, sc) without generating
// any edges: mutation validation bounds-checks incoming edge endpoints
// against it before paying for a graph build.
func NumVertices(name Dataset, sc Scale) (int, error) {
	switch name {
	case Twitter:
		return twitterSizes[sc], nil
	case RMat24:
		return 1 << rmat24Scales[sc], nil
	case RMat27:
		return 1 << rmat27Scales[sc], nil
	case PowerLaw:
		return powerSizes[sc], nil
	case RoadUS:
		return roadSides[sc] * roadSides[sc], nil
	}
	return 0, fmt.Errorf("gen: unknown dataset %q", name)
}

// Load generates the named dataset at the given scale, optionally
// weighting it (SpMV/SSSP inputs). roadUS is always weighted, as in the
// paper. The same (name, scale) pair always yields the same graph.
func Load(name Dataset, sc Scale, weighted bool) (*graph.Graph, error) {
	var (
		n     int
		edges []graph.Edge
	)
	switch name {
	case Twitter:
		n, edges = TwitterLike(twitterSizes[sc], 0x7717)
	case RMat24:
		n, edges = RMAT(rmat24Scales[sc], 16, 0x24)
	case RMat27:
		n, edges = RMAT(rmat27Scales[sc], 16, 0x27)
	case PowerLaw:
		n, edges = Powerlaw(powerSizes[sc], 10.5, 2.0, 0x20)
	case RoadUS:
		side := roadSides[sc]
		n, edges = RoadGrid(side, side, 0x0AD)
		weighted = true
	default:
		return nil, fmt.Errorf("gen: unknown dataset %q", name)
	}
	if weighted && name != RoadUS {
		AddRandomWeights(edges, uint64(len(edges)))
	}
	return graph.FromEdges(n, edges, weighted), nil
}
