package gen

import "testing"

func BenchmarkRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(14, 16, uint64(i))
	}
}

func BenchmarkTwitterLike(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TwitterLike(20000, uint64(i))
	}
}

func BenchmarkRoadGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RoadGrid(120, 120, uint64(i))
	}
}
