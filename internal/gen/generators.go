package gen

import (
	"math"
	"sort"

	"polymer/internal/graph"
)

// RMAT generates an R-MAT graph with 2^scale vertices and edgeFactor
// edges per vertex, using the Graph500 partition probabilities
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) as the paper does for rMat24/rMat27.
func RMAT(scale int, edgeFactor int, seed uint64) (int, []graph.Edge) {
	const a, b, c = 0.57, 0.19, 0.19
	n := 1 << scale
	m := n * edgeFactor
	rng := NewRNG(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		var src, dst int
		for bit := scale - 1; bit >= 0; bit-- {
			p := rng.Float64()
			switch {
			case p < a:
				// top-left: no bits set
			case p < a+b:
				dst |= 1 << bit
			case p < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges[i] = graph.Edge{Src: graph.Vertex(src), Dst: graph.Vertex(dst)}
	}
	return n, edges
}

// Powerlaw generates a directed graph whose out-degrees follow a Zipf
// distribution with the given power-law constant alpha, as produced by the
// PowerGraph tools the paper uses ("randomly sample the degree of each
// vertex from a Zipf distribution and then add edges"). The realised edge
// count is approximately n * avgDegree.
func Powerlaw(n int, avgDegree float64, alpha float64, seed uint64) (int, []graph.Edge) {
	if n <= 1 {
		panic("gen: Powerlaw needs n > 1")
	}
	rng := NewRNG(seed)
	// Sample raw Zipf ranks, then rescale so the mean matches avgDegree.
	// The tail is capped at n/64 so the max degree stays small relative to
	// a per-socket partition, matching the ratio at the paper's scale
	// (twitter's max degree is a tiny fraction of |E|/8).
	maxDeg := n / 64
	if maxDeg < int(avgDegree)+1 {
		maxDeg = int(avgDegree) + 1
	}
	if maxDeg > n-1 {
		maxDeg = n - 1
	}
	raw := make([]float64, n)
	var sum float64
	for v := range raw {
		raw[v] = zipfSample(rng, alpha, maxDeg)
		sum += raw[v]
	}
	scale := avgDegree * float64(n) / sum
	edges := make([]graph.Edge, 0, int(avgDegree*float64(n))+n)
	for v := 0; v < n; v++ {
		deg := int(raw[v]*scale + rng.Float64()) // stochastic rounding
		if deg > maxDeg {
			deg = maxDeg
		}
		for k := 0; k < deg; k++ {
			u := rng.Intn(n - 1)
			if u >= v {
				u++ // avoid self-loop
			}
			edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex(u)})
		}
	}
	return n, edges
}

// zipfSample draws from P(k) proportional to k^-alpha on [1, max] by
// inverse-CDF approximation (continuous Pareto truncated to the range).
func zipfSample(rng *RNG, alpha float64, max int) float64 {
	// For alpha != 1: inverse of the truncated Pareto CDF.
	u := rng.Float64()
	a1 := 1 - alpha
	hi := math.Pow(float64(max), a1)
	x := math.Pow(u*(hi-1)+1, 1/a1)
	if x < 1 {
		x = 1
	}
	if x > float64(max) {
		x = float64(max)
	}
	return x
}

// TwitterLike generates a scaled stand-in for the twitter follower graph:
// follower counts (in-degrees) follow a Zipf distribution with constant
// near 2.0 and are correlated with vertex id — early accounts in the
// crawl order have the most followers, which is what makes equal-vertex
// partitions badly edge-imbalanced in the paper's Figure 11(a). Density
// matches the follower graph (|E|/|V| around 35).
func TwitterLike(n int, seed uint64) (int, []graph.Edge) {
	if n <= 1 {
		panic("gen: TwitterLike needs n > 1")
	}
	rng := NewRNG(seed)
	const avgDegree = 35.0
	maxDeg := n / 16
	if maxDeg < 64 {
		maxDeg = 64
	}
	raw := make([]float64, n)
	var sum float64
	for v := range raw {
		raw[v] = zipfSample(rng, 2.0, maxDeg)
		sum += raw[v]
	}
	// Crawl-order correlation: the largest follower counts go to the
	// smallest vertex ids.
	sort.Sort(sort.Reverse(sort.Float64Slice(raw)))
	scale := avgDegree * float64(n) / sum
	edges := make([]graph.Edge, 0, int(avgDegree*float64(n))+n)
	for v := 0; v < n; v++ {
		deg := int(raw[v]*scale + rng.Float64())
		if deg > n-1 {
			deg = n - 1
		}
		for k := 0; k < deg; k++ {
			u := rng.Intn(n - 1)
			if u >= v {
				u++
			}
			// u follows v: the edge points at the popular account.
			edges = append(edges, graph.Edge{Src: graph.Vertex(u), Dst: graph.Vertex(v)})
		}
	}
	return n, edges
}

// RoadGrid generates a high-diameter road-network stand-in: a rows x cols
// grid where each vertex connects to its right and down neighbours (both
// directions), with a small fraction of diagonal shortcuts mimicking
// highway links. Its diameter is ~(rows+cols), reproducing the extremely
// slow convergence the paper reports for roadUS (e.g. 6237 BFS
// iterations). Edge weights are uniform in (0, 100].
func RoadGrid(rows, cols int, seed uint64) (int, []graph.Edge) {
	rng := NewRNG(seed)
	n := rows * cols
	id := func(r, c int) graph.Vertex { return graph.Vertex(r*cols + c) }
	edges := make([]graph.Edge, 0, 4*n)
	addBoth := func(a, b graph.Vertex) {
		w := float32(rng.Float64()*99) + 1
		edges = append(edges, graph.Edge{Src: a, Dst: b, Wt: w}, graph.Edge{Src: b, Dst: a, Wt: w})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				addBoth(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				addBoth(id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols && rng.Float64() < 0.05 {
				addBoth(id(r, c), id(r+1, c+1))
			}
		}
	}
	return n, edges
}

// Uniform generates m edges with independently uniform endpoints.
func Uniform(n, m int, seed uint64) (int, []graph.Edge) {
	rng := NewRNG(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.Vertex(rng.Intn(n)), Dst: graph.Vertex(rng.Intn(n))}
	}
	return n, edges
}

// AddRandomWeights assigns each edge a uniform weight in (0, 100],
// matching the paper's weighting of inputs for SpMV and SSSP.
func AddRandomWeights(edges []graph.Edge, seed uint64) {
	rng := NewRNG(seed)
	for i := range edges {
		edges[i].Wt = float32(rng.Float64()*99) + 1
	}
}

// Chain returns a directed path 0 -> 1 -> ... -> n-1.
func Chain(n int) (int, []graph.Edge) {
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex(v + 1)})
	}
	return n, edges
}

// Star returns edges from vertex 0 to all others.
func Star(n int) (int, []graph.Edge) {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.Vertex(v)})
	}
	return n, edges
}

// Cycle returns the directed n-cycle.
func Cycle(n int) (int, []graph.Edge) {
	edges := make([]graph.Edge, n)
	for v := 0; v < n; v++ {
		edges[v] = graph.Edge{Src: graph.Vertex(v), Dst: graph.Vertex((v + 1) % n)}
	}
	return n, edges
}
