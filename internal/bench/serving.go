// Serving-workload machinery for the duplicate-heavy benchmark behind
// cmd/servebench: a deterministic Zipf request schedule (production point
// -query traffic is head-heavy — a few hot queries dominate) and latency
// summary statistics. Lives in bench, not serve, so the benchmark driver
// can share it without an import cycle.

package bench

import (
	"fmt"
	"math"
	"sort"
)

// ServingQuery is one wire request in a serving workload.
type ServingQuery struct {
	// Name labels the query for reporting (e.g. "bfs/src=3").
	Name string `json:"name"`
	// Body is the POST /run JSON payload.
	Body string `json:"body"`
}

// ServingPopulation builds the query population for the duplicate-heavy
// serving workload: PageRank on both scatter-gather engines followed by
// BFS and SSSP point queries over distinct sources, all on the powerlaw
// dataset at tiny scale. Rank order matters — ZipfSchedule weights the
// head of the slice most heavily, so the hottest queries are the ones
// coalescing and caching can absorb, while the traversal tail is batcher
// fodder.
func ServingPopulation(sources int) []ServingQuery {
	pop := []ServingQuery{
		{Name: "pr/polymer", Body: `{"algo":"pr","system":"polymer","graph":"powerlaw","scale":"tiny"}`},
		{Name: "pr/ligra", Body: `{"algo":"pr","system":"ligra","graph":"powerlaw","scale":"tiny"}`},
	}
	for i := 0; i < sources; i++ {
		pop = append(pop, ServingQuery{
			Name: fmt.Sprintf("bfs/src=%d", i),
			Body: fmt.Sprintf(`{"algo":"bfs","system":"ligra","graph":"powerlaw","scale":"tiny","src":%d}`, i),
		})
	}
	for i := 0; i < sources/4; i++ {
		pop = append(pop, ServingQuery{
			Name: fmt.Sprintf("sssp/src=%d", i),
			Body: fmt.Sprintf(`{"algo":"sssp","system":"ligra","graph":"powerlaw","scale":"tiny","src":%d}`, i),
		})
	}
	return pop
}

// ZipfSchedule draws n queries from pop with Zipf(s) popularity over the
// rank order: P(rank i) ~ 1/(i+1)^s. Deterministic in seed, so before-
// and after-arms of a benchmark replay the identical request stream.
func ZipfSchedule(pop []ServingQuery, n int, s float64, seed uint64) []ServingQuery {
	if len(pop) == 0 || n <= 0 {
		return nil
	}
	// Inverse-CDF sampling over the finite harmonic weights.
	cdf := make([]float64, len(pop))
	total := 0.0
	for i := range pop {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	out := make([]ServingQuery, n)
	z := seed
	for i := range out {
		// splitmix64: deterministic, platform-stable.
		z += 0x9e3779b97f4a7c15
		x := z
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		u := float64(x>>11) / (1 << 53) * total
		out[i] = pop[sort.SearchFloat64s(cdf, u)]
	}
	return out
}

// ServingStats summarizes one benchmark arm.
type ServingStats struct {
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Errors     int     `json:"errors"`
	ShedRetry  int     `json:"shed_retries"`
	WallSecs   float64 `json:"wall_secs"`
	GoodputRPS float64 `json:"goodput_rps"`
	MeanMs     float64 `json:"mean_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// SummarizeServing folds per-request latencies (milliseconds) and
// outcome counts into one arm's stats. latencies is sorted in place.
func SummarizeServing(latencies []float64, ok, errs, shedRetries int, wallSecs float64) ServingStats {
	sort.Float64s(latencies)
	st := ServingStats{
		Requests:  len(latencies),
		OK:        ok,
		Errors:    errs,
		ShedRetry: shedRetries,
		WallSecs:  wallSecs,
		MeanMs:    mean(latencies),
		P50Ms:     Percentile(latencies, 50),
		P95Ms:     Percentile(latencies, 95),
		P99Ms:     Percentile(latencies, 99),
	}
	if wallSecs > 0 {
		st.GoodputRPS = float64(ok) / wallSecs
	}
	return st
}

// Percentile reads the p-th percentile (nearest-rank) from a sorted
// slice.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
