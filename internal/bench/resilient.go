package bench

import (
	"context"
	"errors"
	"fmt"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/galois"
	"polymer/internal/engines/ligra"
	"polymer/internal/engines/xstream"
	"polymer/internal/fault"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/partition"
	"polymer/internal/sg"
)

// ResilienceReport summarises how a resilient run coped with its injected
// faults: whole-run restarts (setup-time allocation failures), per-step
// rollbacks, and the injector's arm/detect/repair log.
type ResilienceReport struct {
	Restarts  int
	Rollbacks int
	Log       []fault.Record
}

// Format renders the report for the CLI.
func (r ResilienceReport) Format() string {
	s := fmt.Sprintf("faults: %d rollback(s), %d restart(s)\n", r.Rollbacks, r.Restarts)
	for _, rec := range r.Log {
		s += fmt.Sprintf("  %-8s %s\n", rec.Action, rec.Event)
	}
	return s
}

// RunResilient executes one system x algorithm cell under an injected
// fault schedule, recovering transient faults via checkpoint/restart so
// the committed simulated result is bit-identical to a fault-free run.
// mk builds a fresh machine per attempt: a setup-time allocation failure
// (spec "alloc@-1") is recovered by whole-run restart, which discards the
// partially charged machine. PR is supported on all four systems; BFS and
// SSSP on the scatter-gather systems (Polymer, Ligra).
func RunResilient(sys System, alg Algo, g *graph.Graph, mk func() *numa.Machine, inj *fault.Injector, maxRestarts int) (RunResult, ResilienceReport, error) {
	return RunResilientFrom(sys, alg, g, mk, inj, maxRestarts, 0)
}

// RunResilientFrom is RunResilient with an explicit traversal source.
func RunResilientFrom(sys System, alg Algo, g *graph.Graph, mk func() *numa.Machine, inj *fault.Injector, maxRestarts int, src graph.Vertex) (RunResult, ResilienceReport, error) {
	opt := ResilientOptions{MaxRestarts: maxRestarts, SessionRetries: -1, Src: src}
	return RunResilientCtx(context.Background(), sys, alg, g, mk, inj, opt)
}

// ResilientOptions tunes one resilient execution.
type ResilientOptions struct {
	// MaxRestarts caps whole-run restarts (setup faults, steps that
	// exhausted their replay budget). 0 means fail on the first
	// unrecovered attempt.
	MaxRestarts int
	// SessionRetries caps per-step replays inside the fault session;
	// negative keeps the session default (3), 0 fails a step on its first
	// faulted attempt.
	SessionRetries int
	// Src is the traversal source for BFS.
	Src graph.Vertex
	// Tracer, when non-nil, is installed on the engine of every attempt,
	// so the flight recorder sees checkpoints, rollbacks and replays too.
	Tracer *obs.Tracer
	// Layout, when LayoutSet, overrides the Polymer engine's vertex-state
	// placement (the planner's placement=auto path). The baselines are
	// interleaved-native and ignore it.
	Layout    mem.Placement
	LayoutSet bool
}

// RunResilientCtx is the resilient runner under a cancellation context:
// the context is installed on the engine so every parallel phase observes
// it, and a cancellation mid-run stops charging the simulated clock at
// the superstep boundary (the partial step's charges are rolled back). A
// context error is terminal — it is never retried by restart.
func RunResilientCtx(ctx context.Context, sys System, alg Algo, g *graph.Graph, mk func() *numa.Machine, inj *fault.Injector, opt ResilientOptions) (RunResult, ResilienceReport, error) {
	if inj == nil {
		inj = fault.NewInjector(nil)
	}
	var rep ResilienceReport
	for restart := 0; ; restart++ {
		m := mk()
		inj.ArmSetup(m)
		r, rollbacks, err := runResilientOnce(ctx, sys, alg, g, m, inj, opt)
		rep.Rollbacks += rollbacks
		if err == nil {
			rep.Log = inj.Log()
			return r, rep, nil
		}
		inj.RetireSetup()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			rep.Log = inj.Log()
			return RunResult{}, rep, err
		}
		rep.Restarts++
		if restart >= opt.MaxRestarts {
			rep.Log = inj.Log()
			return RunResult{}, rep, fmt.Errorf("bench: resilient run failed after %d restart(s): %w", rep.Restarts, err)
		}
	}
}

// newSession pairs an engine with the injector, applying the replay cap.
func newSession(e fault.Engine, inj *fault.Injector, retries int) *fault.Session {
	sess := fault.NewSession(e, inj)
	if retries >= 0 {
		sess.SetMaxRetries(retries)
	}
	return sess
}

// runResilientOnce is one whole-run attempt. Construction-time panics
// (a setup allocation failure surfacing inside NewData/trackData) are
// contained by fault.Catch and reported as the attempt's error.
func runResilientOnce(ctx context.Context, sys System, alg Algo, g *graph.Graph, m *numa.Machine, inj *fault.Injector, opt ResilientOptions) (RunResult, int, error) {
	r := RunResult{System: sys, Algo: alg}
	rollbacks := 0
	err := fault.Catch(func() error {
		switch sys {
		case Polymer, Ligra:
			var e sg.Engine
			if sys == Polymer {
				copt := core.DefaultOptions()
				if alg.iterated() {
					copt.Mode = core.Push
				}
				if opt.LayoutSet {
					copt.Layout = opt.Layout
				}
				ce, err := core.New(g, m, copt)
				if err != nil {
					return err
				}
				ce.SetTracer(opt.Tracer)
				e = ce
			} else {
				le, err := ligra.New(g, m, ligra.DefaultOptions())
				if err != nil {
					return err
				}
				le.SetTracer(opt.Tracer)
				e = le
			}
			defer e.Close()
			fe := e.(fault.Engine)
			fe.SetContext(ctx)
			sess := newSession(fe, inj, opt.SessionRetries)
			switch alg {
			case PR:
				ranks, err := algorithms.PageRankE(e, defaultIters, defaultDamping, sess)
				if err != nil {
					return err
				}
				r.Checksum = sum(ranks)
			case SpMV:
				ys, err := algorithms.SpMVE(e, defaultIters, ones(g.NumVertices()), sess)
				if err != nil {
					return err
				}
				r.Checksum = sum(ys)
			case BP:
				beliefs, err := algorithms.BPE(e, defaultIters, sess)
				if err != nil {
					return err
				}
				r.Checksum = sum(beliefs)
			case BFS:
				levels, err := algorithms.BFSE(e, opt.Src, sess)
				if err != nil {
					return err
				}
				r.Checksum = sumI(levels)
			case SSSP:
				dist, err := algorithms.SSSPE(e, opt.Src, sess)
				if err != nil {
					return err
				}
				r.Checksum = sumFinite(dist)
			default:
				return fmt.Errorf("bench: resilient %s unsupported on %s", alg, sys)
			}
			rollbacks = sess.Rollbacks()
			r.SimSeconds = e.SimSeconds()
			r.Stats = e.RunStats()
			r.ThreadSeconds = e.ThreadSeconds()
		case XStream:
			if alg != PR {
				return fmt.Errorf("bench: resilient %s unsupported on %s", alg, sys)
			}
			e, err := xstream.New(g, m, xstream.DefaultOptions(), xsHints(alg))
			if err != nil {
				return err
			}
			defer e.Close()
			e.SetTracer(opt.Tracer)
			e.SetContext(ctx)
			sess := newSession(e, inj, opt.SessionRetries)
			ranks, err := algorithms.XSPageRankE(e, defaultIters, defaultDamping, sess)
			if err != nil {
				return err
			}
			r.Checksum = sum(ranks)
			rollbacks = sess.Rollbacks()
			r.SimSeconds = e.SimSeconds()
			r.Stats = e.RunStats()
		case Galois:
			if alg != PR {
				return fmt.Errorf("bench: resilient %s unsupported on %s", alg, sys)
			}
			e, err := galois.New(g, m, galois.DefaultOptions())
			if err != nil {
				return err
			}
			defer e.Close()
			e.SetTracer(opt.Tracer)
			e.SetContext(ctx)
			sess := newSession(e, inj, opt.SessionRetries)
			ranks, err := e.PageRankE(defaultIters, defaultDamping, sess)
			if err != nil {
				return err
			}
			r.Checksum = sum(ranks)
			rollbacks = sess.Rollbacks()
			r.SimSeconds = e.SimSeconds()
			r.Stats = e.RunStats()
		default:
			return fmt.Errorf("bench: unknown system %q", sys)
		}
		r.PeakBytes = m.Alloc().Peak()
		return nil
	})
	return r, rollbacks, err
}

// ResilientPolymerRanks runs resilient PageRank on the Polymer engine and
// returns the raw per-vertex rank vector, so tests can compare recovered
// runs against fault-free ones value-by-value, not just by checksum.
func ResilientPolymerRanks(g *graph.Graph, m *numa.Machine, inj *fault.Injector) ([]float64, error) {
	opt := core.DefaultOptions()
	opt.Mode = core.Push
	e, err := core.New(g, m, opt)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	sess := fault.NewSession(e, inj)
	return algorithms.PageRankE(e, defaultIters, defaultDamping, sess)
}

// DegradedResult reports a Polymer run that lost a NUMA node permanently
// mid-run and finished on the survivors.
type DegradedResult struct {
	Result RunResult
	// FailedNode and FailStep locate the permanent failure.
	FailedNode int
	FailStep   int
	// MigratedBytes is the vertex state re-read from the checkpoint and
	// redistributed over the surviving nodes' memories.
	MigratedBytes int64
	// MigrationSeconds is the honestly charged simulated cost of that
	// redistribution.
	MigrationSeconds float64
}

// RunPolymerDegraded runs PageRank on Polymer with a permanent node
// failure after failStep iterations: the run is rebuilt on a machine with
// one node fewer (core.New re-partitions the vertex space edge-balanced
// across the survivors), the failed node's vertex state is restored from
// the superstep checkpoint and its redistribution charged as interleaved
// remote traffic, and the remaining iterations continue from the
// checkpointed ranks. The returned SimSeconds is the sum of both segments
// plus the migration cost; the checksum matches a fault-free run within
// floating-point tolerance (the re-partitioned engine schedules additions
// differently, so bit-identity is not preserved — unlike transient
// recovery).
func RunPolymerDegraded(g *graph.Graph, topo *numa.Topology, nodes, coresPerNode, failNode, failStep int) (DegradedResult, error) {
	if nodes < 2 {
		return DegradedResult{}, fmt.Errorf("bench: degraded run needs >= 2 nodes, got %d", nodes)
	}
	if failStep < 0 || failStep > defaultIters {
		return DegradedResult{}, fmt.Errorf("bench: fail step %d out of range [0,%d]", failStep, defaultIters)
	}
	failNode %= nodes

	opt := core.DefaultOptions()
	opt.Mode = core.Push

	// Segment 1: the full machine up to the failure.
	m1 := numa.NewMachine(topo, nodes, coresPerNode)
	e1, err := core.New(g, m1, opt)
	if err != nil {
		return DegradedResult{}, err
	}
	ranks := algorithms.PageRankFrom(e1, failStep, defaultDamping, nil)
	seg1 := e1.SimSeconds()
	stats1 := e1.RunStats()
	peak1 := m1.Alloc().Peak()
	e1.Close()

	// Node failNode is now gone. Rebuild on the survivors; core.New
	// re-partitions the vertex space edge-balanced over nodes-1 ranges.
	m2 := numa.NewMachine(topo, nodes-1, coresPerNode)
	e2, err := core.New(g, m2, opt)
	if err != nil {
		return DegradedResult{}, err
	}
	defer e2.Close()

	// The lost partition's per-vertex state (curr+next ranks) is re-read
	// from the checkpoint and written to its new owners: one interleaved
	// sequential read + write per vertex, spread over the survivors.
	lost := partition.EdgeBalanced(g, nodes, partition.In)[failNode]
	const bytesPerVertex = 16 // two float64 rank arrays
	migrated := int64(lost.Len()) * bytesPerVertex
	ep := m2.NewEpoch()
	threads := m2.Threads()
	per := (int64(lost.Len()) + int64(threads) - 1) / int64(threads)
	for th := 0; th < threads; th++ {
		ep.AccessInterleaved(th, numa.Seq, numa.Load, per, bytesPerVertex, 0)
		ep.AccessInterleaved(th, numa.Seq, numa.Store, per, bytesPerVertex, 0)
	}
	migSecs := ep.Time()

	// Segment 2: continue from the checkpointed ranks on the survivors.
	out := algorithms.PageRankFrom(e2, defaultIters-failStep, defaultDamping, ranks)

	r := RunResult{System: Polymer, Algo: PR}
	r.Checksum = sum(out)
	r.SimSeconds = seg1 + migSecs + e2.SimSeconds()
	r.Stats = stats1
	r.Stats.Merge(e2.RunStats())
	r.PeakBytes = max(peak1, m2.Alloc().Peak())
	return DegradedResult{
		Result:           r,
		FailedNode:       failNode,
		FailStep:         failStep,
		MigratedBytes:    migrated,
		MigrationSeconds: migSecs,
	}, nil
}
