// Multi-source batch execution: one engine run answers k compatible
// point queries (BFS or SSSP) through the union-frontier drivers. The
// serving layer's batcher calls this for a sealed batch group and
// demultiplexes the per-source checksums back to the waiting requests.

package bench

import (
	"context"
	"fmt"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/ligra"
	"polymer/internal/fault"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/sg"
)

// MultiResult is one multi-source sweep: a per-source result checksum
// (index-aligned with the sources) plus the shared run accounting.
type MultiResult struct {
	PerSource  []float64
	SimSeconds float64
	PeakBytes  int64
}

// RunMultiSourceCtx executes one multi-source BFS or SSSP sweep on a
// scatter-gather engine under a cancellation context. Each per-source
// checksum is bit-identical to the corresponding single-source run's
// (the conformance harness asserts the stronger per-vertex property).
// Worker panics are contained and surface as the returned error.
func RunMultiSourceCtx(ctx context.Context, sys System, alg Algo, g *graph.Graph, mk func() *numa.Machine, srcs []graph.Vertex, tr *obs.Tracer) (MultiResult, error) {
	if alg != BFS && alg != SSSP {
		return MultiResult{}, fmt.Errorf("bench: multi-source %s unsupported (want BFS or SSSP)", alg)
	}
	if sys != Polymer && sys != Ligra {
		return MultiResult{}, fmt.Errorf("bench: multi-source %s unsupported on %s (want Polymer or Ligra)", alg, sys)
	}
	var r MultiResult
	m := mk()
	err := fault.Catch(func() error {
		var e sg.Engine
		if sys == Polymer {
			ce, err := core.New(g, m, core.DefaultOptions())
			if err != nil {
				return err
			}
			ce.SetTracer(tr)
			e = ce
		} else {
			le, err := ligra.New(g, m, ligra.DefaultOptions())
			if err != nil {
				return err
			}
			le.SetTracer(tr)
			e = le
		}
		defer e.Close()
		e.(fault.Engine).SetContext(ctx)
		r.PerSource = make([]float64, len(srcs))
		switch alg {
		case BFS:
			levels, err := algorithms.MultiBFS(e, srcs)
			if err != nil {
				return err
			}
			for i := range levels {
				r.PerSource[i] = sumI(levels[i])
			}
		case SSSP:
			dist, err := algorithms.MultiSSSP(e, srcs)
			if err != nil {
				return err
			}
			for i := range dist {
				r.PerSource[i] = sumFinite(dist[i])
			}
		}
		r.SimSeconds = e.SimSeconds()
		r.PeakBytes = m.Alloc().Peak()
		return nil
	})
	if err != nil {
		return MultiResult{}, err
	}
	return r, nil
}
