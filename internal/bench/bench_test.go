package bench

import (
	"math"
	"testing"

	"polymer/internal/barrier"
	"polymer/internal/gen"
	"polymer/internal/numa"
)

// The bench tests assert the paper's qualitative findings — who wins,
// by roughly what factor, where the crossovers are — at Small scale so
// the suite stays fast. cmd/experiments regenerates everything at the
// Default scale used for EXPERIMENTS.md.

func TestLatencyTableMatchesPaper(t *testing.T) {
	topo := numa.IntelXeon80()
	rows := LatencyTable(topo)
	wantLoad := []float64{117, 271, 372}
	wantStore := []float64{108, 304, 409}
	for i := range wantLoad {
		if math.Abs(rows[0].Cycles[i]-wantLoad[i]) > 1 {
			t.Fatalf("load latency level %d = %v, want %v", i, rows[0].Cycles[i], wantLoad[i])
		}
		if math.Abs(rows[1].Cycles[i]-wantStore[i]) > 1 {
			t.Fatalf("store latency level %d = %v, want %v", i, rows[1].Cycles[i], wantStore[i])
		}
	}
	if s := FormatLatencyTable(topo, rows); len(s) == 0 {
		t.Fatal("empty format output")
	}
}

func TestBandwidthTableMatchesPaper(t *testing.T) {
	for _, tc := range []struct {
		topo   *numa.Topology
		seq    []float64
		rand   []float64
		ilSeq  float64
		ilRand float64
	}{
		{numa.IntelXeon80(), []float64{3207, 2455, 2101}, []float64{720, 348, 307}, 2333, 344},
		{numa.AMDOpteron64(), []float64{3241, 2806, 2406, 1997}, []float64{533, 509, 487, 415}, 2509, 466},
	} {
		rows := BandwidthTable(tc.topo)
		for i := range tc.seq {
			if rel(rows[0].MBps[i], tc.seq[i]) > 0.02 {
				t.Fatalf("%s seq level %d = %v, want %v", tc.topo.Name, i, rows[0].MBps[i], tc.seq[i])
			}
			if rel(rows[1].MBps[i], tc.rand[i]) > 0.02 {
				t.Fatalf("%s rand level %d = %v, want %v", tc.topo.Name, i, rows[1].MBps[i], tc.rand[i])
			}
		}
		// Interleaved bandwidth derives from the harmonic mean over
		// distances, which lands within ~5% of the measured values.
		if rel(rows[0].Interleaved, tc.ilSeq) > 0.05 || rel(rows[1].Interleaved, tc.ilRand) > 0.05 {
			t.Fatalf("%s interleaved = %v/%v, want %v/%v", tc.topo.Name,
				rows[0].Interleaved, rows[1].Interleaved, tc.ilSeq, tc.ilRand)
		}
		// The paper's headline: sequential remote beats random local.
		if !(rows[0].MBps[tc.topo.MaxLevel()] > rows[1].MBps[0]) {
			t.Fatal("sequential remote must beat random local")
		}
		if s := FormatBandwidthTable(tc.topo, rows); len(s) == 0 {
			t.Fatal("empty format output")
		}
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestSocketScalingShapes(t *testing.T) {
	topo := numa.IntelXeon80()
	series, err := SocketScaling(topo, gen.Small, PR, Systems())
	if err != nil {
		t.Fatal(err)
	}
	bySys := map[System]ScaleSeries{}
	for _, s := range series {
		bySys[s.System] = s
	}
	last := topo.Sockets - 1
	polySpd := bySys[Polymer].Speedup()[last]
	// Figure 7: Polymer out-scales every baseline, and its 8-socket
	// absolute time beats all of them.
	for _, sys := range []System{Ligra, XStream, Galois} {
		if spd := bySys[sys].Speedup()[last]; spd >= polySpd {
			t.Fatalf("%s speedup %.2f must be below Polymer's %.2f", sys, spd, polySpd)
		}
		if bySys[sys].Points[last].Seconds <= bySys[Polymer].Points[last].Seconds {
			t.Fatalf("%s must be slower than Polymer at 8 sockets", sys)
		}
	}
	// Figure 5(b): none of the baselines reaches a 6x speedup on 8 sockets
	// (paper: at most 4.6x; our X-Stream model runs slightly above).
	for _, sys := range []System{Ligra, XStream, Galois} {
		if spd := bySys[sys].Speedup()[last]; spd > 6 {
			t.Fatalf("%s speedup %.2f unexpectedly high (paper: <= 4.6x)", sys, spd)
		}
	}
	// Section 6.3: on a single node Polymer is close to (or worse than)
	// the best existing system, within 3x.
	best := math.Inf(1)
	for _, sys := range []System{Ligra, XStream, Galois} {
		if v := bySys[sys].Points[0].Seconds; v < best {
			best = v
		}
	}
	if bySys[Polymer].Points[0].Seconds > 3*best {
		t.Fatal("Polymer should be in the same league as baselines on one socket")
	}
	if s := FormatScaling("fig7", "sockets", series); len(s) == 0 {
		t.Fatal("empty format output")
	}
}

func TestAMDScalingWorse(t *testing.T) {
	// Figure 8: Polymer's scalability ratio on the AMD machine is lower
	// than on the Intel machine (smaller LLC, shared HT ports).
	intel, err := SocketScaling(numa.IntelXeon80(), gen.Small, PR, []System{Polymer})
	if err != nil {
		t.Fatal(err)
	}
	amd, err := SocketScaling(numa.AMDOpteron64(), gen.Small, PR, []System{Polymer})
	if err != nil {
		t.Fatal(err)
	}
	iSpd := intel[0].Speedup()[7]
	aSpd := amd[0].Speedup()[7]
	if !(aSpd < iSpd) {
		t.Fatalf("AMD speedup %.2f must be below Intel %.2f", aSpd, iSpd)
	}
}

func TestCoreScalingWithinSocket(t *testing.T) {
	// Figure 5(a): existing systems scale well with cores inside one
	// socket.
	series, err := CoreScaling(numa.IntelXeon80(), gen.Small, []System{Ligra, XStream, Galois})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		spd := s.Speedup()[len(s.Points)-1]
		if spd < 2.5 {
			t.Fatalf("%s core-scaling speedup %.2f too low (paper: 4.5-6.9x)", s.System, spd)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	topo := numa.IntelXeon80()
	cells, err := Table3(topo, gen.Small)
	if err != nil {
		t.Fatal(err)
	}
	get := func(a Algo, d gen.Dataset, s System) float64 {
		for _, c := range cells {
			if c.Algo == a && c.Graph == d && c.System == s {
				return c.Seconds
			}
		}
		t.Fatalf("missing cell %s/%s/%s", a, d, s)
		return 0
	}
	// Polymer wins the sparse-matrix cells (paper Section 6.2, modulo
	// BP/roadUS). At Small scale the rmat24 and roadUS vertex data fits
	// entirely in the scaled LLC, which erases the NUMA gap the paper
	// sees at full size (Galois's random reads become free); for those
	// inputs Polymer only has to stay within 4x of the winner. At Default
	// scale Polymer wins them too — see EXPERIMENTS.md.
	for _, a := range []Algo{PR, SpMV, BP} {
		for _, d := range gen.Datasets() {
			p := get(a, d, Polymer)
			strict := d == gen.Twitter || d == gen.RMat27 || d == gen.PowerLaw
			for _, s := range []System{Ligra, XStream, Galois} {
				o := get(a, d, s)
				if strict && p >= o {
					t.Errorf("%s/%s: Polymer %.4f not fastest vs %s %.4f", a, d, p, s, o)
				}
				if !strict && p > 4*o {
					t.Errorf("%s/%s: Polymer %.4f not within 4x of %s %.4f", a, d, p, s, o)
				}
			}
		}
	}
	// X-Stream is the worst system for every traversal algorithm on the
	// high-diameter road network, by a wide margin.
	for _, a := range []Algo{BFS, CC, SSSP} {
		x := get(a, gen.RoadUS, XStream)
		for _, s := range []System{Polymer, Ligra, Galois} {
			if x < 3*get(a, gen.RoadUS, s) {
				t.Errorf("%s/roadUS: X-Stream %.4f must be far slower than %s %.4f", a, x, s, get(a, gen.RoadUS, s))
			}
		}
	}
	// Galois's asynchronous algorithms shine on the road network: its
	// delta-stepping SSSP beats the Bellman-Ford systems.
	if g := get(SSSP, gen.RoadUS, Galois); g >= get(SSSP, gen.RoadUS, Ligra) {
		t.Errorf("galois road SSSP %.4f should beat ligra %.4f (delta-stepping)", g, get(SSSP, gen.RoadUS, Ligra))
	}
	if s := FormatTable3(cells); len(s) == 0 {
		t.Fatal("empty format output")
	}
}

func TestRunChecksumsAgreeAcrossSystems(t *testing.T) {
	// All four systems must compute the same answers.
	topo := numa.IntelXeon80()
	for _, alg := range Algos() {
		g, err := LoadDataset(gen.Twitter, gen.Tiny, alg)
		if err != nil {
			t.Fatal(err)
		}
		var ref float64
		for i, sys := range Systems() {
			m := numa.NewMachine(topo, 2, 2)
			r := Run(sys, alg, g, m)
			if i == 0 {
				ref = r.Checksum
				continue
			}
			if rel(r.Checksum, ref) > 1e-6 {
				t.Fatalf("%s/%s checksum %v differs from %v", sys, alg, r.Checksum, ref)
			}
		}
	}
}

func TestTable4Shapes(t *testing.T) {
	rows, err := Table4(numa.IntelXeon80(), gen.Small, PR)
	if err != nil {
		t.Fatal(err)
	}
	byS := map[System]Table4Row{}
	for _, r := range rows {
		byS[r.System] = r
	}
	// Polymer has the lowest remote rate, count and remote miss rate
	// (paper Table 4(a)).
	for _, s := range []System{Ligra, XStream, Galois} {
		if byS[Polymer].RemoteRate >= byS[s].RemoteRate {
			t.Errorf("Polymer remote rate %.3f must be below %s %.3f", byS[Polymer].RemoteRate, s, byS[s].RemoteRate)
		}
		if byS[Polymer].RemoteAccesses >= byS[s].RemoteAccesses {
			t.Errorf("Polymer remote count must be lowest")
		}
	}
	if byS[Ligra].RemoteRate < 0.5 || byS[Galois].RemoteRate < 0.5 {
		t.Error("NUMA-oblivious systems should exceed 50% remote accesses (paper: 83%)")
	}
	if s := FormatTable4(PR, rows); len(s) == 0 {
		t.Fatal("empty format output")
	}
}

func TestTable5Shapes(t *testing.T) {
	rows, err := Table5(numa.IntelXeon80(), gen.Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Galois has the smallest footprint; X-Stream the largest
		// (shuffle buffers); Polymer exceeds Ligra by its agents but by
		// less than ~40% (paper Section 6.5).
		if r.Peak[Galois] >= r.Peak[Ligra] {
			t.Errorf("%s: galois %d must be smaller than ligra %d", r.Graph, r.Peak[Galois], r.Peak[Ligra])
		}
		if r.Peak[XStream] <= r.Peak[Ligra] {
			t.Errorf("%s: xstream %d must exceed ligra %d", r.Graph, r.Peak[XStream], r.Peak[Ligra])
		}
		if r.Peak[Polymer] <= r.Peak[Ligra] {
			t.Errorf("%s: polymer %d must exceed ligra %d (agents)", r.Graph, r.Peak[Polymer], r.Peak[Ligra])
		}
		if r.AgentBytes <= 0 {
			t.Errorf("%s: agent bytes must be tracked", r.Graph)
		}
		// Our engine keeps the dual-CSR construction graph resident next
		// to its grouped layouts, so the overhead ratio runs higher than
		// the paper's (~1.06-1.38); bound it at 3x (see EXPERIMENTS.md).
		if float64(r.Peak[Polymer]) > 3*float64(r.Peak[Ligra]) {
			t.Errorf("%s: polymer/ligra ratio %.2f too high", r.Graph,
				float64(r.Peak[Polymer])/float64(r.Peak[Ligra]))
		}
	}
	if s := FormatTable5(rows); len(s) == 0 {
		t.Fatal("empty format output")
	}
}

func TestBarrierStudyShape(t *testing.T) {
	points := BarrierStudy(8, 2, 50)
	if len(points) != 8 {
		t.Fatalf("expected 8 points, got %d", len(points))
	}
	p8 := points[7]
	if !(p8.Model[barrier.N] < p8.Model[barrier.H] && p8.Model[barrier.H] < p8.Model[barrier.P]) {
		t.Fatal("model ordering N < H < P violated at 8 sockets")
	}
	for _, k := range []barrier.Kind{barrier.P, barrier.H, barrier.N} {
		if p8.Measured[k] <= 0 {
			t.Fatalf("measured %v must be positive", k)
		}
	}
	if s := FormatBarrierStudy(points); len(s) == 0 {
		t.Fatal("empty format output")
	}
}

func TestFigure10bBarrierAblation(t *testing.T) {
	rows, err := Figure10b(numa.IntelXeon80(), gen.Small)
	if err != nil {
		t.Fatal(err)
	}
	checkAblation(t, rows, "barrier", map[Algo]float64{
		PR: 1, SpMV: 1, BP: 1, BFS: 2, CC: 1.5, SSSP: 2,
	})
	// The traversal algorithms must gain far more than the matrix ones
	// (paper: 58.6x for BFS vs 8% for PR).
	sp := func(a Algo) float64 {
		for _, r := range rows {
			if r.Algo == a {
				return r.Without / r.With
			}
		}
		return 0
	}
	if !(sp(BFS) > 2*sp(PR) && sp(SSSP) > 2*sp(PR)) {
		t.Fatalf("traversal barrier gains (BFS %.1fx, SSSP %.1fx) must dwarf PR's %.1fx", sp(BFS), sp(SSSP), sp(PR))
	}
}

func TestTable6aAdaptive(t *testing.T) {
	rows, err := Table6a(numa.IntelXeon80(), gen.Small)
	if err != nil {
		t.Fatal(err)
	}
	// CC's frontier stays dense on the grid road network (row-major ids),
	// so its adaptive gain is flat here, unlike the paper's 15x — see
	// EXPERIMENTS.md.
	checkAblation(t, rows, "adaptive", map[Algo]float64{
		PR: 0.9, SpMV: 0.9, BP: 0.9, BFS: 2, CC: 0.95, SSSP: 1.5,
	})
	if s := FormatAblation("Table 6(a)", rows); len(s) == 0 {
		t.Fatal("empty format output")
	}
}

// checkAblation asserts per-algorithm minimum speedups for a w/o-vs-w/
// study.
func checkAblation(t *testing.T, rows []AblationRow, name string, minGain map[Algo]float64) {
	t.Helper()
	for _, r := range rows {
		sp := r.Without / r.With
		if want := minGain[r.Algo]; sp < want {
			t.Errorf("%s: %s speedup %.2f, want >= %.2f", name, r.Algo, sp, want)
		}
	}
}

func TestTable6bBalanced(t *testing.T) {
	rows, err := Table6b(numa.IntelXeon80(), gen.Small)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 6(b): the dense-phase algorithms speed up substantially
	// on the skewed twitter graph (paper: 1.29x-3.67x); the traversal
	// algorithms are sparse-phase dominated at our scale and must at
	// least not regress.
	checkAblation(t, rows, "balanced", map[Algo]float64{
		PR: 1.2, SpMV: 1.2, BP: 1.2, CC: 1.1, BFS: 0.9, SSSP: 0.9,
	})
}

func TestFigure11Shapes(t *testing.T) {
	r, err := Figure11(numa.IntelXeon80(), gen.Small)
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := func(xs []float64) float64 {
		var m float64
		for _, x := range xs {
			if a := math.Abs(x); a > m {
				m = a
			}
		}
		return m
	}
	if !(maxAbs(r.EdgeBalanced) < maxAbs(r.VertexBalanced)) {
		t.Fatalf("edge-balanced deviation %.3f must beat vertex-balanced %.3f",
			maxAbs(r.EdgeBalanced), maxAbs(r.VertexBalanced))
	}
	if maxAbs(r.EdgeBalanced) > 0.05 {
		t.Fatalf("edge-balanced deviation %.3f too high (paper: under 1%%)", maxAbs(r.EdgeBalanced))
	}
	// Per-socket busy times must be tighter with balance.
	spread := func(xs []float64) float64 {
		lo, hi := math.Inf(1), 0.0
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return hi - lo
	}
	if !(spread(r.SocketTimeEB) < spread(r.SocketTimeVB)) {
		t.Fatal("balanced partitioning must tighten per-socket times")
	}
	if !(r.TotalEB < r.TotalVB) {
		t.Fatal("balanced partitioning must reduce the whole-run time")
	}
	if s := FormatFigure11(r); len(s) == 0 {
		t.Fatal("empty format output")
	}
}

func TestIterationOverheadShape(t *testing.T) {
	rows, err := IterationOverhead(numa.IntelXeon80(), gen.Small)
	if err != nil {
		t.Fatal(err)
	}
	byS := map[System]IterOverheadRow{}
	for _, r := range rows {
		byS[r.System] = r
	}
	// Paper footnote 6: Polymer 0.032ms, Ligra 0.043ms, X-Stream 92ms per
	// iteration — the edge-centric engine pays orders of magnitude more
	// per iteration because it scans every edge's source state.
	if !(byS[XStream].PerIterSecs > 10*byS[Polymer].PerIterSecs) {
		t.Fatalf("X-Stream per-iter %.2e must dwarf Polymer's %.2e",
			byS[XStream].PerIterSecs, byS[Polymer].PerIterSecs)
	}
	if !(byS[XStream].PerIterSecs > 5*byS[Ligra].PerIterSecs) {
		t.Fatalf("X-Stream per-iter %.2e must dwarf Ligra's %.2e",
			byS[XStream].PerIterSecs, byS[Ligra].PerIterSecs)
	}
	// BFS on a high-diameter road network needs hundreds of iterations.
	if byS[Polymer].Iterations < 100 {
		t.Fatalf("road BFS took only %d iterations", byS[Polymer].Iterations)
	}
	if s := FormatIterationOverhead(rows); len(s) == 0 {
		t.Fatal("empty format output")
	}
}
