package bench

import (
	"fmt"
	"strings"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/ligra"
	"polymer/internal/engines/xstream"
	"polymer/internal/gen"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

// IterOverheadRow reports one system's BFS iteration statistics on the
// road network: the paper's footnote 6 compares the per-iteration cost of
// maintaining runtime state (0.032 ms for Polymer, 0.043 ms for Ligra and
// 92 ms for X-Stream at full scale — the edge-centric engine must test
// every edge's source state even when a handful of vertices is active).
type IterOverheadRow struct {
	System      System
	Iterations  int64
	PerIterSecs float64
}

// IterationOverhead reproduces the footnote-6 comparison: BFS from vertex
// 0 on roadUS, average simulated time per iteration.
func IterationOverhead(t *numa.Topology, sc gen.Scale) ([]IterOverheadRow, error) {
	g, err := gen.Load(gen.RoadUS, sc, false)
	if err != nil {
		return nil, err
	}
	var out []IterOverheadRow

	// Polymer: per-EdgeMap times from the phase trace.
	{
		m := numa.NewMachine(t, t.Sockets, t.CoresPerSocket)
		opt := core.DefaultOptions()
		opt.Trace = true
		e := core.MustNew(g, m, opt)
		algorithms.BFS(e, 0)
		var iters int64
		for _, r := range e.Trace() {
			if r.Kind == "edgemap" {
				iters++
			}
		}
		out = append(out, IterOverheadRow{Polymer, iters, e.SimSeconds() / float64(iters)})
		e.Close()
	}
	// Ligra: total over levels.
	{
		m := numa.NewMachine(t, t.Sockets, t.CoresPerSocket)
		e := ligra.MustNew(g, m, ligra.DefaultOptions())
		levels := algorithms.BFS(e, 0)
		iters := maxLevel(levels)
		out = append(out, IterOverheadRow{Ligra, iters, e.SimSeconds() / float64(iters)})
		e.Close()
	}
	// X-Stream: total over levels; each iteration scans every edge.
	{
		m := numa.NewMachine(t, t.Sockets, t.CoresPerSocket)
		e := xstream.MustNew(g, m, xstream.DefaultOptions(), sg.Hints{})
		levels := algorithms.XSBFS(e, 0)
		iters := maxLevel(levels)
		out = append(out, IterOverheadRow{XStream, iters, e.SimSeconds() / float64(iters)})
		e.Close()
	}
	return out, nil
}

func maxLevel(levels []int64) int64 {
	var m int64 = 1
	for _, l := range levels {
		if l+1 > m {
			m = l + 1
		}
	}
	return m
}

// FormatIterationOverhead renders the footnote-6 comparison.
func FormatIterationOverhead(rows []IterOverheadRow) string {
	var b strings.Builder
	b.WriteString("Footnote 6: average per-iteration time, BFS on roadUS\n")
	fmt.Fprintf(&b, "%-10s%12s%18s\n", "System", "iterations", "per-iter (usec)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s%12d%18.2f\n", r.System, r.Iterations, r.PerIterSecs*1e6)
	}
	return b.String()
}
