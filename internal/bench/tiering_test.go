package bench

import (
	"context"

	"encoding/json"
	"testing"

	"polymer/internal/fault"
	"polymer/internal/gen"
	"polymer/internal/numa"
)

// tierSweepFixture runs the standard smoke sweep: powerlaw at Tiny
// scale, both sweep algorithms, the three canonical DRAM fractions.
func tierSweepFixture(t *testing.T) *TierSweep {
	t.Helper()
	g, err := gen.Load(gen.PowerLaw, gen.Tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := RunTierSweep("powerlaw/tiny", g, numa.IntelXeon80(), 4, 2,
		[]Algo{PR, BFS}, []float64{0.75, 0.5, 0.25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestTierSweepGate is the in-tree half of the nightly acceptance: hot
// placement must beat naive interleave on simulated time whenever at
// most half the footprint fits in DRAM, for PR and BFS, and no tiered
// run may beat the untiered clock.
func TestTierSweepGate(t *testing.T) {
	ts := tierSweepFixture(t)
	t.Log("\n" + FormatTierSweep(ts))
	if err := ts.Gate(); err != nil {
		t.Fatal(err)
	}
	if len(ts.Rows) != 6 {
		t.Fatalf("sweep produced %d rows, want 6", len(ts.Rows))
	}
	for _, r := range ts.Rows {
		if r.Hot.SlowRate <= 0 || r.Interleave.SlowRate <= 0 {
			t.Errorf("%s@%.2f: constrained run reported no slow-tier traffic", r.Algo, r.Frac)
		}
	}
}

// TestTierSweepDeterminism: the sweep's PR rows are clock-deterministic
// (PR's charge totals are schedule-independent), so two sweeps must
// agree bit-for-bit on them.
func TestTierSweepDeterminism(t *testing.T) {
	a, b := tierSweepFixture(t), tierSweepFixture(t)
	for i := range a.Rows {
		if a.Rows[i].Algo != PR {
			continue
		}
		if a.Rows[i] != b.Rows[i] {
			t.Errorf("PR row %d diverged across identical sweeps:\n%+v\n%+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

// TestTierBaselineCompare: a sweep passes against itself and fails
// against an inflated baseline.
func TestTierBaselineCompare(t *testing.T) {
	ts := tierSweepFixture(t)
	out, err := MarshalTierSweep(ts)
	if err != nil {
		t.Fatal(err)
	}
	var back TierSweep
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if err := CompareTierBaseline(ts, &back, 0.8); err != nil {
		t.Fatalf("sweep failed against its own baseline: %v", err)
	}
	for i := range back.Rows {
		back.Rows[i].HotSpeedup *= 10
	}
	if err := CompareTierBaseline(ts, &back, 0.8); err == nil {
		t.Fatal("inflated baseline not detected")
	}
}

// TestTieredResilientRollback: a fault rolled back at step 0 — before
// the engine's lazy layout/agent allocations have committed a tier fill
// — must not disturb the tier split for the rest of the run. The replay
// of a repaired step is bit-identical to a fault-free run, so the
// whole-run slow-tier traffic and clock must match the clean run
// exactly. (Regression: restoring a pre-growth tier snapshot used to
// leave every class fully resident, zeroing slow-tier traffic for the
// entire run.)
func TestTieredResilientRollback(t *testing.T) {
	g, err := gen.Load(gen.PowerLaw, gen.Tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *numa.Machine {
		m := numa.NewMachine(numa.IntelXeon80(), 4, 2)
		if err := m.SetTierConfig(numa.TierConfig{DRAMPerNode: 20000, Policy: numa.TierInterleave}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	run := func(spec string) (RunResult, ResilienceReport) {
		var inj *fault.Injector
		if spec != "" {
			evs, err := fault.ParseSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			inj = fault.NewInjector(evs)
		}
		r, rep, err := RunResilientCtx(context.Background(), Polymer, PR, g, mk, inj, ResilientOptions{SessionRetries: -1})
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		return r, rep
	}
	clean, _ := run("")
	if clean.Stats.SlowCount == 0 {
		t.Fatal("clean tiered run reported no slow-tier traffic")
	}
	for _, spec := range []string{"link@0:n1-n0*0.5", "panic@0:t1"} {
		r, rep := run(spec)
		if rep.Rollbacks == 0 {
			t.Fatalf("%q: expected a rollback", spec)
		}
		if r.Stats.SlowCount != clean.Stats.SlowCount {
			t.Errorf("%q: slow-tier count %d != clean run's %d", spec, r.Stats.SlowCount, clean.Stats.SlowCount)
		}
		if r.SimSeconds != clean.SimSeconds {
			t.Errorf("%q: clock %v != clean run's %v", spec, r.SimSeconds, clean.SimSeconds)
		}
	}
}
