package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"polymer/internal/barrier"
)

// WriteCSV writes one experiment's raw rows to dir/name.csv so the
// figures can be re-plotted with external tooling.
func WriteCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// ScalingCSV flattens scalability series into (system, x, seconds,
// speedup) rows.
func ScalingCSV(series []ScaleSeries) ([]string, [][]string) {
	header := []string{"system", "x", "seconds", "speedup"}
	var rows [][]string
	for _, s := range series {
		spd := s.Speedup()
		for i, p := range s.Points {
			rows = append(rows, []string{
				string(s.System),
				strconv.Itoa(p.X),
				fmt.Sprintf("%g", p.Seconds),
				fmt.Sprintf("%g", spd[i]),
			})
		}
	}
	return header, rows
}

// Table3CSV flattens the runtime table.
func Table3CSV(cells []Table3Cell) ([]string, [][]string) {
	header := []string{"algo", "graph", "system", "seconds"}
	var rows [][]string
	for _, c := range cells {
		rows = append(rows, []string{
			string(c.Algo), string(c.Graph), string(c.System), fmt.Sprintf("%g", c.Seconds),
		})
	}
	return header, rows
}

// AblationCSV flattens a w/o-vs-w/ study.
func AblationCSV(rows []AblationRow) ([]string, [][]string) {
	header := []string{"algo", "without_s", "with_s", "speedup"}
	var out [][]string
	for _, r := range rows {
		sp := 0.0
		if r.With > 0 {
			sp = r.Without / r.With
		}
		out = append(out, []string{
			string(r.Algo), fmt.Sprintf("%g", r.Without), fmt.Sprintf("%g", r.With), fmt.Sprintf("%g", sp),
		})
	}
	return header, out
}

// BarrierCSV flattens the Figure 10(a) study.
func BarrierCSV(points []BarrierPoint) ([]string, [][]string) {
	header := []string{"sockets", "kind", "model_usec", "measured_usec"}
	var rows [][]string
	for _, p := range points {
		for _, k := range []barrier.Kind{barrier.P, barrier.H, barrier.N} {
			rows = append(rows, []string{
				strconv.Itoa(p.Sockets), k.String(),
				fmt.Sprintf("%g", p.Model[k]*1e6), fmt.Sprintf("%g", p.Measured[k]*1e6),
			})
		}
	}
	return header, rows
}

// Fig11CSV flattens both Figure 11 panels.
func Fig11CSV(r *Fig11Result) ([]string, [][]string) {
	header := []string{"socket", "vb_normdiff", "eb_normdiff", "vb_busy_s", "eb_busy_s"}
	var rows [][]string
	for i := range r.VertexBalanced {
		rows = append(rows, []string{
			strconv.Itoa(i),
			fmt.Sprintf("%g", r.VertexBalanced[i]),
			fmt.Sprintf("%g", r.EdgeBalanced[i]),
			fmt.Sprintf("%g", r.SocketTimeVB[i]),
			fmt.Sprintf("%g", r.SocketTimeEB[i]),
		})
	}
	return header, rows
}

// Table5CSV flattens the memory table.
func Table5CSV(rows []Table5Row) ([]string, [][]string) {
	header := []string{"graph", "system", "peak_bytes", "agent_bytes"}
	var out [][]string
	for _, r := range rows {
		for _, s := range Systems() {
			agent := int64(0)
			if s == Polymer {
				agent = r.AgentBytes
			}
			out = append(out, []string{
				string(r.Graph), string(s),
				strconv.FormatInt(r.Peak[s], 10), strconv.FormatInt(agent, 10),
			})
		}
	}
	return header, out
}
