package bench

import (
	"fmt"
	"strings"

	"polymer/internal/core"
	"polymer/internal/gen"
	"polymer/internal/numa"
	"polymer/internal/partition"
)

// ScalePoint is one (x, seconds) point of a scalability series.
type ScalePoint struct {
	X       int // cores or sockets
	Seconds float64
}

// ScaleSeries is one system's scalability curve.
type ScaleSeries struct {
	System System
	Points []ScalePoint
}

// Speedup returns the curve normalised to its first point.
func (s ScaleSeries) Speedup() []float64 {
	out := make([]float64, len(s.Points))
	if len(s.Points) == 0 || s.Points[0].Seconds == 0 {
		return out
	}
	base := s.Points[0].Seconds
	for i, p := range s.Points {
		out[i] = base / p.Seconds
	}
	return out
}

// CoreScaling reproduces Figure 5(a): the speedup of the given systems
// with an increasing number of cores within one socket (PR on twitter).
func CoreScaling(t *numa.Topology, sc gen.Scale, systems []System) ([]ScaleSeries, error) {
	g, err := LoadDataset(gen.Twitter, sc, PR)
	if err != nil {
		return nil, err
	}
	var out []ScaleSeries
	for _, sys := range systems {
		s := ScaleSeries{System: sys}
		for cores := 1; cores <= t.CoresPerSocket; cores++ {
			m := numa.NewMachine(t, 1, cores)
			r := Run(sys, PR, g, m)
			s.Points = append(s.Points, ScalePoint{X: cores, Seconds: r.SimSeconds})
		}
		out = append(out, s)
	}
	return out, nil
}

// SocketScaling reproduces Figures 5(b-d), 7, 8 and 9: execution time and
// speedup with an increasing number of sockets at full cores per socket.
func SocketScaling(t *numa.Topology, sc gen.Scale, alg Algo, systems []System) ([]ScaleSeries, error) {
	g, err := LoadDataset(gen.Twitter, sc, alg)
	if err != nil {
		return nil, err
	}
	var out []ScaleSeries
	for _, sys := range systems {
		s := ScaleSeries{System: sys}
		for sockets := 1; sockets <= t.Sockets; sockets++ {
			m := numa.NewMachine(t, sockets, t.CoresPerSocket)
			r := Run(sys, alg, g, m)
			s.Points = append(s.Points, ScalePoint{X: sockets, Seconds: r.SimSeconds})
		}
		out = append(out, s)
	}
	return out, nil
}

// FormatScaling renders a scalability study as the paper's paired
// time/speedup panels.
func FormatScaling(title, xlabel string, series []ScaleSeries) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-9s", xlabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%22s", s.System)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-9s", "")
	for range series {
		fmt.Fprintf(&b, "%14s%8s", "time(s)", "spd")
	}
	b.WriteString("\n")
	if len(series) == 0 || len(series[0].Points) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%-9d", series[0].Points[i].X)
		for _, s := range series {
			fmt.Fprintf(&b, "%14.4f%7.2fx", s.Points[i].Seconds, s.Speedup()[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig11Result carries both panels of Figure 11: the per-partition edge
// imbalance with and without balanced partitioning, and the per-socket
// execution time of PageRank in both configurations.
type Fig11Result struct {
	// NormDiff per partition (panel a).
	VertexBalanced []float64
	EdgeBalanced   []float64
	// Per-socket busy seconds for PR on twitter (panel b).
	SocketTimeVB []float64
	SocketTimeEB []float64
	// Whole-run times in both configurations.
	TotalVB, TotalEB float64
}

// Figure11 reproduces the partition-balance study on the twitter graph.
func Figure11(t *numa.Topology, sc gen.Scale) (*Fig11Result, error) {
	g, err := LoadDataset(gen.Twitter, sc, PR)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}

	vb := partition.VertexBalanced(g.NumVertices(), t.Sockets)
	eb := partition.EdgeBalanced(g, t.Sockets, partition.In)
	res.VertexBalanced = partition.Measure(g, vb, partition.In).NormDiff
	res.EdgeBalanced = partition.Measure(g, eb, partition.In).NormDiff

	for _, balanced := range []bool{false, true} {
		m := numa.NewMachine(t, t.Sockets, t.CoresPerSocket)
		opt := core.DefaultOptions()
		opt.Mode = core.Push
		opt.EdgeBalanced = balanced
		e := core.MustNew(g, m, opt)
		runSG(e, PR, 0)
		perThread := e.ThreadSeconds()
		perSocket := make([]float64, t.Sockets)
		for th, s := range perThread {
			if sock := m.NodeOfThread(th); s > perSocket[sock] {
				perSocket[sock] = s
			}
		}
		if balanced {
			res.SocketTimeEB = perSocket
			res.TotalEB = e.SimSeconds()
		} else {
			res.SocketTimeVB = perSocket
			res.TotalVB = e.SimSeconds()
		}
		e.Close()
	}
	return res, nil
}

// FormatFigure11 renders both panels.
func FormatFigure11(r *Fig11Result) string {
	var b strings.Builder
	b.WriteString("Figure 11(a): normalized edge-count difference per partition (twitter)\n")
	fmt.Fprintf(&b, "%-9s%16s%16s\n", "Socket", "w/o opt", "w/ opt")
	for i := range r.VertexBalanced {
		fmt.Fprintf(&b, "%-9d%15.1f%%%15.2f%%\n", i, r.VertexBalanced[i]*100, r.EdgeBalanced[i]*100)
	}
	b.WriteString("\nFigure 11(b): per-socket busy time for PageRank (seconds)\n")
	fmt.Fprintf(&b, "%-9s%16s%16s\n", "Socket", "w/o opt", "w/ opt")
	for i := range r.SocketTimeVB {
		fmt.Fprintf(&b, "%-9d%16.4f%16.4f\n", i, r.SocketTimeVB[i], r.SocketTimeEB[i])
	}
	fmt.Fprintf(&b, "whole run: w/o %.4fs   w/ %.4fs\n", r.TotalVB, r.TotalEB)
	return b.String()
}
