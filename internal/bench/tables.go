package bench

import (
	"fmt"
	"strings"

	"polymer/internal/barrier"
	"polymer/internal/core"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
)

// Table3Cell is one runtime cell of the paper's Table 3.
type Table3Cell struct {
	Algo    Algo
	Graph   gen.Dataset
	System  System
	Seconds float64
}

// Table3 reproduces the overall-performance table: all six algorithms
// over all five datasets on all four systems, using every node of the
// topology (the paper's "80 threads" configuration).
func Table3(t *numa.Topology, sc gen.Scale) ([]Table3Cell, error) {
	var out []Table3Cell
	for _, alg := range Algos() {
		for _, d := range gen.Datasets() {
			g, err := LoadDataset(d, sc, alg)
			if err != nil {
				return nil, err
			}
			for _, sys := range Systems() {
				m := numa.NewMachine(t, t.Sockets, t.CoresPerSocket)
				r := Run(sys, alg, g, m)
				out = append(out, Table3Cell{Algo: alg, Graph: d, System: sys, Seconds: r.SimSeconds})
			}
		}
	}
	return out, nil
}

// FormatTable3 renders the runtime table with the per-row winner marked
// by an asterisk, as the paper highlights the best time in red.
func FormatTable3(cells []Table3Cell) string {
	var b strings.Builder
	b.WriteString("Table 3: runtimes (simulated seconds); * marks the row winner\n")
	fmt.Fprintf(&b, "%-6s%-10s%12s%12s%12s%12s\n", "Algo", "Graph", "Polymer", "Ligra", "X-Stream", "Galois")
	byRow := make(map[string]map[System]float64)
	var order []string
	for _, c := range cells {
		key := string(c.Algo) + "\x00" + string(c.Graph)
		if byRow[key] == nil {
			byRow[key] = make(map[System]float64)
			order = append(order, key)
		}
		byRow[key][c.System] = c.Seconds
	}
	for _, key := range order {
		parts := strings.SplitN(key, "\x00", 2)
		row := byRow[key]
		best := Polymer
		for _, s := range Systems() {
			if row[s] < row[best] {
				best = s
			}
		}
		fmt.Fprintf(&b, "%-6s%-10s", parts[0], parts[1])
		for _, s := range Systems() {
			mark := " "
			if s == best {
				mark = "*"
			}
			fmt.Fprintf(&b, "%11.3f%s", row[s], mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table4Row is one system's access statistics (paper Table 4).
type Table4Row struct {
	System         System
	RemoteRate     float64
	RemoteAccesses int64
	RemoteMissRate float64
}

// Table4 reproduces the remote-access comparison for one algorithm on the
// twitter graph with all sockets.
func Table4(t *numa.Topology, sc gen.Scale, alg Algo) ([]Table4Row, error) {
	g, err := LoadDataset(gen.Twitter, sc, alg)
	if err != nil {
		return nil, err
	}
	var out []Table4Row
	for _, sys := range Systems() {
		m := numa.NewMachine(t, t.Sockets, t.CoresPerSocket)
		r := Run(sys, alg, g, m)
		out = append(out, Table4Row{
			System:         sys,
			RemoteRate:     r.Stats.RemoteRate,
			RemoteAccesses: r.Stats.RemoteCount,
			RemoteMissRate: r.Stats.RemoteMissRate,
		})
	}
	return out, nil
}

// FormatTable4 renders the access-statistics table.
func FormatTable4(alg Algo, rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4(%s): remote accesses on twitter\n", alg)
	fmt.Fprintf(&b, "%-18s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12s", r.System)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "Access Rate/R")
	for _, r := range rows {
		fmt.Fprintf(&b, "%11.1f%%", r.RemoteRate*100)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "Num. Accesses/R")
	for _, r := range rows {
		fmt.Fprintf(&b, "%11.1fM", float64(r.RemoteAccesses)/1e6)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "LLC Miss Rate/R")
	for _, r := range rows {
		fmt.Fprintf(&b, "%11.2f%%", r.RemoteMissRate*100)
	}
	b.WriteByte('\n')
	return b.String()
}

// Table5Row is one graph's peak memory per system (paper Table 5).
type Table5Row struct {
	Graph      gen.Dataset
	Peak       map[System]int64
	AgentBytes int64 // Polymer's replica overhead, shown in brackets
}

// Table5 reproduces the peak-memory comparison for PageRank on all eight
// nodes.
func Table5(t *numa.Topology, sc gen.Scale) ([]Table5Row, error) {
	var out []Table5Row
	for _, d := range gen.Datasets() {
		g, err := LoadDataset(d, sc, PR)
		if err != nil {
			return nil, err
		}
		row := Table5Row{Graph: d, Peak: make(map[System]int64)}
		for _, sys := range Systems() {
			m := numa.NewMachine(t, t.Sockets, t.CoresPerSocket)
			r := Run(sys, PR, g, m)
			row.Peak[sys] = r.PeakBytes
			if sys == Polymer {
				row.AgentBytes = r.AgentBytes
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTable5 renders the memory table in MB (the paper uses GB at full
// scale).
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: peak memory (MB) for PageRank; Polymer's agent bytes in brackets\n")
	fmt.Fprintf(&b, "%-10s%20s%12s%12s%12s\n", "Graph", "Polymer(agent)", "Ligra", "X-Stream", "Galois")
	mb := func(v int64) float64 { return float64(v) / 1e6 }
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s%13.1f(%4.1f)%12.1f%12.1f%12.1f\n", r.Graph,
			mb(r.Peak[Polymer]), mb(r.AgentBytes), mb(r.Peak[Ligra]), mb(r.Peak[XStream]), mb(r.Peak[Galois]))
	}
	return b.String()
}

// AblationRow compares Polymer with and without one optimization for one
// algorithm (paper Figure 10(b), Tables 6(a) and 6(b)).
type AblationRow struct {
	Algo    Algo
	Without float64
	With    float64
}

// ablationStudy runs all six algorithms on the dataset twice, with the
// optimization off (tweak(false)) and on (tweak(true)).
func ablationStudy(t *numa.Topology, sc gen.Scale, d gen.Dataset, tweak func(on bool) core.Options) ([]AblationRow, error) {
	graphs := map[bool]*graphPair{}
	var out []AblationRow
	for _, alg := range Algos() {
		gp := graphs[alg.Weighted()]
		if gp == nil {
			g, err := gen.Load(d, sc, alg.Weighted())
			if err != nil {
				return nil, err
			}
			gp = &graphPair{g: g}
			graphs[alg.Weighted()] = gp
		}
		gr := gp.g
		if alg == CC {
			gr = gp.symmetrized()
		}
		row := AblationRow{Algo: alg}
		for _, on := range []bool{false, true} {
			m := numa.NewMachine(t, t.Sockets, t.CoresPerSocket)
			opt := tweak(on)
			if alg.iterated() {
				opt.Mode = core.Push
			}
			e := core.MustNew(gr, m, opt)
			runSG(e, alg, 0)
			if on {
				row.With = e.SimSeconds()
			} else {
				row.Without = e.SimSeconds()
			}
			e.Close()
		}
		out = append(out, row)
	}
	return out, nil
}

// graphPair caches a dataset and its symmetrized form across ablation
// arms.
type graphPair struct {
	g   *graph.Graph
	sym *graph.Graph
}

func (p *graphPair) symmetrized() *graph.Graph {
	if p.sym == nil {
		p.sym = p.g.Symmetrized()
	}
	return p.sym
}

// Figure10b reproduces the barrier ablation: every algorithm on roadUS
// with the flat P-Barrier ("w/o") versus the NUMA-aware N-Barrier ("w/").
func Figure10b(t *numa.Topology, sc gen.Scale) ([]AblationRow, error) {
	return ablationStudy(t, sc, gen.RoadUS, func(on bool) core.Options {
		opt := core.DefaultOptions()
		if !on {
			opt.Barrier = barrier.P
		}
		return opt
	})
}

// Table6a reproduces the adaptive-data-structure ablation on roadUS.
func Table6a(t *numa.Topology, sc gen.Scale) ([]AblationRow, error) {
	return ablationStudy(t, sc, gen.RoadUS, func(on bool) core.Options {
		opt := core.DefaultOptions()
		opt.Adaptive = on
		return opt
	})
}

// Table6b reproduces the balanced-partitioning ablation on twitter.
func Table6b(t *numa.Topology, sc gen.Scale) ([]AblationRow, error) {
	return ablationStudy(t, sc, gen.Twitter, func(on bool) core.Options {
		opt := core.DefaultOptions()
		opt.EdgeBalanced = on
		return opt
	})
}

// FormatAblation renders a w/o-vs-w/ table.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-6s%14s%14s%10s\n", "Algo", "w/o (s)", "w/ (s)", "speedup")
	for _, r := range rows {
		sp := 0.0
		if r.With > 0 {
			sp = r.Without / r.With
		}
		fmt.Fprintf(&b, "%-6s%14.3f%14.3f%9.2fx\n", r.Algo, r.Without, r.With, sp)
	}
	return b.String()
}
