// The tiered-memory DRAM-fraction sweep: measure the flagship engine
// under shrinking DRAM budgets with the hot-vertex policy against the
// naive uniform-interleave baseline, on the same machine shape and the
// same graph. This is the experiment behind the "tiered memory" section
// of EXPERIMENTS.md and the nightly tier-sweep CI gate: hot placement
// must beat naive interleave on simulated time whenever at most half
// the footprint fits in DRAM.

package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
)

// TierPoint is one tiered measurement: a (policy, DRAM-fraction) cell.
type TierPoint struct {
	Policy     string  `json:"policy"`
	SimSeconds float64 `json:"sim_seconds"`
	// SlowRate is the slow tier's share of all simulated accesses.
	SlowRate float64 `json:"slow_rate"`
}

// TierRow is one (algorithm, DRAM fraction) sweep row: the untiered
// reference clock, both policies' measurements, and the headline ratio.
type TierRow struct {
	Algo Algo `json:"algo"`
	// Frac is the fraction of the untiered peak footprint provisioned as
	// DRAM (split evenly across nodes); DRAMPerNode the resulting budget.
	Frac        float64   `json:"frac"`
	DRAMPerNode int64     `json:"dram_per_node"`
	Untiered    float64   `json:"untiered_sec"`
	Hot         TierPoint `json:"hot"`
	Interleave  TierPoint `json:"interleave"`
	// HotSpeedup is Interleave.SimSeconds / Hot.SimSeconds: >1 means the
	// hot-vertex policy beat the naive baseline at this budget.
	HotSpeedup float64 `json:"hot_speedup"`
}

// TierSweep is a full DRAM-fraction sweep on one graph and machine
// shape.
type TierSweep struct {
	Description string    `json:"description"`
	Graph       string    `json:"graph"`
	Topology    string    `json:"topology"`
	Sockets     int       `json:"sockets"`
	Cores       int       `json:"cores"`
	Rows        []TierRow `json:"rows"`
}

// tieredRun measures one policy cell: a fresh machine armed with the
// tier config, the engine's native placement, and the run's clock plus
// slow-tier share.
func tieredRun(alg Algo, g *graph.Graph, topo *numa.Topology, sockets, cores int, tc numa.TierConfig) (TierPoint, error) {
	m := numa.NewMachine(topo, sockets, cores)
	if tc.Tiered() {
		if err := m.SetTierConfig(tc); err != nil {
			return TierPoint{}, err
		}
	}
	r, err := RunPlacedFrom(Polymer, alg, g, m, 0, mem.CoLocated)
	if err != nil {
		return TierPoint{}, err
	}
	return TierPoint{Policy: tc.Policy.String(), SimSeconds: r.SimSeconds, SlowRate: r.Stats.SlowRate}, nil
}

// RunTierSweep sweeps algos x fracs on g: for each algorithm an
// untiered probe establishes the peak footprint and reference clock,
// then each DRAM fraction is measured under both the hot-vertex policy
// and the naive interleave baseline. promoteEvery <= 0 defaults to one
// promotion pass per phase.
func RunTierSweep(name string, g *graph.Graph, topo *numa.Topology, sockets, cores int, algos []Algo, fracs []float64, promoteEvery int) (*TierSweep, error) {
	if promoteEvery <= 0 {
		promoteEvery = 1
	}
	ts := &TierSweep{
		Description: "Polymer hot-vertex tiering vs naive interleave across DRAM fractions of the untiered peak footprint",
		Graph:       name,
		Topology:    topo.Name,
		Sockets:     sockets,
		Cores:       cores,
	}
	sorted := append([]float64(nil), fracs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	for _, alg := range algos {
		base, err := RunPlacedFrom(Polymer, alg, g, numa.NewMachine(topo, sockets, cores), 0, mem.CoLocated)
		if err != nil {
			return nil, fmt.Errorf("bench: untiered %s probe: %w", alg, err)
		}
		for _, frac := range sorted {
			dram := int64(frac * float64(base.PeakBytes) / float64(sockets))
			if dram < 1 {
				dram = 1
			}
			row := TierRow{Algo: alg, Frac: frac, DRAMPerNode: dram, Untiered: base.SimSeconds}
			hot := numa.TierConfig{DRAMPerNode: dram, Policy: numa.TierHot, PromoteEvery: promoteEvery}
			if row.Hot, err = tieredRun(alg, g, topo, sockets, cores, hot); err != nil {
				return nil, fmt.Errorf("bench: tiered %s hot@%.2f: %w", alg, frac, err)
			}
			il := numa.TierConfig{DRAMPerNode: dram, Policy: numa.TierInterleave}
			if row.Interleave, err = tieredRun(alg, g, topo, sockets, cores, il); err != nil {
				return nil, fmt.Errorf("bench: tiered %s interleave@%.2f: %w", alg, frac, err)
			}
			if row.Hot.SimSeconds > 0 {
				row.HotSpeedup = row.Interleave.SimSeconds / row.Hot.SimSeconds
			}
			ts.Rows = append(ts.Rows, row)
		}
	}
	return ts, nil
}

// Gate enforces the sweep's acceptance ordering, per row:
//
//   - a tiered run never beats the untiered clock (the slow tier can
//     only cost more), under either policy;
//   - whenever at most half the footprint fits in DRAM, the hot-vertex
//     policy strictly beats naive interleave for PR and BFS.
//
// The orderings compare two clocks from the same sweep, so they are
// robust to the statistical (non-bit-deterministic) scheduling noise of
// the traversal kernels.
func (ts *TierSweep) Gate() error {
	var errs []string
	for _, r := range ts.Rows {
		if r.Hot.SimSeconds < r.Untiered || r.Interleave.SimSeconds < r.Untiered {
			errs = append(errs, fmt.Sprintf("%s@%.2f: tiered run beat the untiered clock (hot=%v il=%v untiered=%v)",
				r.Algo, r.Frac, r.Hot.SimSeconds, r.Interleave.SimSeconds, r.Untiered))
		}
		if r.Frac <= 0.5 && (r.Algo == PR || r.Algo == BFS) && r.Hot.SimSeconds >= r.Interleave.SimSeconds {
			errs = append(errs, fmt.Sprintf("%s@%.2f: hot policy (%v) did not beat naive interleave (%v)",
				r.Algo, r.Frac, r.Hot.SimSeconds, r.Interleave.SimSeconds))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("tier sweep gate: %s", strings.Join(errs, "; "))
	}
	return nil
}

// CompareTierBaseline checks the sweep against a checked-in baseline:
// every (algo, frac) cell present in both must retain at least tol of
// the baseline's hot-vs-interleave speedup (tol 0.8 = a 20% regression
// budget for model recalibrations).
func CompareTierBaseline(cur, base *TierSweep, tol float64) error {
	type key struct {
		a Algo
		f float64
	}
	idx := map[key]TierRow{}
	for _, r := range base.Rows {
		idx[key{r.Algo, r.Frac}] = r
	}
	var errs []string
	for _, r := range cur.Rows {
		b, ok := idx[key{r.Algo, r.Frac}]
		if !ok || b.HotSpeedup <= 0 {
			continue
		}
		if r.HotSpeedup < tol*b.HotSpeedup {
			errs = append(errs, fmt.Sprintf("%s@%.2f: hot speedup %.3f fell below %.0f%% of baseline %.3f",
				r.Algo, r.Frac, r.HotSpeedup, tol*100, b.HotSpeedup))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("tier baseline: %s", strings.Join(errs, "; "))
	}
	return nil
}

// FormatTierSweep renders the sweep as the aligned table the CLI
// prints.
func FormatTierSweep(ts *TierSweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tier sweep: %s on %s (%dx%d), Polymer co-located\n", ts.Graph, ts.Topology, ts.Sockets, ts.Cores)
	fmt.Fprintf(&b, "%-6s %5s %14s %14s %9s %14s %9s %8s\n",
		"algo", "frac", "untiered", "hot", "slow%", "interleave", "slow%", "speedup")
	for _, r := range ts.Rows {
		fmt.Fprintf(&b, "%-6s %5.2f %14.9f %14.9f %8.1f%% %14.9f %8.1f%% %7.2fx\n",
			r.Algo, r.Frac, r.Untiered,
			r.Hot.SimSeconds, 100*r.Hot.SlowRate,
			r.Interleave.SimSeconds, 100*r.Interleave.SlowRate,
			r.HotSpeedup)
	}
	return b.String()
}

// MarshalTierSweep renders the sweep as the JSON artifact the nightly
// job uploads and BENCH_tiering.json pins.
func MarshalTierSweep(ts *TierSweep) ([]byte, error) {
	out, err := json.MarshalIndent(ts, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
