package bench

import (
	"fmt"
	"strings"
	"time"

	"polymer/internal/barrier"
	"polymer/internal/numa"
	"polymer/internal/par"
)

// LatencyRow is one row of the paper's Figure 3(b): access latency in
// cycles by hop distance, measured with a simulated pointer chase.
type LatencyRow struct {
	Inst   string // "Load" or "Store"
	Cycles []float64
}

// LatencyTable reproduces Figure 3(b) for a topology by running a
// latency-bound microbenchmark on the simulated machine (one dependent
// access at a time, the ccbench methodology).
func LatencyTable(t *numa.Topology) []LatencyRow {
	m := numa.NewMachine(t, t.Sockets, 1)
	levels := t.MaxLevel() + 1
	rows := []LatencyRow{{Inst: "Load"}, {Inst: "Store"}}
	for lvl := 0; lvl < levels; lvl++ {
		// Find a node at this level from node 0.
		target := -1
		for n := 0; n < m.Nodes; n++ {
			if m.Level(0, n) == lvl {
				target = n
				break
			}
		}
		if target < 0 {
			rows[0].Cycles = append(rows[0].Cycles, 0)
			rows[1].Cycles = append(rows[1].Cycles, 0)
			continue
		}
		const ops = 1 << 20
		for i, op := range []numa.Op{numa.Load, numa.Store} {
			ep := m.NewEpoch()
			ep.LatencyBound(0, op, target, ops)
			cycles := ep.Time() * t.ClockGHz * 1e9 / ops
			rows[i].Cycles = append(rows[i].Cycles, cycles)
		}
	}
	return rows
}

// FormatLatencyTable renders the Figure 3(b) rows.
func FormatLatencyTable(t *numa.Topology, rows []LatencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3(b): access latency (cycles) by distance — %s\n", t.Name)
	fmt.Fprintf(&b, "%-8s", "Inst.")
	for l := 0; l <= t.MaxLevel(); l++ {
		fmt.Fprintf(&b, "%12s", levelName(t, l))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Inst)
		for _, c := range r.Cycles {
			fmt.Fprintf(&b, "%12.0f", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BandwidthRow is one row of the paper's Figure 4: MB/s by distance plus
// the interleaved case.
type BandwidthRow struct {
	Access      string // "Sequential" or "Random"
	MBps        []float64
	Interleaved float64
}

// BandwidthTable reproduces Figure 4 by streaming a fixed volume through
// the simulated machine at each distance.
func BandwidthTable(t *numa.Topology) []BandwidthRow {
	m := numa.NewMachine(t, t.Sockets, 1)
	const bytes = 64 << 20
	rows := []BandwidthRow{{Access: "Sequential"}, {Access: "Random"}}
	for lvl := 0; lvl <= t.MaxLevel(); lvl++ {
		target := -1
		for n := 0; n < m.Nodes; n++ {
			if m.Level(0, n) == lvl {
				target = n
				break
			}
		}
		for i, pat := range []numa.Pattern{numa.Seq, numa.Rand} {
			if target < 0 {
				rows[i].MBps = append(rows[i].MBps, 0)
				continue
			}
			ep := m.NewEpoch()
			// Uncacheable working set: the paper's numademo streams far
			// beyond the LLC.
			ep.Access(0, pat, numa.Load, target, bytes/8, 8, 1<<40)
			rows[i].MBps = append(rows[i].MBps, bytes/ep.Time()/1e6)
		}
	}
	for i, pat := range []numa.Pattern{numa.Seq, numa.Rand} {
		ep := m.NewEpoch()
		ep.AccessInterleaved(0, pat, numa.Load, bytes/8, 8, 1<<40)
		rows[i].Interleaved = bytes / ep.Time() / 1e6
	}
	return rows
}

// FormatBandwidthTable renders the Figure 4 rows.
func FormatBandwidthTable(t *numa.Topology, rows []BandwidthRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: memory bandwidth (MB/s) by distance — %s\n", t.Name)
	fmt.Fprintf(&b, "%-12s", "Access")
	for l := 0; l <= t.MaxLevel(); l++ {
		fmt.Fprintf(&b, "%12s", levelName(t, l))
	}
	fmt.Fprintf(&b, "%14s\n", "Interleaved")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Access)
		for _, v := range r.MBps {
			fmt.Fprintf(&b, "%12.0f", v)
		}
		fmt.Fprintf(&b, "%14.0f\n", r.Interleaved)
	}
	return b.String()
}

func levelName(t *numa.Topology, lvl int) string {
	if t.MaxLevel() == 3 {
		// AMD: 0-hop, two 1-hop flavours, 2-hop.
		return [...]string{"0-hop", "1-hop(in)", "1-hop(out)", "2-hop"}[lvl]
	}
	return fmt.Sprintf("%d-hop", lvl)
}

// BarrierPoint is one point of Figure 10(a): the synchronization cost of
// the three barriers at a socket count. Model is the calibrated cost the
// engines charge; Measured is the wall-clock time of the real Go
// implementation on this host (shape check only).
type BarrierPoint struct {
	Sockets  int
	Model    map[barrier.Kind]float64
	Measured map[barrier.Kind]float64
}

// BarrierStudy reproduces Figure 10(a) for 1..maxSockets sockets with
// coresPerSocket threads each.
func BarrierStudy(maxSockets, coresPerSocket, rounds int) []BarrierPoint {
	var out []BarrierPoint
	for s := 1; s <= maxSockets; s++ {
		p := BarrierPoint{
			Sockets:  s,
			Model:    make(map[barrier.Kind]float64),
			Measured: make(map[barrier.Kind]float64),
		}
		for _, k := range []barrier.Kind{barrier.P, barrier.H, barrier.N} {
			p.Model[k] = barrier.SyncCost(k, s)
			p.Measured[k] = measureBarrier(k, s, coresPerSocket, rounds)
		}
		out = append(out, p)
	}
	return out
}

func measureBarrier(k barrier.Kind, sockets, cpn, rounds int) float64 {
	b := barrier.New(k, sockets, cpn)
	pool := par.MustNewPool(sockets * cpn)
	defer pool.Close()
	start := time.Now()
	pool.Run(func(th int) {
		for r := 0; r < rounds; r++ {
			b.Wait(th)
		}
	})
	return time.Since(start).Seconds() / float64(rounds)
}

// FormatBarrierStudy renders Figure 10(a).
func FormatBarrierStudy(points []BarrierPoint) string {
	var b strings.Builder
	b.WriteString("Figure 10(a): barrier synchronization cost (model usec / measured usec)\n")
	fmt.Fprintf(&b, "%-9s%24s%24s%24s\n", "Sockets", "P-Barrier", "H-Barrier", "N-Barrier")
	for _, p := range points {
		fmt.Fprintf(&b, "%-9d", p.Sockets)
		for _, k := range []barrier.Kind{barrier.P, barrier.H, barrier.N} {
			fmt.Fprintf(&b, "%14.1f /%7.1f", p.Model[k]*1e6, p.Measured[k]*1e6)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
