// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6): the NUMA microbenchmarks (Figures 3(b) and 4),
// the scalability studies (Figures 5, 7, 8, 9), the overall runtimes
// (Table 3), the access statistics (Table 4), memory consumption
// (Table 5), the barrier study (Figure 10), and the optimization
// ablations (Table 6, Figure 11). Each experiment returns a structured
// result plus a formatter that prints the same rows/series the paper
// reports.
package bench

import (
	"fmt"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/galois"
	"polymer/internal/engines/ligra"
	"polymer/internal/engines/xstream"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/sg"
)

// System names one of the four evaluated systems.
type System string

// The four systems of the paper's Table 3.
const (
	Polymer System = "Polymer"
	Ligra   System = "Ligra"
	XStream System = "X-Stream"
	Galois  System = "Galois"
)

// Systems lists all four in the paper's column order.
func Systems() []System { return []System{Polymer, Ligra, XStream, Galois} }

// Algo names one of the six evaluation algorithms.
type Algo string

// The six algorithms of Section 6.1.
const (
	PR   Algo = "PR"
	SpMV Algo = "SpMV"
	BP   Algo = "BP"
	BFS  Algo = "BFS"
	CC   Algo = "CC"
	SSSP Algo = "SSSP"
)

// Algos lists all six in the paper's Table 3 row order.
func Algos() []Algo { return []Algo{PR, SpMV, BP, BFS, CC, SSSP} }

// Weighted reports whether the algorithm needs edge weights (the paper
// adds random weights in (0,100] for SpMV and SSSP; our BP also consumes
// them).
func (a Algo) Weighted() bool { return a == SpMV || a == SSSP || a == BP }

// iterated reports whether the paper measures a fixed number of
// iterations ("the first five iterations for PageRank, SpMV and BP").
func (a Algo) iterated() bool { return a == PR || a == SpMV || a == BP }

// RunResult captures one system x algorithm x graph execution.
type RunResult struct {
	System     System
	Algo       Algo
	SimSeconds float64
	Stats      numa.Stats
	// PeakBytes is the peak simulated allocation during the run.
	PeakBytes int64
	// AgentBytes is Polymer's replica overhead (zero for baselines).
	AgentBytes int64
	// ThreadSeconds is per-thread busy time (scatter-gather systems).
	ThreadSeconds []float64
	// Checksum is a result fingerprint used to confirm engines computed
	// the same answer.
	Checksum float64
}

const (
	defaultIters   = 5
	defaultDamping = 0.85
)

// Run executes one cell of the evaluation matrix on a fresh machine
// instance, using vertex 0 as the traversal source. The graph must carry
// weights if the algorithm needs them; CC is symmetrized internally.
func Run(sys System, alg Algo, g *graph.Graph, m *numa.Machine) RunResult {
	return RunFrom(sys, alg, g, m, 0)
}

// RunFrom is Run with an explicit source vertex for BFS and SSSP.
func RunFrom(sys System, alg Algo, g *graph.Graph, m *numa.Machine, src graph.Vertex) RunResult {
	return RunWithTracer(sys, alg, g, m, src, nil)
}

// RunPlacedFrom is RunFrom with an explicit vertex-state placement
// policy. Only Polymer exposes a placement knob (core.Options.Layout);
// for the baselines the argument must be mem.Interleaved, their native
// layout — anything else is a configuration error. The planner's oracle
// sweep uses it to measure every (engine, placement) candidate honestly.
func RunPlacedFrom(sys System, alg Algo, g *graph.Graph, m *numa.Machine, src graph.Vertex, layout mem.Placement) (RunResult, error) {
	if sys != Polymer && layout != mem.Interleaved {
		return RunResult{}, fmt.Errorf("bench: %s only supports interleaved placement (got %s)", sys, layout)
	}
	if sys != Polymer {
		return RunWithTracer(sys, alg, g, m, src, nil), nil
	}
	if alg == CC {
		g = g.Symmetrized()
	}
	opt := core.DefaultOptions()
	opt.Layout = layout
	if alg.iterated() {
		opt.Mode = core.Push
	}
	e, err := core.New(g, m, opt)
	if err != nil {
		return RunResult{}, err
	}
	defer e.Close()
	r := RunResult{System: sys, Algo: alg}
	r.Checksum = runSG(e, alg, src)
	r.SimSeconds = e.SimSeconds()
	r.Stats = e.RunStats()
	r.PeakBytes = m.Alloc().Peak()
	r.AgentBytes = m.Alloc().Label("polymer/agents")
	r.ThreadSeconds = e.ThreadSeconds()
	return r, nil
}

// RunWithTracer is RunFrom with an obs tracer installed on the engine
// before the run; tr == nil is exactly RunFrom (tracing disabled). A
// traced run's simulated output is bit-identical to an untraced one.
func RunWithTracer(sys System, alg Algo, g *graph.Graph, m *numa.Machine, src graph.Vertex, tr *obs.Tracer) RunResult {
	if alg == CC {
		g = g.Symmetrized()
	}
	r := RunResult{System: sys, Algo: alg}
	switch sys {
	case Polymer, Ligra:
		var e sg.Engine
		if sys == Polymer {
			opt := core.DefaultOptions()
			if alg.iterated() {
				opt.Mode = core.Push
			}
			ce := core.MustNew(g, m, opt)
			ce.SetTracer(tr)
			e = ce
		} else {
			le := ligra.MustNew(g, m, ligra.DefaultOptions())
			le.SetTracer(tr)
			e = le
		}
		r.Checksum = runSG(e, alg, src)
		r.SimSeconds = e.SimSeconds()
		r.Stats = e.RunStats()
		r.PeakBytes = m.Alloc().Peak()
		r.AgentBytes = m.Alloc().Label("polymer/agents")
		r.ThreadSeconds = e.ThreadSeconds()
		e.Close()
	case XStream:
		h := xsHints(alg)
		e := xstream.MustNew(g, m, xstream.DefaultOptions(), h)
		e.SetTracer(tr)
		r.Checksum = runXS(e, alg, src)
		r.SimSeconds = e.SimSeconds()
		r.Stats = e.RunStats()
		r.PeakBytes = m.Alloc().Peak()
		e.Close()
	case Galois:
		e := galois.MustNew(g, m, galois.DefaultOptions())
		e.SetTracer(tr)
		r.Checksum = runGalois(e, alg, src)
		r.SimSeconds = e.SimSeconds()
		r.Stats = e.RunStats()
		r.PeakBytes = m.Alloc().Peak()
		e.Close()
	default:
		panic(fmt.Sprintf("bench: unknown system %q", sys))
	}
	return r
}

func runSG(e sg.Engine, alg Algo, src graph.Vertex) float64 {
	n := e.Graph().NumVertices()
	switch alg {
	case PR:
		return sum(algorithms.PageRank(e, defaultIters, defaultDamping))
	case SpMV:
		return sum(algorithms.SpMV(e, defaultIters, ones(n)))
	case BP:
		return sum(algorithms.BP(e, defaultIters))
	case BFS:
		return sumI(algorithms.BFS(e, src))
	case CC:
		return sumV(algorithms.CC(e))
	case SSSP:
		return sumFinite(algorithms.SSSP(e, src))
	}
	panic("bench: unknown algorithm")
}

func runXS(e *xstream.Engine, alg Algo, src graph.Vertex) float64 {
	n := e.Graph().NumVertices()
	switch alg {
	case PR:
		return sum(algorithms.XSPageRank(e, defaultIters, defaultDamping))
	case SpMV:
		return sum(algorithms.XSSpMV(e, defaultIters, ones(n)))
	case BP:
		return sum(algorithms.XSBP(e, defaultIters))
	case BFS:
		return sumI(algorithms.XSBFS(e, src))
	case CC:
		return sumV(algorithms.XSCC(e))
	case SSSP:
		return sumFinite(algorithms.XSSSSP(e, src))
	}
	panic("bench: unknown algorithm")
}

func runGalois(e *galois.Engine, alg Algo, src graph.Vertex) float64 {
	n := e.Graph().NumVertices()
	switch alg {
	case PR:
		return sum(e.PageRank(defaultIters, defaultDamping))
	case SpMV:
		return sum(e.SpMV(defaultIters, ones(n)))
	case BP:
		return sum(e.BP(defaultIters))
	case BFS:
		return sumI(e.BFS(src))
	case CC:
		return sumV(e.CC())
	case SSSP:
		return sumFinite(e.SSSP(src))
	}
	panic("bench: unknown algorithm")
}

func xsHints(alg Algo) sg.Hints {
	h := sg.Hints{DataBytes: 8, Weighted: alg.Weighted()}
	if alg == BP {
		h.DataBytes = 16
	}
	if alg == BFS || alg == CC {
		h.DataBytes = 8 // levels/labels as float64 values
	}
	return h
}

func ones(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func sumFinite(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		if x < 1e300 {
			s += x
		}
	}
	return s
}

func sumI(xs []int64) float64 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s
}

func sumV(xs []graph.Vertex) float64 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s
}

// LoadDataset fetches a named dataset weighted appropriately for alg.
func LoadDataset(d gen.Dataset, sc gen.Scale, alg Algo) (*graph.Graph, error) {
	return gen.Load(d, sc, alg.Weighted())
}

// RunPolymerTraced is RunFrom for the Polymer system with phase tracing
// enabled; it additionally returns the per-phase execution records.
func RunPolymerTraced(alg Algo, g *graph.Graph, m *numa.Machine, src graph.Vertex) (RunResult, []core.PhaseRecord) {
	if alg == CC {
		g = g.Symmetrized()
	}
	opt := core.DefaultOptions()
	opt.Trace = true
	if alg.iterated() {
		opt.Mode = core.Push
	}
	e := core.MustNew(g, m, opt)
	r := RunResult{System: Polymer, Algo: alg}
	r.Checksum = runSG(e, alg, src)
	r.SimSeconds = e.SimSeconds()
	r.Stats = e.RunStats()
	r.PeakBytes = m.Alloc().Peak()
	r.AgentBytes = m.Alloc().Label("polymer/agents")
	r.ThreadSeconds = e.ThreadSeconds()
	tr := e.Trace()
	e.Close()
	return r, tr
}
