package bench

import (
	"polymer/internal/numa"
	"polymer/internal/obs"
)

// TraceMicro replays the Figure 4 bandwidth sweep through the obs event
// schema: one superstep event per access-class cell (pattern × hop level,
// plus the interleaved cases), each carrying its traffic matrix, so
// numabench's -trace output exercises exactly the same sinks — breakdown
// tables and Chrome export — as the engines do. Events ride the simulated
// clock, so the emitted trace is deterministic.
func TraceMicro(t *numa.Topology, tr *obs.Tracer) {
	m := numa.NewMachine(t, t.Sockets, 1)
	const bytes = 64 << 20
	var clock float64
	step := 0
	emit := func(ep *numa.Epoch) {
		dur := ep.Time()
		tm := &numa.TrafficMatrix{}
		ep.Traffic(tm)
		tr.Superstep("numabench", step, clock, dur, tm)
		clock += dur
		step++
	}
	for _, pat := range []numa.Pattern{numa.Seq, numa.Rand} {
		for lvl := 0; lvl <= t.MaxLevel(); lvl++ {
			target := -1
			for n := 0; n < m.Nodes; n++ {
				if m.Level(0, n) == lvl {
					target = n
					break
				}
			}
			if target < 0 {
				continue
			}
			ep := m.NewEpoch()
			ep.Access(0, pat, numa.Load, target, bytes/8, 8, 1<<40)
			emit(ep)
		}
		ep := m.NewEpoch()
		ep.AccessInterleaved(0, pat, numa.Load, bytes/8, 8, 1<<40)
		emit(ep)
	}
}
