package barrier

import (
	"sync"
	"testing"
)

func benchBarrier(b *testing.B, kind Kind) {
	const threads = 4
	bar := New(kind, 2, 2)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				bar.Wait(th)
			}
		}(th)
	}
	wg.Wait()
}

func BenchmarkPBarrier(b *testing.B) { benchBarrier(b, P) }
func BenchmarkHBarrier(b *testing.B) { benchBarrier(b, H) }
func BenchmarkNBarrier(b *testing.B) { benchBarrier(b, N) }
