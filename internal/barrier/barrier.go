// Package barrier provides the three synchronization barriers the paper
// compares (Section 5, Figure 10):
//
//   - PBarrier: a flat barrier where every participant waits on one shared
//     monitor and blocks in the scheduler — the analogue of
//     pthread_barrier, whose kernel traps and global cache-coherence
//     broadcasts make inter-node synchronization an order of magnitude
//     more expensive than intra-node;
//   - HBarrier: the same blocking barrier arranged hierarchically —
//     threads synchronize within their NUMA node first and only the last
//     thread of each group crosses the inter-node barrier;
//   - NBarrier: Polymer's NUMA-aware barrier — the hierarchical structure
//     with each level replaced by a user-level sense-reversing barrier
//     built on atomic fetch-and-add [Mellor-Crummey & Scott].
//
// All three are real, usable barriers for goroutine worker pools. Their
// simulated synchronization cost (what the paper measures in Figure 10(a))
// is provided by SyncCost, calibrated to the paper's endpoints.
package barrier

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Kind selects a barrier implementation.
type Kind uint8

const (
	// P is the flat blocking barrier (models pthread_barrier).
	P Kind = iota
	// H is the hierarchical blocking barrier.
	H
	// N is Polymer's hierarchical sense-reversing atomic barrier.
	N
)

// String names the kind as in the paper's Figure 10(a).
func (k Kind) String() string {
	switch k {
	case P:
		return "P-Barrier"
	case H:
		return "H-Barrier"
	default:
		return "N-Barrier"
	}
}

// Barrier synchronizes a fixed set of worker threads. Wait blocks thread
// th (a dense id in [0, threads)) until all threads have arrived.
type Barrier interface {
	Wait(th int)
}

// New constructs a barrier of the given kind for nodes*coresPerNode
// threads, with thread th belonging to node th/coresPerNode.
func New(kind Kind, nodes, coresPerNode int) Barrier {
	if nodes < 1 || coresPerNode < 1 {
		panic("barrier: need at least one node and one core")
	}
	switch kind {
	case P:
		return &flatWrap{b: newBlocking(nodes * coresPerNode)}
	case H:
		return newHierarchical(nodes, coresPerNode, func(k int) waiter { return newBlocking(k) })
	default:
		return newHierarchical(nodes, coresPerNode, func(k int) waiter { return newSense(k) })
	}
}

// waiter is the internal single-level barrier: all k participants call
// wait; the call returns once all have arrived.
type waiter interface {
	wait()
}

type flatWrap struct{ b waiter }

func (f *flatWrap) Wait(int) { f.b.wait() }

// blocking is a monitor-based barrier (mutex + condvar) with a generation
// counter so it is reusable.
type blocking struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total int
	count int
	gen   uint64
}

func newBlocking(total int) *blocking {
	b := &blocking{total: total}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *blocking) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.total {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// sense is a sense-reversing centralized barrier using atomic
// fetch-and-add, the building block of Polymer's N-Barrier.
type sense struct {
	count atomic.Int64
	gen   atomic.Uint64
	total int64
}

func newSense(total int) *sense { return &sense{total: int64(total)} }

func (s *sense) wait() {
	gen := s.gen.Load()
	if s.count.Add(1) == s.total {
		s.count.Store(0)
		s.gen.Add(1)
		return
	}
	for s.gen.Load() == gen {
		runtime.Gosched()
	}
}

// hierarchical composes per-node arrival barriers, a cross-node barrier
// among group leaders, and per-node release barriers.
type hierarchical struct {
	cpn     int
	arrive  []waiter // per node, cpn participants
	release []waiter // per node, cpn participants
	global  waiter   // nodes participants
}

func newHierarchical(nodes, cpn int, mk func(int) waiter) *hierarchical {
	h := &hierarchical{cpn: cpn, global: mk(nodes)}
	if cpn > 1 {
		h.arrive = make([]waiter, nodes)
		h.release = make([]waiter, nodes)
		for i := range h.arrive {
			h.arrive[i] = mk(cpn)
			h.release[i] = mk(cpn)
		}
	}
	return h
}

func (h *hierarchical) Wait(th int) {
	if h.cpn == 1 {
		h.global.wait()
		return
	}
	node := th / h.cpn
	h.arrive[node].wait()
	if th%h.cpn == 0 {
		h.global.wait()
	}
	h.release[node].wait()
}

// SyncCost returns the simulated cost in seconds of one barrier crossing
// on the given number of sockets, calibrated to the paper's Figure 10(a)
// measurements: the flat pthread barrier costs ~30 microseconds within one
// node and ~6182 microseconds across eight sockets; the hierarchical
// variant ~612 microseconds; Polymer's atomic hierarchical barrier ~8
// microseconds. Costs follow fitted power laws between those endpoints.
func SyncCost(kind Kind, sockets int) float64 {
	if sockets < 1 {
		sockets = 1
	}
	s := float64(sockets)
	switch kind {
	case P:
		// 30us x s^2.562 -> 6182us at s=8.
		return 30e-6 * math.Pow(s, 2.562)
	case H:
		// 30us x s^1.447 -> 612us at s=8.
		return 30e-6 * math.Pow(s, 1.447)
	default:
		// 2us x s^0.667 -> 8us at s=8.
		return 2e-6 * math.Pow(s, 0.667)
	}
}
