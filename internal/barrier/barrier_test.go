package barrier

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// exercise runs threads goroutines through rounds barrier crossings and
// verifies the fundamental barrier invariant: no thread enters round r+1
// before every thread has finished round r.
func exercise(t *testing.T, b Barrier, threads, rounds int) {
	t.Helper()
	var inRound atomic.Int64 // counts arrivals in the current round
	var wg sync.WaitGroup
	failed := atomic.Bool{}
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				inRound.Add(1)
				b.Wait(th)
				// After the barrier, all threads of this round must have
				// arrived: the counter must be at least (r+1)*threads.
				if got := inRound.Load(); got < int64((r+1)*threads) {
					failed.Store(true)
				}
				b.Wait(th) // second crossing separates the check from the next round
			}
		}(th)
	}
	wg.Wait()
	if failed.Load() {
		t.Fatal("a thread passed the barrier before all arrived")
	}
}

func TestBarrierCorrectness(t *testing.T) {
	shapes := []struct{ nodes, cpn int }{
		{1, 1}, {1, 4}, {4, 1}, {2, 3}, {4, 4}, {8, 2},
	}
	for _, kind := range []Kind{P, H, N} {
		for _, sh := range shapes {
			b := New(kind, sh.nodes, sh.cpn)
			exercise(t, b, sh.nodes*sh.cpn, 25)
		}
	}
}

func TestBarrierReusableManyRounds(t *testing.T) {
	b := New(N, 2, 2)
	exercise(t, b, 4, 500)
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, sh := range []struct{ nodes, cpn int }{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", sh.nodes, sh.cpn)
				}
			}()
			New(P, sh.nodes, sh.cpn)
		}()
	}
}

func TestSyncCostCalibration(t *testing.T) {
	// Paper Figure 10(a) endpoints (within 5%).
	within := func(got, want float64) bool { return math.Abs(got-want)/want < 0.05 }
	if !within(SyncCost(P, 1), 30e-6) {
		t.Fatalf("P at 1 socket = %v, want ~30us", SyncCost(P, 1))
	}
	if !within(SyncCost(P, 8), 6182e-6) {
		t.Fatalf("P at 8 sockets = %v, want ~6182us", SyncCost(P, 8))
	}
	if !within(SyncCost(H, 8), 612e-6) {
		t.Fatalf("H at 8 sockets = %v, want ~612us", SyncCost(H, 8))
	}
	if !within(SyncCost(N, 8), 8e-6) {
		t.Fatalf("N at 8 sockets = %v, want ~8us", SyncCost(N, 8))
	}
}

func TestSyncCostOrdering(t *testing.T) {
	// At every socket count: N <= H <= P, and costs grow with sockets.
	for s := 1; s <= 8; s++ {
		if !(SyncCost(N, s) <= SyncCost(H, s) && SyncCost(H, s) <= SyncCost(P, s)) {
			t.Fatalf("ordering violated at %d sockets", s)
		}
		if s > 1 {
			for _, k := range []Kind{P, H, N} {
				if SyncCost(k, s) <= SyncCost(k, s-1) {
					t.Fatalf("%v cost must grow with sockets", k)
				}
			}
		}
	}
	// An order-of-magnitude gap between H and P at 8 sockets, and two
	// more orders between N and H (paper Section 6.6).
	if SyncCost(P, 8)/SyncCost(H, 8) < 8 {
		t.Fatal("H must be ~10x cheaper than P at 8 sockets")
	}
	if SyncCost(H, 8)/SyncCost(N, 8) < 50 {
		t.Fatal("N must be ~2 orders cheaper than H at 8 sockets")
	}
}

func TestSyncCostClampsSockets(t *testing.T) {
	if SyncCost(P, 0) != SyncCost(P, 1) {
		t.Fatal("sockets < 1 must clamp to 1")
	}
}

func TestKindString(t *testing.T) {
	if P.String() != "P-Barrier" || H.String() != "H-Barrier" || N.String() != "N-Barrier" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestSenseBarrierDirect(t *testing.T) {
	// The sense-reversing primitive must be reusable back-to-back.
	s := newSense(3)
	var wg sync.WaitGroup
	var counter atomic.Int64
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				counter.Add(1)
				s.wait()
				if counter.Load() < int64((r+1)*3) {
					t.Error("sense barrier released early")
					return
				}
				s.wait()
			}
		}()
	}
	wg.Wait()
}
