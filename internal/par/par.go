// Package par provides the minimal parallel-execution machinery the
// engines share: a pool of persistent worker goroutines (one per simulated
// hardware thread) and a dynamic chunk scheduler for intra-node load
// balancing (the paper's "each worker thread dynamically fetches a portion
// of tasks after finishing its previous tasks").
package par

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"polymer/internal/obs"
)

// Pool runs phases across a fixed set of worker goroutines. Workers are
// persistent: spawning happens once, and each Run dispatches one function
// to every worker and waits for all of them — the join is the phase
// barrier.
type Pool struct {
	n     int
	start []chan func(int)
	wg    sync.WaitGroup
	once  sync.Once

	// hook, when set, runs on every worker at dispatch time before the
	// phase function; a non-nil return aborts that worker's share of the
	// phase (the fault injector uses it to take simulated nodes offline,
	// panic or stall individual workers).
	hook atomic.Pointer[func(th int) error]

	// trace, when set, times each Run dispatch on the host clock and
	// emits a span in the obs host lane. Loaded once per Run: the
	// disabled path costs one atomic load.
	trace atomic.Pointer[obs.Tracer]

	errMu  sync.Mutex
	runErr error
}

// PanicError is a worker panic recovered by Run, carrying the worker's
// thread id and stack.
type PanicError struct {
	Thread int
	Value  any
	Stack  []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("par: worker %d panicked: %v", p.Thread, p.Value)
}

// Unwrap exposes a panicked error value for errors.Is/As.
func (p *PanicError) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// NewPool starts threads persistent workers. It returns an error for a
// non-positive thread count instead of panicking, so callers constructing
// pools from user-supplied configuration can fail gracefully.
func NewPool(threads int) (*Pool, error) {
	if threads < 1 {
		return nil, fmt.Errorf("par: need at least one thread, got %d", threads)
	}
	p := &Pool{n: threads, start: make([]chan func(int), threads)}
	for i := range p.start {
		p.start[i] = make(chan func(int), 1)
		go func(th int) {
			for fn := range p.start[th] {
				fn(th)
				p.wg.Done()
			}
		}(i)
	}
	return p, nil
}

// MustNewPool is NewPool panicking on error, for statically valid
// configurations (tests, benchmarks).
func MustNewPool(threads int) *Pool {
	p, err := NewPool(threads)
	if err != nil {
		panic(err)
	}
	return p
}

// Threads returns the worker count.
func (p *Pool) Threads() int { return p.n }

// SetHook installs (or, with nil, removes) the per-dispatch fault hook.
// The hook runs on each worker before the phase function: returning an
// error makes that worker skip its share of the phase and Run report the
// error; a panic inside the hook is recovered like any worker panic.
func (p *Pool) SetHook(h func(th int) error) {
	if h == nil {
		p.hook.Store(nil)
		return
	}
	p.hook.Store(&h)
}

// SetTracer installs (or, with nil, removes) the pool's tracer. When set,
// every Run emits a host-lane "pool.run" span covering dispatch to join.
func (p *Pool) SetTracer(tr *obs.Tracer) {
	if tr == nil {
		p.trace.Store(nil)
		return
	}
	p.trace.Store(tr)
}

func (p *Pool) setErr(err error) {
	p.errMu.Lock()
	if p.runErr == nil {
		p.runErr = err
	}
	p.errMu.Unlock()
}

// Run executes fn(th) on every worker and blocks until all finish. A
// worker panic is recovered into a *PanicError (first failure wins) so one
// crashing worker cannot take down the process; the remaining workers
// still complete the phase, keeping the pool reusable.
func (p *Pool) Run(fn func(th int)) error {
	p.runErr = nil
	hook := p.hook.Load()
	wrapped := func(th int) {
		defer func() {
			if r := recover(); r != nil {
				p.setErr(&PanicError{Thread: th, Value: r, Stack: debug.Stack()})
			}
		}()
		if hook != nil {
			if err := (*hook)(th); err != nil {
				p.setErr(err)
				return
			}
		}
		fn(th)
	}
	tr := p.trace.Load()
	var dispatched float64
	if tr != nil {
		dispatched = obs.NowMicros()
	}
	p.wg.Add(p.n)
	for i := range p.start {
		p.start[i] <- wrapped
	}
	p.wg.Wait()
	if tr != nil {
		tr.Span("par", "pool.run", obs.PidHost, dispatched, obs.NowMicros()-dispatched,
			-1, int64(p.n), "")
	}
	return p.runErr
}

// RunCtx is Run honouring context cancellation: a context already
// cancelled skips the dispatch entirely, and a cancellation that arrives
// during the phase is reported after the join (workers are cooperative;
// they are never preempted mid-phase).
func (p *Pool) RunCtx(ctx context.Context, fn func(th int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	runErr := p.Run(fn)
	if err := ctx.Err(); err != nil && runErr == nil {
		return err
	}
	return runErr
}

// Close terminates the workers. The pool must be idle. Close is
// idempotent.
func (p *Pool) Close() {
	p.once.Do(func() {
		for i := range p.start {
			close(p.start[i])
		}
	})
}

// Strided deterministically assigns chunks of [0, n) to threads in
// round-robin order: thread th processes chunks th, th+threads,
// th+2*threads, ...
//
// Engines use this instead of the dynamic Chunker: on a host with fewer
// CPUs than simulated threads, dynamic chunk grabbing degenerates (one
// goroutine drains the queue before the others are scheduled), which
// would concentrate the simulated charge on a single thread. Striding
// reproduces the balanced distribution that dynamic scheduling achieves
// on real hardware, and makes runs deterministic.
type Strided struct {
	n, chunk int64
	threads  int
}

// NewStrided covers [0, n) in chunks of the given size (minimum 1) across
// threads workers.
func NewStrided(n, chunk int64, threads int) *Strided {
	s := MakeStrided(n, chunk, threads)
	return &s
}

// MakeStrided is NewStrided returning the schedule by value: phase hot
// paths build one per phase without allocating (the schedule is three
// words), and layouts embed cached schedules directly.
func MakeStrided(n, chunk int64, threads int) Strided {
	if chunk < 1 {
		chunk = 1
	}
	if threads < 1 {
		threads = 1
	}
	return Strided{n: n, chunk: chunk, threads: threads}
}

// Do invokes fn for every chunk assigned to thread th, in order.
func (s Strided) Do(th int, fn func(lo, hi int64)) {
	for lo := int64(th) * s.chunk; lo < s.n; lo += s.chunk * int64(s.threads) {
		hi := lo + s.chunk
		if hi > s.n {
			hi = s.n
		}
		fn(lo, hi)
	}
}

// ChunkSize picks the engines' shared phase chunk granularity: about 8
// chunks per thread over [0, n), floored at 64 so tiny ranges do not
// shred into per-element dispatches.
func ChunkSize(n int64, threads int) int64 {
	c := n / int64(threads*8)
	if c < 64 {
		c = 64
	}
	return c
}

// Chunker hands out [lo, hi) work chunks from [0, n) to competing
// threads; Next is safe for concurrent use.
type Chunker struct {
	next  atomic.Int64
	n     int64
	chunk int64
}

// NewChunker covers [0, n) in chunks of the given size (minimum 1).
func NewChunker(n, chunk int64) *Chunker {
	if chunk < 1 {
		chunk = 1
	}
	return &Chunker{n: n, chunk: chunk}
}

// Next returns the next chunk, or ok=false when the range is exhausted.
func (c *Chunker) Next() (lo, hi int64, ok bool) {
	lo = c.next.Add(c.chunk) - c.chunk
	if lo >= c.n {
		return 0, 0, false
	}
	hi = lo + c.chunk
	if hi > c.n {
		hi = c.n
	}
	return lo, hi, true
}
