// Package par provides the minimal parallel-execution machinery the
// engines share: a pool of persistent worker goroutines (one per simulated
// hardware thread) and a dynamic chunk scheduler for intra-node load
// balancing (the paper's "each worker thread dynamically fetches a portion
// of tasks after finishing its previous tasks").
package par

import (
	"sync"
	"sync/atomic"
)

// Pool runs phases across a fixed set of worker goroutines. Workers are
// persistent: spawning happens once, and each Run dispatches one function
// to every worker and waits for all of them — the join is the phase
// barrier.
type Pool struct {
	n     int
	start []chan func(int)
	wg    sync.WaitGroup
	once  sync.Once
}

// NewPool starts threads persistent workers.
func NewPool(threads int) *Pool {
	if threads < 1 {
		panic("par: need at least one thread")
	}
	p := &Pool{n: threads, start: make([]chan func(int), threads)}
	for i := range p.start {
		p.start[i] = make(chan func(int), 1)
		go func(th int) {
			for fn := range p.start[th] {
				fn(th)
				p.wg.Done()
			}
		}(i)
	}
	return p
}

// Threads returns the worker count.
func (p *Pool) Threads() int { return p.n }

// Run executes fn(th) on every worker and blocks until all finish.
func (p *Pool) Run(fn func(th int)) {
	p.wg.Add(p.n)
	for i := range p.start {
		p.start[i] <- fn
	}
	p.wg.Wait()
}

// Close terminates the workers. The pool must be idle. Close is
// idempotent.
func (p *Pool) Close() {
	p.once.Do(func() {
		for i := range p.start {
			close(p.start[i])
		}
	})
}

// Strided deterministically assigns chunks of [0, n) to threads in
// round-robin order: thread th processes chunks th, th+threads,
// th+2*threads, ...
//
// Engines use this instead of the dynamic Chunker: on a host with fewer
// CPUs than simulated threads, dynamic chunk grabbing degenerates (one
// goroutine drains the queue before the others are scheduled), which
// would concentrate the simulated charge on a single thread. Striding
// reproduces the balanced distribution that dynamic scheduling achieves
// on real hardware, and makes runs deterministic.
type Strided struct {
	n, chunk int64
	threads  int
}

// NewStrided covers [0, n) in chunks of the given size (minimum 1) across
// threads workers.
func NewStrided(n, chunk int64, threads int) *Strided {
	s := MakeStrided(n, chunk, threads)
	return &s
}

// MakeStrided is NewStrided returning the schedule by value: phase hot
// paths build one per phase without allocating (the schedule is three
// words), and layouts embed cached schedules directly.
func MakeStrided(n, chunk int64, threads int) Strided {
	if chunk < 1 {
		chunk = 1
	}
	if threads < 1 {
		threads = 1
	}
	return Strided{n: n, chunk: chunk, threads: threads}
}

// Do invokes fn for every chunk assigned to thread th, in order.
func (s Strided) Do(th int, fn func(lo, hi int64)) {
	for lo := int64(th) * s.chunk; lo < s.n; lo += s.chunk * int64(s.threads) {
		hi := lo + s.chunk
		if hi > s.n {
			hi = s.n
		}
		fn(lo, hi)
	}
}

// Chunker hands out [lo, hi) work chunks from [0, n) to competing
// threads; Next is safe for concurrent use.
type Chunker struct {
	next  atomic.Int64
	n     int64
	chunk int64
}

// NewChunker covers [0, n) in chunks of the given size (minimum 1).
func NewChunker(n, chunk int64) *Chunker {
	if chunk < 1 {
		chunk = 1
	}
	return &Chunker{n: n, chunk: chunk}
}

// Next returns the next chunk, or ok=false when the range is exhausted.
func (c *Chunker) Next() (lo, hi int64, ok bool) {
	lo = c.next.Add(c.chunk) - c.chunk
	if lo >= c.n {
		return 0, 0, false
	}
	hi = lo + c.chunk
	if hi > c.n {
		hi = c.n
	}
	return lo, hi, true
}
