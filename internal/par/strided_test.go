package par

import (
	"testing"
	"testing/quick"
)

func TestStridedCoversExactly(t *testing.T) {
	f := func(nRaw, cRaw, tRaw uint16) bool {
		n := int64(nRaw % 3000)
		chunk := int64(cRaw % 100)
		threads := 1 + int(tRaw%16)
		s := NewStrided(n, chunk, threads)
		covered := make([]int, n)
		for th := 0; th < threads; th++ {
			s.Do(th, func(lo, hi int64) {
				if lo < 0 || hi > n || lo >= hi {
					t.Fatalf("bad chunk [%d,%d) of %d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			})
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestStridedDeterministic(t *testing.T) {
	s := NewStrided(1000, 64, 4)
	var a, b []int64
	s.Do(2, func(lo, hi int64) { a = append(a, lo, hi) })
	s.Do(2, func(lo, hi int64) { b = append(b, lo, hi) })
	if len(a) != len(b) {
		t.Fatal("non-deterministic chunk count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic chunks")
		}
	}
}

func TestStridedRoundRobin(t *testing.T) {
	// With chunk=1 and 4 threads, thread t gets exactly indices
	// t, t+4, t+8, ...
	s := NewStrided(10, 1, 4)
	var got []int64
	s.Do(1, func(lo, hi int64) { got = append(got, lo) })
	want := []int64{1, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStridedBalance(t *testing.T) {
	// Chunk counts across threads differ by at most one.
	s := NewStrided(100000, 16, 7)
	counts := make([]int64, 7)
	for th := 0; th < 7; th++ {
		s.Do(th, func(lo, hi int64) { counts[th] += hi - lo })
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 16 {
		t.Fatalf("imbalance %d exceeds one chunk", max-min)
	}
}

func TestStridedDegenerateInputs(t *testing.T) {
	s := NewStrided(0, 10, 3)
	s.Do(0, func(lo, hi int64) { t.Fatal("empty range must not iterate") })
	s = NewStrided(5, 0, 0) // clamps to chunk=1, threads=1
	var total int64
	s.Do(0, func(lo, hi int64) { total += hi - lo })
	if total != 5 {
		t.Fatalf("clamped stride covered %d of 5", total)
	}
}
