package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolRunsAllThreads(t *testing.T) {
	p := NewPool(7)
	defer p.Close()
	var mask atomic.Int64
	p.Run(func(th int) { mask.Add(1 << th) })
	if mask.Load() != (1<<7)-1 {
		t.Fatalf("threads mask = %b", mask.Load())
	}
}

func TestPoolSequentialPhases(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var counter atomic.Int64
	for phase := 0; phase < 50; phase++ {
		p.Run(func(th int) { counter.Add(1) })
		if got := counter.Load(); got != int64((phase+1)*4) {
			t.Fatalf("after phase %d: counter=%d", phase, got)
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Run(func(int) {})
	p.Close()
	p.Close()
}

func TestNewPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) must panic")
		}
	}()
	NewPool(0)
}

func TestChunkerCoversExactly(t *testing.T) {
	f := func(nRaw, cRaw uint16) bool {
		n := int64(nRaw % 2000)
		chunk := int64(cRaw % 64)
		c := NewChunker(n, chunk)
		covered := make([]bool, n)
		for {
			lo, hi, ok := c.Next()
			if !ok {
				break
			}
			for i := lo; i < hi; i++ {
				if covered[i] {
					return false // overlap
				}
				covered[i] = true
			}
		}
		for _, b := range covered {
			if !b {
				return false // gap
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkerConcurrent(t *testing.T) {
	const n = 100000
	c := NewChunker(n, 64)
	p := NewPool(8)
	defer p.Close()
	var total atomic.Int64
	p.Run(func(int) {
		for {
			lo, hi, ok := c.Next()
			if !ok {
				return
			}
			total.Add(hi - lo)
		}
	})
	if total.Load() != n {
		t.Fatalf("covered %d of %d", total.Load(), n)
	}
}

func TestChunkerEmpty(t *testing.T) {
	c := NewChunker(0, 16)
	if _, _, ok := c.Next(); ok {
		t.Fatal("empty chunker must yield nothing")
	}
}
