package par

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

var errStub = errors.New("stub fault")

func TestPoolRunsAllThreads(t *testing.T) {
	p := MustNewPool(7)
	defer p.Close()
	var mask atomic.Int64
	p.Run(func(th int) { mask.Add(1 << th) })
	if mask.Load() != (1<<7)-1 {
		t.Fatalf("threads mask = %b", mask.Load())
	}
}

func TestPoolSequentialPhases(t *testing.T) {
	p := MustNewPool(4)
	defer p.Close()
	var counter atomic.Int64
	for phase := 0; phase < 50; phase++ {
		p.Run(func(th int) { counter.Add(1) })
		if got := counter.Load(); got != int64((phase+1)*4) {
			t.Fatalf("after phase %d: counter=%d", phase, got)
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := MustNewPool(2)
	p.Run(func(int) {})
	p.Close()
	p.Close()
}

func TestNewPoolRejectsBadSize(t *testing.T) {
	if _, err := NewPool(0); err == nil {
		t.Fatal("NewPool(0) must error")
	}
	if _, err := NewPool(-3); err == nil {
		t.Fatal("NewPool(-3) must error")
	}
}

func TestMustNewPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewPool(0) must panic")
		}
	}()
	MustNewPool(0)
}

func TestRunRecoversWorkerPanic(t *testing.T) {
	p := MustNewPool(4)
	defer p.Close()
	err := p.Run(func(th int) {
		if th == 2 {
			panic("boom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Thread != 2 {
		t.Fatalf("panic attributed to thread %d, want 2", pe.Thread)
	}
	// The pool must stay usable after a recovered panic.
	if err := p.Run(func(int) {}); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
}

func TestPoolHookErrors(t *testing.T) {
	p := MustNewPool(4)
	defer p.Close()
	p.SetHook(func(th int) error {
		if th == 1 {
			return errStub
		}
		return nil
	})
	var ran atomic.Int64
	if err := p.Run(func(int) { ran.Add(1) }); err == nil {
		t.Fatal("hook error must surface from Run")
	}
	if ran.Load() != 3 {
		t.Fatalf("hooked thread must not run its body: ran=%d", ran.Load())
	}
	p.SetHook(nil)
	if err := p.Run(func(int) {}); err != nil {
		t.Fatalf("cleared hook must not error: %v", err)
	}
}

func TestChunkerCoversExactly(t *testing.T) {
	f := func(nRaw, cRaw uint16) bool {
		n := int64(nRaw % 2000)
		chunk := int64(cRaw % 64)
		c := NewChunker(n, chunk)
		covered := make([]bool, n)
		for {
			lo, hi, ok := c.Next()
			if !ok {
				break
			}
			for i := lo; i < hi; i++ {
				if covered[i] {
					return false // overlap
				}
				covered[i] = true
			}
		}
		for _, b := range covered {
			if !b {
				return false // gap
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkerConcurrent(t *testing.T) {
	const n = 100000
	c := NewChunker(n, 64)
	p := MustNewPool(8)
	defer p.Close()
	var total atomic.Int64
	p.Run(func(int) {
		for {
			lo, hi, ok := c.Next()
			if !ok {
				return
			}
			total.Add(hi - lo)
		}
	})
	if total.Load() != n {
		t.Fatalf("covered %d of %d", total.Load(), n)
	}
}

func TestChunkerEmpty(t *testing.T) {
	c := NewChunker(0, 16)
	if _, _, ok := c.Next(); ok {
		t.Fatal("empty chunker must yield nothing")
	}
}
