package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCtxPreCancelledSkipsDispatch(t *testing.T) {
	p := MustNewPool(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := p.RunCtx(ctx, func(int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("cancelled dispatch still ran on %d workers", got)
	}
	// The pool stays usable after a refused dispatch.
	if err := p.Run(func(int) { ran.Add(1) }); err != nil {
		t.Fatalf("Run after refused dispatch: %v", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("follow-up Run reached %d workers, want 4", got)
	}
}

func TestRunCtxCancelMidDispatch(t *testing.T) {
	p := MustNewPool(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	// One worker cancels mid-phase. Workers are cooperative — never
	// preempted — so every worker still completes its share, and the join
	// reports the cancellation so the caller skips the phase's charges.
	err := p.RunCtx(ctx, func(th int) {
		if th == 2 {
			cancel()
		}
		ran.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("%d workers ran, want all 4 (no preemption)", got)
	}
}

func TestRunCtxWorkerErrorWinsOverCancel(t *testing.T) {
	p := MustNewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := p.RunCtx(ctx, func(th int) {
		if th == 0 {
			cancel()
			panic("boom")
		}
	})
	// A real worker failure is more informative than the cancellation that
	// accompanied it.
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunCtx = %v, want *PanicError", err)
	}
	if pe.Thread != 0 {
		t.Fatalf("panic attributed to thread %d, want 0", pe.Thread)
	}
}

func TestRunCtxDeadline(t *testing.T) {
	p := MustNewPool(2)
	defer p.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	err := p.RunCtx(ctx, func(int) { t.Error("dispatched past an expired deadline") })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx = %v, want context.DeadlineExceeded", err)
	}
}
