package conform

import (
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
)

// TestMultiSourceDifferential asserts the batching invisibility
// contract on both corpus graphs, both topologies and both
// scatter-gather engines: every per-source output of a MultiBFS /
// MultiSSSP sweep is bit-identical to the same engine's single-source
// run, and conforms to every other engine and the sequential oracle
// under the algorithm's policy.
func TestMultiSourceDifferential(t *testing.T) {
	srcs := []graph.Vertex{3, 0, 17, 3, 101} // includes a duplicate source
	for _, ng := range corpusGraphs() {
		for _, topo := range Topos() {
			for _, eng := range []Engine{Polymer, Ligra} {
				for _, alg := range []Algo{BFS, SSSP} {
					t.Run(ng.name+"/"+string(eng)+"/"+string(alg)+"/"+string(topo), func(t *testing.T) {
						if d := CheckMultiSource(eng, alg, topo, ng.g, srcs); d != nil {
							t.Fatal(d)
						}
					})
				}
			}
		}
	}
}

// TestMultiSourceAdversarial sweeps the single-source == multi-source
// property over the adversarial shapes (self-loops, stars, disconnected
// pieces): every reachable and unreachable vertex must agree bit-for-bit
// with the independent runs.
func TestMultiSourceAdversarial(t *testing.T) {
	for _, shape := range gen.Adversarial() {
		if shape.N == 0 {
			continue // no valid source exists
		}
		g := graph.FromEdges(shape.N, shape.Edges, false)
		srcs := []graph.Vertex{0}
		if shape.N > 1 {
			srcs = append(srcs, graph.Vertex(shape.N-1))
		}
		for _, alg := range []Algo{BFS, SSSP} {
			t.Run(shape.Name+"/"+string(alg), func(t *testing.T) {
				if d := CheckMultiSource(Polymer, alg, Intel80, g, srcs); d != nil {
					t.Fatal(d)
				}
			})
		}
	}
}

// TestMultiSourceBounds pins the batch-size and validation contract.
func TestMultiSourceBounds(t *testing.T) {
	ng := corpusGraphs()[0]
	if _, err := RunMultiSource(Polymer, BFS, Intel80, ng.g, nil); err == nil {
		t.Fatal("empty source batch accepted")
	}
	too := make([]graph.Vertex, 65)
	if _, err := RunMultiSource(Polymer, BFS, Intel80, ng.g, too); err == nil {
		t.Fatal("65-source batch accepted (bound is 64)")
	}
	if _, err := RunMultiSource(Polymer, SSSP, Intel80, ng.g, []graph.Vertex{1 << 30}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	// A full 64-source batch is legal (the mask exactly fills a uint64).
	full := make([]graph.Vertex, 64)
	for i := range full {
		full[i] = graph.Vertex(i)
	}
	if _, err := RunMultiSource(Ligra, BFS, Intel80, ng.g, full); err != nil {
		t.Fatalf("64-source batch rejected: %v", err)
	}
}
