package conform

import (
	"math"
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
)

func nan64() float64        { return math.NaN() }
func nextUp(x float64) float64 { return math.Nextafter(x, math.Inf(1)) }

type namedGraph struct {
	name string
	g    *graph.Graph
}

// corpusGraphs are the seeded random graphs of the differential matrix:
// one unweighted (exercising the unit-weight convention everywhere, the
// regression surface for the SpMV zero-weight divergence) and one
// weighted power-law.
func corpusGraphs() []namedGraph {
	n1, e1 := gen.Uniform(200, 1000, 42)
	n2, e2 := gen.Powerlaw(256, 4, 2.0, 7)
	gen.AddRandomWeights(e2, 11)
	return []namedGraph{
		{"uniform-200", graph.FromEdges(n1, e1, false)},
		{"powerlaw-256-w", graph.FromEdges(n2, e2, true)},
	}
}

// TestDifferentialMatrix runs every algorithm on every engine and both
// paper topologies against the sequential oracles.
func TestDifferentialMatrix(t *testing.T) {
	for _, ng := range corpusGraphs() {
		for _, topo := range Topos() {
			for _, eng := range Engines() {
				for _, alg := range Algos() {
					c := Case{Engine: eng, Algo: alg, Topo: topo, Src: 3}
					t.Run(ng.name+"/"+c.String(), func(t *testing.T) {
						if d := Check(c, ng.g); d != nil {
							t.Fatal(d)
						}
					})
				}
			}
		}
	}
}

// TestDifferentialAdversarial runs the full engine x algorithm matrix
// over the adversarial shape corpus: empty and single-vertex graphs
// (the regression surface for the traversal n==0 panics), self-loops,
// duplicate edges, stars, disconnected pieces and word-boundary cycles.
func TestDifferentialAdversarial(t *testing.T) {
	for _, shape := range gen.Adversarial() {
		g := graph.FromEdges(shape.N, shape.Edges, false)
		for _, eng := range Engines() {
			for _, alg := range Algos() {
				c := Case{Engine: eng, Algo: alg, Topo: Intel80}
				t.Run(shape.Name+"/"+c.String(), func(t *testing.T) {
					if d := Check(c, g); d != nil {
						t.Fatal(d)
					}
				})
			}
		}
	}
}

// TestPolicyEqual pins the comparison semantics the whole harness
// stands on.
func TestPolicyEqual(t *testing.T) {
	exact := Policy{Exact: true}
	if !exact.Equal(1.5, 1.5) || exact.Equal(1.5, 1.5000001) {
		t.Error("exact policy broken")
	}
	nan := Policy{Exact: true}
	if !nan.Equal(nan64(), nan64()) {
		t.Error("exact policy must treat NaN bit patterns as equal to themselves")
	}
	ulp := Policy{ULPs: 2}
	next := 1.0
	for i := 0; i < 2; i++ {
		next = nextUp(next)
	}
	if !ulp.Equal(1.0, next) {
		t.Error("2 ULPs apart must pass a 2-ULP policy")
	}
	if ulp.Equal(1.0, nextUp(next)) {
		t.Error("3 ULPs apart must fail a 2-ULP policy")
	}
	if ulp.Equal(1.0, -1.0) {
		t.Error("sign flip must fail")
	}
	abs := Policy{Abs: 1e-6}
	if !abs.Equal(0, 5e-7) || abs.Equal(0, 2e-6) {
		t.Error("abs policy broken")
	}
}
