package conform

import (
	"testing"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/galois"
	"polymer/internal/engines/ligra"
	"polymer/internal/engines/xstream"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
	"polymer/internal/state"
)

func invariantGraph() *graph.Graph {
	n, e := gen.Uniform(160, 900, 23)
	return graph.FromEdges(n, e, false)
}

// withEngine builds the named engine on a fresh 2x2 machine, hands it to
// the body as the SimEngine invariant surface plus a PageRank closure,
// and closes it.
func withEngine(t *testing.T, eng Engine, g *graph.Graph, body func(e SimEngine, pr func())) {
	t.Helper()
	m := numa.NewMachine(numa.IntelXeon80(), 2, 2)
	switch eng {
	case Polymer, Ligra:
		var e sg.Engine
		if eng == Polymer {
			opt := core.DefaultOptions()
			opt.Mode = core.Push
			e = core.MustNew(g, m, opt)
		} else {
			e = ligra.MustNew(g, m, ligra.DefaultOptions())
		}
		defer e.Close()
		body(e.(SimEngine), func() { algorithms.PageRank(e, Iters, Damping) })
	case XStream:
		e := xstream.MustNew(g, m, xstream.DefaultOptions(), sg.Hints{DataBytes: 8})
		defer e.Close()
		body(e, func() { algorithms.XSPageRank(e, Iters, Damping) })
	case Galois:
		e := galois.MustNew(g, m, galois.DefaultOptions())
		defer e.Close()
		body(e, func() { e.PageRank(Iters, Damping) })
	default:
		t.Fatalf("unknown engine %q", eng)
	}
}

// TestTrafficConservation: after a real run, every engine's classified
// traffic matrix must account for the same bytes whether summed in
// total, per node, or per level and access pattern — and the run must
// have produced some traffic at all.
func TestTrafficConservation(t *testing.T) {
	g := invariantGraph()
	for _, eng := range Engines() {
		t.Run(string(eng), func(t *testing.T) {
			withEngine(t, eng, g, func(e SimEngine, pr func()) {
				pr()
				tm := &numa.TrafficMatrix{}
				e.TrafficSnapshot(tm)
				if tm.Total() <= 0 {
					t.Fatal("run produced no traffic")
				}
				if err := CheckTrafficConservation(tm); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestRollbackResidue: snapshot, run a full PageRank, restore — the
// simulated clock, traffic ledger and access statistics must come back
// bit-identical on every engine. The first PageRank call makes the
// pre-snapshot state non-trivial.
func TestRollbackResidue(t *testing.T) {
	g := invariantGraph()
	for _, eng := range Engines() {
		t.Run(string(eng), func(t *testing.T) {
			withEngine(t, eng, g, func(e SimEngine, pr func()) {
				pr()
				if err := CheckRollbackResidue(e, pr); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestDegreeCacheInvariant: every way a Subset's cached degree can be
// produced — builder accumulation over duplicate adds, the full-frontier
// shortcut, sparse construction, memoized rescan — must agree with a
// from-scratch scan of the graph.
func TestDegreeCacheInvariant(t *testing.T) {
	g := invariantGraph()
	n := g.NumVertices()
	bounds := []int{0, n / 3, n}
	degreeOf := func(v uint32) int64 { return g.OutDegree(graph.Vertex(v)) }

	t.Run("full-frontier", func(t *testing.T) {
		if err := CheckDegreeCache(g, state.NewAll(bounds)); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if err := CheckDegreeCache(g, state.NewEmpty(bounds)); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("single", func(t *testing.T) {
		if err := CheckDegreeCache(g, state.NewSingle(bounds, 7)); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("sparse-from-vertices", func(t *testing.T) {
		s := state.FromVertices(bounds, []uint32{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5})
		if err := CheckDegreeCache(g, s); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("builder-with-degrees-duplicates", func(t *testing.T) {
		b := state.NewBuilder(bounds, 2, false).WithDegrees(degreeOf)
		// Both threads add overlapping vertex sets; Build must subtract
		// the duplicate-carried degree.
		for v := uint32(0); v < uint32(n); v += 3 {
			b.Add(0, v)
		}
		for v := uint32(0); v < uint32(n); v += 5 {
			b.Add(1, v)
		}
		if err := CheckDegreeCache(g, b.Build()); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("dense-builder-with-degrees", func(t *testing.T) {
		b := state.NewBuilder(bounds, 2, true).WithDegrees(degreeOf)
		for v := uint32(0); v < uint32(n); v += 2 {
			b.Set(0, v)
		}
		for v := uint32(0); v < uint32(n); v += 7 {
			b.Set(1, v)
		}
		if err := CheckDegreeCache(g, b.Build()); err != nil {
			t.Fatal(err)
		}
	})
}
