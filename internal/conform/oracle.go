package conform

import (
	"fmt"

	"polymer/internal/graph"
)

// Injected bugs: deliberately broken oracle variants used to prove the
// harness detects divergences and that the shrinking reducer minimises
// them. Each is a classic graph-analytics mistake; each has a tiny
// canonical repro the reducer should find (documented per bug).

// InjectedBug names one deliberately broken oracle variant.
type InjectedBug string

const (
	// BugPRSelfLoop is PageRank that forgets self-loop in-edges while
	// still counting them in the out-degree. Minimal repro: one vertex
	// with one self-loop.
	BugPRSelfLoop InjectedBug = "pr-selfloop"
	// BugCCDirected is connected components that follows only out-edges,
	// computing strongly- instead of weakly-connected reachability.
	// Minimal repro: two vertices, one edge from the higher id to the
	// lower.
	BugCCDirected InjectedBug = "cc-directed"
	// BugBFSOffByOne is BFS whose levels start at 1 instead of 0 for the
	// source's neighbours... which is to say, at 2 hops for 1. Minimal
	// repro: two vertices, one edge out of the source.
	BugBFSOffByOne InjectedBug = "bfs-offbyone"
)

// InjectedBugs lists the available variants.
func InjectedBugs() []InjectedBug {
	return []InjectedBug{BugPRSelfLoop, BugCCDirected, BugBFSOffByOne}
}

// Algo returns the algorithm the bug variant computes.
func (b InjectedBug) Algo() Algo {
	switch b {
	case BugPRSelfLoop:
		return PR
	case BugCCDirected:
		return CC
	case BugBFSOffByOne:
		return BFS
	}
	panic(fmt.Sprintf("conform: unknown injected bug %q", b))
}

// BuggyRef runs the broken variant and returns its normalized output.
func BuggyRef(b InjectedBug, g *graph.Graph, src graph.Vertex) []float64 {
	switch b {
	case BugPRSelfLoop:
		return buggyPRSelfLoop(g)
	case BugCCDirected:
		return buggyCCDirected(g)
	case BugBFSOffByOne:
		return buggyBFSOffByOne(g, src)
	}
	panic(fmt.Sprintf("conform: unknown injected bug %q", b))
}

// CheckInjected compares the broken variant against the true oracle
// under the algorithm's policy; a nil result means the bug is invisible
// on this graph.
func CheckInjected(b InjectedBug, g *graph.Graph, src graph.Vertex) *Divergence {
	c := Case{Engine: Engine("injected:" + string(b)), Algo: b.Algo(), Topo: Intel80, Src: src}
	want := Ref(b.Algo(), g, src)
	got := BuggyRef(b, g, src)
	return Compare(c, PolicyFor(b.Algo()), want.Out, got)
}

func buggyPRSelfLoop(g *graph.Graph) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	curr := make([]float64, n)
	next := make([]float64, n)
	invOut := make([]float64, n)
	for v := 0; v < n; v++ {
		curr[v] = 1 / float64(n)
		if d := g.OutDegree(graph.Vertex(v)); d > 0 {
			invOut[v] = 1 / float64(d)
		}
	}
	base := (1 - Damping) / float64(n)
	for it := 0; it < Iters; it++ {
		for v := 0; v < n; v++ {
			var sum float64
			for _, u := range g.InNeighbors(graph.Vertex(v)) {
				if int(u) == v {
					continue // the bug: self-loops carry no rank
				}
				sum += curr[u] * invOut[u]
			}
			next[v] = base + Damping*sum
		}
		curr, next = next, curr
	}
	return curr
}

func buggyCCDirected(g *graph.Graph) []float64 {
	n := g.NumVertices()
	labels := make([]float64, n)
	for i := range labels {
		labels[i] = -1
	}
	for v := 0; v < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		labels[v] = float64(v)
		queue := []graph.Vertex{graph.Vertex(v)}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			// The bug: only out-edges, so reachability is directed.
			for _, u := range g.OutNeighbors(x) {
				if labels[u] < 0 {
					labels[u] = float64(v)
					queue = append(queue, u)
				}
			}
		}
	}
	return labels
}

func buggyBFSOffByOne(g *graph.Graph, src graph.Vertex) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = -1
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.OutNeighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 2 // the bug: each hop counts twice
				queue = append(queue, u)
			}
		}
	}
	return dist
}
