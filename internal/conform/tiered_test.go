package conform

import (
	"math"
	"reflect"
	"testing"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/galois"
	"polymer/internal/engines/ligra"
	"polymer/internal/engines/xstream"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

// tieredFracs are the DRAM budgets the differential sweeps: full
// residency (the bit-identical-clock regime) and two constrained points.
var tieredFracs = []float64{1.0, 0.5, 0.25}

// TestTieredDifferential: every engine on both paper topologies, PR and
// BFS, across the DRAM-fraction sweep under the hot policy with online
// promotion. Values must be bit-identical to the untiered run at every
// budget; the clock bit-identical at full residency and inside the
// envelope below it.
func TestTieredDifferential(t *testing.T) {
	g := invariantGraph()
	for _, topo := range Topos() {
		for _, eng := range Engines() {
			for _, alg := range []Algo{PR, BFS} {
				for _, frac := range tieredFracs {
					c := Case{Engine: eng, Algo: alg, Topo: topo, Src: 3}
					t.Run(c.String()+"/hot", func(t *testing.T) {
						if err := CheckTiered(c, g, numa.TierHot, frac, 2); err != nil {
							t.Fatal(err)
						}
					})
				}
			}
		}
	}
}

// TestTieredInterleaveBaseline: the naive uniform-spill baseline must
// satisfy the same value identity and clock envelope.
func TestTieredInterleaveBaseline(t *testing.T) {
	g := invariantGraph()
	for _, eng := range Engines() {
		for _, frac := range tieredFracs {
			c := Case{Engine: eng, Algo: PR, Topo: Intel80, Src: 3}
			t.Run(c.String()+"/interleave", func(t *testing.T) {
				if err := CheckTiered(c, g, numa.TierInterleave, frac, 0); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestTieredAllAlgos runs the full algorithm set on the flagship engine
// at the tightest budget: value identity must hold for every kernel, not
// just the sweep pair.
func TestTieredAllAlgos(t *testing.T) {
	g := invariantGraph()
	for _, alg := range Algos() {
		c := Case{Engine: Polymer, Algo: alg, Topo: Intel80, Src: 3}
		t.Run(c.String(), func(t *testing.T) {
			if err := CheckTiered(c, g, numa.TierHot, 0.25, 2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// tierPlanner is the accessor every engine exposes for its tier plan.
type tierPlanner interface {
	TierPlan() *mem.TierPlan
}

// TestTieredPromotionDeterminism: the same tiered PageRank run on two
// fresh machines must make identical migration decisions (the log is a
// pure function of the schedule's access counters), converge to the same
// residency split, and — PR's charge totals being schedule-independent —
// a bit-identical clock.
func TestTieredPromotionDeterminism(t *testing.T) {
	g := invariantGraph()
	type probe struct {
		clock      float64
		migrations []mem.Migration
		classes    []string
	}
	for _, eng := range Engines() {
		t.Run(string(eng), func(t *testing.T) {
			sample := func() probe {
				var p probe
				// Half the footprint: tight enough to force spills, loose
				// enough that the non-pinned classes actually hold DRAM for
				// the pass to move around (at harsher budgets the pinned
				// frontier takes everything and there is nothing to migrate).
				withTieredEngine(t, eng, g, 0.5, func(e SimEngine, m *numa.Machine, pr func()) {
					tp := e.(tierPlanner).TierPlan()
					if tp == nil {
						t.Fatal("tiered machine produced a nil tier plan")
					}
					// Seed a cold class that outranks vertex state in the
					// static fill: PageRank never touches it, so the first
					// promotion pass must demote it and promote the hot
					// classes — real migrations for the log to pin.
					cold := m.TierConfig().DRAMPerNode / 2
					tp.AddClass(mem.ClassSpec{
						Label:        "cold",
						BytesPerNode: []int64{cold, cold},
						Priority:     -1,
					})
					pr()
					p.clock = e.SimSeconds()
					p.migrations = append([]mem.Migration(nil), tp.Migrations()...)
					p.classes = tp.Classes()
				})
				return p
			}
			a, b := sample(), sample()
			if math.Float64bits(a.clock) != math.Float64bits(b.clock) {
				t.Fatalf("tiered clock not deterministic: %v != %v", a.clock, b.clock)
			}
			if len(a.migrations) == 0 {
				t.Fatal("constrained hot-policy run with PromoteEvery=1 made no migrations")
			}
			if !reflect.DeepEqual(a.migrations, b.migrations) {
				t.Fatalf("migration logs diverged across identical runs:\n%v\n%v", a.migrations, b.migrations)
			}
			if !reflect.DeepEqual(a.classes, b.classes) {
				t.Fatalf("final residency diverged: %v != %v", a.classes, b.classes)
			}
		})
	}
}

// tieredMachine arms a 2x2 Intel machine with the hot policy at the
// given fraction of the given footprint.
func tieredMachine(t *testing.T, peak int64, frac float64) *numa.Machine {
	t.Helper()
	m := numa.NewMachine(numa.IntelXeon80(), 2, 2)
	if err := m.SetTierConfig(numa.TierConfig{
		DRAMPerNode:  TieredBudget(peak, 2, frac),
		Policy:       numa.TierHot,
		PromoteEvery: 1,
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

// withTieredEngine mirrors withEngine on a DRAM-constrained machine. The
// footprint estimate comes from a probe run of the same engine untiered.
func withTieredEngine(t *testing.T, eng Engine, g *graph.Graph, frac float64, body func(e SimEngine, m *numa.Machine, pr func())) {
	t.Helper()
	probe := Run(Case{Engine: eng, Algo: PR, Topo: Intel80}, g)
	m := tieredMachine(t, probe.Peak, frac)
	switch eng {
	case Polymer, Ligra:
		var e sg.Engine
		if eng == Polymer {
			opt := core.DefaultOptions()
			opt.Mode = core.Push
			e = core.MustNew(g, m, opt)
		} else {
			e = ligra.MustNew(g, m, ligra.DefaultOptions())
		}
		defer e.Close()
		body(e.(SimEngine), m, func() { algorithms.PageRank(e, Iters, Damping) })
	case XStream:
		e := xstream.MustNew(g, m, xstream.DefaultOptions(), sg.Hints{DataBytes: 8})
		defer e.Close()
		body(e, m, func() { algorithms.XSPageRank(e, Iters, Damping) })
	case Galois:
		e := galois.MustNew(g, m, galois.DefaultOptions())
		defer e.Close()
		body(e, m, func() { e.PageRank(Iters, Damping) })
	default:
		t.Fatalf("unknown engine %q", eng)
	}
}

// TestTieredRollbackResidue: snapshot/rollback on a DRAM-constrained
// machine with per-phase promotion passes must leave zero residue — the
// tier plan's residency, counters and migration log rewind with the
// ledger, so the slow-tier traffic bank comes back bit-identical.
func TestTieredRollbackResidue(t *testing.T) {
	g := invariantGraph()
	for _, eng := range Engines() {
		t.Run(string(eng), func(t *testing.T) {
			withTieredEngine(t, eng, g, 0.25, func(e SimEngine, m *numa.Machine, pr func()) {
				pr()
				if err := CheckRollbackResidue(e, pr); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestTieredTrafficConservation: the widened traffic matrix (DRAM rows
// plus the slow-tier bank) must still conserve — the same bytes sum
// consistently in total, per node and per level/pattern — and a
// constrained run must actually touch the slow tier.
func TestTieredTrafficConservation(t *testing.T) {
	g := invariantGraph()
	for _, eng := range Engines() {
		t.Run(string(eng), func(t *testing.T) {
			withTieredEngine(t, eng, g, 0.25, func(e SimEngine, m *numa.Machine, pr func()) {
				pr()
				tm := &numa.TrafficMatrix{}
				e.TrafficSnapshot(tm)
				if err := CheckTrafficConservation(tm); err != nil {
					t.Fatal(err)
				}
				levels := numa.IntelXeon80().MaxLevel() + 1
				if tm.Levels != 2*levels {
					t.Fatalf("tiered traffic has %d levels, want %d (DRAM + slow banks)", tm.Levels, 2*levels)
				}
				var slow float64
				for l := levels; l < tm.Levels; l++ {
					slow += tm.LevelBytes(l, numa.Seq) + tm.LevelBytes(l, numa.Rand)
				}
				if slow <= 0 {
					t.Fatal("constrained run produced no slow-tier traffic")
				}
			})
		})
	}
}

// TestTieredAdversarialShapes: value identity must survive the
// degenerate shape corpus (empty graphs, self-loops, stars, paths) where
// per-node demand is wildly skewed.
func TestTieredAdversarialShapes(t *testing.T) {
	for _, shape := range gen.Adversarial() {
		g := graph.FromEdges(shape.N, shape.Edges, false)
		for _, alg := range []Algo{PR, BFS} {
			c := Case{Engine: Polymer, Algo: alg, Topo: Intel80}
			t.Run(shape.Name+"/"+c.String(), func(t *testing.T) {
				if err := CheckTiered(c, g, numa.TierHot, 0.25, 1); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
