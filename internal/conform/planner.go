// Planner conformance: the cost-model planner must be invisible in the
// payload. Planning is deterministic — two independent planners given
// the same profile resolve the same pick — and a sole-tenant lease
// hands out a machine that is structurally identical to the explicit
// one (same topology, width, cores and physical socket map), so a run
// on it produces bit-identical values. This is what lets the serving
// layer share one result-cache entry between planned and explicit
// requests.
//
// The simulated clock is deliberately NOT part of the bit-identity
// claim: the engines' charge attribution is scheduling-dependent (in a
// sparse push phase, which thread's charger absorbs a contended CAS
// depends on real interleaving, and chaotic SSSP relaxation does
// scheduling-dependent amounts of work before converging), so two
// *explicit* runs of the same configuration already report different
// SimSeconds. What the planner owes is that it cannot widen that
// envelope — which follows from machine identity — so the clock check
// below is a coarse sanity bound that would catch a mis-wired lease
// (wrong width or degraded links), not a bit-equality assertion.

package conform

import (
	"fmt"
	"math"

	"polymer/internal/bench"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/plan"
)

// simEnvelope bounds |planned-explicit|/explicit on the simulated
// clock. The engines' own run-to-run attribution wobble measures ~0.5%
// normally and up to ~15% under the race detector's scheduler (chaotic
// SSSP relaxation); a mis-wired lease machine — wrong socket count,
// wrong placement — is off by 2x or more.
const simEnvelope = 0.30

// CheckPlanned profiles g, plans alg at the requested width, and runs
// the pick two ways: on the scheduler's sole-tenant leased machine (the
// planned path) and on numa.NewMachineChecked with the same knobs (the
// explicit path). It returns the first violation of determinism,
// machine identity, or value bit-identity, or nil.
func CheckPlanned(g *graph.Graph, alg bench.Algo, topo *numa.Topology, nodes, cores int) error {
	f := plan.Profile(g)
	if f2 := plan.Profile(g); f != f2 {
		return fmt.Errorf("conform: profile not deterministic: %+v vs %+v", f, f2)
	}
	q := plan.Query{Features: f, Alg: alg, Nodes: nodes}
	p1, p2 := plan.New(topo, cores), plan.New(topo, cores)
	d1, d2 := p1.Resolve(q), p2.Resolve(q)
	if d1.Pick != d2.Pick {
		return fmt.Errorf("conform: independent planners disagree: %s vs %s", d1.Pick, d2.Pick)
	}
	pick := d1.Pick

	lease := p1.Scheduler().Acquire(pick.Nodes)
	defer lease.Release()
	if !lease.Default() {
		return fmt.Errorf("conform: sole-tenant lease for %d sockets not default", pick.Nodes)
	}
	lm, err := lease.Machine(cores)
	if err != nil {
		return fmt.Errorf("conform: lease machine: %w", err)
	}
	em, err := numa.NewMachineChecked(topo, pick.Nodes, cores)
	if err != nil {
		return fmt.Errorf("conform: explicit machine: %w", err)
	}

	// The machine-identity guarantee — fully deterministic. A sole-tenant
	// lease is the PickOrder prefix, and PickOrder is the same greedy
	// min-pairwise-hop selection NewMachineChecked runs, so the physical
	// socket maps must agree node for node.
	if lm.Topo.Name != em.Topo.Name || lm.Nodes != em.Nodes || lm.CoresPerNode != em.CoresPerNode {
		return fmt.Errorf("conform: lease machine %s/%dx%d != explicit %s/%dx%d",
			lm.Topo.Name, lm.Nodes, lm.CoresPerNode, em.Topo.Name, em.Nodes, em.CoresPerNode)
	}
	for n := 0; n < lm.Nodes; n++ {
		if lm.PhysicalSocket(n) != em.PhysicalSocket(n) {
			return fmt.Errorf("conform: lease machine node %d on socket %d, explicit on %d",
				n, lm.PhysicalSocket(n), em.PhysicalSocket(n))
		}
	}

	planned, err := bench.RunPlacedFrom(pick.Engine, alg, g, lm, 0, pick.Placement)
	if err != nil {
		return fmt.Errorf("conform: planned run: %w", err)
	}
	explicit, err := bench.RunPlacedFrom(pick.Engine, alg, g, em, 0, pick.Placement)
	if err != nil {
		return fmt.Errorf("conform: explicit run: %w", err)
	}
	if planned.Checksum != explicit.Checksum {
		return fmt.Errorf("conform: planned %s checksum %v != explicit %v",
			pick, planned.Checksum, explicit.Checksum)
	}
	if d := math.Abs(planned.SimSeconds - explicit.SimSeconds); d > simEnvelope*explicit.SimSeconds {
		return fmt.Errorf("conform: planned %s sim %v vs explicit %v — outside the %.0f%% engine envelope, lease machine mis-wired?",
			pick, planned.SimSeconds, explicit.SimSeconds, simEnvelope*100)
	}

	// Values must also be deterministic across reruns of the planned
	// path itself (a second lease machine, same lease).
	lm2, err := lease.Machine(cores)
	if err != nil {
		return fmt.Errorf("conform: lease machine (rerun): %w", err)
	}
	rerun, err := bench.RunPlacedFrom(pick.Engine, alg, g, lm2, 0, pick.Placement)
	if err != nil {
		return fmt.Errorf("conform: planned rerun: %w", err)
	}
	if rerun.Checksum != planned.Checksum {
		return fmt.Errorf("conform: planned %s checksum not deterministic: %v vs %v",
			pick, rerun.Checksum, planned.Checksum)
	}
	return nil
}
