package conform

import (
	"fmt"
	"math"

	"polymer/internal/graph"
	"polymer/internal/numa"
)

// Tiered-memory conformance: tiering is strictly a cost-model concern —
// the tier split feeds the epoch ledger and nothing else — so a tiered
// run must compute the same VALUES as the untiered run at every DRAM
// budget, under exactly the tolerance the engine's own re-run
// determinism grants (bit-identity where the reduction order is
// scheduler-independent, the algorithm's ULP policy where it is not; see
// TestRerunDeterminism). For kernels whose charge totals are
// schedule-independent the CLOCK is additionally pinned: bit-identical
// to the untiered run when DRAM covers the whole footprint, inside
// TieredEnvelope when it does not.

// TieredEnvelope is the documented clock envelope for DRAM-constrained
// runs: a tiered run's simulated time must lie in
//
//	[untiered, untiered * TieredEnvelope]
//
// The lower bound is structural (every byte spilled to the slow tier
// costs at least its DRAM price; validated by the topology tables). The
// upper bound is conservative: the slow tier's worst table ratio is
// ~7x (random bandwidth on the AMD box), migration passes add bounded
// extra traffic, and the slow tier's own aggregate-bandwidth congestion
// can stack on top — 40x caps all of it with margin while still
// catching runaway double-charging bugs.
const TieredEnvelope = 40.0

// TieredBudget converts an untiered run's peak footprint into a
// per-node DRAM budget covering dramFrac of it. dramFrac >= 1 instead
// provisions the FULL peak on every node — deliberately overshooting so
// every demand class is wholly resident regardless of placement skew
// (the bit-identical-clock regime).
func TieredBudget(peak int64, nodes int, dramFrac float64) int64 {
	if dramFrac >= 1 {
		return peak
	}
	b := int64(dramFrac * float64(peak) / float64(nodes))
	if b < 1 {
		b = 1
	}
	return b
}

// clockDeterministic reports whether the algorithm's charge totals are a
// pure function of the input: the fixed-iteration kernels touch every
// edge with unconditional updates, so per-thread counts don't move with
// the scheduler. Traversals (and PRDelta's threshold-driven frontier)
// count CAS winners, so their clocks are only statistically stable and
// the differential cannot pin them across two separate runs.
func clockDeterministic(a Algo) bool {
	return a == PR || a == SpMV || a == BP
}

// tieredValuePolicy is the value tolerance for the tiered-vs-untiered
// differential: exactly the engine's own re-run guarantee. X-Stream's
// sequential gather and Galois's per-vertex pull make even float sums
// bit-stable; Polymer and Ligra push through atomic adds whose commit
// order moves with the scheduler, so their float kernels answer for the
// algorithm's unrelaxed ULP policy.
func tieredValuePolicy(c Case) Policy {
	if c.Algo == PR && (c.Engine == XStream || c.Engine == Galois) {
		return Policy{Exact: true}
	}
	return PolicyFor(c.Algo)
}

// CheckTiered runs the case untiered and again under pol with dramFrac
// of the untiered peak footprint as DRAM, and verifies the tiered run
// against the untiered one: values within the re-run tolerance at every
// budget, and — for clock-deterministic kernels — the clock
// bit-identical at full residency (dramFrac >= 1) and inside
// TieredEnvelope otherwise.
func CheckTiered(c Case, g *graph.Graph, pol numa.TierPolicy, dramFrac float64, promoteEvery int) error {
	c.TierPol, c.DRAMPerNode, c.PromoteEvery = numa.TierNone, 0, 0
	base := Run(c, g)

	tc := c
	tc.TierPol = pol
	tc.DRAMPerNode = TieredBudget(base.Peak, tc.nodes(), dramFrac)
	tc.PromoteEvery = promoteEvery
	if tc.DRAMPerNode <= 0 {
		return nil // zero-footprint case (empty graph): nothing to tier
	}
	got := Run(tc, g)

	p := tieredValuePolicy(c)
	if d := Compare(tc, p, Normalize(c.Algo, base.Out), Normalize(c.Algo, got.Out)); d != nil {
		return fmt.Errorf("tiered values diverged from untiered (the tier split must never feed computation): %w", d)
	}

	if !clockDeterministic(c.Algo) {
		return nil
	}
	if dramFrac >= 1 {
		if math.Float64bits(got.SimSeconds) != math.Float64bits(base.SimSeconds) {
			return fmt.Errorf("%s: full-DRAM tiered clock %v != untiered %v (must be bit-identical)",
				tc, got.SimSeconds, base.SimSeconds)
		}
		return nil
	}
	if got.SimSeconds < base.SimSeconds {
		return fmt.Errorf("%s: tiered clock %v < untiered %v (slow tier can only cost more)",
			tc, got.SimSeconds, base.SimSeconds)
	}
	if got.SimSeconds > base.SimSeconds*TieredEnvelope {
		return fmt.Errorf("%s: tiered clock %v exceeds envelope %v (= %v * %v)",
			tc, got.SimSeconds, base.SimSeconds*TieredEnvelope, base.SimSeconds, TieredEnvelope)
	}
	return nil
}
