package conform

import (
	"testing"

	"polymer/internal/bench"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
)

// Planned runs must be bit-identical to explicitly configured ones
// across algorithms and graph shapes, on both topologies.
func TestPlannedBitIdentity(t *testing.T) {
	type tc struct {
		name string
		g    *graph.Graph
		alg  bench.Algo
	}
	n, e := gen.Powerlaw(2000, 8, 2.1, 7)
	pl := graph.FromEdges(n, e, false)
	n, e = gen.RoadGrid(32, 32, 3)
	road := graph.FromEdges(n, e, false)
	n, e = gen.Uniform(1500, 12000, 5)
	gen.AddRandomWeights(e, 5)
	uniW := graph.FromEdges(n, e, true)
	cases := []tc{
		{"powerlaw/pr", pl, bench.PR},
		{"powerlaw/bfs", pl, bench.BFS},
		{"road/pr", road, bench.PR},
		{"road/bfs", road, bench.BFS},
		{"uniform/sssp", uniW, bench.SSSP},
	}
	topos := map[string]*numa.Topology{"intel": numa.IntelXeon80(), "amd": numa.AMDOpteron64()}
	for tn, topo := range topos {
		for _, c := range cases {
			if err := CheckPlanned(c.g, c.alg, topo, topo.Sockets, 2); err != nil {
				t.Errorf("%s on %s: %v", c.name, tn, err)
			}
		}
	}
}
