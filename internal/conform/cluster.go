// Cluster conformance: the replicated sharded substrate must commit
// output bit-identical to the sequential oracle — not merely within the
// per-algorithm engine tolerances — because its kernels evaluate the
// oracle's exact float expressions regardless of machine count, replica
// placement or fault history. The chaos matrix leans on this: any drift
// introduced by a rollback/failover/replay shows up as an Exact-policy
// divergence.

package conform

import (
	"context"
	"fmt"

	"polymer/internal/cluster"
	"polymer/internal/graph"
)

// ClusterEngine labels cluster divergences in reports.
const ClusterEngine Engine = "cluster"

// ClusterAlgo maps a conformance algorithm to its cluster kernel; ok is
// false for algorithms the cluster does not serve.
func ClusterAlgo(a Algo) (cluster.Algo, bool) {
	switch a {
	case PR:
		return cluster.PR, true
	case BFS:
		return cluster.BFS, true
	case SSSP:
		return cluster.SSSP, true
	}
	return "", false
}

// CheckCluster runs the algorithm on a cluster shaped by cfg and
// compares the committed output bit-for-bit against the sequential
// oracle. It returns the cluster result (for ledger/health assertions),
// the divergence if any, and an error for invalid configurations or an
// unrecoverable cluster (every replica of some shard lost).
func CheckCluster(g *graph.Graph, cfg cluster.Config, a Algo, src graph.Vertex) (*cluster.Result, *Divergence, error) {
	ca, ok := ClusterAlgo(a)
	if !ok {
		return nil, nil, fmt.Errorf("conform: algorithm %q has no cluster kernel", a)
	}
	cl, err := cluster.New(g, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := cl.Run(context.Background(), ca, src)
	if err != nil {
		return nil, nil, err
	}
	want := Ref(a, g, src)
	cs := Case{Engine: ClusterEngine, Algo: a, Nodes: cfg.Nodes, Cores: cfg.Cores, Src: src}
	return res, Compare(cs, Policy{Exact: true}, want.Out, res.Out), nil
}
