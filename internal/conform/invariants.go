package conform

import (
	"fmt"
	"math"

	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// Substrate invariants: structural properties of the simulated NUMA
// machinery that must hold for every engine and every run. These are
// the checks behind the paper's central claim that placement changes
// where traffic goes, never how much of it there is or what it computes.

// SimEngine is the slice of engine surface the invariant layer needs;
// all four engines satisfy it.
type SimEngine interface {
	SimSeconds() float64
	RunStats() numa.Stats
	TrafficSnapshot(dst *numa.TrafficMatrix)
	SnapshotSim()
	RestoreSim()
}

// CheckTrafficConservation verifies the classified traffic matrix is
// internally consistent: the grand total equals the per-node sums and
// the per-level-per-pattern sums (the same bytes classified three ways),
// and no cell is negative.
func CheckTrafficConservation(tm *numa.TrafficMatrix) error {
	total := tm.Total()
	var nodeSum float64
	for n := 0; n < tm.Nodes; n++ {
		nodeSum += tm.NodeBytes(n)
	}
	var levelSum float64
	for l := 0; l < tm.Levels; l++ {
		levelSum += tm.LevelBytes(l, numa.Seq) + tm.LevelBytes(l, numa.Rand)
	}
	if !closeRel(total, nodeSum) {
		return fmt.Errorf("traffic conservation: total %v != node sum %v", total, nodeSum)
	}
	if !closeRel(total, levelSum) {
		return fmt.Errorf("traffic conservation: total %v != level sum %v", total, levelSum)
	}
	for i, c := range tm.Cells {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("traffic conservation: cell %d is %v", i, c)
		}
	}
	return nil
}

// CheckRollbackResidue verifies a snapshot/rollback cycle leaves zero
// residue: SnapshotSim, run work, RestoreSim — the simulated clock,
// traffic matrix and access statistics must come back bit-identical to
// the pre-snapshot state.
func CheckRollbackResidue(e SimEngine, work func()) error {
	before := &numa.TrafficMatrix{}
	e.TrafficSnapshot(before)
	clock := e.SimSeconds()
	stats := e.RunStats()

	e.SnapshotSim()
	work()
	e.RestoreSim()

	after := &numa.TrafficMatrix{}
	e.TrafficSnapshot(after)
	if e.SimSeconds() != clock {
		return fmt.Errorf("rollback residue: clock %v != %v", e.SimSeconds(), clock)
	}
	if e.RunStats() != stats {
		return fmt.Errorf("rollback residue: stats %+v != %+v", e.RunStats(), stats)
	}
	if err := sameTraffic(before, after); err != nil {
		return fmt.Errorf("rollback residue: %w", err)
	}
	return nil
}

// CheckDegreeCache verifies a subset's cached degree — however it was
// produced (builder accumulation, memoized scan, full-frontier
// shortcut) — matches a from-scratch rescan of the graph.
func CheckDegreeCache(g *graph.Graph, s *state.Subset) error {
	var want int64
	s.ForEach(func(v graph.Vertex) { want += g.OutDegree(v) })
	got := sg.ActiveDegree(g, s)
	if got != want {
		return fmt.Errorf("degree cache: ActiveDegree %d != rescan %d", got, want)
	}
	if cached, ok := s.Degree(); !ok || cached != want {
		return fmt.Errorf("degree cache: cached %d (ok=%v) != rescan %d", cached, ok, want)
	}
	return nil
}

// sameTraffic demands bit-identical traffic matrices.
func sameTraffic(a, b *numa.TrafficMatrix) error {
	if a.Nodes != b.Nodes || a.Levels != b.Levels {
		return fmt.Errorf("traffic shape %dx%d != %dx%d", a.Nodes, a.Levels, b.Nodes, b.Levels)
	}
	for i := range a.Cells {
		if math.Float64bits(a.Cells[i]) != math.Float64bits(b.Cells[i]) {
			return fmt.Errorf("traffic cell %d: %v != %v", i, a.Cells[i], b.Cells[i])
		}
	}
	return nil
}

// closeRel compares two sums of the same cells added in different
// orders.
func closeRel(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
