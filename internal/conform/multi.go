// Multi-source conformance: the serving layer's batcher answers k point
// queries from one MultiBFS/MultiSSSP sweep, so batching is only
// semantically invisible if each demultiplexed per-source output equals
// an independent single-source run. CheckMultiSource asserts exactly
// that — bit-identical against the same engine, policy-compared against
// every other engine and the sequential oracle.

package conform

import (
	"fmt"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/ligra"
	"polymer/internal/graph"
	"polymer/internal/sg"
)

// RunMultiSource executes one multi-source sweep on a scatter-gather
// engine (the only engines that serve traversal point queries) and
// returns the normalized per-source outputs, index-aligned with srcs.
func RunMultiSource(eng Engine, alg Algo, topo Topo, g *graph.Graph, srcs []graph.Vertex) ([][]float64, error) {
	if alg != BFS && alg != SSSP {
		return nil, fmt.Errorf("conform: multi-source %s unsupported (want bfs or sssp)", alg)
	}
	c := Case{Engine: eng, Algo: alg, Topo: topo}
	m := c.Machine()
	var e sg.Engine
	switch eng {
	case Polymer:
		e = core.MustNew(g, m, core.DefaultOptions())
	case Ligra:
		e = ligra.MustNew(g, m, ligra.DefaultOptions())
	default:
		return nil, fmt.Errorf("conform: multi-source runs need a scatter-gather engine, got %s", eng)
	}
	defer e.Close()
	out := make([][]float64, len(srcs))
	if alg == BFS {
		levels, err := algorithms.MultiBFS(e, srcs)
		if err != nil {
			return nil, err
		}
		for i := range levels {
			out[i] = widenI(levels[i])
		}
		return out, nil
	}
	dist, err := algorithms.MultiSSSP(e, srcs)
	if err != nil {
		return nil, err
	}
	copy(out, dist)
	return out, nil
}

// CheckMultiSource runs one multi-source sweep on eng and compares every
// demultiplexed per-source output three ways: bit-identically against
// the same engine's independent single-source run (the batcher's
// invisibility contract), under the algorithm's policy against every
// other engine's single-source run, and against the sequential oracle.
// It returns the first divergence, or nil.
func CheckMultiSource(eng Engine, alg Algo, topo Topo, g *graph.Graph, srcs []graph.Vertex) *Divergence {
	multi, err := RunMultiSource(eng, alg, topo, g, srcs)
	if err != nil {
		return &Divergence{Case: Case{Engine: eng, Algo: alg, Topo: topo}, Vertex: -1}
	}
	for i, src := range srcs {
		// The same engine answering the same query alone must produce the
		// same bits: a batched response is indistinguishable from a cold
		// single-request run.
		own := Case{Engine: eng, Algo: alg, Topo: topo, Src: src}
		if d := Compare(own, Policy{Exact: true}, Run(own, g).Out, multi[i]); d != nil {
			return d
		}
		if d := Compare(own, PolicyFor(alg), Ref(alg, g, src).Out, multi[i]); d != nil {
			return d
		}
		for _, other := range Engines() {
			if other == eng {
				continue
			}
			oc := Case{Engine: other, Algo: alg, Topo: topo, Src: src}
			if d := Compare(oc, PolicyFor(alg), Run(oc, g).Out, multi[i]); d != nil {
				return d
			}
		}
	}
	return nil
}
