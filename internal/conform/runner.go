package conform

import (
	"fmt"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/galois"
	"polymer/internal/engines/ligra"
	"polymer/internal/engines/xstream"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

// The fixed-iteration counts and constants every run uses, matching the
// bench package ("the first five iterations" for the iterated kernels)
// and the prdelta test conventions.
const (
	Iters      = 5
	Damping    = 0.85
	PRDEps     = 1e-10
	PRDMaxIter = 250
)

// Case is one cell of the conformance matrix.
type Case struct {
	Engine Engine
	Algo   Algo
	Topo   Topo
	// Nodes and Cores size the simulated machine (0,0 = 2x2).
	Nodes, Cores int
	// Src is the traversal source for BFS and SSSP.
	Src graph.Vertex
	// TierPol, DRAMPerNode and PromoteEvery arm tiered memory on the
	// case's machine; the zero values leave it untiered.
	TierPol      numa.TierPolicy
	DRAMPerNode  int64
	PromoteEvery int
}

func (c Case) String() string {
	s := fmt.Sprintf("%s/%s/%s[%dx%d]/src=%d", c.Engine, c.Algo, c.Topo, c.nodes(), c.cores(), c.Src)
	if c.DRAMPerNode > 0 && c.TierPol != numa.TierNone {
		s += fmt.Sprintf("/tier=%s@%d", c.TierPol, c.DRAMPerNode)
	}
	return s
}

func (c Case) nodes() int {
	if c.Nodes == 0 {
		return 2
	}
	return c.Nodes
}

func (c Case) cores() int {
	if c.Cores == 0 {
		return 2
	}
	return c.Cores
}

// Machine builds a fresh simulated machine for the case, arming tiered
// memory when the case requests it.
func (c Case) Machine() *numa.Machine {
	m := numa.NewMachine(c.Topo.Topology(), c.nodes(), c.cores())
	if c.DRAMPerNode > 0 && c.TierPol != numa.TierNone {
		if err := m.SetTierConfig(numa.TierConfig{
			DRAMPerNode:  c.DRAMPerNode,
			Policy:       c.TierPol,
			PromoteEvery: c.PromoteEvery,
		}); err != nil {
			panic(err)
		}
	}
	return m
}

// Result is one run's normalized output: every algorithm's answer as
// one float64 per vertex (BFS levels and CC labels widened), plus the
// simulated clock, the convergence iteration count (PRDelta only), and
// the machine's peak simulated allocation (the footprint tiered cases
// budget DRAM against).
type Result struct {
	Out        []float64
	SimSeconds float64
	Iters      int
	Peak       int64
}

// Run executes the case on a fresh machine and engine and returns the
// normalized output. CC runs on the symmetrized graph, as everywhere
// else in the repository.
func Run(c Case, g *graph.Graph) Result {
	if c.Algo == CC {
		g = g.Symmetrized()
	}
	m := c.Machine()
	switch c.Engine {
	case Polymer, Ligra:
		var e sg.Engine
		if c.Engine == Polymer {
			opt := core.DefaultOptions()
			if c.Algo == PR || c.Algo == SpMV || c.Algo == BP {
				opt.Mode = core.Push
			}
			e = core.MustNew(g, m, opt)
		} else {
			e = ligra.MustNew(g, m, ligra.DefaultOptions())
		}
		defer e.Close()
		r := runSG(e, c)
		r.SimSeconds = e.SimSeconds()
		r.Peak = m.Alloc().Peak()
		return r
	case XStream:
		h := sg.Hints{DataBytes: 8, Weighted: c.Algo.Weighted()}
		if c.Algo == BP {
			h.DataBytes = 16
		}
		e := xstream.MustNew(g, m, xstream.DefaultOptions(), h)
		defer e.Close()
		r := runXS(e, c)
		r.SimSeconds = e.SimSeconds()
		r.Peak = m.Alloc().Peak()
		return r
	case Galois:
		e := galois.MustNew(g, m, galois.DefaultOptions())
		defer e.Close()
		r := runGalois(e, c)
		r.SimSeconds = e.SimSeconds()
		r.Peak = m.Alloc().Peak()
		return r
	}
	panic(fmt.Sprintf("conform: unknown engine %q", c.Engine))
}

func runSG(e sg.Engine, c Case) Result {
	n := e.Graph().NumVertices()
	switch c.Algo {
	case PR:
		return Result{Out: algorithms.PageRank(e, Iters, Damping)}
	case PRDelta:
		out, iters := algorithms.PageRankDelta(e, PRDEps, PRDMaxIter)
		return Result{Out: out, Iters: iters}
	case SpMV:
		return Result{Out: algorithms.SpMV(e, Iters, ones(n))}
	case BP:
		return Result{Out: algorithms.BP(e, Iters)}
	case BFS:
		return Result{Out: widenI(algorithms.BFS(e, c.Src))}
	case CC:
		return Result{Out: widenV(algorithms.CC(e))}
	case SSSP:
		return Result{Out: algorithms.SSSP(e, c.Src)}
	}
	panic("conform: unknown algorithm")
}

func runXS(e *xstream.Engine, c Case) Result {
	n := e.Graph().NumVertices()
	switch c.Algo {
	case PR:
		return Result{Out: algorithms.XSPageRank(e, Iters, Damping)}
	case PRDelta:
		out, iters := algorithms.XSPageRankDelta(e, PRDEps, PRDMaxIter)
		return Result{Out: out, Iters: iters}
	case SpMV:
		return Result{Out: algorithms.XSSpMV(e, Iters, ones(n))}
	case BP:
		return Result{Out: algorithms.XSBP(e, Iters)}
	case BFS:
		return Result{Out: widenI(algorithms.XSBFS(e, c.Src))}
	case CC:
		return Result{Out: widenV(algorithms.XSCC(e))}
	case SSSP:
		return Result{Out: algorithms.XSSSSP(e, c.Src)}
	}
	panic("conform: unknown algorithm")
}

func runGalois(e *galois.Engine, c Case) Result {
	n := e.Graph().NumVertices()
	switch c.Algo {
	case PR:
		return Result{Out: e.PageRank(Iters, Damping)}
	case PRDelta:
		out, iters := e.PageRankDelta(PRDEps, PRDMaxIter)
		return Result{Out: out, Iters: iters}
	case SpMV:
		return Result{Out: e.SpMV(Iters, ones(n))}
	case BP:
		return Result{Out: e.BP(Iters)}
	case BFS:
		return Result{Out: widenI(e.BFS(c.Src))}
	case CC:
		return Result{Out: widenV(e.CC())}
	case SSSP:
		return Result{Out: e.SSSP(c.Src)}
	}
	panic("conform: unknown algorithm")
}

// Ref runs the sequential oracle for the algorithm. PRDelta's oracle is
// a long fixed-iteration power-method run: at eps=1e-10 the delta
// formulation has converged well inside the PRDelta policy's absolute
// tolerance.
func Ref(a Algo, g *graph.Graph, src graph.Vertex) Result {
	switch a {
	case PR:
		return Result{Out: algorithms.RefPageRank(g, Iters, Damping)}
	case PRDelta:
		return Result{Out: algorithms.RefPageRank(g, PRDMaxIter+20, Damping)}
	case SpMV:
		return Result{Out: algorithms.RefSpMV(g, Iters, ones(g.NumVertices()))}
	case BP:
		return Result{Out: algorithms.RefBP(g, Iters)}
	case BFS:
		return Result{Out: widenI(algorithms.RefBFS(g, src))}
	case CC:
		return Result{Out: widenV(algorithms.RefCC(g))}
	case SSSP:
		return Result{Out: algorithms.RefSSSP(g, src)}
	}
	panic("conform: unknown algorithm")
}

// Check runs the case and its oracle and returns the first divergence
// under the algorithm's policy, or nil.
func Check(c Case, g *graph.Graph) *Divergence {
	want := Ref(c.Algo, g, c.Src)
	got := Run(c, g)
	return Compare(c, PolicyFor(c.Algo), want.Out, got.Out)
}

func ones(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

func widenI(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func widenV(xs []graph.Vertex) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
