package conform

import (
	"testing"

	"polymer/internal/algorithms"
	"polymer/internal/core"
	"polymer/internal/engines/galois"
	"polymer/internal/engines/ligra"
	"polymer/internal/engines/xstream"
	"polymer/internal/fault"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

func metamorphicGraph() *graph.Graph {
	n, e := gen.Powerlaw(192, 4, 2.0, 13)
	gen.AddRandomWeights(e, 17)
	return graph.FromEdges(n, e, true)
}

// TestPermutationInvariance: relabeling the vertices is semantics-
// preserving — running on the permuted graph and mapping the output back
// must agree with the original run. CSR neighbour order, partition
// boundaries and float summation order all move, so float kernels are
// compared under the relaxed policy; CC labelings are canonicalised
// because "smallest id in the component" itself moves.
func TestPermutationInvariance(t *testing.T) {
	g := metamorphicGraph()
	perm := Permutation(g.NumVertices(), 99)
	pg := Permute(g, perm)
	const src = 3
	for _, eng := range Engines() {
		for _, alg := range Algos() {
			c := Case{Engine: eng, Algo: alg, Topo: Intel80, Src: src}
			t.Run(c.String(), func(t *testing.T) {
				base := Run(c, g)
				pc := c
				pc.Src = graph.Vertex(perm[src])
				permuted := Run(pc, pg)
				got := Unpermute(permuted.Out, perm)
				p := PolicyFor(alg).Relaxed()
				if d := Compare(c, p, Normalize(alg, base.Out), Normalize(alg, got)); d != nil {
					t.Fatalf("permutation variance: %v", d)
				}
			})
		}
	}
}

// TestPartitionCountIndependence: the number of simulated NUMA nodes
// changes where data lives and how edges are partitioned, never what is
// computed.
func TestPartitionCountIndependence(t *testing.T) {
	g := metamorphicGraph()
	for _, eng := range Engines() {
		for _, alg := range Algos() {
			one := Case{Engine: eng, Algo: alg, Topo: Intel80, Nodes: 1, Cores: 4, Src: 3}
			four := Case{Engine: eng, Algo: alg, Topo: Intel80, Nodes: 4, Cores: 2, Src: 3}
			t.Run(one.String(), func(t *testing.T) {
				a := Run(one, g)
				b := Run(four, g)
				p := PolicyFor(alg).Relaxed()
				if d := Compare(four, p, Normalize(alg, a.Out), Normalize(alg, b.Out)); d != nil {
					t.Fatalf("partition-count variance: %v", d)
				}
			})
		}
	}
}

// TestRerunDeterminism: re-running the identical case must reproduce the
// answer under the algorithm's own (unrelaxed) policy on every engine.
// PageRank is additionally held to bit-identity on the engines whose
// reduction order is scheduler-independent (X-Stream's sequential gather
// phase, Galois's per-vertex pull). Polymer and Ligra push PageRank
// through atomic adds, whose commit order moves with the scheduler, so
// they answer only for ULP-level agreement here; their bit-identity in
// pull mode is pinned by TestPullModeRerunBitIdentity.
func TestRerunDeterminism(t *testing.T) {
	g := metamorphicGraph()
	for _, eng := range Engines() {
		for _, alg := range Algos() {
			c := Case{Engine: eng, Algo: alg, Topo: AMD64, Src: 3}
			t.Run(c.String(), func(t *testing.T) {
				a := Run(c, g)
				b := Run(c, g)
				p := PolicyFor(alg)
				if alg == PR && (eng == XStream || eng == Galois) {
					p = Policy{Exact: true}
				}
				if d := Compare(c, p, Normalize(alg, a.Out), Normalize(alg, b.Out)); d != nil {
					t.Fatalf("re-run variance: %v", d)
				}
			})
		}
	}
}

// TestPullModeRerunBitIdentity: on a single node in pull mode every
// destination's whole in-edge list is gathered sequentially by one
// thread, so there is no commit order to race on — re-runs must be
// bit-identical regardless of scheduling. (Across nodes even pull mode
// merges per-node partial aggregates through atomics, the paper's
// Polymer design, so multi-node bit stability is scheduler-dependent
// and probed rather than asserted elsewhere.)
func TestPullModeRerunBitIdentity(t *testing.T) {
	g := metamorphicGraph()
	run := func() ([]float64, []float64) {
		opt := core.DefaultOptions()
		opt.Mode = core.Pull
		e := core.MustNew(g, numa.NewMachine(numa.IntelXeon80(), 1, 4), opt)
		defer e.Close()
		pr := algorithms.PageRank(e, Iters, Damping)
		y := algorithms.SpMV(e, Iters, ones(g.NumVertices()))
		return pr, y
	}
	pr1, y1 := run()
	pr2, y2 := run()
	c := Case{Engine: Polymer, Algo: PR, Topo: Intel80}
	if d := Compare(c, Policy{Exact: true}, pr1, pr2); d != nil {
		t.Fatalf("pull PageRank re-run variance: %v", d)
	}
	c.Algo = SpMV
	if d := Compare(c, Policy{Exact: true}, y1, y2); d != nil {
		t.Fatalf("pull SpMV re-run variance: %v", d)
	}
}

// TestFaultReplayEquivalence: a run that suffers injected faults —
// worker panics, stalled threads, degraded links — and recovers by
// rollback/replay must commit output bit-identical to a fault-free run.
func TestFaultReplayEquivalence(t *testing.T) {
	g := metamorphicGraph()
	const spec = "panic@1:t1,stall@2:t0,link@3:n0-n1*0.5"
	m := func() *numa.Machine { return numa.NewMachine(numa.IntelXeon80(), 2, 2) }
	newSess := func(e fault.Engine) *fault.Session {
		evs, err := fault.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		s := fault.NewSession(e, fault.NewInjector(evs))
		s.SetMaxRetries(5)
		return s
	}
	run := func(eng Engine, faulty bool) []float64 {
		switch eng {
		case Polymer, Ligra:
			var e sg.Engine
			if eng == Polymer {
				opt := core.DefaultOptions()
				opt.Mode = core.Push
				e = core.MustNew(g, m(), opt)
			} else {
				e = ligra.MustNew(g, m(), ligra.DefaultOptions())
			}
			defer e.Close()
			var sess *fault.Session
			if faulty {
				sess = newSess(e.(fault.Engine))
			}
			out, err := algorithms.PageRankE(e, Iters, Damping, sess)
			if err != nil {
				t.Fatalf("%s did not survive %q: %v", eng, spec, err)
			}
			return out
		case XStream:
			e := xstream.MustNew(g, m(), xstream.DefaultOptions(), sg.Hints{DataBytes: 8})
			defer e.Close()
			var sess *fault.Session
			if faulty {
				sess = newSess(e)
			}
			out, err := algorithms.XSPageRankE(e, Iters, Damping, sess)
			if err != nil {
				t.Fatalf("%s did not survive %q: %v", eng, spec, err)
			}
			return out
		case Galois:
			e := galois.MustNew(g, m(), galois.DefaultOptions())
			defer e.Close()
			var sess *fault.Session
			if faulty {
				sess = newSess(e)
			}
			out, err := e.PageRankE(Iters, Damping, sess)
			if err != nil {
				t.Fatalf("%s did not survive %q: %v", eng, spec, err)
			}
			return out
		}
		panic("unreachable")
	}
	for _, eng := range Engines() {
		t.Run(string(eng), func(t *testing.T) {
			// Polymer and Ligra push PageRank through atomic adds, so
			// run-to-run bit stability depends on the scheduler (it holds
			// in plain runs, drifts under -race). Probe it the way the
			// fault matrix does for BFS: demand bit-identity exactly when
			// two clean runs reproduce each other, ULP-agreement otherwise.
			clean := run(eng, false)
			clean2 := run(eng, false)
			c := Case{Engine: eng, Algo: PR, Topo: Intel80}
			p := Policy{Exact: true}
			if Compare(c, p, clean, clean2) != nil {
				p = PolicyFor(PR)
			}
			faulty := run(eng, true)
			if d := Compare(c, p, clean, faulty); d != nil {
				t.Fatalf("recovered run diverges from fault-free: %v", d)
			}
		})
	}
}

// TestSpMVLinearity: SpMV is linear, and scaling the input by a power of
// two is exact in binary floating point, so y(2x) must equal 2*y(x) bit
// for bit on every engine.
func TestSpMVLinearity(t *testing.T) {
	g := metamorphicGraph()
	n := g.NumVertices()
	x := make([]float64, n)
	x2 := make([]float64, n)
	rng := gen.NewRNG(5)
	for i := range x {
		x[i] = rng.Float64()
		x2[i] = 2 * x[i]
	}
	run := func(eng Engine, in []float64) []float64 {
		m := numa.NewMachine(numa.IntelXeon80(), 2, 2)
		switch eng {
		case Polymer:
			// Single-node pull: deterministic summation order makes the
			// bitwise scaling claim unconditional.
			opt := core.DefaultOptions()
			opt.Mode = core.Pull
			e := core.MustNew(g, numa.NewMachine(numa.IntelXeon80(), 1, 4), opt)
			defer e.Close()
			return algorithms.SpMV(e, Iters, in)
		case Ligra:
			e := ligra.MustNew(g, m, ligra.DefaultOptions())
			defer e.Close()
			return algorithms.SpMV(e, Iters, in)
		case XStream:
			e := xstream.MustNew(g, m, xstream.DefaultOptions(), sg.Hints{DataBytes: 8, Weighted: true})
			defer e.Close()
			return algorithms.XSSpMV(e, Iters, in)
		case Galois:
			e := galois.MustNew(g, m, galois.DefaultOptions())
			defer e.Close()
			return e.SpMV(Iters, in)
		}
		panic("unreachable")
	}
	for _, eng := range Engines() {
		t.Run(string(eng), func(t *testing.T) {
			y := run(eng, x)
			y2 := run(eng, x2)
			scaled := make([]float64, len(y))
			for v := range y {
				scaled[v] = 2 * y[v]
			}
			// Ligra's push-mode atomic adds commit in scheduler order, so
			// the two runs may not share a summation order; probe with a
			// re-run and fall back to ULP agreement when they don't.
			p := Policy{Exact: true}
			c := Case{Engine: eng, Algo: SpMV, Topo: Intel80}
			if eng == Ligra {
				if Compare(c, p, y, run(eng, x)) != nil {
					p = PolicyFor(SpMV)
				}
			}
			if d := Compare(c, p, scaled, y2); d != nil {
				t.Fatalf("linearity violated: %v", d)
			}
		})
	}
}
