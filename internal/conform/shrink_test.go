package conform

import (
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
)

// failsInjected builds the shrink predicate for an injected-bug oracle:
// the candidate graph still fails while the broken variant diverges from
// the true oracle on it.
func failsInjected(b InjectedBug) Failing {
	return func(n int, edges []graph.Edge) bool {
		g := graph.FromEdges(n, edges, false)
		return CheckInjected(b, g, 0) != nil
	}
}

// seedGraph is a random graph every injected bug is visible on.
func seedGraph(t *testing.T, b InjectedBug) (int, []graph.Edge) {
	t.Helper()
	n, edges := gen.Uniform(64, 300, 3)
	// Guarantee the bug's trigger exists regardless of the random draw:
	// a self-loop for pr-selfloop, a back-edge into vertex 0 for
	// cc-directed and bfs-offbyone (0 has out-edges with high probability
	// already; the loop below makes a divergent hop certain).
	edges = append(edges, graph.Edge{Src: 9, Dst: 9}, graph.Edge{Src: 17, Dst: 0}, graph.Edge{Src: 0, Dst: 33})
	if !failsInjected(b)(n, edges) {
		t.Fatalf("seed graph does not expose %s", b)
	}
	return n, edges
}

// TestShrinkMinimizesInjectedBugs: the reducer must take each injected
// bug from a 300-edge random graph down to its documented canonical
// repro.
func TestShrinkMinimizesInjectedBugs(t *testing.T) {
	want := map[InjectedBug]struct{ n, edges int }{
		BugPRSelfLoop:  {1, 1}, // one vertex, one self-loop
		BugCCDirected:  {2, 1}, // two vertices, one directed edge
		BugBFSOffByOne: {2, 1}, // source plus one out-neighbour
	}
	for _, b := range InjectedBugs() {
		t.Run(string(b), func(t *testing.T) {
			n, edges := seedGraph(t, b)
			sn, sedges := Shrink(n, edges, failsInjected(b))
			if !failsInjected(b)(sn, sedges) {
				t.Fatalf("shrunk graph no longer fails: n=%d edges=%v", sn, sedges)
			}
			w := want[b]
			if sn != w.n || len(sedges) != w.edges {
				t.Fatalf("shrunk to n=%d |E|=%d (%v), want n=%d |E|=%d", sn, len(sedges), sedges, w.n, w.edges)
			}
		})
	}
}

// TestShrinkDeterministic: the reducer revisits candidates, so it must
// produce the identical minimal graph on every invocation.
func TestShrinkDeterministic(t *testing.T) {
	n, edges := seedGraph(t, BugCCDirected)
	n1, e1 := Shrink(n, append([]graph.Edge(nil), edges...), failsInjected(BugCCDirected))
	n2, e2 := Shrink(n, append([]graph.Edge(nil), edges...), failsInjected(BugCCDirected))
	if n1 != n2 || len(e1) != len(e2) {
		t.Fatalf("nondeterministic shrink: (%d,%d) vs (%d,%d)", n1, len(e1), n2, len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("nondeterministic shrink at edge %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

// TestShrinkPassingInputUnchanged: a graph that does not fail is
// returned as-is.
func TestShrinkPassingInputUnchanged(t *testing.T) {
	n, edges := gen.Chain(8)
	sn, sedges := Shrink(n, edges, func(int, []graph.Edge) bool { return false })
	if sn != n || len(sedges) != len(edges) {
		t.Fatalf("passing input was modified: n=%d |E|=%d", sn, len(sedges))
	}
}

// TestInjectedBugsVisibleOnAdversarialCorpus: every injected bug is
// caught by at least one adversarial shape, and none of them diverge on
// the empty graph (the harness must not cry wolf).
func TestInjectedBugsVisibleOnAdversarialCorpus(t *testing.T) {
	for _, b := range InjectedBugs() {
		caught := false
		for _, shape := range gen.Adversarial() {
			g := graph.FromEdges(shape.N, shape.Edges, false)
			if CheckInjected(b, g, 0) != nil {
				caught = true
				break
			}
		}
		if !caught {
			t.Errorf("%s not visible on any adversarial shape", b)
		}
		if d := CheckInjected(b, graph.FromEdges(0, nil, false), 0); d != nil {
			t.Errorf("%s diverges on the empty graph: %v", b, d)
		}
	}
}
