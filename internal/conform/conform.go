// Package conform is the cross-engine conformance harness: the safety
// net asserting that every engine computes the same answer on the same
// graph, that the answers are invariant under semantics-preserving
// transformations, and that the simulated NUMA substrate conserves its
// accounting exactly.
//
// It is organised in three tiers:
//
//   - Differential oracle: every algorithm x every engine x both
//     topologies against the sequential Ref* implementations, with
//     per-algorithm tolerance policies (exact for traversals,
//     ULP-bounded for float kernels).
//   - Metamorphic properties: vertex-relabeling invariance, partition-
//     count independence, re-run determinism, SpMV scaling linearity,
//     and fault-injected replay = fault-free output.
//   - Substrate invariants: traffic-matrix conservation, rollback
//     residue, frontier degree-cache consistency, checkpoint
//     round-trips.
//
// The same machinery backs the table-driven test suites (here and in
// each engine package) and the cmd/conform CLI with its shrinking
// reducer.
package conform

import (
	"fmt"
	"math"

	"polymer/internal/numa"
)

// Engine names one of the four evaluated engines.
type Engine string

// The four engines of the paper's evaluation.
const (
	Polymer Engine = "polymer"
	Ligra   Engine = "ligra"
	XStream Engine = "xstream"
	Galois  Engine = "galois"
)

// Engines lists all four.
func Engines() []Engine { return []Engine{Polymer, Ligra, XStream, Galois} }

// Algo names one of the seven conformance algorithms: the paper's six
// plus the convergence-driven PageRankDelta.
type Algo string

// The conformance algorithm set.
const (
	PR      Algo = "pr"
	PRDelta Algo = "prdelta"
	SpMV    Algo = "spmv"
	BP      Algo = "bp"
	BFS     Algo = "bfs"
	CC      Algo = "cc"
	SSSP    Algo = "sssp"
)

// Algos lists all seven.
func Algos() []Algo { return []Algo{PR, PRDelta, SpMV, BP, BFS, CC, SSSP} }

// Weighted reports whether the algorithm consumes edge weights.
func (a Algo) Weighted() bool { return a == SpMV || a == SSSP || a == BP }

// Topo names a simulated machine topology.
type Topo string

// The paper's two evaluation machines.
const (
	Intel80 Topo = "intel80"
	AMD64   Topo = "amd64"
)

// Topos lists both.
func Topos() []Topo { return []Topo{Intel80, AMD64} }

// Topology resolves the named topology.
func (t Topo) Topology() *numa.Topology {
	switch t {
	case Intel80:
		return numa.IntelXeon80()
	case AMD64:
		return numa.AMDOpteron64()
	}
	panic(fmt.Sprintf("conform: unknown topology %q", t))
}

// Policy is a per-algorithm tolerance for comparing one output value
// against the oracle: Exact demands bit equality; otherwise values agree
// when within ULPs units in the last place or within Abs absolutely
// (either suffices — Abs covers values at or near zero, where a fixed
// ULP budget is meaninglessly tight).
type Policy struct {
	Exact bool
	ULPs  int64
	Abs   float64
}

// PolicyFor returns the conformance tolerance for an algorithm.
//
//   - BFS levels and CC labels are integers: exact.
//   - SSSP distances are per-path ordered sums, identical in every
//     engine up to relaxation races that cannot change the fixed point:
//     a token ULP budget.
//   - PR, SpMV and BP accumulate float sums whose association order
//     differs between engines (and between parallel schedules): a ULP
//     budget wide enough for reassociation over the test graphs yet
//     ~1e5x tighter than the old ad-hoc 1e-9 relative checks.
//   - PRDelta converges by a different route than power iteration, so it
//     is compared absolutely at just below its convergence floor
//     (eps/(1-d) mass still in flight at eps=1e-10).
func PolicyFor(a Algo) Policy {
	switch a {
	case BFS, CC:
		return Policy{Exact: true}
	case SSSP:
		return Policy{ULPs: 4}
	case PRDelta:
		return Policy{Abs: 1e-6}
	default: // PR, SpMV, BP
		return Policy{ULPs: 1 << 20, Abs: 1e-12}
	}
}

// Relaxed widens a float policy for comparisons across different
// summation orders (permuted vertex ids, different partition counts),
// where reassociation error compounds beyond the same-order budget.
// Exact policies stay exact: integer outputs do not reassociate.
func (p Policy) Relaxed() Policy {
	if p.Exact {
		return p
	}
	r := Policy{ULPs: p.ULPs * 16, Abs: p.Abs}
	if r.ULPs < 1<<12 {
		r.ULPs = 1 << 12
	}
	if r.Abs < 1e-9 {
		r.Abs = 1e-9
	}
	return r
}

// Equal reports whether got conforms to want under the policy.
func (p Policy) Equal(want, got float64) bool {
	if p.Exact {
		return math.Float64bits(want) == math.Float64bits(got)
	}
	if want == got { // covers +-Inf and exact matches
		return true
	}
	if math.Abs(want-got) <= p.Abs {
		return true
	}
	return ulpDiff(want, got) <= p.ULPs
}

// ulpDiff returns the distance between two floats in units in the last
// place, using the lexicographic ordering of IEEE-754 bit patterns.
// NaNs and mismatched infinities are infinitely far apart.
func ulpDiff(a, b float64) int64 {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		if a == b {
			return 0
		}
		return math.MaxInt64
	}
	ia, ib := orderedBits(a), orderedBits(b)
	if ia < ib {
		ia, ib = ib, ia
	}
	d := ia - ib
	if d > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(d)
}

// orderedBits maps a float64 onto a monotonically ordered uint64 line
// (the usual sign-magnitude to biased mapping; -0 and +0 are adjacent).
func orderedBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// Divergence reports one conformance failure: the first vertex at which
// an output departed from the oracle under the case's policy.
type Divergence struct {
	Case   Case
	Vertex int
	Want   float64
	Got    float64
}

// Error formats the divergence; *Divergence satisfies error so harness
// layers can propagate it.
func (d *Divergence) Error() string {
	return fmt.Sprintf("%s: vertex %d: got %v, want %v", d.Case, d.Vertex, d.Got, d.Want)
}

// Compare checks got against want under the policy and returns the
// first divergence, or nil. A length mismatch diverges at the first
// missing vertex.
func Compare(c Case, p Policy, want, got []float64) *Divergence {
	n := len(want)
	if len(got) != n {
		return &Divergence{Case: c, Vertex: min(len(want), len(got)), Want: float64(len(want)), Got: float64(len(got))}
	}
	for v := 0; v < n; v++ {
		if !p.Equal(want[v], got[v]) {
			return &Divergence{Case: c, Vertex: v, Want: want[v], Got: got[v]}
		}
	}
	return nil
}
