package conform

import "polymer/internal/graph"

// Failing reports whether the harness still fails on the candidate
// graph. Predicates must be deterministic: the reducer revisits
// candidates and assumes stable verdicts.
type Failing func(n int, edges []graph.Edge) bool

// Shrink minimises a failing graph with a deterministic delta-debugging
// pass: ddmin over the edge list (chunk removal with halving
// granularity down to single edges), then vertex compaction (drop
// isolated vertices and renumber the rest densely). Every reduction is
// re-validated through fails, so the result is the smallest graph the
// reducer found that still fails — a loadable, human-readable repro.
func Shrink(n int, edges []graph.Edge, fails Failing) (int, []graph.Edge) {
	cur := append([]graph.Edge(nil), edges...)
	if !fails(n, cur) {
		return n, cur // not failing to begin with: nothing to minimise
	}

	// ddmin over edges.
	for gran := 2; len(cur) > 0; {
		chunk := (len(cur) + gran - 1) / gran
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := min(start+chunk, len(cur))
			cand := make([]graph.Edge, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if fails(n, cand) {
				cur = cand
				gran = max(gran-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if gran >= len(cur) {
				break
			}
			gran = min(gran*2, len(cur))
		}
	}

	// Vertex compaction: keep only vertices incident to a surviving
	// edge, renumbered in ascending order. Adopted only if the compacted
	// graph still fails (the failure may live in an isolated vertex).
	used := make([]bool, n)
	for _, e := range cur {
		used[e.Src] = true
		used[e.Dst] = true
	}
	remap := make([]graph.Vertex, n)
	k := 0
	for v := 0; v < n; v++ {
		if used[v] {
			remap[v] = graph.Vertex(k)
			k++
		}
	}
	if k < n {
		cand := make([]graph.Edge, len(cur))
		for i, e := range cur {
			cand[i] = graph.Edge{Src: remap[e.Src], Dst: remap[e.Dst], Wt: e.Wt}
		}
		candN := k
		if candN == 0 && len(cand) == 0 {
			// Try the truly empty graph first, then a single vertex.
			if fails(0, nil) {
				return 0, nil
			}
			if fails(1, nil) {
				return 1, nil
			}
		}
		if candN > 0 && fails(candN, cand) {
			return candN, cand
		}
	}
	return n, cur
}
