package conform

import (
	"polymer/internal/gen"
	"polymer/internal/graph"
)

// Metamorphic helpers: semantics-preserving graph transformations and
// the output normalisations needed to compare results across them.

// EdgesOf reconstructs the edge list of a CSR graph (out-direction
// order), so a transformed copy can be rebuilt with FromEdges.
func EdgesOf(g *graph.Graph) []graph.Edge {
	edges := make([]graph.Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.OutNeighbors(graph.Vertex(v))
		wts := g.OutWeights(graph.Vertex(v))
		for j, u := range nbrs {
			e := graph.Edge{Src: graph.Vertex(v), Dst: u}
			if wts != nil {
				e.Wt = wts[j]
			}
			edges = append(edges, e)
		}
	}
	return edges
}

// Permutation returns a seeded uniform permutation of [0, n): perm[old]
// is the relabeled vertex id.
func Permutation(n int, seed uint64) []int {
	rng := gen.NewRNG(seed)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Permute relabels every vertex of g through perm and rebuilds the CSR.
// The result is isomorphic to g, but vertex ids, CSR neighbour order and
// partition boundaries all move.
func Permute(g *graph.Graph, perm []int) *graph.Graph {
	edges := EdgesOf(g)
	for i := range edges {
		edges[i].Src = graph.Vertex(perm[edges[i].Src])
		edges[i].Dst = graph.Vertex(perm[edges[i].Dst])
	}
	return graph.FromEdges(g.NumVertices(), edges, g.Weighted())
}

// Unpermute maps an output computed on the permuted graph back into the
// original vertex order: result[v] = out[perm[v]].
func Unpermute(out []float64, perm []int) []float64 {
	res := make([]float64, len(out))
	for v := range res {
		res[v] = out[perm[v]]
	}
	return res
}

// CanonicalLabels rewrites a component labeling into its canonical form:
// every vertex gets the smallest vertex index carrying the same label.
// Two labelings describe the same partition iff their canonical forms
// are identical — this is how CC outputs are compared across
// relabelings, where "smallest id in the component" itself moves.
func CanonicalLabels(out []float64) []float64 {
	first := make(map[float64]float64, len(out))
	res := make([]float64, len(out))
	for v, l := range out {
		if _, ok := first[l]; !ok {
			first[l] = float64(v)
		}
		res[v] = first[l]
	}
	return res
}

// Normalize prepares an output vector for comparison across graph
// transformations: CC labelings are canonicalised, everything else is
// returned as-is.
func Normalize(a Algo, out []float64) []float64 {
	if a == CC {
		return CanonicalLabels(out)
	}
	return out
}
