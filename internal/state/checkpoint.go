// Checkpointing of vertex state for the resilience layer: a Checkpoint
// tracks the backing arrays of an algorithm's double-buffered vertex data
// and snapshots them before each superstep, so an injected fault can roll
// the run back and replay the step to bit-identical output.

package state

// Checkpoint snapshots a set of tracked slices. Save buffers are
// allocated once per tracked slice and reused across supersteps, so
// steady-state checkpointing allocates nothing.
//
// Tracking is by backing array: algorithms that swap current/next
// pointers after a step still restore correctly, because the snapshot
// rewrites the arrays themselves, not the caller's slice headers.
type Checkpoint struct {
	f64 []trackedSlice[float64]
	u32 []trackedSlice[uint32]
	i64 []trackedSlice[int64]
	u8  []trackedSlice[uint8]
}

type trackedSlice[T any] struct {
	live []T
	save []T
}

// NewCheckpoint returns an empty checkpoint.
func NewCheckpoint() *Checkpoint { return &Checkpoint{} }

// TrackF64 registers a float64 slice for snapshotting.
func (c *Checkpoint) TrackF64(xs ...[]float64) {
	for _, x := range xs {
		c.f64 = append(c.f64, trackedSlice[float64]{live: x, save: make([]float64, len(x))})
	}
}

// TrackU32 registers a uint32 slice for snapshotting.
func (c *Checkpoint) TrackU32(xs ...[]uint32) {
	for _, x := range xs {
		c.u32 = append(c.u32, trackedSlice[uint32]{live: x, save: make([]uint32, len(x))})
	}
}

// TrackI64 registers an int64 slice for snapshotting.
func (c *Checkpoint) TrackI64(xs ...[]int64) {
	for _, x := range xs {
		c.i64 = append(c.i64, trackedSlice[int64]{live: x, save: make([]int64, len(x))})
	}
}

// TrackU8 registers a byte slice for snapshotting.
func (c *Checkpoint) TrackU8(xs ...[]uint8) {
	for _, x := range xs {
		c.u8 = append(c.u8, trackedSlice[uint8]{live: x, save: make([]uint8, len(x))})
	}
}

// Save copies every tracked slice into its save buffer.
func (c *Checkpoint) Save() {
	for i := range c.f64 {
		copy(c.f64[i].save, c.f64[i].live)
	}
	for i := range c.u32 {
		copy(c.u32[i].save, c.u32[i].live)
	}
	for i := range c.i64 {
		copy(c.i64[i].save, c.i64[i].live)
	}
	for i := range c.u8 {
		copy(c.u8[i].save, c.u8[i].live)
	}
}

// Restore copies every save buffer back over its tracked slice.
func (c *Checkpoint) Restore() {
	for i := range c.f64 {
		copy(c.f64[i].live, c.f64[i].save)
	}
	for i := range c.u32 {
		copy(c.u32[i].live, c.u32[i].save)
	}
	for i := range c.i64 {
		copy(c.i64[i].live, c.i64[i].save)
	}
	for i := range c.u8 {
		copy(c.u8[i].live, c.u8[i].save)
	}
}

// Tracked returns how many slices are being checkpointed.
func (c *Checkpoint) Tracked() int {
	return len(c.f64) + len(c.u32) + len(c.i64) + len(c.u8)
}

// Bytes returns the snapshot footprint in bytes.
func (c *Checkpoint) Bytes() int64 {
	var n int64
	for i := range c.f64 {
		n += int64(len(c.f64[i].save)) * 8
	}
	for i := range c.u32 {
		n += int64(len(c.u32[i].save)) * 4
	}
	for i := range c.i64 {
		n += int64(len(c.i64[i].save)) * 8
	}
	for i := range c.u8 {
		n += int64(len(c.u8[i].save))
	}
	return n
}
