// Package state implements graph runtime state: the set of active
// vertices for the current and next iteration.
//
// Polymer's runtime states are partitioned per NUMA node and reached
// through a lock-less lookup table (paper Section 4.2): each node owns the
// leaf covering its vertex range. A leaf is either a dense bitmap —
// efficient when a large proportion of vertices is active — or a set of
// per-thread append-only queues, merged and de-duplicated when the subset
// is sealed (Section 5, "Adaptive Data Structures"). ShouldDense
// implements the Ligra-style switching heuristic the engines use.
package state

import (
	"math/bits"
	"sort"
	"sync/atomic"
)

// Subset is an immutable set of vertices over [0, n), partitioned into
// per-node leaves. n and the partition come from the bounds slice
// (len nodes+1, bounds[0]=0, bounds[nodes]=n).
type Subset struct {
	bounds []int
	count  int64
	degree int64 // cached out-degree sum of the active vertices; -1 unknown
	dense  bool
	words  [][]uint64 // dense: per-node bitmap; bit i = vertex bounds[p]+i
	lists  [][]uint32 // sparse: per-node ascending vertex ids (global)
}

// NewAll returns the dense subset containing every vertex.
func NewAll(bounds []int) *Subset {
	nodes := len(bounds) - 1
	s := &Subset{bounds: bounds, degree: -1, dense: true, words: make([][]uint64, nodes)}
	for p := 0; p < nodes; p++ {
		ln := bounds[p+1] - bounds[p]
		w := make([]uint64, (ln+63)/64)
		for i := range w {
			w[i] = ^uint64(0)
		}
		if r := ln % 64; r != 0 && ln > 0 {
			w[len(w)-1] = (1 << r) - 1
		}
		s.words[p] = w
	}
	s.count = int64(bounds[nodes])
	return s
}

// NewEmpty returns the empty sparse subset.
func NewEmpty(bounds []int) *Subset {
	nodes := len(bounds) - 1
	return &Subset{bounds: bounds, lists: make([][]uint32, nodes)}
}

// NewSingle returns the sparse subset {v}.
func NewSingle(bounds []int, v uint32) *Subset {
	s := NewEmpty(bounds)
	s.degree = -1
	p := nodeOf(bounds, v)
	s.lists[p] = []uint32{v}
	s.count = 1
	return s
}

// FromVertices returns a sparse subset of the given vertices (duplicates
// are removed).
func FromVertices(bounds []int, vs []uint32) *Subset {
	b := NewBuilder(bounds, 1, false)
	for _, v := range vs {
		b.Add(0, v)
	}
	return b.Build()
}

// Degree returns the cached out-degree sum of the active vertices, if one
// was recorded while the subset was built (or memoized afterwards). The
// engines' adaptive dense/sparse switch reads this instead of re-scanning
// the frontier on every EdgeMap.
func (s *Subset) Degree() (int64, bool) {
	if s.degree < 0 {
		return 0, false
	}
	return s.degree, true
}

// SetDegree memoizes the out-degree sum of the active vertices. The value
// must equal the sum a full scan would produce; callers that compute it
// lazily (sg.ActiveDegree) store it here so repeated EdgeMaps over the
// same subset pay the scan once. Not safe for concurrent use.
func (s *Subset) SetDegree(d int64) { s.degree = d }

func nodeOf(bounds []int, v uint32) int {
	lo, hi := 0, len(bounds)-2
	for lo < hi {
		mid := (lo + hi) / 2
		if bounds[mid+1] <= int(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Nodes returns the number of per-node leaves.
func (s *Subset) Nodes() int { return len(s.bounds) - 1 }

// Bounds returns the partition offsets backing the lookup table.
func (s *Subset) Bounds() []int { return s.bounds }

// Count returns the number of active vertices.
func (s *Subset) Count() int64 { return s.count }

// IsEmpty reports whether no vertex is active.
func (s *Subset) IsEmpty() bool { return s.count == 0 }

// Dense reports whether the subset uses bitmap leaves.
func (s *Subset) Dense() bool { return s.dense }

// Contains reports whether v is active. For sparse subsets this is a
// binary search in the owning leaf.
func (s *Subset) Contains(v uint32) bool {
	p := nodeOf(s.bounds, v)
	if s.dense {
		i := int(v) - s.bounds[p]
		return s.words[p][i/64]&(1<<(i%64)) != 0
	}
	l := s.lists[p]
	k := sort.Search(len(l), func(i int) bool { return l[i] >= v })
	return k < len(l) && l[k] == v
}

// Words returns node p's bitmap leaf (dense subsets only).
func (s *Subset) Words(p int) []uint64 {
	if !s.dense {
		panic("state: Words on sparse subset")
	}
	return s.words[p]
}

// List returns node p's vertex list (sparse subsets only), ascending.
func (s *Subset) List(p int) []uint32 {
	if s.dense {
		panic("state: List on dense subset")
	}
	return s.lists[p]
}

// ForEachInNode calls fn for every active vertex owned by node p, in
// ascending order.
func (s *Subset) ForEachInNode(p int, fn func(v uint32)) {
	if s.dense {
		base := s.bounds[p]
		for wi, w := range s.words[p] {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				fn(uint32(base + wi*64 + b))
				w &= w - 1
			}
		}
		return
	}
	for _, v := range s.lists[p] {
		fn(v)
	}
}

// ForEach calls fn for every active vertex, node by node, ascending.
func (s *Subset) ForEach(fn func(v uint32)) {
	for p := 0; p < s.Nodes(); p++ {
		s.ForEachInNode(p, fn)
	}
}

// ToDense returns a dense view of the subset (itself if already dense).
func (s *Subset) ToDense() *Subset {
	if s.dense {
		return s
	}
	nodes := s.Nodes()
	d := &Subset{bounds: s.bounds, dense: true, count: s.count, degree: s.degree, words: make([][]uint64, nodes)}
	for p := 0; p < nodes; p++ {
		ln := s.bounds[p+1] - s.bounds[p]
		w := make([]uint64, (ln+63)/64)
		for _, v := range s.lists[p] {
			i := int(v) - s.bounds[p]
			w[i/64] |= 1 << (i % 64)
		}
		d.words[p] = w
	}
	return d
}

// ToSparse returns a sparse view of the subset (itself if already sparse).
func (s *Subset) ToSparse() *Subset {
	if !s.dense {
		return s
	}
	nodes := s.Nodes()
	d := &Subset{bounds: s.bounds, count: s.count, degree: s.degree, lists: make([][]uint32, nodes)}
	for p := 0; p < nodes; p++ {
		l := make([]uint32, 0, 16)
		s.ForEachInNode(p, func(v uint32) { l = append(l, v) })
		d.lists[p] = l
	}
	return d
}

// Builder accumulates the next iteration's active set. It supports both
// collection styles: Set for dense bitmap leaves (thread-safe via atomic
// OR), and Add for per-thread queues (contention-free appends, as in the
// paper's per-core private queues).
//
// When a degree function is attached (WithDegrees), the builder also
// accumulates the out-degree sum of the collected vertices per thread —
// Ligra computes |V_a|+|E_a| this way — and stores it on the built Subset,
// making the engines' adaptive dense/sparse decision O(1).
type Builder struct {
	bounds   []int
	threads  int
	dense    bool
	words    [][]uint64
	queues   [][]uint32
	degreeOf func(v uint32) int64
	degs     []padCounter
}

// padCounter is a per-thread accumulator padded to its own cache line.
type padCounter struct {
	n int64
	_ [7]int64
}

// BuilderScratch holds the builder's reusable per-thread buffers. An
// engine keeps one per instance and passes it to NewBuilder on every
// phase, so steady-state iterations reuse the queue and counter slices
// instead of reallocating them. The dense bitmap leaves are NOT pooled:
// Build hands them to the returned Subset, whose lifetime the engine does
// not control.
type BuilderScratch struct {
	queues [][]uint32
	degs   []padCounter
}

func (s *BuilderScratch) take(threads int, sparse bool) (queues [][]uint32, degs []padCounter) {
	if len(s.degs) < threads {
		s.degs = make([]padCounter, threads)
	}
	degs = s.degs[:threads]
	for i := range degs {
		degs[i].n = 0
	}
	if sparse {
		if len(s.queues) < threads {
			q := make([][]uint32, threads)
			copy(q, s.queues)
			s.queues = q
		}
		queues = s.queues[:threads]
		for i := range queues {
			queues[i] = queues[i][:0]
		}
	}
	return queues, degs
}

// NewBuilder returns a builder over the partition for the given number of
// worker threads. dense selects bitmap collection.
func NewBuilder(bounds []int, threads int, dense bool) *Builder {
	nodes := len(bounds) - 1
	b := &Builder{bounds: bounds, threads: threads, dense: dense}
	if dense {
		b.words = make([][]uint64, nodes)
		for p := 0; p < nodes; p++ {
			ln := bounds[p+1] - bounds[p]
			b.words[p] = make([]uint64, (ln+63)/64)
		}
	} else {
		b.queues = make([][]uint32, threads)
	}
	return b
}

// Reuse replaces the builder's per-thread buffers with the scratch's,
// recycling their capacity across phases.
func (b *Builder) Reuse(s *BuilderScratch) *Builder {
	queues, degs := s.take(b.threads, !b.dense)
	if !b.dense {
		b.queues = queues
	}
	b.degs = degs
	return b
}

// WithDegrees attaches the out-degree function used to accumulate the
// built subset's active degree while vertices are collected.
func (b *Builder) WithDegrees(degreeOf func(v uint32) int64) *Builder {
	b.degreeOf = degreeOf
	if b.degs == nil {
		b.degs = make([]padCounter, b.threads)
	}
	return b
}

// Dense reports the collection style.
func (b *Builder) Dense() bool { return b.dense }

// Set marks v active (dense collection; safe for concurrent use). th is
// the calling thread, used only for contention-free degree accumulation.
func (b *Builder) Set(th int, v uint32) {
	b.SetIn(nodeOf(b.bounds, v), th, v)
}

// SetIn is Set for callers that already know v's owning node p (Polymer's
// push targets are always node-local), skipping the partition lookup.
func (b *Builder) SetIn(p, th int, v uint32) {
	i := int(v) - b.bounds[p]
	w := &b.words[p][i/64]
	mask := uint64(1) << (i % 64)
	// CAS loop instead of a blind atomic OR: on hot frontiers most bits
	// are already set, so the common case is one plain load and no RMW,
	// and a successful swap tells this call it owns the 0->1 transition —
	// the degree of v is then counted exactly once across all threads.
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			if b.degreeOf != nil {
				b.degs[th].n += b.degreeOf(v)
			}
			return
		}
	}
}

// Add appends v to thread th's private queue (sparse collection; each
// thread must only use its own th).
func (b *Builder) Add(th int, v uint32) {
	b.queues[th] = append(b.queues[th], v)
	if b.degreeOf != nil {
		b.degs[th].n += b.degreeOf(v)
	}
}

// Build seals the builder into a Subset. Sparse queues are routed to their
// owning node's leaf, de-duplicated and sorted.
func (b *Builder) Build() *Subset {
	nodes := len(b.bounds) - 1
	degree := int64(-1)
	if b.degreeOf != nil {
		degree = 0
		for i := range b.degs {
			degree += b.degs[i].n
		}
	}
	if b.dense {
		s := &Subset{bounds: b.bounds, degree: degree, dense: true, words: b.words}
		for p := 0; p < nodes; p++ {
			for _, w := range b.words[p] {
				s.count += int64(bits.OnesCount64(w))
			}
		}
		return s
	}
	s := &Subset{bounds: b.bounds, degree: degree, lists: make([][]uint32, nodes)}
	for p := range s.lists {
		s.lists[p] = []uint32{}
	}
	for _, q := range b.queues {
		for _, v := range q {
			p := nodeOf(b.bounds, v)
			s.lists[p] = append(s.lists[p], v)
		}
	}
	for p := 0; p < nodes; p++ {
		l := s.lists[p]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		// De-duplicate in place; duplicates were counted once per Add, so
		// their degree is subtracted to keep the cached sum exact.
		out := l[:0]
		for i, v := range l {
			if i == 0 || v != l[i-1] {
				out = append(out, v)
			} else if b.degreeOf != nil {
				s.degree -= b.degreeOf(v)
			}
		}
		s.lists[p] = out
		s.count += int64(len(out))
	}
	return s
}

// ShouldDense implements the adaptive switching heuristic (Ligra's rule,
// adopted by Polymer): use dense bitmap leaves when the active vertices
// plus their total degree exceed a fraction of the edge count.
func ShouldDense(activeCount, activeDegree, numEdges int64, threshold float64) bool {
	if threshold <= 0 {
		threshold = 20
	}
	return float64(activeCount+activeDegree) > float64(numEdges)/threshold
}

// Bytes estimates the subset's simulated memory footprint.
func (s *Subset) Bytes() int64 {
	var b int64
	if s.dense {
		for _, w := range s.words {
			b += int64(len(w)) * 8
		}
	} else {
		for _, l := range s.lists {
			b += int64(len(l)) * 4
		}
	}
	return b + int64(len(s.bounds))*8
}
