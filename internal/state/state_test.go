package state

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

var testBounds = []int{0, 25, 50, 100}

func TestNewAll(t *testing.T) {
	s := NewAll(testBounds)
	if s.Count() != 100 || !s.Dense() || s.IsEmpty() {
		t.Fatalf("NewAll: count=%d dense=%t", s.Count(), s.Dense())
	}
	for v := uint32(0); v < 100; v++ {
		if !s.Contains(v) {
			t.Fatalf("NewAll must contain %d", v)
		}
	}
}

func TestNewAllPartialLastWord(t *testing.T) {
	// 100-25=75 vertices in last leaf: the tail word must not contain
	// stray bits beyond the range.
	s := NewAll(testBounds)
	n := 0
	s.ForEachInNode(2, func(v uint32) {
		if v < 50 || v >= 100 {
			t.Fatalf("vertex %d outside leaf range", v)
		}
		n++
	})
	if n != 50 {
		t.Fatalf("leaf 2 iterated %d vertices, want 50", n)
	}
}

func TestNewEmptyAndSingle(t *testing.T) {
	e := NewEmpty(testBounds)
	if !e.IsEmpty() || e.Dense() {
		t.Fatal("NewEmpty broken")
	}
	s := NewSingle(testBounds, 60)
	if s.Count() != 1 || !s.Contains(60) || s.Contains(59) {
		t.Fatal("NewSingle broken")
	}
	if got := s.List(2); len(got) != 1 || got[0] != 60 {
		t.Fatalf("List(2) = %v", got)
	}
}

func TestFromVerticesDedup(t *testing.T) {
	s := FromVertices(testBounds, []uint32{5, 99, 5, 30, 99, 30})
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	var got []uint32
	s.ForEach(func(v uint32) { got = append(got, v) })
	want := []uint32{5, 30, 99}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
}

func TestDenseSparseRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		vs := make([]uint32, len(raw))
		for i, v := range raw {
			vs[i] = v % 100
		}
		sp := FromVertices(testBounds, vs)
		d := sp.ToDense()
		back := d.ToSparse()
		if sp.Count() != d.Count() || d.Count() != back.Count() {
			return false
		}
		for v := uint32(0); v < 100; v++ {
			if sp.Contains(v) != d.Contains(v) || d.Contains(v) != back.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestToDenseIdempotent(t *testing.T) {
	s := NewAll(testBounds)
	if s.ToDense() != s {
		t.Fatal("ToDense on dense must return itself")
	}
	sp := NewSingle(testBounds, 3)
	if sp.ToSparse() != sp {
		t.Fatal("ToSparse on sparse must return itself")
	}
}

func TestBuilderDenseConcurrent(t *testing.T) {
	b := NewBuilder(testBounds, 8, true)
	var wg sync.WaitGroup
	for th := 0; th < 8; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for v := uint32(th); v < 100; v += 8 {
				b.Set(th, v)
			}
		}(th)
	}
	wg.Wait()
	s := b.Build()
	if s.Count() != 100 {
		t.Fatalf("concurrent dense build lost bits: %d", s.Count())
	}
}

func TestBuilderSparseRoutesAndSorts(t *testing.T) {
	b := NewBuilder(testBounds, 2, false)
	b.Add(0, 70)
	b.Add(1, 10)
	b.Add(0, 10) // duplicate across threads
	b.Add(1, 40)
	s := b.Build()
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	if l := s.List(0); len(l) != 1 || l[0] != 10 {
		t.Fatalf("node 0 list = %v", l)
	}
	if l := s.List(1); len(l) != 1 || l[0] != 40 {
		t.Fatalf("node 1 list = %v", l)
	}
	if l := s.List(2); len(l) != 1 || l[0] != 70 {
		t.Fatalf("node 2 list = %v", l)
	}
	for p := 0; p < 3; p++ {
		if !sort.SliceIsSorted(s.List(p), func(i, j int) bool { return s.List(p)[i] < s.List(p)[j] }) {
			t.Fatal("lists must be sorted")
		}
	}
}

func TestContainsSparseBinarySearch(t *testing.T) {
	s := FromVertices(testBounds, []uint32{2, 4, 8, 16, 32, 64})
	for _, v := range []uint32{2, 4, 8, 16, 32, 64} {
		if !s.Contains(v) {
			t.Fatalf("must contain %d", v)
		}
	}
	for _, v := range []uint32{0, 3, 33, 99} {
		if s.Contains(v) {
			t.Fatalf("must not contain %d", v)
		}
	}
}

func TestWordsListPanics(t *testing.T) {
	d := NewAll(testBounds)
	sp := NewEmpty(testBounds)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("List on dense must panic")
			}
		}()
		d.List(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Words on sparse must panic")
			}
		}()
		sp.Words(0)
	}()
}

func TestShouldDense(t *testing.T) {
	// 100 active + 900 degree = 1000 > 10000/20 = 500 -> dense.
	if !ShouldDense(100, 900, 10000, 20) {
		t.Fatal("should switch to dense")
	}
	if ShouldDense(10, 90, 10000, 20) {
		t.Fatal("should stay sparse")
	}
	// Zero threshold uses the default of 20.
	if !ShouldDense(100, 900, 10000, 0) {
		t.Fatal("default threshold must apply")
	}
}

func TestBytes(t *testing.T) {
	d := NewAll(testBounds)
	sp := NewSingle(testBounds, 1)
	if d.Bytes() <= 0 || sp.Bytes() <= 0 {
		t.Fatal("Bytes must be positive")
	}
	if sp.Bytes() >= d.Bytes() {
		t.Fatal("a single-vertex sparse subset must be smaller than a full bitmap")
	}
}

func TestForEachAscendingGlobal(t *testing.T) {
	s := FromVertices(testBounds, []uint32{99, 0, 50, 25, 24, 26})
	var prev int64 = -1
	s.ForEach(func(v uint32) {
		if int64(v) <= prev {
			t.Fatalf("ForEach out of order: %d after %d", v, prev)
		}
		prev = int64(v)
	})
}

func TestSingleNodeBounds(t *testing.T) {
	bounds := []int{0, 10}
	s := FromVertices(bounds, []uint32{3, 7})
	if s.Nodes() != 1 || s.Count() != 2 {
		t.Fatal("single-node subset broken")
	}
	d := s.ToDense()
	if !d.Contains(3) || !d.Contains(7) || d.Contains(5) {
		t.Fatal("single-node dense conversion broken")
	}
}

func TestEmptyLeafIteration(t *testing.T) {
	s := NewEmpty(testBounds)
	s.ForEach(func(v uint32) { t.Fatal("empty subset must not iterate") })
	d := s.ToDense()
	d.ForEach(func(v uint32) { t.Fatal("empty dense subset must not iterate") })
	if d.Count() != 0 {
		t.Fatal("empty dense count")
	}
}
