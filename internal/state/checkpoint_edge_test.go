package state

import "testing"

// TestCheckpointEmpty: a checkpoint with nothing tracked — the
// empty-frontier / zero-state corner — must Save and Restore as no-ops
// and report a zero footprint.
func TestCheckpointEmpty(t *testing.T) {
	c := NewCheckpoint()
	c.Save()
	c.Restore()
	if c.Tracked() != 0 || c.Bytes() != 0 {
		t.Fatalf("empty checkpoint: tracked=%d bytes=%d", c.Tracked(), c.Bytes())
	}
	// Zero-length tracked slices are equally legal (an algorithm on the
	// empty graph tracks its zero-length vertex arrays).
	c.TrackF64([]float64{})
	c.TrackU32(nil)
	c.Save()
	c.Restore()
	if c.Tracked() != 2 || c.Bytes() != 0 {
		t.Fatalf("zero-length tracking: tracked=%d bytes=%d", c.Tracked(), c.Bytes())
	}
}

// TestCheckpointDoubleRestore: Restore must be re-runnable — a second
// rollback (the injector can fault the same step twice) lands on the
// same snapshot, even with fresh mutations in between.
func TestCheckpointDoubleRestore(t *testing.T) {
	x := []float64{1, 2, 3}
	u := []uint32{7, 8}
	c := NewCheckpoint()
	c.TrackF64(x)
	c.TrackU32(u)
	c.Save()

	x[0], u[1] = 99, 99
	c.Restore()
	if x[0] != 1 || u[1] != 8 {
		t.Fatalf("first restore: x=%v u=%v", x, u)
	}
	x[1], x[2], u[0] = -5, -6, 42
	c.Restore()
	if x[0] != 1 || x[1] != 2 || x[2] != 3 || u[0] != 7 || u[1] != 8 {
		t.Fatalf("second restore: x=%v u=%v", x, u)
	}
}

// TestCheckpointSaveOverwritesSnapshot: a later Save must replace the
// snapshot, not accumulate; Restore then yields the latest saved state.
func TestCheckpointSaveOverwritesSnapshot(t *testing.T) {
	x := []int64{10, 20}
	c := NewCheckpoint()
	c.TrackI64(x)
	c.Save()
	x[0] = 11
	c.Save() // snapshot now holds {11, 20}
	x[0], x[1] = 0, 0
	c.Restore()
	if x[0] != 11 || x[1] != 20 {
		t.Fatalf("restore after re-save: %v", x)
	}
}

// TestCheckpointTrackAfterSave: a slice tracked after a Save has a
// zero-valued save buffer until the next Save — restoring before that
// zeroes it, the documented "track before first Save" contract that the
// fault sessions rely on.
func TestCheckpointTrackAfterSave(t *testing.T) {
	x := []float64{1}
	y := []uint8{5}
	c := NewCheckpoint()
	c.TrackF64(x)
	c.Save()
	c.TrackU8(y)
	c.Restore()
	if y[0] != 0 {
		t.Fatalf("late-tracked slice must restore to its zero-valued buffer, got %d", y[0])
	}
	y[0] = 9
	c.Save()
	y[0] = 3
	c.Restore()
	if y[0] != 9 {
		t.Fatalf("after next Save the late-tracked slice must round-trip, got %d", y[0])
	}
}

// TestCheckpointBytesAccounting: Bytes must reflect element widths.
func TestCheckpointBytesAccounting(t *testing.T) {
	c := NewCheckpoint()
	c.TrackF64(make([]float64, 3)) // 24
	c.TrackU32(make([]uint32, 5))  // 20
	c.TrackI64(make([]int64, 2))   // 16
	c.TrackU8(make([]uint8, 7))    // 7
	if got, want := c.Bytes(), int64(24+20+16+7); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
	if c.Tracked() != 4 {
		t.Fatalf("Tracked = %d, want 4", c.Tracked())
	}
}
