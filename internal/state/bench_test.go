package state

import "testing"

var benchBounds = []int{0, 1 << 15, 1 << 16, 3 << 15, 1 << 17}

func BenchmarkBuilderDenseSet(b *testing.B) {
	bl := NewBuilder(benchBounds, 1, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Set(0, uint32(i)%(1<<17))
	}
}

func BenchmarkBuilderSparseAddBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(benchBounds, 4, false)
		for v := uint32(0); v < 4096; v++ {
			bl.Add(int(v%4), v*17%(1<<17))
		}
		bl.Build()
	}
}

func BenchmarkForEachDense(b *testing.B) {
	s := NewAll(benchBounds)
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		s.ForEach(func(v uint32) { sink += v })
	}
	_ = sink
}

func BenchmarkToSparse(b *testing.B) {
	s := NewAll(benchBounds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ToSparse()
	}
}
