package state

import "testing"

// TestCheckpointRollbackAfterSwap exercises the property the resilience
// layer depends on: tracking is by backing array, so an algorithm that
// swaps its current/next slice headers after a step still restores
// correctly — the checkpoint rewrites the arrays, not the caller's
// variables.
func TestCheckpointRollbackAfterSwap(t *testing.T) {
	curr := []float64{1, 2, 3, 4}
	next := []float64{0, 0, 0, 0}
	c := NewCheckpoint()
	c.TrackF64(curr, next)

	c.Save() // checkpoint the pre-step state

	// One superstep: write next from curr, then swap the headers the way
	// PageRank-style double buffering does.
	for i := range next {
		next[i] = curr[i] * 10
	}
	curr, next = next, curr

	// A fault: roll back. Both arrays must read as they did at Save time,
	// regardless of which header now points at which array.
	c.Restore()
	// curr points at the array tracked as "next" (all zeros at Save);
	// next points at the array tracked as "curr" (1..4 at Save).
	for i, want := range []float64{0, 0, 0, 0} {
		if curr[i] != want {
			t.Fatalf("after rollback curr[%d] = %v, want %v", i, curr[i], want)
		}
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if next[i] != want {
			t.Fatalf("after rollback next[%d] = %v, want %v", i, next[i], want)
		}
	}

	// Replay the step and roll back again: a double rollback must be
	// deterministic — the save buffers are not consumed by Restore.
	curr, next = next, curr // undo the swap the rollback logically reverted
	for i := range next {
		next[i] = curr[i] * 10
	}
	curr, next = next, curr
	firstReplay := append([]float64(nil), curr...)

	c.Restore()
	for i, want := range []float64{1, 2, 3, 4} {
		if next[i] != want {
			t.Fatalf("after second rollback next[%d] = %v, want %v", i, next[i], want)
		}
	}
	curr, next = next, curr
	for i := range next {
		next[i] = curr[i] * 10
	}
	curr, next = next, curr
	for i := range curr {
		if curr[i] != firstReplay[i] {
			t.Fatalf("second replay diverged at %d: %v vs %v", i, curr[i], firstReplay[i])
		}
	}
}

// TestCheckpointRestoreIdempotent: consecutive restores with no
// intervening writes are no-ops.
func TestCheckpointRestoreIdempotent(t *testing.T) {
	xs := []uint32{7, 8, 9}
	c := NewCheckpoint()
	c.TrackU32(xs)
	c.Save()
	xs[0], xs[1], xs[2] = 1, 2, 3
	c.Restore()
	first := append([]uint32(nil), xs...)
	c.Restore()
	for i := range xs {
		if xs[i] != first[i] {
			t.Fatalf("second restore changed xs[%d]: %v vs %v", i, xs[i], first[i])
		}
	}
	if xs[0] != 7 || xs[1] != 8 || xs[2] != 9 {
		t.Fatalf("restore lost data: %v", xs)
	}
}
