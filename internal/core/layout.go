package core

import (
	"polymer/internal/graph"
	"polymer/internal/par"
	"polymer/internal/partition"
)

// layout holds the per-node grouped edge structures for one direction.
//
// In push mode, node p owns the targets in its partition; its edges are
// grouped by source vertex ("rows"), so sweeping the rows in ascending
// order reads every source's application data sequentially — the paper's
// SEQ|R|G pattern — while all writes stay in the local partition
// (RAND|W|L). Rows whose key vertex lives on another node are agents: the
// lightweight replicas of Section 4.2 that hold just the row's edge offset
// and degree. Pull mode is the mirror image: node p owns the sources in
// its partition and rows are keyed by target, giving local random reads
// and sequential global writes.
type layout struct {
	perNode    []nodeLayout
	agentBytes int64
	totalRows  int64

	// strides[p] is node p's row-sweep schedule. Row counts are fixed once
	// the layout is built, so the schedule is computed here instead of per
	// phase.
	strides []par.Strided
}

type nodeLayout struct {
	vr partition.Range

	// rowIDs holds the far-side key vertices, ascending; rowIdx delimits
	// each row's columns; cols holds the local vertices; wts the edge
	// weights aligned with cols (nil when unweighted).
	rowIDs []graph.Vertex
	rowIdx []int64
	cols   []graph.Vertex
	wts    []float32

	// rowOwner[r] is the node owning rowIDs[r] (precomputed for access
	// charging).
	rowOwner []uint8

	// rowOf maps a vertex id to its row index in this node (-1 if the
	// vertex has no edges here); it is the per-node agent lookup used by
	// sparse EdgeMap.
	rowOf []int32

	// startRow is the first row whose key belongs to this node's own
	// partition — where the rolling-order sweep begins.
	startRow int

	// agents counts rows whose key vertex is remote.
	agents int
}

// buildLayout groups each node's incident edges by the far-side vertex.
// When push is true, node p's local vertices are the *targets* in its
// partition and rows are keyed by source (built from the in-CSR);
// otherwise local vertices are the sources and rows are keyed by target
// (built from the out-CSR).
func buildLayout(g *graph.Graph, parts []partition.Range, push bool) *layout {
	n := g.NumVertices()
	l := &layout{perNode: make([]nodeLayout, len(parts))}
	for p, vr := range parts {
		nl := &l.perNode[p]
		nl.vr = vr

		// Count edges per key vertex.
		cnt := make([]int64, n)
		var edges int64
		for v := vr.Lo; v < vr.Hi; v++ {
			keys := keysOf(g, graph.Vertex(v), push)
			for _, k := range keys {
				cnt[k]++
			}
			edges += int64(len(keys))
		}

		// Collect non-empty rows in ascending key order.
		rows := 0
		for k := 0; k < n; k++ {
			if cnt[k] > 0 {
				rows++
			}
		}
		nl.rowIDs = make([]graph.Vertex, rows)
		nl.rowIdx = make([]int64, rows+1)
		nl.rowOwner = make([]uint8, rows)
		nl.rowOf = make([]int32, n)
		for i := range nl.rowOf {
			nl.rowOf[i] = -1
		}
		r := 0
		var off int64
		owner := 0
		for k := 0; k < n; k++ {
			if cnt[k] == 0 {
				continue
			}
			for k >= parts[owner].Hi {
				owner++
			}
			nl.rowIDs[r] = graph.Vertex(k)
			nl.rowIdx[r] = off
			nl.rowOwner[r] = uint8(owner)
			nl.rowOf[k] = int32(r)
			if owner != p {
				nl.agents++
			}
			off += cnt[k]
			r++
		}
		nl.rowIdx[rows] = off

		// Fill columns: sweep local vertices ascending so each row's
		// columns come out ascending too.
		nl.cols = make([]graph.Vertex, edges)
		if g.Weighted() {
			nl.wts = make([]float32, edges)
		}
		cursor := make([]int64, rows)
		for v := vr.Lo; v < vr.Hi; v++ {
			keys := keysOf(g, graph.Vertex(v), push)
			wts := weightsOf(g, graph.Vertex(v), push)
			for i, k := range keys {
				row := nl.rowOf[k]
				pos := nl.rowIdx[row] + cursor[row]
				cursor[row]++
				nl.cols[pos] = graph.Vertex(v)
				if wts != nil {
					nl.wts[pos] = wts[i]
				}
			}
		}

		// Rolling-order start: first row keyed inside the local range.
		nl.startRow = rows
		for i, k := range nl.rowIDs {
			if int(k) >= vr.Lo {
				nl.startRow = i
				break
			}
		}
		if nl.startRow == rows {
			nl.startRow = 0
		}

		l.agentBytes += int64(nl.agents) * 16 // replica: edge offset + degree
		l.totalRows += int64(rows)
	}
	return l
}

// keysOf returns the far-side vertices of v's local edges: in-neighbours
// when grouping for push (v is a target), out-neighbours for pull.
func keysOf(g *graph.Graph, v graph.Vertex, push bool) []graph.Vertex {
	if push {
		return g.InNeighbors(v)
	}
	return g.OutNeighbors(v)
}

func weightsOf(g *graph.Graph, v graph.Vertex, push bool) []float32 {
	if push {
		return g.InWeights(v)
	}
	return g.OutWeights(v)
}

// bytes returns the simulated footprint of the layout's arrays.
func (l *layout) bytes() int64 {
	var b int64
	for i := range l.perNode {
		nl := &l.perNode[i]
		b += int64(len(nl.rowIDs))*4 + int64(len(nl.rowIdx))*8
		b += int64(len(nl.cols))*4 + int64(len(nl.wts))*4
		b += int64(len(nl.rowOwner)) + int64(len(nl.rowOf))*4
	}
	return b
}

// ensurePush lazily builds the push-direction layout. If registering its
// simulated allocation fails (injected fault), the layout is not cached:
// the replay after recovery rebuilds and re-charges it, keeping the
// allocation accounting identical to a fault-free run.
func (e *Engine) ensurePush() *layout {
	if e.push == nil {
		l := buildLayout(e.g, e.parts, true)
		if !e.registerLayout(l) {
			return l // e.err is set; the phase will abort uncharged
		}
		e.push = l
	}
	return e.push
}

// ensurePull lazily builds the pull-direction layout.
func (e *Engine) ensurePull() *layout {
	if e.pull == nil {
		l := buildLayout(e.g, e.parts, false)
		if !e.registerLayout(l) {
			return l
		}
		e.pull = l
	}
	return e.pull
}

func (e *Engine) registerLayout(l *layout) bool {
	l.strides = make([]par.Strided, len(l.perNode))
	for p := range l.perNode {
		rows := int64(len(l.perNode[p].rowIDs))
		l.strides[p] = par.MakeStrided(rows, par.ChunkSize(rows, e.m.CoresPerNode), e.m.CoresPerNode)
	}
	b := l.bytes()
	if err := e.m.Alloc().Grow("polymer/topology", b); err != nil {
		e.fail(err)
		return false
	}
	if l.agentBytes > 0 {
		if err := e.m.Alloc().Grow("polymer/agents", l.agentBytes); err != nil {
			e.fail(err)
			e.m.Alloc().Release("polymer/topology", b)
			return false
		}
	}
	e.topoBytes += b
	e.tierTopo.GrowDemandEven(b + l.agentBytes)
	return true
}
