// Package core implements Polymer, the paper's NUMA-aware graph-analytics
// engine (Sections 4 and 5).
//
// Polymer treats the NUMA machine as a distributed system:
//
//   - the vertex space is split into per-node partitions (edge-balanced
//     for skewed graphs), and application data is co-located with its
//     owning node in one contiguous virtual array (mem.CoLocated);
//   - each node holds only the edges incident to its partition, grouped by
//     the far-side vertex through lightweight immutable replicas — agents —
//     so a vertex's computation is factored across nodes and every remote
//     read of application data happens in sequential order (the access
//     pattern Section 2.2 shows is fastest);
//   - runtime state lives in per-node leaves behind a lock-less lookup
//     table with adaptive dense/sparse representation;
//   - iterations synchronize with the hierarchical sense-reversing
//     N-Barrier, and nodes process rows in a rolling order starting from
//     their own partition to spread interconnect load.
//
// The engine runs real parallel computation on worker goroutines; its
// memory traffic is charged to the simulated NUMA machine (see package
// numa) to produce simulated runtimes.
package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"polymer/internal/barrier"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/par"
	"polymer/internal/partition"
	"polymer/internal/sg"
)

// Mode selects the EdgeMap execution direction.
type Mode uint8

const (
	// Auto picks sparse-push or dense-pull adaptively per iteration
	// (direction-optimizing traversal).
	Auto Mode = iota
	// Push always scatters along out-edges (the paper's PR/SpMV/BP).
	Push
	// Pull always gathers along in-edges.
	Pull
)

// Options configures the engine; the zero value is not valid — use
// DefaultOptions and override.
type Options struct {
	// Mode is the EdgeMap direction policy.
	Mode Mode
	// Barrier selects the synchronization barrier (default N-Barrier).
	Barrier barrier.Kind
	// EdgeBalanced partitions by degree sums instead of vertex counts
	// (Section 5, "Balanced Partitioning").
	EdgeBalanced bool
	// Adaptive switches runtime-state leaves between bitmap and queues
	// (Section 5, "Adaptive Data Structures"). When false, EdgeMap always
	// runs dense.
	Adaptive bool
	// Threshold is the adaptive switch denominator: dense when
	// active+degree > |E|/Threshold (default 20, as in Ligra).
	Threshold float64
	// DisableAgents removes the per-node vertex replicas from the cost
	// model: far-side data reads are charged as random remote accesses,
	// as they would be without replication (ablation).
	DisableAgents bool
	// DisableRolling starts every node's row sweep at row 0 instead of
	// its own partition, so all nodes contend for the same remote node at
	// once; charged as interleaved traffic (ablation).
	DisableRolling bool
	// Layout overrides the application-data placement (ablation:
	// mem.Interleaved makes Polymer NUMA-oblivious).
	Layout mem.Placement
	// OverheadNsPerEdge is the engine's software overhead per edge.
	OverheadNsPerEdge float64
	// Trace records a PhaseRecord for every EdgeMap/VertexMap (small
	// overhead; off by default).
	Trace bool
	// PhaseTimeout, when positive, bounds the host wall-clock duration of
	// each parallel phase: a phase that takes longer records a deadline
	// error on the engine (workers are cooperative, so the phase still
	// joins; the error surfaces through Err after the join).
	PhaseTimeout time.Duration
}

// PhaseRecord describes one executed parallel phase when tracing is on.
type PhaseRecord struct {
	// Kind is "edgemap" or "vertexmap".
	Kind string
	// Dense reports bitmap (dense) vs queue (sparse) execution.
	Dense bool
	// Push reports the direction of a dense edgemap phase.
	Push bool
	// ActiveIn is the input frontier size.
	ActiveIn int64
	// SimSeconds is the phase's simulated duration including the barrier.
	SimSeconds float64
}

// DefaultOptions returns the configuration the paper evaluates: push for
// dense phases unless the algorithm prefers otherwise, N-Barrier,
// edge-balanced partitioning, adaptive state, agents and rolling order on.
func DefaultOptions() Options {
	return Options{
		Mode:              Auto,
		Barrier:           barrier.N,
		EdgeBalanced:      true,
		Adaptive:          true,
		Threshold:         20,
		Layout:            mem.CoLocated,
		OverheadNsPerEdge: 1.0,
	}
}

// Metrics counts engine activity for the experiment harness.
type Metrics struct {
	EdgeMaps       int
	VertexMaps     int
	DensePhases    int
	SparsePhases   int
	EdgesProcessed int64
	BarrierSeconds float64
}

// Engine is a Polymer instance bound to one graph and one simulated
// machine. It implements sg.Engine.
type Engine struct {
	g   *graph.Graph
	m   *numa.Machine
	opt Options

	parts  []partition.Range
	bounds []int

	pool           *par.Pool
	ledger         *numa.Epoch // whole-run accumulation
	clock          float64
	met            Metrics
	edgesProcessed atomic.Int64 // workers accumulate without a lock

	scr      *scratch             // phase-scoped reusable buffers
	degreeOf func(v uint32) int64 // out-degree accessor for frontier builders

	push *layout // lazily built; keyed by source, columns are local targets
	pull *layout // lazily built; keyed by target, columns are local sources

	trace []PhaseRecord
	tr    *obs.Tracer // nil = tracing disabled

	arrays    []interface{ Free() }
	topoBytes int64
	closed    bool

	// Tiered-memory placement (all nil on untiered machines — the
	// wrappers' nil fast path keeps charging bit-identical): topology
	// streams, per-vertex application data, and pinned runtime state
	// compete for DRAM as three demand classes.
	tierPlan     *mem.TierPlan
	tierTopo     *mem.TierClass
	tierState    *mem.TierClass
	tierFrontier *mem.TierClass

	err  error           // first execution failure (see fail/Err)
	ctx  context.Context // optional cancellation; nil means background
	snap *simSnapshot    // single slot for SnapshotSim/RestoreSim
}

// simSnapshot captures the engine's simulated-time state so a superstep
// can be rolled back after an injected fault: clock, cumulative ledger,
// metrics, edge counter, and trace position.
type simSnapshot struct {
	clock  float64
	ledger *numa.Epoch
	met    Metrics
	edges  int64
	trace  int
	tier   *mem.TierSnap
}

var _ sg.Engine = (*Engine)(nil)

// New builds a Polymer engine for g on m. It returns an error for invalid
// configuration (a machine with no threads) or a simulated allocation
// failure.
func New(g *graph.Graph, m *numa.Machine, opt Options) (*Engine, error) {
	if opt.Threshold <= 0 {
		opt.Threshold = 20
	}
	if opt.OverheadNsPerEdge <= 0 {
		opt.OverheadNsPerEdge = 1.0
	}
	e := &Engine{g: g, m: m, opt: opt}
	if opt.EdgeBalanced {
		dir := partition.Out
		if opt.Mode == Push {
			dir = partition.In
		}
		e.parts = partition.EdgeBalanced(g, m.Nodes, dir)
	} else {
		e.parts = partition.VertexBalanced(g.NumVertices(), m.Nodes)
	}
	e.bounds = partition.Bounds(e.parts)
	pool, err := par.NewPool(m.Threads())
	if err != nil {
		return nil, err
	}
	e.pool = pool
	e.ledger = m.NewEpoch()
	e.scr = newScratch(e)
	e.degreeOf = func(v uint32) int64 { return g.OutDegree(graph.Vertex(v)) }
	// The engine keeps the construction-stage graph resident alongside
	// its grouped per-node layouts (part of Table 5's footprint).
	if err := m.Alloc().Grow("polymer/graph", g.TopologyBytes()); err != nil {
		pool.Close()
		return nil, err
	}
	e.initTier()
	return e, nil
}

// initTier registers the engine's demand classes with the machine's tier
// plan. On untiered machines every handle stays nil and the charge
// wrappers pass through bit-identically.
func (e *Engine) initTier() {
	e.tierPlan = mem.NewTierPlan(e.m)
	if e.tierPlan == nil {
		return
	}
	nodes := e.m.Nodes
	e.tierFrontier = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "frontier", BytesPerNode: make([]int64, nodes), Pinned: true,
	})
	e.tierState = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "state", BytesPerNode: make([]int64, nodes), Priority: 0,
	})
	e.tierTopo = e.tierPlan.AddClass(mem.ClassSpec{
		Label: "topology", BytesPerNode: make([]int64, nodes), Priority: 1,
	})
	for p := 0; p < nodes; p++ {
		// Bitmaps, queues and per-vertex runtime-state bytes.
		e.tierFrontier.GrowDemand(p, 2*int64(e.bounds[p+1]-e.bounds[p]))
	}
	e.tierTopo.GrowDemandEven(e.g.TopologyBytes())
	// Hot-vertex placement: per-vertex data access mass follows degree.
	e.tierState.SetHotMass(mem.DegreeHotMass(e.g.NumVertices(), func(i int) int64 {
		return e.g.OutDegree(graph.Vertex(i)) + 1
	}))
}

// TierPlan returns the engine's tier placement plan (nil when untiered),
// for provenance and the conformance suite.
func (e *Engine) TierPlan() *mem.TierPlan { return e.tierPlan }

// MustNew is New panicking on error, for statically valid configurations
// (tests, examples, benchmarks).
func MustNew(g *graph.Graph, m *numa.Machine, opt Options) *Engine {
	e, err := New(g, m, opt)
	if err != nil {
		panic(err)
	}
	return e
}

// Graph returns the input graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Machine returns the simulated machine.
func (e *Engine) Machine() *numa.Machine { return e.m }

// Bounds returns the per-node vertex partition offsets.
func (e *Engine) Bounds() []int { return e.bounds }

// Parts returns the per-node vertex ranges.
func (e *Engine) Parts() []partition.Range { return e.parts }

// Options returns the engine configuration.
func (e *Engine) Options() Options { return e.opt }

// Metrics returns activity counters.
func (e *Engine) Metrics() Metrics {
	m := e.met
	m.EdgesProcessed = e.edgesProcessed.Load()
	return m
}

// SimSeconds returns the accumulated simulated runtime, including barrier
// costs.
func (e *Engine) SimSeconds() float64 { return e.clock }

// AddSimSeconds charges extra simulated time (used by algorithm drivers
// for work outside EdgeMap/VertexMap).
func (e *Engine) AddSimSeconds(s float64) { e.clock += s }

// RunStats returns accumulated classified-access statistics (Table 4).
func (e *Engine) RunStats() numa.Stats { return e.ledger.Stats() }

// ThreadSeconds returns the per-thread simulated busy time (Figure 11b).
func (e *Engine) ThreadSeconds() []float64 {
	out := make([]float64, e.m.Threads())
	for th := range out {
		out[th] = e.ledger.ThreadSeconds(th)
	}
	return out
}

// NewData allocates a float64 per-vertex array with Polymer's co-located
// placement (or the ablation override).
func (e *Engine) NewData(label string) *mem.Array[float64] {
	a := e.newArray64(label)
	e.arrays = append(e.arrays, a)
	return a
}

// NewData32 allocates a uint32 per-vertex array (labels, parents).
func (e *Engine) NewData32(label string) *mem.Array[uint32] {
	var a *mem.Array[uint32]
	if e.opt.Layout == mem.CoLocated {
		a = mem.New[uint32](e.m, label, e.g.NumVertices(), mem.CoLocated, e.bounds)
	} else {
		a = mem.New[uint32](e.m, label, e.g.NumVertices(), e.opt.Layout, nil)
	}
	a.BindTier(e.tierState).GrowTierDemand()
	e.arrays = append(e.arrays, a)
	return a
}

func (e *Engine) newArray64(label string) *mem.Array[float64] {
	var a *mem.Array[float64]
	if e.opt.Layout == mem.CoLocated {
		a = mem.New[float64](e.m, label, e.g.NumVertices(), mem.CoLocated, e.bounds)
	} else {
		a = mem.New[float64](e.m, label, e.g.NumVertices(), e.opt.Layout, nil)
	}
	return a.BindTier(e.tierState).GrowTierDemand()
}

// Close stops the worker pool and releases simulated allocations.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.pool.Close()
	e.m.Alloc().Release("polymer/graph", e.g.TopologyBytes())
	for _, a := range e.arrays {
		a.Free()
	}
	if e.topoBytes > 0 {
		e.m.Alloc().Release("polymer/topology", e.topoBytes)
	}
	if e.push != nil && e.push.agentBytes > 0 {
		e.m.Alloc().Release("polymer/agents", e.push.agentBytes)
	}
	if e.pull != nil && e.pull.agentBytes > 0 {
		e.m.Alloc().Release("polymer/agents", e.pull.agentBytes)
	}
}

// chargePhase folds one phase epoch into the run ledger and clock,
// including a barrier crossing; it returns the phase's total simulated
// duration.
func (e *Engine) chargePhase(ep *numa.Epoch) float64 {
	e.tierPlan.Step(ep) // migration cost lands in the phase it follows
	t := ep.Time()
	b := barrier.SyncCost(e.opt.Barrier, e.m.Nodes) / e.m.Topo.SyncScale
	e.clock += t + b
	e.met.BarrierSeconds += b
	e.ledger.Add(ep)
	return t + b
}

// Err returns the first execution failure recorded during a parallel
// phase (worker panic, offline node, allocation failure, cancelled
// context, missed phase deadline), or nil. Once set, subsequent
// EdgeMap/VertexMap calls are no-ops returning empty frontiers and charge
// nothing, so a failed superstep leaves no residue in the simulated
// clock beyond what the resilience layer rolls back.
func (e *Engine) Err() error { return e.err }

// ClearErr resets the failure so a rolled-back superstep can be
// replayed.
func (e *Engine) ClearErr() { e.err = nil }

// fail records the first failure.
func (e *Engine) fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// SetContext installs a cancellation context consulted before each
// parallel phase; nil restores the default (never cancelled).
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// SetFaultHook installs (nil removes) the fault injector's per-dispatch
// hook on the engine's worker pool.
func (e *Engine) SetFaultHook(h func(th int) error) { e.pool.SetHook(h) }

// runPhase dispatches one parallel phase, honouring the engine context
// and the configured phase deadline. It returns false if the phase
// failed (the failure is recorded on the engine) — callers must then skip
// all simulated charging for the phase: a request cancelled mid-run stops
// charging the simulated clock at the superstep boundary.
func (e *Engine) runPhase(fn func(th int)) bool {
	if e.err != nil {
		return false
	}
	var start time.Time
	if e.opt.PhaseTimeout > 0 {
		start = time.Now()
	}
	var err error
	if e.ctx != nil {
		err = e.pool.RunCtx(e.ctx, fn)
	} else {
		err = e.pool.Run(fn)
	}
	if err != nil {
		e.fail(err)
		return false
	}
	if e.opt.PhaseTimeout > 0 {
		if d := time.Since(start); d > e.opt.PhaseTimeout {
			e.fail(fmt.Errorf("core: phase exceeded deadline: %v > %v", d, e.opt.PhaseTimeout))
			return false
		}
	}
	return true
}

// SnapshotSim saves the simulated-time state (clock, cumulative ledger,
// metrics, edge counter, trace position) into the engine's snapshot
// slot; RestoreSim rolls back to it. The resilience layer wraps each
// superstep in a Snapshot/Restore pair so an injected fault's partial
// charges are discarded before replay.
func (e *Engine) SnapshotSim() {
	if e.snap == nil {
		e.snap = &simSnapshot{ledger: e.m.NewEpoch()}
	}
	e.snap.clock = e.clock
	e.snap.ledger.CopyFrom(e.ledger)
	e.snap.met = e.met
	e.snap.edges = e.edgesProcessed.Load()
	e.snap.trace = len(e.trace)
	e.snap.tier = e.tierPlan.Snapshot()
}

// RestoreSim rolls the simulated-time state back to the last SnapshotSim.
func (e *Engine) RestoreSim() {
	if e.snap == nil {
		return
	}
	e.clock = e.snap.clock
	e.ledger.CopyFrom(e.snap.ledger)
	e.met = e.snap.met
	e.edgesProcessed.Store(e.snap.edges)
	e.trace = e.trace[:e.snap.trace]
	e.tierPlan.Restore(e.snap.tier)
}

// Trace returns the recorded phase history (empty unless Options.Trace).
func (e *Engine) Trace() []PhaseRecord { return e.trace }

// SetTracer installs (nil removes) the obs tracer. Phase events are
// stamped with the simulated clock; the worker pool additionally emits
// host-lane dispatch spans.
func (e *Engine) SetTracer(tr *obs.Tracer) {
	e.tr = tr
	e.pool.SetTracer(tr)
}

// Tracer, TraceCat and TrafficSnapshot make the engine an obs.SimSource,
// so algorithm drivers can wrap its superstep loops in obs.BeginStep/End.
func (e *Engine) Tracer() *obs.Tracer { return e.tr }

// TraceCat returns the engine's obs event category.
func (e *Engine) TraceCat() string { return "polymer" }

// TrafficSnapshot copies the cumulative classified run traffic into dst.
func (e *Engine) TrafficSnapshot(dst *numa.TrafficMatrix) { e.ledger.Traffic(dst) }

func (e *Engine) recordPhase(kind string, dense, push bool, activeIn int64, seconds float64) {
	if e.tr != nil {
		e.tr.Phase("polymer", kind, dense, push, activeIn, e.clock-seconds, seconds)
	}
	if !e.opt.Trace {
		return
	}
	e.trace = append(e.trace, PhaseRecord{
		Kind: kind, Dense: dense, Push: push, ActiveIn: activeIn, SimSeconds: seconds,
	})
}
