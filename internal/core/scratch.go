package core

import (
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/par"
	"polymer/internal/state"
)

// scratch is the engine-owned, phase-scoped arena: every buffer a single
// EdgeMap/VertexMap phase needs and provably abandons by its end lives
// here and is reset — not reallocated — between phases, so steady-state
// iterations allocate almost nothing on the host. The simulated memory
// model is unaffected: scratch only changes host allocation behaviour,
// never the charged traffic.
//
// What may be reused: the phase epoch (its ledger is folded into the run
// ledger by chargePhase and never retained), the per-thread chargers, the
// builder's per-thread queues and degree counters, and the sparse-mode
// concatenated frontier. What must NOT be reused: the dense bitmap leaves
// handed to the returned Subset — the caller owns the frontier and the
// engine cannot see its lifetime.
type scratch struct {
	ep          *numa.Epoch // reset at the start of every phase
	chargerPool []charger   // one per thread; counter slices allocated once
	chargers    []*charger  // per-phase view: nil, or &chargerPool[th]
	sum         charger     // balanceWithinNodes accumulator
	builder     state.BuilderScratch

	// Sparse-mode concatenated frontier (active ids + owner nodes).
	actives []graph.Vertex
	ownerOf []uint8

	// Cached dense VertexMap schedules; per-node word counts are fixed by
	// the partition, so these never change after first use.
	vmDense []par.Strided
}

func newScratch(e *Engine) *scratch {
	threads := e.m.Threads()
	nodes := e.m.Nodes
	s := &scratch{
		ep:          e.m.NewEpoch(),
		chargerPool: make([]charger, threads),
		chargers:    make([]*charger, threads),
	}
	for th := range s.chargerPool {
		c := &s.chargerPool[th]
		c.e, c.ep, c.th, c.p = e, s.ep, th, e.m.NodeOfThread(th)
		c.rowsByOwner = make([]int64, nodes)
		c.activeByOwner = make([]int64, nodes)
	}
	s.sum.e = e
	s.sum.rowsByOwner = make([]int64, nodes)
	s.sum.activeByOwner = make([]int64, nodes)
	return s
}

// beginPhase resets the arena for a new parallel phase and returns the
// phase epoch.
func (s *scratch) beginPhase() *numa.Epoch {
	s.ep.Reset()
	for i := range s.chargers {
		s.chargers[i] = nil
	}
	return s.ep
}

// charger claims thread th's pooled charger for the current phase. Each
// worker touches only its own slot, so no synchronisation is needed.
func (s *scratch) charger(th int) *charger {
	c := &s.chargerPool[th]
	c.reset()
	s.chargers[th] = c
	return c
}

// vmDenseStrides returns the cached dense VertexMap schedules, building
// them on first use.
func (e *Engine) vmDenseStrides() []par.Strided {
	s := e.scr
	if s.vmDense == nil {
		s.vmDense = make([]par.Strided, e.m.Nodes)
		for p := 0; p < e.m.Nodes; p++ {
			words := int64(e.bounds[p+1]-e.bounds[p]+63) / 64
			s.vmDense[p] = par.MakeStrided(words, 64, e.m.CoresPerNode)
		}
	}
	return s.vmDense
}
