package core

import (
	"sync/atomic"
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

// levelKernel relaxes hop counts monotonically.
type levelKernel struct{ level []int64 }

func (k *levelKernel) Relax(s, d graph.Vertex, w float32) bool {
	nd := atomic.LoadInt64(&k.level[s]) + 1
	for {
		old := atomic.LoadInt64(&k.level[d])
		if nd >= old {
			return false
		}
		if atomic.CompareAndSwapInt64(&k.level[d], old, nd) {
			return true
		}
	}
}

func TestAsyncTraverseComputesLevels(t *testing.T) {
	n, edges := gen.RoadGrid(12, 12, 6)
	g := graph.FromEdges(n, edges, true)
	for _, shape := range []struct{ nodes, cores int }{{1, 1}, {2, 2}, {4, 2}} {
		e := MustNew(g, testMachine(shape.nodes, shape.cores), DefaultOptions())
		k := &levelKernel{level: make([]int64, n)}
		const inf = int64(1) << 40
		for i := range k.level {
			k.level[i] = inf
		}
		k.level[0] = 0
		before := e.SimSeconds()
		e.AsyncTraverse([]graph.Vertex{0}, k, sg.Hints{})
		if e.SimSeconds() <= before {
			t.Fatal("async traversal must advance the clock")
		}
		// Levels must match a sequential BFS exactly.
		want := refLevels(g, 0)
		for v, l := range k.level {
			if l != want[v] {
				t.Fatalf("level[%d] = %d, want %d", v, l, want[v])
			}
		}
		e.Close()
	}
}

func refLevels(g *graph.Graph, src graph.Vertex) []int64 {
	const inf = int64(1) << 40
	dist := make([]int64, g.NumVertices())
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.OutNeighbors(v) {
			if dist[u] > dist[v]+1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

func TestAsyncTraverseNoSeeds(t *testing.T) {
	n, edges := gen.Chain(10)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(2, 1), DefaultOptions())
	defer e.Close()
	e.AsyncTraverse(nil, &levelKernel{level: make([]int64, n)}, sg.Hints{})
}

func TestEngineAccessors(t *testing.T) {
	n, edges := gen.Chain(16)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(2, 2)
	opt := DefaultOptions()
	e := MustNew(g, m, opt)
	defer e.Close()
	if e.Graph() != g || e.Machine() != m {
		t.Fatal("accessors must return the construction arguments")
	}
	if got := e.Options(); got.Barrier != opt.Barrier || got.Mode != opt.Mode {
		t.Fatalf("Options() = %+v", got)
	}
	parts := e.Parts()
	if len(parts) != m.Nodes || parts[0].Lo != 0 || parts[len(parts)-1].Hi != n {
		t.Fatalf("Parts() = %v", parts)
	}
	e.AddSimSeconds(1.5)
	if e.SimSeconds() < 1.5 {
		t.Fatal("AddSimSeconds must advance the clock")
	}
}

func TestTopologyValidatedOnMachine(t *testing.T) {
	// numa.Machine construction validates; engine relies on it.
	topo := numa.IntelXeon80()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}
