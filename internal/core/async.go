package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/sg"
)

// AsyncKernel is the operator for asynchronous traversals: Relax is
// applied to an edge and returns true when the destination's value
// improved. The computation must be monotone (distances only decrease,
// labels only shrink) so that chaotic relaxation converges regardless of
// schedule, and Relax must be safe for concurrent invocation (use
// atomics).
type AsyncKernel interface {
	Relax(s, d graph.Vertex, w float32) bool
}

// AsyncTraverse runs a chaotic-relaxation traversal from the seed
// vertices without any global barrier — the asynchronous execution mode
// the paper discusses via Galois and PowerSwitch, realised on Polymer's
// NUMA-aware layout. An active vertex is enqueued on every node holding a
// portion of its out-edges; each node's threads drain their own worklist,
// relaxing strictly node-local targets and forwarding newly improved
// vertices to their owners' worklists. Termination is detected with a
// global outstanding-work counter.
//
// Compared to the synchronous EdgeMap rounds, there is no per-iteration
// barrier charge and no repeated frontier materialisation; the price is
// that every far-side read is random rather than agent-sequential.
func (e *Engine) AsyncTraverse(seeds []graph.Vertex, k AsyncKernel, h sg.Hints) {
	h = h.Normalize()
	l := e.ensurePush() // rows keyed by source, columns are local targets
	nodes := e.m.Nodes
	threads := e.m.Threads()

	queues := make([]asyncQueue, nodes)
	inQueue := make([][]uint32, nodes) // per-node "already queued" flags
	for p := 0; p < nodes; p++ {
		inQueue[p] = make([]uint32, e.g.NumVertices())
	}
	var pending atomic.Int64

	// enqueue schedules v on node p unless already scheduled there.
	enqueue := func(p int, v graph.Vertex) {
		if l.perNode[p].rowOf[v] < 0 {
			return // no local edges of v on this node
		}
		if !atomic.CompareAndSwapUint32(&inQueue[p][v], 0, 1) {
			return
		}
		pending.Add(1)
		queues[p].push(v)
	}
	broadcast := func(v graph.Vertex) {
		for p := 0; p < nodes; p++ {
			enqueue(p, v)
		}
	}
	for _, s := range seeds {
		broadcast(s)
	}

	type asyncCounts struct {
		rows, edges, enqueues int64
		_                     [5]int64
	}
	counts := make([]asyncCounts, threads)

	// A worker panic (recovered by the pool) would otherwise leave pending
	// permanently non-zero and spin the surviving workers forever; the
	// aborted flag lets them drain out.
	var aborted atomic.Bool
	e.runPhase(func(th int) {
		defer func() {
			if r := recover(); r != nil {
				aborted.Store(true)
				panic(r) // re-panic so the pool records the failure
			}
		}()
		p := e.m.NodeOfThread(th)
		nl := &l.perNode[p]
		c := &counts[th]
		weighted := h.Weighted && nl.wts != nil
		for {
			if aborted.Load() {
				return
			}
			v, ok := queues[p].pop()
			if !ok {
				if pending.Load() == 0 {
					return
				}
				runtime.Gosched()
				continue
			}
			atomic.StoreUint32(&inQueue[p][v], 0)
			r := nl.rowOf[v]
			c.rows++
			for j := nl.rowIdx[r]; j < nl.rowIdx[r+1]; j++ {
				t := nl.cols[j]
				c.edges++
				var w float32
				if weighted {
					w = nl.wts[j]
				}
				if k.Relax(v, t, w) {
					c.enqueues++
					broadcast(t)
				}
			}
			pending.Add(-1)
		}
	})

	if e.err != nil {
		return // failed traversal charges nothing
	}

	// Charge: like sparse push, but the far-side source reads happen in
	// worklist order — random remote — and there is no barrier at all.
	ep := e.m.NewEpoch()
	totRows := make([]int64, nodes)
	totEdges := make([]int64, nodes)
	totEnqueues := make([]int64, nodes)
	for th := range counts {
		p := e.m.NodeOfThread(th)
		totRows[p] += counts[th].rows
		totEdges[p] += counts[th].edges
		totEnqueues[p] += counts[th].enqueues
	}
	for th := 0; th < threads; th++ {
		p := e.m.NodeOfThread(th)
		cpn := int64(e.m.CoresPerNode)
		rows, edges := totRows[p]/cpn, totEdges[p]/cpn
		enqueues := totEnqueues[p] / cpn
		partVerts := int64(l.perNode[p].vr.Len())
		// Worklist pops + agent lookup: random local.
		e.tierFrontier.Access(ep, th, numa.Rand, numa.Load, p, rows, 8, int64(e.g.NumVertices())*4)
		// Far-side value read: random remote, spread over owners.
		e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Load, rows, h.DataBytes, dataWS(e, h))
		// Topology stream of the row's columns.
		e.tierTopo.Access(ep, th, numa.Seq, numa.Load, p, edges, 4, 0)
		// Local relaxation writes.
		e.tierState.Access(ep, th, numa.Rand, numa.Store, p, edges, h.DataBytes, partVerts*int64(h.DataBytes))
		// Cross-node enqueue handshakes are latency-bound atomics.
		e.tierFrontier.LatencyBound(ep, th, numa.Store, (p+1)%e.m.Nodes, enqueues)
		ep.Compute(th, float64(edges)*(h.NsPerEdge+e.opt.OverheadNsPerEdge)*1e-9)
	}
	e.tierPlan.Step(ep)
	e.clock += ep.Time()
	e.ledger.Add(ep)
	for th := range counts {
		e.addEdges(counts[th].edges)
	}
}

// asyncQueue is a mutex-protected LIFO worklist (LIFO keeps the working
// set hot, as Galois's chunked bags do).
type asyncQueue struct {
	mu    sync.Mutex
	items []graph.Vertex
	_     [4]int64
}

func (q *asyncQueue) push(v graph.Vertex) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
}

func (q *asyncQueue) pop() (graph.Vertex, bool) {
	q.mu.Lock()
	n := len(q.items)
	if n == 0 {
		q.mu.Unlock()
		return 0, false
	}
	v := q.items[n-1]
	q.items = q.items[:n-1]
	q.mu.Unlock()
	return v, true
}
