package core

import (
	"context"
	"errors"
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// cancelKernel cancels the engine's context from inside the phase, then
// keeps applying edges — modelling a deadline that fires mid-superstep.
type cancelKernel struct {
	cancel context.CancelFunc
	next   []float64
}

func (k *cancelKernel) Update(s, d graph.Vertex, w float32) bool {
	k.cancel()
	k.next[d]++
	return true
}
func (k *cancelKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool { return k.Update(s, d, w) }
func (k *cancelKernel) Cond(graph.Vertex) bool                         { return true }

func TestCancelledContextSkipsPhaseEntirely(t *testing.T) {
	n, edges := gen.Powerlaw(600, 6, 2.0, 11)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(2, 2), DefaultOptions())
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)

	k := newAddKernel(n)
	e.EdgeMap(state.NewAll(e.Bounds()), k, sg.Hints{})
	if !errors.Is(e.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", e.Err())
	}
	if got := e.SimSeconds(); got != 0 {
		t.Fatalf("cancelled-before-dispatch EdgeMap charged %v sim seconds", got)
	}
	if len(k.seen) != 0 {
		t.Fatalf("cancelled EdgeMap applied %d edges", len(k.seen))
	}
}

// TestCancelMidSuperstepChargesNothing is the sim-clock-snapshot check
// behind the serving layer's deadline guarantee: a context cancelled while
// a phase is in flight stops all simulated charging at the superstep
// boundary — the clock reads exactly what it read before the phase.
func TestCancelMidSuperstepChargesNothing(t *testing.T) {
	n, edges := gen.Powerlaw(600, 6, 2.0, 11)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(2, 2), DefaultOptions())
	defer e.Close()

	// Warm superstep: a nonzero baseline proves the later comparison is
	// not trivially 0 == 0.
	warm := newAddKernel(n)
	e.EdgeMap(state.NewAll(e.Bounds()), warm, sg.Hints{})
	if e.Err() != nil {
		t.Fatalf("warm EdgeMap failed: %v", e.Err())
	}
	before := e.SimSeconds()
	if before == 0 {
		t.Fatal("warm EdgeMap charged nothing")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.SetContext(ctx)
	ck := &cancelKernel{cancel: cancel, next: make([]float64, n)}
	e.EdgeMap(state.NewAll(e.Bounds()), ck, sg.Hints{})
	if !errors.Is(e.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", e.Err())
	}
	if got := e.SimSeconds(); got != before {
		t.Fatalf("post-cancel clock %v != pre-phase snapshot %v: the cancelled superstep charged the sim", got, before)
	}

	// After the resilience layer clears the failure and lifts the context,
	// the engine keeps working and charging normally.
	e.ClearErr()
	e.SetContext(context.Background())
	again := newAddKernel(n)
	e.EdgeMap(state.NewAll(e.Bounds()), again, sg.Hints{})
	if e.Err() != nil {
		t.Fatalf("EdgeMap after recovery failed: %v", e.Err())
	}
	if got := e.SimSeconds(); got <= before {
		t.Fatalf("recovered EdgeMap charged nothing: clock %v <= %v", got, before)
	}
}
