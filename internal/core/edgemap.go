package core

import (
	"math/bits"

	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/par"
	"polymer/internal/sg"
	"polymer/internal/state"
)

const (
	rowMetaBytes  = 12 // row key + edge offset (an agent's topology data)
	stateByte     = 1
	vertexMapData = 16 // curr+next datum touched per vertex in VertexMap
)

// EdgeMap applies k to every edge whose source vertex is active in a and
// returns the set of destinations that reported an update (Section 4.1).
// The execution strategy follows the paper: dense phases sweep the grouped
// per-node rows (push or pull by algorithm preference), sparse phases
// iterate the active lists through the per-node agent lookup; the adaptive
// policy chooses by active degree.
//
// EdgeMap is the interface entry point; it simply instantiates the
// generic EdgeMapK at the interface type, keeping one code path.
func (e *Engine) EdgeMap(a *state.Subset, k sg.EdgeKernel, h sg.Hints) *state.Subset {
	return EdgeMapK(e, a, k, h)
}

// EdgeMapK is EdgeMap generically typed on the kernel. Callers that know
// the concrete kernel type (the algorithms package) instantiate it
// directly so the per-edge Cond/Update/UpdateAtomic calls devirtualize and
// inline instead of dispatching through the sg.EdgeKernel interface; the
// interface path above is the fallback instantiation.
func EdgeMapK[K sg.EdgeKernel](e *Engine, a *state.Subset, k K, h sg.Hints) *state.Subset {
	h = h.Normalize()
	if a.IsEmpty() || e.err != nil {
		return state.NewEmpty(e.bounds)
	}
	e.met.EdgeMaps++

	dense := true
	if e.opt.Adaptive {
		deg := sg.ActiveDegree(e.g, a)
		dense = state.ShouldDense(a.Count(), deg, e.g.NumEdges(), e.opt.Threshold)
	}
	if !dense {
		e.met.SparsePhases++
		return edgeMapSparse(e, a.ToSparse(), k, h)
	}
	e.met.DensePhases++
	pushDense := e.opt.Mode == Push || (e.opt.Mode == Auto && h.DensePush)
	if e.opt.Mode == Pull {
		pushDense = false
	}
	if pushDense {
		return edgeMapDensePush(e, a.ToDense(), k, h)
	}
	return edgeMapDensePull(e, a.ToDense(), k, h)
}

// charger accumulates one thread's classified traffic during a phase and
// flushes it to the epoch at the end, honouring the ablation flags.
type charger struct {
	e  *Engine
	ep *numa.Epoch
	th int
	p  int // thread's node

	rowsByOwner   []int64 // state reads of row keys, by owner node
	activeByOwner []int64 // data reads/writes of row keys, by owner node
	edges         int64   // edges processed (topology + local side traffic)
	updates       int64   // successful updates
	condChecks    int64
	lookups       int64 // sparse-mode agent-table probes
	appends       int64 // sparse-mode queue appends

	_ [2]int64 // pad: pooled chargers are adjacent in memory
}

// reset clears the per-phase counters, keeping identity and slices.
func (c *charger) reset() {
	for o := range c.rowsByOwner {
		c.rowsByOwner[o] = 0
		c.activeByOwner[o] = 0
	}
	c.edges, c.updates, c.condChecks, c.lookups, c.appends = 0, 0, 0, 0, 0
}

// balanceWithinNodes redistributes each node's accumulated work evenly
// over its threads, modelling Polymer's intra-node dynamic task
// scheduling (Section 5): within a node all threads share the partition,
// so degree skew between chunks is smoothed by work stealing. Imbalance
// *across* nodes is preserved — that is what balanced partitioning
// addresses (Table 6(b), Figure 11).
func (e *Engine) balanceWithinNodes(chargers []*charger) {
	cpn := e.m.CoresPerNode
	sum := &e.scr.sum
	for p := 0; p < e.m.Nodes; p++ {
		group := chargers[p*cpn : (p+1)*cpn]
		sum.reset()
		for _, c := range group {
			if c == nil {
				continue
			}
			sum.edges += c.edges
			sum.updates += c.updates
			sum.condChecks += c.condChecks
			sum.lookups += c.lookups
			sum.appends += c.appends
			for o := range c.rowsByOwner {
				sum.rowsByOwner[o] += c.rowsByOwner[o]
				sum.activeByOwner[o] += c.activeByOwner[o]
			}
		}
		for _, c := range group {
			if c == nil {
				continue
			}
			c.edges = sum.edges / int64(cpn)
			c.updates = sum.updates / int64(cpn)
			c.condChecks = sum.condChecks / int64(cpn)
			c.lookups = sum.lookups / int64(cpn)
			c.appends = sum.appends / int64(cpn)
			for o := range c.rowsByOwner {
				c.rowsByOwner[o] = sum.rowsByOwner[o] / int64(cpn)
				c.activeByOwner[o] = sum.activeByOwner[o] / int64(cpn)
			}
		}
	}
}

// flushPush charges the dense/sparse push pattern: sequential global reads
// of source state and data, sequential local topology streaming, random
// local writes of target data and state.
func (c *charger) flushPush(h sg.Hints, partVerts int) {
	e, ep, th := c.e, c.ep, c.th
	interleavedData := e.opt.Layout != mem.CoLocated // ablation: NUMA-oblivious data
	edgeBytes := 4
	if h.Weighted {
		edgeBytes += 4
	}
	// Topology: row metadata + columns, streamed from the local node.
	var rows int64
	for _, r := range c.rowsByOwner {
		rows += r
	}
	e.tierTopo.Access(ep, th, numa.Seq, numa.Load, c.p, rows, rowMetaBytes, 0)
	e.tierTopo.Access(ep, th, numa.Seq, numa.Load, c.p, c.edges, edgeBytes, 0)
	// Far-side state and data reads.
	for o := range c.rowsByOwner {
		switch {
		case interleavedData:
			e.tierFrontier.AccessInterleaved(ep, th, numa.Seq, numa.Load, c.rowsByOwner[o], stateByte, 0)
			e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Load, c.activeByOwner[o], h.DataBytes, dataWS(e, h))
		case e.opt.DisableAgents:
			// Without replicas the far side is visited in edge order:
			// random remote reads over the whole array.
			e.tierFrontier.Access(ep, th, numa.Rand, numa.Load, o, c.rowsByOwner[o], stateByte, int64(e.g.NumVertices()))
			e.tierState.Access(ep, th, numa.Rand, numa.Load, o, c.activeByOwner[o], h.DataBytes, dataWS(e, h))
		case e.opt.DisableRolling:
			// All nodes sweep the same owner simultaneously; the traffic
			// behaves like interleaved pages.
			e.tierFrontier.AccessInterleaved(ep, th, numa.Seq, numa.Load, c.rowsByOwner[o], stateByte, 0)
			e.tierState.AccessInterleaved(ep, th, numa.Seq, numa.Load, c.activeByOwner[o], h.DataBytes, 0)
		default:
			e.tierFrontier.Access(ep, th, numa.Seq, numa.Load, o, c.rowsByOwner[o], stateByte, 0)
			e.tierState.Access(ep, th, numa.Seq, numa.Load, o, c.activeByOwner[o], h.DataBytes, 0)
		}
	}
	// Local side: random writes confined to the partition.
	localWS := int64(partVerts) * int64(h.DataBytes)
	if interleavedData {
		e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Store, c.condChecks, h.DataBytes, dataWS(e, h))
		e.tierFrontier.AccessInterleaved(ep, th, numa.Rand, numa.Store, c.updates, stateByte, 0)
	} else {
		e.tierState.Access(ep, th, numa.Rand, numa.Store, c.p, c.condChecks, h.DataBytes, localWS)
		e.tierFrontier.Access(ep, th, numa.Rand, numa.Store, c.p, c.updates, stateByte, int64(partVerts))
	}
	// Sparse-mode extras: agent-table probes and queue appends.
	e.tierTopo.Access(ep, th, numa.Rand, numa.Load, c.p, c.lookups, 4, int64(e.g.NumVertices())*4)
	e.tierFrontier.Access(ep, th, numa.Seq, numa.Store, c.p, c.appends, 4, 0)
	c.compute(h, rows)
}

// flushPull charges the dense pull pattern: sequential local topology,
// random local reads of source state and data, sequential global writes of
// target data and state.
func (c *charger) flushPull(h sg.Hints, partVerts int) {
	e, ep, th := c.e, c.ep, c.th
	interleavedData := e.opt.Layout != mem.CoLocated
	edgeBytes := 4
	if h.Weighted {
		edgeBytes += 4
	}
	var rows int64
	for _, r := range c.rowsByOwner {
		rows += r
	}
	e.tierTopo.Access(ep, th, numa.Seq, numa.Load, c.p, rows, rowMetaBytes, 0)
	e.tierTopo.Access(ep, th, numa.Seq, numa.Load, c.p, c.edges, edgeBytes, 0)
	// Local random reads of sources (state + data).
	localWS := int64(partVerts) * int64(h.DataBytes)
	if interleavedData {
		e.tierFrontier.AccessInterleaved(ep, th, numa.Rand, numa.Load, c.edges, stateByte, 0)
		e.tierState.AccessInterleaved(ep, th, numa.Rand, numa.Load, c.edges, h.DataBytes, dataWS(e, h))
	} else {
		e.tierFrontier.Access(ep, th, numa.Rand, numa.Load, c.p, c.edges, stateByte, int64(partVerts))
		e.tierState.Access(ep, th, numa.Rand, numa.Load, c.p, c.edges, h.DataBytes, localWS)
	}
	// Cross-node atomic updates bounce the target's cache line between
	// sockets (Section 4.3: "the same vertex may be updated simultaneously
	// or closely by multiple worker threads on different NUMA-nodes, which
	// may cause heavy contention and frequent cache invalidation"); charge
	// a coherence stall on a fraction of the edge updates. The rolling
	// order — the paper's mitigation — desynchronises the nodes' sweeps
	// and keeps the collision rate low; without it the nodes update the
	// same region simultaneously.
	if e.m.Nodes > 1 {
		stalls := c.edges / 16
		if e.opt.DisableRolling {
			stalls = c.edges / 4
		}
		e.tierState.LatencyBound(ep, th, numa.Store, c.p, stalls)
	}
	// Far-side target data: Cond reads and update writes, sequential by
	// owner (the agents give the sweep its sequential order).
	for o := range c.rowsByOwner {
		switch {
		case interleavedData:
			e.tierState.AccessInterleaved(ep, th, numa.Seq, numa.Load, c.rowsByOwner[o], h.DataBytes, 0)
			e.tierState.AccessInterleaved(ep, th, numa.Seq, numa.Store, c.activeByOwner[o], h.DataBytes, 0)
		case e.opt.DisableAgents:
			e.tierState.Access(ep, th, numa.Rand, numa.Load, o, c.rowsByOwner[o], h.DataBytes, dataWS(e, h))
			e.tierState.Access(ep, th, numa.Rand, numa.Store, o, c.activeByOwner[o], h.DataBytes, dataWS(e, h))
		case e.opt.DisableRolling:
			e.tierState.AccessInterleaved(ep, th, numa.Seq, numa.Load, c.rowsByOwner[o], h.DataBytes, 0)
			e.tierState.AccessInterleaved(ep, th, numa.Seq, numa.Store, c.activeByOwner[o], h.DataBytes, 0)
		default:
			e.tierState.Access(ep, th, numa.Seq, numa.Load, o, c.rowsByOwner[o], h.DataBytes, 0)
			e.tierState.Access(ep, th, numa.Seq, numa.Store, o, c.activeByOwner[o], h.DataBytes, 0)
		}
	}
	c.compute(h, rows)
}

func (c *charger) compute(h sg.Hints, rows int64) {
	ns := float64(c.edges)*(h.NsPerEdge+c.e.opt.OverheadNsPerEdge) + float64(rows)*2
	c.ep.Compute(c.th, ns*1e-9)
}

func dataWS(e *Engine, h sg.Hints) int64 {
	return int64(e.g.NumVertices()) * int64(h.DataBytes)
}

// edgeMapDensePush sweeps each node's source-keyed rows in rolling order:
// active sources push updates to their local targets.
func edgeMapDensePush[K sg.EdgeKernel](e *Engine, a *state.Subset, k K, h sg.Hints) *state.Subset {
	l := e.ensurePush()
	collect := !h.NoOutput
	var b *state.Builder
	if collect {
		b = state.NewBuilder(e.bounds, e.m.Threads(), true).Reuse(&e.scr.builder).WithDegrees(e.degreeOf)
	}
	ep := e.scr.beginPhase()
	full := a.Count() == int64(e.g.NumVertices())

	e.runPhase(func(th int) {
		p := e.m.NodeOfThread(th)
		nl := &l.perNode[p]
		rows := len(nl.rowIDs)
		if rows == 0 {
			return
		}
		start := nl.startRow
		if e.opt.DisableRolling {
			start = 0
		}
		c := e.scr.charger(th)
		weighted := h.Weighted && nl.wts != nil
		l.strides[p].Do(th%e.m.CoresPerNode, func(lo, hi int64) {
			var edges, condChecks, updates int64
			for i := lo; i < hi; i++ {
				r := int(i) + start
				if r >= rows {
					r -= rows
				}
				s := nl.rowIDs[r]
				owner := nl.rowOwner[r]
				c.rowsByOwner[owner]++
				if !full && !a.Contains(s) {
					continue
				}
				c.activeByOwner[owner]++
				cols := nl.cols[nl.rowIdx[r]:nl.rowIdx[r+1]]
				if weighted {
					wts := nl.wts[nl.rowIdx[r]:nl.rowIdx[r+1]]
					for j, t := range cols {
						edges++
						if !k.Cond(t) {
							continue
						}
						condChecks++
						if k.UpdateAtomic(s, t, wts[j]) {
							if collect {
								b.SetIn(p, th, t) // push targets are node-local
							}
							updates++
						}
					}
				} else {
					for _, t := range cols {
						edges++
						if !k.Cond(t) {
							continue
						}
						condChecks++
						if k.UpdateAtomic(s, t, 0) {
							if collect {
								b.SetIn(p, th, t)
							}
							updates++
						}
					}
				}
			}
			c.edges += edges
			c.condChecks += condChecks
			c.updates += updates
		})
		e.addEdges(c.edges)
	})
	if e.err != nil {
		return state.NewEmpty(e.bounds) // failed phase charges nothing
	}
	e.balanceWithinNodes(e.scr.chargers)
	for th, c := range e.scr.chargers {
		if c != nil {
			c.flushPush(h, l.perNode[e.m.NodeOfThread(th)].vr.Len())
		}
	}
	e.recordPhase("edgemap", true, true, a.Count(), e.chargePhase(ep))
	if !collect {
		return state.NewEmpty(e.bounds)
	}
	return b.Build()
}

// edgeMapDensePull sweeps each node's target-keyed rows: every target
// gathers from its local sources. With more than one node the same target
// may be updated from several nodes concurrently, so the atomic update
// path is used (Section 4.3).
func edgeMapDensePull[K sg.EdgeKernel](e *Engine, a *state.Subset, k K, h sg.Hints) *state.Subset {
	l := e.ensurePull()
	collect := !h.NoOutput
	var b *state.Builder
	if collect {
		b = state.NewBuilder(e.bounds, e.m.Threads(), true).Reuse(&e.scr.builder).WithDegrees(e.degreeOf)
	}
	ep := e.scr.beginPhase()
	atomicUpdate := e.m.Nodes > 1 || e.m.CoresPerNode > 1
	full := a.Count() == int64(e.g.NumVertices())

	e.runPhase(func(th int) {
		p := e.m.NodeOfThread(th)
		nl := &l.perNode[p]
		rows := len(nl.rowIDs)
		if rows == 0 {
			return
		}
		start := nl.startRow
		if e.opt.DisableRolling {
			start = 0
		}
		c := e.scr.charger(th)
		weighted := h.Weighted && nl.wts != nil
		l.strides[p].Do(th%e.m.CoresPerNode, func(lo, hi int64) {
			var edges, updates int64
			for i := lo; i < hi; i++ {
				r := int(i) + start
				if r >= rows {
					r -= rows
				}
				t := nl.rowIDs[r]
				owner := nl.rowOwner[r]
				c.rowsByOwner[owner]++
				if !k.Cond(t) {
					continue
				}
				updated := false
				cols := nl.cols[nl.rowIdx[r]:nl.rowIdx[r+1]]
				for j, s := range cols {
					edges++
					if !full && !a.Contains(s) {
						continue
					}
					var w float32
					if weighted {
						w = nl.wts[int(nl.rowIdx[r])+j]
					}
					var ok bool
					if atomicUpdate {
						ok = k.UpdateAtomic(s, t, w)
					} else {
						ok = k.Update(s, t, w)
					}
					if ok {
						updated = true
					}
					if !k.Cond(t) {
						break // destination satisfied (Ligra's early exit)
					}
				}
				if updated {
					if collect {
						b.Set(th, t)
					}
					c.activeByOwner[owner]++
					updates++
				}
			}
			c.edges += edges
			c.updates += updates
		})
		e.addEdges(c.edges)
	})
	if e.err != nil {
		return state.NewEmpty(e.bounds)
	}
	e.balanceWithinNodes(e.scr.chargers)
	for th, c := range e.scr.chargers {
		if c != nil {
			c.flushPull(h, l.perNode[e.m.NodeOfThread(th)].vr.Len())
		}
	}
	e.recordPhase("edgemap", true, false, a.Count(), e.chargePhase(ep))
	if !collect {
		return state.NewEmpty(e.bounds)
	}
	return b.Build()
}

// edgeMapSparse iterates the active vertex lists (all nodes' leaves, read
// through the lookup table) and processes, on each node, the local
// portion of every active vertex's edges via the agent lookup.
func edgeMapSparse[K sg.EdgeKernel](e *Engine, a *state.Subset, k K, h sg.Hints) *state.Subset {
	l := e.ensurePush()
	collect := !h.NoOutput
	var b *state.Builder
	if collect {
		b = state.NewBuilder(e.bounds, e.m.Threads(), false).Reuse(&e.scr.builder).WithDegrees(e.degreeOf)
	}
	ep := e.scr.beginPhase()
	nodes := e.m.Nodes

	// Concatenate the per-node active lists once (into the reusable
	// scratch buffers); every node sweeps the full frontier (its local
	// edges of each active vertex).
	actives := e.scr.actives[:0]
	ownerOf := e.scr.ownerOf[:0]
	for p := 0; p < nodes; p++ {
		for _, v := range a.List(p) {
			actives = append(actives, v)
			ownerOf = append(ownerOf, uint8(p))
		}
	}
	e.scr.actives, e.scr.ownerOf = actives, ownerOf
	stride := par.MakeStrided(int64(len(actives)), par.ChunkSize(int64(len(actives)), e.m.CoresPerNode), e.m.CoresPerNode)

	e.runPhase(func(th int) {
		p := e.m.NodeOfThread(th)
		nl := &l.perNode[p]
		if len(nl.rowIDs) == 0 {
			return
		}
		c := e.scr.charger(th)
		weighted := h.Weighted && nl.wts != nil
		stride.Do(th%e.m.CoresPerNode, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				s := actives[i]
				owner := ownerOf[i]
				c.rowsByOwner[owner]++
				c.lookups++
				r := nl.rowOf[s]
				if r < 0 {
					continue
				}
				c.activeByOwner[owner]++
				for j := nl.rowIdx[r]; j < nl.rowIdx[r+1]; j++ {
					t := nl.cols[j]
					c.edges++
					if !k.Cond(t) {
						continue
					}
					c.condChecks++
					var w float32
					if weighted {
						w = nl.wts[j]
					}
					if k.UpdateAtomic(s, t, w) {
						if collect {
							b.Add(th, t)
						}
						c.updates++
						c.appends++
					}
				}
			}
		})
		e.addEdges(c.edges)
	})
	if e.err != nil {
		return state.NewEmpty(e.bounds)
	}
	e.balanceWithinNodes(e.scr.chargers)
	for th, c := range e.scr.chargers {
		if c != nil {
			c.flushPush(h, l.perNode[e.m.NodeOfThread(th)].vr.Len())
		}
	}
	e.recordPhase("edgemap", false, true, a.Count(), e.chargePhase(ep))
	if !collect {
		return state.NewEmpty(e.bounds)
	}
	return b.Build()
}

// VertexMap applies f to every active vertex and returns those for which
// it returned true. Vertices are processed by their owning node's threads
// with dynamic chunking.
func (e *Engine) VertexMap(a *state.Subset, f sg.VertexFunc) *state.Subset {
	if a.IsEmpty() || e.err != nil {
		return state.NewEmpty(e.bounds)
	}
	e.met.VertexMaps++
	b := state.NewBuilder(e.bounds, e.m.Threads(), a.Dense()).Reuse(&e.scr.builder).WithDegrees(e.degreeOf)
	ep := e.scr.beginPhase()

	if a.Dense() {
		strides := e.vmDenseStrides()
		e.runPhase(func(th int) {
			p := e.m.NodeOfThread(th)
			words := a.Words(p)
			base := e.bounds[p]
			var visited, wordsScanned int64
			strides[p].Do(th%e.m.CoresPerNode, func(lo, hi int64) {
				wordsScanned += hi - lo
				for wi := lo; wi < hi; wi++ {
					w := words[wi]
					for w != 0 {
						bit := bits.TrailingZeros64(w)
						v := graph.Vertex(base + int(wi)*64 + bit)
						visited++
						if f(v) {
							b.SetIn(p, th, v) // node p's words cover its own partition
						}
						w &= w - 1
					}
				}

			})
			e.tierFrontier.Access(ep, th, numa.Seq, numa.Load, p, wordsScanned, 8, 0)
			e.tierState.Access(ep, th, numa.Seq, numa.Load, p, visited, vertexMapData, 0)
			ep.Compute(th, float64(visited)*2e-9)
		})
	} else {
		e.runPhase(func(th int) {
			p := e.m.NodeOfThread(th)
			list := a.List(p)
			var visited int64
			stride := par.MakeStrided(int64(len(list)), 64, e.m.CoresPerNode)
			stride.Do(th%e.m.CoresPerNode, func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					v := list[i]
					visited++
					if f(v) {
						b.Add(th, v)
					}
				}

			})
			e.tierState.Access(ep, th, numa.Seq, numa.Load, p, visited, 4+vertexMapData, 0)
			ep.Compute(th, float64(visited)*2e-9)
		})
	}
	if e.err != nil {
		return state.NewEmpty(e.bounds)
	}
	e.recordPhase("vertexmap", a.Dense(), false, a.Count(), e.chargePhase(ep))
	return b.Build()
}

// addEdges accumulates the processed-edge metric from worker goroutines.
func (e *Engine) addEdges(n int64) {
	e.edgesProcessed.Add(n)
}
