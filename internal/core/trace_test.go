package core

import (
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/sg"
	"polymer/internal/state"
)

func TestTraceRecordsPhases(t *testing.T) {
	n, edges := gen.RMAT(8, 8, 3)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(2, 2)
	opt := DefaultOptions()
	opt.Trace = true
	opt.Mode = Push
	opt.Adaptive = false
	e := MustNew(g, m, opt)
	defer e.Close()

	all := state.NewAll(e.Bounds())
	e.EdgeMap(all, newAddKernel(n), sg.Hints{DensePush: true})
	e.VertexMap(all, func(graph.Vertex) bool { return true })

	tr := e.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace has %d records, want 2", len(tr))
	}
	em, vm := tr[0], tr[1]
	if em.Kind != "edgemap" || !em.Dense || !em.Push || em.ActiveIn != int64(n) {
		t.Fatalf("edgemap record wrong: %+v", em)
	}
	if vm.Kind != "vertexmap" || vm.ActiveIn != int64(n) {
		t.Fatalf("vertexmap record wrong: %+v", vm)
	}
	if em.SimSeconds <= 0 || vm.SimSeconds <= 0 {
		t.Fatal("phase times must be positive")
	}
	// Trace times must sum to the engine clock.
	var sum float64
	for _, r := range tr {
		sum += r.SimSeconds
	}
	if diff := sum - e.SimSeconds(); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("trace sum %v != clock %v", sum, e.SimSeconds())
	}
}

func TestTraceDistinguishesSparsePhases(t *testing.T) {
	n, edges := gen.RoadGrid(20, 20, 2)
	g := graph.FromEdges(n, edges, true)
	m := testMachine(2, 2)
	opt := DefaultOptions()
	opt.Trace = true
	e := MustNew(g, m, opt)
	defer e.Close()

	k := &claimKernel{parent: make([]uint32, n)}
	for i := range k.parent {
		k.parent[i] = ^uint32(0)
	}
	k.parent[0] = 0
	frontier := state.NewSingle(e.Bounds(), 0)
	for !frontier.IsEmpty() {
		frontier = e.EdgeMap(frontier, k, sg.Hints{})
	}
	sparse, dense := 0, 0
	for _, r := range e.Trace() {
		if r.Dense {
			dense++
		} else {
			sparse++
		}
	}
	// BFS on a grid from a corner: small frontiers throughout -> sparse.
	if sparse == 0 {
		t.Fatal("grid BFS must run sparse phases")
	}
	if sparse+dense != len(e.Trace()) {
		t.Fatal("phase counts inconsistent")
	}
}

func TestTraceOffByDefault(t *testing.T) {
	n, edges := gen.Chain(20)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(1, 1), DefaultOptions())
	defer e.Close()
	e.VertexMap(state.NewAll(e.Bounds()), func(graph.Vertex) bool { return true })
	if len(e.Trace()) != 0 {
		t.Fatal("trace must be empty when disabled")
	}
}
