package core

import (
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/partition"
)

type edgeKey struct{ s, t graph.Vertex }

// collectLayoutEdges reassembles the (source, target) pairs stored in a
// layout. In push layouts, rows are sources and columns targets; in pull
// layouts the reverse.
func collectLayoutEdges(l *layout, push bool) map[edgeKey]int {
	out := make(map[edgeKey]int)
	for p := range l.perNode {
		nl := &l.perNode[p]
		for r := range nl.rowIDs {
			key := nl.rowIDs[r]
			for j := nl.rowIdx[r]; j < nl.rowIdx[r+1]; j++ {
				col := nl.cols[j]
				if push {
					out[edgeKey{key, col}]++
				} else {
					out[edgeKey{col, key}]++
				}
			}
		}
	}
	return out
}

func graphEdges(g *graph.Graph) map[edgeKey]int {
	out := make(map[edgeKey]int)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(graph.Vertex(v)) {
			out[edgeKey{graph.Vertex(v), u}]++
		}
	}
	return out
}

func sameEdgeMultiset(t *testing.T, a, b map[edgeKey]int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("edge sets differ in size: %d vs %d", len(a), len(b))
	}
	for k, c := range a {
		if b[k] != c {
			t.Fatalf("edge %v count %d vs %d", k, c, b[k])
		}
	}
}

func TestLayoutPreservesAllEdges(t *testing.T) {
	n, edges := gen.RMAT(9, 8, 2)
	g := graph.FromEdges(n, edges, false)
	parts := partition.VertexBalanced(n, 4)
	for _, push := range []bool{true, false} {
		l := buildLayout(g, parts, push)
		sameEdgeMultiset(t, graphEdges(g), collectLayoutEdges(l, push))
	}
}

func TestLayoutColumnsAreLocal(t *testing.T) {
	n, edges := gen.Uniform(300, 2000, 4)
	g := graph.FromEdges(n, edges, false)
	parts := partition.VertexBalanced(n, 3)
	for _, push := range []bool{true, false} {
		l := buildLayout(g, parts, push)
		for p := range l.perNode {
			nl := &l.perNode[p]
			for _, col := range nl.cols {
				if !parts[p].Contains(col) {
					t.Fatalf("push=%t node %d holds foreign column %d", push, p, col)
				}
			}
		}
	}
}

func TestLayoutRowsAscendingAndOwners(t *testing.T) {
	n, edges := gen.Powerlaw(400, 6, 2.0, 8)
	g := graph.FromEdges(n, edges, false)
	parts := partition.VertexBalanced(n, 4)
	l := buildLayout(g, parts, true)
	for p := range l.perNode {
		nl := &l.perNode[p]
		for r := range nl.rowIDs {
			if r > 0 && nl.rowIDs[r] <= nl.rowIDs[r-1] {
				t.Fatal("row keys must be strictly ascending")
			}
			want := partition.NodeOf(parts, nl.rowIDs[r])
			if int(nl.rowOwner[r]) != want {
				t.Fatalf("rowOwner mismatch for vertex %d: %d vs %d", nl.rowIDs[r], nl.rowOwner[r], want)
			}
		}
	}
}

func TestLayoutRowOf(t *testing.T) {
	n, edges := gen.RMAT(8, 4, 6)
	g := graph.FromEdges(n, edges, false)
	parts := partition.VertexBalanced(n, 2)
	l := buildLayout(g, parts, true)
	for p := range l.perNode {
		nl := &l.perNode[p]
		seen := make(map[graph.Vertex]bool)
		for r, id := range nl.rowIDs {
			if nl.rowOf[id] != int32(r) {
				t.Fatalf("rowOf[%d] = %d, want %d", id, nl.rowOf[id], r)
			}
			seen[id] = true
		}
		for v := 0; v < n; v++ {
			if !seen[graph.Vertex(v)] && nl.rowOf[v] != -1 {
				t.Fatalf("rowOf[%d] should be -1", v)
			}
		}
	}
}

func TestLayoutAgentsCount(t *testing.T) {
	n, edges := gen.Uniform(200, 3000, 9)
	g := graph.FromEdges(n, edges, false)
	parts := partition.VertexBalanced(n, 4)
	l := buildLayout(g, parts, true)
	for p := range l.perNode {
		nl := &l.perNode[p]
		agents := 0
		for r := range nl.rowIDs {
			if int(nl.rowOwner[r]) != p {
				agents++
			}
		}
		if agents != nl.agents {
			t.Fatalf("node %d agents = %d, counted %d", p, nl.agents, agents)
		}
	}
	if l.agentBytes <= 0 {
		t.Fatal("a multi-node uniform graph must create agents")
	}
}

func TestLayoutStartRowRolling(t *testing.T) {
	n, edges := gen.Uniform(400, 4000, 10)
	g := graph.FromEdges(n, edges, false)
	parts := partition.VertexBalanced(n, 4)
	l := buildLayout(g, parts, true)
	for p := range l.perNode {
		nl := &l.perNode[p]
		if len(nl.rowIDs) == 0 {
			continue
		}
		sr := nl.startRow
		if sr < len(nl.rowIDs) && int(nl.rowIDs[sr]) >= nl.vr.Lo {
			// Every earlier row must be keyed before the local range.
			for r := 0; r < sr; r++ {
				if int(nl.rowIDs[r]) >= nl.vr.Lo {
					t.Fatalf("node %d: row %d already local before startRow %d", p, r, sr)
				}
			}
		}
	}
}

func TestLayoutWeights(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1, Wt: 2.5}, {Src: 1, Dst: 2, Wt: 3.5}, {Src: 2, Dst: 0, Wt: 4.5}}
	g := graph.FromEdges(3, edges, true)
	parts := partition.VertexBalanced(3, 2)
	l := buildLayout(g, parts, true)
	found := make(map[edgeKey]float32)
	for p := range l.perNode {
		nl := &l.perNode[p]
		for r := range nl.rowIDs {
			for j := nl.rowIdx[r]; j < nl.rowIdx[r+1]; j++ {
				found[edgeKey{nl.rowIDs[r], nl.cols[j]}] = nl.wts[j]
			}
		}
	}
	for _, e := range edges {
		if found[edgeKey{e.Src, e.Dst}] != e.Wt {
			t.Fatalf("weight of (%d,%d) = %v, want %v", e.Src, e.Dst, found[edgeKey{e.Src, e.Dst}], e.Wt)
		}
	}
}
