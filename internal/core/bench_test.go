package core

import (
	"testing"

	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/sg"
	"polymer/internal/state"
)

// Wall-clock benchmarks of the engine's hot loops (the simulated clock is
// benchmarked separately in the repository root's bench_test.go).

func benchSetup(b *testing.B, mode Mode) (*Engine, *state.Subset, int) {
	b.Helper()
	n, edges := gen.RMAT(13, 16, 1)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(4, 2)
	opt := DefaultOptions()
	opt.Mode = mode
	opt.Adaptive = false
	e := MustNew(g, m, opt)
	b.Cleanup(e.Close)
	return e, state.NewAll(e.Bounds()), n
}

func BenchmarkEdgeMapDensePush(b *testing.B) {
	e, all, n := benchSetup(b, Push)
	k := newAddKernel(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EdgeMap(all, k, sg.Hints{DensePush: true})
	}
	b.ReportMetric(float64(e.Graph().NumEdges()), "edges/op")
}

func BenchmarkEdgeMapDensePull(b *testing.B) {
	e, all, n := benchSetup(b, Pull)
	k := newAddKernel(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EdgeMap(all, k, sg.Hints{})
	}
	b.ReportMetric(float64(e.Graph().NumEdges()), "edges/op")
}

func BenchmarkEdgeMapSparse(b *testing.B) {
	n, edges := gen.RMAT(13, 16, 1)
	g := graph.FromEdges(n, edges, false)
	e := MustNew(g, testMachine(4, 2), DefaultOptions())
	b.Cleanup(e.Close)
	frontier := make([]graph.Vertex, 0, 64)
	for v := 0; v < 64; v++ {
		frontier = append(frontier, graph.Vertex(v*97%n))
	}
	in := state.FromVertices(e.Bounds(), frontier)
	k := newAddKernel(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EdgeMap(in, k, sg.Hints{DensePush: true})
	}
}

func BenchmarkVertexMapDense(b *testing.B) {
	e, all, _ := benchSetup(b, Push)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.VertexMap(all, func(v graph.Vertex) bool { return v%2 == 0 })
	}
}

func BenchmarkLayoutBuild(b *testing.B) {
	n, edges := gen.RMAT(13, 16, 1)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := DefaultOptions()
		opt.Mode = Push
		e := MustNew(g, m, opt)
		e.ensurePush()
		e.Close()
	}
}
