package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"polymer/internal/atomicx"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/sg"
	"polymer/internal/state"
)

func testMachine(nodes, cores int) *numa.Machine {
	return numa.NewMachine(numa.IntelXeon80(), nodes, cores)
}

// addKernel accumulates 1.0 into next[d] per applied edge and records the
// applied (s,d) pairs; always activates the destination.
type addKernel struct {
	next []float64
	mu   sync.Mutex
	seen map[edgeKey]int
}

func newAddKernel(n int) *addKernel {
	return &addKernel{next: make([]float64, n), seen: make(map[edgeKey]int)}
}

func (k *addKernel) record(s, d graph.Vertex) {
	k.mu.Lock()
	k.seen[edgeKey{s, d}]++
	k.mu.Unlock()
}

func (k *addKernel) Update(s, d graph.Vertex, w float32) bool {
	k.next[d]++
	k.record(s, d)
	return true
}

func (k *addKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	atomicx.AddFloat64(&k.next[d], 1)
	k.record(s, d)
	return true
}

func (k *addKernel) Cond(graph.Vertex) bool { return true }

// expectApplied returns the edges whose source is in the active set.
func expectApplied(g *graph.Graph, active func(graph.Vertex) bool) map[edgeKey]int {
	out := make(map[edgeKey]int)
	for v := 0; v < g.NumVertices(); v++ {
		if !active(graph.Vertex(v)) {
			continue
		}
		for _, u := range g.OutNeighbors(graph.Vertex(v)) {
			out[edgeKey{graph.Vertex(v), u}]++
		}
	}
	return out
}

func TestEdgeMapDensePushAppliesAllActiveEdges(t *testing.T) {
	n, edges := gen.RMAT(9, 8, 5)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(4, 2)
	opt := DefaultOptions()
	opt.Mode = Push
	opt.Adaptive = false
	e := MustNew(g, m, opt)
	defer e.Close()

	k := newAddKernel(n)
	all := state.NewAll(e.Bounds())
	out := e.EdgeMap(all, k, sg.Hints{DensePush: true})

	sameEdgeMultiset(t, expectApplied(g, func(graph.Vertex) bool { return true }), k.seen)
	// Every vertex with an in-edge must be in the output frontier.
	for v := 0; v < n; v++ {
		want := g.InDegree(graph.Vertex(v)) > 0
		if got := out.Contains(graph.Vertex(v)); got != want {
			t.Fatalf("frontier membership of %d = %t, want %t", v, got, want)
		}
	}
	// next[d] must equal the in-degree.
	for v := 0; v < n; v++ {
		if k.next[v] != float64(g.InDegree(graph.Vertex(v))) {
			t.Fatalf("next[%d] = %v, want %d", v, k.next[v], g.InDegree(graph.Vertex(v)))
		}
	}
}

func TestEdgeMapDensePullMatchesPush(t *testing.T) {
	n, edges := gen.Uniform(400, 3000, 3)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(2, 2)

	optPush := DefaultOptions()
	optPush.Mode = Push
	optPush.Adaptive = false
	ePush := MustNew(g, m, optPush)
	defer ePush.Close()
	kPush := newAddKernel(n)
	ePush.EdgeMap(state.NewAll(ePush.Bounds()), kPush, sg.Hints{})

	optPull := DefaultOptions()
	optPull.Mode = Pull
	optPull.Adaptive = false
	ePull := MustNew(g, m, optPull)
	defer ePull.Close()
	kPull := newAddKernel(n)
	ePull.EdgeMap(state.NewAll(ePull.Bounds()), kPull, sg.Hints{})

	for v := 0; v < n; v++ {
		if kPush.next[v] != kPull.next[v] {
			t.Fatalf("push/pull mismatch at %d: %v vs %v", v, kPush.next[v], kPull.next[v])
		}
	}
}

func TestEdgeMapSparseMatchesDense(t *testing.T) {
	n, edges := gen.Powerlaw(600, 6, 2.0, 11)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(2, 2)

	// Small frontier forces the sparse path under Auto+Adaptive.
	frontier := []graph.Vertex{1, 5, 9, 100, 101, 599}

	optA := DefaultOptions() // adaptive: sparse for a tiny frontier
	eA := MustNew(g, m, optA)
	defer eA.Close()
	kA := newAddKernel(n)
	outA := eA.EdgeMap(state.FromVertices(eA.Bounds(), frontier), kA, sg.Hints{DensePush: true})
	if eA.Metrics().SparsePhases != 1 {
		t.Fatalf("expected a sparse phase, got %+v", eA.Metrics())
	}

	optB := DefaultOptions()
	optB.Adaptive = false // force dense
	optB.Mode = Push
	eB := MustNew(g, m, optB)
	defer eB.Close()
	kB := newAddKernel(n)
	outB := eB.EdgeMap(state.FromVertices(eB.Bounds(), frontier), kB, sg.Hints{DensePush: true})
	if eB.Metrics().DensePhases != 1 {
		t.Fatalf("expected a dense phase, got %+v", eB.Metrics())
	}

	sameEdgeMultiset(t, kB.seen, kA.seen)
	if outA.Count() != outB.Count() {
		t.Fatalf("sparse/dense frontier sizes differ: %d vs %d", outA.Count(), outB.Count())
	}
	outA.ForEach(func(v graph.Vertex) {
		if !outB.Contains(v) {
			t.Fatalf("frontier member %d missing from dense result", v)
		}
	})
}

// claimKernel marks destinations once (BFS-style CAS), exercising Cond.
type claimKernel struct{ parent []uint32 }

func (k *claimKernel) Update(s, d graph.Vertex, w float32) bool {
	if atomic.LoadUint32(&k.parent[d]) == ^uint32(0) {
		atomic.StoreUint32(&k.parent[d], s)
		return true
	}
	return false
}

func (k *claimKernel) UpdateAtomic(s, d graph.Vertex, w float32) bool {
	return atomicx.CASUint32(&k.parent[d], ^uint32(0), s)
}

func (k *claimKernel) Cond(d graph.Vertex) bool {
	return atomic.LoadUint32(&k.parent[d]) == ^uint32(0)
}

func TestEdgeMapCondFiltersClaimed(t *testing.T) {
	n, edges := gen.Star(100)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(2, 2)
	e := MustNew(g, m, DefaultOptions())
	defer e.Close()

	k := &claimKernel{parent: make([]uint32, n)}
	for i := range k.parent {
		k.parent[i] = ^uint32(0)
	}
	k.parent[0] = 0
	out := e.EdgeMap(state.NewSingle(e.Bounds(), 0), k, sg.Hints{})
	if out.Count() != int64(n-1) {
		t.Fatalf("star frontier = %d, want %d", out.Count(), n-1)
	}
	// Second round: everything claimed, no updates.
	out2 := e.EdgeMap(out, k, sg.Hints{})
	if !out2.IsEmpty() {
		t.Fatalf("second round must be empty, got %d", out2.Count())
	}
}

func TestVertexMapFilters(t *testing.T) {
	n := 200
	g := graph.FromEdges(n, []graph.Edge{{Src: 0, Dst: 1}}, false)
	m := testMachine(2, 2)
	e := MustNew(g, m, DefaultOptions())
	defer e.Close()

	all := state.NewAll(e.Bounds())
	evens := e.VertexMap(all, func(v graph.Vertex) bool { return v%2 == 0 })
	if evens.Count() != int64(n/2) {
		t.Fatalf("evens = %d, want %d", evens.Count(), n/2)
	}
	evens.ForEach(func(v graph.Vertex) {
		if v%2 != 0 {
			t.Fatalf("odd vertex %d in result", v)
		}
	})
	// Sparse input path.
	sp := evens.ToSparse()
	quarters := e.VertexMap(sp, func(v graph.Vertex) bool { return v%4 == 0 })
	if quarters.Count() != int64(n/4) {
		t.Fatalf("quarters = %d, want %d", quarters.Count(), n/4)
	}
}

func TestVertexMapVisitsEachActiveOnce(t *testing.T) {
	n := 137
	g := graph.FromEdges(n, nil, false)
	m := testMachine(4, 2)
	e := MustNew(g, m, DefaultOptions())
	defer e.Close()
	counts := make([]int64, n)
	var mu sync.Mutex
	e.VertexMap(state.NewAll(e.Bounds()), func(v graph.Vertex) bool {
		mu.Lock()
		counts[v]++
		mu.Unlock()
		return false
	})
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("vertex %d visited %d times", v, c)
		}
	}
}

func TestEmptyInputsShortCircuit(t *testing.T) {
	n, edges := gen.Chain(50)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(2, 1)
	e := MustNew(g, m, DefaultOptions())
	defer e.Close()
	empty := state.NewEmpty(e.Bounds())
	if out := e.EdgeMap(empty, newAddKernel(n), sg.Hints{}); !out.IsEmpty() {
		t.Fatal("EdgeMap on empty must be empty")
	}
	if out := e.VertexMap(empty, func(graph.Vertex) bool { return true }); !out.IsEmpty() {
		t.Fatal("VertexMap on empty must be empty")
	}
	if e.Metrics().EdgeMaps != 0 {
		t.Fatal("empty input must not count as a phase")
	}
}

func TestSimTimeAdvancesAndStatsAccumulate(t *testing.T) {
	n, edges := gen.RMAT(9, 8, 7)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(4, 2)
	e := MustNew(g, m, DefaultOptions())
	defer e.Close()
	e.EdgeMap(state.NewAll(e.Bounds()), newAddKernel(n), sg.Hints{DensePush: true})
	if e.SimSeconds() <= 0 {
		t.Fatal("simulated time must advance")
	}
	st := e.RunStats()
	if st.LocalCount+st.RemoteCount == 0 {
		t.Fatal("accesses must be recorded")
	}
	if st.RemoteRate <= 0 || st.RemoteRate >= 1 {
		t.Fatalf("remote rate = %v, want in (0,1)", st.RemoteRate)
	}
	ths := e.ThreadSeconds()
	var busy float64
	for _, s := range ths {
		busy += s
	}
	if busy <= 0 {
		t.Fatal("thread seconds must accumulate")
	}
}

func TestCoLocatedFasterThanInterleavedAblation(t *testing.T) {
	n, edges := gen.TwitterLike(4000, 1)
	g := graph.FromEdges(n, edges, false)

	run := func(layout mem.Placement) float64 {
		m := testMachine(8, 2)
		opt := DefaultOptions()
		opt.Mode = Push
		opt.Adaptive = false
		opt.Layout = layout
		e := MustNew(g, m, opt)
		defer e.Close()
		all := state.NewAll(e.Bounds())
		for i := 0; i < 3; i++ {
			e.EdgeMap(all, newAddKernel(n), sg.Hints{DensePush: true})
		}
		return e.SimSeconds()
	}
	co := run(mem.CoLocated)
	il := run(mem.Interleaved)
	if !(co < il) {
		t.Fatalf("co-located (%v) must beat interleaved (%v) — the paper's core claim", co, il)
	}
}

func TestDisableAgentsSlower(t *testing.T) {
	// The vertex data must exceed the (scaled) LLC for the random-vs-
	// sequential remote distinction to matter, as at paper scale.
	n, edges := gen.TwitterLike(40000, 2)
	g := graph.FromEdges(n, edges, false)
	run := func(disable bool) float64 {
		m := testMachine(8, 2)
		opt := DefaultOptions()
		opt.Mode = Push
		opt.Adaptive = false
		opt.DisableAgents = disable
		e := MustNew(g, m, opt)
		defer e.Close()
		all := state.NewAll(e.Bounds())
		for i := 0; i < 3; i++ {
			e.EdgeMap(all, newAddKernel(n), sg.Hints{DensePush: true})
		}
		return e.SimSeconds()
	}
	with, without := run(false), run(true)
	if !(with < without) {
		t.Fatalf("agents (%v) must beat no-agents (%v): sequential remote beats random remote", with, without)
	}
}

func TestAgentMemoryTracked(t *testing.T) {
	n, edges := gen.Uniform(500, 5000, 5)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(4, 1)
	e := MustNew(g, m, DefaultOptions())
	e.EdgeMap(state.NewAll(e.Bounds()), newAddKernel(n), sg.Hints{DensePush: true})
	if m.Alloc().Label("polymer/agents") <= 0 {
		t.Fatal("agent memory must be tracked (Table 5)")
	}
	if m.Alloc().Label("polymer/topology") <= 0 {
		t.Fatal("topology memory must be tracked")
	}
	e.Close()
	if m.Alloc().Current() != 0 {
		t.Fatalf("Close must release simulated memory, %d left", m.Alloc().Current())
	}
}

func TestNewDataPlacement(t *testing.T) {
	n, edges := gen.Chain(100)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(2, 1)
	e := MustNew(g, m, DefaultOptions())
	defer e.Close()
	d := e.NewData("ranks")
	if d.Placement() != mem.CoLocated || d.Len() != n {
		t.Fatal("NewData must be co-located over all vertices")
	}
	d32 := e.NewData32("labels")
	if d32.Placement() != mem.CoLocated || d32.Len() != n {
		t.Fatal("NewData32 must be co-located over all vertices")
	}

	opt := DefaultOptions()
	opt.Layout = mem.Interleaved
	e2 := MustNew(g, m, opt)
	defer e2.Close()
	if e2.NewData("x").Placement() != mem.Interleaved {
		t.Fatal("layout override must apply to NewData")
	}
}

func TestCloseIdempotent(t *testing.T) {
	n, edges := gen.Chain(10)
	g := graph.FromEdges(n, edges, false)
	m := testMachine(1, 1)
	e := MustNew(g, m, DefaultOptions())
	e.Close()
	e.Close()
}
