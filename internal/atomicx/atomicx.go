// Package atomicx supplies the lock-free numeric primitives graph kernels
// need beyond sync/atomic: atomic float64 accumulation (the paper's
// AtomicAdd in PageRank's edge function) and atomic minimum for distances
// and labels.
package atomicx

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// AddFloat64 atomically adds v to *p. The uncontended attempt is kept
// small enough to inline into kernel edge functions; the retry loop lives
// in the slow path.
func AddFloat64(p *float64, v float64) {
	u := (*uint64)(unsafe.Pointer(p))
	old := atomic.LoadUint64(u)
	if atomic.CompareAndSwapUint64(u, old, math.Float64bits(math.Float64frombits(old)+v)) {
		return
	}
	addFloat64Slow(u, v)
}

func addFloat64Slow(u *uint64, v float64) {
	for {
		old := atomic.LoadUint64(u)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(u, old, next) {
			return
		}
	}
}

// LoadFloat64 atomically loads *p.
func LoadFloat64(p *float64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(p))))
}

// StoreFloat64 atomically stores v into *p.
func StoreFloat64(p *float64, v float64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(p)), math.Float64bits(v))
}

// MulFloat64 atomically multiplies *p by v (belief-propagation message
// products).
func MulFloat64(p *float64, v float64) {
	u := (*uint64)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint64(u)
		next := math.Float64bits(math.Float64frombits(old) * v)
		if atomic.CompareAndSwapUint64(u, old, next) {
			return
		}
	}
}

// MinFloat64 atomically sets *p = min(*p, v); it returns true if the value
// decreased.
func MinFloat64(p *float64, v float64) bool {
	u := (*uint64)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint64(u)
		cur := math.Float64frombits(old)
		if v >= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(u, old, math.Float64bits(v)) {
			return true
		}
	}
}

// MinUint32 atomically sets *p = min(*p, v); it returns true if the value
// decreased.
func MinUint32(p *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, v) {
			return true
		}
	}
}

// MinInt64 atomically sets *p = min(*p, v); it returns true if the value
// decreased.
func MinInt64(p *int64, v int64) bool {
	for {
		old := atomic.LoadInt64(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt64(p, old, v) {
			return true
		}
	}
}

// CASUint32 is a convenience re-export of CompareAndSwapUint32, used by
// BFS-style "claim once" kernels.
func CASUint32(p *uint32, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(p, old, new)
}

// OrUint64 atomically sets *p |= v and returns the bits that were newly
// set (v &^ old). Multi-source traversal kernels use the return value as
// the per-source claim: each bit transitions 0->1 exactly once across
// all racing updaters.
func OrUint64(p *uint64, v uint64) uint64 {
	for {
		old := atomic.LoadUint64(p)
		fresh := v &^ old
		if fresh == 0 {
			return 0
		}
		if atomic.CompareAndSwapUint64(p, old, old|v) {
			return fresh
		}
	}
}

// LoadUint64 is a convenience re-export of atomic.LoadUint64 for kernels
// that mix atomic claims with condition checks on the same word.
func LoadUint64(p *uint64) uint64 { return atomic.LoadUint64(p) }
