package atomicx

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddFloat64Concurrent(t *testing.T) {
	var x float64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				AddFloat64(&x, 0.5)
			}
		}()
	}
	wg.Wait()
	if x != 4000 {
		t.Fatalf("x = %v, want 4000", x)
	}
}

func TestLoadStoreFloat64(t *testing.T) {
	var x float64
	StoreFloat64(&x, math.Pi)
	if LoadFloat64(&x) != math.Pi {
		t.Fatal("load/store mismatch")
	}
}

func TestMinFloat64(t *testing.T) {
	x := 10.0
	if !MinFloat64(&x, 5) || x != 5 {
		t.Fatalf("min failed: %v", x)
	}
	if MinFloat64(&x, 7) || x != 5 {
		t.Fatalf("min must not increase: %v", x)
	}
	if MinFloat64(&x, 5) {
		t.Fatal("equal value must report no change")
	}
}

func TestMinFloat64ConcurrentConverges(t *testing.T) {
	x := math.Inf(1)
	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				MinFloat64(&x, float64(i*1000-j))
			}
		}(i)
	}
	wg.Wait()
	if x != 501 {
		t.Fatalf("concurrent min = %v, want 501", x)
	}
}

func TestMinUint32Property(t *testing.T) {
	f := func(a, b uint32) bool {
		x := a
		changed := MinUint32(&x, b)
		if b < a {
			return changed && x == b
		}
		return !changed && x == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinInt64Property(t *testing.T) {
	f := func(a, b int64) bool {
		x := a
		changed := MinInt64(&x, b)
		if b < a {
			return changed && x == b
		}
		return !changed && x == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCASUint32(t *testing.T) {
	var x uint32 = 7
	if !CASUint32(&x, 7, 9) || x != 9 {
		t.Fatal("CAS success path broken")
	}
	if CASUint32(&x, 7, 11) || x != 9 {
		t.Fatal("CAS failure path broken")
	}
}
