package atomicx

import "testing"

func BenchmarkAddFloat64(b *testing.B) {
	var x float64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			AddFloat64(&x, 1)
		}
	})
}

func BenchmarkMinFloat64(b *testing.B) {
	x := 1e18
	for i := 0; i < b.N; i++ {
		MinFloat64(&x, float64(b.N-i))
	}
}

func BenchmarkMinUint32(b *testing.B) {
	var x uint32 = 1 << 31
	for i := 0; i < b.N; i++ {
		MinUint32(&x, uint32(b.N-i))
	}
}
