// Crash-point injection for the durability layer. Compute faults (the
// rest of this package) are recoverable inside one process: a superstep
// rolls back and replays. A crash kills the process itself, so the only
// recovery witness is what reached disk — the mutation log consults a
// Crasher at each point where a real kill would leave a distinct on-disk
// state, and a planned crash makes the store die there deterministically.
// The chaos harness then reopens the directory and verifies recovery.

package fault

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrCrashed is returned by an operation that died at an injected crash
// point. The store that returned it is dead: every later operation on it
// fails, exactly as if the process had been killed. Recovery means
// reopening the on-disk state.
var ErrCrashed = errors.New("fault: simulated process kill")

// CrashPoint identifies one instant during a mutation commit where a
// process kill leaves a distinct on-disk state.
type CrashPoint int

const (
	// CrashMidRecord kills the process while the log record's bytes are
	// partially written: recovery sees a torn tail and must truncate it.
	CrashMidRecord CrashPoint = iota
	// CrashBeforeFsync kills after the record is fully written but before
	// fsync: the bytes may or may not survive, and either outcome must
	// recover to a clean prefix.
	CrashBeforeFsync
	// CrashBeforePublish kills after the record is durable but before the
	// in-memory snapshot publish and generation bump: the client saw an
	// error, yet recovery must include the batch (it is committed on disk).
	CrashBeforePublish
	// CrashBeforeRotate kills after a checkpoint is durable but before the
	// log is rotated: recovery must skip the log records the checkpoint
	// already folded in.
	CrashBeforeRotate
)

// String names the point the way the chaos harness logs it.
func (p CrashPoint) String() string {
	switch p {
	case CrashMidRecord:
		return "mid-record"
	case CrashBeforeFsync:
		return "before-fsync"
	case CrashBeforePublish:
		return "before-publish"
	case CrashBeforeRotate:
		return "before-rotate"
	}
	return fmt.Sprintf("CrashPoint(%d)", int(p))
}

// CrashPoints is the full injection matrix, in commit order.
func CrashPoints() []CrashPoint {
	return []CrashPoint{CrashMidRecord, CrashBeforeFsync, CrashBeforePublish, CrashBeforeRotate}
}

// Crasher decides whether to simulate a process kill at a crash point.
// seq is the sequence number of the batch being committed (for
// CrashBeforeRotate, the batch whose commit triggered the checkpoint).
type Crasher interface {
	Crash(p CrashPoint, seq uint64) bool
}

// PlannedCrash fires exactly once, at one (point, seq) pair. The zero
// value never fires; use PlanCrash for a seeded plan.
type PlannedCrash struct {
	Point CrashPoint
	Seq   uint64
	fired atomic.Bool
}

// Crash reports (once) whether this is the planned kill instant.
func (c *PlannedCrash) Crash(p CrashPoint, seq uint64) bool {
	if c == nil || p != c.Point || seq != c.Seq || c.fired.Load() {
		return false
	}
	return c.fired.CompareAndSwap(false, true)
}

// Fired reports whether the planned kill happened.
func (c *PlannedCrash) Fired() bool { return c.fired.Load() }

// PlanCrash derives a deterministic one-shot crash plan from a seed: a
// point from the full matrix and a batch in [1, maxSeq]. The same seed
// always plans the same kill, so a failing chaos trial replays exactly.
func PlanCrash(seed uint64, maxSeq uint64) *PlannedCrash {
	if maxSeq < 1 {
		maxSeq = 1
	}
	r := &splitmix64{s: seed}
	pts := CrashPoints()
	return &PlannedCrash{
		Point: pts[r.intn(len(pts))],
		Seq:   1 + r.next()%maxSeq,
	}
}
