// Package fault is the deterministic fault-injection substrate for the
// simulated NUMA machine. An Injector holds a schedule of events — worker
// panics, worker stalls, node-offline windows, link-bandwidth degradation,
// allocation failures — generated from a seed or parsed from a spec
// string, and arms them against a Machine / worker pool at superstep
// boundaries. A Session wraps an engine's superstep loop with
// checkpoint/restart: vertex state, the frontier, and the simulated
// clock/ledger are snapshotted before each step, injected faults are
// detected after the step, and a faulty step is rolled back, repaired and
// replayed so the final simulated output is bit-identical to a fault-free
// run.
//
// Everything is deterministic: the same seed produces the same schedule,
// and because recovery replays from state snapshots, runs with and
// without injected transient faults print identical simdump goldens.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates injectable fault classes.
type Kind int

const (
	// WorkerPanic makes one worker panic at dispatch of the step's first
	// parallel phase.
	WorkerPanic Kind = iota
	// WorkerStall makes one worker sleep briefly and then fail its share
	// of the phase (a hung thread detected by the harness).
	WorkerStall
	// NodeOffline fails every worker on one simulated node for the step.
	NodeOffline
	// LinkDegraded runs one superstep with a node pair's bandwidth scaled
	// down, then repairs the link. It perturbs the simulated clock, so
	// recovery rolls the clock back and replays at full bandwidth.
	LinkDegraded
	// AllocFail makes the next simulated allocation fail. At Step < 0 it
	// fires during engine construction (recovered by whole-run restart).
	AllocFail
)

// String names the kind the way ParseSpec spells it.
func (k Kind) String() string {
	switch k {
	case WorkerPanic:
		return "panic"
	case WorkerStall:
		return "stall"
	case NodeOffline:
		return "offline"
	case LinkDegraded:
		return "link"
	case AllocFail:
		return "alloc"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault. Events fire exactly once: the injector
// marks an event fired when armed and repaired when the harness has
// recovered from it, so a replayed step re-executes cleanly.
type Event struct {
	Kind Kind
	// Step is the superstep index the event fires at. Step < 0 means
	// "during setup" (engine construction), which only AllocFail uses.
	Step int
	// Thread is the target worker for WorkerPanic/WorkerStall.
	Thread int
	// Node is the target for NodeOffline; NodeA/NodeB the pair for
	// LinkDegraded.
	Node, NodeB int
	// Factor is the LinkDegraded bandwidth multiplier in (0, 1).
	Factor float64

	fired    bool
	repaired bool
}

func (ev *Event) String() string {
	switch ev.Kind {
	case WorkerPanic, WorkerStall:
		return fmt.Sprintf("%s@%d:t%d", ev.Kind, ev.Step, ev.Thread)
	case NodeOffline:
		return fmt.Sprintf("%s@%d:n%d", ev.Kind, ev.Step, ev.Node)
	case LinkDegraded:
		return fmt.Sprintf("%s@%d:n%d-n%d*%g", ev.Kind, ev.Step, ev.Node, ev.NodeB, ev.Factor)
	case AllocFail:
		return fmt.Sprintf("%s@%d", ev.Kind, ev.Step)
	}
	return fmt.Sprintf("?@%d", ev.Step)
}

// Record is one log entry of injector activity, for the fault report.
type Record struct {
	Event  string
	Action string // "armed", "detected", "rolled back", "repaired", "restart"
}

// Injector owns a fault schedule and the log of what fired.
type Injector struct {
	events []*Event
	log    []Record
}

// NewInjector wraps an explicit schedule.
func NewInjector(events []*Event) *Injector {
	return &Injector{events: events}
}

// splitmix64 is the deterministic schedule generator: a tiny, seedable,
// platform-independent PRNG (math/rand would tie schedules to Go's
// generator evolution).
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) intn(n int) int { return int(r.next() % uint64(n)) }

// Schedule generates a deterministic schedule from a seed: one worker
// panic, one worker stall, one node-offline event, and one degraded-link
// event, spread over the first steps supersteps of a machine with the
// given thread and node counts. The same (seed, steps, threads, nodes)
// always yields the same schedule.
func Schedule(seed uint64, steps, threads, nodes int) []*Event {
	if steps < 1 {
		steps = 1
	}
	r := &splitmix64{s: seed}
	pick := func() int { return r.intn(steps) }
	evs := []*Event{
		{Kind: WorkerPanic, Step: pick(), Thread: r.intn(threads)},
		{Kind: WorkerStall, Step: pick(), Thread: r.intn(threads)},
		{Kind: NodeOffline, Step: pick(), Node: r.intn(nodes)},
	}
	if nodes > 1 {
		a := r.intn(nodes)
		b := r.intn(nodes - 1)
		if b >= a {
			b++
		}
		factor := 0.1 + 0.4*float64(r.intn(9))/8 // in {0.10, 0.15, ..., 0.50}
		evs = append(evs, &Event{Kind: LinkDegraded, Step: pick(), Node: a, NodeB: b, Factor: factor})
	}
	sortEvents(evs)
	return evs
}

func sortEvents(evs []*Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Step < evs[j].Step })
}

// ParseSpec parses a comma-separated fault spec, e.g.
//
//	panic@2:t3,stall@1:t0,offline@1:n1,link@3:n0-n1*0.25,alloc@0,alloc@-1
//
// kind@step with a kind-specific target: tN a thread, nN a node,
// nA-nB*F a link pair with bandwidth factor F. alloc takes no target;
// alloc@-1 fires during engine construction.
func ParseSpec(spec string) ([]*Event, error) {
	var evs []*Event
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	sortEvents(evs)
	return evs, nil
}

func parseEvent(s string) (*Event, error) {
	kindStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return nil, fmt.Errorf("fault: %q: want kind@step[:target]", s)
	}
	stepStr, target, _ := strings.Cut(rest, ":")
	step, err := strconv.Atoi(stepStr)
	if err != nil {
		return nil, fmt.Errorf("fault: %q: bad step %q", s, stepStr)
	}
	ev := &Event{Step: step}
	switch kindStr {
	case "panic", "stall":
		if kindStr == "panic" {
			ev.Kind = WorkerPanic
		} else {
			ev.Kind = WorkerStall
		}
		if !strings.HasPrefix(target, "t") {
			return nil, fmt.Errorf("fault: %q: want thread target tN", s)
		}
		if ev.Thread, err = strconv.Atoi(target[1:]); err != nil {
			return nil, fmt.Errorf("fault: %q: bad thread %q", s, target)
		}
	case "offline":
		ev.Kind = NodeOffline
		if !strings.HasPrefix(target, "n") {
			return nil, fmt.Errorf("fault: %q: want node target nN", s)
		}
		if ev.Node, err = strconv.Atoi(target[1:]); err != nil {
			return nil, fmt.Errorf("fault: %q: bad node %q", s, target)
		}
	case "link":
		ev.Kind = LinkDegraded
		pair, factorStr, ok := strings.Cut(target, "*")
		if !ok {
			return nil, fmt.Errorf("fault: %q: want link target nA-nB*factor", s)
		}
		aStr, bStr, ok := strings.Cut(pair, "-")
		if !ok || !strings.HasPrefix(aStr, "n") || !strings.HasPrefix(bStr, "n") {
			return nil, fmt.Errorf("fault: %q: want link target nA-nB*factor", s)
		}
		if ev.Node, err = strconv.Atoi(aStr[1:]); err != nil {
			return nil, fmt.Errorf("fault: %q: bad node %q", s, aStr)
		}
		if ev.NodeB, err = strconv.Atoi(bStr[1:]); err != nil {
			return nil, fmt.Errorf("fault: %q: bad node %q", s, bStr)
		}
		if ev.Factor, err = strconv.ParseFloat(factorStr, 64); err != nil || ev.Factor <= 0 || ev.Factor >= 1 {
			return nil, fmt.Errorf("fault: %q: bad factor %q (want 0 < f < 1)", s, factorStr)
		}
	case "alloc":
		ev.Kind = AllocFail
		if target != "" {
			return nil, fmt.Errorf("fault: %q: alloc takes no target", s)
		}
	default:
		return nil, fmt.Errorf("fault: unknown kind %q in %q", kindStr, s)
	}
	return ev, nil
}

// Events returns the schedule (shared slice; callers must not mutate).
func (in *Injector) Events() []*Event { return in.events }

// Log returns the activity log.
func (in *Injector) Log() []Record { return in.log }

func (in *Injector) record(ev *Event, action string) {
	in.log = append(in.log, Record{Event: ev.String(), Action: action})
}

// Pending reports whether any event has not yet been repaired.
func (in *Injector) Pending() bool {
	for _, ev := range in.events {
		if !ev.repaired {
			return true
		}
	}
	return false
}

// setupEvent returns the unfired setup-time (Step < 0) event, if any.
func (in *Injector) setupEvent() *Event {
	for _, ev := range in.events {
		if ev.Step < 0 && !ev.fired {
			return ev
		}
	}
	return nil
}

// eventsAt returns unrepaired events scheduled for one step.
func (in *Injector) eventsAt(step int) []*Event {
	var out []*Event
	for _, ev := range in.events {
		if ev.Step == step && !ev.repaired {
			out = append(out, ev)
		}
	}
	return out
}
