package fault

import (
	"fmt"
	"math"
)

// CheckFinite scans a vertex array for NaN/Inf and returns a descriptive
// error naming the first bad vertex. Iterative numeric algorithms
// (PageRank, BP, SpMV) call it inside the superstep body so a divergence
// is detected — and rolled back — by the surrounding session.
func CheckFinite(name string, xs []float64) error {
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("fault: %s diverged: vertex %d is %v", name, i, x)
		}
	}
	return nil
}

// Watchdog guards an iterative run against runaway loops: a hard step
// budget plus stall detection (a frontier whose size stops changing for
// StallSteps consecutive supersteps while remaining non-empty, e.g. a
// traversal ping-ponging over the same vertices).
type Watchdog struct {
	// MaxSteps is the step budget; 0 disables it.
	MaxSteps int
	// StallSteps is how many consecutive same-size non-empty frontiers
	// count as a stall; 0 disables stall detection.
	StallSteps int

	steps     int
	lastCount int64
	stalled   int
}

// Tick records one superstep with the given frontier size and returns an
// error if a budget or stall limit is hit.
func (w *Watchdog) Tick(frontier int64) error {
	w.steps++
	if w.MaxSteps > 0 && w.steps > w.MaxSteps {
		return fmt.Errorf("fault: step budget exceeded (%d steps)", w.MaxSteps)
	}
	if w.StallSteps > 0 {
		if frontier > 0 && frontier == w.lastCount {
			w.stalled++
			if w.stalled >= w.StallSteps {
				return fmt.Errorf("fault: frontier stalled at %d vertices for %d steps", frontier, w.stalled)
			}
		} else {
			w.stalled = 0
		}
	}
	w.lastCount = frontier
	return nil
}

// Steps returns how many supersteps have been ticked.
func (w *Watchdog) Steps() int { return w.steps }
