package fault

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"polymer/internal/numa"
)

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(42, 5, 8, 4)
	b := Schedule(42, 5, 8, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", specOf(a), specOf(b))
	}
	if len(a) != 4 {
		t.Fatalf("want panic+stall+offline+link = 4 events, got %d", len(a))
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	seen := map[string]uint64{}
	for seed := uint64(1); seed <= 8; seed++ {
		s := specOf(Schedule(seed, 7, 16, 4))
		if prev, ok := seen[s]; ok {
			t.Fatalf("seeds %d and %d collide on schedule %q", prev, seed, s)
		}
		seen[s] = seed
	}
}

func TestScheduleSingleNodeOmitsLink(t *testing.T) {
	evs := Schedule(1, 5, 4, 1)
	for _, ev := range evs {
		if ev.Kind == LinkDegraded {
			t.Fatalf("single-node schedule contains a link event: %s", ev)
		}
	}
}

func TestScheduleSorted(t *testing.T) {
	evs := Schedule(7, 9, 8, 4)
	for i := 1; i < len(evs); i++ {
		if evs[i].Step < evs[i-1].Step {
			t.Fatalf("schedule not sorted by step: %s", specOf(evs))
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "panic@2:t3,stall@1:t0,offline@1:n1,link@3:n0-n1*0.25,alloc@0,alloc@-1"
	evs, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 6 {
		t.Fatalf("want 6 events, got %d", len(evs))
	}
	again, err := ParseSpec(specOf(evs))
	if err != nil {
		t.Fatalf("re-parsing %q: %v", specOf(evs), err)
	}
	if specOf(again) != specOf(evs) {
		t.Fatalf("round trip changed spec: %q vs %q", specOf(evs), specOf(again))
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus@1:t0",       // unknown kind
		"panic",            // missing @step
		"panic@x:t0",       // non-numeric step
		"panic@1",          // missing thread target
		"panic@1:n0",       // wrong target class
		"offline@1:t0",     // wrong target class
		"link@1:n0*0.5",    // missing pair
		"link@1:n0-n1*1.5", // factor out of range
		"link@1:n0-n1*0",   // factor out of range
		"alloc@1:t0",       // alloc takes no target
		"stall@2",          // missing thread target
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted malformed spec", bad)
		}
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite("x", []float64{0, 1.5, -2}); err != nil {
		t.Fatalf("finite input rejected: %v", err)
	}
	if err := CheckFinite("x", []float64{0, math.NaN()}); err == nil {
		t.Fatal("NaN not detected")
	}
	if err := CheckFinite("x", []float64{math.Inf(1)}); err == nil {
		t.Fatal("+Inf not detected")
	}
}

func TestWatchdogBudget(t *testing.T) {
	w := Watchdog{MaxSteps: 3}
	for i := 0; i < 3; i++ {
		if err := w.Tick(1); err != nil {
			t.Fatalf("step %d within budget errored: %v", i, err)
		}
	}
	if err := w.Tick(1); err == nil {
		t.Fatal("budget overrun not detected")
	}
}

func TestWatchdogStall(t *testing.T) {
	w := Watchdog{StallSteps: 2}
	if err := w.Tick(5); err != nil {
		t.Fatal(err)
	}
	if err := w.Tick(5); err != nil { // first repeat: stalled=1
		t.Fatal(err)
	}
	if err := w.Tick(5); err == nil { // second repeat: stall
		t.Fatal("stalled frontier not detected")
	}
	// Progress resets the counter; empty frontiers never count as a stall.
	w = Watchdog{StallSteps: 2}
	for _, c := range []int64{5, 5, 6, 6, 0, 0, 0} {
		if err := w.Tick(c); err != nil {
			t.Fatalf("Tick(%d): %v", c, err)
		}
	}
}

// fakeEngine is a minimal Engine for driving Session without a real graph
// engine: one tracked clock that work advances, plus the hook plumbing.
type fakeEngine struct {
	m     *numa.Machine
	err   error
	hook  func(int) error
	clock float64
	snap  float64
}

func (f *fakeEngine) Machine() *numa.Machine         { return f.m }
func (f *fakeEngine) Err() error                     { return f.err }
func (f *fakeEngine) ClearErr()                      { f.err = nil }
func (f *fakeEngine) SnapshotSim()                   { f.snap = f.clock }
func (f *fakeEngine) RestoreSim()                    { f.clock = f.snap }
func (f *fakeEngine) SetFaultHook(h func(int) error) { f.hook = h }
func (f *fakeEngine) SetContext(context.Context)     {}

func newFakeEngine() *fakeEngine {
	return &fakeEngine{m: numa.NewMachine(numa.IntelXeon80(), 2, 2)}
}

// TestSessionRollbackReplay injects a worker panic at step 1 and checks the
// faulty attempt is rolled back (tracked state and clock restored) before a
// clean replay commits.
func TestSessionRollbackReplay(t *testing.T) {
	evs, err := ParseSpec("panic@1:t0")
	if err != nil {
		t.Fatal(err)
	}
	eng := newFakeEngine()
	sess := NewSession(eng, NewInjector(evs))
	vals := make([]float64, 4)
	sess.TrackF64(vals)

	attempts := 0
	for step := 0; step < 3; step++ {
		err := sess.Step(step, func() error {
			attempts++
			// One unit of work: bump every vertex and the sim clock, then
			// pass through the dispatch hook as the worker pool would.
			for i := range vals {
				vals[i]++
			}
			eng.clock++
			if eng.hook != nil {
				for th := 0; th < eng.m.Threads(); th++ {
					if err := eng.hook(th); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if attempts != 4 {
		t.Fatalf("want 3 committed + 1 rolled-back attempt, got %d", attempts)
	}
	if sess.Rollbacks() != 1 {
		t.Fatalf("want 1 rollback, got %d", sess.Rollbacks())
	}
	for i, v := range vals {
		if v != 3 {
			t.Fatalf("vertex %d = %g after 3 committed steps, want 3 (rollback leaked)", i, v)
		}
	}
	if eng.clock != 3 {
		t.Fatalf("sim clock = %g, want 3", eng.clock)
	}
	if eng.hook != nil {
		t.Fatal("fault hook not removed after step")
	}
	if sess.Injector().Pending() {
		t.Fatal("injector still has unrepaired events")
	}
	actions := map[string]int{}
	for _, rec := range sess.Injector().Log() {
		actions[rec.Action]++
	}
	if actions["armed"] != 1 || actions["detected"] != 1 || actions["repaired"] != 1 {
		t.Fatalf("unexpected log %v", sess.Injector().Log())
	}
}

// TestSessionLinkPerturbationReplays checks that a degraded link — which
// corrupts only the simulated clock, not correctness — still triggers a
// rollback so the replay runs at full bandwidth.
func TestSessionLinkPerturbationReplays(t *testing.T) {
	evs, err := ParseSpec("link@0:n0-n1*0.25")
	if err != nil {
		t.Fatal(err)
	}
	eng := newFakeEngine()
	sess := NewSession(eng, NewInjector(evs))
	runs := 0
	if err := sess.Step(0, func() error { runs++; return nil }); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("armed step must replay after repair: ran %d times, want 2", runs)
	}
	if sess.Rollbacks() != 1 {
		t.Fatalf("want 1 rollback, got %d", sess.Rollbacks())
	}
}

// TestSessionRetryBound checks a fault that persists across replays fails
// the step instead of looping forever.
func TestSessionRetryBound(t *testing.T) {
	eng := newFakeEngine()
	sess := NewSession(eng, nil)
	sess.SetMaxRetries(2)
	runs := 0
	err := sess.Step(0, func() error { runs++; panic("always broken") })
	if err == nil {
		t.Fatal("persistent fault not surfaced")
	}
	if runs != 3 {
		t.Fatalf("want initial attempt + 2 replays = 3 runs, got %d", runs)
	}
}

// TestStepNilSession checks the package-level fast path: no session means
// bare panic containment and nothing else.
func TestStepNilSession(t *testing.T) {
	if err := Step(nil, 0, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Step(nil, 0, func() error { panic("boom") }); err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestArmSetup(t *testing.T) {
	evs, err := ParseSpec("alloc@-1")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(evs)
	m := numa.NewMachine(numa.IntelXeon80(), 2, 2)
	if !inj.ArmSetup(m) {
		t.Fatal("setup event not armed")
	}
	if err := m.Alloc().Grow("t", 64); err == nil {
		t.Fatal("armed setup fault did not fail the next allocation")
	}
	m.Alloc().ClearFailure()
	inj.RetireSetup()
	if inj.Pending() {
		t.Fatal("setup event still pending after retire")
	}
	// A second arm attempt finds nothing: the event fires once.
	if inj.ArmSetup(numa.NewMachine(numa.IntelXeon80(), 2, 2)) {
		t.Fatal("retired setup event re-armed")
	}
}

func specOf(evs []*Event) string {
	parts := make([]string, len(evs))
	for i, ev := range evs {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ",")
}
