package fault

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/state"
)

// Engine is the surface a graph engine exposes to the recovery harness.
// All four engines (core, ligra, xstream, galois) implement it.
type Engine interface {
	// Machine returns the simulated machine the engine charges against.
	Machine() *numa.Machine
	// Err returns the first execution failure recorded by the engine
	// (worker panic, offline node, allocation failure), or nil.
	Err() error
	// ClearErr resets the failure so a rolled-back step can be replayed.
	ClearErr()
	// SnapshotSim saves the engine's simulated-time state (clock,
	// cumulative traffic ledger, metrics, trace position) into the
	// engine's single internal snapshot slot.
	SnapshotSim()
	// RestoreSim rolls the simulated-time state back to the snapshot.
	RestoreSim()
	// SetFaultHook installs (nil removes) the per-dispatch injection hook
	// on the engine's worker pool.
	SetFaultHook(func(th int) error)
	// SetContext installs a cancellation context consulted around each
	// parallel phase (nil restores the default). A cancelled context fails
	// the phase before any simulated charging, so an abandoned request
	// stops charging the sim at the next superstep boundary.
	SetContext(context.Context)
}

// Session wraps an engine's superstep loop with checkpoint/restart. The
// caller registers the algorithm's vertex arrays (Track*) and frontier
// accessors once, then funnels every superstep through Step: the session
// snapshots state, arms the injector's events for that step, runs the
// body, and on any detected fault rolls back, repairs, and replays.
type Session struct {
	eng Engine
	inj *Injector
	ck  *state.Checkpoint

	getFrontier   func() *state.Subset
	setFrontier   func(*state.Subset)
	savedFrontier *state.Subset

	maxRetries int
	rollbacks  int
}

// NewSession pairs an engine with an injector. A nil injector yields a
// session that only provides panic containment (no snapshots, no faults).
func NewSession(eng Engine, inj *Injector) *Session {
	if inj == nil {
		inj = NewInjector(nil)
	}
	return &Session{eng: eng, inj: inj, ck: state.NewCheckpoint(), maxRetries: 3}
}

// Checkpoint returns the session's state checkpoint for Track* calls.
func (s *Session) Checkpoint() *state.Checkpoint { return s.ck }

// TrackF64 registers float64 vertex arrays for snapshotting.
func (s *Session) TrackF64(xs ...[]float64) { s.ck.TrackF64(xs...) }

// TrackU32 registers uint32 vertex arrays for snapshotting.
func (s *Session) TrackU32(xs ...[]uint32) { s.ck.TrackU32(xs...) }

// TrackI64 registers int64 vertex arrays for snapshotting.
func (s *Session) TrackI64(xs ...[]int64) { s.ck.TrackI64(xs...) }

// Frontier registers the algorithm's frontier accessors. Subsets are
// immutable, so the snapshot retains the pointer — no copying.
func (s *Session) Frontier(get func() *state.Subset, set func(*state.Subset)) {
	s.getFrontier, s.setFrontier = get, set
}

// SetMaxRetries bounds how many times one step may be replayed.
func (s *Session) SetMaxRetries(n int) { s.maxRetries = n }

// Rollbacks returns how many step rollbacks the session performed.
func (s *Session) Rollbacks() int { return s.rollbacks }

// Injector returns the session's injector (for its log).
func (s *Session) Injector() *Injector { return s.inj }

// Step is the package-level superstep wrapper: with a nil session it
// degrades to bare panic containment (Catch) with zero further overhead,
// so fault-free call sites pay nothing.
func Step(s *Session, step int, body func() error) error {
	if s == nil {
		return Catch(body)
	}
	return s.Step(step, body)
}

// traceSource is the optional tracing capability of an engine. It is
// asserted per step rather than added to Engine, so engines without
// tracing still satisfy the interface and a tracer installed after the
// session was built is picked up.
type traceSource interface {
	Tracer() *obs.Tracer
	SimSeconds() float64
}

// trace returns the engine's tracer and simulated clock, or nil when the
// engine has no enabled tracer.
func (s *Session) trace() (*obs.Tracer, float64) {
	if ts, ok := s.eng.(traceSource); ok {
		if tr := ts.Tracer(); tr != nil {
			return tr, ts.SimSeconds()
		}
	}
	return nil, 0
}

// Step runs one superstep under the session's fault regime:
//
//	save state  ->  arm this step's events  ->  run body  ->  detect
//
// A detected fault (engine error, escaped panic, or an armed clock
// perturbation such as a degraded link) rolls vertex state, the frontier,
// and the simulated clock back to the pre-step snapshot, repairs the
// fault, and replays the step. Replay of a repaired step is clean, so
// the committed result is bit-identical to a fault-free run.
func (s *Session) Step(step int, body func() error) error {
	evs := s.inj.eventsAt(step)
	for attempt := 0; ; attempt++ {
		s.save()
		if tr, sim := s.trace(); tr != nil {
			if attempt > 0 {
				tr.Instant("fault", "replay", step, sim, fmt.Sprintf("attempt %d", attempt+1))
			} else {
				tr.Instant("fault", "checkpoint", step, sim, "")
			}
		}
		armed := s.arm(evs)
		err := Catch(body)
		s.disarm(evs)
		if err == nil {
			err = s.eng.Err()
		}
		if err == nil && !armed {
			return nil // commit
		}
		// Cancellation is not a repairable fault: the caller abandoned the
		// request, so roll the step's partial state and sim charges back
		// (no post-cancel charging) and surface the context error without
		// replaying.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.eng.ClearErr()
			s.restore()
			if tr, sim := s.trace(); tr != nil {
				tr.Instant("fault", "rollback", step, sim, err.Error())
			}
			return err
		}
		if err != nil {
			for _, ev := range evs {
				if ev.fired && !ev.repaired {
					s.inj.record(ev, "detected")
				}
			}
		}
		s.eng.ClearErr()
		s.restore()
		s.repair(evs)
		s.rollbacks++
		if tr, sim := s.trace(); tr != nil {
			detail := "armed fault"
			if err != nil {
				detail = err.Error()
			}
			tr.Instant("fault", "rollback", step, sim, detail)
		}
		if attempt >= s.maxRetries {
			if err == nil {
				err = fmt.Errorf("fault: step %d: fault persisted", step)
			}
			return fmt.Errorf("fault: step %d failed after %d replays: %w", step, attempt+1, err)
		}
	}
}

func (s *Session) save() {
	s.ck.Save()
	if s.getFrontier != nil {
		// Subsets are immutable; retaining the pointer is the snapshot.
		s.savedFrontier = s.getFrontier()
	}
	s.eng.SnapshotSim()
}

func (s *Session) restore() {
	s.ck.Restore()
	s.eng.RestoreSim()
}

// arm applies this step's not-yet-fired events to the machine and pool
// and reports whether any event is live for this attempt. Events are
// marked fired here, so a replay after repair arms nothing.
func (s *Session) arm(evs []*Event) bool {
	m := s.eng.Machine()
	var hooked []*Event
	armed := false
	for _, ev := range evs {
		if ev.fired || ev.repaired {
			continue
		}
		ev.fired = true
		armed = true
		s.inj.record(ev, "armed")
		switch ev.Kind {
		case WorkerPanic, WorkerStall:
			hooked = append(hooked, ev)
		case NodeOffline:
			_ = m.SetNodeOffline(ev.Node%m.Nodes, true)
			hooked = append(hooked, ev)
		case LinkDegraded:
			_ = m.DegradeLink(ev.Node%m.Nodes, ev.NodeB%m.Nodes, ev.Factor)
		case AllocFail:
			m.Alloc().FailNext("")
		}
	}
	if len(hooked) > 0 {
		threads := m.Threads()
		shots := make([]atomic.Bool, len(hooked))
		s.eng.SetFaultHook(func(th int) error {
			for i, ev := range hooked {
				switch ev.Kind {
				case WorkerPanic:
					if th == ev.Thread%threads && shots[i].CompareAndSwap(false, true) {
						panic(fmt.Sprintf("fault: injected panic on worker %d", th))
					}
				case WorkerStall:
					if th == ev.Thread%threads && shots[i].CompareAndSwap(false, true) {
						time.Sleep(time.Millisecond)
						return fmt.Errorf("fault: injected stall on worker %d", th)
					}
				case NodeOffline:
					if m.NodeOfThread(th) == ev.Node%m.Nodes {
						return fmt.Errorf("fault: node %d offline", ev.Node%m.Nodes)
					}
				}
			}
			return nil
		})
	}
	return armed
}

// disarm removes the dispatch hook after the attempt; machine-level
// effects are reverted by repair.
func (s *Session) disarm(evs []*Event) {
	if len(evs) > 0 {
		s.eng.SetFaultHook(nil)
	}
}

// repair reverts machine-level fault effects and retires the events so
// the replay runs clean.
func (s *Session) repair(evs []*Event) {
	m := s.eng.Machine()
	if s.setFrontier != nil {
		s.setFrontier(s.savedFrontier)
	}
	for _, ev := range evs {
		if !ev.fired || ev.repaired {
			continue
		}
		switch ev.Kind {
		case NodeOffline:
			_ = m.SetNodeOffline(ev.Node%m.Nodes, false)
		case LinkDegraded:
			m.RepairLink(ev.Node%m.Nodes, ev.NodeB%m.Nodes)
		case AllocFail:
			m.Alloc().ClearFailure()
		}
		ev.repaired = true
		s.inj.record(ev, "repaired")
	}
}

// Catch runs body, converting an escaped panic into an error.
func Catch(body func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("fault: recovered panic: %w", e)
			} else {
				err = fmt.Errorf("fault: recovered panic: %v", r)
			}
		}
	}()
	return body()
}

// ArmSetup arms the injector's setup-time event (Step < 0) against a
// machine about to construct an engine, and reports whether one fired.
// Setup faults are recovered by whole-run restart with a fresh machine:
// the harness discards the partially charged machine, so the retried
// run's peak-allocation accounting is untouched.
func (in *Injector) ArmSetup(m *numa.Machine) bool {
	ev := in.setupEvent()
	if ev == nil {
		return false
	}
	if ev.Kind != AllocFail {
		return false
	}
	ev.fired = true
	in.record(ev, "armed")
	m.Alloc().FailNext("")
	return true
}

// RetireSetup marks the fired setup event repaired after the harness has
// restarted the run.
func (in *Injector) RetireSetup() {
	for _, ev := range in.events {
		if ev.Step < 0 && ev.fired && !ev.repaired {
			ev.repaired = true
			in.record(ev, "restart")
		}
	}
}
