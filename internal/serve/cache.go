// The graph cache: per-key singleflight so concurrent requests for the
// same dataset trigger exactly one load (without holding any lock across
// it), plus a memory-budgeted LRU with refcounting — in-flight requests
// pin their graph, pinned entries are never evicted, and eviction removes
// least-recently-used unpinned graphs until the budget holds again.

package serve

import (
	"container/list"
	"strings"
	"sync"

	"polymer/internal/graph"
)

// cacheEntry is one (dataset, scale, weighted) slot. ready is closed when
// the load finishes; g/err/bytes are immutable afterwards. refs counts
// waiting or executing requests pinning the entry.
type cacheEntry struct {
	key   string
	ready chan struct{}
	g     *graph.Graph
	err   error
	bytes int64
	refs  int
	elem  *list.Element // position in the LRU order while resident
	// doomed marks an entry invalidated while pinned: a superseded
	// snapshot that in-flight requests still read. The last release frees
	// it immediately — its key carries a stale mutation sequence, so no
	// future request can ever hit it and LRU aging would never reclaim it.
	doomed bool
}

// cacheStats is the JSON form of the cache counters for /metricsz.
type cacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// graphCache implements the singleflight + refcounted LRU. budget <= 0
// means unbounded (never evict).
type graphCache struct {
	mu      sync.Mutex
	budget  int64
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used
	bytes   int64
	hits    int64
	misses  int64
	evicted int64
	onEvict func(key string, bytes int64)
}

func newGraphCache(budget int64, onEvict func(key string, bytes int64)) *graphCache {
	return &graphCache{
		budget:  budget,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
		onEvict: onEvict,
	}
}

// get returns the graph for key, loading it via load at most once across
// concurrent callers. On success the entry is pinned: the caller must
// invoke release once done with the graph. Failed loads are not cached —
// the entry is removed so the next request retries.
func (c *graphCache) get(key string, load func() (*graph.Graph, error)) (*graph.Graph, func(), error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		e.refs++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The loader already removed the failed entry; just drop the pin.
			c.mu.Lock()
			e.refs--
			c.mu.Unlock()
			return nil, nil, e.err
		}
		c.mu.Lock()
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		return e.g, c.releaseFunc(e), nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{}), refs: 1}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	g, err := load()

	c.mu.Lock()
	e.g, e.err = g, err
	if err != nil {
		delete(c.entries, key)
		e.refs--
		close(e.ready)
		c.mu.Unlock()
		return nil, nil, err
	}
	e.bytes = g.TopologyBytes()
	c.bytes += e.bytes
	e.elem = c.lru.PushFront(e)
	close(e.ready)
	c.evictLocked()
	c.mu.Unlock()
	return g, c.releaseFunc(e), nil
}

// releaseFunc unpins e exactly once; the release may be the moment an
// over-budget cache can finally evict, or the moment a doomed (stale
// pinned snapshot) entry can finally be dropped.
func (c *graphCache) releaseFunc(e *cacheEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			e.refs--
			if e.doomed && e.refs == 0 && e.elem != nil {
				c.removeLocked(e)
			}
			c.evictLocked()
			c.mu.Unlock()
		})
	}
}

// removeLocked drops a resident entry and reports it as an eviction.
func (c *graphCache) removeLocked(e *cacheEntry) {
	c.lru.Remove(e.elem)
	e.elem = nil
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	c.evicted++
	if c.onEvict != nil {
		c.onEvict(e.key, e.bytes)
	}
}

// evictLocked removes least-recently-used unpinned entries until the
// budget holds. Pinned entries are skipped, so the cache can transiently
// exceed its budget while every resident graph is in use.
func (c *graphCache) evictLocked() {
	if c.budget <= 0 {
		return
	}
	for el := c.lru.Back(); el != nil && c.bytes > c.budget; {
		e := el.Value.(*cacheEntry)
		prev := el.Prev()
		if e.refs == 0 {
			c.removeLocked(e)
		}
		el = prev
	}
}

// invalidate drops every resident unpinned entry whose dataset matches
// and dooms the pinned ones. Pinned entries (a run in progress) and
// in-flight loads finish against the snapshot they started with — the
// result-cache version bump guarantees their outputs are never served as
// fresh — and the doom mark makes the last release drop them instead of
// leaving superseded snapshots resident under keys nobody will ask for
// again. Returns the number of entries dropped immediately.
func (c *graphCache) invalidate(dataset string) int {
	prefix := dataset + "|"
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Back(); el != nil; {
		e := el.Value.(*cacheEntry)
		prev := el.Prev()
		if strings.HasPrefix(e.key, prefix) {
			if e.refs == 0 {
				c.lru.Remove(el)
				e.elem = nil
				delete(c.entries, e.key)
				c.bytes -= e.bytes
				n++
				if c.onEvict != nil {
					c.onEvict(e.key, e.bytes)
				}
			} else {
				e.doomed = true
			}
		}
		el = prev
	}
	return n
}

// pinnedRefs sums refcounts across resident entries: tests assert it
// returns to zero after load, so no path leaks a graph pin.
func (c *graphCache) pinnedRefs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		n += e.refs
	}
	return n
}

// stats snapshots the cache counters.
func (c *graphCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
	}
}
