// Multi-source query batching: traversal point queries (bfs/sssp) that
// agree on everything but the source share one queue slot and one fused
// MultiBFS/MultiSSSP sweep. The first arrival opens a group and submits
// its task; while that task waits in the queue, later arrivals join for
// free — the queue wait IS the batching window, so batching adds no
// latency when the server is idle. The group seals when the worker
// dequeues it (plus an optional linger) or when it reaches BatchMax
// distinct sources, and the sweep's per-source checksums are
// demultiplexed back to each waiter. The conformance suite asserts the
// per-source outputs are bit-identical to independent single-source
// runs, which is what makes the fusion invisible.

package serve

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"polymer/internal/bench"
	"polymer/internal/graph"
	"polymer/internal/numa"
	"polymer/internal/obs"
	"polymer/internal/plan"
)

// batchSlot is the outcome of one distinct source within a group.
type batchSlot struct {
	kind   resKind
	status int
	resp   Response
}

// batchGroup is one open (then executing) multi-source group. srcs and
// slotOf grow only while the group is open and under the batcher lock;
// slots is written once by the executing worker before done is closed.
type batchGroup struct {
	key    string
	v      *resolved // representative request: graph, engine, QoS knobs
	cancel context.CancelFunc
	srcs   []graph.Vertex
	slotOf map[graph.Vertex]int
	refs   int
	sealed bool
	done   chan struct{}
	slots  []batchSlot
}

// batcher indexes open groups by the generation-qualified request key
// with the source wildcarded. The generation (verKey) keeps
// post-invalidation arrivals out of groups still sweeping the stale
// pinned snapshot, mirroring the coalescer.
type batcher struct {
	mu   sync.Mutex
	open map[string]*batchGroup
}

func newBatcher() *batcher {
	return &batcher{open: make(map[string]*batchGroup)}
}

// batchJoin answers one traversal request through its batch group:
// join the open group for the key, or open a new one and submit its
// task. Duplicate sources share a slot, so a group of k members may
// sweep fewer than k sources.
func (s *Server) batchJoin(v *resolved, clientCtx context.Context) (outcome, bool, error) {
	key := verKey(v.ver, v.groupKey())
	b := s.batches
	b.mu.Lock()
	if g, ok := b.open[key]; ok {
		slot, exists := g.slotOf[v.src]
		if !exists {
			slot = len(g.srcs)
			g.srcs = append(g.srcs, v.src)
			g.slotOf[v.src] = slot
			if len(g.srcs) >= s.cfg.BatchMax {
				// Full: seal now so later arrivals open a fresh group.
				g.sealed = true
				delete(b.open, key)
			}
		}
		g.refs++
		b.mu.Unlock()
		s.counters.Batched.Add(1)
		s.cfg.Tracer.HostInstant("serve", "batch-join", obs.PidServe, obs.NowMicros(), -1,
			fmt.Sprintf("%s src=%d (%d sources)", key, v.src, slot+1))
		return s.waitBatch(g, slot, v, clientCtx), false, nil
	}
	b.mu.Unlock()

	gctx, gcancel := context.WithCancel(s.baseCtx)
	g := &batchGroup{
		key:    key,
		v:      v,
		cancel: gcancel,
		srcs:   []graph.Vertex{v.src},
		slotOf: map[graph.Vertex]int{v.src: 0},
		refs:   1,
		done:   make(chan struct{}),
	}
	t := s.newTask(v, gctx, gcancel)
	t.grp = g
	if shed, err := s.enqueue(t); err != nil {
		gcancel()
		return outcome{}, shed, err
	}
	// Open the group only after admission succeeded, so nobody can join a
	// group that was shed. If the worker already sealed it, or a concurrent
	// opener for the same key won the publish race while we were
	// enqueueing, it stays solo rather than clobbering the registered
	// group out of the map.
	b.mu.Lock()
	if _, raced := b.open[key]; !raced && !g.sealed {
		b.open[key] = g
	}
	b.mu.Unlock()
	return s.waitBatch(g, 0, v, clientCtx), false, nil
}

// waitBatch parks one member on its group and demultiplexes its source's
// slot from the shared outcome.
func (s *Server) waitBatch(g *batchGroup, slot int, v *resolved, clientCtx context.Context) outcome {
	start := time.Now()
	wctx, wcancel, stop := s.waiterCtx(v, clientCtx)
	defer wcancel()
	defer stop()
	select {
	case <-g.done:
		sl := g.slots[slot]
		s.recordKind(sl.kind)
		resp := sl.resp
		resp.ID = s.ids.Add(1)
		// Like the coalescer, plan provenance is the member's own: the
		// fused sweep computed the payload, but each member reports the
		// decision (if any) that routed it here.
		if pi := v.planInfo(); pi != nil {
			resp.Plan = pi
		}
		return outcome{status: sl.status, resp: resp}
	case <-wctx.Done():
		s.detachBatch(g)
		kind, status := classifyCtxErr(wctx.Err())
		s.recordKind(kind)
		return outcome{status: status, resp: Response{
			ID:      s.ids.Add(1),
			System:  string(v.sys),
			Algo:    string(v.alg),
			Graph:   string(v.data),
			Scale:   v.req.Scale,
			Error:   wctx.Err().Error(),
			Breaker: string(s.breakers[v.sys].State()),
			WallMs:  float64(time.Since(start).Microseconds()) / 1000,
		}}
	}
}

// detachBatch drops one member; the last one out cancels the shared
// sweep and seals the group against further joins.
func (s *Server) detachBatch(g *batchGroup) {
	b := s.batches
	b.mu.Lock()
	g.refs--
	last := g.refs == 0
	if last && !g.sealed {
		g.sealed = true
		if b.open[g.key] == g {
			delete(b.open, g.key)
		}
	}
	b.mu.Unlock()
	if last {
		g.cancel()
	}
}

// sealGroup closes the group to new members and returns its final source
// list.
func (s *Server) sealGroup(g *batchGroup) []graph.Vertex {
	b := s.batches
	b.mu.Lock()
	defer b.mu.Unlock()
	if !g.sealed {
		g.sealed = true
		if b.open[g.key] == g {
			delete(b.open, g.key)
		}
	}
	return g.srcs
}

// executeMulti runs one batch group's task: seal, sweep all distinct
// sources in a single multi-source run, demultiplex per-source outcomes,
// and publish them to every waiter at once. A group of one runs the
// plain single-source path so a solo batched request is indistinguishable
// from a direct run.
func (s *Server) executeMulti(t *task) {
	start := time.Now()
	startMicros := obs.NowMicros()
	defer t.cancel()
	g := t.grp
	v := t.v
	tr := s.cfg.Tracer
	tr.Span("serve", "queue", obs.PidServe, t.admitted, startMicros-t.admitted, -1, t.id, "")
	if lg := s.cfg.BatchLinger; lg > 0 {
		// An explicit linger stretches the join window past dequeue.
		timer := time.NewTimer(lg)
		select {
		case <-t.ctx.Done():
		case <-timer.C:
		}
		timer.Stop()
	}
	srcs := s.sealGroup(g)
	k := len(srcs)
	slots := make([]batchSlot, k)
	base := Response{
		System: string(v.sys),
		Algo:   string(v.alg),
		Graph:  string(v.data),
		Scale:  v.req.Scale,
	}
	// fill assigns the group-wide outcome to every slot not already
	// resolved individually (invalid sources keep their own 400).
	fill := func(kind resKind, status int, errStr string) {
		for i := range slots {
			if slots[i].status == 0 {
				resp := base
				resp.Error = errStr
				slots[i] = batchSlot{kind: kind, status: status, resp: resp}
			}
		}
	}
	publish := func(status int, desc string) {
		wall := float64(time.Since(start).Microseconds()) / 1000
		brState := string(s.breakers[v.sys].State())
		for i := range slots {
			slots[i].resp.WallMs = wall
			slots[i].resp.Breaker = brState
		}
		tr.Span("serve", "request", obs.PidServe, startMicros, obs.NowMicros()-startMicros, -1, t.id,
			fmt.Sprintf("batch %s/%s on %s sources=%d status=%d %s",
				base.Algo, base.Graph, base.System, k, status, desc))
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "batch",
			slog.Int64("id", t.id),
			slog.String("system", base.System),
			slog.String("algo", base.Algo),
			slog.String("graph", base.Graph),
			slog.Int("sources", k),
			slog.Int("status", status),
			slog.Float64("wall_ms", wall),
			slog.String("error", desc),
		)
		g.slots = slots
		close(g.done)
	}

	// Cancelled or all waiters gone while queued: answer without a run.
	if err := t.ctx.Err(); err != nil {
		kind, status := classifyCtxErr(err)
		fill(kind, status, err.Error())
		publish(status, err.Error())
		return
	}
	gph, release, err := s.graphFor(v)
	if err != nil {
		fill(kindFailed, 500, err.Error())
		publish(500, err.Error())
		return
	}
	defer release()
	n := gph.NumVertices()
	// Per-source validation: a bad source fails its own slot, not the
	// group.
	live := make([]graph.Vertex, 0, k)
	liveSlot := make([]int, 0, k)
	for i, src := range srcs {
		if int(src) >= n {
			resp := base
			resp.Error = fmt.Sprintf("source %d outside [0,%d)", src, n)
			slots[i] = batchSlot{kind: kindFailed, status: 400, resp: resp}
			continue
		}
		live = append(live, src)
		liveSlot = append(liveSlot, i)
	}
	if len(live) == 0 {
		publish(400, "no valid sources")
		return
	}
	br := s.breakers[v.sys]
	admit, probe := br.Allow()
	if !admit {
		// Traversals have no degraded route; the whole group is refused.
		fill(kindBroken, 503, fmt.Sprintf("circuit open for %s", v.sys))
		publish(503, "circuit open")
		return
	}

	mk := func() *numa.Machine { return numa.NewMachine(v.topo, v.nodes, v.cores) }
	var lease *plan.Lease
	if v.planned != nil {
		// The group's representative was planned: the whole sweep runs on
		// its scheduled socket set (members agreed on the same plan — it is
		// part of the group key).
		lease = s.plannerFor(v).Scheduler().Acquire(v.nodes)
		defer lease.Release()
		lm := lease
		mk = func() *numa.Machine {
			m, err := lm.Machine(v.cores)
			if err != nil {
				return numa.NewMachine(v.topo, v.nodes, v.cores)
			}
			return m
		}
	}
	runOnce := func() ([]float64, float64, int64, int, int, error) {
		if len(live) == 1 {
			opt := bench.ResilientOptions{
				MaxRestarts:    s.cfg.RestartMax,
				SessionRetries: v.req.SessionRetries,
				Src:            live[0],
				Tracer:         tr,
			}
			if v.req.Restarts >= 0 {
				opt.MaxRestarts = v.req.Restarts
			}
			r, rep, err := bench.RunResilientCtx(t.ctx, v.sys, v.alg, gph, mk, v.injector(), opt)
			if err != nil {
				return nil, 0, 0, rep.Rollbacks, rep.Restarts, err
			}
			return []float64{r.Checksum}, r.SimSeconds, r.PeakBytes, rep.Rollbacks, rep.Restarts, nil
		}
		mr, err := bench.RunMultiSourceCtx(t.ctx, v.sys, v.alg, gph, mk, live, tr)
		if err != nil {
			return nil, 0, 0, 0, 0, err
		}
		return mr.PerSource, mr.SimSeconds, mr.PeakBytes, 0, 0, nil
	}

	maxRetries := s.cfg.RetryMax
	if v.req.Retries >= 0 {
		maxRetries = v.req.Retries
	}
	attempts, rollbacks, restarts := 0, 0, 0
	var lastErr error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if attempt > 0 {
			s.counters.Retried.Add(1)
			tr.HostInstant("serve", "retry", obs.PidServe, obs.NowMicros(), attempt,
				fmt.Sprintf("batch %d: %v", t.id, lastErr))
			if !sleepBackoff(t.ctx, s.cfg.RetryBase, attempt, uint64(t.id)) {
				lastErr = t.ctx.Err()
				break
			}
		}
		perSrc, sim, peak, roll, rest, err := runOnce()
		attempts = attempt + 1
		rollbacks += roll
		restarts += rest
		if err == nil {
			br.Success()
			for j, cs := range perSrc {
				i := liveSlot[j]
				resp := base
				resp.Checksum = cs
				resp.SimSeconds = sim
				resp.PeakBytes = peak
				resp.Attempts = attempts
				resp.Rollbacks = rollbacks
				resp.Restarts = restarts
				if len(live) > 1 {
					resp.BatchSize = len(live)
				}
				slots[i] = batchSlot{kind: kindCompleted, status: 200, resp: resp}
				// Each demultiplexed result is cached under the key the
				// equivalent single-source request would look up — but only
				// from the canonical machine (default lease).
				if v.reusable() && (lease == nil || lease.Default()) {
					s.results.put(v, v.keyFor(srcs[i]), resp)
				}
			}
			if len(live) == 1 {
				// A solo group is indistinguishable from a direct run — its
				// simulated time is exactly what the model predicted, so it
				// may teach the learner. Fused sweeps may not: their cost
				// covers k sources at once.
				s.observePlan(v, lease, sim)
			}
			publish(200, "")
			return
		}
		lastErr = err
		if ctxErr(err) {
			if probe {
				br.cancelProbe()
			}
			kind, status := classifyCtxErr(err)
			fill(kind, status, err.Error())
			publish(status, err.Error())
			return
		}
		br.Failure()
		if probe {
			break
		}
	}
	fill(kindFailed, 500, lastErr.Error())
	publish(500, lastErr.Error())
}
