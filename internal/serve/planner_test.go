package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"polymer/internal/bench"
)

// autoBody builds a /run body with no system field: the planner chooses.
func autoBody(extra string) string {
	b := `{"algo":"pr","graph":"powerlaw","scale":"tiny","sockets":2,"cores":2`
	if extra != "" {
		b += "," + extra
	}
	return b + "}"
}

// An auto request must carry planner provenance, and rerunning its pick
// as an explicit request must produce a bit-identical result.
func TestPlannedRunBitIdenticalToExplicit(t *testing.T) {
	// Reuse machinery off: both requests must actually execute.
	srv := NewServer(Config{Workers: 2, QueueDepth: 8,
		ResultCacheBytes: -1, DisableCoalesce: true, DisableBatch: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	st, auto, _ := postRun(t, ts.URL, autoBody(""))
	if st != 200 {
		t.Fatalf("auto run status %d (%s)", st, auto.Error)
	}
	if auto.Plan == nil {
		t.Fatal("auto run carries no plan provenance")
	}
	if !auto.Plan.AutoEngine || !auto.Plan.AutoPlacement {
		t.Fatalf("auto knobs not recorded: %+v", auto.Plan)
	}
	if auto.Plan.Engine == "" || auto.Plan.Nodes < 1 || auto.Plan.Predicted <= 0 {
		t.Fatalf("incomplete plan provenance: %+v", auto.Plan)
	}
	if auto.System != auto.Plan.Engine {
		t.Fatalf("response engine %q disagrees with plan %q", auto.System, auto.Plan.Engine)
	}

	explicit := fmt.Sprintf(
		`{"algo":"pr","system":%q,"placement":%q,"graph":"powerlaw","scale":"tiny","sockets":%d,"cores":2}`,
		auto.Plan.Engine, auto.Plan.Placement, auto.Plan.Nodes)
	st, exp, _ := postRun(t, ts.URL, explicit)
	if st != 200 {
		t.Fatalf("explicit rerun status %d (%s)", st, exp.Error)
	}
	if exp.Plan != nil {
		t.Fatalf("explicit run grew plan provenance: %+v", exp.Plan)
	}
	if exp.Checksum != auto.Checksum || exp.SimSeconds != auto.SimSeconds {
		t.Fatalf("planned run not bit-identical to explicit: (%v,%v) vs (%v,%v)",
			auto.Checksum, auto.SimSeconds, exp.Checksum, exp.SimSeconds)
	}
}

// An engine whose circuit is open must never be chosen by engine=auto,
// whatever the cost model prefers — the open-breaker veto regression.
func TestOpenBreakerNeverPlanned(t *testing.T) {
	srv := NewServer(Config{Workers: 2, QueueDepth: 8, BreakerCooldown: 1 << 40})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for _, sys := range bench.Systems() {
		br := srv.Breaker(sys)
		for i := 0; i < 3; i++ {
			br.Failure()
		}
		if br.State() != BreakerOpen {
			t.Fatalf("%s breaker not open after threshold failures", sys)
		}
		st, resp, _ := postRun(t, ts.URL, autoBody(""))
		if st != 200 {
			t.Fatalf("auto run with %s open: status %d (%s)", sys, st, resp.Error)
		}
		if resp.Plan == nil {
			t.Fatal("auto run carries no plan provenance")
		}
		if resp.Plan.Engine == string(sys) {
			t.Fatalf("planner chose %s while its circuit was open", sys)
		}
		br.Success() // close again for the next round
	}
}

// Result-cache hits re-stamp plan provenance per request: a planned
// request sees its decision, an explicit request spelling out the same
// run sees none — even though they share one cached entry.
func TestCacheHitRestampsPlan(t *testing.T) {
	srv := NewServer(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	st, first, _ := postRun(t, ts.URL, autoBody(""))
	if st != 200 || first.Plan == nil {
		t.Fatalf("auto run: status %d plan %+v (%s)", st, first.Plan, first.Error)
	}
	st, hit, _ := postRun(t, ts.URL, autoBody(""))
	if st != 200 || !hit.Cached {
		t.Fatalf("repeat auto run not cached: status %d cached=%t", st, hit.Cached)
	}
	if hit.Plan == nil || hit.Plan.Engine != first.Plan.Engine {
		t.Fatalf("cache hit lost plan provenance: %+v", hit.Plan)
	}
	explicit := fmt.Sprintf(
		`{"algo":"pr","system":%q,"placement":%q,"graph":"powerlaw","scale":"tiny","sockets":%d,"cores":2}`,
		first.Plan.Engine, first.Plan.Placement, first.Plan.Nodes)
	st, exp, _ := postRun(t, ts.URL, explicit)
	if st != 200 {
		t.Fatalf("explicit twin status %d (%s)", st, exp.Error)
	}
	if !exp.Cached {
		t.Fatal("explicit twin missed the cache entry its planned twin filled")
	}
	if exp.Plan != nil {
		t.Fatalf("explicit cache hit stamped with a plan: %+v", exp.Plan)
	}
	if exp.Checksum != first.Checksum {
		t.Fatalf("cached payload diverged: %v vs %v", exp.Checksum, first.Checksum)
	}
}

// The acceptance contract: once the profile and decision caches are
// warm, resolving engine=auto allocates nothing on the serve hot path.
func TestPlanForZeroAllocOnProfileHit(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 4, noWorkers: true})
	v, err := DecodeRequest(strings.NewReader(autoBody("")))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.planFor(v); err != nil { // warm the profile + decision caches
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := srv.planFor(v); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("planFor on warm caches allocates %.1f times per call", avg)
	}
}

// When the scheduler must co-locate tenants, the response says so and
// charges honestly; the shared run must not poison the result cache.
func TestSharedLeaseChargedAndUncached(t *testing.T) {
	srv := NewServer(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	full := autoBody("")
	v, err := DecodeRequest(strings.NewReader(strings.Replace(full, `"sockets":2`, `"sockets":8`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	// Occupy every socket so the planned run below has to share.
	squatter := srv.plannerFor(v).Scheduler().Acquire(8)

	st, shared, _ := postRun(t, ts.URL,
		strings.Replace(full, `"sockets":2`, `"sockets":8`, 1))
	if st != 200 {
		t.Fatalf("shared run status %d (%s)", st, shared.Error)
	}
	if shared.Plan == nil || shared.Plan.SharedTenants < 2 {
		t.Fatalf("co-located run does not report sharing: %+v", shared.Plan)
	}
	want := shared.SimSeconds * float64(shared.Plan.SharedTenants)
	if shared.Plan.ChargedSimSeconds != want {
		t.Fatalf("charged %v, want sim x tenants = %v", shared.Plan.ChargedSimSeconds, want)
	}
	squatter.Release()

	// The shared run must not have fed the cache: the rerun executes on
	// the now-idle machine and is the one that gets cached.
	st, clean, _ := postRun(t, ts.URL, strings.Replace(full, `"sockets":2`, `"sockets":8`, 1))
	if st != 200 {
		t.Fatalf("clean rerun status %d (%s)", st, clean.Error)
	}
	if clean.Cached {
		t.Fatal("rerun was served from a cache entry the shared run should not have written")
	}
	if clean.Plan == nil || clean.Plan.SharedTenants != 0 {
		t.Fatalf("isolated rerun reports sharing: %+v", clean.Plan)
	}
	if clean.Checksum != shared.Checksum {
		t.Fatalf("sharing changed the payload: %v vs %v", shared.Checksum, clean.Checksum)
	}
}
