// The streaming-mutation surface: POST /mutatez appends one batch of
// edge mutations to the WAL-backed mutation store under the same
// admission control as analytics requests (queue slot, budget, load
// shedding). The fsync inside Commit is the durability point; after it,
// the handler bumps the dataset's result-cache generation, so the commit
// itself — not a manual POST /invalidatez — retires every cached result,
// in-flight coalesced run and open batch group that predates it.
// Requests already executing keep serving their pinned pre-commit
// snapshot (snapshot isolation); their results land under the old
// generation and are never served again.

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"polymer/internal/gen"
	"polymer/internal/mutate"
	"polymer/internal/obs"
)

// MaxMutationBodyBytes bounds a /mutatez request body.
const MaxMutationBodyBytes = 1 << 20

// MaxMutationOps bounds one mutation batch at the HTTP surface (the
// store's own record cap is higher; this keeps request bodies sane).
const MaxMutationOps = 8192

// MutationRequest is the wire form of one edge-mutation batch.
type MutationRequest struct {
	// Graph and Scale address the dataset snapshot stream to mutate.
	Graph string `json:"graph"`
	Scale string `json:"scale"`
	// Ops apply in order within the batch.
	Ops []MutationOp `json:"ops"`
	// BudgetMs bounds queue wait; 0 means the server default.
	BudgetMs int64 `json:"budget_ms"`
}

// MutationOp is one edge insert or delete.
type MutationOp struct {
	// Op is "insert" or "delete".
	Op  string  `json:"op"`
	Src uint32  `json:"src"`
	Dst uint32  `json:"dst"`
	// Wt is the inserted edge's weight (ignored for deletes; unweighted
	// algorithm views drop it).
	Wt float32 `json:"wt"`
}

// mutation is a validated mutation batch bound to concrete types.
type mutation struct {
	req    MutationRequest
	data   gen.Dataset
	scale  gen.Scale
	n      int // dataset vertex count, for endpoint bounds
	ops    []mutate.Op
	budget time.Duration
}

// DecodeMutation reads and validates one mutation body. Every error is a
// *BadRequest; nothing is admitted before validation passes.
func DecodeMutation(r io.Reader) (*mutation, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxMutationBodyBytes+1))
	dec.DisallowUnknownFields()
	var req MutationRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badReq("bad JSON: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return nil, badReq("trailing data after mutation object")
	}
	return resolveMutation(req)
}

func resolveMutation(req MutationRequest) (*mutation, error) {
	m := &mutation{req: req, data: gen.Dataset(strings.TrimSpace(req.Graph))}
	found := false
	for _, d := range gen.Datasets() {
		if d == m.data {
			found = true
			break
		}
	}
	if !found {
		return nil, badReq("unknown dataset %q", req.Graph)
	}
	var ok bool
	if m.scale, ok = scales[strings.ToLower(req.Scale)]; !ok {
		return nil, badReq("unknown scale %q (want tiny, small or default)", req.Scale)
	}
	if len(req.Ops) == 0 {
		return nil, badReq("empty mutation batch")
	}
	if len(req.Ops) > MaxMutationOps {
		return nil, badReq("batch of %d ops exceeds the %d maximum", len(req.Ops), MaxMutationOps)
	}
	n, err := gen.NumVertices(m.data, m.scale)
	if err != nil {
		return nil, badReq("%v", err)
	}
	m.n = n
	m.ops = make([]mutate.Op, len(req.Ops))
	for i, op := range req.Ops {
		var kind mutate.OpKind
		switch strings.ToLower(op.Op) {
		case "insert":
			kind = mutate.OpInsert
		case "delete":
			kind = mutate.OpDelete
		default:
			return nil, badReq("op %d: unknown kind %q (want insert or delete)", i, op.Op)
		}
		if int(op.Src) >= n || int(op.Dst) >= n {
			return nil, badReq("op %d: edge (%d,%d) outside [0,%d) for %s/%s",
				i, op.Src, op.Dst, n, req.Graph, req.Scale)
		}
		m.ops[i] = mutate.Op{Kind: kind, Src: op.Src, Dst: op.Dst, Wt: op.Wt}
	}
	if req.BudgetMs < 0 {
		return nil, badReq("budget_ms %d is negative", req.BudgetMs)
	}
	if req.BudgetMs > MaxBudget.Milliseconds() {
		return nil, badReq("budget_ms %d exceeds the %v maximum", req.BudgetMs, MaxBudget)
	}
	m.budget = time.Duration(req.BudgetMs) * time.Millisecond
	return m, nil
}

// handleMutate is POST /mutatez: decode, admit, commit, invalidate.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.mut == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "mutations disabled (start polymerd with -wal-dir)"})
		return
	}
	m, err := DecodeMutation(r.Body)
	if err != nil {
		var bad *BadRequest
		if errors.As(err, &bad) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: bad.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	t, shed, err := s.submitMutation(m, r.Context())
	if err != nil {
		if shed {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
			return
		}
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	out := <-t.done
	writeJSON(w, out.status, out.resp)
}

// submitMutation runs admission control for one mutation batch; it takes
// a queue slot exactly like an analytics request, so ingestion cannot
// starve reads (or vice versa) beyond the queue's fairness.
func (s *Server) submitMutation(m *mutation, clientCtx context.Context) (*task, bool, error) {
	budget := m.budget
	if budget == 0 {
		budget = s.cfg.DefaultBudget
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, budget)
	if clientCtx != nil {
		context.AfterFunc(clientCtx, cancel)
	}
	t := &task{
		id:       s.ids.Add(1),
		mut:      m,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan outcome, 1),
		admitted: obs.NowMicros(),
	}
	if shed, err := s.enqueue(t); err != nil {
		cancel()
		return nil, shed, err
	}
	return t, false, nil
}

// executeMutate commits one admitted mutation batch. On success the
// dataset's generation is bumped before the response is sent, so by the
// time a client sees the ack, every pre-commit cached result, in-flight
// coalesced run and open batch group is unreachable.
func (s *Server) executeMutate(t *task) {
	start := time.Now()
	startMicros := obs.NowMicros()
	defer t.cancel()
	m := t.mut
	tr := s.cfg.Tracer
	tr.Span("serve", "queue", obs.PidServe, t.admitted, startMicros-t.admitted, -1, t.id, "")
	resp := Response{
		ID:    t.id,
		Algo:  "mutate",
		Graph: string(m.data),
		Scale: m.req.Scale,
	}
	finish := func(kind resKind, status int, out Response) {
		out.WallMs = float64(time.Since(start).Microseconds()) / 1000
		tr.Span("serve", "request", obs.PidServe, startMicros, obs.NowMicros()-startMicros, -1, out.ID,
			fmt.Sprintf("mutate %s/%s ops=%d seq=%d gen=%d status=%d err=%s",
				out.Graph, out.Scale, len(m.ops), out.Seq, out.Generation, status, out.Error))
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "mutation",
			slog.Int64("id", out.ID),
			slog.String("graph", out.Graph),
			slog.String("scale", out.Scale),
			slog.Int("ops", len(m.ops)),
			slog.Uint64("seq", out.Seq),
			slog.Uint64("generation", out.Generation),
			slog.Int("status", status),
			slog.Float64("wall_ms", out.WallMs),
			slog.String("error", out.Error),
		)
		s.recordKind(kind)
		t.done <- outcome{status: status, resp: out}
	}

	// Expired or abandoned while queued: nothing was committed.
	if err := t.ctx.Err(); err != nil {
		resp.Error = err.Error()
		kind, status := classifyCtxErr(err)
		finish(kind, status, resp)
		return
	}

	seq, err := s.mut.Commit(string(m.data), int(m.scale), m.n, m.ops)
	if err != nil {
		resp.Error = err.Error()
		finish(kindFailed, 500, resp)
		return
	}
	s.counters.Mutations.Add(1)
	// The commit is durable; retire everything computed before it. The
	// generation bump is what splits in-flight reuse: a read that sampled
	// the old generation keeps its pinned snapshot but can never publish
	// into the new generation's cache.
	ver, purged := s.InvalidateGraph(string(m.data))
	tr.HostInstant("serve", "commit", obs.PidServe, obs.NowMicros(), -1,
		fmt.Sprintf("%s@%d seq=%d gen=%d (%d purged)", m.data, m.scale, seq, ver, purged))
	resp.Seq = seq
	resp.Generation = ver
	finish(kindCompleted, 200, resp)
}
