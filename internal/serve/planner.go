// Planner integration: requests that leave the engine or placement to
// the server ("auto" or simply unspecified) are resolved here through
// the cost-model planner before they touch the result cache or the
// queue. The flow is profile -> plan -> bind: the dataset's feature
// vector comes from a per-(dataset, generation) profile cache (computed
// once per snapshot, next to the graph cache), the planner's decision
// comes from its own memoized table, and the pick is bound back onto the
// resolved request so every downstream path — cache keys, batching,
// coalescing, execution — sees a concrete (engine, placement, nodes)
// exactly as if the client had spelled it out. On a profile-cache hit
// the whole resolution is lock-guarded map lookups: zero allocations.

package serve

import (
	"fmt"

	"polymer/internal/bench"
	"polymer/internal/gen"
	"polymer/internal/mem"
	"polymer/internal/obs"
	"polymer/internal/plan"
)

// PlanInfo is a response's planner provenance: what was decided, by which
// model revision, and whether the machine was shared while it ran.
type PlanInfo struct {
	// Version is the planner model+chooser revision that produced the
	// decision.
	Version int `json:"version"`
	// Engine/Placement/Nodes are the pick.
	Engine    string `json:"engine"`
	Placement string `json:"placement"`
	Nodes     int    `json:"nodes"`
	// Predicted is the corrected predicted simulated cost of the pick.
	Predicted float64 `json:"predicted_sim_seconds"`
	// AutoEngine/AutoPlacement record which knobs the client delegated.
	AutoEngine    bool `json:"auto_engine"`
	AutoPlacement bool `json:"auto_placement"`
	// Fallback marks a decision made with every engine's circuit open; the
	// breaker, not the planner, then decides the outcome.
	Fallback bool `json:"fallback,omitempty"`
	// SharedTenants is the scheduler's co-tenancy degree when the run had
	// to share sockets; ChargedSimSeconds is the honest wall-clock-style
	// charge (sim_seconds x tenants). Both absent for an isolated run.
	SharedTenants     int     `json:"shared_tenants,omitempty"`
	ChargedSimSeconds float64 `json:"charged_sim_seconds,omitempty"`
}

// planInfo builds the provenance block for this request's decision; nil
// when the request was never planned (fully explicit or cluster).
func (v *resolved) planInfo() *PlanInfo {
	d := v.planned
	if d == nil {
		return nil
	}
	return &PlanInfo{
		Version:       plan.Version,
		Engine:        string(d.Pick.Engine),
		Placement:     d.Pick.Placement.String(),
		Nodes:         d.Pick.Nodes,
		Predicted:     d.Predicted,
		AutoEngine:    v.autoEngine,
		AutoPlacement: v.autoPlace,
		Fallback:      d.Fallback,
	}
}

// plannerKey identifies one planner instance: the serving layer keeps
// one per (topology, cores-per-socket) shape, so its scheduler's socket
// accounting matches the machines requests actually build.
type plannerKey struct {
	mach  string
	cores int
}

// profileKey identifies one cached feature vector: the dataset snapshot
// (mutation sequence included) in its weighted or unweighted build.
type profileKey struct {
	data     gen.Dataset
	scale    gen.Scale
	weighted bool
	seq      uint64
}

// plannerFor returns (creating on first use) the planner for the
// request's machine shape.
func (s *Server) plannerFor(v *resolved) *plan.Planner {
	k := plannerKey{mach: v.mach, cores: v.cores}
	s.planMu.RLock()
	p := s.planners[k]
	s.planMu.RUnlock()
	if p != nil {
		return p
	}
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if p = s.planners[k]; p == nil {
		p = plan.New(v.topo, v.cores)
		s.planners[k] = p
	}
	return p
}

// profileFor returns the dataset's feature vector, profiling it on first
// use and caching per snapshot. The cache key carries the mutation
// sequence, so a committed mutation batch naturally invalidates the
// profile along with the graph and result caches.
func (s *Server) profileFor(v *resolved) (plan.Features, error) {
	weighted := v.alg.Weighted()
	var seq uint64
	if s.mut != nil {
		var err error
		if seq, err = s.mut.Seq(string(v.data), int(v.scale)); err != nil {
			return plan.Features{}, err
		}
	}
	k := profileKey{data: v.data, scale: v.scale, weighted: weighted, seq: seq}
	s.profMu.RLock()
	f, ok := s.profiles[k]
	s.profMu.RUnlock()
	if ok {
		return f, nil
	}
	g, release, err := s.graphFor(v)
	if err != nil {
		return plan.Features{}, err
	}
	start := obs.NowMicros()
	f = plan.Profile(g)
	release()
	s.cfg.Tracer.Span("serve", "profile", obs.PidPlan, start, obs.NowMicros()-start, -1, 0,
		fmt.Sprintf("%s/%d m%d: %s", v.data, v.scale, seq, f))
	s.profMu.Lock()
	s.profiles[k] = f
	s.profMu.Unlock()
	return f, nil
}

// vetoMask folds the circuit breakers into candidate pruning: an engine
// whose circuit is open is vetoed outright. Half-open circuits stay
// plannable — the probe that closes them has to come from somewhere.
func (s *Server) vetoMask() uint8 {
	var m uint8
	for sys, br := range s.breakers {
		if br.State() == BreakerOpen {
			m |= plan.VetoBit(sys)
		}
	}
	return m
}

// planFor resolves the request's auto knobs through the planner and
// binds the pick. Fully explicit requests and cluster runs pass through
// untouched; planning errors (an unloadable dataset) surface to the
// caller before any queue slot is spent.
func (s *Server) planFor(v *resolved) error {
	if v.clustered() || (!v.autoEngine && !v.autoPlace) {
		return nil
	}
	f, err := s.profileFor(v)
	if err != nil {
		return err
	}
	q := plan.Query{
		Features:   f,
		Alg:        v.alg,
		Nodes:      v.nodes,
		NodesFixed: v.req.Sockets != 0,
		Veto:       s.vetoMask(),
		Tier:       v.tier,
	}
	if !v.autoEngine {
		q.EngineFixed = v.sys
	}
	if !v.autoPlace && v.layoutSet {
		q.PlacementFixed, q.PlacementSet = v.layout, true
	}
	d := s.plannerFor(v).Resolve(q)
	v.planned = d
	v.sys = d.Pick.Engine
	v.nodes = d.Pick.Nodes
	if v.sys == bench.Polymer {
		v.layout, v.layoutSet = d.Pick.Placement, true
	} else {
		v.layout, v.layoutSet = mem.Interleaved, false
	}
	return nil
}

// observePlan feeds one completed run's simulated time back into the
// learner. Only clean, isolated, full-fidelity runs teach the model:
// fault-injected, degraded or socket-sharing runs have simulated costs
// the model was never predicting.
func (s *Server) observePlan(v *resolved, lease *plan.Lease, simSeconds float64) {
	if v.planned == nil || s.cfg.DisableLearning || !v.reusable() {
		return
	}
	if lease != nil && !lease.Default() {
		return
	}
	s.plannerFor(v).Observe(v.planned, simSeconds)
	s.cfg.Tracer.HostInstant("serve", "plan-observe", obs.PidPlan, obs.NowMicros(), -1,
		fmt.Sprintf("%s predicted=%.3gs observed=%.3gs", v.planned.Pick, v.planned.Raw, simSeconds))
}

// plannerStats snapshots every live planner for /metricsz, keyed by
// machine shape.
func (s *Server) plannerStats() map[string]plan.Stats {
	s.planMu.RLock()
	defer s.planMu.RUnlock()
	if len(s.planners) == 0 {
		return nil
	}
	out := make(map[string]plan.Stats, len(s.planners))
	for k, p := range s.planners {
		out[fmt.Sprintf("%s/x%d", k.mach, k.cores)] = p.Snapshot()
	}
	return out
}
