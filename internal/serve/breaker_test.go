package serve

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now)

	for i := 0; i < 2; i++ {
		b.Failure()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state = %s, want closed", i+1, got)
		}
		if admit, _ := b.Allow(); !admit {
			t.Fatalf("closed breaker refused admission after %d failures", i+1)
		}
	}
	b.Failure() // third consecutive failure trips
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold failures state = %s, want open", got)
	}
	if admit, _ := b.Allow(); admit {
		t.Fatal("open breaker admitted a request")
	}
	if ra := b.RetryAfter(); ra != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", ra)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now)
	b.Failure()
	b.Failure()
	b.Success() // streak broken
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("non-consecutive failures tripped the circuit: state = %s", got)
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("three consecutive failures did not trip: state = %s", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Second, clk.now)
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %s, want open", got)
	}

	// Before the cooldown: still refusing.
	clk.advance(999 * time.Millisecond)
	if admit, _ := b.Allow(); admit {
		t.Fatal("breaker admitted before cooldown elapsed")
	}

	// After the cooldown: exactly one probe may pass.
	clk.advance(time.Millisecond)
	admit, probe := b.Allow()
	if !admit || !probe {
		t.Fatalf("Allow() = (%t,%t), want probe admission", admit, probe)
	}
	if admit, _ := b.Allow(); admit {
		t.Fatal("second concurrent probe admitted in half-open")
	}

	// A failed probe re-opens and restarts the cooldown.
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after failed probe state = %s, want open", got)
	}
	if admit, _ := b.Allow(); admit {
		t.Fatal("breaker admitted right after a failed probe")
	}

	// Next cooldown, the probe succeeds and the circuit closes.
	clk.advance(time.Second)
	admit, probe = b.Allow()
	if !admit || !probe {
		t.Fatalf("Allow() = (%t,%t), want probe admission after second cooldown", admit, probe)
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after successful probe state = %s, want closed", got)
	}
	if admit, probe := b.Allow(); !admit || probe {
		t.Fatalf("Allow() = (%t,%t) on closed circuit, want plain admission", admit, probe)
	}
}

func TestBreakerCancelProbeReleasesSlot(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Second, clk.now)
	b.Failure()
	clk.advance(time.Second)
	if admit, probe := b.Allow(); !admit || !probe {
		t.Fatalf("Allow() = (%t,%t), want probe", admit, probe)
	}
	// The probe was cut short by the client's own deadline: releasing it
	// must neither close nor re-open the circuit, just free the slot.
	b.cancelProbe()
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("after cancelProbe state = %s, want half-open", got)
	}
	if admit, probe := b.Allow(); !admit || !probe {
		t.Fatalf("Allow() = (%t,%t), want a fresh probe after cancel", admit, probe)
	}
}
