// Request decoding and validation for polymerd. Everything a client can
// send is checked here, before any simulated resource is touched: unknown
// engines/algorithms/datasets, absurd budgets, malformed fault specs and
// oversized bodies all yield a 4xx error — never a panic and never an
// admission-queue slot.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"polymer/internal/bench"
	"polymer/internal/cluster"
	"polymer/internal/fault"
	"polymer/internal/gen"
	"polymer/internal/graph"
	"polymer/internal/mem"
	"polymer/internal/numa"
	"polymer/internal/plan"
)

// MaxBodyBytes bounds a /run request body; larger bodies are rejected
// before JSON decoding starts.
const MaxBodyBytes = 1 << 16

// MaxBudget bounds the per-request wall-clock budget a client may ask
// for; anything above is an absurd budget and a 400.
const MaxBudget = 10 * time.Minute

// Request is the wire form of one analytics request.
type Request struct {
	// Algo is the algorithm: pr, spmv, bp, bfs or sssp.
	Algo string `json:"algo"`
	// System is the engine: polymer, ligra, xstream or galois. Empty or
	// "auto" asks the cost-model planner to choose.
	System string `json:"system"`
	// Placement is the NUMA data placement: colocated, interleaved or
	// centralized (polymer only — the baselines are interleaved-native).
	// "auto" asks the planner; empty keeps the engine's native default
	// unless the engine is also auto, in which case the planner chooses.
	Placement string `json:"placement"`
	// Graph is the dataset name (twitter, rmat24, rmat27, powerlaw,
	// roadUS).
	Graph string `json:"graph"`
	// Scale is the dataset scale: tiny, small, default or huge.
	Scale string `json:"scale"`
	// Machine is the simulated topology: intel or amd.
	Machine string `json:"machine"`
	// Sockets and Cores bound the simulated machine (0 = topology max).
	Sockets int `json:"sockets"`
	Cores   int `json:"cores"`
	// Src is the traversal source for bfs and sssp.
	Src uint32 `json:"src"`
	// BudgetMs is the request's wall-clock budget in milliseconds; the
	// deadline starts at admission and is propagated as a context through
	// every engine superstep. 0 means the server default.
	BudgetMs int64 `json:"budget_ms"`
	// Fault is an optional fault.ParseSpec schedule injected into the run
	// (chaos testing); FaultSeed generates a deterministic schedule
	// instead. Fault wins when both are set.
	Fault     string `json:"fault"`
	FaultSeed uint64 `json:"fault_seed"`
	// Retries caps server-level whole-run retries (backoff + jitter) on
	// top of the fault session's per-step replays. -1 (and an absent
	// field) means the server default; 0 disables retries.
	Retries int `json:"retries"`
	// SessionRetries caps per-superstep replays inside the fault session.
	// -1 (absent) keeps the session default of 3; 0 fails a step on its
	// first faulted attempt — chaos requests use it to make injected
	// faults unrecoverable so the circuit breaker's failure path is
	// exercisable end to end.
	SessionRetries int `json:"session_retries"`
	// Restarts caps whole-run restarts for setup-time faults within one
	// execution attempt. -1 (absent) means the server default.
	Restarts int `json:"restarts"`
	// DramBytes > 0 arms tiered memory on the simulated machine: each
	// node gets that many bytes of DRAM and spills the rest of its
	// footprint to the slow tier under the Tier policy ("hot" or
	// "interleave"). PromoteEvery sets the phases between promotion
	// passes for the hot policy (0 = the substrate default). Tiering is
	// single-machine only.
	DramBytes    int64  `json:"dram_bytes"`
	Tier         string `json:"tier"`
	PromoteEvery int    `json:"promote_every"`
	// Machines > 0 runs the request on the replicated sharded cluster
	// substrate (polymer engine; pr, bfs or sssp) instead of a single
	// simulated machine. Replicas sets the shard replication factor
	// (0 = the cluster default). For cluster runs fault_seed selects a
	// deterministic chaos schedule (crash/partition/slow-link); the
	// single-machine fault spec grammar does not apply.
	Machines int `json:"machines"`
	Replicas int `json:"replicas"`
}

// BadRequest is a client error: the request never reached the admission
// queue. Handlers map it to 400.
type BadRequest struct{ msg string }

func (e *BadRequest) Error() string { return e.msg }

func badReq(format string, args ...any) error {
	return &BadRequest{msg: fmt.Sprintf(format, args...)}
}

// resolved is a validated request bound to concrete bench/gen types.
type resolved struct {
	req    Request
	sys    bench.System
	alg    bench.Algo
	data   gen.Dataset
	scale  gen.Scale
	topo   *numa.Topology
	mach   string // normalized machine name ("intel" or "amd")
	nodes  int
	cores  int
	src    graph.Vertex
	budget time.Duration // 0 = server default
	events []*fault.Event
	// machines/replicas place the request on the cluster substrate
	// (0 machines = single-machine execution). hedge is not wire state:
	// the hedged-read path sets it on the secondary leg so the cluster
	// serves from standby replicas while the primary leg runs home shards.
	machines int
	replicas int
	hedge    bool
	// tier is the validated tiered-memory config; the zero value means
	// untiered. Every machine the execution path builds is armed with it
	// before the engine charges an epoch.
	tier numa.TierConfig
	// ver is the dataset's result-cache version, sampled when the request
	// enters the reuse path; results computed by this request are cached
	// under it, so an invalidation racing the run can never resurrect a
	// pre-invalidation result under the new version.
	ver uint64
	// autoEngine/autoPlace record which knobs the client left to the
	// planner; layout/layoutSet carry an explicit (or planner-chosen)
	// polymer placement override. planned holds the planner's decision
	// once planFor has resolved the request — it is provenance, and the
	// learner's handle for observing the run.
	autoEngine bool
	autoPlace  bool
	layout     mem.Placement
	layoutSet  bool
	planned    *plan.Decision
}

var systems = map[string]bench.System{
	"polymer": bench.Polymer, "ligra": bench.Ligra,
	"xstream": bench.XStream, "x-stream": bench.XStream, "galois": bench.Galois,
}

var algos = map[string]bench.Algo{
	"pr": bench.PR, "spmv": bench.SpMV, "bp": bench.BP, "bfs": bench.BFS,
	"sssp": bench.SSSP,
}

var scales = map[string]gen.Scale{
	"": gen.Tiny, "tiny": gen.Tiny, "small": gen.Small, "default": gen.Default,
	"huge": gen.Huge,
}

// MaxMachines bounds the simulated cluster size a request may ask for.
const MaxMachines = 16

// supported mirrors the resilient runner's coverage: PR runs on all four
// systems, the scatter-gather systems additionally serve SpMV, BP, BFS
// and SSSP.
func supported(sys bench.System, alg bench.Algo) bool {
	if alg == bench.PR {
		return true
	}
	return sys == bench.Polymer || sys == bench.Ligra
}

// DecodeRequest reads and validates one request body. Every error it
// returns is a *BadRequest; it never panics on hostile input.
func DecodeRequest(r io.Reader) (*resolved, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxBodyBytes+1))
	dec.DisallowUnknownFields()
	// Absent knobs mean "server default", not zero.
	req := Request{Retries: -1, SessionRetries: -1, Restarts: -1}
	if err := dec.Decode(&req); err != nil {
		return nil, badReq("bad JSON: %v", err)
	}
	// A second document (or trailing garbage) is malformed too.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return nil, badReq("trailing data after request object")
	}
	return resolve(req)
}

func resolve(req Request) (*resolved, error) {
	v := &resolved{req: req}
	var ok bool
	if v.alg, ok = algos[strings.ToLower(req.Algo)]; !ok {
		return nil, badReq("unknown algorithm %q (want pr, spmv, bp, bfs or sssp)", req.Algo)
	}
	switch sysName := strings.ToLower(strings.TrimSpace(req.System)); sysName {
	case "", "auto":
		// Engine selection is the planner's job; v.sys stays empty until
		// planFor resolves it.
		v.autoEngine = true
	default:
		if v.sys, ok = systems[sysName]; !ok {
			return nil, badReq("unknown system %q (want polymer, ligra, xstream, galois or auto)", req.System)
		}
		if !supported(v.sys, v.alg) {
			return nil, badReq("%s is not served on %s (PR runs everywhere; spmv/bp/bfs/sssp need polymer or ligra)", v.alg, v.sys)
		}
	}
	if v.scale, ok = scales[strings.ToLower(req.Scale)]; !ok {
		return nil, badReq("unknown scale %q (want tiny, small, default or huge)", req.Scale)
	}
	v.data = gen.Dataset(strings.TrimSpace(req.Graph))
	found := false
	for _, d := range gen.Datasets() {
		if d == v.data {
			found = true
			break
		}
	}
	if !found {
		return nil, badReq("unknown dataset %q", req.Graph)
	}
	switch strings.ToLower(req.Machine) {
	case "", "intel":
		v.topo, v.mach = numa.IntelXeon80(), "intel"
	case "amd":
		v.topo, v.mach = numa.AMDOpteron64(), "amd"
	default:
		return nil, badReq("unknown machine %q (want intel or amd)", req.Machine)
	}
	if req.Sockets < 0 || req.Sockets > v.topo.Sockets {
		return nil, badReq("sockets %d out of range [0,%d]", req.Sockets, v.topo.Sockets)
	}
	if req.Cores < 0 || req.Cores > v.topo.CoresPerSocket {
		return nil, badReq("cores %d out of range [0,%d]", req.Cores, v.topo.CoresPerSocket)
	}
	v.nodes, v.cores = req.Sockets, req.Cores
	if v.nodes == 0 {
		v.nodes = v.topo.Sockets
	}
	if v.cores == 0 {
		v.cores = v.topo.CoresPerSocket
	}
	if req.BudgetMs < 0 {
		return nil, badReq("budget_ms %d is negative", req.BudgetMs)
	}
	// Compare in milliseconds: converting first would overflow Duration
	// for absurd values and slip past the check as a negative budget.
	if req.BudgetMs > MaxBudget.Milliseconds() {
		return nil, badReq("budget_ms %d exceeds the %v maximum", req.BudgetMs, MaxBudget)
	}
	v.budget = time.Duration(req.BudgetMs) * time.Millisecond
	if req.Retries < -1 || req.Retries > 10 {
		return nil, badReq("retries %d out of range [-1,10]", req.Retries)
	}
	if req.SessionRetries < -1 || req.SessionRetries > 10 {
		return nil, badReq("session_retries %d out of range [-1,10]", req.SessionRetries)
	}
	if req.Restarts < -1 || req.Restarts > 10 {
		return nil, badReq("restarts %d out of range [-1,10]", req.Restarts)
	}
	v.src = graph.Vertex(req.Src)
	if !v.batchable() {
		// src is dead weight for pr/spmv/bp: normalize it to 0 here so the
		// reuse key, execute's source bounds check and the cached result
		// all see the same request no matter what the client sent. Without
		// this, an out-of-range src on a pr request would 400 on a direct
		// run but could 200 via a cache or coalesce hit (and vice versa).
		v.src = 0
	}
	if req.Fault != "" {
		evs, err := fault.ParseSpec(req.Fault)
		if err != nil {
			return nil, badReq("bad fault spec: %v", err)
		}
		v.events = evs
	}
	if req.Machines < 0 || req.Machines > MaxMachines {
		return nil, badReq("machines %d out of range [0,%d]", req.Machines, MaxMachines)
	}
	if req.Machines == 0 && req.Replicas != 0 {
		return nil, badReq("replicas requires machines > 0")
	}
	if req.Machines > 0 {
		if v.autoEngine {
			// The cluster substrate is polymer-only, so auto resolves
			// trivially and no planning is needed.
			v.sys, v.autoEngine = bench.Polymer, false
		}
		if v.sys != bench.Polymer {
			return nil, badReq("cluster runs are polymer-only (got %s)", v.sys)
		}
		if _, ok := clusterAlgos[v.alg]; !ok {
			return nil, badReq("%s is not served on the cluster substrate (want pr, bfs or sssp)", v.alg)
		}
		if req.Fault != "" {
			return nil, badReq("fault specs don't apply to cluster runs; use fault_seed for cluster chaos")
		}
		if req.Replicas < 0 || req.Replicas > req.Machines {
			return nil, badReq("replicas %d out of range [0,%d]", req.Replicas, req.Machines)
		}
		v.machines, v.replicas = req.Machines, req.Replicas
		if v.replicas == 0 {
			// Normalize the cluster default here so identical requests
			// collide on one reuse key regardless of spelling.
			v.replicas = 2
			if v.replicas > v.machines {
				v.replicas = v.machines
			}
		}
	}
	if req.DramBytes < 0 {
		return nil, badReq("dram_bytes %d is negative", req.DramBytes)
	}
	if req.PromoteEvery < 0 {
		return nil, badReq("promote_every %d is negative", req.PromoteEvery)
	}
	pol, err := numa.ParseTierPolicy(req.Tier)
	if err != nil {
		return nil, badReq("unknown tier %q (want hot or interleave)", req.Tier)
	}
	if req.DramBytes > 0 {
		if pol == numa.TierNone {
			return nil, badReq("dram_bytes needs a tier policy: set tier to hot or interleave")
		}
		if v.clustered() {
			return nil, badReq("tiering applies to single-machine runs only (machines > 0)")
		}
		if len(v.topo.SlowSeqBW) == 0 {
			return nil, badReq("machine %q has no slow-tier cost tables", v.mach)
		}
		every := req.PromoteEvery
		if every == 0 && pol == numa.TierHot {
			every = 1
		}
		v.tier = numa.TierConfig{DRAMPerNode: req.DramBytes, Policy: pol, PromoteEvery: every}
	} else if pol != numa.TierNone || req.PromoteEvery > 0 {
		return nil, badReq("tier and promote_every need dram_bytes > 0")
	}
	if v.clustered() {
		if strings.TrimSpace(req.Placement) != "" {
			return nil, badReq("placement does not apply to cluster runs (shards are co-located per machine)")
		}
	} else {
		switch pl := strings.ToLower(strings.TrimSpace(req.Placement)); pl {
		case "":
			// An unspecified placement follows the engine: explicit engines
			// keep their native layout, an auto engine frees the planner to
			// choose the placement too.
			v.autoPlace = v.autoEngine
		case "auto":
			v.autoPlace = true
		default:
			p, err := mem.ParsePlacement(pl)
			if err != nil {
				return nil, badReq("unknown placement %q (want colocated, interleaved, centralized or auto)", req.Placement)
			}
			if !v.autoEngine && v.sys != bench.Polymer && p != mem.Interleaved {
				return nil, badReq("placement %s needs polymer; %s is interleaved-native", p, v.sys)
			}
			v.layout, v.layoutSet = p, true
		}
	}
	return v, nil
}

// clusterAlgos maps the bench algorithms the cluster substrate serves to
// its kernel names.
var clusterAlgos = map[bench.Algo]cluster.Algo{
	bench.PR: cluster.PR, bench.BFS: cluster.BFS, bench.SSSP: cluster.SSSP,
}

// clustered reports whether the request runs on the cluster substrate.
func (v *resolved) clustered() bool { return v.machines > 0 }

// effPlacement is the data placement the execution will actually use:
// the explicit (or planner-chosen) layout when one was set, else the
// engine's native default. Keys use it so an auto-planned run and an
// explicitly-configured identical run collide on one result-cache entry.
func (v *resolved) effPlacement() mem.Placement {
	if v.sys == bench.Polymer {
		if v.layoutSet {
			return v.layout
		}
		return mem.CoLocated
	}
	return mem.Interleaved
}

// key is the canonical execution identity of a request: engine,
// algorithm, dataset, scale, placement and machine shape, plus the
// traversal source for point queries. resolve already normalized aliases
// ("x-stream", mixed case), default-filled scale/machine/sockets/cores
// and zeroed src for non-traversals, and planFor resolved auto
// engine/placement to concrete picks, so semantically identical requests
// collide on one key no matter how they were spelled. QoS knobs (budget,
// retries, restarts) don't affect the computed result and stay out of
// the key; fault-carrying requests are never keyed (see reusable).
func (v *resolved) key() string { return v.keyFor(v.src) }

// keyFor is key with an explicit source: the batcher caches each
// demultiplexed per-source result under the key the equivalent
// single-source request would look up.
func (v *resolved) keyFor(src graph.Vertex) string {
	k := fmt.Sprintf("%s|%s|%s|%d|%s|%s|%dx%d|%d",
		v.sys, v.alg, v.data, v.scale, v.effPlacement(), v.mach, v.nodes, v.cores, src)
	if v.tier.Tiered() {
		// Appended only when armed, so every untiered key (the entire
		// pre-tiering key population) is byte-identical to before.
		k += fmt.Sprintf("|t:%s:%d:%d", v.tier.Policy, v.tier.DRAMPerNode, v.tier.PromoteEvery)
	}
	if v.clustered() {
		// The committed output is bit-identical for any cluster shape, but
		// SimSeconds/NetBytes are not: cluster requests key separately per
		// shape so cached timings stay honest.
		k += fmt.Sprintf("|c%d|r%d", v.machines, v.replicas)
	}
	return k
}

// groupKey is key with the source slot wildcarded: requests that agree on
// it differ only in src and can share one multi-source sweep.
func (v *resolved) groupKey() string {
	return fmt.Sprintf("%s|%s|%s|%d|%s|%s|%dx%d|*",
		v.sys, v.alg, v.data, v.scale, v.effPlacement(), v.mach, v.nodes, v.cores)
}

// reusable reports whether the request's result is a pure function of
// its key: fault-injected (chaos) runs are intentionally nondeterministic
// in accounting and must never be coalesced, batched or cached.
func (v *resolved) reusable() bool {
	return v.req.Fault == "" && v.req.FaultSeed == 0
}

// batchable reports whether the request is a traversal point query that
// a multi-source sweep can absorb. Cluster runs never batch: the sweep
// engines are single-machine. Non-native placements don't batch either —
// the fused sweep always runs the engine's native layout, and caching
// its timings under a different placement's key would lie.
func (v *resolved) batchable() bool {
	if v.alg != bench.BFS && v.alg != bench.SSSP || v.clustered() {
		return false
	}
	// Tiered runs stay solo: the fused sweep's machines are untiered, so
	// caching its timings under a tiered key would lie about slow-tier
	// stalls.
	if v.tier.Tiered() {
		return false
	}
	if v.layoutSet {
		native := mem.Interleaved
		if v.sys == bench.Polymer {
			native = mem.CoLocated
		}
		return v.layout == native
	}
	return true
}

// armTier applies the request's tiered-memory config to a freshly built
// machine and returns it. resolve validated the policy and the
// topology's slow-tier tables, and the machines the execution path
// builds have no epochs yet, so a failure here is an invariant
// violation, not a client error.
func (v *resolved) armTier(m *numa.Machine) *numa.Machine {
	if v.tier.Tiered() {
		if err := m.SetTierConfig(v.tier); err != nil {
			panic(fmt.Sprintf("serve: arming validated tier config: %v", err))
		}
	}
	return m
}

// injector builds a fresh injector for one execution attempt. Event state
// (fired/repaired) is per-run, so each attempt needs its own schedule.
func (v *resolved) injector() *fault.Injector {
	switch {
	case v.req.Fault != "":
		evs, err := fault.ParseSpec(v.req.Fault) // validated in resolve
		if err != nil {
			return fault.NewInjector(nil)
		}
		return fault.NewInjector(evs)
	case v.req.FaultSeed != 0:
		threads := v.nodes * v.cores
		return fault.NewInjector(fault.Schedule(v.req.FaultSeed, 5, threads, v.nodes))
	default:
		return fault.NewInjector(nil)
	}
}
