package serve

import (
	"strings"
	"testing"
	"time"

	"polymer/internal/bench"
)

func TestDecodeRequestValid(t *testing.T) {
	v, err := DecodeRequest(strings.NewReader(
		`{"algo":"pr","system":"polymer","graph":"powerlaw","scale":"tiny"}`))
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if v.sys != bench.Polymer || v.alg != bench.PR {
		t.Fatalf("resolved (%s,%s), want (polymer,pr)", v.sys, v.alg)
	}
	if v.nodes != v.topo.Sockets || v.cores != v.topo.CoresPerSocket {
		t.Fatalf("defaults (%d nodes, %d cores), want topology max (%d,%d)",
			v.nodes, v.cores, v.topo.Sockets, v.topo.CoresPerSocket)
	}
	// Absent knobs must mean "server default", not zero.
	if v.req.Retries != -1 || v.req.SessionRetries != -1 || v.req.Restarts != -1 {
		t.Fatalf("absent knobs decoded to (%d,%d,%d), want (-1,-1,-1)",
			v.req.Retries, v.req.SessionRetries, v.req.Restarts)
	}
	if v.budget != 0 {
		t.Fatalf("absent budget decoded to %v, want 0 (server default)", v.budget)
	}
}

func TestDecodeRequestBudget(t *testing.T) {
	v, err := DecodeRequest(strings.NewReader(
		`{"algo":"pr","system":"ligra","graph":"powerlaw","budget_ms":250}`))
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if v.budget != 250*time.Millisecond {
		t.Fatalf("budget = %v, want 250ms", v.budget)
	}
}

func TestDecodeRequestRejections(t *testing.T) {
	cases := []struct {
		name, body, wantSub string
	}{
		{"empty", ``, "bad JSON"},
		{"malformed", `{"algo":`, "bad JSON"},
		{"not-an-object", `[1,2,3]`, "bad JSON"},
		{"unknown-field", `{"algo":"pr","system":"polymer","graph":"powerlaw","bogus":1}`, "bad JSON"},
		{"trailing-data", `{"algo":"pr","system":"polymer","graph":"powerlaw"}{"x":1}`, "trailing data"},
		{"unknown-algo", `{"algo":"cc","system":"polymer","graph":"powerlaw"}`, "unknown algorithm"},
		{"unknown-system", `{"algo":"pr","system":"spark","graph":"powerlaw"}`, "unknown system"},
		{"unsupported-pair", `{"algo":"bfs","system":"xstream","graph":"powerlaw"}`, "not served"},
		{"unknown-graph", `{"algo":"pr","system":"polymer","graph":"friendster"}`, "unknown dataset"},
		{"unknown-scale", `{"algo":"pr","system":"polymer","graph":"powerlaw","scale":"galactic"}`, "unknown scale"},
		{"unknown-machine", `{"algo":"pr","system":"polymer","graph":"powerlaw","machine":"sparc"}`, "unknown machine"},
		{"sockets-range", `{"algo":"pr","system":"polymer","graph":"powerlaw","sockets":99}`, "sockets 99 out of range"},
		{"cores-range", `{"algo":"pr","system":"polymer","graph":"powerlaw","cores":-1}`, "cores -1 out of range"},
		{"negative-budget", `{"algo":"pr","system":"polymer","graph":"powerlaw","budget_ms":-5}`, "negative"},
		{"absurd-budget", `{"algo":"pr","system":"polymer","graph":"powerlaw","budget_ms":86400000}`, "exceeds"},
		{"retries-range", `{"algo":"pr","system":"polymer","graph":"powerlaw","retries":11}`, "retries 11 out of range"},
		{"session-retries-range", `{"algo":"pr","system":"polymer","graph":"powerlaw","session_retries":-2}`, "session_retries -2 out of range"},
		{"restarts-range", `{"algo":"pr","system":"polymer","graph":"powerlaw","restarts":99}`, "restarts 99 out of range"},
		{"bad-fault-spec", `{"algo":"pr","system":"polymer","graph":"powerlaw","fault":"meteor@3"}`, "bad fault spec"},
		{"machines-range", `{"algo":"pr","system":"polymer","graph":"powerlaw","machines":99}`, "machines 99 out of range"},
		{"machines-negative", `{"algo":"pr","system":"polymer","graph":"powerlaw","machines":-1}`, "machines -1 out of range"},
		{"replicas-without-machines", `{"algo":"pr","system":"polymer","graph":"powerlaw","replicas":2}`, "replicas requires machines"},
		{"cluster-non-polymer", `{"algo":"pr","system":"ligra","graph":"powerlaw","machines":2}`, "polymer-only"},
		{"cluster-bad-algo", `{"algo":"spmv","system":"polymer","graph":"powerlaw","machines":2}`, "not served on the cluster"},
		{"cluster-fault-spec", `{"algo":"pr","system":"polymer","graph":"powerlaw","machines":2,"fault":"panic@1:t0"}`, "use fault_seed"},
		{"cluster-replicas-range", `{"algo":"pr","system":"polymer","graph":"powerlaw","machines":2,"replicas":3}`, "replicas 3 out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRequest(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("DecodeRequest accepted %q", tc.body)
			}
			if _, ok := err.(*BadRequest); !ok {
				t.Fatalf("error type %T, want *BadRequest (err: %v)", err, err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err.Error(), tc.wantSub)
			}
		})
	}
}

func TestDecodeRequestOversizedBody(t *testing.T) {
	big := `{"algo":"pr","system":"polymer","graph":"powerlaw","fault":"` +
		strings.Repeat("x", MaxBodyBytes) + `"}`
	_, err := DecodeRequest(strings.NewReader(big))
	if err == nil {
		t.Fatal("oversized body accepted")
	}
	if _, ok := err.(*BadRequest); !ok {
		t.Fatalf("error type %T, want *BadRequest", err)
	}
}

// FuzzDecodeRequest asserts the decoder's contract on hostile input: it
// returns (*resolved, nil) or (nil, *BadRequest) and never panics.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"algo":"pr","system":"polymer","graph":"powerlaw","scale":"tiny"}`,
		`{"algo":"bfs","system":"ligra","graph":"powerlaw","src":4294967295}`,
		`{"algo":"pr","system":"xstream","graph":"rmat24","scale":"small","machine":"amd"}`,
		`{"algo":"pr","system":"polymer","graph":"powerlaw","budget_ms":9223372036854775807}`,
		`{"algo":"pr","system":"polymer","graph":"powerlaw","budget_ms":-9223372036854775808}`,
		`{"algo":"pr","system":"polymer","graph":"powerlaw","fault":"panic@2:t3,stall@1:t0,offline@1:n1"}`,
		`{"algo":"pr","system":"polymer","graph":"powerlaw","fault":"link@3:n0-n1*0.25,alloc@-1"}`,
		`{"algo":"pr","system":"polymer","graph":"powerlaw","fault":"` + "\x00\xff" + `"}`,
		`{"algo":"PR","system":"POLYMER","graph":"powerlaw","sockets":8,"cores":10}`,
		`{"algo":"犬","system":"polymer","graph":"powerlaw"}`,
		`{"algo":"pr","system":"polymer","graph":"powerlaw"`,
		`{"algo":"pr","system":"polymer","graph":"powerlaw"}}`,
		`null`,
		`true`,
		`"pr"`,
		`[{"algo":"pr"}]`,
		`{}`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		v, err := DecodeRequest(strings.NewReader(body))
		if err != nil {
			if v != nil {
				t.Fatal("non-nil resolved alongside an error")
			}
			if _, ok := err.(*BadRequest); !ok {
				t.Fatalf("error type %T for %q, want *BadRequest", err, body)
			}
			return
		}
		if v == nil {
			t.Fatal("nil resolved with nil error")
		}
		// A decoded request must be executable without re-validation.
		if v.nodes < 1 || v.cores < 1 {
			t.Fatalf("resolved machine %dx%d escaped validation", v.nodes, v.cores)
		}
		if v.budget < 0 || v.budget > MaxBudget {
			t.Fatalf("resolved budget %v escaped validation", v.budget)
		}
	})
}
